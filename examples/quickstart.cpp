// Quickstart: run three windowed aggregation queries over one stream with
// the Desis aggregation engine.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "gen/data_generator.h"

int main() {
  using namespace desis;  // example code; library code spells desis:: out

  // 1. Describe the queries. All three share one query-group: the engine
  //    breaks average into {sum, count} and shares both with the sum query;
  //    max adds a single decomposable-sort operator.
  Query avg_per_second;
  avg_per_second.id = 1;
  avg_per_second.window = WindowSpec::Tumbling(1 * kSecond);
  avg_per_second.agg = {AggregationFunction::kAverage, 0};

  Query sliding_sum;
  sliding_sum.id = 2;
  sliding_sum.window = WindowSpec::Sliding(3 * kSecond, 1 * kSecond);
  sliding_sum.agg = {AggregationFunction::kSum, 0};

  Query session_max;
  session_max.id = 3;
  session_max.window = WindowSpec::Session(500 * kMillisecond);
  session_max.agg = {AggregationFunction::kMax, 0};

  // 2. Configure the engine and install a result sink.
  DesisEngine engine;
  Status status = engine.Configure({avg_per_second, sliding_sum, session_max});
  if (!status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    return 1;
  }
  engine.set_sink([](const WindowResult& r) {
    std::printf("query %llu  window [%6.2fs, %6.2fs)  value %8.2f  (%llu events)\n",
                static_cast<unsigned long long>(r.query_id),
                static_cast<double>(r.window_start) / kSecond,
                static_cast<double>(r.window_end) / kSecond, r.value,
                static_cast<unsigned long long>(r.event_count));
  });

  // 3. Feed a synthetic sensor stream (5 seconds of event time, with a
  //    quiet period that closes the session window).
  DataGeneratorConfig cfg;
  cfg.num_keys = 4;
  cfg.mean_interval = 5 * kMillisecond;
  cfg.gap_probability = 0.002;
  cfg.gap_length = 800 * kMillisecond;
  DataGenerator gen(cfg);
  while (gen.now() < 5 * kSecond) engine.Ingest(gen.Next());

  // 4. Flush pending windows and report the work the engine actually did.
  engine.Finish();
  const EngineStats& stats = engine.stats();
  std::printf(
      "\nprocessed %llu events in %zu query-group(s): "
      "%llu operator executions (%.2f per event), %llu slices, %llu windows\n",
      static_cast<unsigned long long>(stats.events), engine.num_groups(),
      static_cast<unsigned long long>(stats.operator_executions),
      static_cast<double>(stats.operator_executions) /
          static_cast<double>(stats.events),
      static_cast<unsigned long long>(stats.slices_created),
      static_cast<unsigned long long>(stats.windows_fired));
  return 0;
}
