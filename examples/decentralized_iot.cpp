// Decentralized IoT monitoring: sensor gateways (local nodes) pre-aggregate
// their streams into slice partials, an intermediate hub merges them, and
// the root assembles final windows — saving ~99% of the network bytes a
// centralized deployment would move (paper §6.4.1).
//
//   build/examples/decentralized_iot

#include <cstdio>

#include "gen/data_generator.h"
#include "net/cluster.h"

namespace {

struct RunOutcome {
  uint64_t results = 0;
  uint64_t bytes = 0;
};

RunOutcome RunSystem(desis::ClusterSystem system,
                     const std::vector<desis::Query>& queries,
                     bool print_results) {
  using namespace desis;
  constexpr int kGateways = 4;
  Cluster cluster(system, {kGateways, 1});
  if (auto s = cluster.Configure(queries); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
  RunOutcome out;
  cluster.set_sink([&](const WindowResult& r) {
    ++out.results;
    if (print_results && out.results <= 5) {
      std::printf("  query %llu window [%.1fs, %.1fs): %.2f\n",
                  static_cast<unsigned long long>(r.query_id),
                  static_cast<double>(r.window_start) / kSecond,
                  static_cast<double>(r.window_end) / kSecond, r.value);
    }
  });

  // Each gateway sees its own sensor stream; drive them in 100ms rounds.
  std::vector<DataGenerator> gens;
  for (int g = 0; g < kGateways; ++g) {
    DataGeneratorConfig cfg;
    cfg.num_keys = 8;
    cfg.mean_interval = 50;  // ~20k events/s per gateway
    cfg.seed = 100 + static_cast<uint64_t>(g);
    gens.emplace_back(cfg);
  }
  for (Timestamp t = 0; t < 10 * kSecond; t += 100 * kMillisecond) {
    for (int g = 0; g < kGateways; ++g) {
      std::vector<Event> batch;
      while (gens[static_cast<size_t>(g)].now() < t + 100 * kMillisecond) {
        batch.push_back(gens[static_cast<size_t>(g)].Next());
      }
      cluster.IngestAt(g, batch.data(), batch.size());
    }
    cluster.Advance(t + 100 * kMillisecond);
  }
  cluster.Advance(20 * kSecond);

  out.bytes = cluster.BytesSentByRole(NodeRole::kLocal) +
              cluster.BytesSentByRole(NodeRole::kIntermediate);
  return out;
}

}  // namespace

int main() {
  using namespace desis;

  // Per-sensor average temperature each second, a sliding health check, and
  // an alert-oriented max.
  std::vector<Query> queries;
  for (uint32_t sensor = 0; sensor < 8; ++sensor) {
    Query q;
    q.id = sensor + 1;
    q.window = WindowSpec::Tumbling(1 * kSecond);
    q.agg = {AggregationFunction::kAverage, 0};
    q.predicate = Predicate::KeyEquals(sensor);
    queries.push_back(q);
  }
  Query health;
  health.id = 100;
  health.window = WindowSpec::Sliding(5 * kSecond, 1 * kSecond);
  health.agg = {AggregationFunction::kCount, 0};
  queries.push_back(health);
  Query alert;
  alert.id = 101;
  alert.window = WindowSpec::Tumbling(2 * kSecond);
  alert.agg = {AggregationFunction::kMax, 0};
  queries.push_back(alert);

  std::printf("Desis (decentralized aggregation), first results:\n");
  RunOutcome desis_run = RunSystem(ClusterSystem::kDesis, queries, true);
  RunOutcome central_run = RunSystem(ClusterSystem::kScotty, queries, false);

  std::printf("\n%-28s %12s %12s\n", "", "results", "net bytes");
  std::printf("%-28s %12llu %12llu\n", "Desis (slice partials)",
              static_cast<unsigned long long>(desis_run.results),
              static_cast<unsigned long long>(desis_run.bytes));
  std::printf("%-28s %12llu %12llu\n", "centralized (raw events)",
              static_cast<unsigned long long>(central_run.results),
              static_cast<unsigned long long>(central_run.bytes));
  std::printf("\nnetwork bytes saved: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(desis_run.bytes) /
                                 static_cast<double>(central_run.bytes)));
  return 0;
}
