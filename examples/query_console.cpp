// Query console: submit continuous queries in Desis' textual query language
// (the `interface` component of §3.1) and watch results over a synthetic
// stream. Pass queries as arguments (';'-separated) or rely on the demo set.
//
//   build/examples/query_console
//     "SELECT QUANTILE(value, 0.9) FROM stream WINDOW TUMBLING(SIZE 2s)"

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/query_parser.h"
#include "gen/data_generator.h"

int main(int argc, char** argv) {
  using namespace desis;

  std::string text;
  for (int i = 1; i < argc; ++i) {
    text += argv[i];
    text += ';';
  }
  if (text.empty()) {
    text =
        "SELECT AVG(value) FROM stream WINDOW TUMBLING(SIZE 2s);"
        "SELECT MAX(value) FROM stream WHERE key = 0 "
        "  WINDOW SLIDING(SIZE 4s, SLIDE 2s);"
        "SELECT COUNT(value) FROM stream WHERE value >= 100 "
        "  WINDOW TUMBLING(SIZE 2s);"
        "SELECT MEDIAN(value) FROM stream WINDOW TUMBLING(SIZE 5000 EVENTS)";
  }

  auto queries = QueryParser::ParseAll(text);
  if (!queries.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 queries.status().ToString().c_str());
    return 1;
  }
  for (const Query& q : queries.value()) {
    std::printf("query %llu: %s, %s\n",
                static_cast<unsigned long long>(q.id),
                ToString(q.agg.fn).c_str(), q.window.ToString().c_str());
  }

  DesisEngine engine;
  if (auto s = engine.Configure(queries.value()); !s.ok()) {
    std::fprintf(stderr, "configure error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("-> %zu query-group(s)\n\n", engine.num_groups());
  engine.set_sink([](const WindowResult& r) {
    std::printf("q%llu [%8.2fs, %8.2fs)  %10.3f  (%llu events)\n",
                static_cast<unsigned long long>(r.query_id),
                static_cast<double>(r.window_start) / kSecond,
                static_cast<double>(r.window_end) / kSecond, r.value,
                static_cast<unsigned long long>(r.event_count));
  });

  DataGeneratorConfig cfg;
  cfg.num_keys = 4;
  cfg.mean_interval = 2 * kMillisecond;
  DataGenerator gen(cfg);
  while (gen.now() < 10 * kSecond) engine.Ingest(gen.Next());
  engine.Finish();
  return 0;
}
