// Trip analytics with user-defined windows: compute per-trip statistics
// over a stream of vehicle speed readings where special marker events end
// each trip (the paper's motivating example for user-defined windows,
// §5.1.2), alongside a session window that detects driving sessions and a
// percentile query over fixed windows — all sharing one query-group.
//
//   build/examples/trip_analytics

#include <cstdio>
#include <vector>

#include "core/engine.h"

int main() {
  using namespace desis;

  Query trip_max_speed;  // maximum speed per trip
  trip_max_speed.id = 1;
  trip_max_speed.window = WindowSpec::UserDefined();
  trip_max_speed.agg = {AggregationFunction::kMax, 0};

  Query trip_avg_speed;  // average speed per trip (shares the trip windows)
  trip_avg_speed.id = 2;
  trip_avg_speed.window = WindowSpec::UserDefined();
  trip_avg_speed.agg = {AggregationFunction::kAverage, 0};

  Query driving_session;  // driving time: session closed by 30s inactivity
  driving_session.id = 3;
  driving_session.window = WindowSpec::Session(30 * kSecond);
  driving_session.agg = {AggregationFunction::kCount, 0};

  Query p95_per_minute;  // 95th percentile speed every minute
  p95_per_minute.id = 4;
  p95_per_minute.window = WindowSpec::Tumbling(1 * kMinute);
  p95_per_minute.agg = {AggregationFunction::kQuantile, 0.95};

  DesisEngine engine;
  if (auto s = engine.Configure(
          {trip_max_speed, trip_avg_speed, driving_session, p95_per_minute});
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("4 queries -> %zu query-group(s)\n\n", engine.num_groups());

  engine.set_sink([](const WindowResult& r) {
    const char* what = r.query_id == 1   ? "trip max speed"
                       : r.query_id == 2 ? "trip avg speed"
                       : r.query_id == 3 ? "driving session (readings)"
                                         : "p95 speed per minute";
    std::printf("%-28s [%7.1fs, %7.1fs)  %7.2f\n", what,
                static_cast<double>(r.window_start) / kSecond,
                static_cast<double>(r.window_end) / kSecond, r.value);
  });

  // Three trips with a long parking break before the last one. Speed ramps
  // up and down within each trip; the trip-end marker rides the last
  // reading of the trip.
  Timestamp ts = 0;
  auto drive = [&](double peak, Timestamp duration) {
    const Timestamp step = 1 * kSecond;
    const int n = static_cast<int>(duration / step);
    for (int i = 0; i < n; ++i) {
      ts += step;
      const double phase = static_cast<double>(i) / static_cast<double>(n);
      const double speed = peak * (phase < 0.5 ? 2 * phase : 2 * (1 - phase));
      const bool last = i == n - 1;
      engine.Ingest({ts, 0, speed, last ? kWindowEnd : kNoMarker});
    }
  };

  drive(90.0, 120 * kSecond);   // trip 1: 2 minutes, up to 90 km/h
  ts += 10 * kSecond;           // short stop (same driving session)
  drive(130.0, 180 * kSecond);  // trip 2: 3 minutes, up to 130 km/h
  ts += 5 * kMinute;            // parked: closes the driving session
  drive(55.0, 60 * kSecond);    // trip 3: city driving

  engine.Finish();
  return 0;
}
