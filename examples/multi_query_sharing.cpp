// Cross-function sharing demo: 1000 concurrent queries with mixed window
// types, measures and aggregation functions — processed in a handful of
// query-groups, with each event aggregated once per shared operator.
// Compare against the DeBucket strategy (one bucket per window, no sharing).
//
//   build/examples/multi_query_sharing

#include <chrono>
#include <cstdio>

#include "baselines/de_bucket.h"
#include "core/engine.h"
#include "gen/data_generator.h"
#include "gen/query_generator.h"

namespace {

void Report(const char* name, const desis::EngineStats& stats,
            size_t groups, double seconds) {
  std::printf("%-10s %8zu groups  %12.0f ev/s  %6.2f ops/event  %8llu slices\n",
              name, groups,
              static_cast<double>(stats.events) / seconds,
              static_cast<double>(stats.operator_executions) /
                  static_cast<double>(stats.events),
              static_cast<unsigned long long>(stats.slices_created));
}

}  // namespace

int main() {
  using namespace desis;

  // 1000 random queries: every window type, time and count measures, and a
  // mix of decomposable functions over 5 sensor keys.
  QueryGeneratorConfig qcfg;
  qcfg.num_keys = 5;
  qcfg.window_types = {WindowType::kTumbling, WindowType::kSliding,
                       WindowType::kSession, WindowType::kUserDefined};
  qcfg.functions = {AggregationFunction::kAverage, AggregationFunction::kSum,
                    AggregationFunction::kCount, AggregationFunction::kMax,
                    AggregationFunction::kMin};
  qcfg.count_measure_probability = 0.1;
  qcfg.min_count = 10'000;
  qcfg.max_count = 50'000;
  qcfg.seed = 42;
  auto queries = QueryGenerator(qcfg).Take(1000);

  DataGeneratorConfig dcfg;
  dcfg.num_keys = 5;
  dcfg.mean_interval = 20;  // 50k events per second of event time
  dcfg.marker_probability = 0.0005;
  dcfg.gap_probability = 0.0002;
  dcfg.gap_length = 1200 * kMillisecond;
  auto events = DataGenerator(dcfg).Take(500'000);

  auto run = [&](StreamEngine& engine, size_t groups) {
    uint64_t results = 0;
    engine.set_sink([&](const WindowResult&) { ++results; });
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& e : events) engine.Ingest(e);
    engine.AdvanceTo(events.back().ts + kMinute);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    Report(engine.name().c_str(), engine.stats(), groups, seconds);
    return results;
  };

  std::printf("1000 random queries over %zu events:\n\n", events.size());
  DesisEngine desis_engine;
  if (auto s = desis_engine.Configure(queries); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const uint64_t desis_results = run(desis_engine, desis_engine.num_groups());

  DeBucketEngine debucket;
  (void)debucket.Configure(queries);
  const uint64_t debucket_results = run(debucket, queries.size());

  std::printf(
      "\nboth engines fired comparable result counts (%llu vs %llu); Desis "
      "did it with shared slices instead of %zu independent buckets.\n",
      static_cast<unsigned long long>(desis_results),
      static_cast<unsigned long long>(debucket_results), queries.size());
  return 0;
}
