# Empty dependencies file for desis_tests.
# This may be replaced when dependencies are built.
