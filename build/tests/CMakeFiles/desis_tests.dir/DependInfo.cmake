
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/desis_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/desis_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_engine_conformance.cc" "tests/CMakeFiles/desis_tests.dir/test_engine_conformance.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_engine_conformance.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/desis_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fault_tolerance.cc" "tests/CMakeFiles/desis_tests.dir/test_fault_tolerance.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_fault_tolerance.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/desis_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_operators.cc" "tests/CMakeFiles/desis_tests.dir/test_operators.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_operators.cc.o.d"
  "/root/repo/tests/test_out_of_order.cc" "tests/CMakeFiles/desis_tests.dir/test_out_of_order.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_out_of_order.cc.o.d"
  "/root/repo/tests/test_query_analyzer.cc" "tests/CMakeFiles/desis_tests.dir/test_query_analyzer.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_query_analyzer.cc.o.d"
  "/root/repo/tests/test_query_parser.cc" "tests/CMakeFiles/desis_tests.dir/test_query_parser.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_query_parser.cc.o.d"
  "/root/repo/tests/test_slicer.cc" "tests/CMakeFiles/desis_tests.dir/test_slicer.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_slicer.cc.o.d"
  "/root/repo/tests/test_slicer_more.cc" "tests/CMakeFiles/desis_tests.dir/test_slicer_more.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_slicer_more.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/desis_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/desis_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_window.cc" "tests/CMakeFiles/desis_tests.dir/test_window.cc.o" "gcc" "tests/CMakeFiles/desis_tests.dir/test_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/desis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/desis_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/desis_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/desis_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
