# Empty dependencies file for desis_net.
# This may be replaced when dependencies are built.
