file(REMOVE_RECURSE
  "libdesis_net.a"
)
