file(REMOVE_RECURSE
  "CMakeFiles/desis_net.dir/cluster.cc.o"
  "CMakeFiles/desis_net.dir/cluster.cc.o.d"
  "CMakeFiles/desis_net.dir/desis_nodes.cc.o"
  "CMakeFiles/desis_net.dir/desis_nodes.cc.o.d"
  "CMakeFiles/desis_net.dir/disco_nodes.cc.o"
  "CMakeFiles/desis_net.dir/disco_nodes.cc.o.d"
  "CMakeFiles/desis_net.dir/forward_nodes.cc.o"
  "CMakeFiles/desis_net.dir/forward_nodes.cc.o.d"
  "CMakeFiles/desis_net.dir/message.cc.o"
  "CMakeFiles/desis_net.dir/message.cc.o.d"
  "CMakeFiles/desis_net.dir/node.cc.o"
  "CMakeFiles/desis_net.dir/node.cc.o.d"
  "CMakeFiles/desis_net.dir/root_assembler.cc.o"
  "CMakeFiles/desis_net.dir/root_assembler.cc.o.d"
  "libdesis_net.a"
  "libdesis_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desis_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
