
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cluster.cc" "src/net/CMakeFiles/desis_net.dir/cluster.cc.o" "gcc" "src/net/CMakeFiles/desis_net.dir/cluster.cc.o.d"
  "/root/repo/src/net/desis_nodes.cc" "src/net/CMakeFiles/desis_net.dir/desis_nodes.cc.o" "gcc" "src/net/CMakeFiles/desis_net.dir/desis_nodes.cc.o.d"
  "/root/repo/src/net/disco_nodes.cc" "src/net/CMakeFiles/desis_net.dir/disco_nodes.cc.o" "gcc" "src/net/CMakeFiles/desis_net.dir/disco_nodes.cc.o.d"
  "/root/repo/src/net/forward_nodes.cc" "src/net/CMakeFiles/desis_net.dir/forward_nodes.cc.o" "gcc" "src/net/CMakeFiles/desis_net.dir/forward_nodes.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/desis_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/desis_net.dir/message.cc.o.d"
  "/root/repo/src/net/node.cc" "src/net/CMakeFiles/desis_net.dir/node.cc.o" "gcc" "src/net/CMakeFiles/desis_net.dir/node.cc.o.d"
  "/root/repo/src/net/root_assembler.cc" "src/net/CMakeFiles/desis_net.dir/root_assembler.cc.o" "gcc" "src/net/CMakeFiles/desis_net.dir/root_assembler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/desis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/desis_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
