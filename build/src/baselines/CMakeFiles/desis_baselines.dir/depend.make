# Empty dependencies file for desis_baselines.
# This may be replaced when dependencies are built.
