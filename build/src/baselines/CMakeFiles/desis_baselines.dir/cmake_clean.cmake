file(REMOVE_RECURSE
  "CMakeFiles/desis_baselines.dir/ce_buffer.cc.o"
  "CMakeFiles/desis_baselines.dir/ce_buffer.cc.o.d"
  "CMakeFiles/desis_baselines.dir/de_bucket.cc.o"
  "CMakeFiles/desis_baselines.dir/de_bucket.cc.o.d"
  "libdesis_baselines.a"
  "libdesis_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desis_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
