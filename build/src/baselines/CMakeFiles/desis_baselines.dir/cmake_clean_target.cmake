file(REMOVE_RECURSE
  "libdesis_baselines.a"
)
