
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ce_buffer.cc" "src/baselines/CMakeFiles/desis_baselines.dir/ce_buffer.cc.o" "gcc" "src/baselines/CMakeFiles/desis_baselines.dir/ce_buffer.cc.o.d"
  "/root/repo/src/baselines/de_bucket.cc" "src/baselines/CMakeFiles/desis_baselines.dir/de_bucket.cc.o" "gcc" "src/baselines/CMakeFiles/desis_baselines.dir/de_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/desis_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
