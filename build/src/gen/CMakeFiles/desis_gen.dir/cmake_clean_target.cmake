file(REMOVE_RECURSE
  "libdesis_gen.a"
)
