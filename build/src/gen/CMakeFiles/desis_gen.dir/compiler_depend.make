# Empty compiler generated dependencies file for desis_gen.
# This may be replaced when dependencies are built.
