file(REMOVE_RECURSE
  "CMakeFiles/desis_gen.dir/data_generator.cc.o"
  "CMakeFiles/desis_gen.dir/data_generator.cc.o.d"
  "CMakeFiles/desis_gen.dir/query_generator.cc.o"
  "CMakeFiles/desis_gen.dir/query_generator.cc.o.d"
  "libdesis_gen.a"
  "libdesis_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desis_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
