file(REMOVE_RECURSE
  "CMakeFiles/desis_core.dir/aggregation.cc.o"
  "CMakeFiles/desis_core.dir/aggregation.cc.o.d"
  "CMakeFiles/desis_core.dir/engine.cc.o"
  "CMakeFiles/desis_core.dir/engine.cc.o.d"
  "CMakeFiles/desis_core.dir/operators.cc.o"
  "CMakeFiles/desis_core.dir/operators.cc.o.d"
  "CMakeFiles/desis_core.dir/query.cc.o"
  "CMakeFiles/desis_core.dir/query.cc.o.d"
  "CMakeFiles/desis_core.dir/query_analyzer.cc.o"
  "CMakeFiles/desis_core.dir/query_analyzer.cc.o.d"
  "CMakeFiles/desis_core.dir/query_parser.cc.o"
  "CMakeFiles/desis_core.dir/query_parser.cc.o.d"
  "CMakeFiles/desis_core.dir/slicer.cc.o"
  "CMakeFiles/desis_core.dir/slicer.cc.o.d"
  "CMakeFiles/desis_core.dir/window.cc.o"
  "CMakeFiles/desis_core.dir/window.cc.o.d"
  "libdesis_core.a"
  "libdesis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
