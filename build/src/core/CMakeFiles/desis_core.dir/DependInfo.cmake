
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/desis_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/desis_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/engine.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/core/CMakeFiles/desis_core.dir/operators.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/operators.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/desis_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/query.cc.o.d"
  "/root/repo/src/core/query_analyzer.cc" "src/core/CMakeFiles/desis_core.dir/query_analyzer.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/query_analyzer.cc.o.d"
  "/root/repo/src/core/query_parser.cc" "src/core/CMakeFiles/desis_core.dir/query_parser.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/query_parser.cc.o.d"
  "/root/repo/src/core/slicer.cc" "src/core/CMakeFiles/desis_core.dir/slicer.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/slicer.cc.o.d"
  "/root/repo/src/core/window.cc" "src/core/CMakeFiles/desis_core.dir/window.cc.o" "gcc" "src/core/CMakeFiles/desis_core.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
