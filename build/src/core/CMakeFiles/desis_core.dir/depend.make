# Empty dependencies file for desis_core.
# This may be replaced when dependencies are built.
