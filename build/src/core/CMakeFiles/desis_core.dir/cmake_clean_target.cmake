file(REMOVE_RECURSE
  "libdesis_core.a"
)
