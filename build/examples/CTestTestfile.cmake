# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_decentralized_iot "/root/repo/build/examples/decentralized_iot")
set_tests_properties(example_decentralized_iot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trip_analytics "/root/repo/build/examples/trip_analytics")
set_tests_properties(example_trip_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_query_console "/root/repo/build/examples/query_console")
set_tests_properties(example_query_console PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
