# Empty dependencies file for multi_query_sharing.
# This may be replaced when dependencies are built.
