file(REMOVE_RECURSE
  "CMakeFiles/multi_query_sharing.dir/multi_query_sharing.cpp.o"
  "CMakeFiles/multi_query_sharing.dir/multi_query_sharing.cpp.o.d"
  "multi_query_sharing"
  "multi_query_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_query_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
