file(REMOVE_RECURSE
  "CMakeFiles/decentralized_iot.dir/decentralized_iot.cpp.o"
  "CMakeFiles/decentralized_iot.dir/decentralized_iot.cpp.o.d"
  "decentralized_iot"
  "decentralized_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
