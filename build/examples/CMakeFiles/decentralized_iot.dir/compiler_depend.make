# Empty compiler generated dependencies file for decentralized_iot.
# This may be replaced when dependencies are built.
