file(REMOVE_RECURSE
  "CMakeFiles/trip_analytics.dir/trip_analytics.cpp.o"
  "CMakeFiles/trip_analytics.dir/trip_analytics.cpp.o.d"
  "trip_analytics"
  "trip_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trip_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
