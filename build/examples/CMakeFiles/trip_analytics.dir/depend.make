# Empty dependencies file for trip_analytics.
# This may be replaced when dependencies are built.
