file(REMOVE_RECURSE
  "CMakeFiles/query_console.dir/query_console.cpp.o"
  "CMakeFiles/query_console.dir/query_console.cpp.o.d"
  "query_console"
  "query_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
