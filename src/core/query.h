#ifndef DESIS_CORE_QUERY_H_
#define DESIS_CORE_QUERY_H_

#include <cstdint>
#include <string>

#include "common/event.h"
#include "core/aggregation.h"
#include "core/window.h"

namespace desis {

using QueryId = uint64_t;

/// How two selection predicates relate; drives query-group formation
/// (§4.2.3): identical and disjoint predicates may share a group,
/// overlapping predicates may not.
enum class PredicateRelation : uint8_t {
  kIdentical = 0,
  kDisjoint,
  kOverlapping,
};

/// A selection predicate over event key and value, e.g.
/// `WHERE key == 3 AND value > 80`. Empty constraints match everything.
struct Predicate {
  bool has_key = false;
  uint32_t key = 0;
  /// Half-open value interval [value_lo, value_hi); +-infinity when open.
  bool has_range = false;
  double value_lo = 0.0;
  double value_hi = 0.0;

  static Predicate All() { return Predicate{}; }
  static Predicate KeyEquals(uint32_t key) {
    Predicate p;
    p.has_key = true;
    p.key = key;
    return p;
  }
  static Predicate ValueRange(double lo, double hi) {
    Predicate p;
    p.has_range = true;
    p.value_lo = lo;
    p.value_hi = hi;
    return p;
  }
  static Predicate KeyAndRange(uint32_t key, double lo, double hi) {
    Predicate p = KeyEquals(key);
    p.has_range = true;
    p.value_lo = lo;
    p.value_hi = hi;
    return p;
  }

  bool Matches(const Event& e) const {
    if (has_key && e.key != key) return false;
    if (has_range && (e.value < value_lo || e.value >= value_hi)) return false;
    return true;
  }

  PredicateRelation RelationTo(const Predicate& other) const;

  std::string ToString() const;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

/// A continuous windowed aggregation query.
struct Query {
  QueryId id = 0;
  WindowSpec window;
  AggregationSpec agg;
  Predicate predicate;
  /// When set, duplicate events (full-field equality) within a slice are
  /// dropped before aggregation (the non-aggregate dedup operator, §4.2.3).
  bool deduplicate = false;

  Status Validate() const {
    if (auto s = window.Validate(); !s.ok()) return s;
    if (agg.fn == AggregationFunction::kQuantile &&
        (agg.quantile < 0.0 || agg.quantile > 1.0)) {
      return Status::InvalidArgument("quantile must lie in [0, 1]");
    }
    return Status::OK();
  }
};

/// One emitted window result.
struct WindowResult {
  QueryId query_id = 0;
  Timestamp window_start = 0;
  Timestamp window_end = 0;
  double value = 0.0;
  uint64_t event_count = 0;
};

}  // namespace desis

#endif  // DESIS_CORE_QUERY_H_
