#include "core/engine.h"

#include <algorithm>

namespace desis {

SlicingEngine::SlicingEngine(std::string name, SharingPolicy policy,
                             PunctuationStrategy punctuation,
                             DeploymentMode mode)
    : name_(std::move(name)),
      policy_(policy),
      punctuation_(punctuation),
      mode_(mode) {}

std::unique_ptr<StreamSlicer> SlicingEngine::MakeSlicer(QueryGroup group) {
  SlicerOptions options;
  options.punctuation = punctuation_;
  options.assemble_windows = assemble_windows_;
  options.keep_slices = keep_slices_;
  auto slicer = std::make_unique<StreamSlicer>(std::move(group), options,
                                               &stats_);
  slicer->set_window_sink(
      [this](const WindowResult& result) { Emit(result); });
  if (slice_sink_) slicer->set_slice_sink(slice_sink_);
  slicer->set_obs(tracer_, tracer_node_id_, tracer_role_);
  slicer->set_flight(flight_);
  if (slicers_.size() < kMaxInstrumentedGroups) {
    slicer->set_metrics(registry_);
  }
  if (gov_ != nullptr) slicer->set_memory(gov_);
  return slicer;
}

void SlicingEngine::EnableMemoryBudget(const mem::MemoryOptions& options) {
  owned_gov_ = options.budget_bytes == 0
                   ? nullptr
                   : std::make_unique<mem::MemoryGovernor>(options);
  set_memory_governor(owned_gov_.get());
}

void SlicingEngine::set_memory_governor(mem::MemoryGovernor* governor) {
  if (governor != owned_gov_.get()) owned_gov_.reset();
  gov_ = governor;
  for (auto& slicer : slicers_) slicer->set_memory(gov_);
  if (gov_ != nullptr && registry_ != nullptr) {
    gov_->AttachMetrics(registry_, {});
  }
}

void SlicingEngine::OnTracerAttached() {
  for (auto& slicer : slicers_) {
    slicer->set_obs(tracer_, tracer_node_id_, tracer_role_);
  }
}

void SlicingEngine::OnFlightRecorderAttached() {
  for (auto& slicer : slicers_) slicer->set_flight(flight_);
}

void SlicingEngine::OnRegistryAttached() {
  // Cap the instrumented groups: a no-sharing policy (DeBucket-style) can
  // produce thousands of one-query groups, and per-group series would bloat
  // every sidecar. The aggregate beyond the cap is still visible in
  // EngineStats; the cap itself is exported so readers notice truncation.
  for (size_t i = 0; i < slicers_.size(); ++i) {
    slicers_[i]->set_metrics(i < kMaxInstrumentedGroups ? registry_ : nullptr);
  }
  if (registry_ != nullptr && slicers_.size() > kMaxInstrumentedGroups) {
    if (obs::Gauge* g = registry_->GetGauge("group.metrics_truncated", {},
                                            "groups")) {
      g->Set(static_cast<int64_t>(slicers_.size() - kMaxInstrumentedGroups));
    }
  }
  if (gov_ != nullptr && registry_ != nullptr) {
    gov_->AttachMetrics(registry_, {});
  }
}

Status SlicingEngine::Configure(const std::vector<Query>& queries) {
  QueryAnalyzer analyzer(mode_, policy_);
  auto groups = analyzer.Analyze(queries);
  if (!groups.ok()) return groups.status();
  slicers_.clear();
  for (QueryGroup& group : groups.value()) {
    slicers_.push_back(MakeSlicer(std::move(group)));
  }
  next_query_seq_ = queries.size();
  return Status::OK();
}

Status SlicingEngine::ConfigureGroups(std::vector<QueryGroup> groups) {
  slicers_.clear();
  size_t queries = 0;
  for (QueryGroup& group : groups) {
    queries += group.queries.size();
    slicers_.push_back(MakeSlicer(std::move(group)));
  }
  next_query_seq_ = queries;
  return Status::OK();
}

void SlicingEngine::IngestOrdered(const Event& event) {
  ++stats_.events;
  last_ts_ = event.ts;
  for (auto& slicer : slicers_) slicer->Ingest(event);
}

void SlicingEngine::IngestOrderedBatch(const Event* events, size_t count) {
  if (count == 0) return;
  stats_.events += count;
  last_ts_ = events[count - 1].ts;
  for (auto& slicer : slicers_) slicer->IngestBatch(events, count);
}

void SlicingEngine::Ingest(const Event& event) {
  if (!reorder_.has_value()) {
    IngestOrdered(event);
    return;
  }
  reorder_->Push(event);
  Event released;
  while (reorder_->Pop(&released)) IngestOrdered(released);
}

void SlicingEngine::IngestBatch(const Event* events, size_t count) {
  if (!reorder_.has_value()) {
    IngestOrderedBatch(events, count);
    return;
  }
  // Interleave pushes with drains exactly like the per-event path (the
  // release frontier governs which late events are dropped), but accumulate
  // the released run and feed it downstream as one batch.
  release_scratch_.clear();
  for (size_t i = 0; i < count; ++i) {
    reorder_->Push(events[i]);
    reorder_->DrainReleased(&release_scratch_);
  }
  IngestOrderedBatch(release_scratch_.data(), release_scratch_.size());
}

void SlicingEngine::AdvanceTo(Timestamp watermark) {
  if (reorder_.has_value()) {
    release_scratch_.clear();
    reorder_->DrainUpTo(watermark, &release_scratch_);
    IngestOrderedBatch(release_scratch_.data(), release_scratch_.size());
  }
  for (auto& slicer : slicers_) slicer->AdvanceTo(watermark);
}

void SlicingEngine::Finish() {
  if (last_ts_ == kNoTimestamp) return;
  Timestamp extent = 0;
  for (auto& slicer : slicers_) {
    extent = std::max(extent, slicer->MaxFixedWindowExtent());
  }
  AdvanceTo(last_ts_ + extent + 1);
}

Status SlicingEngine::AddQuery(const Query& query) {
  if (auto s = query.Validate(); !s.ok()) return s;
  for (const auto& slicer : slicers_) {
    for (const GroupedQuery& gq : slicer->group().queries) {
      if (gq.query.id == query.id) {
        return Status::AlreadyExists("query id already registered");
      }
    }
  }
  // Runtime additions form their own group so running groups keep their
  // in-flight slices; a full restart re-partitions optimally.
  QueryAnalyzer analyzer(mode_, policy_);
  auto groups = analyzer.Analyze({query});
  if (!groups.ok()) return groups.status();
  for (QueryGroup& group : groups.value()) {
    group.id = static_cast<uint32_t>(slicers_.size());
    slicers_.push_back(MakeSlicer(std::move(group)));
  }
  return Status::OK();
}

Status SlicingEngine::RemoveQuery(QueryId id) {
  for (auto it = slicers_.begin(); it != slicers_.end(); ++it) {
    if ((*it)->SuppressQuery(id)) {
      if ((*it)->active_queries() == 0) slicers_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no running query with this id");
}

void SlicingEngine::SetSliceSink(SliceSink sink) {
  slice_sink_ = std::move(sink);
  for (auto& slicer : slicers_) slicer->set_slice_sink(slice_sink_);
}

}  // namespace desis
