#include "core/spec_layout.h"

#include <map>
#include <tuple>

namespace desis {

std::vector<SpecLayoutEntry> DeriveSpecLayout(const QueryGroup& group) {
  std::vector<SpecLayoutEntry> layout;
  using SpecKey = std::tuple<WindowType, WindowMeasure, int64_t, int64_t,
                             Timestamp, int>;
  std::map<SpecKey, uint32_t> lookup;  // groups can hold 100k+ queries
  for (uint32_t qi = 0; qi < group.queries.size(); ++qi) {
    const WindowSpec& spec = group.queries[qi].query.window;
    const int lane_filter =
        SpecLaneScoped(spec) ? static_cast<int>(group.queries[qi].lane) : -1;
    const SpecKey key{spec.type, spec.measure, spec.length, spec.slide,
                      spec.gap, lane_filter};
    auto [it, inserted] =
        lookup.try_emplace(key, static_cast<uint32_t>(layout.size()));
    if (inserted) {
      layout.push_back({spec, lane_filter, {}});
    }
    layout[it->second].query_idxs.push_back(qi);
  }
  return layout;
}

}  // namespace desis
