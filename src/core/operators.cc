#include "core/operators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace desis {

void SortedState::Add(double v) {
  assert(!sealed_);
  values_.push_back(v);
}

void SortedState::AddN(const double* v, size_t n) {
  assert(!sealed_);
  values_.insert(values_.end(), v, v + n);
}

void SortedState::Seal() {
  if (!sealed_) {
    std::sort(values_.begin(), values_.end());
    represented_ = values_.size();
    sealed_ = true;
    ThinToCap();
  }
}

void SortedState::ThinToCap() {
  if (sample_cap_ == 0 || values_.size() <= sample_cap_) return;
  // Stride-sample the sorted values: rank structure (and thus quantiles)
  // is preserved up to O(1/cap) rank error.
  std::vector<double> kept;
  kept.reserve(sample_cap_);
  const double stride = static_cast<double>(values_.size()) /
                        static_cast<double>(sample_cap_);
  for (size_t i = 0; i < sample_cap_; ++i) {
    kept.push_back(values_[static_cast<size_t>(
        (static_cast<double>(i) + 0.5) * stride)]);
  }
  values_ = std::move(kept);
}

void SortedState::Merge(const SortedState& other) {
  assert(sealed_ && other.sealed_);
  const size_t mid = values_.size();
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  std::inplace_merge(values_.begin(), values_.begin() + mid, values_.end());
  represented_ += other.represented_;
  ThinToCap();
}

double SortedState::Median() const {
  assert(sealed_ && !values_.empty());
  const size_t n = values_.size();
  if (n % 2 == 1) return values_[n / 2];
  return 0.5 * (values_[n / 2 - 1] + values_[n / 2]);
}

double SortedState::Quantile(double q) const {
  assert(sealed_ && !values_.empty());
  if (q <= 0.0) return values_.front();
  if (q >= 1.0) return values_.back();
  // Linear interpolation between closest ranks (type-7 quantile).
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_[lo];
  return values_[lo] + frac * (values_[lo + 1] - values_[lo]);
}

void SortedState::SerializeTo(ByteWriter& out) const {
  out.WriteU8(sealed_ ? 1 : 0);
  out.WriteU64(represented_);
  out.WriteU64(sample_cap_);
  out.WritePodVector(values_);
}

SortedState SortedState::DeserializeFrom(ByteReader& in) {
  SortedState state;
  state.sealed_ = in.ReadU8() != 0;
  state.represented_ = in.ReadU64();
  state.sample_cap_ = in.ReadU64();
  state.values_ = in.ReadPodVector<double>();
  return state;
}

int PartialAggregate::Add(double v) {
  int executed = 0;
  if (MaskHas(mask_, OperatorKind::kSum)) {
    sum_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kCount)) {
    count_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    multiply_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    minmax_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    sum_squares_.Add(v);
    ++executed;
  }
  return executed;
}

uint64_t PartialAggregate::AddN(const double* values, size_t n) {
  uint64_t executed = 0;
  if (MaskHas(mask_, OperatorKind::kSum)) {
    sum_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kCount)) {
    count_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    multiply_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    minmax_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    sum_squares_.AddN(values, n);
    executed += n;
  }
  return executed;
}

void PartialAggregate::Seal() {
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) sorted_.Seal();
}

void PartialAggregate::Merge(const PartialAggregate& other) {
  assert((mask_ & ~other.mask_) == 0);
  if (MaskHas(mask_, OperatorKind::kSum)) sum_.Merge(other.sum_);
  if (MaskHas(mask_, OperatorKind::kCount)) count_.Merge(other.count_);
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    multiply_.Merge(other.multiply_);
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    minmax_.Merge(other.minmax_);
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.Merge(other.sorted_);
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    sum_squares_.Merge(other.sum_squares_);
  }
}

double PartialAggregate::Finalize(const AggregationSpec& spec) const {
  assert((ResolveNeeded(OperatorsFor(spec.fn), mask_) & ~mask_) == 0);
  switch (spec.fn) {
    case AggregationFunction::kSum:
      return sum_.sum;
    case AggregationFunction::kCount:
      return static_cast<double>(count_.count);
    case AggregationFunction::kAverage:
      return count_.count == 0 ? 0.0
                               : sum_.sum / static_cast<double>(count_.count);
    case AggregationFunction::kProduct:
      return multiply_.product;
    case AggregationFunction::kGeometricMean:
      return count_.count == 0
                 ? 0.0
                 : std::pow(multiply_.product,
                            1.0 / static_cast<double>(count_.count));
    case AggregationFunction::kMin:
      // When a non-decomposable sort subsumed the decomposable one
      // (ReduceMask), extrema come from the sorted state.
      if (!MaskHas(mask_, OperatorKind::kDecomposableSort)) {
        return sorted_.size() == 0 ? 0.0 : sorted_.NthValue(0);
      }
      return minmax_.min;
    case AggregationFunction::kMax:
      if (!MaskHas(mask_, OperatorKind::kDecomposableSort)) {
        return sorted_.size() == 0 ? 0.0 : sorted_.NthValue(sorted_.size() - 1);
      }
      return minmax_.max;
    case AggregationFunction::kMedian:
      return sorted_.Median();
    case AggregationFunction::kQuantile:
      return sorted_.Quantile(spec.quantile);
    case AggregationFunction::kVariance:
    case AggregationFunction::kStdDev: {
      if (count_.count == 0) return 0.0;
      const double n = static_cast<double>(count_.count);
      const double mean = sum_.sum / n;
      const double variance =
          std::max(0.0, sum_squares_.sum_sq / n - mean * mean);
      return spec.fn == AggregationFunction::kVariance ? variance
                                                       : std::sqrt(variance);
    }
  }
  return 0.0;
}

void PartialAggregate::SerializeTo(ByteWriter& out) const {
  out.WriteU8(mask_);
  if (MaskHas(mask_, OperatorKind::kSum)) out.WriteDouble(sum_.sum);
  if (MaskHas(mask_, OperatorKind::kCount)) out.WriteU64(count_.count);
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    out.WriteDouble(multiply_.product);
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    out.WriteDouble(minmax_.min);
    out.WriteDouble(minmax_.max);
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.SerializeTo(out);
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    out.WriteDouble(sum_squares_.sum_sq);
  }
}

PartialAggregate PartialAggregate::DeserializeFrom(ByteReader& in) {
  PartialAggregate agg(in.ReadU8());
  if (MaskHas(agg.mask_, OperatorKind::kSum)) {
    agg.sum_.sum = in.ReadDouble();
  }
  if (MaskHas(agg.mask_, OperatorKind::kCount)) {
    agg.count_.count = in.ReadU64();
  }
  if (MaskHas(agg.mask_, OperatorKind::kMultiply)) {
    agg.multiply_.product = in.ReadDouble();
  }
  if (MaskHas(agg.mask_, OperatorKind::kDecomposableSort)) {
    agg.minmax_.min = in.ReadDouble();
    agg.minmax_.max = in.ReadDouble();
  }
  if (MaskHas(agg.mask_, OperatorKind::kNonDecomposableSort)) {
    agg.sorted_ = SortedState::DeserializeFrom(in);
  }
  if (MaskHas(agg.mask_, OperatorKind::kSumSquares)) {
    agg.sum_squares_.sum_sq = in.ReadDouble();
  }
  return agg;
}

}  // namespace desis
