#include "core/operators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace desis {

void SortedState::Add(double v) {
  assert(!sealed_);
  if (digest_) {
    digest_->Add(v);
    return;
  }
  values_.push_back(v);
}

void SortedState::AddN(const double* v, size_t n) {
  assert(!sealed_);
  if (digest_) {
    digest_->AddN(v, n);
    return;
  }
  values_.insert(values_.end(), v, v + n);
}

void SortedState::Seal() {
  if (!sealed_) {
    if (digest_) {
      digest_->Compress();
      represented_ = digest_->count();
      sealed_ = true;
      return;
    }
    std::sort(values_.begin(), values_.end());
    represented_ = values_.size();
    sealed_ = true;
    ThinToCap();
  }
}

void SortedState::EnableSketch(double compression) {
  assert(!sealed_ && values_.empty());
  digest_.emplace(compression);
}

void SortedState::Reserve(size_t additional) {
  if (digest_) return;
  values_.reserve(values_.size() + additional);
}

std::vector<double> SortedState::TakeSortedRun() {
  assert(!sealed_ && !digest_);
  std::sort(values_.begin(), values_.end());
  std::vector<double> run;
  run.swap(values_);  // swap (not move) guarantees the capacity is released
  return run;
}

std::vector<double> SortedState::TakeSealedValues() {
  assert(sealed_ && !digest_);
  std::vector<double> out;
  out.swap(values_);
  return out;
}

void SortedState::AdoptSorted(std::vector<double> sorted,
                              uint64_t represented) {
  assert(!digest_);
  values_ = std::move(sorted);
  represented_ = represented;
  sealed_ = true;
  ThinToCap();
}

void SortedState::ThinToCap() {
  if (sample_cap_ == 0 || values_.size() <= sample_cap_) return;
  // Stride-sample the sorted values: rank structure (and thus quantiles)
  // is preserved up to O(1/cap) rank error.
  std::vector<double> kept;
  kept.reserve(sample_cap_);
  const double stride = static_cast<double>(values_.size()) /
                        static_cast<double>(sample_cap_);
  for (size_t i = 0; i < sample_cap_; ++i) {
    kept.push_back(values_[static_cast<size_t>(
        (static_cast<double>(i) + 0.5) * stride)]);
  }
  values_ = std::move(kept);
}

void SortedState::Merge(const SortedState& other) {
  assert(sealed_ && other.sealed_);
  // Sketch infects the merge: once either side is a digest the exact ranks
  // are gone, so the result is a digest. Safe because sketch lanes are
  // per-group static — exact queries never assemble over sketch slices
  // (a sketch flip is a structural change, activation-gated like any other).
  if (digest_ || other.digest_) {
    if (!digest_) {
      mem::TDigest converted(other.digest_->compression());
      converted.AddN(values_.data(), values_.size());
      values_.clear();
      values_.shrink_to_fit();
      digest_ = std::move(converted);
    }
    if (other.digest_) {
      digest_->Merge(*other.digest_);
    } else {
      digest_->AddN(other.values_.data(), other.values_.size());
    }
    digest_->Compress();
    represented_ += other.represented_;
    return;
  }
  const size_t mid = values_.size();
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  std::inplace_merge(values_.begin(), values_.begin() + mid, values_.end());
  represented_ += other.represented_;
  ThinToCap();
}

double SortedState::Median() const {
  assert(sealed_);
  if (digest_) return digest_->Quantile(0.5);
  assert(!values_.empty());
  const size_t n = values_.size();
  if (n % 2 == 1) return values_[n / 2];
  return 0.5 * (values_[n / 2 - 1] + values_[n / 2]);
}

double SortedState::Quantile(double q) const {
  assert(sealed_);
  if (digest_) return digest_->Quantile(q);
  assert(!values_.empty());
  if (q <= 0.0) return values_.front();
  if (q >= 1.0) return values_.back();
  // Linear interpolation between closest ranks (type-7 quantile).
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_[lo];
  return values_[lo] + frac * (values_[lo + 1] - values_[lo]);
}

void SortedState::SerializeTo(ByteWriter& out) const {
  // Mode byte: bit 0 = sealed, bit 1 = sketch. Exact states keep writing
  // 0/1 exactly as before — the wire format (and thus bytes_sent baselines)
  // only changes for lanes that opted into the sketch.
  out.WriteU8(static_cast<uint8_t>((sealed_ ? 1 : 0) | (digest_ ? 2 : 0)));
  if (digest_) {
    out.WriteU64(represented_);
    digest_->SerializeTo(out);
    return;
  }
  out.WriteU64(represented_);
  out.WriteU64(sample_cap_);
  out.WritePodVector(values_);
}

SortedState SortedState::DeserializeFrom(ByteReader& in) {
  SortedState state;
  const uint8_t mode = in.ReadU8();
  state.sealed_ = (mode & 1) != 0;
  if ((mode & 2) != 0) {
    state.represented_ = in.ReadU64();
    state.digest_ = mem::TDigest::DeserializeFrom(in);
    return state;
  }
  state.represented_ = in.ReadU64();
  state.sample_cap_ = in.ReadU64();
  state.values_ = in.ReadPodVector<double>();
  return state;
}

int PartialAggregate::Add(double v) {
  int executed = 0;
  if (MaskHas(mask_, OperatorKind::kSum)) {
    sum_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kCount)) {
    count_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    multiply_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    minmax_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.Add(v);
    ++executed;
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    sum_squares_.Add(v);
    ++executed;
  }
  return executed;
}

uint64_t PartialAggregate::AddN(const double* values, size_t n) {
  uint64_t executed = 0;
  if (MaskHas(mask_, OperatorKind::kSum)) {
    sum_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kCount)) {
    count_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    multiply_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    minmax_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.AddN(values, n);
    executed += n;
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    sum_squares_.AddN(values, n);
    executed += n;
  }
  return executed;
}

void PartialAggregate::Seal() {
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) sorted_.Seal();
}

void PartialAggregate::Merge(const PartialAggregate& other) {
  assert((mask_ & ~other.mask_) == 0);
  if (MaskHas(mask_, OperatorKind::kSum)) sum_.Merge(other.sum_);
  if (MaskHas(mask_, OperatorKind::kCount)) count_.Merge(other.count_);
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    multiply_.Merge(other.multiply_);
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    minmax_.Merge(other.minmax_);
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.Merge(other.sorted_);
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    sum_squares_.Merge(other.sum_squares_);
  }
}

double PartialAggregate::Finalize(const AggregationSpec& spec) const {
  assert((ResolveNeeded(OperatorsFor(spec.fn), mask_) & ~mask_) == 0);
  switch (spec.fn) {
    case AggregationFunction::kSum:
      return sum_.sum;
    case AggregationFunction::kCount:
      return static_cast<double>(count_.count);
    case AggregationFunction::kAverage:
      return count_.count == 0 ? 0.0
                               : sum_.sum / static_cast<double>(count_.count);
    case AggregationFunction::kProduct:
      return multiply_.product;
    case AggregationFunction::kGeometricMean:
      return count_.count == 0
                 ? 0.0
                 : std::pow(multiply_.product,
                            1.0 / static_cast<double>(count_.count));
    case AggregationFunction::kMin:
      // When a non-decomposable sort subsumed the decomposable one
      // (ReduceMask), extrema come from the sorted state.
      if (!MaskHas(mask_, OperatorKind::kDecomposableSort)) {
        return sorted_.size() == 0 ? 0.0 : sorted_.MinValue();
      }
      return minmax_.min;
    case AggregationFunction::kMax:
      if (!MaskHas(mask_, OperatorKind::kDecomposableSort)) {
        return sorted_.size() == 0 ? 0.0 : sorted_.MaxValue();
      }
      return minmax_.max;
    case AggregationFunction::kMedian:
      return sorted_.Median();
    case AggregationFunction::kQuantile:
      return sorted_.Quantile(spec.quantile);
    case AggregationFunction::kVariance:
    case AggregationFunction::kStdDev: {
      if (count_.count == 0) return 0.0;
      const double n = static_cast<double>(count_.count);
      const double mean = sum_.sum / n;
      const double variance =
          std::max(0.0, sum_squares_.sum_sq / n - mean * mean);
      return spec.fn == AggregationFunction::kVariance ? variance
                                                       : std::sqrt(variance);
    }
  }
  return 0.0;
}

void PartialAggregate::SerializeTo(ByteWriter& out) const {
  out.WriteU8(mask_);
  if (MaskHas(mask_, OperatorKind::kSum)) out.WriteDouble(sum_.sum);
  if (MaskHas(mask_, OperatorKind::kCount)) out.WriteU64(count_.count);
  if (MaskHas(mask_, OperatorKind::kMultiply)) {
    out.WriteDouble(multiply_.product);
  }
  if (MaskHas(mask_, OperatorKind::kDecomposableSort)) {
    out.WriteDouble(minmax_.min);
    out.WriteDouble(minmax_.max);
  }
  if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
    sorted_.SerializeTo(out);
  }
  if (MaskHas(mask_, OperatorKind::kSumSquares)) {
    out.WriteDouble(sum_squares_.sum_sq);
  }
}

PartialAggregate PartialAggregate::DeserializeFrom(ByteReader& in) {
  PartialAggregate agg(in.ReadU8());
  if (MaskHas(agg.mask_, OperatorKind::kSum)) {
    agg.sum_.sum = in.ReadDouble();
  }
  if (MaskHas(agg.mask_, OperatorKind::kCount)) {
    agg.count_.count = in.ReadU64();
  }
  if (MaskHas(agg.mask_, OperatorKind::kMultiply)) {
    agg.multiply_.product = in.ReadDouble();
  }
  if (MaskHas(agg.mask_, OperatorKind::kDecomposableSort)) {
    agg.minmax_.min = in.ReadDouble();
    agg.minmax_.max = in.ReadDouble();
  }
  if (MaskHas(agg.mask_, OperatorKind::kNonDecomposableSort)) {
    agg.sorted_ = SortedState::DeserializeFrom(in);
  }
  if (MaskHas(agg.mask_, OperatorKind::kSumSquares)) {
    agg.sum_squares_.sum_sq = in.ReadDouble();
  }
  return agg;
}

}  // namespace desis
