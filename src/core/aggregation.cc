#include "core/aggregation.h"

#include <bit>

namespace desis {

OperatorMask OperatorsFor(AggregationFunction fn) {
  switch (fn) {
    case AggregationFunction::kSum:
      return MaskOf(OperatorKind::kSum);
    case AggregationFunction::kCount:
      return MaskOf(OperatorKind::kCount);
    case AggregationFunction::kAverage:
      return MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount);
    case AggregationFunction::kProduct:
      return MaskOf(OperatorKind::kMultiply);
    case AggregationFunction::kGeometricMean:
      return MaskOf(OperatorKind::kMultiply) | MaskOf(OperatorKind::kCount);
    case AggregationFunction::kMin:
    case AggregationFunction::kMax:
      return MaskOf(OperatorKind::kDecomposableSort);
    case AggregationFunction::kMedian:
    case AggregationFunction::kQuantile:
      return MaskOf(OperatorKind::kNonDecomposableSort);
    case AggregationFunction::kVariance:
    case AggregationFunction::kStdDev:
      return MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
             MaskOf(OperatorKind::kSumSquares);
  }
  return 0;
}

bool IsDecomposable(AggregationFunction fn) {
  return fn != AggregationFunction::kMedian &&
         fn != AggregationFunction::kQuantile;
}

std::string ToString(AggregationFunction fn) {
  switch (fn) {
    case AggregationFunction::kSum: return "sum";
    case AggregationFunction::kCount: return "count";
    case AggregationFunction::kAverage: return "average";
    case AggregationFunction::kProduct: return "product";
    case AggregationFunction::kGeometricMean: return "geometric_mean";
    case AggregationFunction::kMin: return "min";
    case AggregationFunction::kMax: return "max";
    case AggregationFunction::kMedian: return "median";
    case AggregationFunction::kQuantile: return "quantile";
    case AggregationFunction::kVariance: return "variance";
    case AggregationFunction::kStdDev: return "stddev";
  }
  return "unknown";
}

std::string ToString(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSum: return "sum";
    case OperatorKind::kCount: return "count";
    case OperatorKind::kMultiply: return "multiplication";
    case OperatorKind::kDecomposableSort: return "decomposable_sort";
    case OperatorKind::kNonDecomposableSort: return "non_decomposable_sort";
    case OperatorKind::kSumSquares: return "sum_of_squares";
  }
  return "unknown";
}

const char* OperatorShortName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSum: return "sum";
    case OperatorKind::kCount: return "count";
    case OperatorKind::kMultiply: return "mult";
    case OperatorKind::kDecomposableSort: return "dsort";
    case OperatorKind::kNonDecomposableSort: return "ndsort";
    case OperatorKind::kSumSquares: return "sumsq";
  }
  return "unknown";
}

int OperatorCount(OperatorMask mask) { return std::popcount(mask); }

OperatorMask ResolveNeeded(OperatorMask needed, OperatorMask group_mask) {
  if (MaskHas(needed, OperatorKind::kDecomposableSort) &&
      !MaskHas(group_mask, OperatorKind::kDecomposableSort)) {
    needed = static_cast<OperatorMask>(
        (needed & ~MaskOf(OperatorKind::kDecomposableSort)) |
        MaskOf(OperatorKind::kNonDecomposableSort));
  }
  return needed;
}

OperatorMask ReduceMask(OperatorMask mask) {
  if (MaskHas(mask, OperatorKind::kNonDecomposableSort)) {
    mask &= static_cast<OperatorMask>(
        ~MaskOf(OperatorKind::kDecomposableSort));
  }
  return mask;
}

}  // namespace desis
