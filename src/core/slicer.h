#ifndef DESIS_CORE_SLICER_H_
#define DESIS_CORE_SLICER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/event.h"
#include "core/operators.h"
#include "core/query_analyzer.h"
#include "core/stats.h"
#include "mem/memory_governor.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace desis {

/// Marks a window that ended exactly at the end of a slice; shipped with
/// slice partials so downstream nodes can terminate windows (§5.1).
struct EpInfo {
  uint32_t spec_idx = 0;
  Timestamp window_start = 0;
  Timestamp window_end = 0;
};

/// A sealed slice: the shared partial results of all events between two
/// punctuations, one PartialAggregate per selection lane (§4.1).
struct SliceRecord {
  /// Auto-incrementing slice id (§5.1.1); ids are dense over non-empty
  /// slices and used to match partials across nodes for fixed windows.
  uint64_t id = 0;
  Timestamp start = 0;
  Timestamp end = 0;
  /// Timestamp of the last event folded into this slice (kNoTimestamp when
  /// empty); carried for distributed session-gap tracking (§5.1.2).
  Timestamp last_event_ts = kNoTimestamp;
  std::vector<PartialAggregate> lanes;
  std::vector<uint64_t> lane_events;
  /// Per-lane timestamp of the last matching event (session windows are
  /// lane-scoped: a query's gap is measured on its own selection).
  std::vector<Timestamp> lane_last_ts;
  /// Windows that ended at `end` (used by user-defined windows downstream).
  std::vector<EpInfo> eps;

  uint64_t TotalEvents() const {
    uint64_t total = 0;
    for (uint64_t n : lane_events) total += n;
    return total;
  }
};

using SliceSink = std::function<void(const SliceRecord&)>;
using WindowSink = std::function<void(const WindowResult&)>;
/// Receives the merged (not yet finalized) operator states of a closing
/// window; used by systems that ship per-window partial results upstream
/// (the Disco baseline, §5).
using WindowPartialSink =
    std::function<void(QueryId, Timestamp window_start, Timestamp window_end,
                       const PartialAggregate&, uint64_t events)>;

/// How window boundaries are detected. Desis precomputes upcoming
/// punctuations in a priority queue ("calculate window ends in advance",
/// §6.2.1); the DeSW/Scotty baselines re-check every window spec on each
/// arriving event.
enum class PunctuationStrategy : uint8_t {
  kPrecomputed = 0,
  kPerEventScan,
};

struct SlicerOptions {
  PunctuationStrategy punctuation = PunctuationStrategy::kPrecomputed;
  /// Assemble and emit final window results on this node. Disabled on
  /// decentralized local/intermediate nodes, which only ship slice partials.
  bool assemble_windows = true;
  /// Retain sealed slices for window assembly. Disabled together with
  /// assemble_windows so local nodes keep no slice history.
  bool keep_slices = true;
};

/// Stream slicer + window merger for one query-group: cuts the stream into
/// slices at start/end punctuations, folds each event into the group's
/// shared operators once per matching lane, and assembles window results
/// from slice partials when end punctuations fire (§4).
class StreamSlicer : public mem::SpillClient {
 public:
  StreamSlicer(QueryGroup group, SlicerOptions options, EngineStats* stats);
  ~StreamSlicer() override;

  StreamSlicer(const StreamSlicer&) = delete;
  StreamSlicer& operator=(const StreamSlicer&) = delete;

  void set_window_sink(WindowSink sink) { window_sink_ = std::move(sink); }
  void set_slice_sink(SliceSink sink) { slice_sink_ = std::move(sink); }
  /// When set, closing windows emit merged partials through this sink
  /// instead of finalized results.
  void set_window_partial_sink(WindowPartialSink sink) {
    window_partial_sink_ = std::move(sink);
  }

  /// Attaches a slice tracer: every sealed slice records a kSliceCreated
  /// span tagged with the owning node's id/role (obs::kSpanRoleEngine for
  /// single-node engines). Null detaches. Per-slice cost, never per-event.
  void set_obs(obs::SliceTracer* tracer, uint32_t node_id, uint8_t role) {
    tracer_ = tracer;
    obs_node_id_ = node_id;
    obs_role_ = role;
  }

  /// Attaches the owning node's flight recorder: slice seals and
  /// spill/restore transitions land on the node's black-box ring
  /// (kSliceSeal / kSpill / kRestore). Null detaches. Same per-slice (not
  /// per-event) cost discipline as set_obs.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  /// Attaches cost-attribution metrics (labels {group}, docs/METRICS.md):
  /// group.events_in counts ingested events, group.operator_evals{op} one
  /// series per active operator in the group's mask. Evals are flushed per
  /// *sealed slice* (each fold pays every mask operator once), so the hot
  /// path stays allocation- and atomic-free; events_in accumulates in a
  /// plain integer and flushes at seal/advance/batch boundaries. Several
  /// slicers of the same group (one per cluster local) share the series —
  /// the handles are relaxed atomics. Null detaches.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches this slicer to a memory governor: live slice state (open
  /// sort buffers, sealed records, dedup sets) is byte-accounted against
  /// the governor's budget, and the governor may call back ShedBytes() to
  /// spill cold non-decomposable sort buffers to disk runs. Null detaches
  /// (discharging everything). With no governor attached — the default —
  /// the ingest path performs zero accounting (seed-identical behaviour).
  void set_memory(mem::MemoryGovernor* gov);

  /// SpillClient: sheds resident bytes by spilling, preferring the coldest
  /// state first — sealed (already shipped) slice records oldest-first,
  /// then the open slice's largest sort buffers. Returns bytes released.
  uint64_t ShedBytes(uint64_t target) override;

  /// Processes one event (non-decreasing ts order).
  void Ingest(const Event& event);

  /// Processes a batch of events (non-decreasing ts order, within the batch
  /// and relative to earlier calls), producing results identical to calling
  /// Ingest() per event. Groups whose boundaries are all precomputable time
  /// punctuations (no session, user-defined, or count-measure specs) and
  /// that have no dedup lanes take a run-based fast path: the batch is split
  /// into maximal runs that fall strictly inside the current slice, and each
  /// run is folded with one predicate sweep and one bulk AddN per lane.
  /// Everything else falls back to the per-event path automatically.
  void IngestBatch(const Event* events, size_t count);

  /// Advances event time, firing punctuations at or before `watermark`.
  void AdvanceTo(Timestamp watermark);

  const QueryGroup& group() const { return group_; }

  /// Registers one query into the running slicer (incremental group
  /// maintenance, §3.2): `lane` is the lane the query binds to (==
  /// group().lanes.size() to open the new lane `lane_def`). Structural
  /// changes (new lane, widened operator mask, new window spec) seal the
  /// open slice first, so earlier slices keep their shape and downstream
  /// nodes never see a mixed-width slice. Windows starting before
  /// `active_from` are not emitted for the new query (kNoTimestamp =
  /// active from the beginning; pre-ingest adds then match a cold-start
  /// configuration exactly).
  void ApplyQueryAdd(const Query& q, uint32_t lane,
                     const SelectionLane& lane_def, Timestamp active_from);

  /// Marks a query's results as suppressed (runtime query removal, §3.2).
  /// Returns false if the id is not in this group.
  bool SuppressQuery(QueryId id);
  /// Number of queries still active (not suppressed).
  size_t active_queries() const { return group_.queries.size() - suppressed_.size(); }

  /// Largest window extent over the group's fixed-size windows, in
  /// microseconds; used by callers to pick a final flush watermark.
  Timestamp MaxFixedWindowExtent() const;

  /// The timestamp up to which everything has been sealed (and shipped via
  /// the slice sink): decentralized nodes must advertise this — not the raw
  /// processed timestamp — as their watermark, or the root would terminate
  /// windows while events still sit in an unsealed slice (§5.1.2).
  /// O(1): `current_slice_events_` tracks the open slice's fold count.
  Timestamp SafeWatermark() const {
    return current_slice_events_ == 0 ? last_seen_ts_ : current_slice_start_;
  }

 private:
  // One distinct WindowSpec in the group. Queries with identical specs
  // share punctuations, open-window bookkeeping, and assembly.
  struct SpecState {
    WindowSpec spec;
    std::vector<uint32_t> query_idxs;  // indices into group_.queries
    // Session, user-defined and count windows are scoped to one selection
    // lane (their boundaries depend on which events match); fixed time
    // windows are lane-independent (-1).
    int lane_filter = -1;
    struct OpenWindow {
      Timestamp start_ts;
      uint64_t first_slice_id;
    };
    std::deque<OpenWindow> open;
    // Time-based fixed windows: next scheduled punctuations.
    Timestamp next_sp = kNoTimestamp;
    Timestamp next_ep = kNoTimestamp;
    // Session / user-defined window state.
    bool active = false;
  };

  // All session specs selecting the same lane share that lane's activity:
  // their deadlines are `lane_last_event + gap`, so keeping the specs
  // sorted by gap gives O(1) next-deadline lookups regardless of how many
  // session queries run (the inactive ones form the sorted prefix).
  struct SessionLane {
    uint32_t lane = 0;
    std::vector<uint32_t> specs_by_gap;  // ascending gap
    size_t num_inactive = 0;             // prefix [0, num_inactive) closed
    Timestamp last_event = kNoTimestamp;
  };

  struct CountBoundary {
    uint64_t count;
    uint8_t kind;  // 0 = ep, 1 = sp
    uint32_t spec_idx;
    bool operator>(const CountBoundary& other) const {
      if (count != other.count) return count > other.count;
      return kind > other.kind;
    }
  };

  struct Boundary {
    Timestamp ts;
    uint8_t kind;  // 0 = ep, 1 = sp (eps processed first at equal ts)
    uint32_t spec_idx;
    // Factor-window DAG depth: at equal (ts, kind), feeder specs fire
    // before dependents so their window composites exist when consumed.
    // 0 for every spec when no plan is active (ordering unchanged).
    uint8_t rank = 0;
    bool operator>(const Boundary& other) const {
      if (ts != other.ts) return ts > other.ts;
      if (kind != other.kind) return kind > other.kind;
      return rank > other.rank;
    }
  };

  /// Sealed per-lane states of one closed feeder window, kept under the
  /// group plan's lane masks so any dependent query's needed mask fits.
  struct FactorComposite {
    std::vector<PartialAggregate> lanes;
    std::vector<uint64_t> lane_events;
  };

  void Initialize(Timestamp first_ts);
  void ScheduleInitial(uint32_t spec_idx, Timestamp first_ts,
                       uint64_t first_slice_id = 0);
  /// Effective fold mask for a lane: the plan's reduced per-lane mask when
  /// a plan is active, else the group mask (static behaviour).
  OperatorMask LaneMask(uint32_t lane) const {
    const auto& lm = group_.plan.lane_masks;
    return (group_.plan.optimized && lane < lm.size() && lm[lane] != 0)
               ? lm[lane]
               : group_.mask;
  }
  /// False while windows starting at `ws` predate the query's activation.
  bool ActiveFor(uint32_t qi, Timestamp ws) const {
    const Timestamp af =
        qi < active_from_.size() ? active_from_[qi] : kNoTimestamp;
    return af == kNoTimestamp || ws >= af;
  }
  // Fires all time-based punctuations (incl. session deadlines) <= limit.
  void ProcessBoundariesUpTo(Timestamp limit);
  // Earliest pending time punctuation (kMaxTimestamp when none). Only valid
  // on the batch fast path, where no session deadlines exist.
  Timestamp NextBoundaryTs() const;
  // Folds a run of events known to fall strictly before the next
  // punctuation: one predicate sweep and one bulk AddN per lane.
  void FoldRun(const Event* run, size_t n);
  void ProcessEp(uint32_t spec_idx, Timestamp ts);
  void ProcessSp(uint32_t spec_idx, Timestamp ts);
  void ProcessSessionEnd(uint32_t spec_idx, Timestamp deadline);
  void ProcessCountBoundaries(Timestamp now, uint32_t lane);
  // Seals the current slice at `end_ts`; returns the id of the last sealed
  // slice (the fresh current slice gets the next id). Empty slices leave no
  // record.
  uint64_t SealCurrentSlice(Timestamp end_ts);
  void CloseWindow(uint32_t spec_idx, SpecState::OpenWindow window,
                   uint64_t last_slice_id, Timestamp end_ts);
  void FlushShippableSlice();
  void CollectGarbage();

  // --- Memory governance (all no-ops while gov_ == nullptr) -------------
  /// Builds the fold state for `lane`: the lane mask, plus the t-digest
  /// sketch when every median/quantile query on the lane opted in.
  PartialAggregate MakeLanePartial(uint32_t lane) const;
  /// Whether `lane` should fold quantile state into a sketch; `extra`
  /// (binding to `extra_lane`) is a query about to be added, so structural
  /// detection can evaluate the post-add shape before mutating the group.
  bool LaneWantsSketch(uint32_t lane, const Query* extra,
                       uint32_t extra_lane) const;
  void RecomputeLaneSketch();
  /// Delta-charges the governor with the lane's current buffer bytes.
  void UpdateLaneCharge(uint32_t lane);
  /// Delta-charges the estimated dedup-set footprint.
  void UpdateDedupCharge();
  /// Lazily creates the spill run file; false once creation failed.
  bool EnsureSpillFile();
  /// Spills an open-slice sort buffer to a run (merged back at seal time).
  uint64_t SpillOpenLane(uint32_t lane);
  /// Spills a sealed record's sorted values whole (read back on demand).
  uint64_t SpillSealedLane(SliceRecord& rec, uint32_t lane);
  /// Window assembly's merge of one record lane into `acc`: resident lanes
  /// merge directly; spilled lanes are read from their run into a sealed
  /// temporary and merged from there, leaving the record cold on disk (no
  /// governor charge — peak residency stays at the budget, not the window
  /// footprint).
  void MergeRecordLane(PartialAggregate& acc, const SliceRecord& rec,
                       uint32_t lane);
  /// Total bytes currently charged to the governor by this slicer.
  uint64_t ChargedBytes() const;
  void WarnSpillError(const Status& status);

  // Flushes pending_events_in_ into the group.events_in counter; called at
  // slice seals, watermark advances, and batch boundaries.
  void FlushEventsInCounter() {
    if (pending_events_in_ != 0 && events_in_counter_ != nullptr) {
      events_in_counter_->Add(pending_events_in_);
    }
    pending_events_in_ = 0;
  }

  QueryGroup group_;
  SlicerOptions options_;
  EngineStats* stats_;
  obs::SliceTracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  uint32_t obs_node_id_ = 0;
  uint8_t obs_role_ = obs::kSpanRoleEngine;
  // Cost-attribution handles (null when detached / DESIS_OBS=OFF); indexed
  // by OperatorKind, null for operators outside the group mask.
  obs::Counter* events_in_counter_ = nullptr;
  obs::Counter* op_eval_counters_[kNumOperatorKinds] = {};
  obs::Gauge* queries_gauge_ = nullptr;
  obs::MetricsRegistry* registry_ = nullptr;
  uint64_t pending_events_in_ = 0;
  WindowSink window_sink_;
  SliceSink slice_sink_;
  WindowPartialSink window_partial_sink_;

  std::vector<SpecState> specs_;
  std::vector<SessionLane> session_lanes_;
  std::vector<int> lane_session_idx_;  // lane -> session_lanes_ index or -1
  std::vector<uint32_t> ud_specs_;
  // Per-lane count-window trigger heaps (lane-local event counts).
  std::vector<
      std::priority_queue<CountBoundary, std::vector<CountBoundary>,
                          std::greater<CountBoundary>>>
      count_heaps_;
  uint64_t gc_tick_ = 0;
  std::vector<uint32_t> count_specs_;  // spec indices with count measure
  bool initialized_ = false;

  // Precomputed-punctuation heap (Desis) — unused under kPerEventScan.
  std::priority_queue<Boundary, std::vector<Boundary>, std::greater<Boundary>>
      boundary_heap_;

  // Current (open) slice.
  uint64_t current_slice_id_ = 0;
  Timestamp current_slice_start_ = kNoTimestamp;
  Timestamp current_last_event_ = kNoTimestamp;
  std::vector<PartialAggregate> current_lanes_;
  std::vector<uint64_t> current_lane_events_;
  // Events folded into the open slice, summed over lanes; keeps
  // SafeWatermark() and the empty-slice check O(1) instead of O(lanes).
  uint64_t current_slice_events_ = 0;
  std::vector<std::unordered_set<uint64_t>> dedup_sets_;
  bool any_dedup_ = false;
  // True when every spec is a fixed-size time window and no lane dedups:
  // batch ingestion may then split runs at precomputed punctuations.
  bool batch_fast_path_ = false;

  // Sealed slices retained for assembly; front().id is the base id.
  std::deque<SliceRecord> records_;
  bool have_unshipped_ = false;

  std::vector<uint64_t> lane_total_events_;
  std::vector<Timestamp> current_lane_last_ts_;
  Timestamp last_seen_ts_ = kNoTimestamp;
  std::unordered_set<QueryId> suppressed_;
  /// Per-query activation watermark (parallel to group_.queries):
  /// kNoTimestamp = active since the beginning. See ApplyQueryAdd.
  std::vector<Timestamp> active_from_;
  /// Factor-window execution (plan.feeder): closed feeder windows keyed by
  /// (start, end); dependents merge one composite per covered sub-range
  /// instead of every base slice, falling back to base slices for ranges
  /// without a composite (stream head, runtime-added specs).
  std::map<std::pair<Timestamp, Timestamp>, FactorComposite> composites_;
  std::vector<uint8_t> spec_rank_;      // plan DAG depth per spec
  std::vector<bool> spec_is_feeder_;    // spec feeds at least one dependent
  std::vector<uint32_t> matched_lanes_scratch_;
  std::vector<double> run_values_scratch_;

  // --- Memory governance state ------------------------------------------
  mem::MemoryGovernor* gov_ = nullptr;
  std::unique_ptr<mem::SpillFile> spill_;
  bool spill_failed_ = false;  // run-file creation/IO failed; stop trying
  bool spill_warned_ = false;  // one stderr warning per slicer
  /// Bytes charged for each open-slice lane buffer (parallel to lanes).
  std::vector<uint64_t> lane_charged_;
  /// Open-slice spill runs per lane, merged back at seal time.
  std::vector<std::vector<uint32_t>> lane_runs_;
  /// Values spilled out of the open slice per lane (for `represented`).
  std::vector<uint64_t> lane_spilled_count_;
  /// Lanes whose quantile state is a t-digest sketch (see LaneWantsSketch).
  std::vector<uint8_t> lane_sketch_;
  obs::Gauge* sketch_gauge_ = nullptr;
  /// Sealed-record lanes currently cold on disk: (slice id, lane) -> run.
  struct SealedSpill {
    uint32_t run;
    uint64_t represented;
  };
  std::map<std::pair<uint64_t, uint32_t>, SealedSpill> sealed_spills_;
  /// Elements across all dedup sets; footprint is estimated from it.
  uint64_t dedup_inserted_ = 0;
  uint64_t dedup_charged_ = 0;
};

}  // namespace desis

#endif  // DESIS_CORE_SLICER_H_
