#include "core/query_analyzer.h"

#include <cstdint>
#include <map>
#include <tuple>

#include "core/grouping.h"

namespace desis {

Result<std::vector<QueryGroup>> QueryAnalyzer::Analyze(
    const std::vector<Query>& queries) const {
  std::map<QueryId, int> seen_ids;
  for (const Query& q : queries) {
    if (auto s = q.Validate(); !s.ok()) return s;
    if (++seen_ids[q.id] > 1) {
      return Status::InvalidArgument("duplicate query id");
    }
  }

  std::vector<QueryGroup> groups;
  // (root_only, sharing class) -> indices of candidate groups, probed in
  // order; a query opens a new group only if no compatible group exists.
  // The incremental opt::GroupIndex replays exactly this probe order, so a
  // runtime-added query lands in the same group a cold-start analyze would
  // pick.
  std::map<std::pair<bool, uint64_t>, std::vector<size_t>> buckets;

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    const bool root_only = grouping::RootOnly(mode_, q);
    const uint64_t cls = grouping::SharingClass(policy_, q, qi);

    bool placed = false;
    for (size_t gi : buckets[{root_only, cls}]) {
      uint32_t lane = 0;
      if (!grouping::FindLane(groups[gi].lanes, q, &lane)) continue;
      if (lane == groups[gi].lanes.size()) {
        groups[gi].lanes.push_back({q.predicate, q.deduplicate});
      }
      groups[gi].queries.push_back({q, lane});
      groups[gi].mask = ReduceMask(
          static_cast<OperatorMask>(groups[gi].mask | OperatorsFor(q.agg.fn)));
      placed = true;
      break;
    }
    if (!placed) {
      QueryGroup group;
      group.id = static_cast<uint32_t>(groups.size());
      group.root_only = root_only;
      group.lanes.push_back({q.predicate, q.deduplicate});
      group.queries.push_back({q, 0});
      group.mask = OperatorsFor(q.agg.fn);
      buckets[{root_only, cls}].push_back(groups.size());
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

void RegisterGroupMetrics(const QueryGroup& group,
                          obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const obs::Labels labels = {{"group", std::to_string(group.id)}};
  // Null-guarded: the DESIS_OBS=OFF stub registry hands out null gauges.
  auto set = [&](const char* name, const char* unit, int64_t v) {
    if (obs::Gauge* g = registry->GetGauge(name, labels, unit)) g->Set(v);
  };
  set("group.queries", "queries", static_cast<int64_t>(group.queries.size()));
  set("group.operators", "operators", OperatorCount(group.mask));
  set("group.lanes", "lanes", static_cast<int64_t>(group.lanes.size()));
  set("group.root_only", "bool", group.root_only ? 1 : 0);
  if (group.plan.optimized) {
    set("opt.rewrites", "edges", static_cast<int64_t>(group.plan.rewrites));
    set("opt.dag_depth", "levels",
        static_cast<int64_t>(group.plan.dag_depth));
  }
}

}  // namespace desis
