#include "core/query_analyzer.h"

#include <cstdint>
#include <map>
#include <tuple>

namespace desis {
namespace {

// True if `q` may join a group with the given lanes: its predicate must be
// identical to some lane's or disjoint from every lane's (§4.2.3). Returns
// the lane index to use via `lane_out` (== lanes.size() for a new lane).
bool FindLane(const std::vector<SelectionLane>& lanes, const Query& q,
              uint32_t* lane_out) {
  uint32_t new_lane = static_cast<uint32_t>(lanes.size());
  for (uint32_t i = 0; i < lanes.size(); ++i) {
    switch (lanes[i].predicate.RelationTo(q.predicate)) {
      case PredicateRelation::kIdentical:
        if (lanes[i].deduplicate == q.deduplicate) {
          *lane_out = i;
          return true;
        }
        // Same predicate but different dedup semantics: needs its own lane;
        // identical lanes are allowed to coexist (the event is simply folded
        // into both).
        break;
      case PredicateRelation::kDisjoint:
        break;
      case PredicateRelation::kOverlapping:
        return false;  // partially overlapping selections cannot share.
    }
  }
  *lane_out = new_lane;
  return true;
}

// Key that splits queries into sharing classes under the given policy.
// Cross-function sharing maps everything to one class; per-function sharing
// (Scotty/DeSW) splits by function, quantile and measure; per-query sharing
// gives every query its own class.
uint64_t SharingClass(SharingPolicy policy, const Query& q, size_t index) {
  switch (policy) {
    case SharingPolicy::kCrossFunction:
      return 0;
    case SharingPolicy::kPerFunction: {
      const uint64_t fn = static_cast<uint64_t>(q.agg.fn);
      const uint64_t measure = static_cast<uint64_t>(q.window.measure);
      // Distinct quantile parameters are distinct functions for sharing.
      const uint64_t qmille =
          q.agg.fn == AggregationFunction::kQuantile
              ? static_cast<uint64_t>(q.agg.quantile * 100000.0)
              : 0;
      return (fn << 40) | (measure << 32) | qmille;
    }
    case SharingPolicy::kPerQuery:
      return static_cast<uint64_t>(index) + 1;
  }
  return 0;
}

}  // namespace

Result<std::vector<QueryGroup>> QueryAnalyzer::Analyze(
    const std::vector<Query>& queries) const {
  std::map<QueryId, int> seen_ids;
  for (const Query& q : queries) {
    if (auto s = q.Validate(); !s.ok()) return s;
    if (++seen_ids[q.id] > 1) {
      return Status::InvalidArgument("duplicate query id");
    }
  }

  std::vector<QueryGroup> groups;
  // (root_only, sharing class) -> indices of candidate groups, probed in
  // order; a query opens a new group only if no compatible group exists.
  std::map<std::pair<bool, uint64_t>, std::vector<size_t>> buckets;

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    // Count-based windows cannot be terminated locally: only the root sees
    // the global event count (§5.2). In centralized mode everything shares.
    const bool root_only = mode_ == DeploymentMode::kDecentralized &&
                           q.window.measure == WindowMeasure::kCount;
    const uint64_t cls = SharingClass(policy_, q, qi);

    bool placed = false;
    for (size_t gi : buckets[{root_only, cls}]) {
      uint32_t lane = 0;
      if (!FindLane(groups[gi].lanes, q, &lane)) continue;
      if (lane == groups[gi].lanes.size()) {
        groups[gi].lanes.push_back({q.predicate, q.deduplicate});
      }
      groups[gi].queries.push_back({q, lane});
      groups[gi].mask = ReduceMask(
          static_cast<OperatorMask>(groups[gi].mask | OperatorsFor(q.agg.fn)));
      placed = true;
      break;
    }
    if (!placed) {
      QueryGroup group;
      group.id = static_cast<uint32_t>(groups.size());
      group.root_only = root_only;
      group.lanes.push_back({q.predicate, q.deduplicate});
      group.queries.push_back({q, 0});
      group.mask = OperatorsFor(q.agg.fn);
      buckets[{root_only, cls}].push_back(groups.size());
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

void RegisterGroupMetrics(const QueryGroup& group,
                          obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const obs::Labels labels = {{"group", std::to_string(group.id)}};
  // Null-guarded: the DESIS_OBS=OFF stub registry hands out null gauges.
  auto set = [&](const char* name, const char* unit, int64_t v) {
    if (obs::Gauge* g = registry->GetGauge(name, labels, unit)) g->Set(v);
  };
  set("group.queries", "queries", static_cast<int64_t>(group.queries.size()));
  set("group.operators", "operators", OperatorCount(group.mask));
  set("group.lanes", "lanes", static_cast<int64_t>(group.lanes.size()));
  set("group.root_only", "bool", group.root_only ? 1 : 0);
}

}  // namespace desis
