#ifndef DESIS_CORE_OPERATORS_H_
#define DESIS_CORE_OPERATORS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/serde.h"
#include "core/aggregation.h"
#include "mem/tdigest.h"

namespace desis {

// The AddN bulk folds below iterate values in order, so batched ingestion
// produces bit-identical state to per-event Add calls; the tight loops over
// a contiguous double array are what the compiler can unroll/vectorize.

/// Running sum of event values.
struct SumState {
  double sum = 0.0;
  void Add(double v) { sum += v; }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) sum += v[i];
  }
  void Merge(const SumState& other) { sum += other.sum; }
};

/// Running event count.
struct CountState {
  uint64_t count = 0;
  void Add(double /*v*/) { ++count; }
  void AddN(const double* /*v*/, size_t n) { count += n; }
  void Merge(const CountState& other) { count += other.count; }
};

/// Sum of squared event values — the "user-defined operator" example of
/// §4.2.1: together with {sum, count} it decomposes variance and standard
/// deviation.
struct SumSquaresState {
  double sum_sq = 0.0;
  void Add(double v) { sum_sq += v * v; }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) sum_sq += v[i] * v[i];
  }
  void Merge(const SumSquaresState& other) { sum_sq += other.sum_sq; }
};

/// Running product of event values.
struct MultiplyState {
  double product = 1.0;
  void Add(double v) { product *= v; }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) product *= v[i];
  }
  void Merge(const MultiplyState& other) { product *= other.product; }
};

/// "Decomposable sort" (paper §4.2.1): sorts incrementally and drops
/// computed events — concretely only the running extrema survive. Shared
/// between min and max queries.
struct MinMaxState {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  void Add(double v) {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      min = v[i] < min ? v[i] : min;
      max = v[i] > max ? v[i] : max;
    }
  }
  void Merge(const MinMaxState& other) {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
};

/// "Non-decomposable sort": keeps all events and performs one final sort
/// when the slice ends. Shared between max, min, median, and quantile.
/// Merging two sealed states merges their sorted runs.
///
/// Two optional modes layer on top of the exact buffer:
///  - sketch mode (EnableSketch): values are folded into a t-digest instead
///    of buffered — O(compression) state per slice, approximate quantiles,
///    exact extrema. The opt-in backing for AggregationSpec::approx_quantile.
///  - spill protocol (TakeSortedRun/TakeSealedValues/AdoptSorted): the
///    memory governor moves the buffer to a disk run and reinstates it
///    before any read — results stay byte-identical, only residency drops.
class SortedState {
 public:
  void Add(double v);
  void AddN(const double* v, size_t n);
  /// Sorts the buffered values; called once when the owning slice ends.
  /// With a sample cap set, the sealed state is thinned to at most `cap`
  /// quantile-preserving stride samples (approximate-quantile extension).
  void Seal();
  void Merge(const SortedState& other);

  /// Enables approximate mode: sealed states keep at most `cap` values.
  /// Estimated quantile error is O(1/cap). 0 = exact (default).
  void set_sample_cap(size_t cap) { sample_cap_ = cap; }
  size_t sample_cap() const { return sample_cap_; }

  /// Switches this (empty, unsealed) state to sketch mode: values feed a
  /// t-digest and the exact buffer stays empty forever.
  void EnableSketch(double compression);
  bool sketch() const { return digest_.has_value(); }
  const mem::TDigest& digest() const { return *digest_; }

  /// Pre-grows the exact buffer (no-op in sketch mode); batched ingest
  /// passes its run length so governed buffers stop reallocating per event.
  void Reserve(size_t additional);

  /// Heap bytes held by this state — what the memory governor meters.
  size_t bytes() const {
    return values_.capacity() * sizeof(double) +
           (digest_ ? digest_->bytes() : 0);
  }

  // --- Spill protocol (exact mode only; driven by StreamSlicer) ---------
  /// Unsealed: sorts and moves the buffer out (capacity released), leaving
  /// an empty buffer that keeps accepting Add/AddN. The caller appends the
  /// run to a SpillFile and k-way merges it back at seal time.
  std::vector<double> TakeSortedRun();
  /// Sealed: moves the (already sorted) values out, keeping sealed_ and
  /// represented_ so the record remains well-formed while cold on disk.
  std::vector<double> TakeSealedValues();
  /// Installs externally sorted values (spill merge or restore) and seals.
  void AdoptSorted(std::vector<double> sorted, uint64_t represented);
  /// Reinstalls values taken by TakeSortedRun after a failed spill write;
  /// the state stays unsealed and keeps accepting folds.
  void PutBackRun(std::vector<double> values) {
    values_ = std::move(values);
  }
  /// Raw values this state stands for (== size() unless thinned/spilled).
  uint64_t represented() const { return represented_; }

  bool sealed() const { return sealed_; }
  size_t size() const {
    return digest_ ? static_cast<size_t>(digest_->count()) : values_.size();
  }
  /// Requires sealed(). k-th smallest value, k in [0, size). Exact mode.
  double NthValue(size_t k) const { return values_[k]; }
  const std::vector<double>& values() const { return values_; }

  /// Exact extrema, valid in both modes (the digest tracks them exactly).
  /// Requires sealed() and size() > 0.
  double MinValue() const { return digest_ ? digest_->min() : values_.front(); }
  double MaxValue() const { return digest_ ? digest_->max() : values_.back(); }

  /// Median of the sealed values (mean of the middle two for even sizes).
  double Median() const;
  /// Nearest-rank-with-interpolation quantile, q in [0, 1], of sealed values.
  double Quantile(double q) const;

  void SerializeTo(ByteWriter& out) const;
  static SortedState DeserializeFrom(ByteReader& in);

 private:
  void ThinToCap();

  std::vector<double> values_;
  bool sealed_ = false;
  size_t sample_cap_ = 0;
  /// Number of raw values this (possibly thinned) state represents.
  uint64_t represented_ = 0;
  /// Engaged iff sketch mode; copyable because slice records copy partials.
  std::optional<mem::TDigest> digest_;
};

/// The shared per-slice aggregate: one state per *operator* active in the
/// owning query-group. Adding an event touches each active operator exactly
/// once — this is the cross-function sharing at the heart of the paper.
class PartialAggregate {
 public:
  PartialAggregate() = default;
  explicit PartialAggregate(OperatorMask mask, size_t quantile_sample_cap = 0)
      : mask_(mask) {
    if (quantile_sample_cap > 0) sorted_.set_sample_cap(quantile_sample_cap);
  }

  OperatorMask mask() const { return mask_; }

  /// Folds one event value into every active operator. Returns the number
  /// of operator executions performed (for the Fig 9b/9d calculation count).
  int Add(double v);

  /// Folds `n` event values into every active operator, equivalent to (and
  /// bit-identical with) calling Add() per value: the per-operator mask is
  /// checked once per run instead of once per event, and each operator folds
  /// the whole run in one tight loop. Returns the number of operator
  /// executions performed.
  uint64_t AddN(const double* values, size_t n);

  /// Finishes per-slice work (sorts the non-decomposable buffer).
  void Seal();

  /// Heap bytes of variable-size state (the sort buffer / digest) — the
  /// quantity the memory governor meters per lane.
  size_t bytes() const { return sorted_.bytes(); }

  /// Pre-grows the sort buffer for an incoming run of `n` values; no-op
  /// unless the mask holds a non-decomposable sort.
  void ReserveHint(size_t n) {
    if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
      sorted_.Reserve(n);
    }
  }

  /// Switches the (empty) sort state to the t-digest sketch lane.
  void EnableQuantileSketch(double compression) {
    if (MaskHas(mask_, OperatorKind::kNonDecomposableSort)) {
      sorted_.EnableSketch(compression);
    }
  }

  /// Merges another partial into this one, folding only this partial's
  /// active operators. `other` must carry at least this partial's operators
  /// (window assembly merges a query's needed subset out of the group's
  /// wider slice partials).
  void Merge(const PartialAggregate& other);

  /// Final value of `spec` computed from the shared operator states.
  /// Requires that OperatorsFor(spec.fn) is a subset of mask() and, for
  /// sort-based functions, that the state is sealed.
  double Finalize(const AggregationSpec& spec) const;

  uint64_t event_count() const { return count_.count; }

  const SumState& sum_state() const { return sum_; }
  const SumSquaresState& sum_squares_state() const { return sum_squares_; }
  const CountState& count_state() const { return count_; }
  const MultiplyState& multiply_state() const { return multiply_; }
  const MinMaxState& minmax_state() const { return minmax_; }
  const SortedState& sorted_state() const { return sorted_; }
  SortedState& mutable_sorted_state() { return sorted_; }

  void SerializeTo(ByteWriter& out) const;
  static PartialAggregate DeserializeFrom(ByteReader& in);

  /// Merges `src` into `dst` when the two masks may differ (runtime mask
  /// widening, §3.2 incremental maintenance): the normal Merge when dst's
  /// mask fits inside src's, otherwise the result is narrowed to src's
  /// mask. Narrowing is safe because a slice sealed under the old mask can
  /// only feed windows whose needed mask fits it — queries that forced the
  /// widening are activation-gated (active_from) past every such window.
  /// Runtime widening always grows masks (plain union, never ReduceMask),
  /// so the two masks are guaranteed comparable.
  static void MergeCompatible(PartialAggregate& dst,
                              const PartialAggregate& src) {
    if ((dst.mask_ & ~src.mask_) == 0) {
      dst.Merge(src);
      return;
    }
    PartialAggregate narrowed = src;
    narrowed.Merge(dst);
    dst = std::move(narrowed);
  }

 private:
  OperatorMask mask_ = 0;
  SumState sum_;
  SumSquaresState sum_squares_;
  CountState count_;
  MultiplyState multiply_;
  MinMaxState minmax_;
  SortedState sorted_;
};

}  // namespace desis

#endif  // DESIS_CORE_OPERATORS_H_
