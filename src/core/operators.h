#ifndef DESIS_CORE_OPERATORS_H_
#define DESIS_CORE_OPERATORS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/serde.h"
#include "core/aggregation.h"

namespace desis {

// The AddN bulk folds below iterate values in order, so batched ingestion
// produces bit-identical state to per-event Add calls; the tight loops over
// a contiguous double array are what the compiler can unroll/vectorize.

/// Running sum of event values.
struct SumState {
  double sum = 0.0;
  void Add(double v) { sum += v; }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) sum += v[i];
  }
  void Merge(const SumState& other) { sum += other.sum; }
};

/// Running event count.
struct CountState {
  uint64_t count = 0;
  void Add(double /*v*/) { ++count; }
  void AddN(const double* /*v*/, size_t n) { count += n; }
  void Merge(const CountState& other) { count += other.count; }
};

/// Sum of squared event values — the "user-defined operator" example of
/// §4.2.1: together with {sum, count} it decomposes variance and standard
/// deviation.
struct SumSquaresState {
  double sum_sq = 0.0;
  void Add(double v) { sum_sq += v * v; }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) sum_sq += v[i] * v[i];
  }
  void Merge(const SumSquaresState& other) { sum_sq += other.sum_sq; }
};

/// Running product of event values.
struct MultiplyState {
  double product = 1.0;
  void Add(double v) { product *= v; }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) product *= v[i];
  }
  void Merge(const MultiplyState& other) { product *= other.product; }
};

/// "Decomposable sort" (paper §4.2.1): sorts incrementally and drops
/// computed events — concretely only the running extrema survive. Shared
/// between min and max queries.
struct MinMaxState {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  void Add(double v) {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void AddN(const double* v, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      min = v[i] < min ? v[i] : min;
      max = v[i] > max ? v[i] : max;
    }
  }
  void Merge(const MinMaxState& other) {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
};

/// "Non-decomposable sort": keeps all events and performs one final sort
/// when the slice ends. Shared between max, min, median, and quantile.
/// Merging two sealed states merges their sorted runs.
class SortedState {
 public:
  void Add(double v);
  void AddN(const double* v, size_t n);
  /// Sorts the buffered values; called once when the owning slice ends.
  /// With a sample cap set, the sealed state is thinned to at most `cap`
  /// quantile-preserving stride samples (approximate-quantile extension).
  void Seal();
  void Merge(const SortedState& other);

  /// Enables approximate mode: sealed states keep at most `cap` values.
  /// Estimated quantile error is O(1/cap). 0 = exact (default).
  void set_sample_cap(size_t cap) { sample_cap_ = cap; }

  bool sealed() const { return sealed_; }
  size_t size() const { return values_.size(); }
  /// Requires sealed(). k-th smallest value, k in [0, size).
  double NthValue(size_t k) const { return values_[k]; }
  const std::vector<double>& values() const { return values_; }

  /// Median of the sealed values (mean of the middle two for even sizes).
  double Median() const;
  /// Nearest-rank-with-interpolation quantile, q in [0, 1], of sealed values.
  double Quantile(double q) const;

  void SerializeTo(ByteWriter& out) const;
  static SortedState DeserializeFrom(ByteReader& in);

 private:
  void ThinToCap();

  std::vector<double> values_;
  bool sealed_ = false;
  size_t sample_cap_ = 0;
  /// Number of raw values this (possibly thinned) state represents.
  uint64_t represented_ = 0;
};

/// The shared per-slice aggregate: one state per *operator* active in the
/// owning query-group. Adding an event touches each active operator exactly
/// once — this is the cross-function sharing at the heart of the paper.
class PartialAggregate {
 public:
  PartialAggregate() = default;
  explicit PartialAggregate(OperatorMask mask, size_t quantile_sample_cap = 0)
      : mask_(mask) {
    if (quantile_sample_cap > 0) sorted_.set_sample_cap(quantile_sample_cap);
  }

  OperatorMask mask() const { return mask_; }

  /// Folds one event value into every active operator. Returns the number
  /// of operator executions performed (for the Fig 9b/9d calculation count).
  int Add(double v);

  /// Folds `n` event values into every active operator, equivalent to (and
  /// bit-identical with) calling Add() per value: the per-operator mask is
  /// checked once per run instead of once per event, and each operator folds
  /// the whole run in one tight loop. Returns the number of operator
  /// executions performed.
  uint64_t AddN(const double* values, size_t n);

  /// Finishes per-slice work (sorts the non-decomposable buffer).
  void Seal();

  /// Merges another partial into this one, folding only this partial's
  /// active operators. `other` must carry at least this partial's operators
  /// (window assembly merges a query's needed subset out of the group's
  /// wider slice partials).
  void Merge(const PartialAggregate& other);

  /// Final value of `spec` computed from the shared operator states.
  /// Requires that OperatorsFor(spec.fn) is a subset of mask() and, for
  /// sort-based functions, that the state is sealed.
  double Finalize(const AggregationSpec& spec) const;

  uint64_t event_count() const { return count_.count; }

  const SumState& sum_state() const { return sum_; }
  const SumSquaresState& sum_squares_state() const { return sum_squares_; }
  const CountState& count_state() const { return count_; }
  const MultiplyState& multiply_state() const { return multiply_; }
  const MinMaxState& minmax_state() const { return minmax_; }
  const SortedState& sorted_state() const { return sorted_; }
  SortedState& mutable_sorted_state() { return sorted_; }

  void SerializeTo(ByteWriter& out) const;
  static PartialAggregate DeserializeFrom(ByteReader& in);

  /// Merges `src` into `dst` when the two masks may differ (runtime mask
  /// widening, §3.2 incremental maintenance): the normal Merge when dst's
  /// mask fits inside src's, otherwise the result is narrowed to src's
  /// mask. Narrowing is safe because a slice sealed under the old mask can
  /// only feed windows whose needed mask fits it — queries that forced the
  /// widening are activation-gated (active_from) past every such window.
  /// Runtime widening always grows masks (plain union, never ReduceMask),
  /// so the two masks are guaranteed comparable.
  static void MergeCompatible(PartialAggregate& dst,
                              const PartialAggregate& src) {
    if ((dst.mask_ & ~src.mask_) == 0) {
      dst.Merge(src);
      return;
    }
    PartialAggregate narrowed = src;
    narrowed.Merge(dst);
    dst = std::move(narrowed);
  }

 private:
  OperatorMask mask_ = 0;
  SumState sum_;
  SumSquaresState sum_squares_;
  CountState count_;
  MultiplyState multiply_;
  MinMaxState minmax_;
  SortedState sorted_;
};

}  // namespace desis

#endif  // DESIS_CORE_OPERATORS_H_
