#ifndef DESIS_CORE_SPSC_RING_H_
#define DESIS_CORE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace desis {

/// Bounded lock-free single-producer/single-consumer ring buffer: the
/// ingest-side handoff queue between the ShardedEngine's partitioning
/// stage and its shard threads.
///
/// Design notes (the usual SPSC playbook, tuned for batched ingest):
///  - head_ (producer-owned) and tail_ (consumer-owned) live on separate
///    cache lines so the two threads never false-share an index.
///  - Each side caches the *other* side's index and only re-reads the
///    shared atomic when the cached value says the ring looks full/empty,
///    turning the common case into purely thread-local arithmetic.
///  - TryPushN/TryPopN move whole spans with a single release/acquire pair,
///    so an IngestBatch() of N events pays one fence, not N.
///
/// Capacity is rounded up to a power of two; one slot convention is not
/// needed because head/tail are monotonically increasing sequence numbers
/// (wraparound is handled by masking, fullness by `head - tail == cap`).
template <typename T>
class SpscRing {
 public:
  /// Destructive-interference distance. Pinned to 64 rather than
  /// std::hardware_destructive_interference_size: the latter varies with
  /// -mtune (gcc warns about exactly this), and 64 is correct for every
  /// x86-64 and the common aarch64 parts this builds on.
  static constexpr size_t kCacheLine = 64;

  explicit SpscRing(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Producer: appends up to `n` items; returns how many fit (0..n).
  /// One release store regardless of n.
  size_t TryPushN(const T* items, size_t n) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    size_t free = capacity_ - static_cast<size_t>(head - cached_tail_);
    if (free < n) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = capacity_ - static_cast<size_t>(head - cached_tail_);
      if (free == 0) return 0;
    }
    const size_t take = n < free ? n : free;
    for (size_t i = 0; i < take; ++i) {
      slots_[static_cast<size_t>(head + i) & mask_] = items[i];
    }
    head_.store(head + take, std::memory_order_release);
    return take;
  }

  bool TryPush(const T& item) { return TryPushN(&item, 1) == 1; }

  /// Consumer: removes up to `max` items into `out`; returns how many.
  /// One release store regardless of the count.
  size_t TryPopN(T* out, size_t max) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t avail = static_cast<size_t>(cached_head_ - tail);
    if (avail == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = static_cast<size_t>(cached_head_ - tail);
      if (avail == 0) return 0;
    }
    const size_t take = max < avail ? max : avail;
    for (size_t i = 0; i < take; ++i) {
      out[i] = slots_[static_cast<size_t>(tail + i) & mask_];
    }
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  bool TryPop(T* out) { return TryPopN(out, 1) == 1; }

  /// Either side: racy but monotonicity-safe occupancy estimate (exact when
  /// the opposite side is idle). The producer's view never under-counts,
  /// the consumer's never over-counts.
  size_t SizeApprox() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<size_t>(head - tail) : 0;
  }

  bool Empty() const { return SizeApprox() == 0; }

 private:
  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;

  /// Producer-owned line: write index + cached consumer index.
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  /// Consumer-owned line: read index + cached producer index.
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  /// Trailing pad so an adjacent allocation cannot share tail_'s line.
  alignas(kCacheLine) char pad_end_[kCacheLine] = {};
};

}  // namespace desis

#endif  // DESIS_CORE_SPSC_RING_H_
