#ifndef DESIS_CORE_REORDER_BUFFER_H_
#define DESIS_CORE_REORDER_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/event.h"

namespace desis {

/// Bounded-lateness reordering stage for out-of-order streams. The engines
/// in this library require non-decreasing timestamps; placing a
/// ReorderBuffer in front tolerates events up to `allowed_lateness`
/// microseconds late: an event is released once the maximum timestamp seen
/// exceeds its own by more than the allowed lateness, so released output is
/// globally ordered. Later events are reported as dropped (the standard
/// allowed-lateness contract, e.g. Flink).
class ReorderBuffer {
 public:
  explicit ReorderBuffer(Timestamp allowed_lateness)
      : allowed_lateness_(allowed_lateness) {}

  /// Inserts an event. Returns false (and counts the drop) if the event is
  /// older than the release frontier and would break ordering downstream.
  bool Push(const Event& event) {
    if (event.ts < frontier_) {
      ++dropped_;
      return false;
    }
    heap_.push(event);
    if (event.ts > max_ts_) max_ts_ = event.ts;
    return true;
  }

  /// Pops the next in-order event whose release is safe, if any.
  bool Pop(Event* out) {
    if (heap_.empty() || max_ts_ == kNoTimestamp) return false;
    if (heap_.top().ts + allowed_lateness_ > max_ts_) return false;
    *out = heap_.top();
    heap_.pop();
    if (out->ts > frontier_) frontier_ = out->ts;
    return true;
  }

  /// Releases everything up to `watermark` regardless of lateness slack
  /// (stream end / external watermark).
  bool PopUpTo(Timestamp watermark, Event* out) {
    if (heap_.empty() || heap_.top().ts > watermark) return false;
    *out = heap_.top();
    heap_.pop();
    if (out->ts > frontier_) frontier_ = out->ts;
    return true;
  }

  /// Batch drain: appends every safely releasable event to `out` in ts
  /// order, so callers can hand the whole contiguous run to a batched
  /// ingest path. Returns the number of events released.
  size_t DrainReleased(std::vector<Event>* out) {
    size_t released = 0;
    Event e;
    while (Pop(&e)) {
      out->push_back(e);
      ++released;
    }
    return released;
  }

  /// Batch drain up to `watermark` regardless of lateness slack (stream end
  /// / external watermark); appends to `out` in ts order.
  size_t DrainUpTo(Timestamp watermark, std::vector<Event>* out) {
    size_t released = 0;
    Event e;
    while (PopUpTo(watermark, &e)) {
      out->push_back(e);
      ++released;
    }
    return released;
  }

  size_t pending() const { return heap_.size(); }
  uint64_t dropped() const { return dropped_; }
  /// Timestamp below which no further event will be released (already
  /// released or would be dropped).
  Timestamp frontier() const { return frontier_; }

 private:
  struct LaterTs {
    bool operator()(const Event& a, const Event& b) const {
      return a.ts > b.ts;
    }
  };

  Timestamp allowed_lateness_;
  std::priority_queue<Event, std::vector<Event>, LaterTs> heap_;
  Timestamp max_ts_ = kNoTimestamp;
  Timestamp frontier_ = kNoTimestamp;
  uint64_t dropped_ = 0;
};

}  // namespace desis

#endif  // DESIS_CORE_REORDER_BUFFER_H_
