#ifndef DESIS_CORE_GROUPING_H_
#define DESIS_CORE_GROUPING_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "core/query_analyzer.h"

namespace desis {
namespace grouping {

/// True if `q` may join a group with the given lanes: its predicate must be
/// identical to some lane's or disjoint from every lane's (§4.2.3). Returns
/// the lane index to use via `lane_out` (== lanes.size() for a new lane).
/// Shared verbatim between the static QueryAnalyzer and the incremental
/// opt::GroupIndex so both place a query identically by construction.
inline bool FindLane(const std::vector<SelectionLane>& lanes, const Query& q,
                     uint32_t* lane_out) {
  uint32_t new_lane = static_cast<uint32_t>(lanes.size());
  for (uint32_t i = 0; i < lanes.size(); ++i) {
    switch (lanes[i].predicate.RelationTo(q.predicate)) {
      case PredicateRelation::kIdentical:
        if (lanes[i].deduplicate == q.deduplicate) {
          *lane_out = i;
          return true;
        }
        // Same predicate but different dedup semantics: needs its own lane;
        // identical lanes are allowed to coexist (the event is simply folded
        // into both).
        break;
      case PredicateRelation::kDisjoint:
        break;
      case PredicateRelation::kOverlapping:
        return false;  // partially overlapping selections cannot share.
    }
  }
  *lane_out = new_lane;
  return true;
}

/// Key that splits queries into sharing classes under the given policy.
/// Cross-function sharing maps everything to one class; per-function sharing
/// (Scotty/DeSW) splits by function, quantile and measure; per-query sharing
/// gives every query its own class. `index` is the query's arrival position
/// (only the per-query policy consumes it).
inline uint64_t SharingClass(SharingPolicy policy, const Query& q,
                             size_t index) {
  switch (policy) {
    case SharingPolicy::kCrossFunction:
      return 0;
    case SharingPolicy::kPerFunction: {
      const uint64_t fn = static_cast<uint64_t>(q.agg.fn);
      const uint64_t measure = static_cast<uint64_t>(q.window.measure);
      // Distinct quantile parameters are distinct functions for sharing.
      const uint64_t qmille =
          q.agg.fn == AggregationFunction::kQuantile
              ? static_cast<uint64_t>(q.agg.quantile * 100000.0)
              : 0;
      return (fn << 40) | (measure << 32) | qmille;
    }
    case SharingPolicy::kPerQuery:
      return static_cast<uint64_t>(index) + 1;
  }
  return 0;
}

/// Whether a query must run root-only under the given deployment mode
/// (count-based measures cannot be terminated locally, §5.2).
inline bool RootOnly(DeploymentMode mode, const Query& q) {
  return mode == DeploymentMode::kDecentralized &&
         q.window.measure == WindowMeasure::kCount;
}

}  // namespace grouping
}  // namespace desis

#endif  // DESIS_CORE_GROUPING_H_
