#ifndef DESIS_CORE_ROOT_ASSEMBLER_H_
#define DESIS_CORE_ROOT_ASSEMBLER_H_

#include <deque>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/query_analyzer.h"
#include "core/slicer.h"
#include "core/stats.h"

namespace desis {

/// Window assembly over slice partials for one pushed-down query-group
/// (§5.1): merges partials arriving from children into root slices and
/// terminates windows from window attributes (fixed windows), global gap
/// tracking (session windows), and shipped end punctuations (user-defined
/// windows). Everything is watermark-driven: a window [ws, we) closes only
/// once every child's watermark passed `we`, so out-of-order arrival across
/// children is safe. The "children" need not be remote nodes: the
/// ShardedEngine reuses this exact machinery intra-process, with its shard
/// threads as the children (core/sharded_engine.h), which is why this
/// lives in core and consumes plain SliceRecords — the net layer converts
/// wire SlicePartialMsgs before handing them over.
class RootAssembler {
 public:
  RootAssembler(QueryGroup group, EngineStats* stats, WindowSink sink);

  /// Folds one child slice partial into the matching root slice.
  void AddPartial(const SliceRecord& msg);

  /// Closes every window ending at or before `watermark` (use the minimum
  /// over all children's watermarks).
  void AdvanceTo(Timestamp watermark);

  const QueryGroup& group() const { return group_; }
  size_t pending_entries() const { return entries_.size(); }

  /// Registers one query at runtime (incremental group maintenance, §3.2);
  /// mirrors StreamSlicer::ApplyQueryAdd. `active_from` additionally gets
  /// raised past the last advanced watermark so the new query never sees a
  /// window whose entries were already (partially) garbage collected.
  void ApplyQueryAdd(const Query& q, uint32_t lane,
                     const SelectionLane& lane_def, Timestamp active_from);

  /// Stops emitting results for `id` (runtime query removal, §3.2).
  bool SuppressQuery(QueryId id);

 private:
  struct Entry {
    Timestamp start;
    Timestamp end;
    Timestamp last_event_ts;
    std::vector<PartialAggregate> lanes;
    std::vector<uint64_t> lane_events;
    std::vector<Timestamp> lane_last_ts;
    int reports = 0;

    uint64_t TotalEvents() const {
      uint64_t total = 0;
      for (uint64_t n : lane_events) total += n;
      return total;
    }
  };
  struct SpecState {
    WindowSpec spec;
    std::vector<uint32_t> query_idxs;
    // Mirrors the slicer's lane scoping for dynamic/count windows.
    int lane_filter = -1;
    // Fixed time windows: next scheduled window end.
    Timestamp next_ep = kNoTimestamp;
    // Session windows: global gap tracking (§5.1.2).
    bool active = false;
    Timestamp session_start = kNoTimestamp;
    Timestamp global_last = kNoTimestamp;
    // User-defined windows: end punctuations shipped from children.
    std::deque<EpInfo> pending_eps;
    Timestamp last_closed_end = kNoTimestamp;
  };
  using EntryKey = std::pair<Timestamp, Timestamp>;

  void InitializeSchedules(Timestamp first_start);
  // Merges entries covered by [ws, we] and emits one result per query.
  void AssembleWindow(uint32_t spec_idx, Timestamp ws, Timestamp we);
  // Feeds completed entries to the session trackers in global time order.
  void ScanSessionsUpTo(Timestamp watermark);
  void CollectGarbage(Timestamp watermark);

  /// Effective lane mask under the group plan (group mask when static).
  OperatorMask LaneMask(uint32_t lane) const {
    const auto& lm = group_.plan.lane_masks;
    return (group_.plan.optimized && lane < lm.size() && lm[lane] != 0)
               ? lm[lane]
               : group_.mask;
  }
  bool ActiveFor(uint32_t qi, Timestamp ws) const {
    const Timestamp af =
        qi < active_from_.size() ? active_from_[qi] : kNoTimestamp;
    return af == kNoTimestamp || ws >= af;
  }

  QueryGroup group_;
  EngineStats* stats_;
  WindowSink sink_;
  std::vector<SpecState> specs_;
  std::vector<uint32_t> session_specs_;
  std::vector<uint32_t> ud_specs_;
  /// Fixed-spec firing order: DAG depth first (factor feeders assemble
  /// before dependents at each watermark), spec index second. Identical to
  /// plain index order when no plan is active.
  std::vector<uint32_t> fixed_order_;
  std::map<EntryKey, Entry> entries_;
  EntryKey session_cursor_{kNoTimestamp, kNoTimestamp};
  bool initialized_ = false;
  bool any_closed_ = false;
  Timestamp first_start_ = kMaxTimestamp;
  Timestamp last_advanced_ = kNoTimestamp;
  std::unordered_set<QueryId> suppressed_;
  std::vector<Timestamp> active_from_;
  /// Factor-window execution at the root: closed feeder windows' per-lane
  /// states (under the lane masks), keyed by (start, end); dependents merge
  /// one composite per covered feeder range instead of every entry in it.
  struct FactorComposite {
    std::vector<PartialAggregate> lanes;
    std::vector<uint64_t> lane_events;
  };
  std::map<EntryKey, FactorComposite> composites_;
  std::vector<bool> spec_is_feeder_;
};

}  // namespace desis

#endif  // DESIS_CORE_ROOT_ASSEMBLER_H_
