#ifndef DESIS_CORE_STATS_H_
#define DESIS_CORE_STATS_H_

#include <cstdint>

namespace desis {

/// Work counters maintained by every engine (Desis and baselines alike).
/// These back the paper's "number of slices" (Fig 8b/8d) and "number of
/// calculations" (Fig 9b/9d/9f) plots.
struct EngineStats {
  /// Events ingested.
  uint64_t events = 0;
  /// Per-event aggregation operator executions (one increment per operator
  /// state an event was folded into).
  uint64_t operator_executions = 0;
  /// Slices (or, for non-slicing systems, window buffers/buckets) created.
  uint64_t slices_created = 0;
  /// Window results emitted.
  uint64_t windows_fired = 0;
  /// Selection-predicate evaluations.
  uint64_t selection_evals = 0;
  /// Partial-result merge operations (window assembly / upstream merging).
  uint64_t merges = 0;

  EngineStats& operator+=(const EngineStats& other) {
    events += other.events;
    operator_executions += other.operator_executions;
    slices_created += other.slices_created;
    windows_fired += other.windows_fired;
    selection_evals += other.selection_evals;
    merges += other.merges;
    return *this;
  }
};

}  // namespace desis

#endif  // DESIS_CORE_STATS_H_
