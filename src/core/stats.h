#ifndef DESIS_CORE_STATS_H_
#define DESIS_CORE_STATS_H_

#include <cstdint>

#include "obs/relaxed_cell.h"

namespace desis {

/// Work counters maintained by every engine (Desis and baselines alike).
/// These back the paper's "number of slices" (Fig 8b/8d) and "number of
/// calculations" (Fig 9b/9d/9f) plots.
///
/// Each counter is a relaxed-atomic cell: engines mutate them from
/// whatever thread runs the engine (under a threaded transport that is a
/// delivery worker), and the observability exporters may read them
/// concurrently (`Cluster::StatsReport()` mid-run, a polling monitor).
/// Writers are single-threaded per stats instance; the atomics make the
/// concurrent *reads* well-defined. Exact cross-thread totals are
/// guaranteed only after quiescence (`Cluster::Drain()`).
struct EngineStats {
  /// Events ingested.
  obs::RelaxedU64 events;
  /// Per-event aggregation operator executions (one increment per operator
  /// state an event was folded into).
  obs::RelaxedU64 operator_executions;
  /// Slices (or, for non-slicing systems, window buffers/buckets) created.
  obs::RelaxedU64 slices_created;
  /// Window results emitted.
  obs::RelaxedU64 windows_fired;
  /// Selection-predicate evaluations.
  obs::RelaxedU64 selection_evals;
  /// Partial-result merge operations (window assembly / upstream merging).
  obs::RelaxedU64 merges;

  EngineStats& operator+=(const EngineStats& other) {
    events += other.events;
    operator_executions += other.operator_executions;
    slices_created += other.slices_created;
    windows_fired += other.windows_fired;
    selection_evals += other.selection_evals;
    merges += other.merges;
    return *this;
  }
};

}  // namespace desis

#endif  // DESIS_CORE_STATS_H_
