#ifndef DESIS_CORE_SHARDED_ENGINE_H_
#define DESIS_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine_iface.h"
#include "core/query_analyzer.h"
#include "core/reorder_buffer.h"
#include "core/root_assembler.h"
#include "core/slicer.h"
#include "core/spsc_ring.h"
#include "mem/memory_governor.h"

namespace desis {

/// True when a query-group's windows can be evaluated on key-hash shards
/// without changing results: root-only groups (count measures), dedup
/// lanes (the dedup set is stream-global, a shard only sees its keys), and
/// user-defined windows (their delimiting marker event lands on a single
/// shard) must stay on one thread. Session groups shard fine — the
/// RootAssembler's global gap tracking re-merges per-shard session
/// fragments exactly like it merges per-local fragments in a cluster.
bool GroupShardable(const QueryGroup& group);

struct ShardedEngineOptions {
  /// Number of shard worker threads (>= 1).
  int shards = 1;
  /// Per-shard handoff ring capacity in events (rounded up to a power of
  /// two). The partitioner spins/yields when a ring is full, so this also
  /// bounds how far a slow shard can lag the ingest thread.
  size_t ring_capacity = 1 << 14;
  /// When non-empty, the engine.shard_* series carry a leading
  /// {node=<label>} label so several sharded engines (one per cluster
  /// local) keep distinct series. Empty for standalone engines.
  std::string node_label;
};

/// Key-sharded parallel Desis engine: a partitioning ingest stage hashes
/// each event's key to one of N shards, hands it over a bounded lock-free
/// SPSC ring, and each shard thread runs private StreamSlicer state (with
/// its own reorder buffer in out-of-order mode) over its key subset.
/// Sealed shard slices flow back to the caller thread, which merges them
/// with the same RootAssembler machinery the decentralized root uses —
/// shards are intra-process children. Windows are emitted only on the
/// caller thread at AdvanceTo(), behind a barrier keyed on the global
/// watermark = min over shard safe watermarks, so results match the
/// single-threaded engine (bit-exact whenever the aggregate values are
/// exactly representable; re-associated double sums can differ in ULPs).
///
/// Threading contract: Configure/Ingest/IngestBatch/AdvanceTo/Finish must
/// be called from one thread (the usual StreamEngine contract); the shard
/// threads are an implementation detail. Attach tracer/metrics before the
/// first Ingest().
class ShardedEngine : public StreamEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options = {});
  ~ShardedEngine() override;

  Status Configure(const std::vector<Query>& queries) override;
  void Ingest(const Event& event) override;
  void IngestBatch(const Event* events, size_t count) override;
  void AdvanceTo(Timestamp watermark) override;
  std::string name() const override { return "DesisSharded"; }

  /// Fires every fixed-size window still pending after the last event
  /// (mirrors SlicingEngine::Finish()).
  void Finish();

  /// Accepts out-of-order events up to `allowed_lateness` late. The
  /// partitioner replays the single-threaded engine's drop rule on a
  /// timestamps-only shadow of its reorder buffer (so dropped_events()
  /// matches exactly), and each shard reorders its own substream — a shard
  /// frontier never overtakes the global one, so no shard-local drops.
  /// Call before the first Ingest().
  void EnableOutOfOrderIngest(Timestamp allowed_lateness);
  uint64_t dropped_events() const { return dropped_; }

  /// Puts the engine under a memory budget, partitioned evenly across the
  /// shard governors (plus one extra share for the serial slicers when any
  /// group is unshardable — the serial path holds full-stream state, so it
  /// needs its own governor rather than racing the shard threads on one).
  /// Each shard's slicers spill independently against their share, which
  /// keeps governance thread-local exactly like the rest of shard state.
  /// Call before Configure()/ConfigureGroups(); a zero budget is ignored.
  void EnableMemoryBudget(const mem::MemoryOptions& options) {
    mem_options_ = options;
  }

  /// Governor of shard `i`; null when ungoverned. Test/bench introspection.
  const mem::MemoryGovernor* shard_governor(size_t i) const {
    return shards_[i]->governor.get();
  }
  const mem::MemoryGovernor* serial_governor() const {
    return serial_gov_.get();
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// After AdvanceTo(wm): min over shards of min(wm, slicer safe
  /// watermarks), additionally pinned to the earliest held-back fragment
  /// in local-node mode (see pending_ship_). Everything at or before this
  /// is sealed, merged, and (in local-node mode) delivered. kNoTimestamp
  /// before the first barrier.
  Timestamp SafeWatermark() const { return safe_wm_; }

  // --- Local-node mode (decentralized deployments) -----------------------

  /// Per-barrier delivery of merged shard slices: (group id, record).
  using GroupSliceSink = std::function<void(uint32_t, const SliceRecord&)>;

  /// Configures from pre-analyzed groups instead of raw queries and ships
  /// merged slices through `sink` instead of assembling windows: shard
  /// slices are merged by (group, start, end) across shards at each
  /// AdvanceTo() barrier and delivered in (group, start, end) order.
  /// Every group must satisfy GroupShardable() — DesisLocalNode keeps the
  /// rest on its own thread. Mutually exclusive with Configure().
  Status ConfigureGroups(const std::vector<QueryGroup>& groups,
                         GroupSliceSink sink);

  /// Deploys additional shardable groups at runtime (§3.2, local-node
  /// mode): quiesces the shard pool, installs the slicers, resumes.
  void AddShardedGroups(const std::vector<QueryGroup>& groups);

  /// Joins one query into an already-deployed group (incremental group
  /// maintenance): quiesces the pool, applies the add to the group's
  /// slicer replica on every shard, resumes. Returns false when no shard
  /// (or serial slicer / assembler) hosts `group_id`.
  bool ApplyQueryAdd(uint32_t group_id, const Query& q, uint32_t lane,
                     const SelectionLane& lane_def, Timestamp active_from);

  /// Tears down one group across every shard (last member query removed).
  /// Sealed-but-unshipped fragments of the group are discarded.
  bool RemoveShardedGroup(uint32_t group_id);

 protected:
  void OnTracerAttached() override;
  void OnRegistryAttached() override;
  void OnFlightRecorderAttached() override;

 private:
  /// Plain-integer snapshot of the slicer-maintained EngineStats counters;
  /// used to fold per-shard deltas into stats_ at each barrier.
  struct StatsSnapshot {
    uint64_t operator_executions = 0;
    uint64_t slices_created = 0;
    uint64_t selection_evals = 0;
    uint64_t merges = 0;
  };

  struct Shard {
    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing<Event> ring;

    // Producer side (caller thread only).
    std::vector<Event> scratch;      // per-batch partition buffer
    uint64_t pushed = 0;             // ring pushes, mirrors `consumed`
    uint64_t events_total = 0;       // for the imbalance gauge
    StatsSnapshot folded;            // last stats fold into stats_
    obs::Counter* events_counter = nullptr;   // engine.shard_events
    obs::Gauge* queue_hwm_gauge = nullptr;    // engine.shard_queue_hwm

    // Consumer side (shard thread only once running; the caller may touch
    // these only at Configure time or through Quiesce()). The governor is
    // declared before the slicers so they deregister before it dies.
    std::unique_ptr<mem::MemoryGovernor> governor;
    std::vector<std::unique_ptr<StreamSlicer>> slicers;
    std::vector<uint32_t> slicer_gids;
    std::optional<ReorderBuffer> reorder;
    std::vector<Event> pop_buf;
    std::vector<Event> release_scratch;
    EngineStats stats;

    // Shared coordination. `consumed`/`wm_applied` are release-stored by
    // the shard and acquire-loaded by the caller; `safe_published` rides
    // the wm_applied release.
    std::atomic<uint64_t> consumed{0};
    std::atomic<Timestamp> wm_requested{kNoTimestamp};
    std::atomic<Timestamp> wm_applied{kNoTimestamp};
    std::atomic<Timestamp> safe_published{kNoTimestamp};
    std::atomic<bool> stop{false};
    std::atomic<int> parked{0};

    // Parking lot + sealed-slice handoff channel (both under mu: seals are
    // per-slice, never per-event, so one mutex is cheap enough).
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::pair<uint32_t, SliceRecord>> sealed;

    std::thread thread;
  };

  /// Consumer pop batch: bounds shard-thread latency per loop iteration.
  static constexpr size_t kPopBatch = 512;

  size_t ShardOf(uint32_t key) const;
  /// The configured budget split into `parts` equal governor shares
  /// (spill dir and thresholds ride along unchanged).
  mem::MemoryOptions GovernorShare(size_t parts) const;
  void SetupShards(const std::vector<QueryGroup>& groups);
  void SetupShardSlicers(Shard& shard, size_t shard_index,
                         const std::vector<QueryGroup>& groups);
  uint32_t ObsNodeId(size_t shard_index) const;
  uint8_t ObsRole() const;
  void RegisterShardMetrics();
  void StartThreads();
  void ShardMain(Shard* shard);
  bool ShardHasWork(const Shard& shard) const;
  void ApplyWatermark(Shard* shard, Timestamp watermark);
  void WakeShard(Shard* shard);
  void PushBlocking(Shard* shard);
  void PartitionAndPush(const Event* events, size_t count);
  /// Moves sealed slices out of every shard's handoff channel into
  /// drained_ (per shard, in seal order). try_lock on the opportunistic
  /// path so ingest never stalls behind a sealing shard.
  void DrainSealed(bool blocking);
  /// Waits until every shard has drained its ring and applied `watermark`.
  void WaitBarrier(Timestamp watermark);
  /// Waits until every shard is idle (ring drained, watermark applied) so
  /// the caller may touch consumer-side state (runtime group deployment).
  void Quiesce();
  void FoldShardStats();
  void MergeAndDeliver(Timestamp barrier);
  void StopThreads();

  ShardedEngineOptions options_;
  bool configured_ = false;
  bool local_mode_ = false;
  Timestamp last_ts_ = kNoTimestamp;
  Timestamp max_extent_ = 0;
  Timestamp safe_wm_ = kNoTimestamp;
  Timestamp advanced_wm_ = kNoTimestamp;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-shard sealed slices drained but not yet merged; fed to the merge
  /// stage in shard-index order at each barrier so the merge (and its
  /// floating-point fold order) is deterministic.
  std::vector<std::vector<std::pair<uint32_t, SliceRecord>>> drained_;

  /// Standalone mode: one assembler per sharded group, in group-id order.
  /// Their windows_fired/merges land in assembler_stats_ (Emit() already
  /// counts windows_fired in stats_; the rest is folded at barriers).
  std::vector<std::pair<uint32_t, std::unique_ptr<RootAssembler>>> assemblers_;
  EngineStats assembler_stats_;
  StatsSnapshot assembler_folded_;

  /// Memory governance: the configured budget (0 = off) and the serial
  /// slicers' governor share. Declared before serial_slicers_ so slicers
  /// deregister before their governor is destroyed.
  mem::MemoryOptions mem_options_;
  std::unique_ptr<mem::MemoryGovernor> serial_gov_;

  /// Unshardable groups (root-only / dedup / user-defined): full slicers
  /// fed the entire stream on the caller thread — exactly the
  /// single-threaded engine's path for those groups.
  std::vector<std::unique_ptr<StreamSlicer>> serial_slicers_;

  /// Local-node mode sink.
  GroupSliceSink group_slice_sink_;
  /// Local-node mode staging area: merged shard slices held until the
  /// barrier watermark passes their end. Two shards can seal the very same
  /// (start, end) range at *different* barriers (shard-local session
  /// deadlines coincide whenever the underlying activity timestamps do);
  /// shipping the first copy early would make the root merge the late copy
  /// into an entry its session scan has already consumed, silently losing
  /// that activity. Once the barrier passes a range's end every shard has
  /// provably sealed beyond it, so each range ships exactly once, fully
  /// merged — and downstream cannot consume a slice before the advertised
  /// watermark passes its end anyway, so nothing is delayed observably.
  std::map<std::tuple<uint32_t, Timestamp, Timestamp>, SliceRecord>
      pending_ship_;

  // Out-of-order support. The shadow heap holds timestamps only and
  // replicates ReorderBuffer's release/drop frontier on the full stream;
  // serial_reorder_ buffers real events for the serial slicers.
  bool ooo_ = false;
  Timestamp lateness_ = 0;
  std::priority_queue<Timestamp, std::vector<Timestamp>,
                      std::greater<Timestamp>>
      shadow_heap_;
  Timestamp shadow_max_ts_ = kNoTimestamp;
  Timestamp shadow_frontier_ = kNoTimestamp;
  uint64_t dropped_ = 0;
  std::optional<ReorderBuffer> serial_reorder_;
  std::vector<Event> serial_scratch_;

  obs::Histogram* merge_ns_hist_ = nullptr;     // engine.merge_ns
  obs::Gauge* imbalance_gauge_ = nullptr;       // engine.shard_imbalance_pct
};

}  // namespace desis

#endif  // DESIS_CORE_SHARDED_ENGINE_H_
