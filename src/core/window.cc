#include "core/window.h"

#include <sstream>

namespace desis {

Status WindowSpec::Validate() const {
  switch (type) {
    case WindowType::kTumbling:
      if (length <= 0) {
        return Status::InvalidArgument("tumbling window needs length > 0");
      }
      if (slide != length) {
        return Status::InvalidArgument("tumbling window must have slide == length");
      }
      break;
    case WindowType::kSliding:
      if (length <= 0 || slide <= 0) {
        return Status::InvalidArgument("sliding window needs length, slide > 0");
      }
      if (slide > length) {
        return Status::InvalidArgument(
            "sliding window with slide > length has gaps; use tumbling");
      }
      break;
    case WindowType::kSession:
      if (measure != WindowMeasure::kTime) {
        return Status::InvalidArgument("session windows are time-based");
      }
      if (gap <= 0) {
        return Status::InvalidArgument("session window needs gap > 0");
      }
      break;
    case WindowType::kUserDefined:
      if (measure != WindowMeasure::kTime) {
        return Status::InvalidArgument("user-defined windows are time-based");
      }
      break;
  }
  return Status::OK();
}

std::string WindowSpec::ToString() const {
  std::ostringstream out;
  out << desis::ToString(type) << "(" << desis::ToString(measure);
  if (type == WindowType::kSession) {
    out << ", gap=" << gap;
  } else if (type != WindowType::kUserDefined) {
    out << ", length=" << length;
    if (type == WindowType::kSliding) out << ", slide=" << slide;
  }
  out << ")";
  return out.str();
}

std::string ToString(WindowType type) {
  switch (type) {
    case WindowType::kTumbling: return "tumbling";
    case WindowType::kSliding: return "sliding";
    case WindowType::kSession: return "session";
    case WindowType::kUserDefined: return "user_defined";
  }
  return "unknown";
}

std::string ToString(WindowMeasure measure) {
  switch (measure) {
    case WindowMeasure::kTime: return "time";
    case WindowMeasure::kCount: return "count";
  }
  return "unknown";
}

}  // namespace desis
