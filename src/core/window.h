#ifndef DESIS_CORE_WINDOW_H_
#define DESIS_CORE_WINDOW_H_

#include <cstdint>
#include <string>

#include "common/event.h"
#include "common/status.h"

namespace desis {

/// Window types from the Dataflow model plus user-defined windows (§2.1).
enum class WindowType : uint8_t {
  kTumbling = 0,
  kSliding,
  kSession,
  kUserDefined,
};

/// How window extents are measured (§2.1): by event time or event count.
enum class WindowMeasure : uint8_t {
  kTime = 0,
  kCount,
};

/// A window definition. `length`/`slide` are microseconds for time measure
/// and event counts for count measure; `gap` (sessions) is always time.
struct WindowSpec {
  WindowType type = WindowType::kTumbling;
  WindowMeasure measure = WindowMeasure::kTime;
  int64_t length = 0;
  int64_t slide = 0;
  Timestamp gap = 0;

  /// Time-based tumbling window of `length` microseconds.
  static WindowSpec Tumbling(int64_t length) {
    return {WindowType::kTumbling, WindowMeasure::kTime, length, length, 0};
  }
  /// Time-based sliding window: `length` long, advancing every `slide`.
  static WindowSpec Sliding(int64_t length, int64_t slide) {
    return {WindowType::kSliding, WindowMeasure::kTime, length, slide, 0};
  }
  /// Session window closed by `gap` microseconds of inactivity.
  static WindowSpec Session(Timestamp gap) {
    return {WindowType::kSession, WindowMeasure::kTime, 0, 0, gap};
  }
  /// Window delimited by kWindowStart / kWindowEnd marker events.
  static WindowSpec UserDefined() {
    return {WindowType::kUserDefined, WindowMeasure::kTime, 0, 0, 0};
  }
  /// Count-based tumbling window of `count` events.
  static WindowSpec CountTumbling(int64_t count) {
    return {WindowType::kTumbling, WindowMeasure::kCount, count, count, 0};
  }
  /// Count-based sliding window: `count` events, advancing every `slide`.
  static WindowSpec CountSliding(int64_t count, int64_t slide) {
    return {WindowType::kSliding, WindowMeasure::kCount, count, slide, 0};
  }

  /// True for tumbling/sliding windows, whose punctuations are computable
  /// in advance; false for session/user-defined ("unfixed-sized", §5.1.2).
  bool IsFixedSize() const {
    return type == WindowType::kTumbling || type == WindowType::kSliding;
  }

  Status Validate() const;
  std::string ToString() const;

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

std::string ToString(WindowType type);
std::string ToString(WindowMeasure measure);

}  // namespace desis

#endif  // DESIS_CORE_WINDOW_H_
