#ifndef DESIS_CORE_QUERY_PARSER_H_
#define DESIS_CORE_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/query.h"

namespace desis {

/// Textual query interface (the `interface` component of §3.1): parses a
/// small continuous-query language into Query objects. Grammar (case
/// insensitive keywords):
///
///   SELECT <fn>(value) FROM stream
///     [WHERE <predicate> [AND <predicate>]...]
///     WINDOW <window>
///     [DEDUPLICATE]
///
///   <fn>        := SUM | COUNT | AVG | AVERAGE | MIN | MAX | PRODUCT |
///                  GEOMEAN | MEDIAN | VARIANCE | STDDEV |
///                  QUANTILE(value, <q>)
///   <predicate> := key = <int> | value < <num> | value <= <num> |
///                  value > <num> | value >= <num>
///   <window>    := TUMBLING(SIZE <extent>)
///                | SLIDING(SIZE <extent>, SLIDE <extent>)
///                | SESSION(GAP <duration>)
///                | USER_DEFINED
///   <extent>    := <duration> | <int> EVENTS        (count measure)
///   <duration>  := <num> (us | ms | s | m)
///
/// Examples:
///   SELECT AVG(value) FROM stream WINDOW TUMBLING(SIZE 5s)
///   SELECT QUANTILE(value, 0.95) FROM stream WHERE key = 3
///     WINDOW SLIDING(SIZE 10s, SLIDE 1s)
///   SELECT SUM(value) FROM stream WHERE value >= 80
///     WINDOW SESSION(GAP 500ms)
///   SELECT MAX(value) FROM stream WINDOW TUMBLING(SIZE 1000 EVENTS)
class QueryParser {
 public:
  /// Parses a single query; `id` is assigned to the result.
  static Result<Query> Parse(std::string_view text, QueryId id);

  /// Parses a ';'-separated list of queries with ids 1, 2, ...
  static Result<std::vector<Query>> ParseAll(std::string_view text);
};

}  // namespace desis

#endif  // DESIS_CORE_QUERY_PARSER_H_
