#include "core/query_parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <optional>

namespace desis {
namespace {

// ---------------------------------------------------------------- lexer --

enum class TokenKind {
  kIdent,   // keywords and identifiers (case-insensitive)
  kNumber,  // integer or decimal literal; `unit` holds a trailing suffix
  kLParen,
  kRParen,
  kComma,
  kEquals,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // uppercased for idents
  double number = 0;
  std::string unit;    // lowercase suffix directly after a number (us/ms/s/m)
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '(') {
        tokens.push_back({TokenKind::kLParen, "(", 0, ""});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRParen, ")", 0, ""});
        ++pos_;
      } else if (c == ',') {
        tokens.push_back({TokenKind::kComma, ",", 0, ""});
        ++pos_;
      } else if (c == '=') {
        tokens.push_back({TokenKind::kEquals, "=", 0, ""});
        ++pos_;
      } else if (c == '<' || c == '>') {
        const bool less = c == '<';
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          ++pos_;
          tokens.push_back({less ? TokenKind::kLessEq : TokenKind::kGreaterEq,
                            less ? "<=" : ">=", 0, ""});
        } else {
          tokens.push_back({less ? TokenKind::kLess : TokenKind::kGreater,
                            less ? "<" : ">", 0, ""});
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                 c == '-') {
        Token t;
        t.kind = TokenKind::kNumber;
        size_t end = pos_ + 1;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E' ||
                ((text_[end] == '+' || text_[end] == '-') &&
                 (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
          ++end;
        }
        t.number = std::stod(std::string(text_.substr(pos_, end - pos_)));
        pos_ = end;
        // A duration unit may follow without whitespace ("5s", "100ms"),
        // but only if it is one of the known unit suffixes — otherwise the
        // letters belong to the next identifier (e.g. "1000 EVENTS").
        size_t unit_end = pos_;
        while (unit_end < text_.size() &&
               std::isalpha(static_cast<unsigned char>(text_[unit_end]))) {
          ++unit_end;
        }
        std::string suffix(text_.substr(pos_, unit_end - pos_));
        std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        if (suffix == "us" || suffix == "ms" || suffix == "s" ||
            suffix == "m") {
          t.unit = suffix;
          pos_ = unit_end;
        }
        tokens.push_back(std::move(t));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t end = pos_;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '_')) {
          ++end;
        }
        Token t;
        t.kind = TokenKind::kIdent;
        t.text = std::string(text_.substr(pos_, end - pos_));
        std::transform(t.text.begin(), t.text.end(), t.text.begin(),
                       [](unsigned char ch) { return std::toupper(ch); });
        pos_ = end;
        tokens.push_back(std::move(t));
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' in query");
      }
    }
    tokens.push_back({TokenKind::kEnd, "", 0, ""});
    return tokens;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- parser --

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery(QueryId id) {
    Query query;
    query.id = id;

    if (auto s = ExpectIdent("SELECT"); !s.ok()) return s;
    if (auto s = ParseAggregation(&query); !s.ok()) return s;
    if (auto s = ExpectIdent("FROM"); !s.ok()) return s;
    if (auto s = ExpectIdent("STREAM"); !s.ok()) return s;

    if (PeekIdent("WHERE")) {
      Advance();
      if (auto s = ParsePredicates(&query); !s.ok()) return s;
    }
    if (auto s = ExpectIdent("WINDOW"); !s.ok()) return s;
    if (auto s = ParseWindow(&query); !s.ok()) return s;
    if (PeekIdent("DEDUPLICATE")) {
      Advance();
      query.deduplicate = true;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after query: " +
                                     Peek().text);
    }
    if (auto s = query.Validate(); !s.ok()) return s;
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool PeekIdent(const std::string& word) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == word;
  }
  Status ExpectIdent(const std::string& word) {
    if (!PeekIdent(word)) {
      return Status::InvalidArgument("expected '" + word + "', got '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Status Expect(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument("expected " + what + ", got '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ParseAggregation(Query* query) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected aggregation function");
    }
    const std::string fn = Advance().text;
    if (auto s = Expect(TokenKind::kLParen, "'('"); !s.ok()) return s;
    if (auto s = ExpectIdent("VALUE"); !s.ok()) return s;

    if (fn == "SUM") {
      query->agg.fn = AggregationFunction::kSum;
    } else if (fn == "COUNT") {
      query->agg.fn = AggregationFunction::kCount;
    } else if (fn == "AVG" || fn == "AVERAGE") {
      query->agg.fn = AggregationFunction::kAverage;
    } else if (fn == "MIN") {
      query->agg.fn = AggregationFunction::kMin;
    } else if (fn == "MAX") {
      query->agg.fn = AggregationFunction::kMax;
    } else if (fn == "PRODUCT") {
      query->agg.fn = AggregationFunction::kProduct;
    } else if (fn == "GEOMEAN" || fn == "GEOMETRIC_MEAN") {
      query->agg.fn = AggregationFunction::kGeometricMean;
    } else if (fn == "MEDIAN") {
      query->agg.fn = AggregationFunction::kMedian;
    } else if (fn == "VARIANCE" || fn == "VAR") {
      query->agg.fn = AggregationFunction::kVariance;
    } else if (fn == "STDDEV") {
      query->agg.fn = AggregationFunction::kStdDev;
    } else if (fn == "QUANTILE") {
      query->agg.fn = AggregationFunction::kQuantile;
      if (auto s = Expect(TokenKind::kComma, "','"); !s.ok()) return s;
      if (Peek().kind != TokenKind::kNumber) {
        return Status::InvalidArgument("QUANTILE needs a numeric parameter");
      }
      query->agg.quantile = Advance().number;
    } else {
      return Status::InvalidArgument("unknown aggregation function " + fn);
    }
    return Expect(TokenKind::kRParen, "')'");
  }

  Status ParsePredicates(Query* query) {
    while (true) {
      if (PeekIdent("KEY")) {
        Advance();
        if (auto s = Expect(TokenKind::kEquals, "'='"); !s.ok()) return s;
        if (Peek().kind != TokenKind::kNumber) {
          return Status::InvalidArgument("key predicate needs a number");
        }
        if (query->predicate.has_key) {
          return Status::InvalidArgument("duplicate key predicate");
        }
        query->predicate.has_key = true;
        query->predicate.key = static_cast<uint32_t>(Advance().number);
      } else if (PeekIdent("VALUE")) {
        Advance();
        const Token op = Advance();
        if (Peek().kind != TokenKind::kNumber) {
          return Status::InvalidArgument("value predicate needs a number");
        }
        const double bound = Advance().number;
        if (!query->predicate.has_range) {
          query->predicate.has_range = true;
          query->predicate.value_lo = -std::numeric_limits<double>::infinity();
          query->predicate.value_hi = std::numeric_limits<double>::infinity();
        }
        // Half-open [lo, hi): strictness beyond double resolution is folded
        // into the nearest representable bound.
        switch (op.kind) {
          case TokenKind::kLess:
            query->predicate.value_hi = bound;
            break;
          case TokenKind::kLessEq:
            query->predicate.value_hi =
                std::nextafter(bound, std::numeric_limits<double>::infinity());
            break;
          case TokenKind::kGreater:
            query->predicate.value_lo =
                std::nextafter(bound, std::numeric_limits<double>::infinity());
            break;
          case TokenKind::kGreaterEq:
            query->predicate.value_lo = bound;
            break;
          default:
            return Status::InvalidArgument(
                "value predicate needs <, <=, > or >=");
        }
      } else {
        return Status::InvalidArgument("expected key or value predicate");
      }
      if (PeekIdent("AND")) {
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  // Duration or `<n> EVENTS`; sets measure accordingly.
  Status ParseExtent(int64_t* out, WindowMeasure* measure) {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::InvalidArgument("expected a window extent");
    }
    const Token t = Advance();
    if (!t.unit.empty()) {
      Timestamp factor = 0;
      if (t.unit == "us") factor = kMicrosecond;
      if (t.unit == "ms") factor = kMillisecond;
      if (t.unit == "s") factor = kSecond;
      if (t.unit == "m") factor = kMinute;
      *out = static_cast<int64_t>(t.number * static_cast<double>(factor));
      *measure = WindowMeasure::kTime;
      return Status::OK();
    }
    if (PeekIdent("EVENTS")) {
      Advance();
      *out = static_cast<int64_t>(t.number);
      *measure = WindowMeasure::kCount;
      return Status::OK();
    }
    return Status::InvalidArgument(
        "window extent needs a time unit (us/ms/s/m) or EVENTS");
  }

  Status ParseWindow(Query* query) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected window type");
    }
    const std::string type = Advance().text;
    if (type == "USER_DEFINED") {
      query->window = WindowSpec::UserDefined();
      return Status::OK();
    }
    if (auto s = Expect(TokenKind::kLParen, "'('"); !s.ok()) return s;

    if (type == "TUMBLING" || type == "SLIDING") {
      if (auto s = ExpectIdent("SIZE"); !s.ok()) return s;
      int64_t length = 0;
      WindowMeasure measure = WindowMeasure::kTime;
      if (auto s = ParseExtent(&length, &measure); !s.ok()) return s;
      int64_t slide = length;
      if (type == "SLIDING") {
        if (auto s = Expect(TokenKind::kComma, "','"); !s.ok()) return s;
        if (auto s = ExpectIdent("SLIDE"); !s.ok()) return s;
        WindowMeasure slide_measure = WindowMeasure::kTime;
        if (auto s = ParseExtent(&slide, &slide_measure); !s.ok()) return s;
        if (slide_measure != measure) {
          return Status::InvalidArgument(
              "SIZE and SLIDE must use the same measure");
        }
      }
      query->window.type =
          type == "TUMBLING" ? WindowType::kTumbling : WindowType::kSliding;
      query->window.measure = measure;
      query->window.length = length;
      query->window.slide = slide;
    } else if (type == "SESSION") {
      if (auto s = ExpectIdent("GAP"); !s.ok()) return s;
      int64_t gap = 0;
      WindowMeasure measure = WindowMeasure::kTime;
      if (auto s = ParseExtent(&gap, &measure); !s.ok()) return s;
      if (measure != WindowMeasure::kTime) {
        return Status::InvalidArgument("session gaps are time-based");
      }
      query->window = WindowSpec::Session(gap);
    } else {
      return Status::InvalidArgument("unknown window type " + type);
    }
    return Expect(TokenKind::kRParen, "')'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> QueryParser::Parse(std::string_view text, QueryId id) {
  auto tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens.value())).ParseQuery(id);
}

Result<std::vector<Query>> QueryParser::ParseAll(std::string_view text) {
  std::vector<Query> queries;
  size_t start = 0;
  QueryId next_id = 1;
  while (start <= text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view one = text.substr(start, end - start);
    // Skip blank segments (trailing semicolons, empty lines).
    const bool blank =
        std::all_of(one.begin(), one.end(), [](unsigned char c) {
          return std::isspace(c);
        });
    if (!blank) {
      auto query = Parse(one, next_id++);
      if (!query.ok()) return query.status();
      queries.push_back(std::move(query.value()));
    }
    start = end + 1;
  }
  return queries;
}

}  // namespace desis
