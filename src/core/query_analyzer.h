#ifndef DESIS_CORE_QUERY_ANALYZER_H_
#define DESIS_CORE_QUERY_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/group_plan.h"
#include "core/query.h"
#include "obs/metrics.h"

namespace desis {

/// One selection lane inside a query-group. All queries with an identical
/// predicate (and dedup setting) share a lane; every lane owns its own
/// partial results within each slice, so each event is aggregated at most
/// once per lane it matches (§4.2.3). Lanes in one group are pairwise
/// disjoint or identical, never overlapping.
struct SelectionLane {
  Predicate predicate;
  bool deduplicate = false;
};

/// A query placed in a group, with its lane binding.
struct GroupedQuery {
  Query query;
  uint32_t lane = 0;
};

/// A query-group: "a set of queries that partial results can be shared
/// between and in which every event is processed only once" (§4.1).
struct QueryGroup {
  uint32_t id = 0;
  std::vector<GroupedQuery> queries;
  std::vector<SelectionLane> lanes;
  /// Union of the operators every query in the group decomposes into.
  OperatorMask mask = 0;
  /// Decentralized deployments evaluate this group only on the root node
  /// (count-based measures cannot be terminated locally, §5.2); local nodes
  /// forward matching raw events instead of slice partials.
  bool root_only = false;
  /// Cost-based execution plan (src/opt/). Default-constructed (disabled)
  /// unless the optimizer ran over this group; the slicer and assembler
  /// fall back to the static behaviour whenever it is disabled.
  GroupPlan plan;
};

/// Deployment mode; affects which groups must be evaluated at the root.
enum class DeploymentMode : uint8_t {
  kCentralized = 0,
  kDecentralized,
};

/// Grouping policy. Desis shares across aggregation functions and window
/// measures; the DeSW/Scotty baselines only share within the same function
/// (and measure), which this policy reproduces (§6.1.1).
enum class SharingPolicy : uint8_t {
  /// One group per compatible predicate partition (full sharing).
  kCrossFunction = 0,
  /// Separate groups per (function, quantile, measure) — Scotty/DeSW.
  kPerFunction,
  /// Separate group per query — no sharing at all (DeBucket-style).
  kPerQuery,
};

/// The query analyzer (§3.1): validates queries and partitions them into
/// query-groups whose window attributes are distributed to all nodes.
class QueryAnalyzer {
 public:
  explicit QueryAnalyzer(DeploymentMode mode = DeploymentMode::kCentralized,
                         SharingPolicy policy = SharingPolicy::kCrossFunction)
      : mode_(mode), policy_(policy) {}

  /// Partitions `queries` into query-groups. Fails if any query is invalid.
  Result<std::vector<QueryGroup>> Analyze(
      const std::vector<Query>& queries) const;

 private:
  DeploymentMode mode_;
  SharingPolicy policy_;
};

/// Registers the static cost-attribution gauges for one query-group
/// (labels {group}): group.queries (queries sharing the group),
/// group.operators (distinct operators in its reduced mask), group.lanes,
/// group.root_only. The dynamic counters (group.events_in,
/// group.operator_evals{op}) are owned by the group's StreamSlicer; see
/// docs/METRICS.md for the derived sharing ratio. Null registry is a no-op.
void RegisterGroupMetrics(const QueryGroup& group,
                          obs::MetricsRegistry* registry);

}  // namespace desis

#endif  // DESIS_CORE_QUERY_ANALYZER_H_
