#ifndef DESIS_CORE_GROUP_PLAN_H_
#define DESIS_CORE_GROUP_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/aggregation.h"

namespace desis {

/// Per-group execution plan emitted by the cost-based optimizer
/// (src/opt/factor_planner.h) and executed by StreamSlicer/RootAssembler.
/// A default-constructed plan (optimized == false) reproduces the static
/// analyzer behaviour exactly: every lane folds the full group mask and
/// every window merges base slices.
struct GroupPlan {
  bool optimized = false;

  /// Per-lane reduced operator mask: the union of OperatorsFor() over the
  /// queries bound to that lane, after ReduceMask(). Folding a lane pays
  /// only its own operators instead of the whole group mask. Empty (or a
  /// missing index) means "use the group mask".
  std::vector<OperatorMask> lane_masks;

  /// Factor-window DAG, indexed by spec-layout position (core/spec_layout.h;
  /// identical to StreamSlicer/RootAssembler spec indices): feeder[i] == j
  /// means spec i's windows are assembled from spec j's sealed window
  /// composites instead of base slices; -1 (or empty) means no feeder.
  /// Invariants (enforced by the planner): the feeder is a tumbling time
  /// window, both specs are lane-unscoped (lane_filter == -1), and the
  /// dependent's slide and length are multiples of the feeder length, so
  /// every dependent window tiles exactly into feeder windows.
  std::vector<int32_t> feeder;

  /// DAG depth per spec (0 = leaf/no feeder); used to order same-timestamp
  /// punctuations so feeder composites exist before dependents consume them.
  std::vector<uint8_t> depth;

  /// Number of factor edges installed (opt.rewrites gauge).
  uint32_t rewrites = 0;
  /// Longest feeder chain + 1 (opt.dag_depth gauge); 1 when unoptimized.
  uint32_t dag_depth = 1;

  int32_t FeederOf(uint32_t spec_idx) const {
    return spec_idx < feeder.size() ? feeder[spec_idx] : -1;
  }
  uint8_t DepthOf(uint32_t spec_idx) const {
    return spec_idx < depth.size() ? depth[spec_idx] : 0;
  }
};

}  // namespace desis

#endif  // DESIS_CORE_GROUP_PLAN_H_
