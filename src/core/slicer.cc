#include "core/slicer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "core/spec_layout.h"

namespace desis {
namespace {

// Floor division for possibly-negative numerators.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

uint64_t HashEvent(const Event& e) {
  // 64-bit mix over all fields; used only for intra-slice deduplication.
  uint64_t h = static_cast<uint64_t>(e.ts) * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<uint64_t>(e.key) + 0x517CC1B727220A95ull) * 0xBF58476D1CE4E5B9ull;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(e.value));
  std::memcpy(&bits, &e.value, sizeof(bits));
  h ^= bits * 0x94D049BB133111EBull;
  h ^= e.marker;
  h ^= h >> 29;
  return h;
}

}  // namespace

StreamSlicer::StreamSlicer(QueryGroup group, SlicerOptions options,
                           EngineStats* stats)
    : group_(std::move(group)), options_(options), stats_(stats) {
  assert(stats_ != nullptr);
  // Deduplicate window specs: queries with identical specs share
  // punctuations, open-window bookkeeping, and window assembly. The layout
  // (core/spec_layout.h) is the canonical spec numbering shared with the
  // RootAssembler and the factor-window planner.
  for (SpecLayoutEntry& entry : DeriveSpecLayout(group_)) {
    const uint32_t si = static_cast<uint32_t>(specs_.size());
    SpecState state;
    state.spec = entry.spec;
    state.lane_filter = entry.lane_filter;
    state.query_idxs = std::move(entry.query_idxs);
    specs_.push_back(std::move(state));
    if (entry.spec.measure == WindowMeasure::kCount) {
      count_specs_.push_back(si);
    } else if (entry.spec.type == WindowType::kUserDefined) {
      ud_specs_.push_back(si);
    }
  }
  spec_rank_.assign(specs_.size(), 0);
  spec_is_feeder_.assign(specs_.size(), false);
  if (group_.plan.optimized) {
    for (uint32_t si = 0; si < specs_.size(); ++si) {
      spec_rank_[si] = group_.plan.DepthOf(si);
      const int32_t f = group_.plan.FeederOf(si);
      if (f >= 0 && static_cast<size_t>(f) < specs_.size()) {
        spec_is_feeder_[static_cast<size_t>(f)] = true;
      }
    }
  }
  active_from_.assign(group_.queries.size(), kNoTimestamp);

  // Group session specs by lane, sorted ascending by gap (see SessionLane).
  lane_session_idx_.assign(group_.lanes.size(), -1);
  for (uint32_t si = 0; si < specs_.size(); ++si) {
    const SpecState& st = specs_[si];
    if (st.spec.type != WindowType::kSession ||
        st.spec.measure != WindowMeasure::kTime) {
      continue;
    }
    const auto lane = static_cast<uint32_t>(st.lane_filter);
    if (lane_session_idx_[lane] < 0) {
      lane_session_idx_[lane] = static_cast<int>(session_lanes_.size());
      session_lanes_.push_back({lane, {}, 0, kNoTimestamp});
    }
    session_lanes_[static_cast<size_t>(lane_session_idx_[lane])]
        .specs_by_gap.push_back(si);
  }
  for (SessionLane& sl : session_lanes_) {
    std::sort(sl.specs_by_gap.begin(), sl.specs_by_gap.end(),
              [&](uint32_t a, uint32_t b) {
                return specs_[a].spec.gap < specs_[b].spec.gap;
              });
    sl.num_inactive = sl.specs_by_gap.size();
  }
  count_heaps_.resize(group_.lanes.size());

  RecomputeLaneSketch();
  current_lanes_.reserve(group_.lanes.size());
  for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
    current_lanes_.push_back(MakeLanePartial(lane));
    any_dedup_ = any_dedup_ || group_.lanes[lane].deduplicate;
  }
  lane_charged_.assign(group_.lanes.size(), 0);
  lane_runs_.resize(group_.lanes.size());
  lane_spilled_count_.assign(group_.lanes.size(), 0);
  current_lane_events_.assign(group_.lanes.size(), 0);
  current_lane_last_ts_.assign(group_.lanes.size(), kNoTimestamp);
  lane_total_events_.assign(group_.lanes.size(), 0);
  if (any_dedup_) dedup_sets_.resize(group_.lanes.size());

  // Run-splitting is safe only when every boundary is a precomputable time
  // punctuation and folding is insensitive to intra-run duplicates: session,
  // user-defined, and count-measure specs move their boundaries with the
  // events that match, and dedup lanes mutate per-event state.
  batch_fast_path_ = !any_dedup_ && session_lanes_.empty() &&
                     ud_specs_.empty() && count_specs_.empty();
}

StreamSlicer::~StreamSlicer() {
  if (gov_ != nullptr) {
    gov_->DischargeQuiet(ChargedBytes());
    gov_->Unregister(this);
  }
}

uint64_t StreamSlicer::ChargedBytes() const {
  uint64_t total = dedup_charged_;
  for (uint64_t c : lane_charged_) total += c;
  for (const SliceRecord& rec : records_) {
    for (const PartialAggregate& lane : rec.lanes) total += lane.bytes();
  }
  return total;
}

void StreamSlicer::set_memory(mem::MemoryGovernor* gov) {
  if (gov_ == gov) return;
  if (gov_ != nullptr) {
    gov_->Discharge(ChargedBytes());
    gov_->Unregister(this);
    std::fill(lane_charged_.begin(), lane_charged_.end(), 0);
    dedup_charged_ = 0;
  }
  gov_ = gov;
  if (gov_ == nullptr) return;
  gov_->Register(this);
  // Charge current residency so mid-stream attachment starts consistent.
  for (uint32_t lane = 0; lane < current_lanes_.size(); ++lane) {
    UpdateLaneCharge(lane);
  }
  UpdateDedupCharge();
  uint64_t rec_bytes = 0;
  for (const SliceRecord& rec : records_) {
    for (const PartialAggregate& lane : rec.lanes) rec_bytes += lane.bytes();
  }
  gov_->Charge(rec_bytes);
}

bool StreamSlicer::LaneWantsSketch(uint32_t lane, const Query* extra,
                                   uint32_t extra_lane) const {
  if (!MaskHas(LaneMask(lane), OperatorKind::kNonDecomposableSort)) {
    return false;
  }
  bool any = false;
  bool all_approx = true;
  auto fold = [&](const Query& q, uint32_t q_lane) {
    if (q_lane != lane) return;
    if (q.agg.fn != AggregationFunction::kMedian &&
        q.agg.fn != AggregationFunction::kQuantile) {
      return;
    }
    any = true;
    all_approx = all_approx && q.agg.approx_quantile;
  };
  for (const GroupedQuery& gq : group_.queries) fold(gq.query, gq.lane);
  if (extra != nullptr) fold(*extra, extra_lane);
  return any && all_approx;
}

void StreamSlicer::RecomputeLaneSketch() {
  lane_sketch_.resize(group_.lanes.size());
  for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
    lane_sketch_[lane] = LaneWantsSketch(lane, nullptr, 0) ? 1 : 0;
  }
}

PartialAggregate StreamSlicer::MakeLanePartial(uint32_t lane) const {
  PartialAggregate p(LaneMask(lane));
  if (lane < lane_sketch_.size() && lane_sketch_[lane] != 0) {
    p.EnableQuantileSketch(mem::TDigest::kDefaultCompression);
  }
  return p;
}

void StreamSlicer::UpdateLaneCharge(uint32_t lane) {
  const uint64_t now = current_lanes_[lane].bytes();
  const uint64_t was = lane_charged_[lane];
  if (now == was) return;
  if (now > was) {
    gov_->Charge(now - was);
  } else {
    gov_->Discharge(was - now);
  }
  lane_charged_[lane] = now;
}

void StreamSlicer::UpdateDedupCharge() {
  // Rough unordered_set footprint: node (value + next pointer + libstdc++
  // hash cache) plus a bucket slot — the governor needs a growth signal,
  // not an exact malloc audit.
  constexpr uint64_t kBytesPerDedupEntry = 48;
  const uint64_t now = dedup_inserted_ * kBytesPerDedupEntry;
  if (now == dedup_charged_) return;
  if (now > dedup_charged_) {
    gov_->Charge(now - dedup_charged_);
  } else {
    gov_->Discharge(dedup_charged_ - now);
  }
  dedup_charged_ = now;
}

void StreamSlicer::WarnSpillError(const Status& status) {
  if (spill_warned_) return;
  spill_warned_ = true;
  std::fprintf(stderr, "desis: spill degraded for group %u: %s\n", group_.id,
               status.ToString().c_str());
}

bool StreamSlicer::EnsureSpillFile() {
  if (spill_ != nullptr) return true;
  if (spill_failed_ || gov_ == nullptr) return false;
  auto file = gov_->NewSpillFile();
  if (!file.ok()) {
    spill_failed_ = true;
    WarnSpillError(file.status());
    return false;
  }
  spill_ = std::move(file.value());
  return true;
}

uint64_t StreamSlicer::SpillOpenLane(uint32_t lane) {
  SortedState& state = current_lanes_[lane].mutable_sorted_state();
  std::vector<double> run = state.TakeSortedRun();
  const auto appended = spill_->AppendRun(run.data(), run.size());
  if (!appended.ok()) {
    // Put the values back: the lane stays unsealed and keeps folding.
    state.PutBackRun(std::move(run));
    spill_failed_ = true;
    WarnSpillError(appended.status());
    return 0;
  }
  lane_runs_[lane].push_back(appended.value());
  lane_spilled_count_[lane] += run.size();
  const uint64_t before = lane_charged_[lane];
  UpdateLaneCharge(lane);  // buffer is empty now; discharges the delta
  const uint64_t freed = before - lane_charged_[lane];
  gov_->NoteSpill(freed);
  if (tracer_ != nullptr) {
    tracer_->Record(obs::SlicePhase::kSpill, current_slice_id_, group_.id,
                    /*query_id=*/0, obs_node_id_, obs_role_, last_seen_ts_);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kSpill, current_slice_id_,
                    group_.id, last_seen_ts_);
  }
  return freed;
}

uint64_t StreamSlicer::SpillSealedLane(SliceRecord& rec, uint32_t lane) {
  SortedState& state = rec.lanes[lane].mutable_sorted_state();
  const uint64_t bytes = rec.lanes[lane].bytes();
  const uint64_t represented = state.represented();
  std::vector<double> values = state.TakeSealedValues();
  const auto appended = spill_->AppendRun(values.data(), values.size());
  if (!appended.ok()) {
    state.AdoptSorted(std::move(values), represented);
    spill_failed_ = true;
    WarnSpillError(appended.status());
    return 0;
  }
  sealed_spills_[{rec.id, lane}] = {appended.value(), represented};
  gov_->Discharge(bytes);
  gov_->NoteSpill(bytes);
  if (tracer_ != nullptr) {
    tracer_->Record(obs::SlicePhase::kSpill, rec.id, group_.id,
                    /*query_id=*/0, obs_node_id_, obs_role_, rec.end);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kSpill, rec.id, group_.id, rec.end);
  }
  return bytes;
}

void StreamSlicer::MergeRecordLane(PartialAggregate& acc,
                                   const SliceRecord& rec, uint32_t lane) {
  if (gov_ != nullptr && !sealed_spills_.empty() && spill_ != nullptr) {
    const auto it = sealed_spills_.find({rec.id, lane});
    if (it != sealed_spills_.end()) {
      std::vector<double> values;
      const Status status = spill_->ReadRun(it->second.run, &values);
      if (status.ok()) {
        // Merge through a sealed temporary so the record stays cold on
        // disk: assembly only *reads* spilled state, it never re-charges
        // the governor — a window close touches one lane's values at a
        // time instead of re-residenting its whole span, which is what
        // keeps peak residency at the budget rather than at the window
        // footprint. The temporary copies the record's decomposable
        // states, so the merge is byte-identical to the resident path.
        const uint64_t bytes = values.size() * sizeof(double);
        PartialAggregate cold = rec.lanes[lane];
        cold.mutable_sorted_state().AdoptSorted(std::move(values),
                                                it->second.represented);
        PartialAggregate::MergeCompatible(acc, cold);
        gov_->NoteRestore(bytes);
        if (tracer_ != nullptr) {
          tracer_->Record(obs::SlicePhase::kRestore, rec.id, group_.id,
                          /*query_id=*/0, obs_node_id_, obs_role_, rec.end);
        }
        if (flight_ != nullptr) {
          flight_->Record(obs::FlightEventKind::kRestore, rec.id, group_.id,
                          rec.end);
        }
        return;
      }
      // Degraded: assemble from the resident (emptied) lane rather than
      // crash — the decomposable states still contribute; the checksummed
      // local run file failing means the disk is going away.
      WarnSpillError(status);
    }
  }
  PartialAggregate::MergeCompatible(acc, rec.lanes[lane]);
}

uint64_t StreamSlicer::ShedBytes(uint64_t target) {
  if (gov_ == nullptr || !EnsureSpillFile()) return 0;
  const uint64_t min_bytes = gov_->options().min_spill_bytes;
  uint64_t freed = 0;

  auto sealed_eligible = [&](const SliceRecord& rec, uint32_t lane) {
    if (lane >= rec.lanes.size()) return false;
    const PartialAggregate& pa = rec.lanes[lane];
    if (!MaskHas(pa.mask(), OperatorKind::kNonDecomposableSort)) return false;
    const SortedState& ss = pa.sorted_state();
    return !ss.sketch() && ss.sample_cap() == 0 && !ss.values().empty() &&
           pa.bytes() >= min_bytes;
  };

  // Coldest first: sealed records, oldest to newest. The not-yet-shipped
  // back record is skipped — its lanes still get serialized to the slice
  // sink, and a spilled lane would ship empty.
  for (size_t i = 0; i < records_.size() && freed < target; ++i) {
    if (have_unshipped_ && i + 1 == records_.size()) break;
    SliceRecord& rec = records_[i];
    for (uint32_t lane = 0; lane < rec.lanes.size() && freed < target;
         ++lane) {
      if (sealed_eligible(rec, lane)) freed += SpillSealedLane(rec, lane);
      if (spill_failed_) return freed;
    }
  }

  // Then the open slice's sort buffers, largest first.
  while (freed < target && !spill_failed_) {
    uint32_t best = 0;
    uint64_t best_bytes = 0;
    for (uint32_t lane = 0; lane < current_lanes_.size(); ++lane) {
      const PartialAggregate& pa = current_lanes_[lane];
      if (!MaskHas(pa.mask(), OperatorKind::kNonDecomposableSort)) continue;
      const SortedState& ss = pa.sorted_state();
      if (ss.sketch() || ss.sample_cap() != 0 || ss.values().empty()) continue;
      const uint64_t b = pa.bytes();
      if (b >= min_bytes && b > best_bytes) {
        best_bytes = b;
        best = lane;
      }
    }
    if (best_bytes == 0) break;
    freed += SpillOpenLane(best);
  }
  return freed;
}

Timestamp StreamSlicer::MaxFixedWindowExtent() const {
  Timestamp extent = 0;
  for (const SpecState& st : specs_) {
    if (st.spec.measure == WindowMeasure::kTime && st.spec.IsFixedSize()) {
      extent = std::max(extent, st.spec.length);
    } else if (st.spec.type == WindowType::kSession) {
      extent = std::max(extent, st.spec.gap);
    }
  }
  return extent;
}

bool StreamSlicer::SuppressQuery(QueryId id) {
  for (const GroupedQuery& gq : group_.queries) {
    if (gq.query.id == id && !suppressed_.contains(id)) {
      suppressed_.insert(id);
      if (queries_gauge_ != nullptr) {
        queries_gauge_->Set(static_cast<int64_t>(active_queries()));
      }
      return true;
    }
  }
  return false;
}

void StreamSlicer::ApplyQueryAdd(const Query& q, uint32_t lane,
                                 const SelectionLane& lane_def,
                                 Timestamp active_from) {
  const OperatorMask q_ops = OperatorsFor(q.agg.fn);
  const bool new_lane = lane >= group_.lanes.size();

  // Effective-mask snapshot: a structural change is anything that alters
  // the shape or width of the fold state.
  std::vector<OperatorMask> before;
  before.reserve(group_.lanes.size());
  for (uint32_t i = 0; i < group_.lanes.size(); ++i) {
    before.push_back(LaneMask(i));
  }

  // Runtime widening uses the plain union (never ReduceMask): dropping the
  // decomposable-sort bit when a non-decomposable query joins would orphan
  // the min/max state already sealed into earlier slices. Cold slicers
  // (no slices yet) reduce, matching a cold-start configuration exactly.
  const bool cold = !initialized_;
  auto widen = [&](OperatorMask m) {
    const auto u = static_cast<OperatorMask>(m | q_ops);
    return cold ? ReduceMask(u) : u;
  };
  group_.mask = widen(group_.mask);
  if (group_.plan.optimized) {
    auto& lm = group_.plan.lane_masks;
    if (lm.size() < group_.lanes.size()) lm.resize(group_.lanes.size(), 0);
    if (new_lane) {
      lm.push_back(ReduceMask(q_ops));
    } else if (lm[lane] != 0) {
      lm[lane] = widen(lm[lane]);
    }  // a zero entry falls through to the group mask, already widened
  }

  bool structural = new_lane;
  for (uint32_t i = 0; i < before.size(); ++i) {
    structural = structural || LaneMask(i) != before[i];
  }
  // A sketch flip (a lane's quantile state switching between exact buffer
  // and t-digest) changes the fold-state representation, so it cuts the
  // stream like any other structural change.
  for (uint32_t i = 0; i < group_.lanes.size(); ++i) {
    const bool want = LaneWantsSketch(i, &q, lane);
    structural = structural || want != (lane_sketch_[i] != 0);
  }

  // Find or register the window spec (same keying as DeriveSpecLayout).
  const int lane_filter =
      SpecLaneScoped(q.window) ? static_cast<int>(lane) : -1;
  uint32_t si = 0;
  for (; si < specs_.size(); ++si) {
    if (specs_[si].spec == q.window && specs_[si].lane_filter == lane_filter) {
      break;
    }
  }
  const bool new_spec = si == specs_.size();
  structural = structural || new_spec;

  if (initialized_ && structural && current_slice_events_ > 0) {
    // Cut the stream here: earlier slices keep their shape, the new shape
    // starts with the next slice. Sealing also ships the slice, so
    // downstream nodes never see a mixed-width slice.
    SealCurrentSlice(last_seen_ts_);
    FlushShippableSlice();
  }

  if (new_lane) {
    group_.lanes.push_back(lane_def);
    current_lane_events_.push_back(0);
    current_lane_last_ts_.push_back(kNoTimestamp);
    lane_total_events_.push_back(0);
    lane_session_idx_.push_back(-1);
    count_heaps_.emplace_back();
    lane_charged_.push_back(0);
    lane_runs_.emplace_back();
    lane_spilled_count_.push_back(0);
    any_dedup_ = any_dedup_ || lane_def.deduplicate;
    if (any_dedup_) dedup_sets_.resize(group_.lanes.size());
  }
  if (structural) {
    // The fold state is empty here (freshly sealed or never written);
    // rebuild it at the new shape/masks.
    assert(current_slice_events_ == 0);
    if (gov_ != nullptr) {
      for (uint64_t& c : lane_charged_) {
        gov_->Discharge(c);
        c = 0;
      }
    }
    lane_sketch_.resize(group_.lanes.size());
    for (uint32_t i = 0; i < group_.lanes.size(); ++i) {
      lane_sketch_[i] = LaneWantsSketch(i, &q, lane) ? 1 : 0;
    }
    current_lanes_.clear();
    for (uint32_t i = 0; i < group_.lanes.size(); ++i) {
      current_lanes_.push_back(MakeLanePartial(i));
    }
  }

  const auto qi = static_cast<uint32_t>(group_.queries.size());
  group_.queries.push_back({q, lane});
  active_from_.resize(group_.queries.size(), kNoTimestamp);
  active_from_.back() = active_from;

  if (new_spec) {
    SpecState state;
    state.spec = q.window;
    state.lane_filter = lane_filter;
    specs_.push_back(std::move(state));
    spec_rank_.push_back(0);  // runtime-added specs join the DAG unfactored
    spec_is_feeder_.push_back(false);
    SpecState& st = specs_[si];
    if (st.spec.measure == WindowMeasure::kCount) {
      count_specs_.push_back(si);
      if (initialized_) {
        // The first runtime count window opens now, at the lane's current
        // event count.
        st.open.push_back({last_seen_ts_, current_slice_id_});
        auto& heap = count_heaps_[lane];
        const uint64_t base_count = lane_total_events_[lane];
        heap.push(
            {base_count + static_cast<uint64_t>(st.spec.length), 0, si});
        heap.push({base_count + static_cast<uint64_t>(st.spec.slide), 1, si});
      }
    } else if (st.spec.type == WindowType::kUserDefined) {
      ud_specs_.push_back(si);
    } else if (st.spec.type == WindowType::kSession &&
               st.spec.measure == WindowMeasure::kTime) {
      if (lane_session_idx_[lane] < 0) {
        lane_session_idx_[lane] = static_cast<int>(session_lanes_.size());
        session_lanes_.push_back({lane, {}, 0, kNoTimestamp});
      }
      SessionLane& sl =
          session_lanes_[static_cast<size_t>(lane_session_idx_[lane])];
      // Insert in gap order. The sorted-prefix invariant (inactive specs
      // first) holds because closed specs always have the smaller gaps.
      auto pos = std::lower_bound(sl.specs_by_gap.begin(),
                                  sl.specs_by_gap.end(), si,
                                  [&](uint32_t a, uint32_t b) {
                                    return specs_[a].spec.gap <
                                           specs_[b].spec.gap;
                                  });
      const auto idx = static_cast<size_t>(pos - sl.specs_by_gap.begin());
      sl.specs_by_gap.insert(pos, si);
      if (idx < sl.num_inactive ||
          sl.num_inactive == sl.specs_by_gap.size() - 1) {
        // Joins the inactive prefix (lane idle, or gap below the boundary).
        ++sl.num_inactive;
      } else {
        // The lane has an ongoing session under a smaller gap, so this
        // spec's session is live too: open it at the current slice
        // (emission before active_from is gated anyway).
        st.active = true;
        st.open.push_back({last_seen_ts_ == kNoTimestamp ? 0 : last_seen_ts_,
                           current_slice_id_});
      }
    } else if (initialized_) {
      ScheduleInitial(si, last_seen_ts_, current_slice_id_);
    }
  }
  specs_[si].query_idxs.push_back(qi);

  batch_fast_path_ = !any_dedup_ && session_lanes_.empty() &&
                     ud_specs_.empty() && count_specs_.empty();

  // Re-register metrics: the mask/lane/spec shape may have changed.
  if (registry_ != nullptr) set_metrics(registry_);
}

void StreamSlicer::set_metrics(obs::MetricsRegistry* registry) {
  FlushEventsInCounter();  // do not lose events counted for an old registry
  registry_ = registry;
  events_in_counter_ = nullptr;
  queries_gauge_ = nullptr;
  sketch_gauge_ = nullptr;
  for (int k = 0; k < kNumOperatorKinds; ++k) op_eval_counters_[k] = nullptr;
  if (registry == nullptr) return;
  RegisterGroupMetrics(group_, registry);
  const obs::Labels labels = {{"group", std::to_string(group_.id)}};
  events_in_counter_ =
      registry->GetCounter("group.events_in", labels, "events");
  queries_gauge_ = registry->GetGauge("group.queries", labels, "queries");
  if (queries_gauge_ != nullptr) {
    queries_gauge_->Set(static_cast<int64_t>(active_queries()));
  }
  sketch_gauge_ = registry->GetGauge("engine.sketch_lanes", labels, "lanes");
  if (sketch_gauge_ != nullptr) {
    int64_t sketch_lanes = 0;
    for (const uint8_t s : lane_sketch_) sketch_lanes += s;
    sketch_gauge_->Set(sketch_lanes);
  }
  for (int k = 0; k < kNumOperatorKinds; ++k) {
    const auto kind = static_cast<OperatorKind>(k);
    if (!MaskHas(group_.mask, kind)) continue;
    obs::Labels op_labels = labels;
    op_labels.emplace_back("op", OperatorShortName(kind));
    op_eval_counters_[k] =
        registry->GetCounter("group.operator_evals", op_labels, "evals");
  }
}

void StreamSlicer::Initialize(Timestamp first_ts) {
  current_slice_start_ = first_ts;
  for (uint32_t si = 0; si < specs_.size(); ++si) {
    SpecState& st = specs_[si];
    if (st.spec.measure == WindowMeasure::kCount) {
      // The first count window opens with the first matching event.
      st.open.push_back({first_ts, 0});
      auto& heap = count_heaps_[static_cast<size_t>(st.lane_filter)];
      heap.push({static_cast<uint64_t>(st.spec.length), 0, si});
      heap.push({static_cast<uint64_t>(st.spec.slide), 1, si});
    } else if (st.spec.IsFixedSize()) {
      ScheduleInitial(si, first_ts);
    }
    // Session / user-defined windows start inactive and are activated by
    // the first matching event.
  }
  initialized_ = true;
}

void StreamSlicer::ScheduleInitial(uint32_t spec_idx, Timestamp first_ts,
                                   uint64_t first_slice_id) {
  SpecState& st = specs_[spec_idx];
  const int64_t l = st.spec.length;
  const int64_t s = st.spec.slide;
  // Windows are aligned to multiples of the slide from timestamp 0. Open
  // every window that already contains first_ts.
  const Timestamp ws_min = (FloorDiv(first_ts - l, s) + 1) * s;
  for (Timestamp ws = ws_min; ws <= first_ts; ws += s) {
    st.open.push_back({ws, first_slice_id});
  }
  st.next_ep = ws_min + l;
  st.next_sp = (FloorDiv(first_ts, s) + 1) * s;
  if (options_.punctuation == PunctuationStrategy::kPrecomputed) {
    boundary_heap_.push({st.next_ep, 0, spec_idx, spec_rank_[spec_idx]});
    boundary_heap_.push({st.next_sp, 1, spec_idx, spec_rank_[spec_idx]});
  }
}

void StreamSlicer::ProcessBoundariesUpTo(Timestamp limit) {
  while (true) {
    Timestamp best_ts = kMaxTimestamp;
    uint8_t best_kind = 2;
    uint32_t best_spec = 0;
    enum class Source { kNone, kFixed, kSession } source = Source::kNone;

    if (options_.punctuation == PunctuationStrategy::kPrecomputed) {
      if (!boundary_heap_.empty()) {
        const Boundary& top = boundary_heap_.top();
        best_ts = top.ts;
        best_kind = top.kind;
        best_spec = top.spec_idx;
        source = Source::kFixed;
      }
    } else {
      // Baseline behaviour: re-scan every window spec on each step instead
      // of consulting a precomputed schedule.
      for (uint32_t si = 0; si < specs_.size(); ++si) {
        const SpecState& st = specs_[si];
        if (st.spec.measure != WindowMeasure::kTime || !st.spec.IsFixedSize()) {
          continue;
        }
        if (st.next_ep != kNoTimestamp &&
            (st.next_ep < best_ts || (st.next_ep == best_ts && best_kind > 0))) {
          best_ts = st.next_ep;
          best_kind = 0;
          best_spec = si;
          source = Source::kFixed;
        }
        if (st.next_sp != kNoTimestamp &&
            (st.next_sp < best_ts || (st.next_sp == best_ts && best_kind > 1))) {
          best_ts = st.next_sp;
          best_kind = 1;
          best_spec = si;
          source = Source::kFixed;
        }
      }
    }

    size_t best_session_lane = 0;
    for (size_t li = 0; li < session_lanes_.size(); ++li) {
      const SessionLane& sl = session_lanes_[li];
      if (sl.num_inactive >= sl.specs_by_gap.size()) continue;  // none active
      // The smallest active gap holds the earliest deadline.
      const uint32_t si = sl.specs_by_gap[sl.num_inactive];
      const Timestamp deadline = sl.last_event + specs_[si].spec.gap;
      if (deadline < best_ts || (deadline == best_ts && best_kind > 0)) {
        best_ts = deadline;
        best_kind = 0;
        best_spec = si;
        best_session_lane = li;
        source = Source::kSession;
      }
    }

    if (source == Source::kNone || best_ts > limit) return;

    if (source == Source::kSession) {
      ProcessSessionEnd(best_spec, best_ts);
      ++session_lanes_[best_session_lane].num_inactive;
      continue;
    }
    if (options_.punctuation == PunctuationStrategy::kPrecomputed) {
      boundary_heap_.pop();
    }
    if (best_kind == 0) {
      ProcessEp(best_spec, best_ts);
    } else {
      ProcessSp(best_spec, best_ts);
    }
  }
}

void StreamSlicer::ProcessEp(uint32_t spec_idx, Timestamp ts) {
  SpecState& st = specs_[spec_idx];
  const uint64_t last = SealCurrentSlice(ts);
  if (!st.open.empty()) {
    SpecState::OpenWindow window = st.open.front();
    st.open.pop_front();
    CloseWindow(spec_idx, window, last, ts);
  }
  st.next_ep = ts + st.spec.slide;
  if (options_.punctuation == PunctuationStrategy::kPrecomputed) {
    boundary_heap_.push({st.next_ep, 0, spec_idx, spec_rank_[spec_idx]});
  }
}

void StreamSlicer::ProcessSp(uint32_t spec_idx, Timestamp ts) {
  SpecState& st = specs_[spec_idx];
  SealCurrentSlice(ts);
  st.open.push_back({ts, current_slice_id_});
  st.next_sp = ts + st.spec.slide;
  if (options_.punctuation == PunctuationStrategy::kPrecomputed) {
    boundary_heap_.push({st.next_sp, 1, spec_idx, spec_rank_[spec_idx]});
  }
}

void StreamSlicer::ProcessSessionEnd(uint32_t spec_idx, Timestamp deadline) {
  SpecState& st = specs_[spec_idx];
  const uint64_t last = SealCurrentSlice(deadline);
  if (!st.open.empty()) {
    SpecState::OpenWindow window = st.open.front();
    st.open.pop_front();
    CloseWindow(spec_idx, window, last, deadline);
  }
  st.active = false;
}

void StreamSlicer::ProcessCountBoundaries(Timestamp now, uint32_t lane) {
  auto& heap = count_heaps_[lane];
  const uint64_t lane_count = lane_total_events_[lane];
  // The heap orders by (count, kind): end punctuations fire before start
  // punctuations at the same count.
  while (!heap.empty() && heap.top().count <= lane_count) {
    const CountBoundary boundary = heap.top();
    heap.pop();
    SpecState& st = specs_[boundary.spec_idx];
    if (boundary.kind == 0) {
      const uint64_t last = SealCurrentSlice(now);
      if (!st.open.empty()) {
        SpecState::OpenWindow window = st.open.front();
        st.open.pop_front();
        CloseWindow(boundary.spec_idx, window, last, now);
      }
    } else {
      SealCurrentSlice(now);
      st.open.push_back({now, current_slice_id_});
    }
    heap.push({boundary.count + static_cast<uint64_t>(st.spec.slide),
               boundary.kind, boundary.spec_idx});
  }
}

uint64_t StreamSlicer::SealCurrentSlice(Timestamp end_ts) {
  if (current_slice_events_ == 0) {
    // Empty slices leave no record; the boundary still advances.
    current_slice_start_ = end_ts;
    return current_slice_id_ - 1;  // wraps when nothing sealed yet; callers
                                   // only use it against existing records.
  }

  FlushShippableSlice();

  // Governed lanes that spilled part of the open slice k-way merge their
  // disk runs with the resident tail now — the sealed record is
  // byte-identical to the never-spilled sort, only residency differed.
  if (gov_ != nullptr && spill_ != nullptr) {
    for (uint32_t lane = 0; lane < current_lanes_.size(); ++lane) {
      if (lane_runs_[lane].empty()) continue;
      SortedState& state = current_lanes_[lane].mutable_sorted_state();
      std::vector<double> residual = state.TakeSortedRun();
      std::vector<double> merged;
      const Status merge_status =
          spill_->MergeRuns(lane_runs_[lane], residual, &merged);
      uint64_t total = residual.size() + lane_spilled_count_[lane];
      if (!merge_status.ok()) {
        // Degrade to the resident values; the spilled portion is lost but
        // the engine keeps running (warned once).
        WarnSpillError(merge_status);
        merged = std::move(residual);
        total = merged.size();
      }
      state.AdoptSorted(std::move(merged), total);
      lane_runs_[lane].clear();
      lane_spilled_count_[lane] = 0;
    }
  }

  SliceRecord rec;
  rec.id = current_slice_id_;
  rec.start = current_slice_start_;
  rec.end = end_ts;
  rec.last_event_ts = current_last_event_;
  for (PartialAggregate& lane : current_lanes_) lane.Seal();
  rec.lanes = std::move(current_lanes_);
  rec.lane_events = std::move(current_lane_events_);
  rec.lane_last_ts = std::move(current_lane_last_ts_);
  records_.push_back(std::move(rec));
  have_unshipped_ = true;
  ++stats_->slices_created;
  if (events_in_counter_ != nullptr) {
    // Per-slice cost-attribution flush: every fold in the sealed slice paid
    // each operator in its lane's mask exactly once (the sharing
    // invariant). Without a plan every lane folds the full group mask and
    // each active op series advances by the slice's whole fold count — the
    // original accounting; under per-lane mask narrowing each series only
    // advances by the folds on lanes that carry that operator.
    FlushEventsInCounter();
    if (!group_.plan.optimized) {
      for (obs::Counter* op : op_eval_counters_) {
        if (op != nullptr) op->Add(current_slice_events_);
      }
    } else {
      const std::vector<uint64_t>& lane_events = records_.back().lane_events;
      for (int k = 0; k < kNumOperatorKinds; ++k) {
        if (op_eval_counters_[k] == nullptr) continue;
        const auto kind = static_cast<OperatorKind>(k);
        uint64_t evals = 0;
        for (uint32_t lane = 0; lane < lane_events.size(); ++lane) {
          if (MaskHas(LaneMask(lane), kind)) evals += lane_events[lane];
        }
        if (evals != 0) op_eval_counters_[k]->Add(evals);
      }
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Record(obs::SlicePhase::kSliceCreated, current_slice_id_,
                    group_.id, /*query_id=*/0, obs_node_id_, obs_role_,
                    end_ts);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kSliceSeal, current_slice_id_,
                    group_.id, end_ts);
  }

  if (gov_ != nullptr) {
    // Move the open-slice charges over to the sealed record: sorting
    // released slack (or a spill merge adopted a larger buffer), so the
    // record is re-metered at its actual post-seal footprint.
    for (uint64_t& c : lane_charged_) {
      gov_->Discharge(c);
      c = 0;
    }
    uint64_t rec_bytes = 0;
    for (const PartialAggregate& lane : records_.back().lanes) {
      rec_bytes += lane.bytes();
    }
    gov_->Charge(rec_bytes);
  }

  current_lanes_.clear();
  for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
    current_lanes_.push_back(MakeLanePartial(lane));
  }
  current_lane_events_.assign(group_.lanes.size(), 0);
  current_lane_last_ts_.assign(group_.lanes.size(), kNoTimestamp);
  current_slice_events_ = 0;
  if (any_dedup_) {
    for (auto& set : dedup_sets_) set.clear();
    dedup_inserted_ = 0;
    if (gov_ != nullptr) UpdateDedupCharge();
  }
  current_last_event_ = kNoTimestamp;
  ++current_slice_id_;
  current_slice_start_ = end_ts;
  if (gov_ != nullptr) gov_->Relieve();
  return current_slice_id_ - 1;
}

void StreamSlicer::CloseWindow(uint32_t spec_idx,
                               SpecState::OpenWindow window,
                               uint64_t last_slice_id, Timestamp end_ts) {
  SpecState& st = specs_[spec_idx];
  // Ship the end punctuation with the closing slice so downstream nodes can
  // terminate user-defined windows (§5.1.2). Fixed windows and sessions are
  // terminated downstream from window attributes / gap tracking instead.
  if (slice_sink_ && st.spec.type == WindowType::kUserDefined &&
      have_unshipped_ && !records_.empty()) {
    records_.back().eps.push_back({spec_idx, window.start_ts, end_ts});
  }
  if (!options_.assemble_windows) return;
  if (records_.empty()) return;

  const uint64_t base = records_.front().id;
  const uint64_t lo = std::max(window.first_slice_id, base);
  const uint64_t hi = std::min(last_slice_id, records_.back().id);

  // Factor-window execution (§ optimizer): a feeder window's merged
  // per-lane states are kept (under the lane masks, so any dependent's
  // needed mask fits) and each dependent window merges one composite per
  // covered feeder range instead of every base slice in it.
  const bool is_feeder =
      spec_idx < spec_is_feeder_.size() && spec_is_feeder_[spec_idx];
  const FactorComposite* own_composite = nullptr;
  if (is_feeder) {
    FactorComposite composite;
    composite.lanes.reserve(group_.lanes.size());
    composite.lane_events.assign(group_.lanes.size(), 0);
    for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
      PartialAggregate acc(LaneMask(lane));
      acc.Seal();
      for (uint64_t id = lo; id <= hi && hi >= lo; ++id) {
        SliceRecord& rec = records_[id - base];
        if (lane >= rec.lane_events.size() || rec.lane_events[lane] == 0) {
          continue;
        }
        MergeRecordLane(acc, rec, lane);
        composite.lane_events[lane] += rec.lane_events[lane];
        ++stats_->merges;
      }
      composite.lanes.push_back(std::move(acc));
    }
    own_composite =
        &(composites_[{window.start_ts, end_ts}] = std::move(composite));
  }
  const int32_t feeder = group_.plan.optimized
                             ? group_.plan.FeederOf(spec_idx)
                             : -1;
  const Timestamp feeder_len =
      feeder >= 0 && static_cast<size_t>(feeder) < specs_.size()
          ? specs_[static_cast<size_t>(feeder)].spec.length
          : 0;

  // Assemble once per selection lane, then finalize once per query; queries
  // sharing a lane share the merged operator states (§4.3).
  for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
    OperatorMask needed = 0;
    for (uint32_t qi : st.query_idxs) {
      const GroupedQuery& gq = group_.queries[qi];
      if (gq.lane == lane && !suppressed_.contains(gq.query.id) &&
          ActiveFor(qi, window.start_ts)) {
        needed |= OperatorsFor(gq.query.agg.fn);
      }
    }
    if (needed == 0) continue;
    needed = ResolveNeeded(needed, LaneMask(lane));

    PartialAggregate acc(needed);
    acc.Seal();
    uint64_t events = 0;
    if (own_composite != nullptr) {
      // This window IS the composite: one merge of the lane-mask state.
      if (own_composite->lane_events[lane] != 0) {
        acc.Merge(own_composite->lanes[lane]);
        events = own_composite->lane_events[lane];
        ++stats_->merges;
      }
    } else if (feeder_len > 0) {
      uint64_t id = lo;
      for (Timestamp sub = window.start_ts; sub < end_ts; sub += feeder_len) {
        const Timestamp sub_end = std::min(sub + feeder_len, end_ts);
        auto cit = composites_.find({sub, sub_end});
        if (cit != composites_.end()) {
          const FactorComposite& c = cit->second;
          if (lane < c.lanes.size() && c.lane_events[lane] != 0) {
            PartialAggregate::MergeCompatible(acc, c.lanes[lane]);
            events += c.lane_events[lane];
            ++stats_->merges;
          }
          while (id <= hi && hi >= lo && records_[id - base].start < sub_end) {
            ++id;  // base slices covered by the composite
          }
        } else {
          // No composite for this range (stream head, tail, or a
          // runtime-added feeder): fall back to base slices.
          for (; id <= hi && hi >= lo && records_[id - base].start < sub_end;
               ++id) {
            SliceRecord& rec = records_[id - base];
            if (lane >= rec.lane_events.size() ||
                rec.lane_events[lane] == 0) {
              continue;
            }
            MergeRecordLane(acc, rec, lane);
            events += rec.lane_events[lane];
            ++stats_->merges;
          }
        }
      }
    } else {
      for (uint64_t id = lo; id <= hi && hi >= lo; ++id) {
        SliceRecord& rec = records_[id - base];
        if (lane >= rec.lane_events.size() || rec.lane_events[lane] == 0) {
          continue;
        }
        MergeRecordLane(acc, rec, lane);
        events += rec.lane_events[lane];
        ++stats_->merges;
      }
    }
    if (events == 0) continue;

    for (uint32_t qi : st.query_idxs) {
      const GroupedQuery& gq = group_.queries[qi];
      if (gq.lane != lane || suppressed_.contains(gq.query.id) ||
          !ActiveFor(qi, window.start_ts)) {
        continue;
      }
      if (window_partial_sink_) {
        window_partial_sink_(gq.query.id, window.start_ts, end_ts, acc,
                             events);
      } else if (window_sink_) {
        window_sink_({gq.query.id, window.start_ts, end_ts,
                      acc.Finalize(gq.query.agg), events});
      }
    }
  }
  // Assembly restored cold records and charged them; re-shed before the
  // next window (or group) restores more, so the per-relief charge delta
  // stays one window's footprint rather than accumulating across closes.
  if (gov_ != nullptr) gov_->Relieve();
}

void StreamSlicer::FlushShippableSlice() {
  if (have_unshipped_ && slice_sink_) slice_sink_(records_.back());
  have_unshipped_ = false;
}

void StreamSlicer::CollectGarbage() {
  // Once no live slice references any spill run the file's space can be
  // recycled: sealed cold lanes are gone and the open slice has no runs.
  const auto maybe_recycle_spill = [&] {
    if (gov_ == nullptr || spill_ == nullptr || !sealed_spills_.empty() ||
        spill_->num_runs() == 0) {
      return;
    }
    for (const std::vector<uint32_t>& runs : lane_runs_) {
      if (!runs.empty()) return;
    }
    const Status reset_status = spill_->Reset();
    if (!reset_status.ok()) {
      WarnSpillError(reset_status);
      spill_failed_ = true;
      spill_.reset();
    }
  };

  if (!options_.keep_slices) {
    if (gov_ != nullptr && !records_.empty()) {
      uint64_t bytes = 0;
      for (const SliceRecord& rec : records_) {
        for (const PartialAggregate& lane : rec.lanes) bytes += lane.bytes();
      }
      gov_->Discharge(bytes);
      sealed_spills_.clear();
    }
    records_.clear();
    maybe_recycle_spill();
    return;
  }
  uint64_t min_first = kMaxTimestamp;
  for (const SpecState& st : specs_) {
    if (!st.open.empty()) {
      min_first = std::min(min_first, st.open.front().first_slice_id);
    }
  }
  while (!records_.empty() && records_.front().id < min_first) {
    if (gov_ != nullptr) {
      const SliceRecord& rec = records_.front();
      uint64_t bytes = 0;
      for (const PartialAggregate& lane : rec.lanes) bytes += lane.bytes();
      gov_->Discharge(bytes);
      if (!sealed_spills_.empty()) {
        sealed_spills_.erase(
            sealed_spills_.lower_bound({rec.id, 0}),
            sealed_spills_.upper_bound({rec.id, UINT32_MAX}));
      }
    }
    records_.pop_front();
  }
  maybe_recycle_spill();
  if (!composites_.empty()) {
    // A composite is dead once every dependent spec's earliest still-open
    // window starts past its end.
    Timestamp keep_from = kMaxTimestamp;
    bool any_dependent = false;
    for (uint32_t si = 0; si < specs_.size(); ++si) {
      if (!group_.plan.optimized || group_.plan.FeederOf(si) < 0) continue;
      any_dependent = true;
      const SpecState& st = specs_[si];
      if (st.next_ep != kNoTimestamp) {
        keep_from = std::min(keep_from, st.next_ep - st.spec.length);
      }
    }
    if (!any_dependent) {
      composites_.clear();
    } else {
      while (!composites_.empty() &&
             composites_.begin()->first.second <= keep_from) {
        composites_.erase(composites_.begin());
      }
    }
  }
}

void StreamSlicer::Ingest(const Event& event) {
  if (!initialized_) Initialize(event.ts);
  ++pending_events_in_;  // plain integer; flushed at seal/advance boundaries
  last_seen_ts_ = std::max(last_seen_ts_, event.ts);
  ProcessBoundariesUpTo(event.ts);

  // Selection lanes: each lane evaluates its predicate; an event is folded
  // into the shared operators once per matching lane.
  bool matched = false;
  matched_lanes_scratch_.clear();
  for (uint32_t i = 0; i < group_.lanes.size(); ++i) {
    ++stats_->selection_evals;
    if (!group_.lanes[i].predicate.Matches(event)) continue;
    if (group_.lanes[i].deduplicate) {
      if (!dedup_sets_[i].insert(HashEvent(event)).second) continue;
      ++dedup_inserted_;
    }
    matched_lanes_scratch_.push_back(i);
    matched = true;
  }

  auto lane_matched = [&](int lane_filter) {
    for (uint32_t lane : matched_lanes_scratch_) {
      if (static_cast<int>(lane) == lane_filter) return true;
    }
    return false;
  };

  if (matched) {
    // Session and user-defined windows open with the first matching event
    // after inactivity; the current slice is cut first so the new window's
    // slices contain no earlier events.
    for (uint32_t lane : matched_lanes_scratch_) {
      if (lane_session_idx_[lane] < 0) continue;
      SessionLane& sl =
          session_lanes_[static_cast<size_t>(lane_session_idx_[lane])];
      if (sl.num_inactive > 0) {
        SealCurrentSlice(event.ts);
        for (size_t i = 0; i < sl.num_inactive; ++i) {
          SpecState& st = specs_[sl.specs_by_gap[i]];
          st.active = true;
          st.open.push_back({event.ts, current_slice_id_});
        }
        sl.num_inactive = 0;
      }
    }
    for (uint32_t si : ud_specs_) {
      SpecState& st = specs_[si];
      if (!st.active && lane_matched(st.lane_filter)) {
        SealCurrentSlice(event.ts);
        st.active = true;
        st.open.push_back({event.ts, current_slice_id_});
      }
    }
  }

  for (uint32_t lane : matched_lanes_scratch_) {
    stats_->operator_executions +=
        static_cast<uint64_t>(current_lanes_[lane].Add(event.value));
    ++current_lane_events_[lane];
    ++current_slice_events_;
    ++lane_total_events_[lane];
    current_lane_last_ts_[lane] = event.ts;
  }
  if (gov_ != nullptr && matched) {
    for (uint32_t lane : matched_lanes_scratch_) UpdateLaneCharge(lane);
    if (any_dedup_) UpdateDedupCharge();
    gov_->Relieve();
  }

  if (matched) {
    current_last_event_ = event.ts;
    for (uint32_t lane : matched_lanes_scratch_) {
      if (!count_heaps_[lane].empty()) {
        ProcessCountBoundaries(event.ts, lane);
      }
      if (lane_session_idx_[lane] >= 0) {
        session_lanes_[static_cast<size_t>(lane_session_idx_[lane])]
            .last_event = event.ts;
      }
    }
    if ((event.marker & kWindowEnd) != 0) {
      for (uint32_t si : ud_specs_) {
        SpecState& st = specs_[si];
        if (!st.active || !lane_matched(st.lane_filter)) continue;
        const uint64_t last = SealCurrentSlice(event.ts);
        SpecState::OpenWindow window = st.open.front();
        st.open.pop_front();
        CloseWindow(si, window, last, event.ts);
        st.active = false;
      }
    }
    if ((event.marker & kWindowStart) != 0) {
      for (uint32_t si : ud_specs_) {
        SpecState& st = specs_[si];
        if (!st.active && lane_matched(st.lane_filter)) {
          SealCurrentSlice(event.ts);
          st.active = true;
          st.open.push_back({event.ts, current_slice_id_});
        }
      }
    }
  }

  FlushShippableSlice();
  // Garbage collection scans every spec's open-window deque; amortize it.
  if ((++gc_tick_ & 63u) == 0) CollectGarbage();
}

Timestamp StreamSlicer::NextBoundaryTs() const {
  if (options_.punctuation == PunctuationStrategy::kPrecomputed) {
    return boundary_heap_.empty() ? kMaxTimestamp : boundary_heap_.top().ts;
  }
  Timestamp best = kMaxTimestamp;
  for (const SpecState& st : specs_) {
    if (st.spec.measure != WindowMeasure::kTime || !st.spec.IsFixedSize()) {
      continue;
    }
    if (st.next_ep != kNoTimestamp) best = std::min(best, st.next_ep);
    if (st.next_sp != kNoTimestamp) best = std::min(best, st.next_sp);
  }
  return best;
}

void StreamSlicer::FoldRun(const Event* run, size_t n) {
  for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
    stats_->selection_evals += n;
    const Predicate& pred = group_.lanes[lane].predicate;
    run_values_scratch_.clear();
    Timestamp lane_last = kNoTimestamp;
    if (!pred.has_key && !pred.has_range) {
      // Match-all lane: plain gather, no branches.
      run_values_scratch_.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        run_values_scratch_.push_back(run[k].value);
      }
      lane_last = run[n - 1].ts;
    } else {
      for (size_t k = 0; k < n; ++k) {
        if (!pred.Matches(run[k])) continue;
        run_values_scratch_.push_back(run[k].value);
        lane_last = run[k].ts;
      }
    }
    if (run_values_scratch_.empty()) continue;
    const size_t matched = run_values_scratch_.size();
    // Run-length growth hint: one reservation per run instead of
    // reallocation churn as AddN feeds the sort buffer value by value.
    current_lanes_[lane].ReserveHint(matched);
    stats_->operator_executions +=
        current_lanes_[lane].AddN(run_values_scratch_.data(), matched);
    current_lane_events_[lane] += matched;
    current_slice_events_ += matched;
    lane_total_events_[lane] += matched;
    current_lane_last_ts_[lane] = lane_last;
    // ts order is non-decreasing, so the last matching event over all lanes
    // is the per-event path's "last event that matched any lane".
    current_last_event_ = std::max(current_last_event_, lane_last);
    if (gov_ != nullptr) UpdateLaneCharge(lane);
  }
  if (gov_ != nullptr) gov_->Relieve();
}

void StreamSlicer::IngestBatch(const Event* events, size_t count) {
  if (count == 0) return;
  if (!batch_fast_path_) {
    for (size_t i = 0; i < count; ++i) Ingest(events[i]);
    FlushEventsInCounter();
    return;
  }
  if (!initialized_) Initialize(events[0].ts);
  pending_events_in_ += count;
  last_seen_ts_ = std::max(last_seen_ts_, events[count - 1].ts);
  size_t i = 0;
  while (i < count) {
    // Fire everything due at or before the run head; afterwards the next
    // punctuation is strictly later, so the run is never empty.
    ProcessBoundariesUpTo(events[i].ts);
    const Timestamp limit = NextBoundaryTs();
    size_t j = i + 1;
    while (j < count && events[j].ts < limit) ++j;
    FoldRun(events + i, j - i);
    i = j;
  }
  FlushShippableSlice();
  FlushEventsInCounter();
  // Match the per-event GC cadence (~every 64 events).
  gc_tick_ += count;
  if (gc_tick_ >= 64) {
    gc_tick_ = 0;
    CollectGarbage();
  }
}

void StreamSlicer::AdvanceTo(Timestamp watermark) {
  last_seen_ts_ = std::max(last_seen_ts_, watermark);
  if (!initialized_) return;
  ProcessBoundariesUpTo(watermark);
  FlushShippableSlice();
  FlushEventsInCounter();
  CollectGarbage();
}

}  // namespace desis
