#ifndef DESIS_CORE_SPEC_LAYOUT_H_
#define DESIS_CORE_SPEC_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "core/query_analyzer.h"

namespace desis {

/// One distinct window spec inside a query-group, in canonical order.
struct SpecLayoutEntry {
  WindowSpec spec;
  /// Session, user-defined and count windows are scoped to one selection
  /// lane (their boundaries depend on which events match); fixed time
  /// windows are lane-independent (-1).
  int lane_filter = -1;
  /// Indices into group.queries sharing this spec, in query order.
  std::vector<uint32_t> query_idxs;
};

/// True when a query's window spec must be scoped to its selection lane.
inline bool SpecLaneScoped(const WindowSpec& spec) {
  return spec.measure == WindowMeasure::kCount ||
         spec.type == WindowType::kSession ||
         spec.type == WindowType::kUserDefined;
}

/// Deduplicates a group's window specs in first-encounter order. This is
/// THE canonical spec numbering for a group: StreamSlicer, RootAssembler
/// and the factor-window planner (GroupPlan::feeder) all index specs by
/// position in this vector, so EpInfo::spec_idx and plan edges agree
/// across nodes.
std::vector<SpecLayoutEntry> DeriveSpecLayout(const QueryGroup& group);

}  // namespace desis

#endif  // DESIS_CORE_SPEC_LAYOUT_H_
