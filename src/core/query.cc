#include "core/query.h"

#include <sstream>

namespace desis {

PredicateRelation Predicate::RelationTo(const Predicate& other) const {
  if (*this == other) return PredicateRelation::kIdentical;
  // Different keys can never match the same event.
  if (has_key && other.has_key && key != other.key) {
    return PredicateRelation::kDisjoint;
  }
  // Same key constraint (or at least one side unconstrained on key):
  // disjoint iff the value intervals cannot intersect.
  if (has_range && other.has_range &&
      (value_hi <= other.value_lo || other.value_hi <= value_lo)) {
    return PredicateRelation::kDisjoint;
  }
  return PredicateRelation::kOverlapping;
}

std::string Predicate::ToString() const {
  if (!has_key && !has_range) return "true";
  std::ostringstream out;
  if (has_key) out << "key == " << key;
  if (has_range) {
    if (has_key) out << " AND ";
    out << value_lo << " <= value < " << value_hi;
  }
  return out.str();
}

}  // namespace desis
