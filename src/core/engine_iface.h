#ifndef DESIS_CORE_ENGINE_IFACE_H_
#define DESIS_CORE_ENGINE_IFACE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "core/query.h"
#include "core/stats.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace desis {

/// Receives window results as they are produced.
using ResultSink = std::function<void(const WindowResult&)>;

/// Common single-node interface implemented by the Desis aggregation engine
/// and by every centralized baseline (CeBuffer, DeBucket, DeSW, Scotty).
/// Processing is event-time driven and fully deterministic: results fire
/// from Ingest()/AdvanceTo() calls, never from wall-clock timers.
class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  /// Installs the query set. Must be called before Ingest().
  virtual Status Configure(const std::vector<Query>& queries) = 0;

  /// Processes one event. Events must arrive in non-decreasing ts order.
  virtual void Ingest(const Event& event) = 0;

  /// Processes a batch of events (non-decreasing ts, within the batch and
  /// relative to earlier calls). Semantically identical to calling Ingest()
  /// once per event — this default does exactly that — but engines override
  /// it to amortize per-event dispatch and boundary checks over runs of
  /// events that fall inside the current slice. Prefer this entry point:
  /// feeding pre-buffered input through IngestBatch() is measurably faster
  /// on the slicing engines.
  virtual void IngestBatch(const Event* events, size_t count) {
    if (count == 0) return;
    // The ordering precondition is checked once per batch, not once per
    // event: a batch is internally sorted iff adjacent pairs are ordered,
    // so the per-event check inside the loop would be pure overhead.
    assert(std::is_sorted(events, events + count,
                          [](const Event& a, const Event& b) {
                            return a.ts < b.ts;
                          }) &&
           "IngestBatch requires non-decreasing event timestamps");
    for (size_t i = 0; i < count; ++i) Ingest(events[i]);
  }

  /// Advances the event-time watermark, firing windows that end at or
  /// before `watermark` even if no further events arrive.
  virtual void AdvanceTo(Timestamp watermark) = 0;

  /// Engine name for benchmark tables ("Desis", "Scotty", ...).
  virtual std::string name() const = 0;

  virtual const EngineStats& stats() const { return stats_; }

  void set_sink(ResultSink sink) { sink_ = std::move(sink); }

  /// Attaches a slice tracer: every emitted window records a
  /// kWindowEmitted span (virtual_ts = window end). Engines that slice
  /// override OnTracerAttached() to also trace slice creation. Engines
  /// embedded in a cluster are NOT attached directly — the cluster's
  /// result sink records emission at the root instead.
  void set_tracer(obs::SliceTracer* tracer, uint32_t node_id = 0,
                  uint8_t role = obs::kSpanRoleEngine) {
    tracer_ = tracer;
    tracer_node_id_ = node_id;
    tracer_role_ = role;
    OnTracerAttached();
  }
  obs::SliceTracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry: slicing engines register the per-query-
  /// group cost-attribution series (group.events_in, group.operator_evals
  /// — see docs/METRICS.md) via OnRegistryAttached(). Null detaches; the
  /// registry must outlive the attachment. Non-slicing baselines keep the
  /// default no-op hook and expose only EngineStats.
  void set_metrics_registry(obs::MetricsRegistry* registry) {
    registry_ = registry;
    OnRegistryAttached();
  }
  obs::MetricsRegistry* metrics_registry() const { return registry_; }

  /// Attaches the owning node's flight recorder: slicing engines forward
  /// it to their slicers via OnFlightRecorderAttached() so seal and
  /// spill/restore control-plane events land on the node's black-box ring
  /// (obs::FlightRecorder). Null detaches; non-slicing baselines keep the
  /// default no-op hook.
  void set_flight_recorder(obs::FlightRecorder* flight) {
    flight_ = flight;
    OnFlightRecorderAttached();
  }
  obs::FlightRecorder* flight_recorder() const { return flight_; }

 protected:
  void Emit(const WindowResult& result) {
    ++stats_.windows_fired;
    if (tracer_ != nullptr) {
      tracer_->Record(obs::SlicePhase::kWindowEmitted, /*slice_id=*/0,
                      /*group_id=*/0, result.query_id, tracer_node_id_,
                      tracer_role_, result.window_end);
    }
    if (sink_) sink_(result);
  }

  /// Subclass hook: tracer_/tracer_node_id_/tracer_role_ changed.
  virtual void OnTracerAttached() {}

  /// Subclass hook: registry_ changed.
  virtual void OnRegistryAttached() {}

  /// Subclass hook: flight_ changed.
  virtual void OnFlightRecorderAttached() {}

  EngineStats stats_;
  obs::SliceTracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  obs::MetricsRegistry* registry_ = nullptr;
  uint32_t tracer_node_id_ = 0;
  uint8_t tracer_role_ = obs::kSpanRoleEngine;

 private:
  ResultSink sink_;
};

}  // namespace desis

#endif  // DESIS_CORE_ENGINE_IFACE_H_
