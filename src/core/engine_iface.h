#ifndef DESIS_CORE_ENGINE_IFACE_H_
#define DESIS_CORE_ENGINE_IFACE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "core/query.h"
#include "core/stats.h"

namespace desis {

/// Receives window results as they are produced.
using ResultSink = std::function<void(const WindowResult&)>;

/// Common single-node interface implemented by the Desis aggregation engine
/// and by every centralized baseline (CeBuffer, DeBucket, DeSW, Scotty).
/// Processing is event-time driven and fully deterministic: results fire
/// from Ingest()/AdvanceTo() calls, never from wall-clock timers.
class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  /// Installs the query set. Must be called before Ingest().
  virtual Status Configure(const std::vector<Query>& queries) = 0;

  /// Processes one event. Events must arrive in non-decreasing ts order.
  virtual void Ingest(const Event& event) = 0;

  /// Processes a batch of events (non-decreasing ts, within the batch and
  /// relative to earlier calls). Semantically identical to calling Ingest()
  /// once per event — this default does exactly that — but engines override
  /// it to amortize per-event dispatch and boundary checks over runs of
  /// events that fall inside the current slice. Prefer this entry point:
  /// feeding pre-buffered input through IngestBatch() is measurably faster
  /// on the slicing engines.
  virtual void IngestBatch(const Event* events, size_t count) {
    for (size_t i = 0; i < count; ++i) Ingest(events[i]);
  }

  /// Advances the event-time watermark, firing windows that end at or
  /// before `watermark` even if no further events arrive.
  virtual void AdvanceTo(Timestamp watermark) = 0;

  /// Engine name for benchmark tables ("Desis", "Scotty", ...).
  virtual std::string name() const = 0;

  virtual const EngineStats& stats() const { return stats_; }

  void set_sink(ResultSink sink) { sink_ = std::move(sink); }

 protected:
  void Emit(const WindowResult& result) {
    ++stats_.windows_fired;
    if (sink_) sink_(result);
  }

  EngineStats stats_;

 private:
  ResultSink sink_;
};

}  // namespace desis

#endif  // DESIS_CORE_ENGINE_IFACE_H_
