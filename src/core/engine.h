#ifndef DESIS_CORE_ENGINE_H_
#define DESIS_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine_iface.h"
#include "core/query_analyzer.h"
#include "core/reorder_buffer.h"
#include "core/slicer.h"

namespace desis {

/// Single-node slicing engine: the query analyzer partitions queries into
/// query-groups and every group runs a StreamSlicer. With the default
/// cross-function sharing policy and precomputed punctuations this *is* the
/// Desis aggregation engine (§4); the DeSW and Scotty baselines reuse it
/// with per-function sharing and per-event boundary scans (§6.1.1).
class SlicingEngine : public StreamEngine {
 public:
  SlicingEngine(std::string name, SharingPolicy policy,
                PunctuationStrategy punctuation,
                DeploymentMode mode = DeploymentMode::kCentralized);

  Status Configure(const std::vector<Query>& queries) override;

  /// Configures from pre-analyzed (and possibly optimizer-planned) groups
  /// instead of raw queries: the caller runs QueryAnalyzer — and optionally
  /// opt::PlanGroups — itself and hands the result over. Group plans ride
  /// along into the slicers; core stays independent of the optimizer.
  Status ConfigureGroups(std::vector<QueryGroup> groups);
  void Ingest(const Event& event) override;
  /// Batched ingestion fast path: runs of events inside the current slice
  /// are folded with one boundary check and one bulk operator fold per lane
  /// (see StreamSlicer::IngestBatch for the safety conditions). In
  /// out-of-order mode the reorder buffer is batch-drained so released runs
  /// still take the fast path.
  void IngestBatch(const Event* events, size_t count) override;
  void AdvanceTo(Timestamp watermark) override;
  std::string name() const override { return name_; }

  /// Fires every fixed-size window still pending after the last event by
  /// advancing the watermark past the largest window extent.
  void Finish();

  /// Accepts out-of-order events up to `allowed_lateness` late: Ingest()
  /// buffers and reorders before slicing; older events are dropped and
  /// counted in dropped_events(). Call before the first Ingest().
  void EnableOutOfOrderIngest(Timestamp allowed_lateness) {
    reorder_.emplace(allowed_lateness);
  }
  uint64_t dropped_events() const {
    return reorder_.has_value() ? reorder_->dropped() : 0;
  }

  /// Puts the engine under a memory budget: slice state is byte-accounted
  /// by an engine-owned mem::MemoryGovernor, and oversized sort buffers
  /// spill to disk runs (DESIGN.md §3, memory governance). A zero budget
  /// removes governance. Call before the first Ingest().
  void EnableMemoryBudget(const mem::MemoryOptions& options);

  /// Attaches an externally owned governor instead (sharded engines hand
  /// one governor per shard); null detaches. Overrides EnableMemoryBudget.
  void set_memory_governor(mem::MemoryGovernor* governor);

  /// The active governor (owned or external); null when ungoverned.
  mem::MemoryGovernor* memory_governor() const { return gov_; }

  /// Registers a new query at runtime (§3.2). The query starts windowing
  /// with the next event; existing groups are not re-partitioned.
  Status AddQuery(const Query& query);

  /// Stops a running query's result emission (§3.2).
  Status RemoveQuery(QueryId id);

  size_t num_groups() const { return slicers_.size(); }
  const QueryGroup& group(size_t i) const { return slicers_[i]->group(); }

  /// Installs a per-slice callback on every group (decentralized local
  /// nodes ship these partials instead of assembling windows locally).
  void SetSliceSink(SliceSink sink);

  /// Per-group cost-attribution series are registered for at most this
  /// many groups (no-sharing policies can create one group per query; the
  /// overflow count is exported as group.metrics_truncated).
  static constexpr size_t kMaxInstrumentedGroups = 256;

 protected:
  /// Forwards the tracer to every slicer (slice-created spans).
  void OnTracerAttached() override;
  /// Forwards the metrics registry to every slicer (group cost series).
  void OnRegistryAttached() override;
  /// Forwards the flight recorder to every slicer (seal/spill events).
  void OnFlightRecorderAttached() override;

 private:
  std::unique_ptr<StreamSlicer> MakeSlicer(QueryGroup group);

  std::string name_;
  SharingPolicy policy_;
  PunctuationStrategy punctuation_;
  DeploymentMode mode_;
  bool assemble_windows_ = true;
  bool keep_slices_ = true;
  void IngestOrdered(const Event& event);
  void IngestOrderedBatch(const Event* events, size_t count);

  /// Owned governor (EnableMemoryBudget); declared before slicers_ so the
  /// slicers (which deregister from it) are destroyed first.
  std::unique_ptr<mem::MemoryGovernor> owned_gov_;
  /// Active governor: owned_gov_.get() or an external one; null = off.
  mem::MemoryGovernor* gov_ = nullptr;
  std::vector<std::unique_ptr<StreamSlicer>> slicers_;
  SliceSink slice_sink_;
  std::optional<ReorderBuffer> reorder_;
  std::vector<Event> release_scratch_;  // reorder-buffer batch drains
  Timestamp last_ts_ = kNoTimestamp;
  uint64_t next_query_seq_ = 0;

  friend class LocalNodeEngineAccess;

 public:
  /// Disables local window assembly and slice retention (decentralized
  /// local nodes only ship slice partials, §5.1). Call before Configure().
  void ConfigureForLocalNode() {
    assemble_windows_ = false;
    keep_slices_ = false;
  }

  Timestamp last_event_ts() const { return last_ts_; }
};

/// The Desis aggregation engine: cross-function operator sharing and
/// precomputed punctuations.
class DesisEngine : public SlicingEngine {
 public:
  explicit DesisEngine(DeploymentMode mode = DeploymentMode::kCentralized)
      : SlicingEngine("Desis", SharingPolicy::kCrossFunction,
                      PunctuationStrategy::kPrecomputed, mode) {}
};

}  // namespace desis

#endif  // DESIS_CORE_ENGINE_H_
