#include "core/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>

#include "core/engine.h"

namespace desis {

namespace {

/// Merges a shard slice into an accumulating record for the same
/// (group, start, end) range — the intra-node equivalent of the root's
/// per-lane partial merge. Counts one merge per non-empty source lane,
/// matching the assembler's accounting.
void MergeSliceInto(SliceRecord* dst, const SliceRecord& src,
                    EngineStats* stats) {
  // Shards racing a runtime query add can seal the same range with
  // different lane counts / operator masks for one barrier round: merge
  // the shared prefix mask-compatibly and append the wider record's extra
  // lanes.
  const size_t shared = std::min(dst->lanes.size(), src.lanes.size());
  for (size_t i = 0; i < shared; ++i) {
    if (src.lane_events[i] == 0) continue;
    PartialAggregate::MergeCompatible(dst->lanes[i], src.lanes[i]);
    dst->lane_events[i] += src.lane_events[i];
    if (src.lane_last_ts[i] > dst->lane_last_ts[i]) {
      dst->lane_last_ts[i] = src.lane_last_ts[i];
    }
    ++stats->merges;
  }
  for (size_t i = shared; i < src.lanes.size(); ++i) {
    dst->lanes.push_back(src.lanes[i]);
    dst->lane_events.push_back(src.lane_events[i]);
    dst->lane_last_ts.push_back(src.lane_last_ts[i]);
  }
  if (src.last_event_ts > dst->last_event_ts) {
    dst->last_event_ts = src.last_event_ts;
  }
  // Shard-local ids diverge after the first empty slice on any shard; keep
  // the smallest so merged ids stay monotone per group.
  if (src.id < dst->id) dst->id = src.id;
  for (const EpInfo& ep : src.eps) dst->eps.push_back(ep);
}

}  // namespace

bool GroupShardable(const QueryGroup& group) {
  if (group.root_only) return false;
  for (const SelectionLane& lane : group.lanes) {
    if (lane.deduplicate) return false;
  }
  for (const GroupedQuery& gq : group.queries) {
    if (gq.query.window.type == WindowType::kUserDefined) return false;
  }
  return true;
}

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.ring_capacity < 2) options_.ring_capacity = 2;
}

ShardedEngine::~ShardedEngine() { StopThreads(); }

size_t ShardedEngine::ShardOf(uint32_t key) const {
  // lowbias32: decorrelates sequential keys from the shard count so
  // round-robin key generators don't alias onto a single shard.
  uint32_t h = key;
  h ^= h >> 16;
  h *= 0x7feb352dU;
  h ^= h >> 15;
  h *= 0x846ca68bU;
  h ^= h >> 16;
  return h % shards_.size();
}

Status ShardedEngine::Configure(const std::vector<Query>& queries) {
  if (configured_) {
    return Status::Internal("ShardedEngine: already configured");
  }
  QueryAnalyzer analyzer(DeploymentMode::kDecentralized,
                         SharingPolicy::kCrossFunction);
  auto groups = analyzer.Analyze(queries);
  if (!groups.ok()) return groups.status();

  std::vector<QueryGroup> sharded;
  for (QueryGroup& g : groups.value()) {
    for (const GroupedQuery& gq : g.queries) {
      const WindowSpec& w = gq.query.window;
      if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
        max_extent_ = std::max(max_extent_, static_cast<Timestamp>(w.length));
      } else if (w.type == WindowType::kSession) {
        max_extent_ = std::max(max_extent_, w.gap);
      }
    }
    if (GroupShardable(g)) {
      sharded.push_back(g);
    } else {
      // Unshardable groups run the full single-threaded path: assembling
      // slicer, whole stream, caller thread.
      SlicerOptions opt;
      opt.punctuation = PunctuationStrategy::kPrecomputed;
      auto slicer = std::make_unique<StreamSlicer>(std::move(g), opt, &stats_);
      slicer->set_window_sink([this](const WindowResult& r) { Emit(r); });
      slicer->set_obs(tracer_, tracer_node_id_, tracer_role_);
      slicer->set_flight(flight_);
      if (slicer->group().id < SlicingEngine::kMaxInstrumentedGroups) {
        RegisterGroupMetrics(slicer->group(), registry_);
        slicer->set_metrics(registry_);
      }
      serial_slicers_.push_back(std::move(slicer));
    }
  }

  std::sort(sharded.begin(), sharded.end(),
            [](const QueryGroup& a, const QueryGroup& b) { return a.id < b.id; });
  for (const QueryGroup& g : sharded) {
    if (g.id < SlicingEngine::kMaxInstrumentedGroups) {
      RegisterGroupMetrics(g, registry_);
    }
    assemblers_.emplace_back(
        g.id, std::make_unique<RootAssembler>(
                  g, &assembler_stats_,
                  [this](const WindowResult& r) { Emit(r); }));
  }
  SetupShards(sharded);
  if (mem_options_.budget_bytes > 0 && !serial_slicers_.empty()) {
    // The serial path gets the same share as each shard (see GovernorShare
    // for the split); its governor lives on the caller thread only.
    serial_gov_ = std::make_unique<mem::MemoryGovernor>(
        GovernorShare(shards_.size() + 1));
    for (auto& sl : serial_slicers_) sl->set_memory(serial_gov_.get());
    obs::Labels labels;
    if (!options_.node_label.empty()) {
      labels.emplace_back("node", options_.node_label);
    }
    labels.emplace_back("shard", "serial");
    serial_gov_->AttachMetrics(registry_, std::move(labels));
  }
  configured_ = true;
  return Status::OK();
}

Status ShardedEngine::ConfigureGroups(const std::vector<QueryGroup>& groups,
                                      GroupSliceSink sink) {
  if (configured_) {
    return Status::Internal("ShardedEngine: already configured");
  }
  for (const QueryGroup& g : groups) {
    if (!GroupShardable(g)) {
      return Status::InvalidArgument(
          "ShardedEngine: group is not shardable; keep it on the caller");
    }
  }
  local_mode_ = true;
  group_slice_sink_ = std::move(sink);
  SetupShards(groups);
  configured_ = true;
  return Status::OK();
}

void ShardedEngine::AddShardedGroups(const std::vector<QueryGroup>& groups) {
  if (groups.empty()) return;
  if (shards_.empty()) {
    SetupShards(groups);
    return;
  }
  Quiesce();
  for (size_t i = 0; i < shards_.size(); ++i) {
    SetupShardSlicers(*shards_[i], i, groups);
  }
  // The slicer vectors are consumer-side state: publish the change to the
  // shard threads through the ring's release/acquire chain by forcing each
  // one through its parking lot once.
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
  }
}

bool ShardedEngine::ApplyQueryAdd(uint32_t group_id, const Query& q,
                                  uint32_t lane, const SelectionLane& lane_def,
                                  Timestamp active_from) {
  bool found = false;
  Quiesce();
  for (auto& s : shards_) {
    for (size_t i = 0; i < s->slicers.size(); ++i) {
      if (s->slicer_gids[i] != group_id) continue;
      // May seal the shard's current slice; the sink parks it in s->sealed
      // under s->mu, picked up at the next barrier like any other seal.
      s->slicers[i]->ApplyQueryAdd(q, lane, lane_def, active_from);
      found = true;
    }
  }
  for (auto& sl : serial_slicers_) {
    if (sl->group().id != group_id) continue;
    sl->ApplyQueryAdd(q, lane, lane_def, active_from);
    found = true;
  }
  for (auto& [gid, assembler] : assemblers_) {
    if (gid != group_id) continue;
    assembler->ApplyQueryAdd(q, lane, lane_def, active_from);
    found = true;
  }
  // Publish the consumer-side mutation to the shard threads through their
  // parking lots (same release/acquire chain as AddShardedGroups).
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
  }
  return found;
}

bool ShardedEngine::RemoveShardedGroup(uint32_t group_id) {
  bool found = false;
  Quiesce();
  const auto drop_gid = [group_id](std::pair<uint32_t, SliceRecord>& p) {
    return p.first == group_id;
  };
  for (auto& s : shards_) {
    for (size_t i = 0; i < s->slicers.size();) {
      if (s->slicer_gids[i] != group_id) {
        ++i;
        continue;
      }
      s->slicers.erase(s->slicers.begin() + static_cast<int64_t>(i));
      s->slicer_gids.erase(s->slicer_gids.begin() + static_cast<int64_t>(i));
      found = true;
    }
    std::lock_guard<std::mutex> lk(s->mu);
    s->sealed.erase(std::remove_if(s->sealed.begin(), s->sealed.end(), drop_gid),
                    s->sealed.end());
  }
  for (size_t i = 0; i < serial_slicers_.size();) {
    if (serial_slicers_[i]->group().id != group_id) {
      ++i;
      continue;
    }
    serial_slicers_.erase(serial_slicers_.begin() + static_cast<int64_t>(i));
    found = true;
  }
  for (auto it = assemblers_.begin(); it != assemblers_.end();) {
    if (it->first == group_id) {
      it = assemblers_.erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  for (auto& vec : drained_) {
    vec.erase(std::remove_if(vec.begin(), vec.end(), drop_gid), vec.end());
  }
  for (auto it = pending_ship_.begin(); it != pending_ship_.end();) {
    if (std::get<0>(it->first) == group_id) {
      it = pending_ship_.erase(it);
    } else {
      ++it;
    }
  }
  return found;
}

mem::MemoryOptions ShardedEngine::GovernorShare(size_t parts) const {
  mem::MemoryOptions share = mem_options_;
  if (parts > 1) {
    share.budget_bytes =
        std::max<uint64_t>(share.budget_bytes / parts, uint64_t{1});
  }
  return share;
}

void ShardedEngine::SetupShards(const std::vector<QueryGroup>& groups) {
  if (groups.empty()) return;
  const int n = options_.shards;
  // Serial groups (when present) take one governor share alongside the n
  // shard shares; Configure() creates that governor after this returns.
  const size_t parts =
      static_cast<size_t>(n) + (serial_slicers_.empty() ? 0 : 1);
  shards_.reserve(static_cast<size_t>(n));
  drained_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(options_.ring_capacity);
    shard->pop_buf.resize(kPopBatch);
    if (ooo_) shard->reorder.emplace(lateness_);
    if (mem_options_.budget_bytes > 0) {
      shard->governor = std::make_unique<mem::MemoryGovernor>(
          GovernorShare(parts));
    }
    SetupShardSlicers(*shard, static_cast<size_t>(i), groups);
    shards_.push_back(std::move(shard));
  }
  RegisterShardMetrics();
  StartThreads();
}

void ShardedEngine::SetupShardSlicers(Shard& shard, size_t shard_index,
                                      const std::vector<QueryGroup>& groups) {
  for (const QueryGroup& g : groups) {
    SlicerOptions opt;
    opt.punctuation = PunctuationStrategy::kPrecomputed;
    opt.assemble_windows = false;
    opt.keep_slices = false;
    auto slicer = std::make_unique<StreamSlicer>(g, opt, &shard.stats);
    Shard* sp = &shard;
    const uint32_t gid = g.id;
    slicer->set_slice_sink([sp, gid](const SliceRecord& rec) {
      // Per sealed slice, never per event: one mutex hop is fine here.
      std::lock_guard<std::mutex> lk(sp->mu);
      sp->sealed.emplace_back(gid, rec);
    });
    slicer->set_obs(tracer_, ObsNodeId(shard_index), ObsRole());
    slicer->set_flight(flight_);
    if (gid < SlicingEngine::kMaxInstrumentedGroups) {
      slicer->set_metrics(registry_);
    }
    if (shard.governor != nullptr) slicer->set_memory(shard.governor.get());
    shard.slicer_gids.push_back(gid);
    shard.slicers.push_back(std::move(slicer));
  }
}

void ShardedEngine::StartThreads() {
  for (auto& s : shards_) {
    Shard* sp = s.get();
    s->thread = std::thread([this, sp] { ShardMain(sp); });
  }
}

void ShardedEngine::StopThreads() {
  for (auto& s : shards_) {
    s->stop.store(true, std::memory_order_release);
    WakeShard(s.get());
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

bool ShardedEngine::ShardHasWork(const Shard& shard) const {
  if (!shard.ring.Empty()) return true;
  const Timestamp req = shard.wm_requested.load(std::memory_order_acquire);
  if (req != kNoTimestamp &&
      req != shard.wm_applied.load(std::memory_order_relaxed)) {
    return true;
  }
  return shard.stop.load(std::memory_order_acquire);
}

void ShardedEngine::ShardMain(Shard* shard) {
  for (;;) {
    const size_t n = shard->ring.TryPopN(shard->pop_buf.data(), kPopBatch);
    if (n > 0) {
      if (shard->reorder.has_value()) {
        shard->release_scratch.clear();
        for (size_t i = 0; i < n; ++i) {
          shard->reorder->Push(shard->pop_buf[i]);
          shard->reorder->DrainReleased(&shard->release_scratch);
        }
        if (!shard->release_scratch.empty()) {
          for (auto& sl : shard->slicers) {
            sl->IngestBatch(shard->release_scratch.data(),
                            shard->release_scratch.size());
          }
        }
      } else {
        for (auto& sl : shard->slicers) {
          sl->IngestBatch(shard->pop_buf.data(), n);
        }
      }
      shard->consumed.fetch_add(n, std::memory_order_release);
      continue;
    }
    // Ring drained. The caller only requests a watermark after pushing
    // everything that precedes it (single producer), so applying now
    // respects event order.
    const Timestamp req = shard->wm_requested.load(std::memory_order_acquire);
    if (req != kNoTimestamp &&
        req != shard->wm_applied.load(std::memory_order_relaxed)) {
      ApplyWatermark(shard, req);
      continue;
    }
    if (shard->stop.load(std::memory_order_acquire)) return;

    // Spin briefly, then park. The producer's seq_cst fence in WakeShard()
    // pairs with the seq_cst fetch_add here: either the parker sees the new
    // work on its re-check, or the producer sees parked > 0 and notifies.
    bool work = false;
    for (int i = 0; i < 64 && !work; ++i) {
      std::this_thread::yield();
      work = ShardHasWork(*shard);
    }
    if (work) continue;
    shard->parked.fetch_add(1, std::memory_order_seq_cst);
    if (!ShardHasWork(*shard)) {
      std::unique_lock<std::mutex> lk(shard->mu);
      shard->cv.wait_for(lk, std::chrono::microseconds(500),
                         [this, shard] { return ShardHasWork(*shard); });
    }
    shard->parked.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ShardedEngine::ApplyWatermark(Shard* shard, Timestamp watermark) {
  if (shard->reorder.has_value()) {
    shard->release_scratch.clear();
    shard->reorder->DrainUpTo(watermark, &shard->release_scratch);
    if (!shard->release_scratch.empty()) {
      for (auto& sl : shard->slicers) {
        sl->IngestBatch(shard->release_scratch.data(),
                        shard->release_scratch.size());
      }
    }
  }
  Timestamp safe = watermark;
  for (auto& sl : shard->slicers) {
    sl->AdvanceTo(watermark);
    const Timestamp sw = sl->SafeWatermark();
    if (sw != kNoTimestamp && sw < safe) safe = sw;
  }
  // safe_published rides the wm_applied release: the caller acquire-loads
  // wm_applied before reading it.
  shard->safe_published.store(safe, std::memory_order_relaxed);
  shard->wm_applied.store(watermark, std::memory_order_release);
}

void ShardedEngine::WakeShard(Shard* shard) {
  // Pairs with the parker's seq_cst fetch_add: one of the two sides is
  // guaranteed to observe the other (eventcount handshake), so a push can
  // never be missed by a thread that is about to sleep.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard->parked.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->cv.notify_one();
  }
}

void ShardedEngine::PushBlocking(Shard* shard) {
  const Event* p = shard->scratch.data();
  size_t left = shard->scratch.size();
  while (left > 0) {
    const size_t n = shard->ring.TryPushN(p, left);
    if (n > 0) {
      p += n;
      left -= n;
      shard->pushed += n;
      WakeShard(shard);
    } else {
      // Ring full: the shard is behind. Make sure it is awake and let it
      // run; this backpressure bounds the caller/shard skew.
      WakeShard(shard);
      std::this_thread::yield();
    }
  }
  shard->events_total += shard->scratch.size();
  if (shard->events_counter != nullptr) {
    shard->events_counter->Add(shard->scratch.size());
  }
  if (shard->queue_hwm_gauge != nullptr) {
    shard->queue_hwm_gauge->StoreMax(
        static_cast<int64_t>(shard->ring.SizeApprox()));
  }
  shard->scratch.clear();
}

void ShardedEngine::PartitionAndPush(const Event* events, size_t count) {
  uint64_t forwarded = 0;
  if (!ooo_) {
    for (size_t i = 0; i < count; ++i) {
      shards_[ShardOf(events[i].key)]->scratch.push_back(events[i]);
    }
    forwarded = count;
  } else {
    // Replay the single-threaded reorder buffer's drop rule on a
    // timestamps-only shadow so dropped_events() matches it exactly. The
    // shards reorder their own substreams; a shard's release frontier can
    // only trail the global one, so shard-local buffers never drop.
    for (size_t i = 0; i < count; ++i) {
      const Event& e = events[i];
      if (e.ts < shadow_frontier_) {
        ++dropped_;
        continue;
      }
      shadow_heap_.push(e.ts);
      if (e.ts > shadow_max_ts_) shadow_max_ts_ = e.ts;
      while (!shadow_heap_.empty() &&
             shadow_heap_.top() + lateness_ <= shadow_max_ts_) {
        if (shadow_heap_.top() > shadow_frontier_) {
          shadow_frontier_ = shadow_heap_.top();
        }
        shadow_heap_.pop();
      }
      shards_[ShardOf(e.key)]->scratch.push_back(e);
      ++forwarded;
    }
  }
  stats_.events += forwarded;
  for (auto& s : shards_) {
    if (!s->scratch.empty()) PushBlocking(s.get());
  }
}

void ShardedEngine::Ingest(const Event& event) { IngestBatch(&event, 1); }

void ShardedEngine::IngestBatch(const Event* events, size_t count) {
  if (count == 0) return;
  if (events[count - 1].ts > last_ts_) last_ts_ = events[count - 1].ts;

  // Serial groups see the whole stream, exactly as in SlicingEngine.
  if (!serial_slicers_.empty()) {
    if (serial_reorder_.has_value()) {
      serial_scratch_.clear();
      for (size_t i = 0; i < count; ++i) {
        serial_reorder_->Push(events[i]);
        serial_reorder_->DrainReleased(&serial_scratch_);
      }
      if (!serial_scratch_.empty()) {
        for (auto& sl : serial_slicers_) {
          sl->IngestBatch(serial_scratch_.data(), serial_scratch_.size());
        }
      }
    } else {
      for (auto& sl : serial_slicers_) sl->IngestBatch(events, count);
    }
  }

  if (shards_.empty()) {
    // No shardable groups: count the stream here (the serial path's stats_
    // pointer only tracks slicer-side counters).
    stats_.events += count;
    return;
  }
  PartitionAndPush(events, count);
  // Opportunistically move sealed slices out of the shard channels so they
  // don't pile up between barriers; try_lock keeps ingest non-blocking.
  DrainSealed(/*blocking=*/false);
}

void ShardedEngine::DrainSealed(bool blocking) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    std::unique_lock<std::mutex> lk(s.mu, std::defer_lock);
    if (blocking) {
      lk.lock();
    } else if (!lk.try_lock()) {
      continue;
    }
    if (s.sealed.empty()) continue;
    auto& dst = drained_[i];
    for (auto& rec : s.sealed) dst.push_back(std::move(rec));
    s.sealed.clear();
  }
}

void ShardedEngine::WaitBarrier(Timestamp watermark) {
  for (auto& s : shards_) {
    int spins = 0;
    while (s->wm_applied.load(std::memory_order_acquire) < watermark) {
      WakeShard(s.get());
      if (++spins < 4096) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
}

void ShardedEngine::AdvanceTo(Timestamp watermark) {
  if (!configured_ || watermark == kNoTimestamp) return;

  // Serial path mirrors SlicingEngine::AdvanceTo.
  if (serial_reorder_.has_value()) {
    serial_scratch_.clear();
    serial_reorder_->DrainUpTo(watermark, &serial_scratch_);
    if (!serial_scratch_.empty()) {
      for (auto& sl : serial_slicers_) {
        sl->IngestBatch(serial_scratch_.data(), serial_scratch_.size());
      }
    }
  }
  for (auto& sl : serial_slicers_) sl->AdvanceTo(watermark);

  if (ooo_) {
    // Shadow equivalent of ReorderBuffer::DrainUpTo.
    while (!shadow_heap_.empty() && shadow_heap_.top() <= watermark) {
      if (shadow_heap_.top() > shadow_frontier_) {
        shadow_frontier_ = shadow_heap_.top();
      }
      shadow_heap_.pop();
    }
  }

  // Watermark requests must be monotone (wm_applied comparisons rely on
  // it); a caller moving backwards just re-waits on the old barrier.
  const Timestamp effective =
      advanced_wm_ == kNoTimestamp ? watermark
                                   : std::max(watermark, advanced_wm_);
  Timestamp barrier = effective;
  if (!shards_.empty()) {
    for (auto& s : shards_) {
      s->wm_requested.store(effective, std::memory_order_release);
      WakeShard(s.get());
    }
    WaitBarrier(effective);
    DrainSealed(/*blocking=*/true);
    for (auto& s : shards_) {
      const Timestamp sw = s->safe_published.load(std::memory_order_relaxed);
      if (sw != kNoTimestamp && sw < barrier) barrier = sw;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  MergeAndDeliver(barrier);
  if (merge_ns_hist_ != nullptr) {
    merge_ns_hist_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
  }
  FoldShardStats();
  // Pin the advertised watermark to the earliest held-back fragment (local
  // mode): downstream consumers must not sweep past a range that is still
  // accumulating shard fragments here, or a later ship of that range would
  // land behind the root's session scan.
  safe_wm_ = barrier;
  for (const auto& [key, rec] : pending_ship_) {
    safe_wm_ = std::min(safe_wm_, rec.start);
  }
  advanced_wm_ = effective;
}

void ShardedEngine::MergeAndDeliver(Timestamp barrier) {
  if (local_mode_) {
    // Merge shard slices per (group, start, end) and deliver in key order:
    // the map iteration order fixes both the merge fold order (shard order
    // per key, because drained_ is scanned shard-by-shard) and the delivery
    // order, so downstream shipping is deterministic.
    for (auto& vec : drained_) {
      for (auto& [gid, rec] : vec) {
        const auto key = std::make_tuple(gid, rec.start, rec.end);
        auto it = pending_ship_.find(key);
        if (it == pending_ship_.end()) {
          pending_ship_.emplace(key, std::move(rec));
        } else {
          MergeSliceInto(&it->second, rec, &stats_);
        }
      }
      vec.clear();
    }
    // Ship only ranges the barrier has passed (see pending_ship_ in the
    // header): later barriers can still seal more fragments of any range
    // ending beyond this one.
    auto it = pending_ship_.begin();
    while (it != pending_ship_.end()) {
      if (it->second.end > barrier) {
        ++it;
        continue;
      }
      if (group_slice_sink_) {
        group_slice_sink_(std::get<0>(it->first), it->second);
      }
      it = pending_ship_.erase(it);
    }
    return;
  }

  // Standalone mode: feed the assemblers in shard-index order (drained_
  // preserves per-shard seal order), then advance every assembler to the
  // barrier in group-id order. Deterministic merge and emission order.
  for (auto& vec : drained_) {
    for (auto& [gid, rec] : vec) {
      const auto it = std::lower_bound(
          assemblers_.begin(), assemblers_.end(), gid,
          [](const auto& a, uint32_t id) { return a.first < id; });
      it->second->AddPartial(rec);
    }
    vec.clear();
  }
  for (auto& [gid, assembler] : assemblers_) {
    (void)gid;
    assembler->AdvanceTo(barrier);
  }
}

void ShardedEngine::FoldShardStats() {
  const auto fold = [this](const EngineStats& src, StatsSnapshot* folded) {
    StatsSnapshot now;
    now.operator_executions = src.operator_executions.load();
    now.slices_created = src.slices_created.load();
    now.selection_evals = src.selection_evals.load();
    now.merges = src.merges.load();
    stats_.operator_executions += now.operator_executions -
                                  folded->operator_executions;
    stats_.slices_created += now.slices_created - folded->slices_created;
    stats_.selection_evals += now.selection_evals - folded->selection_evals;
    stats_.merges += now.merges - folded->merges;
    *folded = now;
  };
  for (auto& s : shards_) fold(s->stats, &s->folded);
  // windows_fired is deliberately excluded: Emit() already counts it once
  // per emitted result.
  fold(assembler_stats_, &assembler_folded_);

  if (imbalance_gauge_ != nullptr && shards_.size() > 1) {
    uint64_t lo = UINT64_MAX, hi = 0, total = 0;
    for (auto& s : shards_) {
      lo = std::min(lo, s->events_total);
      hi = std::max(hi, s->events_total);
      total += s->events_total;
    }
    if (total > 0) {
      const double mean =
          static_cast<double>(total) / static_cast<double>(shards_.size());
      imbalance_gauge_->Set(
          static_cast<int64_t>(100.0 * static_cast<double>(hi - lo) / mean));
    }
  }
}

void ShardedEngine::Quiesce() {
  for (auto& s : shards_) {
    while (s->consumed.load(std::memory_order_acquire) != s->pushed ||
           s->wm_applied.load(std::memory_order_acquire) !=
               s->wm_requested.load(std::memory_order_relaxed)) {
      WakeShard(s.get());
      std::this_thread::yield();
    }
  }
}

void ShardedEngine::Finish() {
  if (last_ts_ == kNoTimestamp) return;
  AdvanceTo(last_ts_ + max_extent_ + 1);
}

void ShardedEngine::EnableOutOfOrderIngest(Timestamp allowed_lateness) {
  ooo_ = true;
  lateness_ = allowed_lateness;
  if (!serial_slicers_.empty() || !configured_) {
    serial_reorder_.emplace(allowed_lateness);
  }
  if (!shards_.empty()) {
    Quiesce();
    for (auto& s : shards_) s->reorder.emplace(allowed_lateness);
  }
}

uint32_t ShardedEngine::ObsNodeId(size_t shard_index) const {
  // Standalone engines tag slice spans with the shard index so traces show
  // per-shard slice flow; inside a cluster the node id wins (shard identity
  // still shows up in the engine.shard_* metrics).
  return local_mode_ ? tracer_node_id_ : static_cast<uint32_t>(shard_index);
}

uint8_t ShardedEngine::ObsRole() const { return tracer_role_; }

void ShardedEngine::OnTracerAttached() {
  Quiesce();
  for (auto& sl : serial_slicers_) {
    sl->set_obs(tracer_, tracer_node_id_, tracer_role_);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (auto& sl : shards_[i]->slicers) {
      sl->set_obs(tracer_, ObsNodeId(i), ObsRole());
    }
  }
}

void ShardedEngine::OnFlightRecorderAttached() {
  Quiesce();
  for (auto& sl : serial_slicers_) sl->set_flight(flight_);
  for (auto& s : shards_) {
    for (auto& sl : s->slicers) sl->set_flight(flight_);
  }
}

void ShardedEngine::RegisterShardMetrics() {
  merge_ns_hist_ = nullptr;
  imbalance_gauge_ = nullptr;
  for (auto& s : shards_) {
    s->events_counter = nullptr;
    s->queue_hwm_gauge = nullptr;
  }
  if (registry_ == nullptr) return;
  obs::Labels base;
  if (!options_.node_label.empty()) {
    base.emplace_back("node", options_.node_label);
  }
  merge_ns_hist_ = registry_->GetHistogram("engine.merge_ns", base, "ns");
  imbalance_gauge_ =
      registry_->GetGauge("engine.shard_imbalance_pct", base, "percent");
  for (size_t i = 0; i < shards_.size(); ++i) {
    obs::Labels labels = base;
    labels.emplace_back("shard", std::to_string(i));
    shards_[i]->events_counter =
        registry_->GetCounter("engine.shard_events", labels, "events");
    shards_[i]->queue_hwm_gauge =
        registry_->GetGauge("engine.shard_queue_hwm", labels, "events");
    if (shards_[i]->governor != nullptr) {
      shards_[i]->governor->AttachMetrics(registry_, labels);
    }
  }
  if (serial_gov_ != nullptr) {
    obs::Labels labels = base;
    labels.emplace_back("shard", "serial");
    serial_gov_->AttachMetrics(registry_, std::move(labels));
  }
}

void ShardedEngine::OnRegistryAttached() {
  Quiesce();
  RegisterShardMetrics();
  for (auto& sl : serial_slicers_) {
    sl->set_metrics(sl->group().id < SlicingEngine::kMaxInstrumentedGroups
                        ? registry_
                        : nullptr);
  }
  for (auto& s : shards_) {
    for (size_t j = 0; j < s->slicers.size(); ++j) {
      s->slicers[j]->set_metrics(
          s->slicer_gids[j] < SlicingEngine::kMaxInstrumentedGroups
              ? registry_
              : nullptr);
    }
  }
}

}  // namespace desis
