#ifndef DESIS_CORE_AGGREGATION_H_
#define DESIS_CORE_AGGREGATION_H_

#include <cstdint>
#include <string>

namespace desis {

/// Window aggregation functions supported by Desis (paper Table 1).
enum class AggregationFunction : uint8_t {
  kSum = 0,
  kCount,
  kAverage,
  kProduct,
  kGeometricMean,
  kMin,
  kMax,
  kMedian,
  kQuantile,
  // User-defined operator extensions (§4.2.1: "for complex aggregation
  // functions, users can define new operators to break down functions"):
  // variance and standard deviation decompose into {sum, count, sum_sq}.
  kVariance,
  kStdDev,
};

/// Primitive operators that aggregation functions are broken down into.
/// Sharing happens at this level: a query-group executes each *operator*
/// once per event, regardless of how many queries need it (paper §4.2.1).
enum class OperatorKind : uint8_t {
  kSum = 0,
  kCount,
  kMultiply,
  kDecomposableSort,     // incremental; keeps only running min/max
  kNonDecomposableSort,  // keeps all events, sorts once per slice
  kSumSquares,           // user-defined operator example: sum of squares
};

inline constexpr int kNumOperatorKinds = 6;

/// Bitset over OperatorKind. Bit i set <=> operator i is required/active.
using OperatorMask = uint8_t;

inline constexpr OperatorMask MaskOf(OperatorKind kind) {
  return static_cast<OperatorMask>(1u << static_cast<uint8_t>(kind));
}

inline constexpr bool MaskHas(OperatorMask mask, OperatorKind kind) {
  return (mask & MaskOf(kind)) != 0;
}

/// An aggregation function instance; `quantile` in (0,1) is only meaningful
/// for kQuantile (e.g. 0.5 == median via the quantile path).
struct AggregationSpec {
  AggregationFunction fn = AggregationFunction::kSum;
  double quantile = 0.5;
  /// Opt-in sketch lane for kMedian/kQuantile: when every median/quantile
  /// query on a selection lane sets this, the lane's sort buffer is replaced
  /// by a t-digest — O(1) state per slice instead of O(events), with the
  /// rank-error bound documented in mem/tdigest.h. Ignored for other fns.
  bool approx_quantile = false;

  friend bool operator==(const AggregationSpec&,
                         const AggregationSpec&) = default;
};

/// Table 1: the operator set an aggregation function decomposes into.
OperatorMask OperatorsFor(AggregationFunction fn);

/// Decomposable functions admit partial aggregation on sub-streams
/// (distributive or algebraic per Gray et al.); non-decomposable (holistic)
/// functions — median, quantile — require all events at the root (§5.2).
bool IsDecomposable(AggregationFunction fn);

/// Human-readable names, used by benches and error messages.
std::string ToString(AggregationFunction fn);
std::string ToString(OperatorKind kind);

/// Short operator label used as the `op` metric label value
/// (group.operator_evals{op=sum|count|mult|dsort|ndsort|sumsq}).
const char* OperatorShortName(OperatorKind kind);

/// Number of set bits, i.e. operators a mask requires per event.
int OperatorCount(OperatorMask mask);

/// Drops operators subsumed by others in a combined mask: when a
/// non-decomposable sort is already required (median/quantile), min/max read
/// their extrema from the sorted state and the decomposable sort is
/// redundant — "quantile and max can share the same operator" (§6.3.2).
OperatorMask ReduceMask(OperatorMask mask);

/// Maps a query's needed operators onto a (possibly reduced) group mask:
/// if the group dropped the decomposable sort because a non-decomposable
/// sort subsumes it, min/max queries read the sorted state instead.
OperatorMask ResolveNeeded(OperatorMask needed, OperatorMask group_mask);

}  // namespace desis

#endif  // DESIS_CORE_AGGREGATION_H_
