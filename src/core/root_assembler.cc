#include "core/root_assembler.h"

#include <algorithm>
#include <cassert>

namespace desis {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

RootAssembler::RootAssembler(QueryGroup group, EngineStats* stats,
                             WindowSink sink)
    : group_(std::move(group)), stats_(stats), sink_(std::move(sink)) {
  // Mirror the slicer's spec deduplication so EpInfo::spec_idx values match
  // between local nodes and the root.
  for (uint32_t qi = 0; qi < group_.queries.size(); ++qi) {
    const WindowSpec& spec = group_.queries[qi].query.window;
    const bool lane_scoped = spec.measure == WindowMeasure::kCount ||
                             spec.type == WindowType::kSession ||
                             spec.type == WindowType::kUserDefined;
    const int lane_filter =
        lane_scoped ? static_cast<int>(group_.queries[qi].lane) : -1;
    uint32_t si = 0;
    for (; si < specs_.size(); ++si) {
      if (specs_[si].spec == spec && specs_[si].lane_filter == lane_filter) {
        break;
      }
    }
    if (si == specs_.size()) {
      SpecState st;
      st.spec = spec;
      st.lane_filter = lane_filter;
      specs_.push_back(std::move(st));
      if (spec.type == WindowType::kSession) {
        session_specs_.push_back(si);
      } else if (spec.type == WindowType::kUserDefined) {
        ud_specs_.push_back(si);
      }
    }
    specs_[si].query_idxs.push_back(qi);
  }
}

bool RootAssembler::SuppressQuery(QueryId id) {
  for (const GroupedQuery& gq : group_.queries) {
    if (gq.query.id == id && !suppressed_.contains(id)) {
      suppressed_.insert(id);
      return true;
    }
  }
  return false;
}

void RootAssembler::InitializeSchedules(Timestamp first_start) {
  first_start_ = first_start;
  for (SpecState& st : specs_) {
    if (st.spec.measure == WindowMeasure::kTime && st.spec.IsFixedSize()) {
      const int64_t l = st.spec.length;
      const int64_t s = st.spec.slide;
      st.next_ep = (FloorDiv(first_start - l, s) + 1) * s + l;
    }
  }
  initialized_ = true;
}

void RootAssembler::AddPartial(const SliceRecord& msg) {
  if (!initialized_) {
    InitializeSchedules(msg.start);
  } else if (!any_closed_ && msg.start < first_start_) {
    // A child joined with an earlier stream prefix before any window
    // closed: rewind the schedules.
    InitializeSchedules(msg.start);
  }

  // Senders pin their advertised watermark to the earliest slice they still
  // hold (ShardedEngine::AdvanceTo, DesisIntermediateNode::FlushUpTo), so a
  // partial can never arrive at or behind the session scan's cursor — the
  // scan consumes each entry exactly once, and activity merged in behind it
  // would silently vanish from session tracking.
  assert((session_specs_.empty() || session_cursor_.first == kNoTimestamp ||
          EntryKey{msg.start, msg.end} > session_cursor_));
  auto [it, inserted] = entries_.try_emplace(EntryKey{msg.start, msg.end});
  Entry& entry = it->second;
  if (inserted) {
    entry.start = msg.start;
    entry.end = msg.end;
    entry.last_event_ts = msg.last_event_ts;
    entry.lanes = msg.lanes;
    entry.lane_events = msg.lane_events;
    entry.lane_last_ts = msg.lane_last_ts;
    entry.reports = 1;
    ++stats_->slices_created;  // a new root slice
  } else {
    assert(entry.lanes.size() == msg.lanes.size());
    for (size_t i = 0; i < entry.lanes.size(); ++i) {
      if (msg.lane_events[i] == 0) continue;
      entry.lanes[i].Merge(msg.lanes[i]);
      entry.lane_events[i] += msg.lane_events[i];
      entry.lane_last_ts[i] = std::max(entry.lane_last_ts[i], msg.lane_last_ts[i]);
      ++stats_->merges;
    }
    entry.last_event_ts = std::max(entry.last_event_ts, msg.last_event_ts);
    ++entry.reports;
  }

  // User-defined end punctuations: children that saw the delimiting marker
  // ship an ep; deduplicate by window end (markers are stream-global).
  for (const EpInfo& ep : msg.eps) {
    if (ep.spec_idx >= specs_.size()) continue;
    SpecState& st = specs_[ep.spec_idx];
    if (st.spec.type != WindowType::kUserDefined) continue;
    bool known = false;
    for (const EpInfo& pending : st.pending_eps) {
      if (pending.window_end == ep.window_end) {
        known = true;
        break;
      }
    }
    if (!known) {
      st.pending_eps.push_back(ep);
      // Keep eps ordered by window end.
      std::sort(st.pending_eps.begin(), st.pending_eps.end(),
                [](const EpInfo& a, const EpInfo& b) {
                  return a.window_end < b.window_end;
                });
    }
  }
}

void RootAssembler::AssembleWindow(uint32_t spec_idx, Timestamp ws,
                                   Timestamp we) {
  any_closed_ = true;
  const SpecState& st = specs_[spec_idx];
  for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
    OperatorMask needed = 0;
    for (uint32_t qi : st.query_idxs) {
      if (group_.queries[qi].lane == lane &&
          !suppressed_.contains(group_.queries[qi].query.id)) {
        needed |= OperatorsFor(group_.queries[qi].query.agg.fn);
      }
    }
    if (needed == 0) continue;
    needed = ResolveNeeded(needed, group_.mask);

    PartialAggregate acc(needed);
    acc.Seal();
    uint64_t events = 0;
    for (auto it = entries_.lower_bound(EntryKey{ws, kNoTimestamp});
         it != entries_.end() && it->second.start < we; ++it) {
      const Entry& entry = it->second;
      if (entry.end > we || entry.lane_events[lane] == 0) continue;
      acc.Merge(entry.lanes[lane]);
      events += entry.lane_events[lane];
      ++stats_->merges;
    }
    if (events == 0) continue;

    for (uint32_t qi : st.query_idxs) {
      const GroupedQuery& gq = group_.queries[qi];
      if (gq.lane != lane || suppressed_.contains(gq.query.id)) continue;
      if (sink_) {
        sink_({gq.query.id, ws, we, acc.Finalize(gq.query.agg), events});
      }
      ++stats_->windows_fired;
    }
  }
}

void RootAssembler::ScanSessionsUpTo(Timestamp watermark) {
  if (session_specs_.empty()) return;
  // Consume completed entries in global time order; an entry with events
  // either extends the running session or — if it starts after the gap
  // deadline — closes it and opens the next (§5.1.2).
  auto it = session_cursor_.first == kNoTimestamp
                ? entries_.begin()
                : entries_.upper_bound(session_cursor_);
  for (; it != entries_.end() && it->second.end <= watermark; ++it) {
    const Entry& entry = it->second;
    session_cursor_ = it->first;
    for (uint32_t si : session_specs_) {
      SpecState& st = specs_[si];
      const size_t lane = static_cast<size_t>(st.lane_filter);
      if (entry.lane_events[lane] == 0) continue;
      const Timestamp lane_last = entry.lane_last_ts[lane];
      if (!st.active) {
        st.active = true;
        st.session_start = entry.start;
        st.global_last = lane_last;
      } else if (entry.start >= st.global_last + st.spec.gap) {
        AssembleWindow(si, st.session_start, st.global_last + st.spec.gap);
        st.session_start = entry.start;
        st.global_last = lane_last;
      } else {
        st.global_last = std::max(st.global_last, lane_last);
      }
    }
  }
  // Unconsumed entries (end beyond the watermark) may still carry events
  // before the watermark — the earliest such start bounds how far the
  // trailing gap check may reach, or a cross-child session would be cut
  // while one child's long slice is still in flight (§5.1.2).
  const Timestamp unconsumed_start =
      it != entries_.end() ? it->second.start : kMaxTimestamp;
  const Timestamp close_limit = std::min(watermark, unconsumed_start);
  for (uint32_t si : session_specs_) {
    SpecState& st = specs_[si];
    if (st.active && st.global_last + st.spec.gap <= close_limit) {
      AssembleWindow(si, st.session_start, st.global_last + st.spec.gap);
      st.active = false;
      st.session_start = kNoTimestamp;
      st.global_last = kNoTimestamp;
    }
  }
}

void RootAssembler::AdvanceTo(Timestamp watermark) {
  if (!initialized_ || watermark == kNoTimestamp) return;

  for (uint32_t si = 0; si < specs_.size(); ++si) {
    SpecState& st = specs_[si];
    if (st.spec.measure != WindowMeasure::kTime || !st.spec.IsFixedSize()) {
      continue;
    }
    while (st.next_ep <= watermark) {
      AssembleWindow(si, st.next_ep - st.spec.length, st.next_ep);
      st.next_ep += st.spec.slide;
    }
  }

  ScanSessionsUpTo(watermark);

  for (uint32_t si : ud_specs_) {
    SpecState& st = specs_[si];
    while (!st.pending_eps.empty() &&
           st.pending_eps.front().window_end <= watermark) {
      const EpInfo ep = st.pending_eps.front();
      st.pending_eps.pop_front();
      AssembleWindow(si, ep.window_start, ep.window_end);
      st.last_closed_end = ep.window_end;
    }
  }

  CollectGarbage(watermark);
}

void RootAssembler::CollectGarbage(Timestamp watermark) {
  Timestamp keep_from = watermark;
  for (const SpecState& st : specs_) {
    if (st.spec.measure == WindowMeasure::kTime && st.spec.IsFixedSize()) {
      keep_from = std::min(keep_from, st.next_ep - st.spec.length);
    } else if (st.spec.type == WindowType::kSession) {
      if (st.active) keep_from = std::min(keep_from, st.session_start);
    } else if (st.spec.type == WindowType::kUserDefined) {
      // The root only learns a user-defined window's start from its ep, so
      // keep everything after the last closed window.
      keep_from = std::min(keep_from, st.last_closed_end == kNoTimestamp
                                          ? first_start_
                                          : st.last_closed_end);
      if (!st.pending_eps.empty()) {
        keep_from = std::min(keep_from, st.pending_eps.front().window_start);
      }
    }
  }
  while (!entries_.empty()) {
    const auto& [key, entry] = *entries_.begin();
    if (entry.end > keep_from) break;
    // Entries not yet consumed by the session scan must survive.
    if (!session_specs_.empty() &&
        (session_cursor_.first == kNoTimestamp || key > session_cursor_)) {
      break;
    }
    entries_.erase(entries_.begin());
  }
}

}  // namespace desis
