#include "core/root_assembler.h"

#include <algorithm>
#include <cassert>

#include "core/spec_layout.h"
#include "obs/flight_recorder.h"

namespace desis {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

RootAssembler::RootAssembler(QueryGroup group, EngineStats* stats,
                             WindowSink sink)
    : group_(std::move(group)), stats_(stats), sink_(std::move(sink)) {
  // The canonical spec layout (core/spec_layout.h) keeps EpInfo::spec_idx
  // values and factor-plan edges consistent between local slicers, the
  // planner, and this assembler.
  for (SpecLayoutEntry& entry : DeriveSpecLayout(group_)) {
    const auto si = static_cast<uint32_t>(specs_.size());
    SpecState st;
    st.spec = entry.spec;
    st.lane_filter = entry.lane_filter;
    st.query_idxs = std::move(entry.query_idxs);
    specs_.push_back(std::move(st));
    if (entry.spec.type == WindowType::kSession) {
      session_specs_.push_back(si);
    } else if (entry.spec.type == WindowType::kUserDefined) {
      ud_specs_.push_back(si);
    }
  }
  spec_is_feeder_.assign(specs_.size(), false);
  if (group_.plan.optimized) {
    for (uint32_t si = 0; si < specs_.size(); ++si) {
      const int32_t f = group_.plan.FeederOf(si);
      if (f >= 0 && static_cast<size_t>(f) < specs_.size()) {
        spec_is_feeder_[static_cast<size_t>(f)] = true;
      }
    }
  }
  for (uint32_t si = 0; si < specs_.size(); ++si) fixed_order_.push_back(si);
  std::stable_sort(fixed_order_.begin(), fixed_order_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return group_.plan.DepthOf(a) < group_.plan.DepthOf(b);
                   });
  active_from_.assign(group_.queries.size(), kNoTimestamp);
}

void RootAssembler::ApplyQueryAdd(const Query& q, uint32_t lane,
                                  const SelectionLane& lane_def,
                                  Timestamp active_from) {
  const OperatorMask q_ops = OperatorsFor(q.agg.fn);
  const bool new_lane = lane >= group_.lanes.size();
  if (new_lane) group_.lanes.push_back(lane_def);
  // Plain union once entries exist (see StreamSlicer::ApplyQueryAdd).
  const bool cold = !initialized_;
  auto widen = [&](OperatorMask m) {
    const auto u = static_cast<OperatorMask>(m | q_ops);
    return cold ? ReduceMask(u) : u;
  };
  group_.mask = widen(group_.mask);
  if (group_.plan.optimized) {
    auto& lm = group_.plan.lane_masks;
    if (lm.size() < group_.lanes.size()) lm.resize(group_.lanes.size(), 0);
    if (new_lane) {
      lm.back() = ReduceMask(q_ops);
    } else if (lm[lane] != 0) {
      lm[lane] = widen(lm[lane]);
    }
  }

  // Never emit a window that was already (even partially) closed or whose
  // entries were garbage collected before this query arrived.
  if (last_advanced_ != kNoTimestamp) {
    active_from = active_from == kNoTimestamp
                      ? last_advanced_
                      : std::max(active_from, last_advanced_);
  }
  const auto qi = static_cast<uint32_t>(group_.queries.size());
  group_.queries.push_back({q, lane});
  active_from_.resize(group_.queries.size(), kNoTimestamp);
  active_from_.back() = active_from;

  const int lane_filter =
      SpecLaneScoped(q.window) ? static_cast<int>(lane) : -1;
  uint32_t si = 0;
  for (; si < specs_.size(); ++si) {
    if (specs_[si].spec == q.window && specs_[si].lane_filter == lane_filter) {
      break;
    }
  }
  if (si == specs_.size()) {
    SpecState st;
    st.spec = q.window;
    st.lane_filter = lane_filter;
    specs_.push_back(std::move(st));
    spec_is_feeder_.push_back(false);
    fixed_order_.push_back(si);  // runtime specs join the DAG unfactored
    if (q.window.type == WindowType::kSession) {
      session_specs_.push_back(si);
    } else if (q.window.type == WindowType::kUserDefined) {
      ud_specs_.push_back(si);
    } else if (q.window.measure == WindowMeasure::kTime &&
               q.window.IsFixedSize() && initialized_) {
      const int64_t l = q.window.length;
      const int64_t s = q.window.slide;
      const Timestamp base =
          last_advanced_ == kNoTimestamp ? first_start_ : last_advanced_;
      specs_[si].next_ep = (FloorDiv(base - l, s) + 1) * s + l;
    }
  }
  specs_[si].query_idxs.push_back(qi);
}

bool RootAssembler::SuppressQuery(QueryId id) {
  for (const GroupedQuery& gq : group_.queries) {
    if (gq.query.id == id && !suppressed_.contains(id)) {
      suppressed_.insert(id);
      return true;
    }
  }
  return false;
}

void RootAssembler::InitializeSchedules(Timestamp first_start) {
  first_start_ = first_start;
  for (SpecState& st : specs_) {
    if (st.spec.measure == WindowMeasure::kTime && st.spec.IsFixedSize()) {
      const int64_t l = st.spec.length;
      const int64_t s = st.spec.slide;
      st.next_ep = (FloorDiv(first_start - l, s) + 1) * s + l;
    }
  }
  initialized_ = true;
}

void RootAssembler::AddPartial(const SliceRecord& msg) {
  if (!initialized_) {
    InitializeSchedules(msg.start);
  } else if (!any_closed_ && msg.start < first_start_) {
    // A child joined with an earlier stream prefix before any window
    // closed: rewind the schedules.
    InitializeSchedules(msg.start);
  }

  // Senders pin their advertised watermark to the earliest slice they still
  // hold (ShardedEngine::AdvanceTo, DesisIntermediateNode::FlushUpTo), so a
  // partial can never arrive at or behind the session scan's cursor — the
  // scan consumes each entry exactly once, and activity merged in behind it
  // would silently vanish from session tracking.
#ifndef NDEBUG
  if (!(session_specs_.empty() || session_cursor_.first == kNoTimestamp ||
        EntryKey{msg.start, msg.end} > session_cursor_)) {
    // Flush every flight recorder before the abort: the rings hold the
    // control-plane events that led here (docs/FAULT_TOLERANCE.md).
    obs::NotifyFlightFailure("root_assembler_session_cursor");
  }
#endif
  assert((session_specs_.empty() || session_cursor_.first == kNoTimestamp ||
          EntryKey{msg.start, msg.end} > session_cursor_));
  auto [it, inserted] = entries_.try_emplace(EntryKey{msg.start, msg.end});
  Entry& entry = it->second;
  if (inserted) {
    entry.start = msg.start;
    entry.end = msg.end;
    entry.last_event_ts = msg.last_event_ts;
    entry.lanes = msg.lanes;
    entry.lane_events = msg.lane_events;
    entry.lane_last_ts = msg.lane_last_ts;
    entry.reports = 1;
    ++stats_->slices_created;  // a new root slice
  } else {
    // Lane counts may disagree transiently while a runtime query add rolls
    // through the cluster (a local that already grew ships wider slices
    // than one that hasn't); merge the shared prefix and adopt any lanes
    // this entry hasn't seen yet.
    const size_t shared = std::min(entry.lanes.size(), msg.lanes.size());
    for (size_t i = 0; i < shared; ++i) {
      if (msg.lane_events[i] == 0) continue;
      PartialAggregate::MergeCompatible(entry.lanes[i], msg.lanes[i]);
      entry.lane_events[i] += msg.lane_events[i];
      entry.lane_last_ts[i] = std::max(entry.lane_last_ts[i], msg.lane_last_ts[i]);
      ++stats_->merges;
    }
    for (size_t i = entry.lanes.size(); i < msg.lanes.size(); ++i) {
      entry.lanes.push_back(msg.lanes[i]);
      entry.lane_events.push_back(msg.lane_events[i]);
      entry.lane_last_ts.push_back(msg.lane_last_ts[i]);
    }
    entry.last_event_ts = std::max(entry.last_event_ts, msg.last_event_ts);
    ++entry.reports;
  }

  // User-defined end punctuations: children that saw the delimiting marker
  // ship an ep; deduplicate by window end (markers are stream-global).
  for (const EpInfo& ep : msg.eps) {
    if (ep.spec_idx >= specs_.size()) continue;
    SpecState& st = specs_[ep.spec_idx];
    if (st.spec.type != WindowType::kUserDefined) continue;
    bool known = false;
    for (const EpInfo& pending : st.pending_eps) {
      if (pending.window_end == ep.window_end) {
        known = true;
        break;
      }
    }
    if (!known) {
      st.pending_eps.push_back(ep);
      // Keep eps ordered by window end.
      std::sort(st.pending_eps.begin(), st.pending_eps.end(),
                [](const EpInfo& a, const EpInfo& b) {
                  return a.window_end < b.window_end;
                });
    }
  }
}

void RootAssembler::AssembleWindow(uint32_t spec_idx, Timestamp ws,
                                   Timestamp we) {
  any_closed_ = true;
  const SpecState& st = specs_[spec_idx];

  // Factor-window execution mirrors StreamSlicer::CloseWindow: feeder
  // windows keep their merged per-lane states (under the lane masks) and
  // dependents merge one composite per covered feeder range, falling back
  // to the entry scan for uncovered ranges.
  const bool is_feeder =
      spec_idx < spec_is_feeder_.size() && spec_is_feeder_[spec_idx];
  const FactorComposite* own_composite = nullptr;
  if (is_feeder) {
    FactorComposite composite;
    composite.lanes.reserve(group_.lanes.size());
    composite.lane_events.assign(group_.lanes.size(), 0);
    for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
      PartialAggregate acc(LaneMask(lane));
      acc.Seal();
      for (auto it = entries_.lower_bound(EntryKey{ws, kNoTimestamp});
           it != entries_.end() && it->second.start < we; ++it) {
        const Entry& entry = it->second;
        if (entry.end > we || lane >= entry.lane_events.size() ||
            entry.lane_events[lane] == 0) {
          continue;
        }
        PartialAggregate::MergeCompatible(acc, entry.lanes[lane]);
        composite.lane_events[lane] += entry.lane_events[lane];
        ++stats_->merges;
      }
      composite.lanes.push_back(std::move(acc));
    }
    own_composite = &(composites_[{ws, we}] = std::move(composite));
  }
  const int32_t feeder =
      group_.plan.optimized ? group_.plan.FeederOf(spec_idx) : -1;
  const Timestamp feeder_len =
      feeder >= 0 && static_cast<size_t>(feeder) < specs_.size()
          ? specs_[static_cast<size_t>(feeder)].spec.length
          : 0;

  for (uint32_t lane = 0; lane < group_.lanes.size(); ++lane) {
    OperatorMask needed = 0;
    for (uint32_t qi : st.query_idxs) {
      if (group_.queries[qi].lane == lane &&
          !suppressed_.contains(group_.queries[qi].query.id) &&
          ActiveFor(qi, ws)) {
        needed |= OperatorsFor(group_.queries[qi].query.agg.fn);
      }
    }
    if (needed == 0) continue;
    needed = ResolveNeeded(needed, LaneMask(lane));

    PartialAggregate acc(needed);
    acc.Seal();
    uint64_t events = 0;
    auto merge_entries_in = [&](Timestamp lo, Timestamp hi) {
      for (auto it = entries_.lower_bound(EntryKey{lo, kNoTimestamp});
           it != entries_.end() && it->second.start < hi; ++it) {
        const Entry& entry = it->second;
        if (entry.end > hi || lane >= entry.lane_events.size() ||
            entry.lane_events[lane] == 0) {
          continue;
        }
        PartialAggregate::MergeCompatible(acc, entry.lanes[lane]);
        events += entry.lane_events[lane];
        ++stats_->merges;
      }
    };
    if (own_composite != nullptr) {
      if (own_composite->lane_events[lane] != 0) {
        acc.Merge(own_composite->lanes[lane]);
        events = own_composite->lane_events[lane];
        ++stats_->merges;
      }
    } else if (feeder_len > 0) {
      for (Timestamp sub = ws; sub < we; sub += feeder_len) {
        const Timestamp sub_end = std::min(sub + feeder_len, we);
        auto cit = composites_.find({sub, sub_end});
        if (cit != composites_.end()) {
          const FactorComposite& c = cit->second;
          if (lane < c.lanes.size() && c.lane_events[lane] != 0) {
            PartialAggregate::MergeCompatible(acc, c.lanes[lane]);
            events += c.lane_events[lane];
            ++stats_->merges;
          }
        } else {
          merge_entries_in(sub, sub_end);
        }
      }
    } else {
      merge_entries_in(ws, we);
    }
    if (events == 0) continue;

    for (uint32_t qi : st.query_idxs) {
      const GroupedQuery& gq = group_.queries[qi];
      if (gq.lane != lane || suppressed_.contains(gq.query.id) ||
          !ActiveFor(qi, ws)) {
        continue;
      }
      if (sink_) {
        sink_({gq.query.id, ws, we, acc.Finalize(gq.query.agg), events});
      }
      ++stats_->windows_fired;
    }
  }
}

void RootAssembler::ScanSessionsUpTo(Timestamp watermark) {
  if (session_specs_.empty()) return;
  // Consume completed entries in global time order; an entry with events
  // either extends the running session or — if it starts after the gap
  // deadline — closes it and opens the next (§5.1.2).
  auto it = session_cursor_.first == kNoTimestamp
                ? entries_.begin()
                : entries_.upper_bound(session_cursor_);
  for (; it != entries_.end() && it->second.end <= watermark; ++it) {
    const Entry& entry = it->second;
    session_cursor_ = it->first;
    for (uint32_t si : session_specs_) {
      SpecState& st = specs_[si];
      const size_t lane = static_cast<size_t>(st.lane_filter);
      if (entry.lane_events[lane] == 0) continue;
      const Timestamp lane_last = entry.lane_last_ts[lane];
      if (!st.active) {
        st.active = true;
        st.session_start = entry.start;
        st.global_last = lane_last;
      } else if (entry.start >= st.global_last + st.spec.gap) {
        AssembleWindow(si, st.session_start, st.global_last + st.spec.gap);
        st.session_start = entry.start;
        st.global_last = lane_last;
      } else {
        st.global_last = std::max(st.global_last, lane_last);
      }
    }
  }
  // Unconsumed entries (end beyond the watermark) may still carry events
  // before the watermark — the earliest such start bounds how far the
  // trailing gap check may reach, or a cross-child session would be cut
  // while one child's long slice is still in flight (§5.1.2).
  const Timestamp unconsumed_start =
      it != entries_.end() ? it->second.start : kMaxTimestamp;
  const Timestamp close_limit = std::min(watermark, unconsumed_start);
  for (uint32_t si : session_specs_) {
    SpecState& st = specs_[si];
    if (st.active && st.global_last + st.spec.gap <= close_limit) {
      AssembleWindow(si, st.session_start, st.global_last + st.spec.gap);
      st.active = false;
      st.session_start = kNoTimestamp;
      st.global_last = kNoTimestamp;
    }
  }
}

void RootAssembler::AdvanceTo(Timestamp watermark) {
  if (!initialized_ || watermark == kNoTimestamp) return;
  last_advanced_ = std::max(last_advanced_, watermark);

  // Depth order: factor feeders assemble (and record their composites)
  // before dependents consume them; plain index order when no plan.
  for (uint32_t si : fixed_order_) {
    SpecState& st = specs_[si];
    if (st.spec.measure != WindowMeasure::kTime || !st.spec.IsFixedSize()) {
      continue;
    }
    while (st.next_ep <= watermark) {
      AssembleWindow(si, st.next_ep - st.spec.length, st.next_ep);
      st.next_ep += st.spec.slide;
    }
  }

  ScanSessionsUpTo(watermark);

  for (uint32_t si : ud_specs_) {
    SpecState& st = specs_[si];
    while (!st.pending_eps.empty() &&
           st.pending_eps.front().window_end <= watermark) {
      const EpInfo ep = st.pending_eps.front();
      st.pending_eps.pop_front();
      AssembleWindow(si, ep.window_start, ep.window_end);
      st.last_closed_end = ep.window_end;
    }
  }

  CollectGarbage(watermark);
}

void RootAssembler::CollectGarbage(Timestamp watermark) {
  Timestamp keep_from = watermark;
  for (const SpecState& st : specs_) {
    if (st.spec.measure == WindowMeasure::kTime && st.spec.IsFixedSize()) {
      keep_from = std::min(keep_from, st.next_ep - st.spec.length);
    } else if (st.spec.type == WindowType::kSession) {
      if (st.active) keep_from = std::min(keep_from, st.session_start);
    } else if (st.spec.type == WindowType::kUserDefined) {
      // The root only learns a user-defined window's start from its ep, so
      // keep everything after the last closed window.
      keep_from = std::min(keep_from, st.last_closed_end == kNoTimestamp
                                          ? first_start_
                                          : st.last_closed_end);
      if (!st.pending_eps.empty()) {
        keep_from = std::min(keep_from, st.pending_eps.front().window_start);
      }
    }
  }
  while (!entries_.empty()) {
    const auto& [key, entry] = *entries_.begin();
    if (entry.end > keep_from) break;
    // Entries not yet consumed by the session scan must survive.
    if (!session_specs_.empty() &&
        (session_cursor_.first == kNoTimestamp || key > session_cursor_)) {
      break;
    }
    entries_.erase(entries_.begin());
  }
  if (!composites_.empty()) {
    Timestamp comp_keep = kMaxTimestamp;
    bool any_dependent = false;
    for (uint32_t si = 0; si < specs_.size(); ++si) {
      if (!group_.plan.optimized || group_.plan.FeederOf(si) < 0) continue;
      any_dependent = true;
      const SpecState& st = specs_[si];
      if (st.next_ep != kNoTimestamp) {
        comp_keep = std::min(comp_keep, st.next_ep - st.spec.length);
      }
    }
    if (!any_dependent) {
      composites_.clear();
    } else {
      while (!composites_.empty() &&
             composites_.begin()->first.second <= comp_keep) {
        composites_.erase(composites_.begin());
      }
    }
  }
}

}  // namespace desis
