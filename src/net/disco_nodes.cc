#include "net/disco_nodes.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace desis {
namespace disco {

std::string EncodePartialLine(QueryId qid, Timestamp ws, Timestamp we,
                              uint64_t events, const PartialAggregate& agg) {
  char buf[320];
  int n = std::snprintf(buf, sizeof(buf),
                        "P|%" PRIu64 "|%" PRId64 "|%" PRId64 "|%" PRIu64
                        "|%u|%.17g|%" PRIu64 "|%.17g|%.17g|%.17g\n",
                        qid, ws, we, events, agg.mask(), agg.sum_state().sum,
                        agg.count_state().count, agg.multiply_state().product,
                        agg.minmax_state().min, agg.minmax_state().max);
  return std::string(buf, static_cast<size_t>(n));
}

std::string EncodeEventLine(const Event& e) {
  char buf[96];
  int n = std::snprintf(buf, sizeof(buf), "E|%" PRId64 "|%u|%.17g|%u\n", e.ts,
                        e.key, e.value, e.marker);
  return std::string(buf, static_cast<size_t>(n));
}

std::string EncodeWatermarkLine(Timestamp wm) {
  char buf[48];
  int n = std::snprintf(buf, sizeof(buf), "W|%" PRId64 "\n", wm);
  return std::string(buf, static_cast<size_t>(n));
}

void ParsePayload(const std::vector<uint8_t>& payload,
                  std::vector<ParsedPartial>* partials,
                  std::vector<Event>* events, Timestamp* watermark) {
  const char* p = reinterpret_cast<const char*>(payload.data());
  const char* end = p + payload.size();
  while (p < end) {
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(end - p)));
    if (nl == nullptr) nl = end;
    if (p[0] == 'P' && partials != nullptr) {
      ParsedPartial part;
      char* cursor = nullptr;
      part.qid = std::strtoull(p + 2, &cursor, 10);
      part.ws = std::strtoll(cursor + 1, &cursor, 10);
      part.we = std::strtoll(cursor + 1, &cursor, 10);
      part.events = std::strtoull(cursor + 1, &cursor, 10);
      const OperatorMask mask =
          static_cast<OperatorMask>(std::strtoul(cursor + 1, &cursor, 10));
      const double sum = std::strtod(cursor + 1, &cursor);
      const uint64_t count = std::strtoull(cursor + 1, &cursor, 10);
      const double product = std::strtod(cursor + 1, &cursor);
      const double min = std::strtod(cursor + 1, &cursor);
      const double max = std::strtod(cursor + 1, &cursor);
      // Rebuild the partial through the binary codec (states are PODs).
      ByteWriter out;
      out.WriteU8(mask);
      if (MaskHas(mask, OperatorKind::kSum)) out.WriteDouble(sum);
      if (MaskHas(mask, OperatorKind::kCount)) out.WriteU64(count);
      if (MaskHas(mask, OperatorKind::kMultiply)) out.WriteDouble(product);
      if (MaskHas(mask, OperatorKind::kDecomposableSort)) {
        out.WriteDouble(min);
        out.WriteDouble(max);
      }
      ByteReader in(out.bytes());
      part.agg = PartialAggregate::DeserializeFrom(in);
      partials->push_back(std::move(part));
    } else if (p[0] == 'E' && events != nullptr) {
      Event e;
      char* cursor = nullptr;
      e.ts = std::strtoll(p + 2, &cursor, 10);
      e.key = static_cast<uint32_t>(std::strtoul(cursor + 1, &cursor, 10));
      e.value = std::strtod(cursor + 1, &cursor);
      e.marker = static_cast<uint32_t>(std::strtoul(cursor + 1, &cursor, 10));
      events->push_back(e);
    } else if (p[0] == 'W' && watermark != nullptr) {
      char* cursor = nullptr;
      const Timestamp wm = static_cast<Timestamp>(std::strtoll(p + 2, &cursor, 10));
      *watermark = std::max(*watermark, wm);
    }
    p = nl + 1;
  }
}

}  // namespace disco

namespace {

bool IsPushdownQuery(const Query& q) {
  return IsDecomposable(q.agg.fn) && q.window.measure == WindowMeasure::kTime;
}

}  // namespace

// ---------------------------------------------------------------- local --

DiscoLocalNode::DiscoLocalNode(uint32_t id, const std::vector<Query>& queries,
                               size_t batch_size)
    : Node(id, NodeRole::kLocal), batch_size_(batch_size) {
  std::vector<Query> pushdown;
  for (const Query& q : queries) {
    if (IsPushdownQuery(q)) {
      pushdown.push_back(q);
    } else {
      forward_queries_.push_back(q);
    }
  }
  // Scotty on the edge: sharing only within the same aggregation function,
  // per-event window-end checks.
  QueryAnalyzer analyzer(DeploymentMode::kCentralized,
                         SharingPolicy::kPerFunction);
  auto groups = analyzer.Analyze(pushdown);
  if (!groups.ok()) return;  // validated upstream by the cluster
  for (QueryGroup& group : groups.value()) {
    SlicerOptions options;
    options.punctuation = PunctuationStrategy::kPerEventScan;
    auto slicer = std::make_unique<StreamSlicer>(std::move(group), options,
                                                 &stats_);
    slicer->set_window_partial_sink(
        [this](QueryId qid, Timestamp ws, Timestamp we,
               const PartialAggregate& agg, uint64_t events) {
          pending_text_ += disco::EncodePartialLine(qid, ws, we, events, agg);
          if (++pending_lines_ >= batch_size_) FlushText();
        });
    slicers_.push_back(std::move(slicer));
  }
}

void DiscoLocalNode::IngestOne(const Event& event) {
  ++stats_.events;
  for (auto& slicer : slicers_) slicer->Ingest(event);
  if (!forward_queries_.empty()) {
    bool wanted = false;
    for (const Query& q : forward_queries_) {
      ++stats_.selection_evals;
      if (q.predicate.Matches(event)) {
        wanted = true;
        break;
      }
    }
    if (wanted) {
      pending_text_ += disco::EncodeEventLine(event);
      if (++pending_lines_ >= batch_size_) FlushText();
    }
  }
}

void DiscoLocalNode::IngestBatch(const Event* events, size_t count) {
  Metered([&] {
    for (size_t i = 0; i < count; ++i) IngestOne(events[i]);
  });
}

void DiscoLocalNode::FlushText() {
  if (pending_text_.empty()) return;
  std::vector<uint8_t> payload(pending_text_.begin(), pending_text_.end());
  SendToParent({MessageType::kText, 0, std::move(payload)});
  pending_text_.clear();
  pending_lines_ = 0;
}

void DiscoLocalNode::Advance(Timestamp watermark) {
  Metered([&] {
    for (auto& slicer : slicers_) slicer->AdvanceTo(watermark);
    pending_text_ += disco::EncodeWatermarkLine(watermark);
    FlushText();
  });
}

void DiscoLocalNode::HandleMessage(const Message& /*message*/,
                                   int /*child_index*/) {}

// --------------------------------------------------------- intermediate --

Timestamp DiscoIntermediateNode::MinChildWatermark() const {
  if (child_wms_.size() < num_children()) return kNoTimestamp;
  Timestamp min_wm = kMaxTimestamp;
  for (Timestamp wm : child_wms_) {
    if (wm == kNoTimestamp) return kNoTimestamp;
    min_wm = std::min(min_wm, wm);
  }
  return min_wm;
}

void DiscoIntermediateNode::SendText(std::string text) {
  if (text.empty()) return;
  std::vector<uint8_t> payload(text.begin(), text.end());
  SendToParent({MessageType::kText, 0, std::move(payload)});
}

void DiscoIntermediateNode::FlushUpTo(Timestamp watermark) {
  if (watermark == kNoTimestamp || watermark <= sent_wm_) return;
  std::string out;
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (std::get<2>(it->first) <= watermark) {
      const disco::ParsedPartial& part = it->second.first;
      out += disco::EncodePartialLine(part.qid, part.ws, part.we, part.events,
                                      part.agg);
      it = partials_.erase(it);
    } else {
      ++it;
    }
  }
  sent_wm_ = watermark;
  out += disco::EncodeWatermarkLine(watermark);
  SendText(std::move(out));
}

void DiscoIntermediateNode::HandleMessage(const Message& message,
                                          int child_index) {
  if (message.type != MessageType::kText) return;
  std::vector<disco::ParsedPartial> parts;
  std::vector<Event> events;
  Timestamp wm = kNoTimestamp;
  disco::ParsePayload(message.payload, &parts, &events, &wm);

  std::string out;
  for (disco::ParsedPartial& part : parts) {
    auto key = std::make_tuple(part.qid, part.ws, part.we);
    auto it = partials_.find(key);
    if (it == partials_.end()) {
      it = partials_.emplace(key, std::make_pair(std::move(part), 1)).first;
      ++stats_.slices_created;
    } else {
      disco::ParsedPartial& have = it->second.first;
      have.agg.Merge(part.agg);
      have.events += part.events;
      ++it->second.second;
      ++stats_.merges;
    }
    if (it->second.second == static_cast<int>(num_children())) {
      const disco::ParsedPartial& done = it->second.first;
      out += disco::EncodePartialLine(done.qid, done.ws, done.we, done.events,
                                      done.agg);
      partials_.erase(it);
    }
  }
  // Raw events pass through unchanged (still strings).
  for (const Event& e : events) out += disco::EncodeEventLine(e);
  SendText(std::move(out));

  if (wm != kNoTimestamp) {
    if (child_wms_.size() < num_children()) {
      child_wms_.resize(num_children(), kNoTimestamp);
    }
    child_wms_[static_cast<size_t>(child_index)] =
        std::max(child_wms_[static_cast<size_t>(child_index)], wm);
    FlushUpTo(MinChildWatermark());
  }
}

// ----------------------------------------------------------------- root --

DiscoRootNode::DiscoRootNode(uint32_t id, const std::vector<Query>& queries)
    : Node(id, NodeRole::kRoot) {
  std::vector<Query> root_queries;
  for (const Query& q : queries) {
    if (IsPushdownQuery(q)) {
      pushdown_specs_[q.id] = q.agg;
    } else {
      root_queries.push_back(q);
    }
  }
  QueryAnalyzer analyzer(DeploymentMode::kCentralized,
                         SharingPolicy::kPerFunction);
  auto groups = analyzer.Analyze(root_queries);
  if (groups.ok()) {
    for (QueryGroup& group : groups.value()) {
      SlicerOptions options;
      options.punctuation = PunctuationStrategy::kPerEventScan;
      auto slicer = std::make_unique<StreamSlicer>(std::move(group), options,
                                                   &stats_);
      slicer->set_window_sink(
          [this](const WindowResult& r) { EmitResult(r); });
      root_slicers_.push_back(std::move(slicer));
    }
  }
}

void DiscoRootNode::EmitResult(const WindowResult& result) {
  ++results_;
  if (sink_) sink_(result);
}

Timestamp DiscoRootNode::MinChildWatermark() const {
  if (child_wms_.size() < num_children()) return kNoTimestamp;
  Timestamp min_wm = kMaxTimestamp;
  for (Timestamp wm : child_wms_) {
    if (wm == kNoTimestamp) return kNoTimestamp;
    min_wm = std::min(min_wm, wm);
  }
  return min_wm;
}

void DiscoRootNode::AdvanceAll(Timestamp watermark) {
  if (watermark == kNoTimestamp || watermark <= advanced_wm_) return;
  advanced_wm_ = watermark;
  // Finalize pushed-down windows whose end passed the global watermark.
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (std::get<2>(it->first) <= watermark) {
      const disco::ParsedPartial& part = it->second.first;
      auto spec = pushdown_specs_.find(part.qid);
      if (spec != pushdown_specs_.end() && part.events > 0) {
        EmitResult({part.qid, part.ws, part.we,
                    part.agg.Finalize(spec->second), part.events});
        ++stats_.windows_fired;
      }
      it = partials_.erase(it);
    } else {
      ++it;
    }
  }
  // Feed reordered raw events into the root-evaluated queries.
  std::sort(pending_events_.begin(), pending_events_.end(),
            [](const Event& a, const Event& b) { return a.ts < b.ts; });
  size_t released = 0;
  for (const Event& e : pending_events_) {
    if (e.ts > watermark) break;
    ++stats_.events;
    for (auto& slicer : root_slicers_) slicer->Ingest(e);
    ++released;
  }
  pending_events_.erase(pending_events_.begin(),
                        pending_events_.begin() +
                            static_cast<int64_t>(released));
  for (auto& slicer : root_slicers_) slicer->AdvanceTo(watermark);
}

void DiscoRootNode::HandleMessage(const Message& message, int child_index) {
  if (message.type != MessageType::kText) return;
  std::vector<disco::ParsedPartial> parts;
  std::vector<Event> events;
  Timestamp wm = kNoTimestamp;
  disco::ParsePayload(message.payload, &parts, &events, &wm);

  for (disco::ParsedPartial& part : parts) {
    auto key = std::make_tuple(part.qid, part.ws, part.we);
    auto it = partials_.find(key);
    if (it == partials_.end()) {
      partials_.emplace(key, std::make_pair(std::move(part), 1));
      ++stats_.slices_created;
    } else {
      it->second.first.agg.Merge(part.agg);
      it->second.first.events += part.events;
      ++it->second.second;
      ++stats_.merges;
    }
  }
  pending_events_.insert(pending_events_.end(), events.begin(), events.end());

  if (wm != kNoTimestamp) {
    if (child_wms_.size() < num_children()) {
      child_wms_.resize(num_children(), kNoTimestamp);
    }
    child_wms_[static_cast<size_t>(child_index)] =
        std::max(child_wms_[static_cast<size_t>(child_index)], wm);
    AdvanceAll(MinChildWatermark());
  }
}

}  // namespace desis
