#ifndef DESIS_NET_CHAOS_H_
#define DESIS_NET_CHAOS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"
#include "net/cluster.h"

namespace desis {

/// One fault-injection step of a chaos schedule (docs/FAULT_TOLERANCE.md).
/// Actions fire in virtual stream time: an action with `at_watermark` W
/// fires during the ingest round whose advance reaches W — mid-round, after
/// half the locals have ingested, so the struck subtree holds genuinely
/// in-flight (partially merged, unacked) data. Identical schedules replay
/// identically regardless of wall-clock speed.
struct ChaosAction {
  enum class Kind : uint8_t {
    /// Cluster-coordinated crash: Cluster::CrashIntermediate(index).
    kCrashIntermediate,
    /// Transport-only failure: Cluster::InjectIntermediateFailure(index).
    /// The cluster finds out via a later kSweepRecover.
    kSilentKillIntermediate,
    /// Cluster::RecoverSilentIntermediates with a two-round grace window.
    kSweepRecover,
    /// Cluster::DeclareLocalDead(index) — uplink dark, ingest continues.
    kDeclareLocalDead,
    /// Cluster::ReattachLocal(index) — re-elect, replay, re-advertise.
    kReattachLocal,
    /// Cluster::PartitionLocalUplink(index, down=true). Transient loss the
    /// link-level retransmission absorbs without any app-level recovery.
    kPartitionLocal,
    /// Cluster::PartitionLocalUplink(index, down=false).
    kHealLocal,
  };

  Kind kind = Kind::kCrashIntermediate;
  Timestamp at_watermark = 0;
  int index = 0;  // intermediate or local index; unused for kSweepRecover
};

/// A deterministic fault plan: actions sorted by `at_watermark` (Run sorts
/// defensively). The empty schedule is the undisturbed baseline.
struct ChaosSchedule {
  std::vector<ChaosAction> actions;
};

/// Deterministic synthetic workload shape shared by the disturbed and the
/// baseline run: per-local event streams derive only from (seed, local,
/// round), never from the fault plan, so two runs over the same config see
/// byte-identical input.
struct ChaosStreamConfig {
  Timestamp start = 0;
  Timestamp end = 20'000;
  /// Watermark round cadence: each round ingests [wm - period, wm) on every
  /// local and then advances every local to wm.
  Timestamp advance_period = 500;
  int events_per_local_per_round = 32;
  uint32_t num_keys = 8;
  /// Values are drawn as small integers: exactly representable in a double,
  /// so replay-induced merge reordering cannot perturb sums and final
  /// windows compare byte-identical (same caveat as the threaded engine).
  int64_t max_value = 100;
  /// How far the advertised watermark trails the newest ingested event.
  /// With a lag of two rounds, sealed slices stay unacked (in the resend
  /// buffers, and partially merged at intermediates) for two rounds — the
  /// in-flight data a mid-round crash actually destroys. A zero-lag stream
  /// quiesces at every round boundary and faults would find nothing to
  /// replay.
  Timestamp watermark_lag = 1'000;
  uint64_t seed = 7;
  /// Watermark of the final flush advance; kNoTimestamp derives end +
  /// 4 * advance_period (raise it past the largest window size in play).
  Timestamp final_watermark = kNoTimestamp;
  /// Real-time pause after each ingest round (ms). 0 keeps the seed
  /// behaviour (no clocks read). Watchdog runs set this to a few sampler
  /// periods so the background health monitor — which samples in real
  /// time — can observe a silent fault between virtual-time rounds.
  int round_sleep_ms = 0;
};

/// Collects emitted windows and canonicalizes them for byte-identical
/// comparison between a chaos run and its undisturbed baseline.
class ChaosResultLog {
 public:
  WindowSink Sink() {
    return [this](const WindowResult& r) { results_.push_back(r); };
  }

  const std::vector<WindowResult>& results() const { return results_; }

  /// Emission-order-independent serialization: one line per window, sorted.
  /// Equal strings == identical window sets (zero lost, zero duplicated).
  std::string Canonical() const;

 private:
  std::vector<WindowResult> results_;
};

/// Drives a configured cluster through the deterministic workload, applying
/// a fault schedule in virtual stream time. The cluster must be built on
/// seed-stable transports (inline or SimLinkTransport) for byte-identical
/// assertions; the runner itself never reads clocks or unseeded RNGs.
class ChaosRunner {
 public:
  ChaosRunner(Cluster* cluster, ChaosStreamConfig config)
      : cluster_(cluster), config_(config) {}

  /// Runs the whole stream. Returns the number of ingest rounds executed.
  /// Any schedule actions still pending after the last round (late heals or
  /// reattaches) are applied before the final flush advance, so buffered
  /// data always lands and the zero-lost-windows comparison is meaningful.
  int Run(const ChaosSchedule& schedule);

 private:
  void Apply(const ChaosAction& action, Timestamp wm);

  Cluster* cluster_;
  ChaosStreamConfig config_;
};

/// Seeded schedule generator used by the CI smoke job and fuzz-style tests:
/// one intermediate crash, one local dead/reattach pair, and one transient
/// partition, at seed-chosen rounds and indices within the given topology.
ChaosSchedule MakeSeededSchedule(uint64_t seed, int num_intermediates,
                                 int num_locals,
                                 const ChaosStreamConfig& config);

/// The zero-lost-zero-duplicated check every chaos consumer runs: true iff
/// the disturbed run's canonical window set equals the baseline's. On a
/// mismatch it calls obs::NotifyFlightFailure("chaos_violation") first, so
/// every node's flight recorder dumps (see Cluster::DumpFlightRecorders)
/// while the pre-violation history is still in the rings — then the caller
/// can abort with a postmortem already on disk.
bool ChaosRunsMatch(const std::string& baseline_canonical,
                    const std::string& disturbed_canonical);

}  // namespace desis

#endif  // DESIS_NET_CHAOS_H_
