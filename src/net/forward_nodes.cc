#include "net/forward_nodes.h"

#include <algorithm>

namespace desis {

void ForwardingLocalNode::IngestBatch(const Event* events, size_t count) {
  Metered([&] {
    // Bulk-append in flush-sized chunks instead of pushing one event at a
    // time; the wire batches stay capped at batch_size_.
    size_t i = 0;
    while (i < count) {
      const size_t take = std::min(batch_size_ - pending_.size(), count - i);
      pending_.insert(pending_.end(), events + i, events + i + take);
      i += take;
      if (pending_.size() >= batch_size_) Flush();
    }
    if (count > 0) health_.last_event_ts = events[count - 1].ts;
    health_.backlog = static_cast<int64_t>(pending_.size());
  });
}

void ForwardingLocalNode::Flush() {
  if (pending_.empty()) return;
  SendToParent({MessageType::kEventBatch, 0, EncodeEventBatch(pending_)});
  pending_.clear();
}

void ForwardingLocalNode::Advance(Timestamp watermark) {
  Metered([&] {
    Flush();
    SendToParent({MessageType::kWatermark, 0, EncodeWatermark(watermark)});
    NoteWatermarkAdvance(watermark);
    health_.backlog = 0;
  });
}

void ForwardingLocalNode::HandleMessage(const Message& /*message*/,
                                        int /*child_index*/) {}

void RelayIntermediateNode::HandleMessage(const Message& message,
                                          int child_index) {
  if (message.type == MessageType::kWatermark) {
    if (child_wms_.size() < num_children()) {
      child_wms_.resize(num_children(), kNoTimestamp);
    }
    child_wms_[static_cast<size_t>(child_index)] =
        std::max(child_wms_[static_cast<size_t>(child_index)],
                 DecodeWatermark(message.payload));
    Timestamp min_wm = kMaxTimestamp;
    for (Timestamp wm : child_wms_) {
      if (wm == kNoTimestamp) return;
      min_wm = std::min(min_wm, wm);
    }
    health_.last_event_ts.StoreMax(min_wm);
    NoteWatermarkAdvance(min_wm);
    SendToParent({MessageType::kWatermark, 0, EncodeWatermark(min_wm)});
    return;
  }
  SendToParent(message);
}

Timestamp EngineRootNode::MinChildWatermark() const {
  if (child_wms_.size() < num_children()) return kNoTimestamp;
  Timestamp min_wm = kMaxTimestamp;
  for (Timestamp wm : child_wms_) {
    if (wm == kNoTimestamp) return kNoTimestamp;
    min_wm = std::min(min_wm, wm);
  }
  return min_wm;
}

void EngineRootNode::HandleMessage(const Message& message, int child_index) {
  switch (message.type) {
    case MessageType::kEventBatch: {
      std::vector<Event> events = DecodeEventBatch(message.payload);
      if (!events.empty()) health_.last_event_ts.StoreMax(events.back().ts);
      pending_.insert(pending_.end(), events.begin(), events.end());
      break;
    }
    case MessageType::kWatermark: {
      if (child_wms_.size() < num_children()) {
        child_wms_.resize(num_children(), kNoTimestamp);
      }
      child_wms_[static_cast<size_t>(child_index)] =
          std::max(child_wms_[static_cast<size_t>(child_index)],
                   DecodeWatermark(message.payload));
      const Timestamp wm = MinChildWatermark();
      if (wm == kNoTimestamp || wm <= released_wm_) break;
      released_wm_ = wm;
      std::sort(pending_.begin(), pending_.end(),
                [](const Event& a, const Event& b) { return a.ts < b.ts; });
      size_t released = 0;
      while (released < pending_.size() && pending_[released].ts <= wm) {
        ++released;
      }
      // The sorted prefix is one ordered run: hand it to the engine's
      // batched fast path in a single call.
      engine_->IngestBatch(pending_.data(), released);
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<int64_t>(released));
      engine_->AdvanceTo(wm);
      break;
    }
    default:
      break;
  }
  // The root's reorder buffer doubles as its backlog: raw events held back
  // until every child's watermark passes them.
  health_.backlog = static_cast<int64_t>(pending_.size());
  health_.reorder_depth = static_cast<int64_t>(pending_.size());
  NoteWatermarkAdvance(released_wm_);
}

}  // namespace desis
