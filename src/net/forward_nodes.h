#ifndef DESIS_NET_FORWARD_NODES_H_
#define DESIS_NET_FORWARD_NODES_H_

#include <memory>
#include <vector>

#include "core/engine_iface.h"
#include "net/node.h"

namespace desis {

/// Local node of a *centralized* deployment (Scotty / CeBuffer baselines):
/// collects raw events and forwards them in batches — every event crosses
/// the network (§6.4.1).
class ForwardingLocalNode : public Node, public LocalIngest {
 public:
  explicit ForwardingLocalNode(uint32_t id, size_t batch_size = 512)
      : Node(id, NodeRole::kLocal), batch_size_(batch_size) {}

  void IngestBatch(const Event* events, size_t count) override;
  void Advance(Timestamp watermark) override;

 protected:
  void HandleMessage(const Message& message, int child_index) override;

 private:
  void Flush();

  std::vector<Event> pending_;
  size_t batch_size_;
};

/// Intermediate node of a centralized deployment: transfers data unchanged
/// to its parent (its network overhead equals the local nodes', §6.4.1).
class RelayIntermediateNode : public Node {
 public:
  explicit RelayIntermediateNode(uint32_t id)
      : Node(id, NodeRole::kIntermediate) {}

 protected:
  void HandleMessage(const Message& message, int child_index) override;

 private:
  std::vector<Timestamp> child_wms_;
};

/// Root node of a centralized deployment: runs any single-node engine over
/// the merged event stream (reordered across children up to the watermark).
class EngineRootNode : public Node {
 public:
  EngineRootNode(uint32_t id, std::unique_ptr<StreamEngine> engine)
      : Node(id, NodeRole::kRoot), engine_(std::move(engine)) {}

  StreamEngine& engine() { return *engine_; }

 protected:
  void HandleMessage(const Message& message, int child_index) override;
  /// Forwards the registry to the embedded engine (group cost series for
  /// centralized baselines). The tracer stays detached — the cluster's
  /// result sink records window emission at the root.
  void OnObsAttached() override {
    engine_->set_metrics_registry(obs_registry_);
  }
  /// Forwards the flight recorder so the embedded engine's slicers record
  /// seal/spill events on the root's ring.
  void OnFlightAttached() override {
    engine_->set_flight_recorder(flight_);
  }

 private:
  Timestamp MinChildWatermark() const;

  std::unique_ptr<StreamEngine> engine_;
  std::vector<Event> pending_;
  std::vector<Timestamp> child_wms_;
  Timestamp released_wm_ = kNoTimestamp;
};

}  // namespace desis

#endif  // DESIS_NET_FORWARD_NODES_H_
