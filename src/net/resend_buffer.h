#ifndef DESIS_NET_RESEND_BUFFER_H_
#define DESIS_NET_RESEND_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/event.h"
#include "net/message.h"

namespace desis {

/// Opt-in crash-recovery configuration (docs/FAULT_TOLERANCE.md). When
/// `enabled` is false (the default) no provenance is attached, no acks
/// flow, and wire traffic is byte-identical to a build without recovery.
struct RecoveryOptions {
  bool enabled = false;
  /// Per-uplink resend-buffer cap. When exceeded the oldest entry is
  /// dropped (and counted as an overflow): recovery degrades gracefully to
  /// at-most-once for the evicted prefix rather than stalling ingest.
  size_t resend_buffer_max_bytes = 16u << 20;
};

/// Bounded buffer of data messages sent on one uplink and not yet covered
/// by a cumulative stable-watermark ack. Each entry remembers the event-time
/// upper bound of its data (`end_ts`); an ack at stable watermark W evicts
/// every entry with end_ts <= W — safe because the root has, by the
/// watermark-pinning invariant, already consumed all such data (see
/// docs/FAULT_TOLERANCE.md "Why the stable watermark is a valid ack").
///
/// Mutex-guarded: under ThreadedTransport acks are delivered on the parent's
/// worker thread while the ingest driver appends.
class ResendBuffer {
 public:
  explicit ResendBuffer(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Records a sent data message. Returns the number of old entries dropped
  /// to respect the byte bound (0 in healthy operation).
  size_t Add(Message message, Timestamp end_ts) {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_ += message.WireBytes();
    entries_.push_back(Entry{std::move(message), end_ts});
    size_t dropped = 0;
    while (bytes_ > max_bytes_ && entries_.size() > 1) {
      bytes_ -= entries_.front().message.WireBytes();
      entries_.pop_front();
      ++dropped;
    }
    overflow_drops_ += dropped;
    return dropped;
  }

  /// Evicts every entry whose data ends at or before `stable`. Stale
  /// (non-monotone) acks are ignored.
  void EvictStable(Timestamp stable) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stable <= stable_wm_) return;
    stable_wm_ = stable;
    while (!entries_.empty() && entries_.front().end_ts <= stable) {
      bytes_ -= entries_.front().message.WireBytes();
      entries_.pop_front();
    }
  }

  /// Snapshot of the unacked entries, oldest first, for replay-on-reattach.
  std::vector<Message> UnackedSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Message> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.message);
    return out;
  }

  size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  size_t overflow_drops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return overflow_drops_;
  }
  Timestamp stable_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stable_wm_;
  }

 private:
  struct Entry {
    Message message;
    Timestamp end_ts;
  };

  mutable std::mutex mu_;
  size_t max_bytes_;
  size_t bytes_ = 0;
  size_t overflow_drops_ = 0;
  Timestamp stable_wm_ = kNoTimestamp;
  std::deque<Entry> entries_;
};

}  // namespace desis

#endif  // DESIS_NET_RESEND_BUFFER_H_
