#include "net/message.h"

namespace desis {

namespace {
// Frames carrying provenance set the high bit of the type byte; legacy
// frames (and all frames when recovery is off) stay byte-identical.
constexpr uint8_t kProvenanceFlag = 0x80;
}  // namespace

std::vector<uint8_t> EncodeFrame(const Message& message) {
  ByteWriter out;
  uint8_t type = static_cast<uint8_t>(message.type);
  if (!message.origins.empty()) type |= kProvenanceFlag;
  out.WriteU8(type);
  out.WriteU32(message.group_id);
  out.WritePodVector(message.payload);  // 4B length prefix + payload
  if (!message.origins.empty()) {
    out.WriteU16(static_cast<uint16_t>(message.origins.size()));
    for (const ProvenanceEntry& p : message.origins) {
      out.WriteU32(p.origin);
      out.WriteU64(p.unit);
    }
  }
  return out.TakeBytes();
}

Message DecodeFrame(const std::vector<uint8_t>& frame) {
  ByteReader in(frame);
  Message message;
  const uint8_t type = in.ReadU8();
  message.type = static_cast<MessageType>(type & ~kProvenanceFlag);
  message.group_id = in.ReadU32();
  message.payload = in.ReadPodVector<uint8_t>();
  if (type & kProvenanceFlag) {
    const uint16_t n = in.ReadU16();
    message.origins.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      ProvenanceEntry p;
      p.origin = in.ReadU32();
      p.unit = in.ReadU64();
      message.origins.push_back(p);
    }
  }
  return message;
}

SlicePartialMsg SlicePartialMsg::FromRecord(const SliceRecord& rec,
                                            Timestamp watermark) {
  SlicePartialMsg msg;
  msg.slice_id = rec.id;
  msg.start = rec.start;
  msg.end = rec.end;
  msg.last_event_ts = rec.last_event_ts;
  msg.watermark = watermark;
  msg.lanes = rec.lanes;
  msg.lane_events = rec.lane_events;
  msg.lane_last_ts = rec.lane_last_ts;
  msg.eps = rec.eps;
  return msg;
}

void SlicePartialMsg::SerializeTo(ByteWriter& out) const {
  out.WriteU64(slice_id);
  out.WriteI64(start);
  out.WriteI64(end);
  out.WriteI64(last_event_ts);
  out.WriteI64(watermark);
  out.WriteU32(static_cast<uint32_t>(lanes.size()));
  for (size_t i = 0; i < lanes.size(); ++i) {
    out.WriteU64(lane_events[i]);
    out.WriteI64(lane_last_ts[i]);
    lanes[i].SerializeTo(out);
  }
  out.WriteU32(static_cast<uint32_t>(eps.size()));
  for (const EpInfo& ep : eps) {
    out.WriteU32(ep.spec_idx);
    out.WriteI64(ep.window_start);
    out.WriteI64(ep.window_end);
  }
}

SlicePartialMsg SlicePartialMsg::DeserializeFrom(ByteReader& in) {
  SlicePartialMsg msg;
  msg.slice_id = in.ReadU64();
  msg.start = in.ReadI64();
  msg.end = in.ReadI64();
  msg.last_event_ts = in.ReadI64();
  msg.watermark = in.ReadI64();
  const uint32_t lanes = in.ReadU32();
  msg.lanes.reserve(lanes);
  msg.lane_events.reserve(lanes);
  for (uint32_t i = 0; i < lanes; ++i) {
    msg.lane_events.push_back(in.ReadU64());
    msg.lane_last_ts.push_back(in.ReadI64());
    msg.lanes.push_back(PartialAggregate::DeserializeFrom(in));
  }
  const uint32_t eps = in.ReadU32();
  for (uint32_t i = 0; i < eps; ++i) {
    EpInfo ep;
    ep.spec_idx = in.ReadU32();
    ep.window_start = in.ReadI64();
    ep.window_end = in.ReadI64();
    msg.eps.push_back(ep);
  }
  return msg;
}

std::vector<uint8_t> EncodeEventBatch(const std::vector<Event>& events) {
  ByteWriter out;
  out.WriteU32(static_cast<uint32_t>(events.size()));
  for (const Event& e : events) {
    out.WriteI64(e.ts);
    out.WriteU32(e.key);
    out.WriteDouble(e.value);
    out.WriteU32(e.marker);
  }
  return out.TakeBytes();
}

std::vector<Event> DecodeEventBatch(const std::vector<uint8_t>& payload) {
  ByteReader in(payload);
  const uint32_t n = in.ReadU32();
  std::vector<Event> events;
  events.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Event e;
    e.ts = in.ReadI64();
    e.key = in.ReadU32();
    e.value = in.ReadDouble();
    e.marker = in.ReadU32();
    events.push_back(e);
  }
  return events;
}

std::vector<uint8_t> EncodeWatermark(Timestamp watermark) {
  ByteWriter out;
  out.WriteI64(watermark);
  return out.TakeBytes();
}

Timestamp DecodeWatermark(const std::vector<uint8_t>& payload) {
  ByteReader in(payload);
  return in.ReadI64();
}

}  // namespace desis
