#include "net/node.h"

#include <algorithm>
#include <chrono>

#include "transport/transport.h"

namespace desis {
namespace {

// Nested-time accumulator for busy-time attribution: when node A's handler
// synchronously triggers node B's handler, B's time must not count as A's.
thread_local int64_t g_nested_ns = 0;

}  // namespace

std::string ToString(NodeRole role) {
  switch (role) {
    case NodeRole::kLocal: return "local";
    case NodeRole::kIntermediate: return "intermediate";
    case NodeRole::kRoot: return "root";
  }
  return "unknown";
}

Node::Node(uint32_t id, NodeRole role)
    : id_(id), role_(role), transport_(&DefaultInlineTransport()) {}

int64_t Node::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t Node::ExchangeNested(int64_t value) {
  const int64_t old = g_nested_ns;
  g_nested_ns = value;
  return old;
}

int Node::AttachChild(Node* child) {
  child->parent_ = this;
  child->child_index_at_parent_ = children_;
  detached_flags_.push_back(false);
  child_nodes_.push_back(child);
  return children_++;
}

void Node::DetachChild(int child_index) {
  if (child_index < 0 || child_index >= children_ ||
      detached_flags_[static_cast<size_t>(child_index)]) {
    return;
  }
  detached_flags_[static_cast<size_t>(child_index)] = true;
  ++detached_;
  Metered([&] { OnChildDetached(child_index); });
}

void Node::AttachObs(obs::MetricsRegistry* registry,
                     obs::SliceTracer* tracer) {
  obs_registry_ = registry;
  tracer_ = tracer;
  if (registry != nullptr) {
    const obs::Labels labels = {{"node", std::to_string(id_)},
                                {"role", ToString(role_)}};
    handler_latency_ =
        registry->GetHistogram("node.handler_latency_ns", labels, "ns");
    queue_hwm_gauge_ = registry->GetGauge("node.queue_hwm", labels, "messages");
    mailbox_depth_gauge_ =
        registry->GetGauge("health.mailbox_depth", labels, "messages");
    wm_lag_gauge_ = registry->GetGauge("health.watermark_lag_us", labels, "us");
    backlog_gauge_ = registry->GetGauge("health.backlog", labels, "slices");
    reorder_depth_gauge_ =
        registry->GetGauge("health.reorder_depth", labels, "events");
    retransmits_counter_ =
        registry->GetCounter("node.retransmits", labels, "messages");
    drops_counter_ =
        registry->GetCounter("node.messages_dropped", labels, "messages");
  }
  RegisterRecoveryObs();  // handles AttachObs-after-EnableRecovery order
  OnObsAttached();
}

void Node::AttachFlight(obs::FlightRecorder* flight) {
  flight_ = flight;
  if (flight_ == nullptr) return;
  flight_->set_identity(id_, static_cast<uint8_t>(role_));
  if (obs_registry_ != nullptr) {
    const obs::Labels labels = {{"node", std::to_string(id_)},
                                {"role", ToString(role_)}};
    flight_->set_counters(
        obs_registry_->GetCounter("recorder.events", labels, "events"),
        obs_registry_->GetCounter("recorder.dropped", labels, "events"));
  }
  OnFlightAttached();
}

void Node::PublishHealth() const {
  if (wm_lag_gauge_ != nullptr) {
    // Lag is only meaningful once both ends of the interval exist; before
    // traffic flows the gauge stays at its initial 0.
    const int64_t seen = health_.last_event_ts;
    const int64_t wm = health_.watermark;
    if (seen != kNoTimestamp) {
      wm_lag_gauge_->Set(wm == kNoTimestamp ? seen : std::max<int64_t>(0, seen - wm));
    }
  }
  if (backlog_gauge_ != nullptr) backlog_gauge_->Set(health_.backlog);
  if (reorder_depth_gauge_ != nullptr) {
    reorder_depth_gauge_->Set(health_.reorder_depth);
  }
}

void Node::NoteRetransmit(const Message* message) {
  ++net_stats_.retransmits;
  if (retransmits_counter_ != nullptr) retransmits_counter_->Add();
  // A retransmitted slice partial keeps its slice identity, so the span
  // lands on the same async track as the original shipment. The id and
  // time range are the first three payload fields (see SlicePartialMsg).
  if (message != nullptr && message->type == MessageType::kSlicePartial &&
      message->payload.size() >= sizeof(uint64_t) + 2 * sizeof(int64_t)) {
    ByteReader reader(message->payload);
    const uint64_t slice_id = reader.ReadU64();
    reader.ReadI64();  // start
    const Timestamp end = reader.ReadI64();
    if (tracer_ != nullptr) {
      tracer_->Record(obs::SlicePhase::kRetransmit, slice_id,
                      message->group_id, /*query_id=*/0, id_,
                      static_cast<uint8_t>(role_), end);
    }
    if (flight_ != nullptr) {
      flight_->Record(obs::FlightEventKind::kRetransmit, slice_id,
                      message->group_id, end);
    }
  }
}

void Node::Receive(const Message& message, int child_index) {
  ++health_.heartbeats;  // any inbound traffic is a liveness signal
  if (message.type == MessageType::kAck) {
    // Downstream traffic (parent -> child, child_index = -1): evict the
    // resend buffer and cascade toward the leaves. Never reaches the
    // subclass HandleMessage.
    net_stats_.bytes_received += message.WireBytes();
    ++net_stats_.messages_received;
    Metered([&] { HandleStableAck(DecodeWatermark(message.payload)); });
    return;
  }
  if (child_detached(child_index)) return;  // stale traffic from a removed node
  net_stats_.bytes_received += message.WireBytes();
  ++net_stats_.messages_received;
  const int64_t attributed_ns =
      Metered([&] { HandleMessage(message, child_index); });
  if (handler_latency_ != nullptr) handler_latency_->Record(attributed_ns);
}

void Node::SendToParent(const Message& message) {
  if (parent_ == nullptr) return;
  net_stats_.bytes_sent += message.WireBytes();
  ++net_stats_.messages_sent;
  transport_->Send(this, parent_, child_index_at_parent_, message);
}

void Node::SendToParentBuffered(const Message& message, Timestamp end_ts) {
  if (resend_buffer_ != nullptr) {
    resend_buffer_->Add(message, end_ts);
    UpdateResendGauge();
  }
  SendToParent(message);
}

void Node::EnableRecovery(const RecoveryOptions& options) {
  if (!options.enabled || resend_buffer_ != nullptr) return;
  resend_buffer_ =
      std::make_unique<ResendBuffer>(options.resend_buffer_max_bytes);
  RegisterRecoveryObs();
}

void Node::RegisterRecoveryObs() {
  if (obs_registry_ == nullptr || resend_buffer_ == nullptr ||
      replayed_counter_ != nullptr) {
    return;
  }
  const obs::Labels labels = {{"node", std::to_string(id_)},
                              {"role", ToString(role_)}};
  replayed_counter_ = obs_registry_->GetCounter("recovery.replayed_slices",
                                                labels, "messages");
  resend_bytes_gauge_ = obs_registry_->GetGauge("recovery.resend_buffer_bytes",
                                                labels, "bytes");
}

void Node::UpdateResendGauge() {
  if (resend_bytes_gauge_ != nullptr) {
    resend_bytes_gauge_->Set(static_cast<int64_t>(resend_buffer_->bytes()));
  }
}

void Node::HandleStableAck(Timestamp stable) {
  if (resend_buffer_ != nullptr) {
    resend_buffer_->EvictStable(stable);
    UpdateResendGauge();
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kAckFrontier,
                    static_cast<uint64_t>(stable), 0, stable);
  }
  SendAckToChildren(stable);
}

void Node::SendAckToChildren(Timestamp stable) {
  if (stable <= ack_forwarded_) return;  // cumulative: only forward advances
  ack_forwarded_ = stable;
  Message ack;
  ack.type = MessageType::kAck;
  ack.payload = EncodeWatermark(stable);
  for (int i = 0; i < children_; ++i) {
    if (child_detached(i)) continue;
    Node* child = child_nodes_[static_cast<size_t>(i)];
    if (child == nullptr || !child->recovery_enabled()) continue;
    net_stats_.bytes_sent += ack.WireBytes();
    ++net_stats_.messages_sent;
    transport_->Send(this, child, /*child_index=*/-1, ack);
  }
}

size_t Node::ReplayUnacked(const ReplayFrontiers& frontiers) {
  if (resend_buffer_ == nullptr || parent_ == nullptr) return 0;
  size_t replayed = 0;
  for (const Message& message : resend_buffer_->UnackedSnapshot()) {
    // Stale iff every origin unit was already applied at the root. Messages
    // without provenance can't be deduplicated, so they are always resent.
    bool fresh = message.origins.empty();
    for (const ProvenanceEntry& p : message.origins) {
      const auto it = frontiers.find({message.group_id, p.origin});
      if (it == frontiers.end() || p.unit >= it->second) {
        fresh = true;
        break;
      }
    }
    if (!fresh) continue;
    net_stats_.bytes_sent += message.WireBytes();
    ++net_stats_.messages_sent;
    transport_->Send(this, parent_, child_index_at_parent_, message);
    ++replayed;
    if (replayed_counter_ != nullptr) replayed_counter_->Add();
    RecordReplaySpan(message);
  }
  return replayed;
}

void Node::RecordReplaySpan(const Message& message) {
  if (tracer_ == nullptr && flight_ == nullptr) return;
  uint64_t slice_id =
      message.origins.empty() ? 0 : message.origins.front().unit;
  Timestamp ts = health_.watermark;
  if (message.type == MessageType::kSlicePartial &&
      message.payload.size() >= sizeof(uint64_t) + 2 * sizeof(int64_t)) {
    ByteReader reader(message.payload);
    slice_id = reader.ReadU64();
    reader.ReadI64();  // start
    ts = reader.ReadI64();
  }
  if (tracer_ != nullptr) {
    tracer_->Record(obs::SlicePhase::kReplay, slice_id, message.group_id,
                    /*query_id=*/0, id_, static_cast<uint8_t>(role_), ts);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kReplay, slice_id, message.group_id,
                    ts);
  }
}

}  // namespace desis
