#include "net/node.h"

#include <algorithm>
#include <chrono>

#include "transport/transport.h"

namespace desis {
namespace {

// Nested-time accumulator for busy-time attribution: when node A's handler
// synchronously triggers node B's handler, B's time must not count as A's.
thread_local int64_t g_nested_ns = 0;

}  // namespace

std::string ToString(NodeRole role) {
  switch (role) {
    case NodeRole::kLocal: return "local";
    case NodeRole::kIntermediate: return "intermediate";
    case NodeRole::kRoot: return "root";
  }
  return "unknown";
}

Node::Node(uint32_t id, NodeRole role)
    : id_(id), role_(role), transport_(&DefaultInlineTransport()) {}

int64_t Node::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t Node::ExchangeNested(int64_t value) {
  const int64_t old = g_nested_ns;
  g_nested_ns = value;
  return old;
}

int Node::AttachChild(Node* child) {
  child->parent_ = this;
  child->child_index_at_parent_ = children_;
  detached_flags_.push_back(false);
  return children_++;
}

void Node::DetachChild(int child_index) {
  if (child_index < 0 || child_index >= children_ ||
      detached_flags_[static_cast<size_t>(child_index)]) {
    return;
  }
  detached_flags_[static_cast<size_t>(child_index)] = true;
  ++detached_;
  Metered([&] { OnChildDetached(child_index); });
}

void Node::AttachObs(obs::MetricsRegistry* registry,
                     obs::SliceTracer* tracer) {
  obs_registry_ = registry;
  tracer_ = tracer;
  if (registry != nullptr) {
    const obs::Labels labels = {{"node", std::to_string(id_)},
                                {"role", ToString(role_)}};
    handler_latency_ =
        registry->GetHistogram("node.handler_latency_ns", labels, "ns");
    queue_hwm_gauge_ = registry->GetGauge("node.queue_hwm", labels, "messages");
    mailbox_depth_gauge_ =
        registry->GetGauge("health.mailbox_depth", labels, "messages");
    wm_lag_gauge_ = registry->GetGauge("health.watermark_lag_us", labels, "us");
    backlog_gauge_ = registry->GetGauge("health.backlog", labels, "slices");
    reorder_depth_gauge_ =
        registry->GetGauge("health.reorder_depth", labels, "events");
    retransmits_counter_ =
        registry->GetCounter("node.retransmits", labels, "messages");
    drops_counter_ =
        registry->GetCounter("node.messages_dropped", labels, "messages");
  }
  OnObsAttached();
}

void Node::PublishHealth() const {
  if (wm_lag_gauge_ != nullptr) {
    // Lag is only meaningful once both ends of the interval exist; before
    // traffic flows the gauge stays at its initial 0.
    const int64_t seen = health_.last_event_ts;
    const int64_t wm = health_.watermark;
    if (seen != kNoTimestamp) {
      wm_lag_gauge_->Set(wm == kNoTimestamp ? seen : std::max<int64_t>(0, seen - wm));
    }
  }
  if (backlog_gauge_ != nullptr) backlog_gauge_->Set(health_.backlog);
  if (reorder_depth_gauge_ != nullptr) {
    reorder_depth_gauge_->Set(health_.reorder_depth);
  }
}

void Node::NoteRetransmit(const Message* message) {
  ++net_stats_.retransmits;
  if (retransmits_counter_ != nullptr) retransmits_counter_->Add();
  // A retransmitted slice partial keeps its slice identity, so the span
  // lands on the same async track as the original shipment. The id and
  // time range are the first three payload fields (see SlicePartialMsg).
  if (tracer_ != nullptr && message != nullptr &&
      message->type == MessageType::kSlicePartial &&
      message->payload.size() >= sizeof(uint64_t) + 2 * sizeof(int64_t)) {
    ByteReader reader(message->payload);
    const uint64_t slice_id = reader.ReadU64();
    reader.ReadI64();  // start
    const Timestamp end = reader.ReadI64();
    tracer_->Record(obs::SlicePhase::kRetransmit, slice_id, message->group_id,
                    /*query_id=*/0, id_, static_cast<uint8_t>(role_), end);
  }
}

void Node::Receive(const Message& message, int child_index) {
  if (child_detached(child_index)) return;  // stale traffic from a removed node
  net_stats_.bytes_received += message.WireBytes();
  ++net_stats_.messages_received;
  const int64_t attributed_ns =
      Metered([&] { HandleMessage(message, child_index); });
  if (handler_latency_ != nullptr) handler_latency_->Record(attributed_ns);
}

void Node::SendToParent(const Message& message) {
  if (parent_ == nullptr) return;
  net_stats_.bytes_sent += message.WireBytes();
  ++net_stats_.messages_sent;
  transport_->Send(this, parent_, child_index_at_parent_, message);
}

}  // namespace desis
