#ifndef DESIS_NET_DISCO_NODES_H_
#define DESIS_NET_DISCO_NODES_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/query_analyzer.h"
#include "core/slicer.h"
#include "core/stats.h"
#include "net/node.h"

namespace desis {

/// Disco baseline (Benson et al., EDBT'20; §6.1.1): decentralized window
/// aggregation using Scotty on edge devices. Differences to Desis that this
/// reproduction models faithfully:
///  * sharing only within the same aggregation function (+ measure),
///  * partial results shipped **per window**, not per slice — overlapping
///    windows re-send their shared overlap,
///  * intermediate/root nodes merge per window without slicing,
///  * all inter-node traffic is serialized as ASCII strings (Fig 11b),
///  * non-decomposable functions and count measures forward raw events.
namespace disco {

/// Text wire codecs (Disco "uses strings to send events and messages").
std::string EncodePartialLine(QueryId qid, Timestamp ws, Timestamp we,
                              uint64_t events, const PartialAggregate& agg);
std::string EncodeEventLine(const Event& e);
std::string EncodeWatermarkLine(Timestamp wm);

struct ParsedPartial {
  QueryId qid = 0;
  Timestamp ws = 0;
  Timestamp we = 0;
  uint64_t events = 0;
  PartialAggregate agg;
};

/// Parses one text payload; appends to the out-params per line kind.
void ParsePayload(const std::vector<uint8_t>& payload,
                  std::vector<ParsedPartial>* partials,
                  std::vector<Event>* events, Timestamp* watermark);

}  // namespace disco

class DiscoLocalNode : public Node, public LocalIngest {
 public:
  DiscoLocalNode(uint32_t id, const std::vector<Query>& queries,
                 size_t batch_size = 512);

  void IngestBatch(const Event* events, size_t count) override;
  void Advance(Timestamp watermark) override;
  const EngineStats& engine_stats() const { return stats_; }

 protected:
  void HandleMessage(const Message& message, int child_index) override;

 private:
  void IngestOne(const Event& event);
  void FlushText();

  EngineStats stats_;
  std::vector<std::unique_ptr<StreamSlicer>> slicers_;
  std::vector<Query> forward_queries_;  // non-decomposable / count-based
  std::string pending_text_;
  size_t batch_size_;
  size_t pending_lines_ = 0;
};

class DiscoIntermediateNode : public Node {
 public:
  explicit DiscoIntermediateNode(uint32_t id)
      : Node(id, NodeRole::kIntermediate) {}

  const EngineStats& engine_stats() const { return stats_; }

 protected:
  void HandleMessage(const Message& message, int child_index) override;

 private:
  Timestamp MinChildWatermark() const;
  void FlushUpTo(Timestamp watermark);
  void SendText(std::string text);

  EngineStats stats_;
  // (qid, ws, we) -> merged partial + reports.
  std::map<std::tuple<QueryId, Timestamp, Timestamp>,
           std::pair<disco::ParsedPartial, int>>
      partials_;
  std::vector<Timestamp> child_wms_;
  Timestamp sent_wm_ = kNoTimestamp;
};

class DiscoRootNode : public Node {
 public:
  DiscoRootNode(uint32_t id, const std::vector<Query>& queries);

  void set_sink(WindowSink sink) { sink_ = std::move(sink); }
  const EngineStats& engine_stats() const { return stats_; }
  uint64_t results_emitted() const { return results_; }

 protected:
  void HandleMessage(const Message& message, int child_index) override;

 private:
  Timestamp MinChildWatermark() const;
  void AdvanceAll(Timestamp watermark);
  void EmitResult(const WindowResult& result);

  EngineStats stats_;
  WindowSink sink_;
  uint64_t results_ = 0;
  std::map<QueryId, AggregationSpec> pushdown_specs_;
  std::map<std::tuple<QueryId, Timestamp, Timestamp>,
           std::pair<disco::ParsedPartial, int>>
      partials_;
  // Root-evaluated queries (non-decomposable / count-based) run through a
  // same-function-sharing slicing engine fed by forwarded raw events.
  std::vector<std::unique_ptr<StreamSlicer>> root_slicers_;
  std::vector<Event> pending_events_;
  std::vector<Timestamp> child_wms_;
  Timestamp advanced_wm_ = kNoTimestamp;
};

}  // namespace desis

#endif  // DESIS_NET_DISCO_NODES_H_
