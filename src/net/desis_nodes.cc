#include "net/desis_nodes.h"

#include <algorithm>
#include <cassert>

#include "core/engine.h"  // SlicingEngine::kMaxInstrumentedGroups

namespace desis {

namespace {

// Event-time upper bound of an encoded event batch (payload layout: u32
// count + 24B/event, ts first): the resend-buffer eviction key for
// kEventBatch messages. kNoTimestamp for an empty batch.
Timestamp EventBatchEndTs(const std::vector<uint8_t>& payload) {
  constexpr size_t kPerEvent =
      sizeof(int64_t) + sizeof(uint32_t) + sizeof(double) + sizeof(uint32_t);
  ByteReader in(payload);
  const uint32_t n = in.ReadU32();
  if (n == 0) return kNoTimestamp;
  ByteReader tail(payload.data() + sizeof(uint32_t) + (n - 1) * kPerEvent,
                  sizeof(int64_t));
  return tail.ReadI64();
}

}  // namespace

// ---------------------------------------------------------------- local --

DesisLocalNode::DesisLocalNode(uint32_t id,
                               const std::vector<QueryGroup>& groups,
                               size_t forward_batch_size, int engine_shards,
                               const mem::MemoryOptions& memory)
    : Node(id, NodeRole::kLocal),
      mem_options_(memory),
      forward_batch_size_(forward_batch_size),
      engine_shards_(engine_shards) {
  if (mem_options_.budget_bytes > 0) {
    // With a shard pool the budget is split half/half between the plain
    // slicers and the pool (unshardable groups hold full-stream state, so
    // an even split is the conservative default); otherwise the plain
    // slicers get all of it.
    mem::MemoryOptions plain = mem_options_;
    if (engine_shards_ > 0) {
      plain.budget_bytes =
          std::max<uint64_t>(plain.budget_bytes / 2, uint64_t{1});
    }
    gov_ = std::make_unique<mem::MemoryGovernor>(plain);
  }
  AddGroups(groups);
}

void DesisLocalNode::DeployToPool(const std::vector<QueryGroup>& groups) {
  if (groups.empty()) return;
  if (pool_ == nullptr) {
    ShardedEngineOptions opts;
    opts.shards = engine_shards_;
    opts.node_label = std::to_string(id());
    pool_ = std::make_unique<ShardedEngine>(opts);
    if (mem_options_.budget_bytes > 0) {
      mem::MemoryOptions half = mem_options_;
      half.budget_bytes =
          std::max<uint64_t>(half.budget_bytes / 2, uint64_t{1});
      pool_->EnableMemoryBudget(half);
    }
    Status st = pool_->ConfigureGroups(
        groups, [this](uint32_t gid, const SliceRecord& rec) {
          ShipSlice(gid, rec);
        });
    assert(st.ok());
    (void)st;
    pool_->set_tracer(tracer_, id(), obs::kSpanRoleLocal);
    pool_->set_metrics_registry(obs_registry_);
    return;
  }
  pool_->AddShardedGroups(groups);
}

void DesisLocalNode::FoldPoolStats() {
  if (pool_ == nullptr) return;
  const EngineStats& ps = pool_->stats();
  const uint64_t now[4] = {
      ps.operator_executions.load(), ps.slices_created.load(),
      ps.selection_evals.load(), ps.merges.load()};
  stats_.operator_executions += now[0] - pool_folded_[0];
  stats_.slices_created += now[1] - pool_folded_[1];
  stats_.selection_evals += now[2] - pool_folded_[2];
  stats_.merges += now[3] - pool_folded_[3];
  for (int i = 0; i < 4; ++i) pool_folded_[i] = now[i];
}

void DesisLocalNode::AddGroups(const std::vector<QueryGroup>& groups) {
  std::vector<QueryGroup> pool_groups;
  for (const QueryGroup& group : groups) {
    if (group.root_only) {
      forward_groups_.push_back({group, {}});
      continue;
    }
    if (engine_shards_ > 0 && GroupShardable(group)) {
      pool_groups.push_back(group);
      continue;
    }
    SlicerOptions options;
    options.punctuation = PunctuationStrategy::kPrecomputed;
    options.assemble_windows = false;  // the root assembles (§5.1)
    options.keep_slices = false;
    auto slicer = std::make_unique<StreamSlicer>(group, options, &stats_);
    const uint32_t gid = group.id;
    slicer->set_slice_sink(
        [this, gid](const SliceRecord& rec) { ShipSlice(gid, rec); });
    slicer->set_obs(tracer_, id(), obs::kSpanRoleLocal);
    // Group cost series are shared across locals (same labels -> same
    // handles), so events_in/operator_evals accumulate cluster-wide; the
    // instrumentation cap mirrors the single-node engine's.
    if (gid < SlicingEngine::kMaxInstrumentedGroups) {
      slicer->set_metrics(obs_registry_);
    }
    if (gov_ != nullptr) slicer->set_memory(gov_.get());
    slicers_.emplace_back(gid, std::move(slicer));
  }
  DeployToPool(pool_groups);
}

bool DesisLocalNode::AddQueryToGroup(uint32_t group_id, const Query& q,
                                     uint32_t lane,
                                     const SelectionLane& lane_def,
                                     Timestamp active_from) {
  for (auto& [gid, slicer] : slicers_) {
    if (gid != group_id) continue;
    slicer->ApplyQueryAdd(q, lane, lane_def, active_from);
    return true;
  }
  for (ForwardGroup& fg : forward_groups_) {
    if (fg.group.id != group_id) continue;
    // Root-only groups only filter and forward raw events here; joining a
    // query just has to make the lane list cover its predicate. The root's
    // slicer applies the activation gate.
    if (lane >= fg.group.lanes.size()) fg.group.lanes.push_back(lane_def);
    fg.group.queries.push_back({q, lane});
    return true;
  }
  if (pool_ != nullptr &&
      pool_->ApplyQueryAdd(group_id, q, lane, lane_def, active_from)) {
    return true;
  }
  return false;
}

bool DesisLocalNode::RemoveGroup(uint32_t group_id) {
  for (auto it = slicers_.begin(); it != slicers_.end(); ++it) {
    if (it->first != group_id) continue;
    slicers_.erase(it);
    return true;
  }
  for (auto it = forward_groups_.begin(); it != forward_groups_.end(); ++it) {
    if (it->group.id != group_id) continue;
    forward_groups_.erase(it);
    return true;
  }
  return pool_ != nullptr && pool_->RemoveShardedGroup(group_id);
}

void DesisLocalNode::OnObsAttached() {
  for (auto& [gid, slicer] : slicers_) {
    slicer->set_obs(tracer_, id(), obs::kSpanRoleLocal);
    if (gid < SlicingEngine::kMaxInstrumentedGroups) {
      slicer->set_metrics(obs_registry_);
    }
  }
  if (pool_ != nullptr) {
    pool_->set_tracer(tracer_, id(), obs::kSpanRoleLocal);
    pool_->set_metrics_registry(obs_registry_);
  }
  if (gov_ != nullptr) {
    gov_->AttachMetrics(obs_registry_, {{"node", std::to_string(id())}});
  }
}

void DesisLocalNode::OnFlightAttached() {
  for (auto& [gid, slicer] : slicers_) slicer->set_flight(flight_);
  if (pool_ != nullptr) pool_->set_flight_recorder(flight_);
}

void DesisLocalNode::IngestBatch(const Event* events, size_t count) {
  if (count == 0) return;
  Metered([&] {
    stats_.events += count;
    last_ts_ = events[count - 1].ts;
    // Pushed-down groups take the slicer's run-based fast path; groups with
    // dynamic or count-measure specs fall back per event inside the slicer.
    for (auto& [gid, slicer] : slicers_) slicer->IngestBatch(events, count);
    if (pool_ != nullptr) pool_->IngestBatch(events, count);
    for (ForwardGroup& fg : forward_groups_) {
      for (size_t i = 0; i < count; ++i) {
        for (const SelectionLane& lane : fg.group.lanes) {
          ++stats_.selection_evals;
          if (lane.predicate.Matches(events[i])) {
            fg.pending.push_back(events[i]);
            break;  // forwarded once; the root re-evaluates lanes
          }
        }
        if (fg.pending.size() >= forward_batch_size_) {
          FlushForwardBatch(fg.group.id);
        }
      }
    }
    health_.last_event_ts = last_ts_;
    int64_t parked = 0;
    for (const ForwardGroup& fg : forward_groups_) {
      parked += static_cast<int64_t>(fg.pending.size());
    }
    health_.backlog = parked;
  });
}

void DesisLocalNode::ShipSlice(uint32_t group_id, const SliceRecord& rec) {
  SlicePartialMsg msg = SlicePartialMsg::FromRecord(rec, last_ts_);
  ByteWriter out;
  msg.SerializeTo(out);
  Message wire{MessageType::kSlicePartial, group_id, out.TakeBytes()};
  if (recovery_enabled()) {
    // Slice ids are monotone per (local, group): the natural replay unit.
    wire.origins = {{id(), rec.id}};
  }
  SendToParentBuffered(wire, rec.end);
  if (tracer_ != nullptr) {
    tracer_->Record(obs::SlicePhase::kPartialShipped, rec.id, group_id,
                    /*query_id=*/0, id(), obs::kSpanRoleLocal, rec.end);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kPartialShip, rec.id, group_id,
                    rec.end);
  }
}

void DesisLocalNode::FlushForwardBatch(uint32_t group_id) {
  for (ForwardGroup& fg : forward_groups_) {
    if (fg.group.id != group_id || fg.pending.empty()) continue;
    Message wire{MessageType::kEventBatch, group_id,
                 EncodeEventBatch(fg.pending)};
    if (recovery_enabled()) wire.origins = {{id(), fg.next_chunk++}};
    SendToParentBuffered(wire, fg.pending.back().ts);
    fg.pending.clear();
  }
}

void DesisLocalNode::ReAdvertiseWatermark() {
  const Timestamp wm = health_.watermark;
  if (wm == kNoTimestamp) return;
  SendToParent({MessageType::kWatermark, 0, EncodeWatermark(wm)});
}

void DesisLocalNode::Advance(Timestamp watermark) {
  Metered([&] {
    Timestamp safe = watermark;
    for (auto& [gid, slicer] : slicers_) {
      slicer->AdvanceTo(watermark);
      // Advertise only what has been sealed and shipped: events in an
      // unsealed slice (e.g. a running session) are not upstream yet.
      const Timestamp slicer_safe = slicer->SafeWatermark();
      if (slicer_safe != kNoTimestamp) safe = std::min(safe, slicer_safe);
    }
    if (pool_ != nullptr) {
      // Barriers on the shard watermarks, merges shard slices per range,
      // and ships them through ShipSlice before the watermark goes out.
      pool_->AdvanceTo(watermark);
      const Timestamp pool_safe = pool_->SafeWatermark();
      if (pool_safe != kNoTimestamp) safe = std::min(safe, pool_safe);
      FoldPoolStats();
    }
    for (ForwardGroup& fg : forward_groups_) FlushForwardBatch(fg.group.id);
    SendToParent({MessageType::kWatermark, 0, EncodeWatermark(safe)});
    NoteWatermarkAdvance(safe);
    health_.backlog = 0;  // forward batches flushed
  });
}

void DesisLocalNode::HandleMessage(const Message& /*message*/,
                                   int /*child_index*/) {
  // Local nodes have no children in this topology.
}

// --------------------------------------------------------- intermediate --

void DesisIntermediateNode::NoteChildWatermark(int child_index, Timestamp wm) {
  if (child_wms_.size() < num_children()) {
    child_wms_.resize(num_children(), kNoTimestamp);
  }
  child_wms_[static_cast<size_t>(child_index)] =
      std::max(child_wms_[static_cast<size_t>(child_index)], wm);
}

Timestamp DesisIntermediateNode::MinChildWatermark() const {
  if (child_wms_.size() < num_children()) return kNoTimestamp;
  Timestamp min_wm = kMaxTimestamp;
  for (size_t i = 0; i < child_wms_.size(); ++i) {
    if (child_detached(static_cast<int>(i))) continue;
    if (child_wms_[i] == kNoTimestamp) return kNoTimestamp;
    min_wm = std::min(min_wm, child_wms_[i]);
  }
  return min_wm;
}

void DesisIntermediateNode::OnChildDetached(int child_index) {
  if (child_wms_.size() < num_children()) {
    child_wms_.resize(num_children(), kNoTimestamp);
  }
  child_wms_[static_cast<size_t>(child_index)] = kMaxTimestamp;
  FlushUpTo(MinChildWatermark());
}

void DesisIntermediateNode::ForwardEntry(
    uint32_t group_id, SlicePartialMsg&& msg,
    std::vector<ProvenanceEntry>&& origins) {
  if (tracer_ != nullptr) {
    tracer_->Record(obs::SlicePhase::kMerged, msg.slice_id, group_id,
                    /*query_id=*/0, id(), obs::kSpanRoleIntermediate, msg.end);
  }
  const Timestamp end = msg.end;
  ByteWriter out;
  msg.SerializeTo(out);
  Message wire{MessageType::kSlicePartial, group_id, out.TakeBytes()};
  if (recovery_enabled()) wire.origins = std::move(origins);
  SendToParentBuffered(wire, end);
}

void DesisIntermediateNode::ForceFlushHeld() {
  // Early data is safe — the parent's assembler holds partials until its
  // own watermark passes — so everything held here can go upstream now.
  // sent_wm_ stays put: the pinning invariant keeps protecting in-flight
  // data on the wire above us.
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto& [key, value] = *it;
    ForwardEntry(std::get<0>(key), std::move(value.msg),
                 std::move(value.origins));
    it = entries_.erase(it);
  }
  health_.backlog = 0;
}

void DesisIntermediateNode::ReAdvertiseWatermark() {
  if (sent_wm_ == kNoTimestamp) return;
  SendToParent({MessageType::kWatermark, 0, EncodeWatermark(sent_wm_)});
}

void DesisIntermediateNode::FlushUpTo(Timestamp watermark) {
  if (watermark == kNoTimestamp) return;
  // Forward intermediate slices that can no longer grow (children's
  // watermarks passed their end), even if not every child contributed —
  // dynamic windows punctuate at different times on different children.
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto& [key, value] = *it;
    if (std::get<2>(key) <= watermark) {
      ForwardEntry(std::get<0>(key), std::move(value.msg),
                   std::move(value.origins));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  // Pin the forwarded watermark to the earliest still-held slice: the
  // parent must not sweep past activity that is in flight here, or a slice
  // flushed later (its end punctuates later than a shorter, later-starting
  // sibling's) would land behind the root's session scan and its events
  // would silently vanish from session tracking. The flush above still
  // uses the raw child watermark, so nothing is forwarded any later than
  // before — the parent just cannot consume ahead of the in-flight data.
  Timestamp send = watermark;
  for (const auto& [key, value] : entries_) {
    send = std::min(send, std::get<1>(key));
  }
  if (send <= sent_wm_) return;
  sent_wm_ = send;
  SendToParent({MessageType::kWatermark, 0, EncodeWatermark(send)});
}

void DesisIntermediateNode::HandleMessage(const Message& message,
                                          int child_index) {
  switch (message.type) {
    case MessageType::kSlicePartial: {
      ByteReader in(message.payload);
      SlicePartialMsg msg = SlicePartialMsg::DeserializeFrom(in);
      health_.last_event_ts.StoreMax(msg.last_event_ts);
      auto key = std::make_tuple(message.group_id, msg.start, msg.end);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        ++stats_.slices_created;  // a new intermediate slice
        it = entries_.emplace(key, Entry{std::move(msg), 1, message.origins})
                 .first;
      } else {
        it->second.origins.insert(it->second.origins.end(),
                                  message.origins.begin(),
                                  message.origins.end());
        SlicePartialMsg& entry = it->second.msg;
        // Children racing a runtime query add may report the same slice
        // range with different lane counts / operator masks for one
        // watermark round: merge the shared prefix mask-compatibly and
        // append the wider child's extra lanes.
        const size_t shared = std::min(entry.lanes.size(), msg.lanes.size());
        for (size_t i = 0; i < shared; ++i) {
          if (msg.lane_events[i] == 0) continue;
          PartialAggregate::MergeCompatible(entry.lanes[i], msg.lanes[i]);
          entry.lane_events[i] += msg.lane_events[i];
          entry.lane_last_ts[i] =
              std::max(entry.lane_last_ts[i], msg.lane_last_ts[i]);
          ++stats_.merges;
        }
        for (size_t i = shared; i < msg.lanes.size(); ++i) {
          entry.lanes.push_back(msg.lanes[i]);
          entry.lane_events.push_back(msg.lane_events[i]);
          entry.lane_last_ts.push_back(msg.lane_last_ts[i]);
        }
        entry.last_event_ts = std::max(entry.last_event_ts, msg.last_event_ts);
        entry.watermark = std::min(entry.watermark, msg.watermark);
        for (const EpInfo& ep : msg.eps) {
          bool known = false;
          for (const EpInfo& have : entry.eps) {
            known = known || (have.spec_idx == ep.spec_idx &&
                              have.window_end == ep.window_end);
          }
          if (!known) entry.eps.push_back(ep);
        }
        ++it->second.reports;
      }
      // An intermediate slice is complete when every child reported (its
      // "length" equals the number of children, §5.1.1).
      if (it->second.reports >= static_cast<int>(num_active_children())) {
        SlicePartialMsg complete = std::move(it->second.msg);
        std::vector<ProvenanceEntry> origins = std::move(it->second.origins);
        entries_.erase(it);
        ForwardEntry(message.group_id, std::move(complete),
                     std::move(origins));
      }
      FlushUpTo(MinChildWatermark());
      break;
    }
    case MessageType::kEventBatch:
      // Root-only groups: pass raw batches through unchanged (provenance
      // included — the copy keeps `origins`); buffered for replay.
      SendToParentBuffered(message, EventBatchEndTs(message.payload));
      break;
    case MessageType::kWatermark: {
      const Timestamp wm = DecodeWatermark(message.payload);
      health_.last_event_ts.StoreMax(wm);
      NoteChildWatermark(child_index, wm);
      FlushUpTo(MinChildWatermark());
      break;
    }
    case MessageType::kText:
      SendToParent(message);
      break;
  }
  NoteWatermarkAdvance(sent_wm_);
  health_.backlog = static_cast<int64_t>(entries_.size());
}

// ----------------------------------------------------------------- root --

DesisRootNode::DesisRootNode(uint32_t id,
                             const std::vector<QueryGroup>& groups)
    : Node(id, NodeRole::kRoot) {
  AddGroups(groups);
}

Status DesisRootNode::SuppressQuery(QueryId id) {
  for (auto& [gid, assembler] : assemblers_) {
    if (assembler->SuppressQuery(id)) return Status::OK();
  }
  for (auto& [gid, rg] : root_only_) {
    if (rg.slicer->SuppressQuery(id)) return Status::OK();
  }
  return Status::NotFound("no running query with this id");
}

Status DesisRootNode::SuppressQueryInGroup(uint32_t group_id, QueryId id) {
  auto it = assemblers_.find(group_id);
  if (it != assemblers_.end() && it->second->SuppressQuery(id)) {
    return Status::OK();
  }
  auto rit = root_only_.find(group_id);
  if (rit != root_only_.end() && rit->second.slicer->SuppressQuery(id)) {
    return Status::OK();
  }
  return Status::NotFound("no running query with this id in this group");
}

bool DesisRootNode::AddQueryToGroup(uint32_t group_id, const Query& q,
                                    uint32_t lane,
                                    const SelectionLane& lane_def,
                                    Timestamp active_from) {
  auto it = assemblers_.find(group_id);
  if (it != assemblers_.end()) {
    it->second->ApplyQueryAdd(q, lane, lane_def, active_from);
    return true;
  }
  auto rit = root_only_.find(group_id);
  if (rit != root_only_.end()) {
    rit->second.slicer->ApplyQueryAdd(q, lane, lane_def, active_from);
    return true;
  }
  return false;
}

bool DesisRootNode::RemoveGroup(uint32_t group_id) {
  return assemblers_.erase(group_id) > 0 || root_only_.erase(group_id) > 0;
}

void DesisRootNode::OnObsAttached() {
  for (auto& [gid, rg] : root_only_) {
    rg.slicer->set_obs(tracer_, id(), obs::kSpanRoleRoot);
    if (gid < SlicingEngine::kMaxInstrumentedGroups) {
      rg.slicer->set_metrics(obs_registry_);
    }
  }
  if (recovery_enabled() && stale_counter_ == nullptr &&
      obs_registry_ != nullptr) {
    stale_counter_ = obs_registry_->GetCounter(
        "recovery.stale_dropped",
        {{"node", std::to_string(id())}, {"role", ToString(role())}},
        "messages");
  }
}

void DesisRootNode::OnFlightAttached() {
  for (auto& [gid, rg] : root_only_) rg.slicer->set_flight(flight_);
}

void DesisRootNode::AddGroups(const std::vector<QueryGroup>& groups) {
  for (const QueryGroup& group : groups) {
    if (group.root_only) {
      SlicerOptions options;  // full local evaluation at the root
      auto slicer = std::make_unique<StreamSlicer>(group, options, &stats_);
      slicer->set_window_sink(
          [this](const WindowResult& r) { EmitResult(r); });
      slicer->set_obs(tracer_, id(), obs::kSpanRoleRoot);
      if (group.id < SlicingEngine::kMaxInstrumentedGroups) {
        slicer->set_metrics(obs_registry_);
      }
      root_only_.emplace(group.id,
                         RootOnlyGroup{std::move(slicer), {}, kNoTimestamp});
    } else {
      assemblers_.emplace(
          group.id,
          std::make_unique<RootAssembler>(
              group, &stats_,
              [this](const WindowResult& r) { EmitResult(r); }));
    }
  }
}

void DesisRootNode::EmitResult(const WindowResult& result) {
  ++results_;
  if (sink_) sink_(result);
}

void DesisRootNode::NoteChildWatermark(int child_index, Timestamp wm) {
  if (child_wms_.size() < num_children()) {
    child_wms_.resize(num_children(), kNoTimestamp);
  }
  child_wms_[static_cast<size_t>(child_index)] =
      std::max(child_wms_[static_cast<size_t>(child_index)], wm);
}

Timestamp DesisRootNode::MinChildWatermark() const {
  if (child_wms_.size() < num_children()) return kNoTimestamp;
  Timestamp min_wm = kMaxTimestamp;
  for (size_t i = 0; i < child_wms_.size(); ++i) {
    if (child_detached(static_cast<int>(i))) continue;
    if (child_wms_[i] == kNoTimestamp) return kNoTimestamp;
    min_wm = std::min(min_wm, child_wms_[i]);
  }
  return min_wm;
}

void DesisRootNode::OnChildDetached(int child_index) {
  if (child_wms_.size() < num_children()) {
    child_wms_.resize(num_children(), kNoTimestamp);
  }
  child_wms_[static_cast<size_t>(child_index)] = kMaxTimestamp;
  AdvanceAll(MinChildWatermark());
}

void DesisRootNode::AdvanceAll(Timestamp watermark) {
  if (watermark == kNoTimestamp || watermark <= advanced_wm_) return;
  advanced_wm_ = watermark;
  // Everything at or below the new watermark is consumed (the pinning
  // invariant guarantees no partial for it is still in flight), so the
  // advance doubles as the cumulative ack cascaded toward the leaves.
  if (recovery_enabled()) SendAckToChildren(advanced_wm_);
  for (auto& [gid, assembler] : assemblers_) assembler->AdvanceTo(watermark);
  for (auto& [gid, rg] : root_only_) {
    // Release reordered events up to the watermark into the root slicer as
    // one batch (count-measure groups fall back per event inside).
    std::sort(rg.pending.begin(), rg.pending.end(),
              [](const Event& a, const Event& b) { return a.ts < b.ts; });
    size_t released = 0;
    while (released < rg.pending.size() &&
           rg.pending[released].ts <= watermark) {
      ++released;
    }
    rg.slicer->IngestBatch(rg.pending.data(), released);
    stats_.events += released;
    rg.pending.erase(rg.pending.begin(),
                     rg.pending.begin() + static_cast<int64_t>(released));
    rg.slicer->AdvanceTo(watermark);
    rg.fed_up_to = watermark;
  }
}

void DesisRootNode::UpdateHealthCells() {
  int64_t backlog = 0;
  int64_t reorder = 0;
  for (const auto& [gid, assembler] : assemblers_) {
    backlog += static_cast<int64_t>(assembler->pending_entries());
  }
  for (const auto& [gid, rg] : root_only_) {
    backlog += static_cast<int64_t>(rg.pending.size());
    reorder += static_cast<int64_t>(rg.pending.size());
  }
  health_.backlog = backlog;
  health_.reorder_depth = reorder;
  NoteWatermarkAdvance(advanced_wm_);
}

Node::ReplayFrontiers DesisRootNode::FrontierSnapshot() const {
  // Export the lowest-unapplied unit per (group, origin). Applied units
  // above a hole are deliberately omitted: they make replay conservative
  // (re-sent, then dropped whole by the exact Applied() check) rather
  // than risk trimming data the root never consumed.
  ReplayFrontiers snapshot;
  for (const auto& [key, progress] : frontiers_) snapshot[key] = progress.next;
  return snapshot;
}

void DesisRootNode::HandleMessage(const Message& message, int child_index) {
  if (recovery_enabled() && !message.origins.empty()) {
    // Replay dedup: a message whose origin units were ALL applied already
    // is a replayed duplicate — drop it whole. Mixed stale/fresh cannot
    // occur: the cluster force-flushes held entries on the dead parent's
    // ancestor chain before snapshotting frontiers, so replayed merges are
    // wholly new (docs/FAULT_TOLERANCE.md "Exactness of replay trimming").
    // Applied-ness is tracked exactly (OriginProgress): after a reattach a
    // replayed range can flush from the new parent *behind* newer complete
    // entries, so units arrive out of order and a monotone high-water mark
    // would wrongly judge the late message stale.
    bool any_fresh = false;
    for (const ProvenanceEntry& p : message.origins) {
      const auto it = frontiers_.find({message.group_id, p.origin});
      if (it == frontiers_.end() || !it->second.Applied(p.unit)) {
        any_fresh = true;
        break;
      }
    }
    if (!any_fresh) {
      ++stale_dropped_;
      if (stale_counter_ != nullptr) stale_counter_->Add();
      return;
    }
    for (const ProvenanceEntry& p : message.origins) {
      frontiers_[{message.group_id, p.origin}].Apply(p.unit);
    }
  }
  switch (message.type) {
    case MessageType::kSlicePartial: {
      ByteReader in(message.payload);
      SlicePartialMsg msg = SlicePartialMsg::DeserializeFrom(in);
      health_.last_event_ts.StoreMax(msg.last_event_ts);
      if (tracer_ != nullptr) {
        tracer_->Record(obs::SlicePhase::kMerged, msg.slice_id,
                        message.group_id, /*query_id=*/0, id(),
                        obs::kSpanRoleRoot, msg.end);
      }
      auto it = assemblers_.find(message.group_id);
      if (it != assemblers_.end()) {
        it->second->AddPartial(std::move(msg).ToRecord());
      }
      break;
    }
    case MessageType::kEventBatch: {
      auto it = root_only_.find(message.group_id);
      if (it != root_only_.end()) {
        std::vector<Event> events = DecodeEventBatch(message.payload);
        if (!events.empty()) {
          health_.last_event_ts.StoreMax(events.back().ts);
        }
        it->second.pending.insert(it->second.pending.end(), events.begin(),
                                  events.end());
      }
      break;
    }
    case MessageType::kWatermark: {
      const Timestamp wm = DecodeWatermark(message.payload);
      health_.last_event_ts.StoreMax(wm);
      NoteChildWatermark(child_index, wm);
      AdvanceAll(MinChildWatermark());
      break;
    }
    case MessageType::kText:
      break;  // Desis clusters never carry text payloads.
  }
  UpdateHealthCells();
}

}  // namespace desis
