#ifndef DESIS_NET_NODE_H_
#define DESIS_NET_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/stats.h"
#include "net/message.h"
#include "net/resend_buffer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace desis {

class Transport;

/// Role of a node in the decentralized topology (§2.4).
enum class NodeRole : uint8_t {
  kLocal = 0,
  kIntermediate,
  kRoot,
};

std::string ToString(NodeRole role);

/// Interface implemented by every system's local node so drivers can feed
/// per-node data streams uniformly.
class LocalIngest {
 public:
  virtual ~LocalIngest() = default;
  /// Feeds a batch of events (non-decreasing ts); CPU time is metered.
  virtual void IngestBatch(const Event* events, size_t count) = 0;
  /// Flushes punctuations/batches and ships a watermark upstream.
  virtual void Advance(Timestamp watermark) = 0;
};

/// Per-node counters: network bytes (the paper's network-overhead metric,
/// Fig 11), metered CPU busy time (backing the pipeline throughput model
/// described in DESIGN.md), and transport-level queue/loss counters.
/// `bytes_sent`/`messages_sent` count logical sends exactly once, whatever
/// the transport does underneath; retransmissions and drops on a lossy
/// link are accounted separately so inline runs stay byte-identical.
///
/// All counters are relaxed-atomic cells: under ThreadedTransport they are
/// mutated from per-receiver delivery workers while `Cluster::StatsReport()`
/// (or a monitoring thread) may read them mid-run. Relaxed atomics keep the
/// hot path a single uncontended RMW; exact totals are only guaranteed
/// after `Cluster::Drain()`.
struct NodeStats {
  obs::RelaxedU64 bytes_sent;
  obs::RelaxedU64 bytes_received;
  obs::RelaxedU64 messages_sent;
  obs::RelaxedU64 messages_received;
  obs::RelaxedI64 busy_ns;
  /// High-water mark of inbound queue depth (threaded mailbox occupancy or
  /// a lossy link's out-of-order reassembly buffer); 0 for inline delivery.
  obs::RelaxedU64 queue_hwm;
  /// Transmissions re-sent on this node's uplink after a loss or timeout.
  obs::RelaxedU64 retransmits;
  /// Transmissions the link dropped on this node's uplink (each one is
  /// eventually covered by a retransmit).
  obs::RelaxedU64 messages_dropped;
};

/// Per-node health cells, updated by the node's own handler/driver thread
/// at message or batch granularity and sampled race-free by
/// Cluster::SampleHealth() (all relaxed atomics — statistics, not
/// synchronization). kNoTimestamp marks "nothing seen yet".
struct NodeHealth {
  /// Newest event-time this node has seen (ingested locally or carried by
  /// child partials/watermarks).
  obs::RelaxedI64 last_event_ts{kNoTimestamp};
  /// The node's own output watermark: what it has advertised upstream (or,
  /// at the root, advanced to). last_event_ts - watermark is the node's
  /// watermark lag.
  obs::RelaxedI64 watermark{kNoTimestamp};
  /// Work parked waiting for completion: pending intermediate slices,
  /// root-assembler slice backlog, or unflushed forward batches.
  obs::RelaxedI64 backlog{0};
  /// Occupancy of a reorder buffer (root-only raw events held back for
  /// cross-child ordering); 0 where no reordering happens.
  obs::RelaxedI64 reorder_depth{0};
  /// Monotonic liveness counter: any received message or outbound
  /// watermark advance bumps it. The health watchdog treats a frozen
  /// value (while the node's watermark lags the live frontier) as
  /// silence — see obs::HealthMonitor.
  obs::RelaxedU64 heartbeats{0};
  /// Momentary inbound mailbox occupancy (same observations as the
  /// health.mailbox_depth gauge, but readable lock-free by the watchdog
  /// probe without a registry).
  obs::RelaxedI64 mailbox_depth{0};
};

/// A node in the simulated decentralized network. SendToParent() counts
/// the serialized bytes on both ends and hands the message to the node's
/// `Transport` for delivery — synchronously inline by default (bit-exact
/// with the seed behaviour), or via a threaded / simulated-lossy channel
/// (src/transport/). CPU time spent in each node's handlers is metered,
/// with nested upstream handling subtracted, so per-node busy time is
/// attributed as if nodes ran on separate machines.
class Node {
 public:
  Node(uint32_t id, NodeRole role);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  uint32_t id() const { return id_; }
  NodeRole role() const { return role_; }
  const NodeStats& net_stats() const { return net_stats_; }
  const NodeHealth& health() const { return health_; }
  int64_t busy_ns() const { return net_stats_.busy_ns; }

  /// Registers `child` as a child of this node; messages the child sends
  /// travel to this node. Returns the child's index.
  int AttachChild(Node* child);

  /// Removes a child from the membership (§3.2: node removal / connection
  /// timeout). Messages from a detached child are dropped, and completeness
  /// checks stop waiting for it.
  void DetachChild(int child_index);

  /// Entry point for messages from child `child_index`; metered.
  void Receive(const Message& message, int child_index);

  /// Total child slots ever attached (indices are stable).
  size_t num_children() const { return static_cast<size_t>(children_); }
  /// Children still in the membership.
  size_t num_active_children() const {
    return static_cast<size_t>(children_ - detached_);
  }
  bool child_detached(int child_index) const {
    return detached_flags_.size() > static_cast<size_t>(child_index) &&
           detached_flags_[static_cast<size_t>(child_index)];
  }

  int child_index_at_parent() const { return child_index_at_parent_; }
  Node* parent() const { return parent_; }
  /// The child attached at `child_index` (null for out-of-range slots;
  /// detached children keep their pointer — callers check child_detached()).
  Node* child_node(int child_index) const {
    const size_t i = static_cast<size_t>(child_index);
    return i < child_nodes_.size() ? child_nodes_[i] : nullptr;
  }

  // --- Crash recovery (docs/FAULT_TOLERANCE.md) --------------------------

  /// Arms the resend buffer and ack handling on this node. Idempotent;
  /// no-op when `options.enabled` is false.
  void EnableRecovery(const RecoveryOptions& options);
  bool recovery_enabled() const { return resend_buffer_ != nullptr; }
  ResendBuffer* resend_buffer() const { return resend_buffer_.get(); }

  /// Root-side per-(group_id, origin node) next-expected provenance unit.
  /// A buffered message is stale — already consumed by the root — iff every
  /// one of its origin entries sits below its frontier.
  using ReplayFrontiers = std::map<std::pair<uint32_t, uint32_t>, uint64_t>;

  /// Replays every buffered message not yet covered by `frontiers` to the
  /// (possibly new) parent, recording kReplay spans and the
  /// recovery.replayed_slices counter. Returns the replay count. Entries
  /// stay buffered until a stable ack covers them.
  size_t ReplayUnacked(const ReplayFrontiers& frontiers);

  /// Re-advertises this node's current output watermark upstream so a new
  /// parent immediately learns the subtree's progress after a reattach.
  virtual void ReAdvertiseWatermark() {}

  /// Routes this node's upstream sends through `transport` (never null;
  /// defaults to the process-wide inline transport).
  void set_transport(Transport* transport) { transport_ = transport; }
  Transport* transport() const { return transport_; }

  /// Attaches observability sinks: per-node series are registered in
  /// `registry` (labels: node id + role) and slice-lifecycle spans go to
  /// `tracer`. Either may be null. Subclasses extend via OnObsAttached().
  /// Call before traffic flows; handles live as long as the registry.
  void AttachObs(obs::MetricsRegistry* registry, obs::SliceTracer* tracer);
  obs::SliceTracer* tracer() const { return tracer_; }

  /// Attaches this node's black-box flight recorder (owned by the
  /// Cluster): stamps the node identity on it, mirrors its counters into
  /// the registry (recorder.events / recorder.dropped) when AttachObs ran
  /// first, and lets subclasses forward it to slicers/engines via
  /// OnFlightAttached(). Null detaches.
  void AttachFlight(obs::FlightRecorder* flight);
  obs::FlightRecorder* flight() const { return flight_; }

  /// Publishes this node's health cells into its registry gauges
  /// (health.watermark_lag_us / health.backlog / health.reorder_depth, see
  /// docs/METRICS.md). Safe from any thread (relaxed reads, gauge stores);
  /// no-op before AttachObs. Called by Cluster::SampleHealth().
  void PublishHealth() const;

  // --- Transport accounting hooks (see NodeStats) ------------------------

  /// Records an inbound queue-depth observation: keeps the maximum in
  /// queue_hwm and mirrors the momentary occupancy into the
  /// health.mailbox_depth gauge. Called live per enqueue by queue-based
  /// transports, so the gauge tracks occupancy mid-run — not only at Flush.
  void NoteQueueDepth(uint64_t depth) {
    net_stats_.queue_hwm.StoreMax(depth);
    health_.mailbox_depth.store(static_cast<int64_t>(depth));
    if (queue_hwm_gauge_ != nullptr) {
      queue_hwm_gauge_->StoreMax(static_cast<int64_t>(depth));
    }
    if (mailbox_depth_gauge_ != nullptr) {
      mailbox_depth_gauge_->Set(static_cast<int64_t>(depth));
    }
  }
  /// Marks the inbound queue quiesced (occupancy gauge back to zero; the
  /// high-water mark is preserved). Called by transports after Flush.
  void NoteQueueDrained() {
    health_.mailbox_depth.store(0);
    if (mailbox_depth_gauge_ != nullptr) mailbox_depth_gauge_->Set(0);
  }
  /// Records one retransmission on this node's uplink; with the in-flight
  /// message supplied, slice partials additionally record a kRetransmit
  /// span so the merged trace shows the repeated hop.
  void NoteRetransmit(const Message* message = nullptr);
  /// Records one dropped transmission on this node's uplink.
  void NoteDrop() {
    ++net_stats_.messages_dropped;
    if (drops_counter_ != nullptr) drops_counter_->Add();
  }

 protected:
  virtual void HandleMessage(const Message& message, int child_index) = 0;

  /// Subclass hook: membership changed (e.g. stop waiting for the child's
  /// watermark).
  virtual void OnChildDetached(int /*child_index*/) {}

  /// Subclass hook: obs sinks attached (obs_registry_/tracer_ are set).
  /// Subclasses register their own series and forward the tracer to any
  /// engines/slicers they own.
  virtual void OnObsAttached() {}

  /// Subclass hook: flight recorder attached (flight_ is set). Subclasses
  /// forward it to any slicers/engines they own so seal/spill/restore
  /// events land on this node's ring.
  virtual void OnFlightAttached() {}

  /// Publishes this node's output watermark into the health cells, and —
  /// on an actual advance — bumps the heartbeat and records a
  /// kWatermarkAdvance flight event. Subclasses call this wherever they
  /// previously stored health_.watermark directly.
  void NoteWatermarkAdvance(Timestamp watermark) {
    const Timestamp previous = health_.watermark.load();
    health_.watermark.store(watermark);
    if (watermark != previous) {
      ++health_.heartbeats;
      if (flight_ != nullptr) {
        flight_->Record(obs::FlightEventKind::kWatermarkAdvance,
                        static_cast<uint64_t>(watermark), 0, watermark);
      }
    }
  }

  /// Ships a message to the parent (no-op without a parent — the root).
  void SendToParent(const Message& message);

  /// Ships a data message and, when recovery is armed, retains a copy in
  /// the resend buffer until a stable ack at or past `end_ts` arrives.
  void SendToParentBuffered(const Message& message, Timestamp end_ts);

  /// Sends a cumulative stable-watermark ack downstream to every active
  /// child (the root calls this when its advanced watermark moves).
  void SendAckToChildren(Timestamp stable);

  /// Runs `fn` attributing its wall time (minus nested upstream work) to
  /// this node's busy counter; returns the attributed nanoseconds. Used by
  /// local nodes for event ingestion.
  template <typename Fn>
  int64_t Metered(Fn&& fn) {
    const int64_t saved = ExchangeNested(0);
    const int64_t t0 = NowNs();
    fn();
    const int64_t dt = NowNs() - t0;
    const int64_t attributed = dt - ExchangeNested(saved + dt);
    net_stats_.busy_ns += attributed;
    return attributed;
  }

  NodeStats net_stats_;
  /// Health cells; subclasses store into these from their own handler
  /// thread (see NodeHealth).
  NodeHealth health_;
  obs::MetricsRegistry* obs_registry_ = nullptr;
  obs::SliceTracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;

 private:
  static int64_t NowNs();
  static int64_t ExchangeNested(int64_t value);

  /// Evicts the resend buffer up to `stable` and forwards the ack to this
  /// node's own children (cumulative acks cascade root -> leaves).
  void HandleStableAck(Timestamp stable);
  void RegisterRecoveryObs();
  void UpdateResendGauge();
  void RecordReplaySpan(const Message& message);

  uint32_t id_;
  NodeRole role_;
  Transport* transport_;
  obs::Histogram* handler_latency_ = nullptr;   // node.handler_latency_ns
  obs::Gauge* queue_hwm_gauge_ = nullptr;       // node.queue_hwm
  obs::Gauge* mailbox_depth_gauge_ = nullptr;   // health.mailbox_depth
  obs::Gauge* wm_lag_gauge_ = nullptr;          // health.watermark_lag_us
  obs::Gauge* backlog_gauge_ = nullptr;         // health.backlog
  obs::Gauge* reorder_depth_gauge_ = nullptr;   // health.reorder_depth
  obs::Counter* retransmits_counter_ = nullptr;  // node.retransmits
  obs::Counter* drops_counter_ = nullptr;        // node.messages_dropped

  Node* parent_ = nullptr;
  int child_index_at_parent_ = -1;
  int children_ = 0;
  int detached_ = 0;
  std::vector<bool> detached_flags_;
  std::vector<Node*> child_nodes_;

  // Crash recovery (null/unset unless EnableRecovery ran).
  std::unique_ptr<ResendBuffer> resend_buffer_;
  obs::Counter* replayed_counter_ = nullptr;     // recovery.replayed_slices
  obs::Gauge* resend_bytes_gauge_ = nullptr;     // recovery.resend_buffer_bytes
  Timestamp ack_forwarded_ = kNoTimestamp;
};

}  // namespace desis

#endif  // DESIS_NET_NODE_H_
