#ifndef DESIS_NET_DESIS_NODES_H_
#define DESIS_NET_DESIS_NODES_H_

#include <map>
#include <set>
#include <memory>
#include <utility>
#include <vector>

#include "core/query_analyzer.h"
#include "core/root_assembler.h"
#include "core/sharded_engine.h"
#include "core/slicer.h"
#include "core/stats.h"
#include "mem/memory_governor.h"
#include "net/node.h"

namespace desis {

/// Desis local node (§5.1): runs the aggregation engine in slicing-only
/// mode. Every sealed slice's partial results are shipped to the parent
/// instead of raw events; for root-only query-groups (count-based measures)
/// matching raw events are batched and forwarded.
///
/// With `engine_shards` > 0 the shardable pushed-down groups run on a
/// key-sharded engine pool (core/sharded_engine.h): events fan out to
/// shard threads, and at each Advance() the per-shard slices are merged
/// intra-node before shipping, so the wire traffic and the shipped
/// partials match the single-threaded node. 0 keeps the seed path.
class DesisLocalNode : public Node, public LocalIngest {
 public:
  /// `memory` (budget_bytes > 0) puts this node's slice state under a
  /// mem::MemoryGovernor: the plain slicers share one governor, and with a
  /// shard pool the budget is split evenly between the plain slicers and
  /// the pool (which partitions its half across shard governors). A zero
  /// budget keeps the ungoverned seed path.
  DesisLocalNode(uint32_t id, const std::vector<QueryGroup>& groups,
                 size_t forward_batch_size = 512, int engine_shards = 0,
                 const mem::MemoryOptions& memory = {});

  /// Feeds a batch of events (non-decreasing ts); CPU time is metered.
  /// Pushed-down groups run the slicer's batched fast path — punctuation
  /// checks and operator folds are amortized over runs of events within
  /// the current slice.
  void IngestBatch(const Event* events, size_t count) override;

  /// Flushes punctuations/batches up to `watermark` and ships a watermark.
  void Advance(Timestamp watermark) override;

  /// Deploys additional query-groups at runtime (§3.2); windowing starts
  /// with the next event.
  void AddGroups(const std::vector<QueryGroup>& groups);

  /// Joins one query into an already-deployed group (incremental group
  /// maintenance): dispatches to the plain slicer, the shard pool, or the
  /// forward-group lane list, whichever hosts `group_id`. Returns false if
  /// the group is not deployed here.
  bool AddQueryToGroup(uint32_t group_id, const Query& q, uint32_t lane,
                       const SelectionLane& lane_def, Timestamp active_from);

  /// Tears down one deployed group (last member query removed). Slices
  /// already shipped stay valid at the root until it drops the group too.
  bool RemoveGroup(uint32_t group_id);

  /// Timestamp of the last ingested event (kNoTimestamp before any event);
  /// the cluster reads this under its ingest lock to derive the activation
  /// watermark for runtime-added queries.
  Timestamp last_event_ts() const { return last_ts_; }

  const EngineStats& engine_stats() const { return stats_; }

  /// Governor of the plain (non-pooled) slicers; null when ungoverned.
  const mem::MemoryGovernor* memory_governor() const { return gov_.get(); }

  /// Re-sends the last advertised watermark so a new parent learns this
  /// subtree's progress immediately after a reattach.
  void ReAdvertiseWatermark() override;

 protected:
  void HandleMessage(const Message& message, int child_index) override;
  /// Forwards the tracer to every slicer (slice-created spans at locals).
  void OnObsAttached() override;
  /// Forwards the flight recorder to every slicer and the shard pool.
  void OnFlightAttached() override;

 private:
  void ShipSlice(uint32_t group_id, const SliceRecord& rec);
  void FlushForwardBatch(uint32_t group_id);
  /// Hands shardable groups to the shard pool (creating it on first use).
  void DeployToPool(const std::vector<QueryGroup>& groups);
  /// Folds the pool's slicer-side counter deltas into stats_ (its events
  /// counter is skipped — IngestBatch already counts the stream once).
  void FoldPoolStats();

  EngineStats stats_;
  /// Memory governance: configured options plus the plain slicers' shared
  /// governor. Declared before slicers_ so they deregister before it dies;
  /// the shard pool carries its own per-shard governors.
  mem::MemoryOptions mem_options_;
  std::unique_ptr<mem::MemoryGovernor> gov_;
  // Pushed-down groups: group id -> slicer.
  std::vector<std::pair<uint32_t, std::unique_ptr<StreamSlicer>>> slicers_;
  // Root-only groups: group id -> (group, pending forward batch).
  struct ForwardGroup {
    QueryGroup group;
    std::vector<Event> pending;
    // Monotone forward-batch chunk id: the provenance unit for kEventBatch
    // messages under crash recovery (slice ids play this role for partials).
    uint64_t next_chunk = 0;
  };
  std::vector<ForwardGroup> forward_groups_;
  size_t forward_batch_size_;
  int engine_shards_;
  std::unique_ptr<ShardedEngine> pool_;
  // Pool counters already folded into stats_.
  uint64_t pool_folded_[4] = {0, 0, 0, 0};
  Timestamp last_ts_ = kNoTimestamp;
};

/// Desis intermediate node (§5.1.1): builds intermediate slices of length
/// = number of children by merging child partials with matching slice
/// ranges; complete or watermark-expired intermediate slices are forwarded.
class DesisIntermediateNode : public Node {
 public:
  explicit DesisIntermediateNode(uint32_t id) : Node(id, NodeRole::kIntermediate) {}

  const EngineStats& engine_stats() const { return stats_; }

  /// Crash recovery: forwards every held (incomplete) entry upstream right
  /// away, regardless of watermarks, without advancing `sent_wm_`. Called
  /// by the cluster before a root frontier snapshot so replay trimming sees
  /// an authoritative picture (docs/FAULT_TOLERANCE.md).
  void ForceFlushHeld();

  /// Re-sends the last advertised watermark to the (new) parent.
  void ReAdvertiseWatermark() override;

 protected:
  void HandleMessage(const Message& message, int child_index) override;
  void OnChildDetached(int child_index) override;

 private:
  // A partially merged intermediate slice. `origins` concatenates the
  // provenance of every merged child partial (empty unless recovery is on).
  struct Entry {
    SlicePartialMsg msg;
    int reports = 0;
    std::vector<ProvenanceEntry> origins;
  };

  void NoteChildWatermark(int child_index, Timestamp wm);
  Timestamp MinChildWatermark() const;
  void FlushUpTo(Timestamp watermark);
  void ForwardEntry(uint32_t group_id, SlicePartialMsg&& msg,
                    std::vector<ProvenanceEntry>&& origins);

  EngineStats stats_;
  // (group, start, end) -> partially merged slice + report count.
  std::map<std::tuple<uint32_t, Timestamp, Timestamp>, Entry> entries_;
  std::vector<Timestamp> child_wms_;
  Timestamp sent_wm_ = kNoTimestamp;
};

/// Desis root node (§5.1): assembles final windows from slice partials via
/// RootAssembler; root-only groups run a full local slicer over forwarded
/// raw events (reordered across children up to the watermark).
class DesisRootNode : public Node {
 public:
  DesisRootNode(uint32_t id, const std::vector<QueryGroup>& groups);

  void set_sink(WindowSink sink) { sink_ = std::move(sink); }
  const EngineStats& engine_stats() const { return stats_; }
  uint64_t results_emitted() const { return results_; }

  /// Deploys additional query-groups at runtime (§3.2).
  void AddGroups(const std::vector<QueryGroup>& groups);
  /// Stops emitting results for a query (§3.2).
  Status SuppressQuery(QueryId id);
  /// Like SuppressQuery but with the owning group known: O(log groups)
  /// instead of a scan over every assembler (10k-query churn path).
  Status SuppressQueryInGroup(uint32_t group_id, QueryId id);
  /// Joins one query into an already-deployed group; `active_from` is
  /// raised past the root's advanced watermark inside the assembler.
  bool AddQueryToGroup(uint32_t group_id, const Query& q, uint32_t lane,
                       const SelectionLane& lane_def, Timestamp active_from);
  /// Tears down one group (last member query removed).
  bool RemoveGroup(uint32_t group_id);

  /// Crash recovery: per-(group, origin) lowest-unapplied units, taken
  /// after quiescence so orphans can trim their replay to data the root
  /// may not have consumed. Units above a hole replay conservatively; the
  /// root's exact applied-tracking drops the true duplicates.
  ReplayFrontiers FrontierSnapshot() const;
  /// Messages dropped whole because every origin was already applied.
  uint64_t stale_dropped() const { return stale_dropped_; }

 protected:
  void HandleMessage(const Message& message, int child_index) override;
  void OnChildDetached(int child_index) override;
  /// Forwards the tracer to the root-only groups' local slicers.
  void OnObsAttached() override;
  /// Forwards the flight recorder to the root-only groups' slicers.
  void OnFlightAttached() override;

 private:
  void NoteChildWatermark(int child_index, Timestamp wm);
  Timestamp MinChildWatermark() const;
  void AdvanceAll(Timestamp watermark);
  void EmitResult(const WindowResult& result);
  /// Recomputes the health cells (assembler backlog, reorder-buffer
  /// occupancy, advanced watermark) after handling a message.
  void UpdateHealthCells();

  EngineStats stats_;
  WindowSink sink_;
  uint64_t results_ = 0;
  std::map<uint32_t, std::unique_ptr<RootAssembler>> assemblers_;
  struct RootOnlyGroup {
    std::unique_ptr<StreamSlicer> slicer;
    std::vector<Event> pending;  // reorder buffer across children
    Timestamp fed_up_to = kNoTimestamp;
  };
  std::map<uint32_t, RootOnlyGroup> root_only_;
  std::vector<Timestamp> child_wms_;
  Timestamp advanced_wm_ = kNoTimestamp;

  // Crash recovery: exact per-(group, origin) applied-unit tracking.
  // Units can reach the root out of order after a reattach (a replayed
  // range held at the new parent flushes later than newer complete
  // entries), so a monotone frontier alone would mis-judge the late
  // message stale. `next` is the lowest unapplied unit; `ahead` holds
  // applied units above it and compacts as the hole fills, so the set
  // stays bounded by the reorder window.
  struct OriginProgress {
    uint64_t next = 0;
    std::set<uint64_t> ahead;
    bool Applied(uint64_t unit) const {
      return unit < next || ahead.count(unit) != 0;
    }
    void Apply(uint64_t unit) {
      if (unit < next) return;
      ahead.insert(unit);
      while (!ahead.empty() && *ahead.begin() == next) {
        ahead.erase(ahead.begin());
        ++next;
      }
    }
  };
  std::map<std::pair<uint32_t, uint32_t>, OriginProgress> frontiers_;
  uint64_t stale_dropped_ = 0;
  obs::Counter* stale_counter_ = nullptr;  // recovery.stale_dropped
};

}  // namespace desis

#endif  // DESIS_NET_DESIS_NODES_H_
