#include "net/chaos.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "obs/flight_recorder.h"

namespace desis {

std::string ChaosResultLog::Canonical() const {
  std::vector<std::string> lines;
  lines.reserve(results_.size());
  for (const WindowResult& r : results_) {
    // Bit-exact value formatting: the double's bits, not a rounded decimal.
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.value));
    std::memcpy(&bits, &r.value, sizeof(bits));
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "q%u [%" PRId64 ",%" PRId64 ") v=%016" PRIx64 " n=%" PRIu64,
                  r.query_id, r.window_start, r.window_end, bits,
                  r.event_count);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void ChaosRunner::Apply(const ChaosAction& action, Timestamp wm) {
  switch (action.kind) {
    case ChaosAction::Kind::kCrashIntermediate:
      cluster_->CrashIntermediate(action.index);
      break;
    case ChaosAction::Kind::kSilentKillIntermediate:
      cluster_->InjectIntermediateFailure(action.index);
      break;
    case ChaosAction::Kind::kSweepRecover:
      // Two-round grace: anything whose advertised watermark is further
      // behind than two advance periods is declared dead.
      cluster_->RecoverSilentIntermediates(wm - 2 * config_.advance_period);
      break;
    case ChaosAction::Kind::kDeclareLocalDead:
      cluster_->DeclareLocalDead(action.index);
      break;
    case ChaosAction::Kind::kReattachLocal:
      cluster_->ReattachLocal(action.index);
      break;
    case ChaosAction::Kind::kPartitionLocal:
      cluster_->PartitionLocalUplink(action.index, /*down=*/true);
      break;
    case ChaosAction::Kind::kHealLocal:
      cluster_->PartitionLocalUplink(action.index, /*down=*/false);
      break;
  }
}

int ChaosRunner::Run(const ChaosSchedule& schedule) {
  std::vector<ChaosAction> actions = schedule.actions;
  std::stable_sort(actions.begin(), actions.end(),
                   [](const ChaosAction& a, const ChaosAction& b) {
                     return a.at_watermark < b.at_watermark;
                   });
  size_t next_action = 0;
  const int num_locals = cluster_->topology().num_locals;
  int rounds = 0;
  std::vector<Event> batch;
  for (Timestamp wm = config_.start + config_.advance_period;
       wm - config_.advance_period < config_.end;
       wm += config_.advance_period) {
    wm = std::min(wm, config_.end);
    const Timestamp round_start = wm - config_.advance_period;
    for (int local = 0; local < num_locals; ++local) {
      // Faults strike mid-round, after half the locals have ingested: the
      // struck subtree holds partially merged, unforwarded entries — the
      // genuinely in-flight data that replay-on-reattach must recover.
      // Round boundaries are quiescent (everything acked), so injecting
      // there would never exercise the resend path.
      if (local == num_locals / 2) {
        while (next_action < actions.size() &&
               actions[next_action].at_watermark <= wm) {
          Apply(actions[next_action], wm);
          ++next_action;
        }
      }
      // Stream content depends only on (seed, local, round): the disturbed
      // and baseline runs ingest byte-identical inputs.
      Rng rng(config_.seed ^ (static_cast<uint64_t>(local) << 32) ^
              static_cast<uint64_t>(rounds));
      batch.clear();
      for (int k = 0; k < config_.events_per_local_per_round; ++k) {
        Event e;
        e.ts = round_start + (static_cast<Timestamp>(k) *
                              config_.advance_period) /
                                 config_.events_per_local_per_round;
        e.key = static_cast<uint32_t>(rng.NextBounded(config_.num_keys));
        e.value = static_cast<double>(rng.NextInRange(0, config_.max_value));
        batch.push_back(e);
      }
      cluster_->IngestAt(local, batch.data(), batch.size());
    }
    cluster_->Advance(std::max(config_.start, wm - config_.watermark_lag));
    ++rounds;
    if (config_.round_sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.round_sleep_ms));
    }
  }
  // Late heals/reattaches: without them, data buffered behind a dead uplink
  // would never flush and the baseline comparison would be vacuous.
  for (; next_action < actions.size(); ++next_action) {
    Apply(actions[next_action], config_.end);
  }
  const Timestamp final_wm = config_.final_watermark != kNoTimestamp
                                 ? config_.final_watermark
                                 : config_.end + 4 * config_.advance_period;
  cluster_->Advance(final_wm);
  cluster_->Drain();
  return rounds;
}

bool ChaosRunsMatch(const std::string& baseline_canonical,
                    const std::string& disturbed_canonical) {
  if (baseline_canonical == disturbed_canonical) return true;
  obs::NotifyFlightFailure("chaos_violation");
  return false;
}

ChaosSchedule MakeSeededSchedule(uint64_t seed, int num_intermediates,
                                 int num_locals,
                                 const ChaosStreamConfig& config) {
  ChaosSchedule schedule;
  Rng rng(seed);
  const int64_t rounds =
      (config.end - config.start) / config.advance_period;
  auto round_wm = [&](int64_t r) {
    return config.start + r * config.advance_period;
  };
  // Leave the first and last quarter undisturbed so every fault has live
  // traffic before it (something to replay) and after it (recovery visible).
  const int64_t lo = std::max<int64_t>(1, rounds / 4);
  const int64_t hi = std::max<int64_t>(lo + 1, 3 * rounds / 4);
  if (num_intermediates > 0) {
    schedule.actions.push_back(
        {ChaosAction::Kind::kCrashIntermediate,
         round_wm(rng.NextInRange(lo, hi)),
         static_cast<int>(rng.NextBounded(
             static_cast<uint64_t>(num_intermediates)))});
  }
  if (num_locals > 0) {
    const int local =
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_locals)));
    const int64_t dead_at = rng.NextInRange(lo, hi);
    schedule.actions.push_back(
        {ChaosAction::Kind::kDeclareLocalDead, round_wm(dead_at), local});
    schedule.actions.push_back({ChaosAction::Kind::kReattachLocal,
                                round_wm(std::min(hi, dead_at + 2)), local});
  }
  if (num_locals > 1) {
    const int local =
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_locals)));
    const int64_t down_at = rng.NextInRange(lo, hi);
    schedule.actions.push_back(
        {ChaosAction::Kind::kPartitionLocal, round_wm(down_at), local});
    schedule.actions.push_back({ChaosAction::Kind::kHealLocal,
                                round_wm(std::min(hi, down_at + 1)), local});
  }
  return schedule;
}

}  // namespace desis
