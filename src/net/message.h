#ifndef DESIS_NET_MESSAGE_H_
#define DESIS_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/serde.h"
#include "core/slicer.h"

namespace desis {

/// Wire message kinds exchanged between nodes.
enum class MessageType : uint8_t {
  /// Batched raw events (centralized forwarding; root-only query-groups).
  kEventBatch = 0,
  /// One Desis slice partial: operator states per lane, tagged with the
  /// slice id and time range (§5.1).
  kSlicePartial,
  /// Event-time watermark heartbeat.
  kWatermark,
  /// ASCII payload (the Disco baseline serializes events and window
  /// partials as strings, §6.4.1).
  kText,
  /// Cumulative stable-watermark acknowledgement flowing *downstream*
  /// (parent -> child): "the root has consumed everything up to W". Senders
  /// evict resend-buffer entries whose data ends at or before W. Only
  /// emitted when crash recovery is enabled (docs/FAULT_TOLERANCE.md).
  kAck,
};

/// Wire-frame header: 1B type + 4B group id + 4B payload-length prefix.
/// Single source of truth for WireBytes() and the frame codec below.
inline constexpr size_t kWireHeaderBytes =
    sizeof(uint8_t) + sizeof(uint32_t) + sizeof(uint32_t);
static_assert(kWireHeaderBytes == 9, "wire header layout changed");

/// Replay provenance: one (origin node, unit) contribution carried by a
/// data message under crash recovery. `unit` is the origin's monotone slice
/// id (kSlicePartial) or forward-batch chunk id (kEventBatch); intermediates
/// concatenate the provenance of everything they merge, so the root can
/// track a per-(group, origin) frontier of applied units and reattaching
/// nodes can trim their replay to exactly the not-yet-applied suffix.
struct ProvenanceEntry {
  uint32_t origin = 0;
  uint64_t unit = 0;
};

/// Per-entry wire cost of provenance (4B origin + 8B unit), plus a 2B count
/// prefix on frames that carry any.
inline constexpr size_t kProvenanceEntryBytes =
    sizeof(uint32_t) + sizeof(uint64_t);

/// A serialized message. `payload` is the body; WireBytes() is the size
/// accounted by channels as network overhead. `origins` is empty unless
/// crash recovery is enabled, so default runs stay byte-identical.
struct Message {
  MessageType type = MessageType::kEventBatch;
  uint32_t group_id = 0;
  std::vector<uint8_t> payload;
  std::vector<ProvenanceEntry> origins = {};

  /// Bytes on the wire: header + payload (+ provenance when present).
  size_t WireBytes() const {
    return kWireHeaderBytes + payload.size() +
           (origins.empty()
                ? 0
                : sizeof(uint16_t) + origins.size() * kProvenanceEntryBytes);
  }
};

/// Serializes a full frame (header + payload) / parses it back. Channels
/// that put real bytes on a wire use this; WireBytes() must always equal
/// EncodeFrame().size().
std::vector<uint8_t> EncodeFrame(const Message& message);
Message DecodeFrame(const std::vector<uint8_t>& frame);

/// Payload of kSlicePartial.
struct SlicePartialMsg {
  uint64_t slice_id = 0;
  Timestamp start = 0;
  Timestamp end = 0;
  Timestamp last_event_ts = kNoTimestamp;
  /// Sender's event-time watermark when the slice was shipped.
  Timestamp watermark = kNoTimestamp;
  std::vector<PartialAggregate> lanes;
  std::vector<uint64_t> lane_events;
  std::vector<Timestamp> lane_last_ts;
  std::vector<EpInfo> eps;

  uint64_t TotalEvents() const {
    uint64_t total = 0;
    for (uint64_t n : lane_events) total += n;
    return total;
  }

  static SlicePartialMsg FromRecord(const SliceRecord& rec,
                                    Timestamp watermark);
  /// Inverse of FromRecord (the shipped watermark is transport metadata and
  /// is dropped): the root hands plain SliceRecords to the core-side
  /// RootAssembler. Rvalue-qualified — moves the lane payload out.
  SliceRecord ToRecord() && {
    SliceRecord rec;
    rec.id = slice_id;
    rec.start = start;
    rec.end = end;
    rec.last_event_ts = last_event_ts;
    rec.lanes = std::move(lanes);
    rec.lane_events = std::move(lane_events);
    rec.lane_last_ts = std::move(lane_last_ts);
    rec.eps = std::move(eps);
    return rec;
  }
  void SerializeTo(ByteWriter& out) const;
  static SlicePartialMsg DeserializeFrom(ByteReader& in);
};

/// Encodes a batch of raw events (24 bytes per event on the wire).
std::vector<uint8_t> EncodeEventBatch(const std::vector<Event>& events);
std::vector<Event> DecodeEventBatch(const std::vector<uint8_t>& payload);

/// Encodes a watermark payload.
std::vector<uint8_t> EncodeWatermark(Timestamp watermark);
Timestamp DecodeWatermark(const std::vector<uint8_t>& payload);

}  // namespace desis

#endif  // DESIS_NET_MESSAGE_H_
