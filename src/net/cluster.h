#ifndef DESIS_NET_CLUSTER_H_
#define DESIS_NET_CLUSTER_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine_iface.h"
#include "core/query.h"
#include "mem/memory_governor.h"
#include "net/node.h"
#include "obs/health_monitor.h"
#include "opt/group_index.h"

namespace desis {

class Transport;

/// Which system the simulated cluster runs (§6.1.1).
enum class ClusterSystem : uint8_t {
  kDesis = 0,    // decentralized, slice partials, cross-function sharing
  kDisco,        // decentralized, per-window partials, string wire format
  kScotty,       // centralized: raw events to the root, Scotty engine there
  kCeBuffer,     // centralized: raw events to the root, CeBuffer there
};

std::string ToString(ClusterSystem system);

/// Topology shape: `num_locals` leaf nodes attached round-robin to
/// `num_intermediates` intermediate nodes (0 = attach directly to the
/// root), intermediates attached to the single root (§2.4). With
/// `intermediate_layers` > 1, the intermediates form a chain of layers —
/// the "multiple hops between edge devices and the data center" the paper
/// studies (§6.4.1): locals attach to the lowest layer, each layer
/// forwards/merges into the one above, the top layer feeds the root.
struct ClusterTopology {
  int num_locals = 1;
  int num_intermediates = 1;
  int intermediate_layers = 1;
};

/// Cluster-wide engine knobs.
struct ClusterOptions {
  /// Shard threads per Desis local node (core/sharded_engine.h): each
  /// local's shardable pushed-down groups run on a key-sharded engine pool
  /// and per-shard slices are merged intra-node before shipping. 0 keeps
  /// the seed single-threaded path byte-identical; ignored by the other
  /// systems.
  int engine_shards = 0;
  /// Runs the cost-based optimizer (src/opt/) over the analyzed query-
  /// groups at Configure: per-lane operator masks and factor-window
  /// rewriting (coarse windows assemble from finer tumbling feeders'
  /// composites). Off by default — the static plan is the seed baseline.
  /// Desis system only; ignored by the baselines.
  bool optimize_plans = false;
  /// Crash recovery (docs/FAULT_TOLERANCE.md): per-uplink resend buffers,
  /// provenance-tagged messages, stable-watermark acks, and the
  /// CrashIntermediate / DeclareLocalDead / ReattachLocal operations. Off
  /// by default — wire traffic stays byte-identical to the seed. Desis
  /// system only; Configure rejects it for the baselines.
  RecoveryOptions recovery;
  /// Per-local-node memory budget (src/mem/): each Desis local's slice
  /// state is byte-accounted against `memory.budget_bytes` and oversized
  /// sort buffers spill to disk runs (each edge device governs its own
  /// RAM, so the budget is per node, not cluster-wide). budget_bytes == 0
  /// keeps the ungoverned seed path byte-identical. Desis system only;
  /// Configure rejects a non-zero budget for the baselines.
  mem::MemoryOptions memory;
  /// Live health watchdog (src/obs/health_monitor.h): an opt-in background
  /// sampler thread that tracks per-node heartbeats and raises typed
  /// anomalies (health.anomalies{kind,node}). With `auto_recover` it
  /// detects silent intermediates from their frozen heartbeats and invokes
  /// RecoverSilentIntermediates without any driver involvement. Off by
  /// default; inert (no thread) under -DDESIS_OBS=OFF.
  obs::WatchdogOptions watchdog;
};

/// An in-process decentralized cluster: builds the topology, deploys the
/// chosen system on it, counts every byte crossing a link, and meters
/// per-node CPU busy time (see DESIGN.md for the pipeline throughput model
/// derived from these meters). Inter-node delivery is pluggable
/// (src/transport/): synchronous-inline by default (deterministic, the
/// seed behaviour), or threaded / simulated-lossy via set_transport().
///
/// Threading contract under a concurrent transport: each local index may
/// be driven by at most one thread at a time (the usual one-driver-thread-
/// per-edge-node deployment); membership and query operations may run
/// concurrently with ingestion from any thread. Read stats / StatsReport
/// only after Drain().
class Cluster {
 public:
  Cluster(ClusterSystem system, ClusterTopology topology,
          ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Replaces the delivery channel. Call before Configure(). The cluster
  /// takes ownership and shuts the transport down on destruction.
  void set_transport(std::unique_ptr<Transport> transport);
  Transport* transport() const { return transport_; }

  /// Deploys the query set on all nodes. Call once before ingesting.
  Status Configure(const std::vector<Query>& queries);

  /// Final results (root emission) callback. Under a threaded transport the
  /// sink runs on the root's delivery worker.
  void set_sink(WindowSink sink);

  /// Feeds events (non-decreasing ts per local) into local `local_idx`.
  /// The whole span is handed to the node's batched ingest: Desis locals
  /// amortize punctuation checks and operator folds over in-slice runs,
  /// forwarding locals bulk-append to their wire batches.
  void IngestAt(int local_idx, const Event* events, size_t count);

  /// Advances every active local's watermark (propagates to the root).
  void Advance(Timestamp watermark);

  /// Advances a single local's watermark (per-node drivers, §3.2).
  void AdvanceAt(int local_idx, Timestamp watermark);

  /// Blocks until every in-flight message has been delivered and handled
  /// (transport Flush). No-op with the default inline transport.
  void Drain();

  // --- Runtime membership and query management (§3.2, Desis system only) --

  /// Joins a new local node to the cluster; returns its local index. The
  /// node starts windowing with its first event.
  Result<int> AddLocalNode();

  /// Removes a local node from the membership; upstream nodes stop waiting
  /// for its watermarks immediately.
  Status RemoveLocalNode(int local_idx);

  /// Removes every local whose last advanced watermark is below
  /// `min_watermark` (the connection-timeout sweep); returns the removed
  /// local indices so callers can inform users.
  std::vector<int> RemoveSilentLocals(Timestamp min_watermark);

  // --- Crash recovery & fault injection (docs/FAULT_TOLERANCE.md) --------
  //
  // All operations require `ClusterOptions::recovery.enabled` and the Desis
  // system. They must not race ingestion on the affected locals: call them
  // from the driver thread between ingest rounds (the chaos harness does).

  /// Crashes intermediate `idx` (flat index, layers concatenated top to
  /// bottom): severs its links, force-flushes held entries on its ancestor
  /// chain, re-elects a parent for every orphaned child (surviving
  /// same-layer intermediate with the fewest active children, ties to the
  /// lowest node id, else the dead node's parent), replays unacked data
  /// trimmed against the root's provenance frontiers, and only then
  /// detaches the dead node upstream — its frozen pinned watermark holds
  /// the root back until the replay has landed, so zero windows are lost.
  Status CrashIntermediate(int intermediate_idx);

  /// Declares local `idx` unreachable: its uplink goes dark (when the
  /// transport models partitions) but the membership is kept, so the root
  /// pins at the local's last advertised watermark instead of consuming
  /// past its buffered data. Ingest may continue — sends accumulate in the
  /// resend buffer until ReattachLocal replays them.
  Status DeclareLocalDead(int local_idx);

  /// Re-elects a parent for a dead-declared local, replays its unacked
  /// data (frontier-trimmed), re-advertises its watermark, and detaches
  /// the old uplink slot last.
  Status ReattachLocal(int local_idx);

  /// The silent-node timeout sweep applied one layer up: crashes every
  /// alive intermediate whose advertised watermark is below
  /// `min_watermark`. Returns the crashed intermediate indices.
  std::vector<int> RecoverSilentIntermediates(Timestamp min_watermark);

  /// Transport-level failure injection only: severs the intermediate's
  /// links without informing the cluster — the realistic silent crash that
  /// RecoverSilentIntermediates later detects. No-op on transports without
  /// Disconnect support (inline/threaded).
  Status InjectIntermediateFailure(int intermediate_idx);

  /// Takes the uplink of local `idx` down or back up. Unsupported on
  /// transports that cannot model partitions.
  Status PartitionLocalUplink(int local_idx, bool down);

  bool intermediate_dead(int idx) const {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    return intermediate_dead_[static_cast<size_t>(idx)];
  }
  bool local_orphaned(int idx) const {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    return local_orphaned_[static_cast<size_t>(idx)];
  }

  /// Recovery counters (deterministic under SimLink virtual time; also in
  /// the StatsReport() "recovery" section).
  uint64_t recovery_reattaches() const { return recovery_reattaches_; }
  uint64_t recovery_replayed() const { return recovery_replayed_; }

  /// Registers a new query on every node at runtime. Incremental group
  /// maintenance (§3.2 at scale): the query joins a compatible existing
  /// group when one exists — landing in the exact group a cold start would
  /// have chosen (opt::GroupIndex replays the analyzer's probe order) — and
  /// only the affected group is touched on each node; every other group's
  /// slices and results are byte-identical to an undisturbed run. Cost is
  /// O(affected group), independent of the resident query count.
  Status AddQuery(const Query& query);

  /// Stops a running query's result emission; when its group loses the
  /// last member the group is torn down on every node. O(affected group).
  Status RemoveQuery(QueryId id);

  /// Live query-group count (Desis system; 0 before Configure).
  size_t num_query_groups() const {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    return group_index_.num_groups();
  }

  /// Snapshot of the live groups, id-ordered (tests/inspection).
  std::vector<QueryGroup> QueryGroupsSnapshot() const {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    return group_index_.Snapshot();
  }

  bool local_active(int local_idx) const {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    return !local_removed_[static_cast<size_t>(local_idx)];
  }

  ClusterSystem system() const { return system_; }
  const ClusterTopology& topology() const { return topology_; }
  const ClusterOptions& options() const { return options_; }
  uint64_t results() const { return results_; }

  int num_locals() const { return topology_.num_locals; }
  int num_intermediates() const { return topology_.num_intermediates; }

  /// The per-local memory governor when ClusterOptions::memory is active
  /// on a Desis cluster; nullptr otherwise. Budget/peak/spill counters for
  /// the bounded-memory benches and tests.
  const mem::MemoryGovernor* LocalMemoryGovernor(int local_idx) const;

  const NodeStats& local_stats(int i) const { return locals_raw_[i]->net_stats(); }
  const NodeStats& intermediate_stats(int i) const {
    return intermediates_raw_[i]->net_stats();
  }
  const NodeStats& root_stats() const { return root_raw_->net_stats(); }

  /// Aggregate network bytes sent by all nodes of a role (the paper's
  /// per-role network overhead, Fig 11).
  uint64_t BytesSentByRole(NodeRole role) const;

  /// Maximum busy time over the nodes of a role, and over all nodes — the
  /// pipeline bottleneck (wall time if nodes ran concurrently).
  int64_t MaxBusyNsByRole(NodeRole role) const;
  int64_t MaxBusyNs() const;

  /// One JSON object aggregating per-role network/CPU/queue counters plus
  /// run metadata (system, topology, transport, results) — the machine-
  /// readable form of the per-role stats the benches used to recompute by
  /// hand. With obs attached, gains an "obs" section (registry snapshot +
  /// span counters — safe to poll mid-run; full span payloads are only
  /// exported by the caller after Drain()). Call after Drain() for exact
  /// totals.
  std::string StatsReport() const;

  /// Attaches observability sinks to the cluster and every node (current
  /// and future): per-node series land in `registry`, slice-lifecycle
  /// spans in `tracer` (either may be null). Window emission at the root
  /// records a kWindowEmitted span. Call any time before traffic; both
  /// must outlive the cluster — with a watchdog thread on, health gauges
  /// are published into `registry` until the destructor joins it.
  void AttachObs(obs::MetricsRegistry* registry, obs::SliceTracer* tracer);
  obs::MetricsRegistry* obs_registry() const { return obs_registry_; }
  obs::SliceTracer* obs_tracer() const { return obs_tracer_; }

  /// Publishes every node's health cells (watermark lag, backlog, reorder
  /// depth — see docs/METRICS.md) into the attached registry's gauges.
  /// Cheap (relaxed reads + gauge stores, no locks taken on node state) and
  /// safe to call mid-run from any thread. Runs automatically every
  /// kHealthSamplePeriod watermark advances, at Drain(), and at
  /// StatsReport(); call directly for a finer-grained monitor.
  void SampleHealth() const;

  /// Watermark advances between automatic SampleHealth() runs.
  static constexpr uint64_t kHealthSamplePeriod = 64;

  // --- Flight recorder & health watchdog (src/obs/) ----------------------

  /// Writes every node's flight-recorder dump (one JSON document per node,
  /// "flight-<node_id>.json") into `dir`; `reason` is stamped into each
  /// document. Returns the written paths. Safe from any thread, including
  /// failure paths that already hold cluster locks — it only touches the
  /// recorder rings, never the membership. Fires automatically (into
  /// $DESIS_FLIGHT_DUMP_DIR, default ".") on a flight failure notification:
  /// chaos-harness violations, RootAssembler invariant breaks, and
  /// silent_node watchdog anomalies.
  std::vector<std::string> DumpFlightRecorders(const std::string& dir,
                                               const std::string& reason) const;

  /// Watchdog counters (0 when the watchdog is disabled or OBS is off).
  uint64_t watchdog_samples() const;
  uint64_t watchdog_anomalies() const;
  uint64_t watchdog_auto_recoveries() const;
  bool watchdog_running() const;
  /// One synchronous watchdog sampling pass on the caller's thread
  /// (deterministic tests; no-op when the watchdog is disabled).
  void TickWatchdogForTest();

 private:
  Node* ParentForLocal(size_t ordinal) const;
  Status RemoveLocalNodeLocked(int local_idx);
  void WireNode(Node* node);

  // Crash-recovery internals (membership_mu_ held exclusively).
  Status CrashIntermediateLocked(int intermediate_idx);
  Status CheckRecoveryOp() const;
  /// Force-flushes held entries at every intermediate on the parent chain
  /// starting at `from` (inclusive), bottom-up, flushing the transport
  /// between layers so the root's frontiers become authoritative.
  void ForceFlushChain(Node* from);
  Node::ReplayFrontiers SnapshotFrontiers();
  /// Surviving same-layer intermediate with the fewest active children
  /// (ties: lowest node id); falls back to the nearest alive ancestor.
  Node* ElectParentInLayer(size_t layer, Node* dead);
  /// Attaches `orphan` to `new_parent`, replays its unacked data trimmed by
  /// `frontiers`, re-advertises its watermark, and records the obs trail.
  void ReattachOrphan(Node* orphan, Node* new_parent,
                      const Node::ReplayFrontiers& frontiers);
  bool IsDeadIntermediate(const Node* node) const;
  int64_t RecoveryNowUs() const;
  void FinishRecoveryOp(int64_t t0_us);

  // Watchdog internals.
  /// Lock-free snapshot of every node's health cells for the monitor's
  /// detectors (membership_mu_ shared; relaxed reads only).
  std::vector<obs::NodeProbe> ProbeHealth() const;
  /// Builds hooks, starts the sampler thread, and registers the process
  /// failure hook that auto-dumps the recorders. Called from Configure
  /// when options_.watchdog.enabled.
  void StartWatchdog();
  /// Watchdog-thread anomaly sink: bumps health.anomalies{kind,node},
  /// records a kAnomaly event on the suspect's ring, and — for
  /// silent_node — notifies the flight failure hook (auto-dump).
  void OnWatchdogAnomaly(obs::AnomalyKind kind, uint32_t node_id);

  ClusterSystem system_;
  ClusterTopology topology_;
  ClusterOptions options_;
  Transport* transport_;
  std::unique_ptr<Transport> owned_transport_;
  /// Guards the membership vectors below (exclusive for membership/query
  /// ops, shared for per-event driver entry points).
  mutable std::shared_mutex membership_mu_;
  /// One lock per local index: serializes everything that executes *on*
  /// that leaf node (ingest, advance, runtime query deployment).
  std::vector<std::unique_ptr<std::mutex>> local_mu_;
  std::vector<std::unique_ptr<Node>> nodes_;  // owns everything
  std::vector<LocalIngest*> locals_;
  std::vector<Node*> locals_raw_;
  std::vector<bool> local_removed_;
  std::vector<Timestamp> local_last_advance_;
  std::vector<Node*> intermediates_raw_;
  std::vector<bool> intermediate_dead_;
  std::vector<bool> local_orphaned_;
  Node* root_raw_ = nullptr;
  WindowSink sink_;
  /// Incremented from the root's delivery worker; read by monitors mid-run.
  obs::RelaxedU64 results_;
  /// AdvanceAt() calls since the last automatic health sample.
  obs::RelaxedU64 health_sample_ticks_;
  bool configured_ = false;
  obs::MetricsRegistry* obs_registry_ = nullptr;
  obs::SliceTracer* obs_tracer_ = nullptr;
  obs::Counter* results_counter_ = nullptr;   // cluster.results
  obs::Histogram* ingest_batch_hist_ = nullptr;  // cluster.ingest_batch_ns
  // Desis runtime state (for AddLocalNode / AddQuery).
  std::vector<QueryGroup> desis_groups_;
  /// Incrementally maintained group membership (source of truth after
  /// Configure); guarded by membership_mu_.
  opt::GroupIndex group_index_{DeploymentMode::kDecentralized,
                               SharingPolicy::kCrossFunction};
  obs::Histogram* churn_add_hist_ = nullptr;     // opt.group_churn_ns{op=add}
  obs::Histogram* churn_remove_hist_ = nullptr;  // opt.group_churn_ns{op=remove}
  // Crash recovery: cluster-wide counters + obs handles.
  obs::RelaxedU64 recovery_reattaches_;
  obs::RelaxedU64 recovery_replayed_;
  obs::Counter* reattach_counter_ = nullptr;       // recovery.reattaches
  obs::Histogram* reattach_latency_hist_ = nullptr;  // recovery.reattach_latency_us
  uint32_t next_node_id_ = 0;
  uint32_t next_group_id_ = 0;
  /// Per-node flight recorders, created at WireNode and owned here (nodes
  /// hold raw pointers). flights_mu_ is a dedicated mutex — NOT
  /// membership_mu_ — so DumpFlightRecorders stays callable from failure
  /// paths that already hold the membership lock. flights_[i] pairs with
  /// the node it was wired to; entries are append-only.
  mutable std::mutex flights_mu_;
  std::vector<std::pair<const Node*, std::unique_ptr<obs::FlightRecorder>>>
      flights_;
  std::unique_ptr<obs::HealthMonitor> monitor_;
};

}  // namespace desis

#endif  // DESIS_NET_CLUSTER_H_
