#include "net/cluster.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>

#include "baselines/ce_buffer.h"
#include "baselines/de_sw.h"
#include "net/desis_nodes.h"
#include "net/disco_nodes.h"
#include "net/forward_nodes.h"
#include "opt/factor_planner.h"
#include "transport/transport.h"

namespace desis {

std::string ToString(ClusterSystem system) {
  switch (system) {
    case ClusterSystem::kDesis: return "Desis";
    case ClusterSystem::kDisco: return "Disco";
    case ClusterSystem::kScotty: return "Scotty";
    case ClusterSystem::kCeBuffer: return "CeBuffer";
  }
  return "unknown";
}

Cluster::Cluster(ClusterSystem system, ClusterTopology topology,
                 ClusterOptions options)
    : system_(system),
      topology_(topology),
      options_(options),
      transport_(&DefaultInlineTransport()) {}

Cluster::~Cluster() {
  // Stop delivery workers while the nodes they drive are still alive.
  transport_->Shutdown();
}

void Cluster::set_transport(std::unique_ptr<Transport> transport) {
  owned_transport_ = std::move(transport);
  transport_ = owned_transport_ ? owned_transport_.get()
                                : &DefaultInlineTransport();
}

void Cluster::WireNode(Node* node) {
  node->set_transport(transport_);
  transport_->AddNode(node);
  if (obs_registry_ != nullptr || obs_tracer_ != nullptr) {
    node->AttachObs(obs_registry_, obs_tracer_);
  }
}

void Cluster::AttachObs(obs::MetricsRegistry* registry,
                        obs::SliceTracer* tracer) {
  obs_registry_ = registry;
  obs_tracer_ = tracer;
  results_counter_ = nullptr;
  ingest_batch_hist_ = nullptr;
  churn_add_hist_ = nullptr;
  churn_remove_hist_ = nullptr;
  if (registry != nullptr) {
    const obs::Labels labels = {{"system", ToString(system_)}};
    results_counter_ = registry->GetCounter("cluster.results", labels,
                                            "windows");
    ingest_batch_hist_ =
        registry->GetHistogram("cluster.ingest_batch_ns", labels, "ns");
    churn_add_hist_ =
        registry->GetHistogram("opt.group_churn_ns", {{"op", "add"}}, "ns");
    churn_remove_hist_ =
        registry->GetHistogram("opt.group_churn_ns", {{"op", "remove"}}, "ns");
  }
  if (tracer != nullptr) {
    // Ring overwrites surface as a counter so span loss is visible in every
    // export, not only to callers polling the tracer.
    tracer->set_drop_counter(
        registry != nullptr
            ? registry->GetCounter("trace.dropped_spans", {}, "spans")
            : nullptr);
  }
  for (const auto& node : nodes_) node->AttachObs(registry, tracer);
}

void Cluster::SampleHealth() const {
  if (obs_registry_ == nullptr) return;
  std::shared_lock<std::shared_mutex> lock(membership_mu_);
  for (const auto& node : nodes_) node->PublishHealth();
}

void Cluster::set_sink(WindowSink sink) { sink_ = std::move(sink); }

Status Cluster::Configure(const std::vector<Query>& queries) {
  if (configured_) return Status::Internal("cluster already configured");
  if (topology_.num_locals < 1) {
    return Status::InvalidArgument("need at least one local node");
  }
  if (topology_.intermediate_layers < 1) {
    return Status::InvalidArgument("need at least one intermediate layer");
  }
  for (const Query& q : queries) {
    if (auto s = q.Validate(); !s.ok()) return s;
  }

  uint32_t next_id = 0;
  // Runs on the root's delivery worker under a threaded transport; the obs
  // sinks are lock-free so recording from there is safe.
  auto sink = [this](const WindowResult& r) {
    ++results_;
    if (results_counter_ != nullptr) results_counter_->Add();
    if (obs_tracer_ != nullptr) {
      obs_tracer_->Record(obs::SlicePhase::kWindowEmitted, /*slice_id=*/0,
                          /*group_id=*/0, r.query_id,
                          root_raw_ != nullptr ? root_raw_->id() : 0,
                          obs::kSpanRoleRoot, r.window_end);
    }
    if (sink_) sink_(r);
  };

  // Per-system node factories; the topology wiring below is shared.
  std::function<std::unique_ptr<Node>(uint32_t)> make_intermediate;
  std::function<std::unique_ptr<Node>(uint32_t)> make_local;

  switch (system_) {
    case ClusterSystem::kDesis: {
      QueryAnalyzer analyzer(DeploymentMode::kDecentralized,
                             SharingPolicy::kCrossFunction);
      auto groups = analyzer.Analyze(queries);
      if (!groups.ok()) return groups.status();
      if (options_.optimize_plans) opt::PlanGroups(groups.value());
      desis_groups_ = groups.value();
      group_index_.Seed(desis_groups_);
      auto root = std::make_unique<DesisRootNode>(next_id++, desis_groups_);
      root->set_sink(sink);
      root_raw_ = root.get();
      nodes_.push_back(std::move(root));
      make_intermediate = [](uint32_t id) {
        return std::make_unique<DesisIntermediateNode>(id);
      };
      make_local = [this](uint32_t id) {
        return std::make_unique<DesisLocalNode>(
            id, desis_groups_, /*forward_batch_size=*/512,
            options_.engine_shards);
      };
      break;
    }
    case ClusterSystem::kDisco: {
      auto root = std::make_unique<DiscoRootNode>(next_id++, queries);
      root->set_sink(sink);
      root_raw_ = root.get();
      nodes_.push_back(std::move(root));
      make_intermediate = [](uint32_t id) {
        return std::make_unique<DiscoIntermediateNode>(id);
      };
      make_local = [queries](uint32_t id) {
        return std::make_unique<DiscoLocalNode>(id, queries);
      };
      break;
    }
    case ClusterSystem::kScotty:
    case ClusterSystem::kCeBuffer: {
      std::unique_ptr<StreamEngine> engine;
      if (system_ == ClusterSystem::kScotty) {
        engine = std::make_unique<ScottyEngine>();
      } else {
        engine = std::make_unique<CeBufferEngine>();
      }
      if (auto s = engine->Configure(queries); !s.ok()) return s;
      engine->set_sink(sink);
      auto root = std::make_unique<EngineRootNode>(next_id++, std::move(engine));
      root_raw_ = root.get();
      nodes_.push_back(std::move(root));
      make_intermediate = [](uint32_t id) {
        return std::make_unique<RelayIntermediateNode>(id);
      };
      make_local = [](uint32_t id) {
        return std::make_unique<ForwardingLocalNode>(id);
      };
      break;
    }
  }

  // Intermediate layers, top (attached to root) to bottom.
  std::vector<Node*> layer_above = {root_raw_};
  for (int layer = 0;
       layer < (topology_.num_intermediates > 0 ? topology_.intermediate_layers : 0);
       ++layer) {
    std::vector<Node*> this_layer;
    for (int i = 0; i < topology_.num_intermediates; ++i) {
      auto node = make_intermediate(next_id++);
      this_layer.push_back(node.get());
      intermediates_raw_.push_back(node.get());
      layer_above[static_cast<size_t>(i) % layer_above.size()]->AttachChild(
          node.get());
      nodes_.push_back(std::move(node));
    }
    layer_above = std::move(this_layer);
  }

  for (int i = 0; i < topology_.num_locals; ++i) {
    auto node = make_local(next_id++);
    locals_.push_back(dynamic_cast<LocalIngest*>(node.get()));
    locals_raw_.push_back(node.get());
    layer_above[static_cast<size_t>(i) % layer_above.size()]->AttachChild(
        node.get());
    nodes_.push_back(std::move(node));
  }

  local_removed_.assign(locals_.size(), false);
  local_last_advance_.assign(locals_.size(), kNoTimestamp);
  local_mu_.clear();
  for (size_t i = 0; i < locals_.size(); ++i) {
    local_mu_.push_back(std::make_unique<std::mutex>());
  }
  // Route every node through the transport (workers spin up here for
  // queue-based transports; setup above never sends).
  for (const auto& node : nodes_) WireNode(node.get());
  next_node_id_ = next_id;
  next_group_id_ = 0;
  for (const QueryGroup& g : desis_groups_) {
    next_group_id_ = std::max(next_group_id_, g.id + 1);
  }
  configured_ = true;
  return Status::OK();
}

Node* Cluster::ParentForLocal(size_t ordinal) const {
  if (intermediates_raw_.empty()) return root_raw_;
  // The bottom layer holds the last num_intermediates entries.
  const size_t n = static_cast<size_t>(topology_.num_intermediates);
  const size_t bottom_begin = intermediates_raw_.size() - n;
  return intermediates_raw_[bottom_begin + ordinal % n];
}

void Cluster::AdvanceAt(int local_idx, Timestamp watermark) {
  LocalIngest* local = nullptr;
  std::mutex* mu = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    const size_t i = static_cast<size_t>(local_idx);
    if (local_removed_[i]) return;
    // Written only by this local's single driver thread (see the class
    // threading contract); membership ops read it under the exclusive lock.
    local_last_advance_[i] = watermark;
    local = locals_[i];
    mu = local_mu_[i].get();
  }
  {
    std::lock_guard<std::mutex> lock(*mu);
    local->Advance(watermark);
  }
  transport_->Pump();
  // Low-overhead periodic snapshot: health gauges refresh on a watermark
  // cadence, not per event, so monitors polling StatsReport() mid-run see
  // recent lag/backlog values without any hot-path cost.
  if (health_sample_ticks_++ % kHealthSamplePeriod == kHealthSamplePeriod - 1) {
    SampleHealth();
  }
}

void Cluster::Drain() {
  transport_->Flush();
  SampleHealth();
}

Result<int> Cluster::AddLocalNode() {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime membership requires the Desis system");
  }
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  // Deploy the *live* group set (runtime joins/retires included), not the
  // cold-start snapshot: the index is the source of truth after Configure.
  auto node = std::make_unique<DesisLocalNode>(
      next_node_id_++, group_index_.Snapshot(), /*forward_batch_size=*/512,
      options_.engine_shards);
  const int local_idx = static_cast<int>(locals_.size());
  locals_.push_back(node.get());
  locals_raw_.push_back(node.get());
  local_removed_.push_back(false);
  local_last_advance_.push_back(kNoTimestamp);
  local_mu_.push_back(std::make_unique<std::mutex>());
  WireNode(node.get());
  // Attach on the parent's delivery thread so membership growth is ordered
  // with its in-flight messages.
  Node* parent = ParentForLocal(static_cast<size_t>(local_idx));
  Node* child = node.get();
  transport_->ExecuteSync(parent, [parent, child] {
    parent->AttachChild(child);
  });
  nodes_.push_back(std::move(node));
  ++topology_.num_locals;
  return local_idx;
}

Status Cluster::RemoveLocalNodeLocked(int local_idx) {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime membership requires the Desis system");
  }
  if (local_idx < 0 || static_cast<size_t>(local_idx) >= locals_.size()) {
    return Status::NotFound("no such local node");
  }
  if (local_removed_[static_cast<size_t>(local_idx)]) {
    return Status::NotFound("local node already removed");
  }
  local_removed_[static_cast<size_t>(local_idx)] = true;
  Node* node = locals_raw_[static_cast<size_t>(local_idx)];
  // Detach on the parent's delivery thread, FIFO behind everything the
  // local already sent — its final watermark is honored, not lost.
  Node* parent = node->parent();
  const int child_index = node->child_index_at_parent();
  transport_->Execute(parent, [parent, child_index] {
    parent->DetachChild(child_index);
  });
  return Status::OK();
}

Status Cluster::RemoveLocalNode(int local_idx) {
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  return RemoveLocalNodeLocked(local_idx);
}

std::vector<int> Cluster::RemoveSilentLocals(Timestamp min_watermark) {
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  std::vector<int> removed;
  for (size_t i = 0; i < locals_.size(); ++i) {
    if (local_removed_[i]) continue;
    if (local_last_advance_[i] == kNoTimestamp ||
        local_last_advance_[i] < min_watermark) {
      if (RemoveLocalNodeLocked(static_cast<int>(i)).ok()) {
        removed.push_back(static_cast<int>(i));
      }
    }
  }
  return removed;
}

Status Cluster::AddQuery(const Query& query) {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime queries require the Desis system");
  }
  if (auto s = query.Validate(); !s.ok()) return s;
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  if (group_index_.ContainsQuery(query.id)) {
    return Status::AlreadyExists("query id already registered");
  }

  // Shard-pool carve-out: a dedup query or user-defined window joining a
  // pool-hosted group would make it unshardable mid-flight; isolate those
  // into their own (serially deployed) group instead. Root-only groups
  // never live in the pool, so count-measure queries are unaffected.
  const bool pool_breaker =
      options_.engine_shards > 0 && system_ == ClusterSystem::kDesis &&
      (query.deduplicate || query.window.type == WindowType::kUserDefined) &&
      query.window.measure != WindowMeasure::kCount;
  const opt::QueryPlacement placement =
      pool_breaker ? group_index_.AddQueryIsolated(query)
                   : group_index_.AddQuery(query);
  QueryGroup* group = group_index_.MutableFind(placement.gid);

  auto* root = static_cast<DesisRootNode*>(root_raw_);
  if (placement.new_group) {
    if (options_.optimize_plans) group->plan = opt::BuildGroupPlan(*group);
    // Fresh group: the classic full-deploy path (§3.2) — root first so the
    // assembler exists before the first shipped slice can reach it.
    const std::vector<QueryGroup> new_groups = {*group};
    transport_->ExecuteSync(
        root_raw_, [root, &new_groups] { root->AddGroups(new_groups); });
    for (size_t i = 0; i < locals_raw_.size(); ++i) {
      if (local_removed_[i]) continue;
      std::lock_guard<std::mutex> local_lock(*local_mu_[i]);
      static_cast<DesisLocalNode*>(locals_raw_[i])->AddGroups(new_groups);
    }
  } else {
    // Join an existing group, touching only that group on each node.
    // Locals first, collecting the maximum event timestamp any of them has
    // seen: per-local streams are non-decreasing and membership_mu_ is held
    // exclusively (no ingest runs concurrently), so every event at or
    // before `seen` sits in pre-add slices. The root then activation-gates
    // the new query past them (and past its own advanced watermark), so
    // the first emitted window covers only post-deploy folds.
    const uint32_t gid = placement.gid;
    const SelectionLane lane_def = group->lanes[placement.lane];
    Timestamp seen = kNoTimestamp;
    for (size_t i = 0; i < locals_raw_.size(); ++i) {
      if (local_removed_[i]) continue;
      std::lock_guard<std::mutex> local_lock(*local_mu_[i]);
      auto* local = static_cast<DesisLocalNode*>(locals_raw_[i]);
      local->AddQueryToGroup(gid, query, placement.lane, lane_def,
                             kNoTimestamp);
      seen = std::max(seen, local->last_event_ts());
    }
    const Timestamp active_from = seen == kNoTimestamp ? kNoTimestamp
                                                       : seen + 1;
    const Query& q = query;
    const uint32_t lane = placement.lane;
    transport_->ExecuteSync(root_raw_,
                            [root, gid, &q, lane, &lane_def, active_from] {
                              root->AddQueryToGroup(gid, q, lane, lane_def,
                                                    active_from);
                            });
  }
  if (churn_add_hist_ != nullptr) {
    churn_add_hist_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  return Status::OK();
}

Status Cluster::RemoveQuery(QueryId id) {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime queries require the Desis system");
  }
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  auto removal = group_index_.RemoveQuery(id);
  if (!removal.ok()) return removal.status();
  const uint32_t gid = removal.value().gid;
  auto* root = static_cast<DesisRootNode*>(root_raw_);
  Status status = Status::OK();
  transport_->ExecuteSync(root_raw_, [root, gid, id, &status] {
    status = root->SuppressQueryInGroup(gid, id);
  });
  if (removal.value().group_empty) {
    // Last member gone: tear the group down everywhere. Locals first (the
    // slice flow stops), then the root; partials still in flight for the
    // group are dropped by the root's group lookup.
    for (size_t i = 0; i < locals_raw_.size(); ++i) {
      if (local_removed_[i]) continue;
      std::lock_guard<std::mutex> local_lock(*local_mu_[i]);
      static_cast<DesisLocalNode*>(locals_raw_[i])->RemoveGroup(gid);
    }
    transport_->ExecuteSync(root_raw_,
                            [root, gid] { root->RemoveGroup(gid); });
  }
  if (churn_remove_hist_ != nullptr) {
    churn_remove_hist_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  return status;
}

void Cluster::IngestAt(int local_idx, const Event* events, size_t count) {
  LocalIngest* local = nullptr;
  std::mutex* mu = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    const size_t i = static_cast<size_t>(local_idx);
    local = locals_[i];
    mu = local_mu_[i].get();
  }
  std::lock_guard<std::mutex> lock(*mu);
  if (ingest_batch_hist_ != nullptr) {
    // One steady_clock pair per batch — amortized over the whole span.
    const auto t0 = std::chrono::steady_clock::now();
    local->IngestBatch(events, count);
    ingest_batch_hist_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return;
  }
  local->IngestBatch(events, count);
}

void Cluster::Advance(Timestamp watermark) {
  size_t n;
  {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    n = locals_.size();
  }
  for (size_t i = 0; i < n; ++i) {
    AdvanceAt(static_cast<int>(i), watermark);
  }
}

uint64_t Cluster::BytesSentByRole(NodeRole role) const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->role() == role) total += node->net_stats().bytes_sent;
  }
  return total;
}

int64_t Cluster::MaxBusyNsByRole(NodeRole role) const {
  int64_t max_ns = 0;
  for (const auto& node : nodes_) {
    if (node->role() == role) max_ns = std::max(max_ns, node->busy_ns());
  }
  return max_ns;
}

int64_t Cluster::MaxBusyNs() const {
  int64_t max_ns = 0;
  for (const auto& node : nodes_) max_ns = std::max(max_ns, node->busy_ns());
  return max_ns;
}

namespace {

// Plain-integer fold of the relaxed-atomic NodeStats cells (snapshots the
// counters once; also keeps the snprintf varargs below well-formed).
struct RoleAggregate {
  uint64_t nodes = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  int64_t busy_ns = 0;
  uint64_t queue_hwm = 0;
  uint64_t retransmits = 0;
  uint64_t messages_dropped = 0;

  void Absorb(const NodeStats& s) {
    ++nodes;
    bytes_sent += s.bytes_sent;
    bytes_received += s.bytes_received;
    messages_sent += s.messages_sent;
    messages_received += s.messages_received;
    busy_ns += s.busy_ns;
    queue_hwm = std::max<uint64_t>(queue_hwm, s.queue_hwm);
    retransmits += s.retransmits;
    messages_dropped += s.messages_dropped;
  }
};

void AppendRole(std::string& out, const char* key, const RoleAggregate& agg) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"nodes\":%" PRIu64 ",\"bytes_sent\":%" PRIu64
      ",\"bytes_received\":%" PRIu64 ",\"messages_sent\":%" PRIu64
      ",\"messages_received\":%" PRIu64 ",\"busy_ns\":%" PRId64
      ",\"queue_hwm\":%" PRIu64 ",\"retransmits\":%" PRIu64
      ",\"messages_dropped\":%" PRIu64 "}",
      key, agg.nodes, agg.bytes_sent, agg.bytes_received, agg.messages_sent,
      agg.messages_received, agg.busy_ns, agg.queue_hwm, agg.retransmits,
      agg.messages_dropped);
  out += buf;
}

}  // namespace

std::string Cluster::StatsReport() const {
  SampleHealth();  // report freshest watermark-lag/backlog gauges
  RoleAggregate local, intermediate, root, total;
  for (const auto& node : nodes_) {
    switch (node->role()) {
      case NodeRole::kLocal: local.Absorb(node->net_stats()); break;
      case NodeRole::kIntermediate:
        intermediate.Absorb(node->net_stats());
        break;
      case NodeRole::kRoot: root.Absorb(node->net_stats()); break;
    }
    total.Absorb(node->net_stats());
  }
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"system\":\"%s\",\"transport\":\"%s\","
                "\"topology\":{\"locals\":%d,\"intermediates\":%d,"
                "\"layers\":%d},\"engine_shards\":%d,"
                "\"results\":%" PRIu64 ",\"roles\":{",
                ToString(system_).c_str(), transport_->name(),
                topology_.num_locals, topology_.num_intermediates,
                topology_.intermediate_layers, options_.engine_shards,
                results_.load());
  out += buf;
  AppendRole(out, "local", local);
  out += ",";
  AppendRole(out, "intermediate", intermediate);
  out += ",";
  AppendRole(out, "root", root);
  out += "},";
  AppendRole(out, "totals", total);
  if (obs_registry_ != nullptr || obs_tracer_ != nullptr) {
    // Registry snapshot and span *counters* only: both read relaxed
    // atomics, so polling mid-run is race-free. Span payloads (the actual
    // trace) need quiescence and are exported by the owner after Drain().
    out += ",\"obs\":{\"metrics\":";
    out += obs_registry_ != nullptr ? obs_registry_->ToJson()
                                    : "{\"metrics\":[]}";
    std::snprintf(buf, sizeof(buf),
                  ",\"spans_recorded\":%" PRIu64 ",\"spans_dropped\":%" PRIu64
                  "}",
                  obs_tracer_ != nullptr ? obs_tracer_->recorded() : 0,
                  obs_tracer_ != nullptr ? obs_tracer_->dropped() : 0);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace desis
