#include "net/cluster.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>

#include "baselines/ce_buffer.h"
#include "baselines/de_sw.h"
#include "net/desis_nodes.h"
#include "net/disco_nodes.h"
#include "net/forward_nodes.h"
#include "opt/factor_planner.h"
#include "transport/transport.h"

namespace desis {

std::string ToString(ClusterSystem system) {
  switch (system) {
    case ClusterSystem::kDesis: return "Desis";
    case ClusterSystem::kDisco: return "Disco";
    case ClusterSystem::kScotty: return "Scotty";
    case ClusterSystem::kCeBuffer: return "CeBuffer";
  }
  return "unknown";
}

Cluster::Cluster(ClusterSystem system, ClusterTopology topology,
                 ClusterOptions options)
    : system_(system),
      topology_(topology),
      options_(options),
      transport_(&DefaultInlineTransport()) {}

Cluster::~Cluster() {
  // Join the watchdog first: its hooks reach into membership and transport
  // state that teardown below dismantles.
  if (monitor_ != nullptr) monitor_->Stop();
  // Drop the process failure hook — it captures `this`. Best-effort when
  // several clusters coexist (last Configure owns the slot; see
  // StartWatchdog).
  obs::SetFlightFailureHook(nullptr);
  // Stop delivery workers while the nodes they drive are still alive.
  transport_->Shutdown();
}

void Cluster::set_transport(std::unique_ptr<Transport> transport) {
  owned_transport_ = std::move(transport);
  transport_ = owned_transport_ ? owned_transport_.get()
                                : &DefaultInlineTransport();
}

void Cluster::WireNode(Node* node) {
  node->set_transport(transport_);
  transport_->AddNode(node);
  if (obs_registry_ != nullptr || obs_tracer_ != nullptr) {
    node->AttachObs(obs_registry_, obs_tracer_);
  }
  // Every node gets a black-box flight recorder, owned here so dumps
  // survive whatever state the node is in when a failure fires. AttachObs
  // ran first (when a registry is attached), so the recorder's counters
  // register with the node's id/role labels.
  auto flight = std::make_unique<obs::FlightRecorder>();
  node->AttachFlight(flight.get());
  std::lock_guard<std::mutex> lock(flights_mu_);
  flights_.emplace_back(node, std::move(flight));
}

void Cluster::AttachObs(obs::MetricsRegistry* registry,
                        obs::SliceTracer* tracer) {
  obs_registry_ = registry;
  obs_tracer_ = tracer;
  results_counter_ = nullptr;
  ingest_batch_hist_ = nullptr;
  churn_add_hist_ = nullptr;
  churn_remove_hist_ = nullptr;
  reattach_counter_ = nullptr;
  reattach_latency_hist_ = nullptr;
  if (registry != nullptr) {
    const obs::Labels labels = {{"system", ToString(system_)}};
    results_counter_ = registry->GetCounter("cluster.results", labels,
                                            "windows");
    ingest_batch_hist_ =
        registry->GetHistogram("cluster.ingest_batch_ns", labels, "ns");
    churn_add_hist_ =
        registry->GetHistogram("opt.group_churn_ns", {{"op", "add"}}, "ns");
    churn_remove_hist_ =
        registry->GetHistogram("opt.group_churn_ns", {{"op", "remove"}}, "ns");
    if (options_.recovery.enabled) {
      reattach_counter_ =
          registry->GetCounter("recovery.reattaches", labels, "reattaches");
      reattach_latency_hist_ =
          registry->GetHistogram("recovery.reattach_latency_us", labels, "us");
    }
  }
  if (tracer != nullptr) {
    // Ring overwrites surface as a counter so span loss is visible in every
    // export, not only to callers polling the tracer.
    tracer->set_drop_counter(
        registry != nullptr
            ? registry->GetCounter("trace.dropped_spans", {}, "spans")
            : nullptr);
  }
  for (const auto& node : nodes_) {
    node->AttachObs(registry, tracer);
    // Re-attach the flight recorder so its counters register now that the
    // registry exists (AttachObs-after-Configure ordering).
    if (node->flight() != nullptr) node->AttachFlight(node->flight());
  }
}

void Cluster::SampleHealth() const {
  if (obs_registry_ == nullptr) return;
  std::shared_lock<std::shared_mutex> lock(membership_mu_);
  for (const auto& node : nodes_) node->PublishHealth();
}

void Cluster::set_sink(WindowSink sink) { sink_ = std::move(sink); }

Status Cluster::Configure(const std::vector<Query>& queries) {
  if (configured_) return Status::Internal("cluster already configured");
  if (topology_.num_locals < 1) {
    return Status::InvalidArgument("need at least one local node");
  }
  if (topology_.intermediate_layers < 1) {
    return Status::InvalidArgument("need at least one intermediate layer");
  }
  if (options_.recovery.enabled && system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("crash recovery requires the Desis system");
  }
  if (options_.memory.budget_bytes > 0 && system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("memory budgeting requires the Desis system");
  }
  for (const Query& q : queries) {
    if (auto s = q.Validate(); !s.ok()) return s;
  }

  uint32_t next_id = 0;
  // Runs on the root's delivery worker under a threaded transport; the obs
  // sinks are lock-free so recording from there is safe.
  auto sink = [this](const WindowResult& r) {
    ++results_;
    if (results_counter_ != nullptr) results_counter_->Add();
    if (obs_tracer_ != nullptr) {
      obs_tracer_->Record(obs::SlicePhase::kWindowEmitted, /*slice_id=*/0,
                          /*group_id=*/0, r.query_id,
                          root_raw_ != nullptr ? root_raw_->id() : 0,
                          obs::kSpanRoleRoot, r.window_end);
    }
    if (sink_) sink_(r);
  };

  // Per-system node factories; the topology wiring below is shared.
  std::function<std::unique_ptr<Node>(uint32_t)> make_intermediate;
  std::function<std::unique_ptr<Node>(uint32_t)> make_local;

  switch (system_) {
    case ClusterSystem::kDesis: {
      QueryAnalyzer analyzer(DeploymentMode::kDecentralized,
                             SharingPolicy::kCrossFunction);
      auto groups = analyzer.Analyze(queries);
      if (!groups.ok()) return groups.status();
      if (options_.optimize_plans) opt::PlanGroups(groups.value());
      desis_groups_ = groups.value();
      group_index_.Seed(desis_groups_);
      auto root = std::make_unique<DesisRootNode>(next_id++, desis_groups_);
      root->set_sink(sink);
      root_raw_ = root.get();
      nodes_.push_back(std::move(root));
      make_intermediate = [](uint32_t id) {
        return std::make_unique<DesisIntermediateNode>(id);
      };
      make_local = [this](uint32_t id) {
        return std::make_unique<DesisLocalNode>(
            id, desis_groups_, /*forward_batch_size=*/512,
            options_.engine_shards, options_.memory);
      };
      break;
    }
    case ClusterSystem::kDisco: {
      auto root = std::make_unique<DiscoRootNode>(next_id++, queries);
      root->set_sink(sink);
      root_raw_ = root.get();
      nodes_.push_back(std::move(root));
      make_intermediate = [](uint32_t id) {
        return std::make_unique<DiscoIntermediateNode>(id);
      };
      make_local = [queries](uint32_t id) {
        return std::make_unique<DiscoLocalNode>(id, queries);
      };
      break;
    }
    case ClusterSystem::kScotty:
    case ClusterSystem::kCeBuffer: {
      std::unique_ptr<StreamEngine> engine;
      if (system_ == ClusterSystem::kScotty) {
        engine = std::make_unique<ScottyEngine>();
      } else {
        engine = std::make_unique<CeBufferEngine>();
      }
      if (auto s = engine->Configure(queries); !s.ok()) return s;
      engine->set_sink(sink);
      auto root = std::make_unique<EngineRootNode>(next_id++, std::move(engine));
      root_raw_ = root.get();
      nodes_.push_back(std::move(root));
      make_intermediate = [](uint32_t id) {
        return std::make_unique<RelayIntermediateNode>(id);
      };
      make_local = [](uint32_t id) {
        return std::make_unique<ForwardingLocalNode>(id);
      };
      break;
    }
  }

  // Intermediate layers, top (attached to root) to bottom.
  std::vector<Node*> layer_above = {root_raw_};
  for (int layer = 0;
       layer < (topology_.num_intermediates > 0 ? topology_.intermediate_layers : 0);
       ++layer) {
    std::vector<Node*> this_layer;
    for (int i = 0; i < topology_.num_intermediates; ++i) {
      auto node = make_intermediate(next_id++);
      this_layer.push_back(node.get());
      intermediates_raw_.push_back(node.get());
      layer_above[static_cast<size_t>(i) % layer_above.size()]->AttachChild(
          node.get());
      nodes_.push_back(std::move(node));
    }
    layer_above = std::move(this_layer);
  }

  for (int i = 0; i < topology_.num_locals; ++i) {
    auto node = make_local(next_id++);
    locals_.push_back(dynamic_cast<LocalIngest*>(node.get()));
    locals_raw_.push_back(node.get());
    layer_above[static_cast<size_t>(i) % layer_above.size()]->AttachChild(
        node.get());
    nodes_.push_back(std::move(node));
  }

  local_removed_.assign(locals_.size(), false);
  local_orphaned_.assign(locals_.size(), false);
  intermediate_dead_.assign(intermediates_raw_.size(), false);
  local_last_advance_.assign(locals_.size(), kNoTimestamp);
  local_mu_.clear();
  for (size_t i = 0; i < locals_.size(); ++i) {
    local_mu_.push_back(std::make_unique<std::mutex>());
  }
  // Route every node through the transport (workers spin up here for
  // queue-based transports; setup above never sends). Recovery is enabled
  // first: node-level recovery metrics and the root's stale counter
  // register during the AttachObs inside WireNode.
  if (options_.recovery.enabled) {
    for (const auto& node : nodes_) node->EnableRecovery(options_.recovery);
  }
  for (const auto& node : nodes_) WireNode(node.get());
  next_node_id_ = next_id;
  next_group_id_ = 0;
  for (const QueryGroup& g : desis_groups_) {
    next_group_id_ = std::max(next_group_id_, g.id + 1);
  }
  StartWatchdog();
  configured_ = true;
  return Status::OK();
}

void Cluster::StartWatchdog() {
  // Auto-dump on failure, watchdog or not: chaos-harness violations and
  // RootAssembler invariant breaks route through NotifyFlightFailure. The
  // hook slot is process-wide; the last configured cluster owns it (the
  // destructor clears it), which matches the one-cluster-under-test shape
  // of every bench and harness.
  obs::SetFlightFailureHook([this](const std::string& reason) {
    const char* dir = std::getenv("DESIS_FLIGHT_DUMP_DIR");
    DumpFlightRecorders(dir != nullptr ? dir : ".", reason);
  });
  if (!options_.watchdog.enabled) return;
  obs::WatchdogHooks hooks;
  hooks.probe = [this] { return ProbeHealth(); };
  hooks.sample_health = [this] { SampleHealth(); };
  hooks.on_anomaly = [this](obs::AnomalyKind kind, uint32_t node_id) {
    OnWatchdogAnomaly(kind, node_id);
  };
  if (system_ == ClusterSystem::kDesis && options_.recovery.enabled) {
    hooks.recover = [this](Timestamp min_watermark) {
      return !RecoverSilentIntermediates(min_watermark).empty();
    };
  }
  monitor_ =
      std::make_unique<obs::HealthMonitor>(options_.watchdog, std::move(hooks));
  // period_ms <= 0 keeps the thread off: deterministic tests drive
  // TickWatchdogForTest() instead.
  if (options_.watchdog.period_ms > 0) monitor_->Start();
}

std::vector<obs::NodeProbe> Cluster::ProbeHealth() const {
  std::shared_lock<std::shared_mutex> lock(membership_mu_);
  std::vector<obs::NodeProbe> probes;
  probes.reserve(nodes_.size());
  const bool recovery_live =
      system_ == ClusterSystem::kDesis && options_.recovery.enabled;
  auto snapshot = [](const Node* node, bool alive, bool recoverable) {
    obs::NodeProbe p;
    p.node_id = node->id();
    p.role = static_cast<uint8_t>(node->role());
    p.alive = alive;
    p.recoverable = recoverable;
    p.heartbeats = node->health().heartbeats.load();
    p.watermark = node->health().watermark.load();
    p.mailbox_depth = node->health().mailbox_depth.load();
    return p;
  };
  for (size_t i = 0; i < locals_raw_.size(); ++i) {
    obs::NodeProbe p = snapshot(locals_raw_[i], !local_removed_[i],
                                /*recoverable=*/false);
    if (system_ == ClusterSystem::kDesis) {
      const auto* local = static_cast<const DesisLocalNode*>(locals_raw_[i]);
      if (const mem::MemoryGovernor* gov = local->memory_governor()) {
        p.spill_restores = gov->restores();
      }
    }
    probes.push_back(p);
  }
  for (size_t i = 0; i < intermediates_raw_.size(); ++i) {
    const bool alive = !intermediate_dead_[i];
    probes.push_back(
        snapshot(intermediates_raw_[i], alive, alive && recovery_live));
  }
  if (root_raw_ != nullptr) {
    probes.push_back(snapshot(root_raw_, /*alive=*/true,
                              /*recoverable=*/false));
  }
  return probes;
}

void Cluster::OnWatchdogAnomaly(obs::AnomalyKind kind, uint32_t node_id) {
  if (obs_registry_ != nullptr) {
    obs::Counter* counter = obs_registry_->GetCounter(
        "health.anomalies",
        {{"kind", obs::AnomalyName(kind)}, {"node", std::to_string(node_id)}},
        "anomalies");
    if (counter != nullptr) counter->Add();
  }
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    for (const auto& entry : flights_) {
      if (entry.second->node_id() == node_id) {
        entry.second->Record(
            obs::FlightEventKind::kAnomaly, static_cast<uint64_t>(kind),
            monitor_ != nullptr ? monitor_->samples() : 0, kNoTimestamp);
        break;
      }
    }
  }
  // A silent node is a fault, not a statistic: snapshot every ring now,
  // while the pre-fault history is still in the rings.
  if (kind == obs::AnomalyKind::kSilentNode) {
    obs::NotifyFlightFailure("silent_node:" + std::to_string(node_id));
  }
}

std::vector<std::string> Cluster::DumpFlightRecorders(
    const std::string& dir, const std::string& reason) const {
  // Only flights_mu_ here — never membership_mu_: failure paths call this
  // while already holding the membership lock (assert under ingest, chaos
  // violation mid-recovery).
  std::vector<std::string> written;
  std::lock_guard<std::mutex> lock(flights_mu_);
  for (const auto& entry : flights_) {
    const std::string path =
        dir + "/flight-" + std::to_string(entry.second->node_id()) + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) continue;
    out << entry.second->DumpJson(reason) << "\n";
    written.push_back(path);
  }
  return written;
}

uint64_t Cluster::watchdog_samples() const {
  return monitor_ != nullptr ? monitor_->samples() : 0;
}
uint64_t Cluster::watchdog_anomalies() const {
  return monitor_ != nullptr ? monitor_->anomalies() : 0;
}
uint64_t Cluster::watchdog_auto_recoveries() const {
  return monitor_ != nullptr ? monitor_->auto_recoveries() : 0;
}
bool Cluster::watchdog_running() const {
  return monitor_ != nullptr && monitor_->running();
}
void Cluster::TickWatchdogForTest() {
  if (monitor_ != nullptr) monitor_->TickForTest();
}

Node* Cluster::ParentForLocal(size_t ordinal) const {
  if (intermediates_raw_.empty()) return root_raw_;
  // The bottom layer holds the last num_intermediates entries. Crashed
  // intermediates are skipped (probe forward from the round-robin slot).
  const size_t n = static_cast<size_t>(topology_.num_intermediates);
  const size_t bottom_begin = intermediates_raw_.size() - n;
  for (size_t probe = 0; probe < n; ++probe) {
    const size_t i = bottom_begin + (ordinal + probe) % n;
    if (!intermediate_dead_[i]) return intermediates_raw_[i];
  }
  return root_raw_;
}

void Cluster::AdvanceAt(int local_idx, Timestamp watermark) {
  {
    // The shared lock spans ALL of this driver's transport activity — the
    // Advance (which sends) and the Pump that drains pending deliveries.
    // The watchdog's auto-recovery runs under the exclusive lock, and
    // transports' event loops are not internally synchronized against it:
    // this shared region is what keeps a background recovery op from
    // interleaving with driver-side delivery.
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    const size_t i = static_cast<size_t>(local_idx);
    if (local_removed_[i]) return;
    // Written only by this local's single driver thread (see the class
    // threading contract); membership ops read it under the exclusive lock.
    local_last_advance_[i] = watermark;
    {
      std::lock_guard<std::mutex> node_lock(*local_mu_[i]);
      locals_[i]->Advance(watermark);
    }
    transport_->Pump();
  }
  // Low-overhead periodic snapshot: health gauges refresh on a watermark
  // cadence, not per event, so monitors polling StatsReport() mid-run see
  // recent lag/backlog values without any hot-path cost. Outside the
  // shared region above — re-acquiring a shared lock while a writer waits
  // can deadlock.
  if (health_sample_ticks_++ % kHealthSamplePeriod == kHealthSamplePeriod - 1) {
    SampleHealth();
  }
}

void Cluster::Drain() {
  {
    // Same contract as AdvanceAt: Flush is driver-side transport activity
    // and must not interleave with a watchdog recovery op.
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    transport_->Flush();
  }
  SampleHealth();
}

Result<int> Cluster::AddLocalNode() {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime membership requires the Desis system");
  }
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  // Deploy the *live* group set (runtime joins/retires included), not the
  // cold-start snapshot: the index is the source of truth after Configure.
  auto node = std::make_unique<DesisLocalNode>(
      next_node_id_++, group_index_.Snapshot(), /*forward_batch_size=*/512,
      options_.engine_shards, options_.memory);
  const int local_idx = static_cast<int>(locals_.size());
  locals_.push_back(node.get());
  locals_raw_.push_back(node.get());
  local_removed_.push_back(false);
  local_orphaned_.push_back(false);
  local_last_advance_.push_back(kNoTimestamp);
  local_mu_.push_back(std::make_unique<std::mutex>());
  if (options_.recovery.enabled) node->EnableRecovery(options_.recovery);
  WireNode(node.get());
  // Attach on the parent's delivery thread so membership growth is ordered
  // with its in-flight messages.
  Node* parent = ParentForLocal(static_cast<size_t>(local_idx));
  Node* child = node.get();
  transport_->ExecuteSync(parent, [parent, child] {
    parent->AttachChild(child);
  });
  nodes_.push_back(std::move(node));
  ++topology_.num_locals;
  return local_idx;
}

Status Cluster::RemoveLocalNodeLocked(int local_idx) {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime membership requires the Desis system");
  }
  if (local_idx < 0 || static_cast<size_t>(local_idx) >= locals_.size()) {
    return Status::NotFound("no such local node");
  }
  if (local_removed_[static_cast<size_t>(local_idx)]) {
    return Status::NotFound("local node already removed");
  }
  local_removed_[static_cast<size_t>(local_idx)] = true;
  Node* node = locals_raw_[static_cast<size_t>(local_idx)];
  // Detach on the parent's delivery thread, FIFO behind everything the
  // local already sent — its final watermark is honored, not lost.
  Node* parent = node->parent();
  const int child_index = node->child_index_at_parent();
  transport_->Execute(parent, [parent, child_index] {
    parent->DetachChild(child_index);
  });
  return Status::OK();
}

Status Cluster::RemoveLocalNode(int local_idx) {
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  return RemoveLocalNodeLocked(local_idx);
}

std::vector<int> Cluster::RemoveSilentLocals(Timestamp min_watermark) {
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  std::vector<int> removed;
  for (size_t i = 0; i < locals_.size(); ++i) {
    if (local_removed_[i]) continue;
    if (local_last_advance_[i] == kNoTimestamp ||
        local_last_advance_[i] < min_watermark) {
      if (RemoveLocalNodeLocked(static_cast<int>(i)).ok()) {
        removed.push_back(static_cast<int>(i));
      }
    }
  }
  return removed;
}

// --- Crash recovery (docs/FAULT_TOLERANCE.md) ------------------------------

Status Cluster::CheckRecoveryOp() const {
  if (system_ != ClusterSystem::kDesis || !options_.recovery.enabled) {
    return Status::Unsupported(
        "crash recovery requires the Desis system with recovery enabled");
  }
  return Status::OK();
}

int64_t Cluster::RecoveryNowUs() const {
  // Deterministic virtual time when the transport provides it (SimLink);
  // wall-clock microseconds otherwise.
  const int64_t virtual_us = transport_->VirtualNowUs();
  if (virtual_us >= 0) return virtual_us;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Cluster::FinishRecoveryOp(int64_t t0_us) {
  transport_->Flush();
  if (reattach_latency_hist_ != nullptr) {
    reattach_latency_hist_->Record(RecoveryNowUs() - t0_us);
  }
  // Refresh the health gauges directly — membership_mu_ is already held
  // exclusively here, so SampleHealth()'s shared lock would self-deadlock.
  if (obs_registry_ != nullptr) {
    for (const auto& node : nodes_) node->PublishHealth();
  }
}

bool Cluster::IsDeadIntermediate(const Node* node) const {
  for (size_t i = 0; i < intermediates_raw_.size(); ++i) {
    if (intermediates_raw_[i] == node) return intermediate_dead_[i];
  }
  return false;
}

void Cluster::ForceFlushChain(Node* from) {
  // Bottom-up: each layer's forced forwards land (Flush) before the layer
  // above flushes, so by the end the root has absorbed every unit that ever
  // left this chain — the frontier snapshot that follows is authoritative.
  for (Node* n = from; n != nullptr && n != root_raw_; n = n->parent()) {
    if (n->role() != NodeRole::kIntermediate) break;
    auto* inter = static_cast<DesisIntermediateNode*>(n);
    transport_->ExecuteSync(n, [inter] { inter->ForceFlushHeld(); });
    transport_->Flush();
  }
}

Node::ReplayFrontiers Cluster::SnapshotFrontiers() {
  Node::ReplayFrontiers frontiers;
  auto* root = static_cast<DesisRootNode*>(root_raw_);
  transport_->ExecuteSync(root_raw_, [root, &frontiers] {
    frontiers = root->FrontierSnapshot();
  });
  return frontiers;
}

Node* Cluster::ElectParentInLayer(size_t layer, Node* dead) {
  // Surviving same-layer intermediate with the fewest active children;
  // ties break to the lowest node id (deterministic across runs).
  const size_t n = static_cast<size_t>(topology_.num_intermediates);
  Node* best = nullptr;
  for (size_t i = layer * n;
       i < (layer + 1) * n && i < intermediates_raw_.size(); ++i) {
    if (intermediate_dead_[i]) continue;
    Node* cand = intermediates_raw_[i];
    if (cand == dead) continue;
    if (best == nullptr ||
        cand->num_active_children() < best->num_active_children() ||
        (cand->num_active_children() == best->num_active_children() &&
         cand->id() < best->id())) {
      best = cand;
    }
  }
  if (best != nullptr) return best;
  // No survivor in the layer: adopt at the nearest alive ancestor.
  Node* fallback = dead != nullptr ? dead->parent() : nullptr;
  while (fallback != nullptr && fallback != root_raw_ &&
         IsDeadIntermediate(fallback)) {
    fallback = fallback->parent();
  }
  return fallback != nullptr ? fallback : root_raw_;
}

void Cluster::ReattachOrphan(Node* orphan, Node* new_parent,
                             const Node::ReplayFrontiers& frontiers) {
  Node* old_parent = orphan->parent();
  transport_->ExecuteSync(new_parent, [new_parent, orphan] {
    new_parent->AttachChild(orphan);
  });
  size_t replayed = 0;
  if (orphan->role() == NodeRole::kLocal) {
    // Serialize with the local's driver thread (ingest holds the same lock).
    std::mutex* mu = nullptr;
    for (size_t i = 0; i < locals_raw_.size(); ++i) {
      if (locals_raw_[i] == orphan) {
        mu = local_mu_[i].get();
        break;
      }
    }
    std::unique_lock<std::mutex> lock(*mu);
    replayed = orphan->ReplayUnacked(frontiers);
    orphan->ReAdvertiseWatermark();
  } else {
    transport_->ExecuteSync(orphan, [orphan, &frontiers, &replayed] {
      replayed = orphan->ReplayUnacked(frontiers);
      orphan->ReAdvertiseWatermark();
    });
  }
  ++recovery_reattaches_;
  recovery_replayed_ += replayed;
  if (reattach_counter_ != nullptr) reattach_counter_->Add();
  if (orphan->flight() != nullptr) {
    orphan->flight()->Record(obs::FlightEventKind::kReattach, new_parent->id(),
                             old_parent != nullptr ? old_parent->id() : 0,
                             orphan->health().watermark);
  }
  if (obs_tracer_ != nullptr) {
    obs_tracer_->Record(obs::SlicePhase::kReattach, /*slice_id=*/0,
                        /*group_id=*/0, /*query_id=*/0, orphan->id(),
                        orphan->role() == NodeRole::kLocal
                            ? obs::kSpanRoleLocal
                            : obs::kSpanRoleIntermediate,
                        orphan->health().watermark);
  }
}

Status Cluster::CrashIntermediate(int intermediate_idx) {
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  return CrashIntermediateLocked(intermediate_idx);
}

Status Cluster::CrashIntermediateLocked(int intermediate_idx) {
  if (auto s = CheckRecoveryOp(); !s.ok()) return s;
  const size_t idx = static_cast<size_t>(intermediate_idx);
  if (intermediate_idx < 0 || idx >= intermediates_raw_.size()) {
    return Status::NotFound("no such intermediate node");
  }
  if (intermediate_dead_[idx]) {
    return Status::NotFound("intermediate already crashed");
  }
  Node* dead = intermediates_raw_[idx];
  const int64_t t0_us = RecoveryNowUs();
  intermediate_dead_[idx] = true;
  // 1. The crash itself: the transport discards everything in flight
  //    to/from the node and ignores it from now on.
  transport_->Disconnect(dead);
  transport_->Flush();
  // 2. Force-flush the dead node's ancestor chain so every unit that ever
  //    made it past the dead node reaches the root, then snapshot the
  //    root's provenance frontiers — replay below trims against them.
  ForceFlushChain(dead->parent());
  transport_->Flush();
  const Node::ReplayFrontiers frontiers = SnapshotFrontiers();
  // 3. Re-elect a parent for every orphan and replay its unacked data.
  //    The dead node stays attached upstream through all of this: its
  //    frozen (pinned) watermark holds the root's cursor back until the
  //    replayed slices have landed (docs/FAULT_TOLERANCE.md, "Why the
  //    stable watermark is a valid ack").
  const size_t n = static_cast<size_t>(topology_.num_intermediates);
  const size_t layer = idx / n;
  for (size_t ci = 0; ci < dead->num_children(); ++ci) {
    if (dead->child_detached(static_cast<int>(ci))) continue;
    Node* orphan = dead->child_node(static_cast<int>(ci));
    if (orphan == nullptr) continue;
    ReattachOrphan(orphan, ElectParentInLayer(layer, dead), frontiers);
  }
  transport_->Flush();
  // 4. Only now detach the dead node at its parent — the replayed data is
  //    upstream of the orphans, protected by their new parents' pins.
  Node* parent = dead->parent();
  const int child_index = dead->child_index_at_parent();
  transport_->ExecuteSync(parent, [parent, child_index] {
    parent->DetachChild(child_index);
  });
  FinishRecoveryOp(t0_us);
  return Status::OK();
}

Status Cluster::DeclareLocalDead(int local_idx) {
  if (auto s = CheckRecoveryOp(); !s.ok()) return s;
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const size_t i = static_cast<size_t>(local_idx);
  if (local_idx < 0 || i >= locals_raw_.size()) {
    return Status::NotFound("no such local node");
  }
  if (local_removed_[i]) return Status::NotFound("local node already removed");
  if (local_orphaned_[i]) {
    return Status::AlreadyExists("local already declared dead");
  }
  // The uplink goes dark but the membership is kept: the old parent still
  // waits on the local's frozen watermark, which pins the root at the last
  // advertised point — it cannot consume past the orphan's buffered data.
  // Ingest may continue; sends accumulate in the resend buffer.
  Node* node = locals_raw_[i];
  transport_->SetLinkDown(node, node->parent(), true);
  local_orphaned_[i] = true;
  return Status::OK();
}

Status Cluster::ReattachLocal(int local_idx) {
  if (auto s = CheckRecoveryOp(); !s.ok()) return s;
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const size_t i = static_cast<size_t>(local_idx);
  if (local_idx < 0 || i >= locals_raw_.size()) {
    return Status::NotFound("no such local node");
  }
  if (!local_orphaned_[i]) {
    return Status::NotFound("local was not declared dead");
  }
  Node* node = locals_raw_[i];
  Node* old_parent = node->parent();
  const int old_child_index = node->child_index_at_parent();
  const int64_t t0_us = RecoveryNowUs();
  // Drain, force-flush the old parent chain, snapshot frontiers — exactly
  // the CrashIntermediate preamble, with the old uplink as the dead path.
  transport_->Flush();
  ForceFlushChain(old_parent);
  transport_->Flush();
  const Node::ReplayFrontiers frontiers = SnapshotFrontiers();
  // Abandon the dark uplink's link state BEFORE replaying: from here the
  // resend buffer owns recovery, and a link-level retransmission of parked
  // frames would double-merge the same slices at the (possibly identical)
  // new parent. This also clears the partition flag, so replay traffic to
  // a re-elected same parent flows on a clean link.
  transport_->ResetLink(node, old_parent);
  ReattachOrphan(node, ParentForLocal(i), frontiers);
  local_orphaned_[i] = false;
  transport_->Flush();
  // Detach the old uplink slot last (pinning protection, as above).
  transport_->ExecuteSync(old_parent, [old_parent, old_child_index] {
    old_parent->DetachChild(old_child_index);
  });
  FinishRecoveryOp(t0_us);
  return Status::OK();
}

std::vector<int> Cluster::RecoverSilentIntermediates(Timestamp min_watermark) {
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  std::vector<int> crashed;
  if (!CheckRecoveryOp().ok()) return crashed;
  for (size_t i = 0; i < intermediates_raw_.size(); ++i) {
    if (intermediate_dead_[i]) continue;
    const Timestamp wm = intermediates_raw_[i]->health().watermark;
    if (wm == kNoTimestamp || wm < min_watermark) {
      if (CrashIntermediateLocked(static_cast<int>(i)).ok()) {
        crashed.push_back(static_cast<int>(i));
      }
    }
  }
  return crashed;
}

Status Cluster::InjectIntermediateFailure(int intermediate_idx) {
  if (auto s = CheckRecoveryOp(); !s.ok()) return s;
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const size_t idx = static_cast<size_t>(intermediate_idx);
  if (intermediate_idx < 0 || idx >= intermediates_raw_.size()) {
    return Status::NotFound("no such intermediate node");
  }
  // Silent: the transport stops delivering but the cluster is not told —
  // RecoverSilentIntermediates spots the frozen watermark later.
  transport_->Disconnect(intermediates_raw_[idx]);
  return Status::OK();
}

Status Cluster::PartitionLocalUplink(int local_idx, bool down) {
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const size_t i = static_cast<size_t>(local_idx);
  if (local_idx < 0 || i >= locals_raw_.size()) {
    return Status::NotFound("no such local node");
  }
  Node* node = locals_raw_[i];
  if (!transport_->SetLinkDown(node, node->parent(), down)) {
    return Status::Unsupported("transport cannot model link partitions");
  }
  return Status::OK();
}

Status Cluster::AddQuery(const Query& query) {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime queries require the Desis system");
  }
  if (auto s = query.Validate(); !s.ok()) return s;
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  if (group_index_.ContainsQuery(query.id)) {
    return Status::AlreadyExists("query id already registered");
  }

  // Shard-pool carve-out: a dedup query or user-defined window joining a
  // pool-hosted group would make it unshardable mid-flight; isolate those
  // into their own (serially deployed) group instead. Root-only groups
  // never live in the pool, so count-measure queries are unaffected.
  const bool pool_breaker =
      options_.engine_shards > 0 && system_ == ClusterSystem::kDesis &&
      (query.deduplicate || query.window.type == WindowType::kUserDefined) &&
      query.window.measure != WindowMeasure::kCount;
  const opt::QueryPlacement placement =
      pool_breaker ? group_index_.AddQueryIsolated(query)
                   : group_index_.AddQuery(query);
  QueryGroup* group = group_index_.MutableFind(placement.gid);

  auto* root = static_cast<DesisRootNode*>(root_raw_);
  if (placement.new_group) {
    if (options_.optimize_plans) group->plan = opt::BuildGroupPlan(*group);
    // Fresh group: the classic full-deploy path (§3.2) — root first so the
    // assembler exists before the first shipped slice can reach it.
    const std::vector<QueryGroup> new_groups = {*group};
    transport_->ExecuteSync(
        root_raw_, [root, &new_groups] { root->AddGroups(new_groups); });
    for (size_t i = 0; i < locals_raw_.size(); ++i) {
      if (local_removed_[i]) continue;
      std::lock_guard<std::mutex> local_lock(*local_mu_[i]);
      static_cast<DesisLocalNode*>(locals_raw_[i])->AddGroups(new_groups);
    }
  } else {
    // Join an existing group, touching only that group on each node.
    // Locals first, collecting the maximum event timestamp any of them has
    // seen: per-local streams are non-decreasing and membership_mu_ is held
    // exclusively (no ingest runs concurrently), so every event at or
    // before `seen` sits in pre-add slices. The root then activation-gates
    // the new query past them (and past its own advanced watermark), so
    // the first emitted window covers only post-deploy folds.
    const uint32_t gid = placement.gid;
    const SelectionLane lane_def = group->lanes[placement.lane];
    Timestamp seen = kNoTimestamp;
    for (size_t i = 0; i < locals_raw_.size(); ++i) {
      if (local_removed_[i]) continue;
      std::lock_guard<std::mutex> local_lock(*local_mu_[i]);
      auto* local = static_cast<DesisLocalNode*>(locals_raw_[i]);
      local->AddQueryToGroup(gid, query, placement.lane, lane_def,
                             kNoTimestamp);
      seen = std::max(seen, local->last_event_ts());
    }
    const Timestamp active_from = seen == kNoTimestamp ? kNoTimestamp
                                                       : seen + 1;
    const Query& q = query;
    const uint32_t lane = placement.lane;
    transport_->ExecuteSync(root_raw_,
                            [root, gid, &q, lane, &lane_def, active_from] {
                              root->AddQueryToGroup(gid, q, lane, lane_def,
                                                    active_from);
                            });
  }
  if (churn_add_hist_ != nullptr) {
    churn_add_hist_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  if (root_raw_ != nullptr && root_raw_->flight() != nullptr) {
    root_raw_->flight()->Record(obs::FlightEventKind::kQueryAdd,
                                static_cast<uint64_t>(query.id), placement.gid,
                                kNoTimestamp);
  }
  return Status::OK();
}

Status Cluster::RemoveQuery(QueryId id) {
  if (system_ != ClusterSystem::kDesis) {
    return Status::Unsupported("runtime queries require the Desis system");
  }
  std::unique_lock<std::shared_mutex> lock(membership_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  auto removal = group_index_.RemoveQuery(id);
  if (!removal.ok()) return removal.status();
  const uint32_t gid = removal.value().gid;
  auto* root = static_cast<DesisRootNode*>(root_raw_);
  Status status = Status::OK();
  transport_->ExecuteSync(root_raw_, [root, gid, id, &status] {
    status = root->SuppressQueryInGroup(gid, id);
  });
  if (removal.value().group_empty) {
    // Last member gone: tear the group down everywhere. Locals first (the
    // slice flow stops), then the root; partials still in flight for the
    // group are dropped by the root's group lookup.
    for (size_t i = 0; i < locals_raw_.size(); ++i) {
      if (local_removed_[i]) continue;
      std::lock_guard<std::mutex> local_lock(*local_mu_[i]);
      static_cast<DesisLocalNode*>(locals_raw_[i])->RemoveGroup(gid);
    }
    transport_->ExecuteSync(root_raw_,
                            [root, gid] { root->RemoveGroup(gid); });
  }
  if (churn_remove_hist_ != nullptr) {
    churn_remove_hist_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  if (root_raw_ != nullptr && root_raw_->flight() != nullptr) {
    root_raw_->flight()->Record(obs::FlightEventKind::kQueryRemove,
                                static_cast<uint64_t>(id), gid, kNoTimestamp);
  }
  return status;
}

void Cluster::IngestAt(int local_idx, const Event* events, size_t count) {
  // Shared across the whole batch (not just the vector reads): with the
  // inline transport, ingest itself delivers upstream on this thread, and
  // that must serialize against watchdog auto-recovery (exclusive lock) —
  // see AdvanceAt.
  std::shared_lock<std::shared_mutex> membership_lock(membership_mu_);
  const size_t i = static_cast<size_t>(local_idx);
  LocalIngest* local = locals_[i];
  std::mutex* mu = local_mu_[i].get();
  std::lock_guard<std::mutex> lock(*mu);
  if (ingest_batch_hist_ != nullptr) {
    // One steady_clock pair per batch — amortized over the whole span.
    const auto t0 = std::chrono::steady_clock::now();
    local->IngestBatch(events, count);
    ingest_batch_hist_->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return;
  }
  local->IngestBatch(events, count);
}

void Cluster::Advance(Timestamp watermark) {
  size_t n;
  {
    std::shared_lock<std::shared_mutex> lock(membership_mu_);
    n = locals_.size();
  }
  for (size_t i = 0; i < n; ++i) {
    AdvanceAt(static_cast<int>(i), watermark);
  }
}

const mem::MemoryGovernor* Cluster::LocalMemoryGovernor(int local_idx) const {
  std::shared_lock<std::shared_mutex> lock(membership_mu_);
  if (system_ != ClusterSystem::kDesis || local_idx < 0 ||
      static_cast<size_t>(local_idx) >= locals_raw_.size()) {
    return nullptr;
  }
  return static_cast<const DesisLocalNode*>(locals_raw_[local_idx])
      ->memory_governor();
}

uint64_t Cluster::BytesSentByRole(NodeRole role) const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->role() == role) total += node->net_stats().bytes_sent;
  }
  return total;
}

int64_t Cluster::MaxBusyNsByRole(NodeRole role) const {
  int64_t max_ns = 0;
  for (const auto& node : nodes_) {
    if (node->role() == role) max_ns = std::max(max_ns, node->busy_ns());
  }
  return max_ns;
}

int64_t Cluster::MaxBusyNs() const {
  int64_t max_ns = 0;
  for (const auto& node : nodes_) max_ns = std::max(max_ns, node->busy_ns());
  return max_ns;
}

namespace {

// Plain-integer fold of the relaxed-atomic NodeStats cells (snapshots the
// counters once; also keeps the snprintf varargs below well-formed).
struct RoleAggregate {
  uint64_t nodes = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  int64_t busy_ns = 0;
  uint64_t queue_hwm = 0;
  uint64_t retransmits = 0;
  uint64_t messages_dropped = 0;

  void Absorb(const NodeStats& s) {
    ++nodes;
    bytes_sent += s.bytes_sent;
    bytes_received += s.bytes_received;
    messages_sent += s.messages_sent;
    messages_received += s.messages_received;
    busy_ns += s.busy_ns;
    queue_hwm = std::max<uint64_t>(queue_hwm, s.queue_hwm);
    retransmits += s.retransmits;
    messages_dropped += s.messages_dropped;
  }
};

void AppendRole(std::string& out, const char* key, const RoleAggregate& agg) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"nodes\":%" PRIu64 ",\"bytes_sent\":%" PRIu64
      ",\"bytes_received\":%" PRIu64 ",\"messages_sent\":%" PRIu64
      ",\"messages_received\":%" PRIu64 ",\"busy_ns\":%" PRId64
      ",\"queue_hwm\":%" PRIu64 ",\"retransmits\":%" PRIu64
      ",\"messages_dropped\":%" PRIu64 "}",
      key, agg.nodes, agg.bytes_sent, agg.bytes_received, agg.messages_sent,
      agg.messages_received, agg.busy_ns, agg.queue_hwm, agg.retransmits,
      agg.messages_dropped);
  out += buf;
}

}  // namespace

std::string Cluster::StatsReport() const {
  SampleHealth();  // report freshest watermark-lag/backlog gauges
  RoleAggregate local, intermediate, root, total;
  for (const auto& node : nodes_) {
    switch (node->role()) {
      case NodeRole::kLocal: local.Absorb(node->net_stats()); break;
      case NodeRole::kIntermediate:
        intermediate.Absorb(node->net_stats());
        break;
      case NodeRole::kRoot: root.Absorb(node->net_stats()); break;
    }
    total.Absorb(node->net_stats());
  }
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"system\":\"%s\",\"transport\":\"%s\","
                "\"topology\":{\"locals\":%d,\"intermediates\":%d,"
                "\"layers\":%d},\"engine_shards\":%d,"
                "\"results\":%" PRIu64 ",\"roles\":{",
                ToString(system_).c_str(), transport_->name(),
                topology_.num_locals, topology_.num_intermediates,
                topology_.intermediate_layers, options_.engine_shards,
                results_.load());
  out += buf;
  AppendRole(out, "local", local);
  out += ",";
  AppendRole(out, "intermediate", intermediate);
  out += ",";
  AppendRole(out, "root", root);
  out += "},";
  AppendRole(out, "totals", total);
  if (options_.recovery.enabled) {
    uint64_t resend_bytes = 0;
    uint64_t overflow_drops = 0;
    for (const auto& node : nodes_) {
      if (const ResendBuffer* rb = node->resend_buffer(); rb != nullptr) {
        resend_bytes += rb->bytes();
        overflow_drops += rb->overflow_drops();
      }
    }
    const uint64_t stale =
        root_raw_ != nullptr
            ? static_cast<const DesisRootNode*>(root_raw_)->stale_dropped()
            : 0;
    std::snprintf(buf, sizeof(buf),
                  ",\"recovery\":{\"reattaches\":%" PRIu64
                  ",\"replayed_slices\":%" PRIu64 ",\"stale_dropped\":%" PRIu64
                  ",\"resend_buffer_bytes\":%" PRIu64
                  ",\"resend_overflow_drops\":%" PRIu64 "}",
                  recovery_reattaches_.load(), recovery_replayed_.load(), stale,
                  resend_bytes, overflow_drops);
    out += buf;
  }
  if (monitor_ != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  ",\"watchdog\":{\"samples\":%" PRIu64 ",\"anomalies\":%" PRIu64
                  ",\"auto_recoveries\":%" PRIu64 "}",
                  monitor_->samples(), monitor_->anomalies(),
                  monitor_->auto_recoveries());
    out += buf;
  }
  if (obs_registry_ != nullptr || obs_tracer_ != nullptr) {
    // Registry snapshot and span *counters* only: both read relaxed
    // atomics, so polling mid-run is race-free. Span payloads (the actual
    // trace) need quiescence and are exported by the owner after Drain().
    out += ",\"obs\":{\"metrics\":";
    out += obs_registry_ != nullptr ? obs_registry_->ToJson()
                                    : "{\"metrics\":[]}";
    std::snprintf(buf, sizeof(buf),
                  ",\"spans_recorded\":%" PRIu64 ",\"spans_dropped\":%" PRIu64
                  "}",
                  obs_tracer_ != nullptr ? obs_tracer_->recorded() : 0,
                  obs_tracer_ != nullptr ? obs_tracer_->dropped() : 0);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace desis
