#include "opt/factor_planner.h"

#include <algorithm>

#include "core/spec_layout.h"
#include "opt/cost_model.h"

namespace desis {
namespace opt {

GroupPlan BuildGroupPlan(const QueryGroup& group) {
  GroupPlan plan;
  const auto layout = DeriveSpecLayout(group);

  // Per-lane reduced masks: the union of OperatorsFor() over the lane's
  // queries. A lane whose queries need fewer operators than the group
  // union stops paying for the difference on every event.
  plan.lane_masks.assign(group.lanes.size(), 0);
  for (const GroupedQuery& gq : group.queries) {
    if (gq.lane < plan.lane_masks.size()) {
      plan.lane_masks[gq.lane] |= OperatorsFor(gq.query.agg.fn);
    }
  }
  bool narrowed = false;
  for (OperatorMask& m : plan.lane_masks) {
    m = ReduceMask(m);
    narrowed = narrowed || (m != 0 && m != group.mask);
  }

  // Factor-window DAG over the fixed time, lane-unscoped specs.
  plan.feeder.assign(layout.size(), -1);
  plan.depth.assign(layout.size(), 0);
  const bool factorable = !MaskHas(group.mask, OperatorKind::kNonDecomposableSort);
  const int64_t period = SlicePeriod(group);
  if (factorable && period > 0) {
    for (uint32_t si = 0; si < layout.size(); ++si) {
      const WindowSpec& w = layout[si].spec;
      if (!w.IsFixedSize() || w.measure != WindowMeasure::kTime) continue;
      if (layout[si].lane_filter != -1) continue;
      // Largest eligible feeder wins: fewest composite merges per window.
      int32_t best = -1;
      int64_t best_len = 0;
      for (uint32_t fj = 0; fj < layout.size(); ++fj) {
        if (fj == si) continue;
        const WindowSpec& f = layout[fj].spec;
        if (f.type != WindowType::kTumbling ||
            f.measure != WindowMeasure::kTime) {
          continue;
        }
        if (layout[fj].lane_filter != -1) continue;
        if (f.length >= w.length) continue;
        if (w.slide % f.length != 0 || w.length % f.length != 0) continue;
        if (FactorGain(w.length, w.slide, f.length, period) <= 0.0) continue;
        if (f.length > best_len) {
          best = static_cast<int32_t>(fj);
          best_len = f.length;
        }
      }
      if (best >= 0) {
        plan.feeder[si] = best;
        ++plan.rewrites;
      }
    }
    // Depths: feeders are tumbling specs and only shorter specs feed
    // longer ones, so the DAG is acyclic; iterate to a fixed point (the
    // chain length is bounded by the spec count).
    for (size_t round = 0; round < layout.size(); ++round) {
      bool changed = false;
      for (uint32_t si = 0; si < layout.size(); ++si) {
        const int32_t f = plan.feeder[si];
        if (f < 0) continue;
        const uint8_t want =
            static_cast<uint8_t>(plan.depth[static_cast<size_t>(f)] + 1);
        if (plan.depth[si] != want) {
          plan.depth[si] = want;
          changed = true;
        }
      }
      if (!changed) break;
    }
    for (uint8_t d : plan.depth) {
      plan.dag_depth = std::max<uint32_t>(plan.dag_depth, 1u + d);
    }
  }

  plan.optimized = narrowed || plan.rewrites > 0;
  return plan;
}

size_t PlanGroups(std::vector<QueryGroup>& groups) {
  size_t optimized = 0;
  for (QueryGroup& group : groups) {
    group.plan = BuildGroupPlan(group);
    if (group.plan.optimized) ++optimized;
  }
  return optimized;
}

}  // namespace opt
}  // namespace desis
