#ifndef DESIS_OPT_FACTOR_PLANNER_H_
#define DESIS_OPT_FACTOR_PLANNER_H_

#include <cstddef>
#include <vector>

#include "core/group_plan.h"
#include "core/query_analyzer.h"

namespace desis {
namespace opt {

/// Computes the cost-based execution plan for one query-group (§3.1 meets
/// §4.2): per-lane reduced operator masks (a lane folds only the operators
/// its own queries decompose into, not the whole group mask) and the
/// factor-window DAG (a coarse window whose slide and length tile exactly
/// into a finer tumbling window of the same group assembles from that
/// feeder's sealed composites instead of base slices). Every edge is gated
/// by the cost model (FactorGain > 0) and by the structural invariants
/// documented on GroupPlan::feeder. Groups carrying a non-decomposable
/// sort are left unfactored: their sealed states hold buffered values, and
/// composite chains would multiply the retained memory without reducing
/// operator work.
///
/// The returned plan leaves results byte-identical for exactly
/// representable aggregates; re-associated floating-point sums can differ
/// in final ULPs exactly like the sharded engine's merges.
GroupPlan BuildGroupPlan(const QueryGroup& group);

/// Plans every group in place; returns how many came out optimized.
size_t PlanGroups(std::vector<QueryGroup>& groups);

}  // namespace opt
}  // namespace desis

#endif  // DESIS_OPT_FACTOR_PLANNER_H_
