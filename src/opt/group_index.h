#ifndef DESIS_OPT_GROUP_INDEX_H_
#define DESIS_OPT_GROUP_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/query_analyzer.h"

namespace desis {
namespace opt {

/// Where AddQuery placed a query.
struct QueryPlacement {
  uint32_t gid = 0;
  uint32_t lane = 0;
  bool new_group = false;
  bool new_lane = false;
};

/// What RemoveQuery found.
struct QueryRemoval {
  uint32_t gid = 0;
  /// The query was its group's last member; the group was retired.
  bool group_empty = false;
};

/// Incrementally maintained query-group membership (§3.2 at 10k+ queries):
/// the runtime counterpart of QueryAnalyzer::Analyze. Placement replays
/// Analyze's exact probe order — sharing-class buckets, group creation
/// order within a bucket, FindLane per group — so a query added at runtime
/// joins the very group a cold start would have put it in, and add/remove
/// cost is O(affected group), independent of the resident query count.
///
/// Groups whose lanes are all plain key-equality selections (the dominant
/// shape at scale) get an O(1) lane lookup; everything else falls back to
/// the linear lane scan, still touching only one bucket.
class GroupIndex {
 public:
  explicit GroupIndex(DeploymentMode mode = DeploymentMode::kCentralized,
                      SharingPolicy policy = SharingPolicy::kCrossFunction)
      : mode_(mode), policy_(policy) {}

  /// Seeds the index from a cold-start analysis. Group ids must be unique;
  /// plans (if any) ride along untouched.
  void Seed(const std::vector<QueryGroup>& groups);

  /// Places `q`, updating the owning group in place: joins a compatible
  /// existing group (possibly opening a lane) or creates a new one. The
  /// group's operator masks are widened exactly like the deployed slicer
  /// widens its own (plain union on live groups — see
  /// PartialAggregate::MergeCompatible), so index and engine state agree.
  QueryPlacement AddQuery(const Query& q);

  /// Places `q` in a brand-new group regardless of compatibility (used for
  /// deployment carve-outs, e.g. keeping a shard-pool group shardable).
  QueryPlacement AddQueryIsolated(const Query& q);

  /// Removes `q` from its group; retires the group when it was the last
  /// member. O(owning group).
  Result<QueryRemoval> RemoveQuery(QueryId id);

  const QueryGroup* Find(uint32_t gid) const;
  QueryGroup* MutableFind(uint32_t gid);
  bool ContainsQuery(QueryId id) const { return owner_.count(id) > 0; }
  size_t num_groups() const { return groups_.size(); }
  size_t num_queries() const { return owner_.size(); }

  /// Snapshot of every live group, in group-id order (testing/inspection).
  std::vector<QueryGroup> Snapshot() const;

 private:
  struct IndexedGroup {
    QueryGroup group;
    /// Fast-path eligibility: every lane is a bare key-equality predicate
    /// without dedup. Maintained on lane insertion, never re-derived.
    bool all_key_lanes = true;
    /// key -> lane for the fast path (meaningless when !all_key_lanes).
    std::unordered_map<uint32_t, uint32_t> key_to_lane;
    /// Owning bucket, for O(log) retirement. Isolated groups are in none.
    std::pair<bool, uint64_t> bucket{false, 0};
    bool in_bucket = false;
  };
  using BucketKey = std::pair<bool, uint64_t>;  // (root_only, sharing class)

  QueryPlacement PlaceInGroup(IndexedGroup& ig, const Query& q,
                              uint32_t lane);
  QueryPlacement CreateGroup(const Query& q, bool root_only);
  void IndexLanes(IndexedGroup& ig);

  DeploymentMode mode_;
  SharingPolicy policy_;
  std::map<uint32_t, IndexedGroup> groups_;
  /// Bucket -> group ids in creation order (Analyze's probe order).
  std::map<BucketKey, std::vector<uint32_t>> buckets_;
  std::unordered_map<QueryId, uint32_t> owner_;
  uint64_t next_seq_ = 0;  // arrival index (per-query sharing class)
  uint32_t next_gid_ = 0;
};

}  // namespace opt
}  // namespace desis

#endif  // DESIS_OPT_GROUP_INDEX_H_
