#include "opt/group_index.h"

#include <algorithm>

#include "core/grouping.h"

namespace desis {
namespace opt {

namespace {

bool BareKeyLane(const Predicate& p, bool dedup) {
  return p.has_key && !p.has_range && !dedup;
}

}  // namespace

void GroupIndex::IndexLanes(IndexedGroup& ig) {
  ig.all_key_lanes = true;
  ig.key_to_lane.clear();
  for (uint32_t i = 0; i < ig.group.lanes.size(); ++i) {
    const SelectionLane& lane = ig.group.lanes[i];
    if (!BareKeyLane(lane.predicate, lane.deduplicate)) {
      ig.all_key_lanes = false;
      ig.key_to_lane.clear();
      return;
    }
    ig.key_to_lane.emplace(lane.predicate.key, i);
  }
}

void GroupIndex::Seed(const std::vector<QueryGroup>& groups) {
  for (const QueryGroup& group : groups) {
    IndexedGroup ig;
    ig.group = group;
    IndexLanes(ig);
    // A group's bucket is its creating query's: every member shares the
    // class by construction (per-query classes consume the arrival index,
    // which is fresh per seeded query, preserving "never shared" there).
    const Query& first = group.queries.front().query;
    ig.bucket = {group.root_only,
                 grouping::SharingClass(policy_, first, next_seq_)};
    ig.in_bucket = true;
    buckets_[ig.bucket].push_back(group.id);
    for (const GroupedQuery& gq : group.queries) {
      owner_[gq.query.id] = group.id;
      ++next_seq_;
    }
    next_gid_ = std::max(next_gid_, group.id + 1);
    groups_.emplace(group.id, std::move(ig));
  }
}

QueryPlacement GroupIndex::PlaceInGroup(IndexedGroup& ig, const Query& q,
                                        uint32_t lane) {
  QueryPlacement placement;
  placement.gid = ig.group.id;
  placement.lane = lane;
  placement.new_lane = lane == ig.group.lanes.size();
  if (placement.new_lane) {
    ig.group.lanes.push_back({q.predicate, q.deduplicate});
    if (BareKeyLane(q.predicate, q.deduplicate)) {
      if (ig.all_key_lanes) ig.key_to_lane.emplace(q.predicate.key, lane);
    } else {
      ig.all_key_lanes = false;
      ig.key_to_lane.clear();
    }
  }
  ig.group.queries.push_back({q, lane});
  // Widen the operator masks exactly like the deployed slicer does for a
  // live group: plain union, never ReduceMask (see MergeCompatible's
  // contract — runtime mask chains must only grow).
  const OperatorMask ops = OperatorsFor(q.agg.fn);
  ig.group.mask |= ops;
  if (ig.group.plan.optimized) {
    auto& lm = ig.group.plan.lane_masks;
    if (lm.size() < ig.group.lanes.size()) {
      lm.resize(ig.group.lanes.size(), 0);
    }
    if (placement.new_lane) {
      lm[lane] = ReduceMask(ops);
    } else if (lm[lane] != 0) {
      lm[lane] |= ops;
    }
  }
  owner_[q.id] = ig.group.id;
  return placement;
}

QueryPlacement GroupIndex::CreateGroup(const Query& q, bool root_only) {
  IndexedGroup ig;
  ig.group.id = next_gid_++;
  ig.group.root_only = root_only;
  ig.group.lanes.push_back({q.predicate, q.deduplicate});
  ig.group.queries.push_back({q, 0});
  ig.group.mask = ReduceMask(OperatorsFor(q.agg.fn));
  IndexLanes(ig);

  QueryPlacement placement;
  placement.gid = ig.group.id;
  placement.lane = 0;
  placement.new_group = true;
  placement.new_lane = true;
  owner_[q.id] = ig.group.id;
  groups_.emplace(ig.group.id, std::move(ig));
  return placement;
}

QueryPlacement GroupIndex::AddQuery(const Query& q) {
  const bool root_only = grouping::RootOnly(mode_, q);
  const BucketKey key = {root_only,
                         grouping::SharingClass(policy_, q, next_seq_++)};
  auto bit = buckets_.find(key);
  if (bit != buckets_.end()) {
    for (uint32_t gid : bit->second) {
      IndexedGroup& ig = groups_.at(gid);
      // O(1) fast path: all lanes are bare key-equality selections, so a
      // bare key-equality query is identical to at most one lane and
      // disjoint from every other — FindLane's answer is a hash lookup.
      if (ig.all_key_lanes && BareKeyLane(q.predicate, q.deduplicate)) {
        auto kit = ig.key_to_lane.find(q.predicate.key);
        const uint32_t lane = kit != ig.key_to_lane.end()
                                  ? kit->second
                                  : static_cast<uint32_t>(
                                        ig.group.lanes.size());
        return PlaceInGroup(ig, q, lane);
      }
      uint32_t lane = 0;
      if (grouping::FindLane(ig.group.lanes, q, &lane)) {
        return PlaceInGroup(ig, q, lane);
      }
    }
  }
  QueryPlacement placement = CreateGroup(q, root_only);
  IndexedGroup& ig = groups_.at(placement.gid);
  ig.bucket = key;
  ig.in_bucket = true;
  buckets_[key].push_back(placement.gid);
  return placement;
}

QueryPlacement GroupIndex::AddQueryIsolated(const Query& q) {
  // Deployment carve-out (e.g. a dedup query aimed at a shard-pool group):
  // the group joins no bucket, so later queries never share into it — the
  // deployment-time divergence stays contained to this one query.
  QueryPlacement placement =
      CreateGroup(q, grouping::RootOnly(mode_, q));
  ++next_seq_;
  return placement;
}

Result<QueryRemoval> GroupIndex::RemoveQuery(QueryId id) {
  auto it = owner_.find(id);
  if (it == owner_.end()) {
    return Status::NotFound("no indexed query with this id");
  }
  const uint32_t gid = it->second;
  owner_.erase(it);
  IndexedGroup& ig = groups_.at(gid);
  auto& qs = ig.group.queries;
  for (auto qit = qs.begin(); qit != qs.end(); ++qit) {
    if (qit->query.id == id) {
      qs.erase(qit);
      break;
    }
  }
  // Lanes and masks are deliberately left untouched while members remain:
  // the deployed slicers keep them too, and narrowing live masks would
  // break the grow-only contract of MergeCompatible.
  QueryRemoval removal;
  removal.gid = gid;
  removal.group_empty = qs.empty();
  if (removal.group_empty) {
    if (ig.in_bucket) {
      auto& vec = buckets_[ig.bucket];
      vec.erase(std::remove(vec.begin(), vec.end(), gid), vec.end());
      if (vec.empty()) buckets_.erase(ig.bucket);
    }
    groups_.erase(gid);
  }
  return removal;
}

const QueryGroup* GroupIndex::Find(uint32_t gid) const {
  auto it = groups_.find(gid);
  return it == groups_.end() ? nullptr : &it->second.group;
}

QueryGroup* GroupIndex::MutableFind(uint32_t gid) {
  auto it = groups_.find(gid);
  return it == groups_.end() ? nullptr : &it->second.group;
}

std::vector<QueryGroup> GroupIndex::Snapshot() const {
  std::vector<QueryGroup> out;
  out.reserve(groups_.size());
  for (const auto& [gid, ig] : groups_) out.push_back(ig.group);
  return out;
}

}  // namespace opt
}  // namespace desis
