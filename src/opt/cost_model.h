#ifndef DESIS_OPT_COST_MODEL_H_
#define DESIS_OPT_COST_MODEL_H_

#include <cstdint>

#include "core/query_analyzer.h"

namespace desis {
namespace opt {

/// Per-group cost estimate (the model behind the factor-window planner).
/// All rates are per simulated second of stream time at `events_per_sec`;
/// they mirror the observable group.* series (group.events_in feeds the
/// fold term, group.slices the slice term, engine merges the merge term),
/// so estimates can be validated against a live sidecar.
struct GroupCost {
  /// Base slice seal rate: fixed-window edges per second (1 / the group's
  /// slice period). 0 when the group has no fixed time windows.
  double slices_per_sec = 0.0;
  /// Operator folds per second: events/sec summed over lanes weighted by
  /// the lane's (planned or group) operator count.
  double fold_evals_per_sec = 0.0;
  /// Window-assembly merges per second: for every fixed time spec, windows
  /// per second x partials merged per window (base slices, or feeder
  /// composites when the plan installed a factor edge).
  double merges_per_sec = 0.0;

  double total() const {
    return slices_per_sec + fold_evals_per_sec + merges_per_sec;
  }
};

/// Slice period of the group's fixed time windows: the gcd over every
/// fixed time spec's length and slide (stream slicing cuts at every window
/// edge, and edges repeat with this period). 0 when the group has no fixed
/// time windows.
int64_t SlicePeriod(const QueryGroup& group);

/// Evaluates the cost model for `group` under its current plan (use a
/// default-constructed / disabled plan on a copy to price the unoptimized
/// execution). `events_per_sec` scales the fold term only.
GroupCost EstimateGroupCost(const QueryGroup& group, double events_per_sec);

/// Merges saved per second by assembling a window of `length`/`slide` from
/// feeder composites of length `feeder_len` instead of base slices of
/// `slice_period`. Positive iff the factor edge is worth installing; the
/// feeder's own composite build (one merge per base slice per feeder
/// window) is charged against the gain.
double FactorGain(int64_t length, int64_t slide, int64_t feeder_len,
                  int64_t slice_period);

}  // namespace opt
}  // namespace desis

#endif  // DESIS_OPT_COST_MODEL_H_
