#include "opt/cost_model.h"

#include <numeric>

#include "core/spec_layout.h"

namespace desis {
namespace opt {

namespace {

constexpr double kMicrosPerSec = 1e6;

/// Effective operator mask of one lane under the group's plan.
OperatorMask LaneMaskOf(const QueryGroup& group, uint32_t lane) {
  const auto& lm = group.plan.lane_masks;
  return (group.plan.optimized && lane < lm.size() && lm[lane] != 0)
             ? lm[lane]
             : group.mask;
}

}  // namespace

int64_t SlicePeriod(const QueryGroup& group) {
  int64_t period = 0;
  for (const GroupedQuery& gq : group.queries) {
    const WindowSpec& w = gq.query.window;
    if (!w.IsFixedSize() || w.measure != WindowMeasure::kTime) continue;
    period = std::gcd(period, w.length);
    period = std::gcd(period, w.slide);
  }
  return period;
}

GroupCost EstimateGroupCost(const QueryGroup& group, double events_per_sec) {
  GroupCost cost;

  const int64_t period = SlicePeriod(group);
  if (period > 0) cost.slices_per_sec = kMicrosPerSec / period;

  // Fold term: each event is folded once per lane it matches; without
  // selectivity statistics the model assumes every event matches exactly
  // one lane when lanes partition by key, otherwise all lanes (the
  // conservative bound used for planning is the *relative* cost between
  // plans, which the assumption cancels out of).
  double lane_ops = 0.0;
  for (uint32_t lane = 0; lane < group.lanes.size(); ++lane) {
    lane_ops += OperatorCount(LaneMaskOf(group, lane));
  }
  if (!group.lanes.empty()) {
    const bool partitioned = group.lanes.front().predicate.has_key;
    if (partitioned) lane_ops /= static_cast<double>(group.lanes.size());
  }
  cost.fold_evals_per_sec = events_per_sec * lane_ops;

  // Merge term per fixed time spec, honouring installed factor edges.
  const auto layout = DeriveSpecLayout(group);
  for (uint32_t si = 0; si < layout.size(); ++si) {
    const WindowSpec& w = layout[si].spec;
    if (!w.IsFixedSize() || w.measure != WindowMeasure::kTime) continue;
    if (period <= 0 || w.slide <= 0) continue;
    const double windows_per_sec = kMicrosPerSec / w.slide;
    const int32_t feeder = group.plan.FeederOf(si);
    const int64_t unit =
        feeder >= 0 ? layout[static_cast<size_t>(feeder)].spec.length : period;
    cost.merges_per_sec +=
        windows_per_sec * (static_cast<double>(w.length) / unit);
  }
  return cost;
}

double FactorGain(int64_t length, int64_t slide, int64_t feeder_len,
                  int64_t slice_period) {
  if (slice_period <= 0 || slide <= 0 || feeder_len <= slice_period) {
    return 0.0;
  }
  const double windows_per_sec = kMicrosPerSec / slide;
  const double base_merges = static_cast<double>(length) / slice_period;
  const double factored_merges = static_cast<double>(length) / feeder_len;
  // The feeder is an existing tumbling spec whose windows the group
  // assembles anyway; sealing each as a composite costs one extra merge
  // per feeder window, not a rebuild from base slices.
  const double feeder_seal_per_sec = kMicrosPerSec / feeder_len;
  return windows_per_sec * (base_merges - factored_merges) -
         feeder_seal_per_sec;
}

}  // namespace opt
}  // namespace desis
