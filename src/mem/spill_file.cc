#include "mem/spill_file.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <queue>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace desis::mem {
namespace {

uint64_t Fnv1a(const void* data, size_t n, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

constexpr uint64_t kFnvBasis = 0xCBF29CE484222325ull;

int ProcessId() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

/// Buffered forward reader over one run; refills in chunks so a k-way
/// merge streams every run with O(chunk) memory per cursor.
class RunCursor {
 public:
  static constexpr size_t kChunkValues = 4096;

  RunCursor(std::FILE* file, uint64_t offset, uint64_t count,
            uint64_t checksum)
      : file_(file), offset_(offset), remaining_(count), checksum_(checksum) {}

  /// Loads the next chunk. false on exhaustion or error (check status()).
  bool Refill() {
    if (remaining_ == 0) {
      if (!verified_) {
        verified_ = true;
        if (running_ != checksum_) {
          status_ = Status::Internal("spill run checksum mismatch");
        }
      }
      return false;
    }
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(remaining_, kChunkValues));
    buf_.resize(n);
    if (std::fseek(file_, static_cast<long>(offset_), SEEK_SET) != 0) {
      status_ = Status::Internal("spill seek failed");
      return false;
    }
    if (std::fread(buf_.data(), sizeof(double), n, file_) != n) {
      status_ = Status::Internal("truncated spill run");
      return false;
    }
    running_ = Fnv1a(buf_.data(), n * sizeof(double), running_);
    offset_ += n * sizeof(double);
    remaining_ -= n;
    pos_ = 0;
    return true;
  }

  bool Next(double* v) {
    if (pos_ >= buf_.size() && !Refill()) return false;
    *v = buf_[pos_++];
    return true;
  }

  /// After exhaustion: whole-run checksum verdict (or the I/O error).
  const Status& status() const { return status_; }

 private:
  std::FILE* file_;
  uint64_t offset_;
  uint64_t remaining_;
  uint64_t checksum_;
  uint64_t running_ = kFnvBasis;
  bool verified_ = false;
  Status status_ = Status::OK();
  std::vector<double> buf_;
  size_t pos_ = 0;
};

}  // namespace

std::string ResolveSpillDir(const std::string& configured) {
  return configured.empty() ? ".desis_spill" : configured;
}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create spill dir " + dir + ": " +
                            ec.message());
  }
  static std::atomic<uint64_t> seq{0};
  const std::string path = dir + "/run-" + std::to_string(ProcessId()) + "-" +
                           std::to_string(seq.fetch_add(1)) + ".spill";
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::Internal("cannot open spill file " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<SpillFile>(new SpillFile(file, path));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // cleanup-on-destruct; best effort
}

Result<uint32_t> SpillFile::AppendRun(const double* values, size_t n) {
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::Internal("spill seek failed");
  }
  const long at = std::ftell(file_);
  if (at < 0) return Status::Internal("spill tell failed");
  if (std::fwrite(values, sizeof(double), n, file_) != n) {
    return Status::Internal("spill write failed (disk full?)");
  }
  // Flush so the on-disk bytes are authoritative the moment the run is
  // recorded — reads must observe exactly what was appended, never a stale
  // stdio buffer that a later seek would replay over external changes.
  if (std::fflush(file_) != 0) {
    return Status::Internal("spill flush failed (disk full?)");
  }
  RunMeta meta;
  meta.offset = static_cast<uint64_t>(at);
  meta.count = n;
  meta.checksum = Fnv1a(values, n * sizeof(double), kFnvBasis);
  runs_.push_back(meta);
  bytes_written_ += n * sizeof(double);
  return static_cast<uint32_t>(runs_.size() - 1);
}

Status SpillFile::ReadRun(uint32_t run, std::vector<double>* out) const {
  if (run >= runs_.size()) return Status::InvalidArgument("no such spill run");
  const RunMeta& meta = runs_[run];
  out->clear();
  out->reserve(meta.count);
  RunCursor cursor(file_, meta.offset, meta.count, meta.checksum);
  double v;
  while (cursor.Next(&v)) out->push_back(v);
  if (!cursor.status().ok()) return cursor.status();
  if (out->size() != meta.count) return Status::Internal("truncated spill run");
  return Status::OK();
}

Status SpillFile::MergeRuns(const std::vector<uint32_t>& runs,
                            const std::vector<double>& resident,
                            std::vector<double>* out) const {
  out->clear();
  uint64_t total = resident.size();
  std::vector<RunCursor> cursors;
  cursors.reserve(runs.size());
  for (uint32_t run : runs) {
    if (run >= runs_.size()) {
      return Status::InvalidArgument("no such spill run");
    }
    const RunMeta& meta = runs_[run];
    total += meta.count;
    cursors.emplace_back(file_, meta.offset, meta.count, meta.checksum);
  }
  out->reserve(total);

  // Min-heap over (value, source index); the resident values are source
  // `runs.size()`, so ties drain disk runs in run order, resident last.
  using Head = std::pair<double, size_t>;
  const auto greater = [](const Head& a, const Head& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(greater);

  size_t resident_pos = 0;
  double v;
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].Next(&v)) {
      heap.push({v, i});
    } else if (!cursors[i].status().ok()) {
      return cursors[i].status();
    }
  }
  if (!resident.empty()) heap.push({resident[0], cursors.size()});

  while (!heap.empty()) {
    const auto [value, src] = heap.top();
    heap.pop();
    out->push_back(value);
    if (src == cursors.size()) {
      if (++resident_pos < resident.size()) {
        heap.push({resident[resident_pos], src});
      }
    } else if (cursors[src].Next(&v)) {
      heap.push({v, src});
    } else if (!cursors[src].status().ok()) {
      return cursors[src].status();
    }
  }
  return Status::OK();
}

Status SpillFile::Reset() {
  runs_.clear();
  bytes_written_ = 0;
  // Reopen truncating: releases the disk space without churning the path.
  std::FILE* reopened = std::freopen(path_.c_str(), "w+b", file_);
  if (reopened == nullptr) {
    file_ = nullptr;
    return Status::Internal("spill reset failed");
  }
  file_ = reopened;
  return Status::OK();
}

}  // namespace desis::mem
