#include "mem/memory_governor.h"

#include <algorithm>

namespace desis::mem {

MemoryGovernor::MemoryGovernor(MemoryOptions options)
    : options_(std::move(options)) {}

void MemoryGovernor::Register(SpillClient* client) {
  if (std::find(clients_.begin(), clients_.end(), client) == clients_.end()) {
    clients_.push_back(client);
  }
}

void MemoryGovernor::Unregister(SpillClient* client) {
  const auto it = std::find(clients_.begin(), clients_.end(), client);
  if (it == clients_.end()) return;
  const size_t idx = static_cast<size_t>(it - clients_.begin());
  clients_.erase(it);
  if (cursor_ > idx) --cursor_;
  if (!clients_.empty()) cursor_ %= clients_.size();
}

void MemoryGovernor::Charge(uint64_t bytes) {
  resident_ += bytes;
  if (resident_ > peak_resident_) peak_resident_ = resident_;
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<int64_t>(resident_));
  }
}

void MemoryGovernor::Discharge(uint64_t bytes) {
  resident_ = bytes > resident_ ? 0 : resident_ - bytes;
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<int64_t>(resident_));
  }
}

void MemoryGovernor::DischargeQuiet(uint64_t bytes) {
  resident_ = bytes > resident_ ? 0 : resident_ - bytes;
}

void MemoryGovernor::Relieve() {
  if (options_.budget_bytes == 0 || resident_ <= soft_limit() || relieving_ ||
      clients_.empty()) {
    return;
  }
  relieving_ = true;
  uint64_t shed_this_cycle = 0;
  size_t asked = 0;
  while (resident_ > soft_limit()) {
    const uint64_t target = resident_ - soft_limit();
    SpillClient* client = clients_[cursor_];
    cursor_ = (cursor_ + 1) % clients_.size();
    shed_this_cycle += client->ShedBytes(target);
    if (++asked >= clients_.size()) {
      // One full pass: if nobody shed anything, every client is dry (all
      // remaining state is ineligible) — stop rather than spin.
      if (shed_this_cycle == 0) break;
      shed_this_cycle = 0;
      asked = 0;
    }
  }
  relieving_ = false;
}

void MemoryGovernor::NoteSpill(uint64_t bytes) {
  ++spills_;
  spill_bytes_ += bytes;
  if (spills_counter_ != nullptr) spills_counter_->Add(1);
  if (spill_bytes_counter_ != nullptr) spill_bytes_counter_->Add(bytes);
}

void MemoryGovernor::NoteRestore(uint64_t bytes) {
  ++restores_;
  restore_bytes_ += bytes;
  if (restores_counter_ != nullptr) restores_counter_->Add(1);
}

Result<std::unique_ptr<SpillFile>> MemoryGovernor::NewSpillFile() {
  return SpillFile::Create(ResolveSpillDir(options_.spill_dir));
}

void MemoryGovernor::AttachMetrics(obs::MetricsRegistry* registry,
                                   obs::Labels labels) {
  if (registry == nullptr) return;
  resident_gauge_ =
      registry->GetGauge("engine.bytes_resident", labels, "bytes");
  spills_counter_ = registry->GetCounter("engine.spills", labels, "spills");
  spill_bytes_counter_ =
      registry->GetCounter("engine.spill_bytes", labels, "bytes");
  restores_counter_ =
      registry->GetCounter("engine.spill_restores", labels, "restores");
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<int64_t>(resident_));
  }
}

}  // namespace desis::mem
