#ifndef DESIS_MEM_TDIGEST_H_
#define DESIS_MEM_TDIGEST_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/serde.h"

namespace desis::mem {

/// Merging t-digest (Dunning & Ertl) over double values: the opt-in sketch
/// backing for approximate median/quantile lanes (AggregationSpec::
/// approx_quantile). State is O(compression) regardless of how many values
/// were folded, so a sketch lane's per-slice footprint is constant.
///
/// Error bound: with the k1 (arcsine) scale function, a centroid at
/// quantile q holds at most ~(4 pi / compression) * sqrt(q(1-q)) of the
/// total rank mass, so the rank error of Quantile() is
///   |est_rank - true_rank| / n  <=  ~2 pi sqrt(q(1-q)) / compression,
/// i.e. < 1.6% at the median and tighter towards the tails for the default
/// compression of 200 (DESIGN.md §3, memory governance). Extrema are
/// tracked exactly, so min/max finalized from a sketch lane are exact.
class TDigest {
 public:
  static constexpr double kDefaultCompression = 200.0;

  explicit TDigest(double compression = kDefaultCompression);

  void Add(double v) { AddWeighted(v, 1); }
  void AddN(const double* v, size_t n);
  /// Folds `other` into this digest and recompresses. `other` keeps its
  /// buffered (uncompressed) points; they are folded too.
  void Merge(const TDigest& other);
  /// Flushes buffered points into the centroid list. Quantile() and
  /// SerializeTo() require a compressed digest.
  void Compress();
  bool compressed() const { return buffer_.empty(); }

  /// Interpolated value at quantile q in [0, 1]. Requires compressed().
  double Quantile(double q) const;

  uint64_t count() const { return total_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double compression() const { return compression_; }
  size_t num_centroids() const { return centroids_.size(); }

  /// Heap bytes held (centroid list + pending buffer capacity).
  size_t bytes() const;

  /// Wire format: compression, count, extrema, centroid list. Requires
  /// compressed() — sealed slice state always is.
  void SerializeTo(ByteWriter& out) const;
  static TDigest DeserializeFrom(ByteReader& in);

 private:
  struct Centroid {
    double mean;
    uint64_t weight;
  };

  void AddWeighted(double v, uint64_t w);
  /// Sorts `items` by mean and greedily re-merges them under the k1 scale
  /// bound, replacing centroids_.
  void Rebuild(std::vector<Centroid>& items);

  double compression_;
  std::vector<Centroid> centroids_;  // sorted by mean once compressed
  std::vector<Centroid> buffer_;     // unmerged points
  uint64_t total_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace desis::mem

#endif  // DESIS_MEM_TDIGEST_H_
