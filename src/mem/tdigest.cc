#include "mem/tdigest.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace desis::mem {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression < 20.0 ? 20.0 : compression) {
  buffer_.reserve(static_cast<size_t>(compression_));
}

void TDigest::AddWeighted(double v, uint64_t w) {
  if (w == 0) return;
  buffer_.push_back({v, w});
  total_ += w;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  // Amortized: recompress once the pending buffer rivals the centroid
  // budget, so memory stays O(compression) between Seal() calls too.
  if (buffer_.size() >= static_cast<size_t>(4.0 * compression_)) Compress();
}

void TDigest::AddN(const double* v, size_t n) {
  for (size_t i = 0; i < n; ++i) AddWeighted(v[i], 1);
}

void TDigest::Merge(const TDigest& other) {
  std::vector<Centroid> items;
  items.reserve(centroids_.size() + buffer_.size() +
                other.centroids_.size() + other.buffer_.size());
  items.insert(items.end(), centroids_.begin(), centroids_.end());
  items.insert(items.end(), buffer_.begin(), buffer_.end());
  items.insert(items.end(), other.centroids_.begin(), other.centroids_.end());
  items.insert(items.end(), other.buffer_.begin(), other.buffer_.end());
  buffer_.clear();
  total_ += other.total_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  Rebuild(items);
}

void TDigest::Compress() {
  if (buffer_.empty()) return;
  std::vector<Centroid> items;
  items.reserve(centroids_.size() + buffer_.size());
  items.insert(items.end(), centroids_.begin(), centroids_.end());
  items.insert(items.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  buffer_.shrink_to_fit();
  Rebuild(items);
}

void TDigest::Rebuild(std::vector<Centroid>& items) {
  if (items.empty()) {
    centroids_.clear();
    return;
  }
  // Deterministic order: by mean, ties by weight, so merge results do not
  // depend on which side the equal points came from.
  std::sort(items.begin(), items.end(), [](const Centroid& a, const Centroid& b) {
    if (a.mean != b.mean) return a.mean < b.mean;
    return a.weight < b.weight;
  });

  const double n = static_cast<double>(total_);
  // k1 (arcsine) scale: k(q) = delta / (2 pi) * asin(2q - 1). A centroid may
  // span at most one unit of k, which concentrates resolution at the tails.
  const auto scale_k = [&](double q) {
    q = std::clamp(q, 0.0, 1.0);
    return compression_ / kTwoPi * std::asin(2.0 * q - 1.0);
  };

  std::vector<Centroid> merged;
  merged.reserve(static_cast<size_t>(2.0 * compression_) + 8);
  Centroid cur = items[0];
  double cum = 0.0;  // weight strictly before `cur`
  for (size_t i = 1; i < items.size(); ++i) {
    const Centroid& c = items[i];
    const double proposed =
        cum + static_cast<double>(cur.weight) + static_cast<double>(c.weight);
    if (scale_k(proposed / n) - scale_k(cum / n) <= 1.0) {
      // Weighted mean keeps the centroid's rank mass centered.
      const double w = static_cast<double>(cur.weight);
      const double cw = static_cast<double>(c.weight);
      cur.mean = (cur.mean * w + c.mean * cw) / (w + cw);
      cur.weight += c.weight;
    } else {
      cum += static_cast<double>(cur.weight);
      merged.push_back(cur);
      cur = c;
    }
  }
  merged.push_back(cur);
  centroids_ = std::move(merged);
}

double TDigest::Quantile(double q) const {
  assert(compressed() && "Compress() before Quantile()");
  if (total_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  if (centroids_.size() == 1) return centroids_[0].mean;

  const double rank = q * static_cast<double>(total_);
  // Centroid i is anchored at rank cum_i + w_i / 2; interpolate between
  // neighboring anchors, and between the exact extrema and the outermost
  // anchors at the edges.
  double prev_anchor = 0.0;
  double prev_mean = min_;
  double cum = 0.0;
  for (const Centroid& c : centroids_) {
    const double w = static_cast<double>(c.weight);
    const double anchor = cum + w / 2.0;
    if (rank < anchor) {
      const double span = anchor - prev_anchor;
      if (span <= 0.0) return c.mean;
      const double frac = (rank - prev_anchor) / span;
      return prev_mean + frac * (c.mean - prev_mean);
    }
    prev_anchor = anchor;
    prev_mean = c.mean;
    cum += w;
  }
  const double span = static_cast<double>(total_) - prev_anchor;
  if (span <= 0.0) return max_;
  const double frac = (rank - prev_anchor) / span;
  return prev_mean + frac * (max_ - prev_mean);
}

size_t TDigest::bytes() const {
  return centroids_.capacity() * sizeof(Centroid) +
         buffer_.capacity() * sizeof(Centroid);
}

void TDigest::SerializeTo(ByteWriter& out) const {
  assert(compressed() && "Compress() before SerializeTo()");
  out.WriteDouble(compression_);
  out.WriteU64(total_);
  out.WriteDouble(min_);
  out.WriteDouble(max_);
  out.WriteU64(centroids_.size());
  for (const Centroid& c : centroids_) {
    out.WriteDouble(c.mean);
    out.WriteU64(c.weight);
  }
}

TDigest TDigest::DeserializeFrom(ByteReader& in) {
  TDigest d(in.ReadDouble());
  d.total_ = in.ReadU64();
  d.min_ = in.ReadDouble();
  d.max_ = in.ReadDouble();
  const uint64_t n = in.ReadU64();
  d.centroids_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double mean = in.ReadDouble();
    const uint64_t weight = in.ReadU64();
    d.centroids_.push_back({mean, weight});
  }
  return d;
}

}  // namespace desis::mem
