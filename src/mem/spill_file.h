#ifndef DESIS_MEM_SPILL_FILE_H_
#define DESIS_MEM_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace desis::mem {

/// Append-only run file for spilled sort-buffer state: each run is a
/// sorted array of doubles written sequentially; reads are checksummed so
/// a truncated or corrupted file surfaces as a Status error, never UB.
/// Run metadata (offset, count, checksum) lives in memory — the file is a
/// single-process scratch area, created under the spill directory and
/// unlinked on destruction (spill hygiene: crashed runs leave files only
/// inside the .gitignore'd spill dir, never in the tree).
///
/// Single-threaded: one SpillFile belongs to one StreamSlicer (and thus to
/// one shard thread); the governor hands out one file per client.
class SpillFile {
 public:
  /// Creates a uniquely named run file under `dir` (created if missing).
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& dir);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends `n` ascending-sorted values as one run; returns the run index.
  Result<uint32_t> AppendRun(const double* values, size_t n);

  size_t num_runs() const { return runs_.size(); }
  uint64_t run_length(uint32_t run) const { return runs_[run].count; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

  /// Reads run `run` back into `out` (replacing its contents).
  Status ReadRun(uint32_t run, std::vector<double>* out) const;

  /// K-way merges the given sorted runs together with the (already sorted)
  /// in-memory `resident` values into `out`, ascending. Ties break by
  /// source order (resident last), so the merge is deterministic.
  Status MergeRuns(const std::vector<uint32_t>& runs,
                   const std::vector<double>& resident,
                   std::vector<double>* out) const;

  /// Drops every run and truncates the file to zero bytes — space reuse
  /// once no live slice references any run.
  Status Reset();

 private:
  struct RunMeta {
    uint64_t offset;
    uint64_t count;
    uint64_t checksum;  // FNV-1a over the run's raw bytes
  };

  SpillFile(std::FILE* file, std::string path) : file_(file), path_(std::move(path)) {}

  std::FILE* file_;
  std::string path_;
  std::vector<RunMeta> runs_;
  uint64_t bytes_written_ = 0;
};

/// Resolves the spill directory: `configured` when non-empty, else
/// ".desis_spill" under the current working directory — the build tree for
/// tests and benches, and .gitignore'd in case a binary runs from the
/// repository root.
std::string ResolveSpillDir(const std::string& configured);

}  // namespace desis::mem

#endif  // DESIS_MEM_SPILL_FILE_H_
