#ifndef DESIS_MEM_MEMORY_GOVERNOR_H_
#define DESIS_MEM_MEMORY_GOVERNOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mem/spill_file.h"
#include "obs/metrics.h"

namespace desis::mem {

/// Memory budget for one engine (or one shard of a sharded engine).
/// budget_bytes == 0 means ungoverned: no accounting, no spilling — the
/// seed-identical default everywhere a MemoryOptions is embedded.
struct MemoryOptions {
  /// Resident-byte budget for governed slice state. 0 disables governance.
  uint64_t budget_bytes = 0;
  /// Spill run-file directory; empty resolves to ".desis_spill" under the
  /// working directory (the build tree for tests/benches).
  std::string spill_dir;
  /// Sort buffers below this size are never spilled — sheding tiny lanes
  /// costs more in run bookkeeping than it frees.
  uint64_t min_spill_bytes = 32 * 1024;
};

/// A state owner the governor can ask to shed bytes (a StreamSlicer). The
/// client spills its coldest eligible state and returns how many resident
/// bytes it actually released (0 = nothing left to shed).
class SpillClient {
 public:
  virtual ~SpillClient() = default;
  virtual uint64_t ShedBytes(uint64_t target) = 0;
};

/// Tracks resident bytes of governed slice state against a budget and,
/// when over, asks registered clients round-robin to shed until the budget
/// holds or every client is dry. Single-threaded by design: each governor
/// belongs to one engine (or one shard) and is only touched from that
/// engine's ingest thread, so accounting is plain integer arithmetic.
class MemoryGovernor {
 public:
  explicit MemoryGovernor(MemoryOptions options);

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  const MemoryOptions& options() const { return options_; }
  uint64_t budget() const { return options_.budget_bytes; }

  void Register(SpillClient* client);
  void Unregister(SpillClient* client);

  /// Resident-byte accounting; clients delta-charge as their state grows
  /// and shrinks. Charge also tracks the peak for bench assertions.
  void Charge(uint64_t bytes);
  void Discharge(uint64_t bytes);

  /// Destructor-path Discharge: adjusts the resident count without
  /// publishing to the gauge. Teardown order between the metrics registry
  /// and the engine is unspecified (nothing else writes a handle at
  /// destruction), so a dying client must not touch obs handles that may
  /// already dangle.
  void DischargeQuiet(uint64_t bytes);

  bool OverBudget() const {
    return options_.budget_bytes != 0 && resident_ > options_.budget_bytes;
  }

  /// Relief high-water mark: 3/4 of the budget. Relieve() triggers here and
  /// sheds back down to it, so the budget itself is only breached when a
  /// single charge between relief points exceeds the remaining quarter —
  /// clients call Relieve() after every bounded charge site precisely to
  /// keep those deltas small, which is what makes "peak resident <= budget"
  /// hold for workloads whose per-slice state fits a quarter of the budget.
  uint64_t soft_limit() const {
    return options_.budget_bytes - options_.budget_bytes / 4;
  }

  /// If resident exceeds soft_limit(), asks clients round-robin to shed
  /// until back at the mark or a full cycle sheds nothing. Reentrancy-safe:
  /// a client whose shedding re-enters (e.g. via Discharge) will not
  /// recurse into another round.
  void Relieve();

  /// Spill bookkeeping, driven by clients as they spill/restore.
  void NoteSpill(uint64_t bytes);
  void NoteRestore(uint64_t bytes);

  /// Creates a run file for a client under the resolved spill directory.
  Result<std::unique_ptr<SpillFile>> NewSpillFile();

  uint64_t resident() const { return resident_; }
  uint64_t peak_resident() const { return peak_resident_; }
  uint64_t spills() const { return spills_; }
  uint64_t spill_bytes() const { return spill_bytes_; }
  uint64_t restores() const { return restores_; }
  uint64_t restore_bytes() const { return restore_bytes_; }

  /// Registers engine.bytes_resident / engine.spills / engine.spill_bytes /
  /// engine.spill_restores under `labels`. Call before ingest starts (same
  /// contract as engine metrics attach); re-attaching rebinds the handles.
  void AttachMetrics(obs::MetricsRegistry* registry, obs::Labels labels);

 private:
  MemoryOptions options_;
  std::vector<SpillClient*> clients_;
  size_t cursor_ = 0;       // round-robin shed position
  bool relieving_ = false;  // reentrancy guard

  uint64_t resident_ = 0;
  uint64_t peak_resident_ = 0;
  uint64_t spills_ = 0;
  uint64_t spill_bytes_ = 0;
  uint64_t restores_ = 0;
  uint64_t restore_bytes_ = 0;

  obs::Gauge* resident_gauge_ = nullptr;
  obs::Counter* spills_counter_ = nullptr;
  obs::Counter* spill_bytes_counter_ = nullptr;
  obs::Counter* restores_counter_ = nullptr;
};

}  // namespace desis::mem

#endif  // DESIS_MEM_MEMORY_GOVERNOR_H_
