#ifndef DESIS_OBS_METRICS_H_
#define DESIS_OBS_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/relaxed_cell.h"

/// Compile-time observability switch. Built with -DDESIS_OBS=OFF (CMake
/// option), every registry lookup returns nullptr and the instrumentation
/// call sites — which all guard on the handle — compile down to nothing.
#ifndef DESIS_OBS_ENABLED
#define DESIS_OBS_ENABLED 1
#endif

namespace desis::obs {

/// Metric labels, in registration order ({{"node","3"},{"role","local"}}).
/// Two metrics are the same series iff name and the full ordered label list
/// match. The schema contract for every metric lives in docs/METRICS.md.
using Labels = std::vector<std::pair<std::string, std::string>>;

#if DESIS_OBS_ENABLED

/// Monotonic counter. Add() is a single relaxed fetch_add — safe from any
/// thread, no allocation, no lock.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_.load(); }

 private:
  RelaxedU64 v_;
};

/// Point-in-time signed value. Set/Add/StoreMax are single relaxed atomic
/// ops; StoreMax is the high-water-mark update used by queue-depth gauges.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v); }
  void Add(int64_t d) { v_ += d; }
  void StoreMax(int64_t v) { v_.StoreMax(v); }
  int64_t value() const { return v_.load(); }

 private:
  RelaxedI64 v_;
};

/// Log-scale histogram over non-negative integer samples (latencies in ns,
/// sizes in bytes). Buckets are 2^(1/16)-ish: values below 2^kSubBits are
/// exact; above that each power of two splits into 2^kSubBits sub-buckets,
/// bounding the relative quantile error at 1/2^kSubBits (6.25%). Record()
/// is two relaxed fetch_adds plus two CAS-max updates — lock-free, no
/// allocation. Quantile() linearly interpolates inside the hit bucket.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kNumBuckets = ((64 - kSubBits) << kSubBits) +
                                          (1u << kSubBits);

  void Record(int64_t sample);

  uint64_t count() const { return count_.load(); }
  uint64_t sum() const { return sum_.load(); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const { return max_.load(); }
  /// q in [0,1]; returns 0 when empty. p50 = Quantile(0.50), etc.
  double Quantile(double q) const;

  static uint32_t BucketFor(uint64_t v);
  static uint64_t BucketLowerBound(uint32_t idx);

 private:
  RelaxedU64 count_;
  RelaxedU64 sum_;
  RelaxedU64 min_{UINT64_MAX};
  RelaxedU64 max_;
  RelaxedU64 buckets_[kNumBuckets];
};

/// Named metric registry: the one place every layer registers its series.
/// Get* registers on first call (mutex + allocation) and returns a stable
/// handle; the handle's update methods are the only thing on hot paths.
/// Snapshot exporters (ToJson/ToCsv) may run concurrently with updates —
/// they read the same relaxed atomics the writers use.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// Registers (or finds) a series; `unit` is documentation carried into
  /// exports ("ns", "bytes", "events"). Never returns null. Requesting the
  /// same name+labels again returns the same handle whatever the unit.
  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& unit = "");
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& unit = "");
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          const std::string& unit = "");

  /// Number of registered series.
  size_t size() const;

  /// One JSON object: {"metrics":[{name,type,unit,labels,...}, ...]} in
  /// registration order. Counters/gauges carry "value"; histograms carry
  /// count/sum/min/max/p50/p95/p99. Schema: docs/METRICS.md.
  std::string ToJson() const;

  /// CSV with a fixed header; empty numeric columns for non-applicable
  /// fields (e.g. "value" for histograms). Schema: docs/METRICS.md.
  std::string ToCsv() const;

 private:
  struct Impl;  // series storage + registration mutex (defined in metrics.cc)
  Impl* impl() const;

  mutable Impl* impl_ = nullptr;
};

#else  // !DESIS_OBS_ENABLED ------------------------------------------------

// Stubs: same surface, zero storage, no-op methods. Registry lookups
// return nullptr so guarded call sites (`if (handle) handle->...`) vanish.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  void StoreMax(int64_t) {}
  int64_t value() const { return 0; }
};

class Histogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kNumBuckets = 1;
  void Record(int64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t min() const { return 0; }
  uint64_t max() const { return 0; }
  double Quantile(double) const { return 0; }
};

class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string&, Labels = {},
                      const std::string& = "") {
    return nullptr;
  }
  Gauge* GetGauge(const std::string&, Labels = {}, const std::string& = "") {
    return nullptr;
  }
  Histogram* GetHistogram(const std::string&, Labels = {},
                          const std::string& = "") {
    return nullptr;
  }
  size_t size() const { return 0; }
  std::string ToJson() const { return "{\"metrics\":[]}"; }
  std::string ToCsv() const {
    return "name,labels,type,unit,value,count,sum,min,max,p50,p95,p99\n";
  }
};

#endif  // DESIS_OBS_ENABLED

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by every obs exporter.
std::string JsonEscape(const std::string& s);

}  // namespace desis::obs

#endif  // DESIS_OBS_METRICS_H_
