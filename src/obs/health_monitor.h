#ifndef DESIS_OBS_HEALTH_MONITOR_H_
#define DESIS_OBS_HEALTH_MONITOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/event.h"
#include "obs/flight_recorder.h"  // AnomalyKind
#include "obs/metrics.h"
#include "obs/relaxed_cell.h"

#if DESIS_OBS_ENABLED
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#endif

namespace desis::obs {

/// Watchdog configuration, embedded as ClusterOptions::watchdog. Plain
/// data in both OBS flavors so cluster code is flavor-free; with
/// DESIS_OBS=OFF the monitor below is a stub and `enabled` is inert.
struct WatchdogOptions {
  bool enabled = false;
  /// Real-time sampling period of the background thread (ms). <= 0 keeps
  /// the thread off even when enabled — deterministic tests drive
  /// Cluster::TickWatchdogForTest() instead.
  int period_ms = 20;
  /// Consecutive samples a signal must persist before an anomaly fires.
  /// Detection latency is ~period_ms * silence_threshold; larger values
  /// trade latency for false-positive immunity on noisy schedulers.
  int silence_threshold = 3;
  /// Virtual-time slack (µs): a node only counts as *lagging* when its
  /// watermark trails the healthiest live watermark by more than this.
  /// Keeps idle-but-caught-up nodes (e.g. after stream end) anomaly-free.
  int64_t grace_us = 2000;
  /// silent_node anomalies auto-invoke the recover hook
  /// (Cluster::RecoverSilentIntermediates) once per episode.
  bool auto_recover = true;
};

/// One sample of one node's lock-free health cells, taken by the probe
/// hook without locks (relaxed reads of NodeStats/NodeHealth).
struct NodeProbe {
  uint32_t node_id = 0;
  uint8_t role = 255;
  /// False once the node was declared dead (crash-recovered); dead nodes
  /// are skipped by every detector.
  bool alive = true;
  /// True for nodes RecoverSilentIntermediates can act on (alive
  /// intermediates under a recovery-enabled Desis cluster).
  bool recoverable = false;
  /// Monotonic liveness counter: any received message or outbound
  /// watermark advance bumps it.
  uint64_t heartbeats = 0;
  Timestamp watermark = kNoTimestamp;
  int64_t mailbox_depth = 0;
  uint64_t spill_restores = 0;
};

/// Callbacks the monitor drives; all invoked on the watchdog thread (or
/// the caller's thread via TickForTest). `recover` returns true when a
/// recovery op actually ran.
struct WatchdogHooks {
  std::function<std::vector<NodeProbe>()> probe;
  std::function<void()> sample_health;
  std::function<void(AnomalyKind, uint32_t)> on_anomaly;
  std::function<bool(Timestamp)> recover;
};

#if DESIS_OBS_ENABLED

/// Background health watchdog: every period it publishes health gauges
/// (sample_health), probes per-node liveness cells, and runs four typed
/// detectors (docs/FAULT_TOLERANCE.md "Automatic failure detection"):
///
///   silent_node     heartbeats frozen for >= silence_threshold samples
///                   AND watermark lagging the live frontier by > grace_us
///                   (or still kNoTimestamp while others advanced).
///   watermark_stall heartbeats still moving (the node receives) but its
///                   watermark frozen and lagging for >= threshold samples.
///   mailbox_growth  mailbox depth strictly increasing for >= threshold
///                   consecutive samples.
///   spill_thrash    spill restores observed in each of >= threshold
///                   consecutive samples.
///
/// Each anomaly fires once per episode (the latch clears when the signal
/// recovers), surfaced through on_anomaly -> health.anomalies{kind,node}.
/// When auto_recover is set, a silent_node episode additionally invokes
/// the recover hook with the minimum watermark across healthy recoverable
/// nodes — but only once every suspect lags it, so recovery never crashes
/// a node that is merely slow.
class HealthMonitor {
 public:
  HealthMonitor(const WatchdogOptions& options, WatchdogHooks hooks);
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;
  ~HealthMonitor();

  /// Spawns the sampler thread (idempotent). Stop() joins it; the
  /// destructor stops implicitly.
  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// One synchronous sampling pass on the caller's thread. Deterministic
  /// unit tests drive detection with this instead of the thread; safe to
  /// mix with a running thread only for smoke checks (detector state is
  /// mutex-guarded either way).
  void TickForTest() { SampleOnce(); }

  uint64_t samples() const { return samples_.load(); }
  uint64_t anomalies() const { return anomalies_.load(); }
  uint64_t auto_recoveries() const { return auto_recoveries_.load(); }

 private:
  /// Per-node detector state, keyed by node id.
  struct Track {
    uint32_t node_id = 0;
    bool initialized = false;
    uint64_t heartbeats = 0;
    Timestamp watermark = kNoTimestamp;
    int64_t mailbox_depth = 0;
    uint64_t spill_restores = 0;
    int silent_streak = 0;
    int stall_streak = 0;
    int growth_streak = 0;
    int thrash_streak = 0;
    bool silent_raised = false;
    bool stall_raised = false;
    bool growth_raised = false;
    bool thrash_raised = false;
    /// Raised-silent and awaiting auto-recovery.
    bool suspect = false;
  };

  void SampleOnce();
  void ThreadMain();
  Track& TrackFor(uint32_t node_id);

  const WatchdogOptions options_;
  const WatchdogHooks hooks_;

  std::mutex mu_;  // guards tracks_ and thread lifecycle
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
  std::atomic<bool> running_{false};
  std::vector<Track> tracks_;

  RelaxedU64 samples_;
  RelaxedU64 anomalies_;
  RelaxedU64 auto_recoveries_;
};

#else  // !DESIS_OBS_ENABLED ------------------------------------------------

class HealthMonitor {
 public:
  HealthMonitor(const WatchdogOptions&, WatchdogHooks) {}
  void Start() {}
  void Stop() {}
  bool running() const { return false; }
  void TickForTest() {}
  uint64_t samples() const { return 0; }
  uint64_t anomalies() const { return 0; }
  uint64_t auto_recoveries() const { return 0; }
};

#endif  // DESIS_OBS_ENABLED

}  // namespace desis::obs

#endif  // DESIS_OBS_HEALTH_MONITOR_H_
