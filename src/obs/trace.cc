#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace desis::obs {

const char* ToString(SlicePhase phase) {
  switch (phase) {
    case SlicePhase::kSliceCreated: return "slice_created";
    case SlicePhase::kPartialShipped: return "partial_shipped";
    case SlicePhase::kMerged: return "merged";
    case SlicePhase::kWindowEmitted: return "window_emitted";
    case SlicePhase::kRetransmit: return "retransmit";
    case SlicePhase::kReattach: return "reattach";
    case SlicePhase::kReplay: return "replay";
    case SlicePhase::kSpill: return "spill";
    case SlicePhase::kRestore: return "restore";
  }
  return "unknown";
}

bool PhaseFromString(const std::string& name, SlicePhase* out) {
  for (uint8_t p = 0; p <= static_cast<uint8_t>(SlicePhase::kRestore);
       ++p) {
    if (name == ToString(static_cast<SlicePhase>(p))) {
      *out = static_cast<SlicePhase>(p);
      return true;
    }
  }
  return false;
}

const char* SpanRoleName(uint8_t role) {
  switch (role) {
    case kSpanRoleLocal: return "local";
    case kSpanRoleIntermediate: return "intermediate";
    case kSpanRoleRoot: return "root";
    case kSpanRoleEngine: return "engine";
  }
  return "unknown";
}

bool SpanRoleFromName(const std::string& name, uint8_t* out) {
  for (uint8_t r : {kSpanRoleLocal, kSpanRoleIntermediate, kSpanRoleRoot,
                    kSpanRoleEngine}) {
    if (name == SpanRoleName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

std::string ChromeTraceFromSpans(std::vector<SliceSpan> spans) {
  // Stable event-time order keeps async begin/instant/end phases legal for
  // the viewer even when spans were collected from several tracers.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SliceSpan& a, const SliceSpan& b) {
                     if (a.virtual_ts != b.virtual_ts) {
                       return a.virtual_ts < b.virtual_ts;
                     }
                     return a.real_ns < b.real_ns;
                   });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // One process_name metadata record per node so the merged view labels
  // each pid with its topology role.
  std::vector<std::pair<uint32_t, uint8_t>> named;
  for (const SliceSpan& s : spans) {
    bool seen = false;
    for (const auto& [node, role] : named) {
      seen = seen || (node == s.node_id && role == s.role);
    }
    if (seen) continue;
    named.emplace_back(s.node_id, s.role);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                  ",\"args\":{\"name\":\"node %" PRIu32 " (%s)\"}}",
                  s.node_id, s.node_id, SpanRoleName(s.role));
    if (!first) out += ',';
    first = false;
    out += buf;
  }
  for (const SliceSpan& s : spans) {
    if (!first) out += ',';
    first = false;
    const char* ph = "n";
    if (s.phase == SlicePhase::kSliceCreated) ph = "b";
    if (s.phase == SlicePhase::kWindowEmitted) ph = "e";
    // Global async id: the slice identity shared across nodes. Window
    // emissions carry no slice id (they are per query), so they track by
    // query instead of collapsing onto one bogus slice-0 lane.
    char gid[64];
    if (s.phase == SlicePhase::kWindowEmitted && s.slice_id == 0) {
      std::snprintf(gid, sizeof(gid), "q%" PRIu64, s.query_id);
    } else {
      std::snprintf(gid, sizeof(gid), "g%" PRIu32 ".s%" PRIu64, s.group_id,
                    s.slice_id);
    }
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"slice\",\"ph\":\"%s\","
        "\"id2\":{\"global\":\"%s\"},\"ts\":%" PRId64 ",\"pid\":%" PRIu32
        ",\"tid\":%" PRIu32 ",\"args\":{\"slice\":%" PRIu64
        ",\"query\":%" PRIu64 ",\"role\":\"%s\",\"real_ns\":%" PRId64 "}}",
        ToString(s.phase), ph, gid, s.virtual_ts, s.node_id, s.group_id,
        s.slice_id, s.query_id, SpanRoleName(s.role), s.real_ns);
    out += buf;
  }
  out += "]}";
  return out;
}

#if DESIS_OBS_ENABLED

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendSpanJson(std::string& out, const SliceSpan& s) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"phase\":\"%s\",\"slice_id\":%" PRIu64 ",\"group\":%" PRIu32
      ",\"query\":%" PRIu64 ",\"node\":%" PRIu32
      ",\"role\":\"%s\",\"virtual_ts\":%" PRId64 ",\"real_ns\":%" PRId64 "}",
      ToString(s.phase), s.slice_id, s.group_id, s.query_id, s.node_id,
      SpanRoleName(s.role), s.virtual_ts, s.real_ns);
  out += buf;
}

}  // namespace

struct SliceTracer::Slot {
  RelaxedU64 seq;  // ticket + 1 of the last completed write; 0 = never
  // Span payload as individual relaxed cells: two Record() calls whose
  // tickets alias one slot (ring wrap) interleave per-field instead of
  // racing on plain memory; the seq check in Snapshot() discards such torn
  // slots. Small fields are packed to keep the slot compact.
  RelaxedU64 slice_id;
  RelaxedU64 query_id;
  RelaxedU64 group_and_node;  // group_id << 32 | node_id
  RelaxedU64 role_and_phase;  // role << 8 | phase
  RelaxedI64 virtual_ts;
  RelaxedI64 real_ns;
};

SliceTracer::SliceTracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

SliceTracer::~SliceTracer() { delete[] slots_; }

void SliceTracer::Record(SlicePhase phase, uint64_t slice_id,
                         uint32_t group_id, uint64_t query_id,
                         uint32_t node_id, uint8_t role,
                         Timestamp virtual_ts) {
  const uint64_t ticket = head_++;
  if (ticket >= capacity_ && drop_counter_ != nullptr) drop_counter_->Add();
  Slot& slot = slots_[ticket % capacity_];
  slot.slice_id.store(slice_id);
  slot.query_id.store(query_id);
  slot.group_and_node.store(static_cast<uint64_t>(group_id) << 32 | node_id);
  slot.role_and_phase.store(static_cast<uint64_t>(role) << 8 |
                            static_cast<uint64_t>(phase));
  slot.virtual_ts.store(virtual_ts);
  slot.real_ns.store(NowNs());
  slot.seq.store(ticket + 1);
}

std::vector<SliceSpan> SliceTracer::Snapshot() const {
  const uint64_t head = head_.load();
  const uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<SliceSpan> out;
  out.reserve(n);
  for (uint64_t t = head - n; t < head; ++t) {
    const Slot& slot = slots_[t % capacity_];
    if (slot.seq.load() != t + 1) continue;  // torn by a ring wrap
    SliceSpan span;
    span.slice_id = slot.slice_id.load();
    span.query_id = slot.query_id.load();
    const uint64_t gn = slot.group_and_node.load();
    span.group_id = static_cast<uint32_t>(gn >> 32);
    span.node_id = static_cast<uint32_t>(gn);
    const uint64_t rp = slot.role_and_phase.load();
    span.role = static_cast<uint8_t>(rp >> 8);
    span.phase = static_cast<SlicePhase>(rp & 0xff);
    span.virtual_ts = slot.virtual_ts.load();
    span.real_ns = slot.real_ns.load();
    out.push_back(span);
  }
  return out;
}

std::string SliceTracer::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const SliceSpan& s : Snapshot()) {
    if (!first) out += ',';
    first = false;
    AppendSpanJson(out, s);
  }
  out += "]";
  return out;
}

std::string SliceTracer::ToChromeTrace() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SliceSpan& s : Snapshot()) {
    if (!first) out += ',';
    first = false;
    const char* ph = "n";
    if (s.phase == SlicePhase::kSliceCreated) ph = "b";
    if (s.phase == SlicePhase::kWindowEmitted) ph = "e";
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"slice\",\"ph\":\"%s\",\"id\":%" PRIu64
        ",\"ts\":%" PRId64 ",\"pid\":%" PRIu32
        ",\"tid\":%" PRIu32 ",\"args\":{\"query\":%" PRIu64
        ",\"role\":\"%s\",\"real_ns\":%" PRId64 "}}",
        ToString(s.phase), ph, s.slice_id, s.virtual_ts, s.node_id, s.group_id,
        s.query_id, SpanRoleName(s.role), s.real_ns);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string MergeTraces(const std::vector<const SliceTracer*>& tracers) {
  std::vector<SliceSpan> spans;
  for (const SliceTracer* tracer : tracers) {
    if (tracer == nullptr) continue;
    std::vector<SliceSpan> part = tracer->Snapshot();
    spans.insert(spans.end(), part.begin(), part.end());
  }
  return ChromeTraceFromSpans(std::move(spans));
}

#endif  // DESIS_OBS_ENABLED

}  // namespace desis::obs
