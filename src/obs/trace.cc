#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace desis::obs {

const char* ToString(SlicePhase phase) {
  switch (phase) {
    case SlicePhase::kSliceCreated: return "slice_created";
    case SlicePhase::kPartialShipped: return "partial_shipped";
    case SlicePhase::kMerged: return "merged";
    case SlicePhase::kWindowEmitted: return "window_emitted";
  }
  return "unknown";
}

const char* SpanRoleName(uint8_t role) {
  switch (role) {
    case kSpanRoleLocal: return "local";
    case kSpanRoleIntermediate: return "intermediate";
    case kSpanRoleRoot: return "root";
    case kSpanRoleEngine: return "engine";
  }
  return "unknown";
}

#if DESIS_OBS_ENABLED

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendSpanJson(std::string& out, const SliceSpan& s) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"phase\":\"%s\",\"slice_id\":%" PRIu64 ",\"group\":%" PRIu32
      ",\"query\":%" PRIu64 ",\"node\":%" PRIu32
      ",\"role\":\"%s\",\"virtual_ts\":%" PRId64 ",\"real_ns\":%" PRId64 "}",
      ToString(s.phase), s.slice_id, s.group_id, s.query_id, s.node_id,
      SpanRoleName(s.role), s.virtual_ts, s.real_ns);
  out += buf;
}

}  // namespace

struct SliceTracer::Slot {
  RelaxedU64 seq;  // ticket + 1 of the last completed write; 0 = never
  SliceSpan span;
};

SliceTracer::SliceTracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

SliceTracer::~SliceTracer() { delete[] slots_; }

void SliceTracer::Record(SlicePhase phase, uint64_t slice_id,
                         uint32_t group_id, uint64_t query_id,
                         uint32_t node_id, uint8_t role,
                         Timestamp virtual_ts) {
  const uint64_t ticket = head_++;
  Slot& slot = slots_[ticket % capacity_];
  slot.span.slice_id = slice_id;
  slot.span.group_id = group_id;
  slot.span.query_id = query_id;
  slot.span.node_id = node_id;
  slot.span.role = role;
  slot.span.phase = phase;
  slot.span.virtual_ts = virtual_ts;
  slot.span.real_ns = NowNs();
  slot.seq.store(ticket + 1);
}

std::vector<SliceSpan> SliceTracer::Snapshot() const {
  const uint64_t head = head_.load();
  const uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<SliceSpan> out;
  out.reserve(n);
  for (uint64_t t = head - n; t < head; ++t) {
    const Slot& slot = slots_[t % capacity_];
    if (slot.seq.load() != t + 1) continue;  // torn by a ring wrap
    out.push_back(slot.span);
  }
  return out;
}

std::string SliceTracer::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const SliceSpan& s : Snapshot()) {
    if (!first) out += ',';
    first = false;
    AppendSpanJson(out, s);
  }
  out += "]";
  return out;
}

std::string SliceTracer::ToChromeTrace() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SliceSpan& s : Snapshot()) {
    if (!first) out += ',';
    first = false;
    const char* ph = "n";
    if (s.phase == SlicePhase::kSliceCreated) ph = "b";
    if (s.phase == SlicePhase::kWindowEmitted) ph = "e";
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"slice\",\"ph\":\"%s\",\"id\":%" PRIu64
        ",\"ts\":%" PRId64 ",\"pid\":%" PRIu32
        ",\"tid\":%" PRIu32 ",\"args\":{\"query\":%" PRIu64
        ",\"role\":\"%s\",\"real_ns\":%" PRId64 "}}",
        ToString(s.phase), ph, s.slice_id, s.virtual_ts, s.node_id, s.group_id,
        s.query_id, SpanRoleName(s.role), s.real_ns);
    out += buf;
  }
  out += "]}";
  return out;
}

#endif  // DESIS_OBS_ENABLED

}  // namespace desis::obs
