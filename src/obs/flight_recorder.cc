#include "obs/flight_recorder.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/trace.h"  // SpanRoleName

namespace desis::obs {

const char* KindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kWatermarkAdvance: return "watermark_advance";
    case FlightEventKind::kSliceSeal: return "slice_seal";
    case FlightEventKind::kPartialShip: return "partial_ship";
    case FlightEventKind::kAckFrontier: return "ack_frontier";
    case FlightEventKind::kSpill: return "spill";
    case FlightEventKind::kRestore: return "restore";
    case FlightEventKind::kRetransmit: return "retransmit";
    case FlightEventKind::kReattach: return "reattach";
    case FlightEventKind::kReplay: return "replay";
    case FlightEventKind::kQueryAdd: return "query_add";
    case FlightEventKind::kQueryRemove: return "query_remove";
    case FlightEventKind::kAnomaly: return "anomaly";
  }
  return "unknown";
}

bool FlightKindFromName(const std::string& name, FlightEventKind* out) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(FlightEventKind::kAnomaly);
       ++k) {
    if (name == KindName(static_cast<FlightEventKind>(k))) {
      *out = static_cast<FlightEventKind>(k);
      return true;
    }
  }
  return false;
}

const char* AnomalyName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kWatermarkStall: return "watermark_stall";
    case AnomalyKind::kMailboxGrowth: return "mailbox_growth";
    case AnomalyKind::kSpillThrash: return "spill_thrash";
    case AnomalyKind::kSilentNode: return "silent_node";
  }
  return "unknown";
}

bool AnomalyFromName(const std::string& name, AnomalyKind* out) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(AnomalyKind::kSilentNode);
       ++k) {
    if (name == AnomalyName(static_cast<AnomalyKind>(k))) {
      *out = static_cast<AnomalyKind>(k);
      return true;
    }
  }
  return false;
}

namespace {

std::mutex& FailureHookMutex() {
  static std::mutex mu;
  return mu;
}

std::function<void(const std::string&)>& FailureHookSlot() {
  static std::function<void(const std::string&)> hook;
  return hook;
}

}  // namespace

void SetFlightFailureHook(std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(FailureHookMutex());
  FailureHookSlot() = std::move(hook);
}

void NotifyFlightFailure(const std::string& reason) {
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(FailureHookMutex());
    hook = FailureHookSlot();
  }
  if (hook) hook(reason);
}

#if DESIS_OBS_ENABLED

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendEventJson(std::string& out, const FlightEvent& e) {
  char buf[288];
  std::snprintf(
      buf, sizeof(buf),
      "{\"kind\":\"%s\",\"node\":%" PRIu32 ",\"role\":\"%s\",\"a\":%" PRIu64
      ",\"b\":%" PRIu64 ",\"virtual_ts\":%" PRId64 ",\"real_ns\":%" PRId64
      "}",
      KindName(e.kind), e.node_id, SpanRoleName(e.role), e.a, e.b,
      e.virtual_ts, e.real_ns);
  out += buf;
}

}  // namespace

struct FlightRecorder::Slot {
  RelaxedU64 seq;  // ticket + 1 of the last completed write; 0 = never
  // Per-field relaxed cells so ring-wrap aliasing tears per field instead
  // of racing on plain memory; the seq check in Snapshot() discards torn
  // slots (see SliceTracer::Slot).
  RelaxedU64 kind;
  RelaxedU64 a;
  RelaxedU64 b;
  RelaxedI64 virtual_ts;
  RelaxedI64 real_ns;
};

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

FlightRecorder::~FlightRecorder() { delete[] slots_; }

void FlightRecorder::Record(FlightEventKind kind, uint64_t a, uint64_t b,
                            Timestamp virtual_ts) {
  const uint64_t ticket = head_++;
  if (event_counter_ != nullptr) event_counter_->Add();
  if (ticket >= capacity_ && drop_counter_ != nullptr) drop_counter_->Add();
  Slot& slot = slots_[ticket % capacity_];
  slot.kind.store(static_cast<uint64_t>(kind));
  slot.a.store(a);
  slot.b.store(b);
  slot.virtual_ts.store(virtual_ts);
  slot.real_ns.store(NowNs());
  slot.seq.store(ticket + 1);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t head = head_.load();
  const uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<FlightEvent> out;
  out.reserve(n);
  for (uint64_t t = head - n; t < head; ++t) {
    const Slot& slot = slots_[t % capacity_];
    if (slot.seq.load() != t + 1) continue;  // torn by a ring wrap
    FlightEvent e;
    e.kind = static_cast<FlightEventKind>(slot.kind.load());
    e.node_id = node_id_;
    e.role = role_;
    e.a = slot.a.load();
    e.b = slot.b.load();
    e.virtual_ts = slot.virtual_ts.load();
    e.real_ns = slot.real_ns.load();
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& e : Snapshot()) {
    if (!first) out += ',';
    first = false;
    AppendEventJson(out, e);
  }
  out += "]";
  return out;
}

std::string FlightRecorder::DumpJson(const std::string& reason) const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"node\":%" PRIu32
                ",\"role\":\"%s\",\"reason\":\"%s\",\"recorder\":{"
                "\"capacity\":%zu,\"recorded\":%" PRIu64
                ",\"dropped\":%" PRIu64 "},\"events\":",
                node_id_, SpanRoleName(role_), JsonEscape(reason).c_str(),
                capacity_, recorded(), dropped());
  std::string out = buf;
  out += ToJson();
  out += "}";
  return out;
}

#else  // !DESIS_OBS_ENABLED ------------------------------------------------

std::string FlightRecorder::DumpJson(const std::string& reason) const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"node\":%" PRIu32
                ",\"role\":\"%s\",\"reason\":\"%s\",\"recorder\":{"
                "\"capacity\":0,\"recorded\":0,\"dropped\":0},\"events\":[]}",
                node_id_, SpanRoleName(role_), JsonEscape(reason).c_str());
  return buf;
}

#endif  // DESIS_OBS_ENABLED

}  // namespace desis::obs
