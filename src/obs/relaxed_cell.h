#ifndef DESIS_OBS_RELAXED_CELL_H_
#define DESIS_OBS_RELAXED_CELL_H_

#include <atomic>
#include <cstdint>

namespace desis::obs {

/// A copyable relaxed-atomic counter cell. Drop-in replacement for the
/// plain integer counters in EngineStats/NodeStats: single-writer hot paths
/// keep compiling (`++x`, `x += n`, `x = v`, implicit reads) while
/// concurrent readers — the periodic metrics exporter, a monitoring thread
/// polling `Cluster::StatsReport()` mid-run — see no data race. All
/// operations use relaxed ordering: these are statistics, not
/// synchronization; cross-thread visibility of *final* values is provided
/// by the transport's quiescence protocol (`Cluster::Drain()`).
///
/// Copying reads the source atomically and seeds a fresh cell, so the stat
/// structs stay value types (snapshots, `operator+=` aggregation).
template <typename T>
class RelaxedCell {
 public:
  RelaxedCell() = default;
  RelaxedCell(T v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedCell(const RelaxedCell& other) : v_(other.load()) {}
  RelaxedCell& operator=(const RelaxedCell& other) {
    store(other.load());
    return *this;
  }
  RelaxedCell& operator=(T v) {
    store(v);
    return *this;
  }

  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

  RelaxedCell& operator+=(T d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCell& operator-=(T d) {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCell& operator++() { return *this += T{1}; }
  T operator++(int) { return v_.fetch_add(T{1}, std::memory_order_relaxed); }

  /// Monotonic-max update (queue high-water marks). Relaxed CAS loop;
  /// linearizable against concurrent StoreMax/store on the same cell.
  void StoreMax(T v) {
    T cur = load();
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Monotonic-min update (histogram minima).
  void StoreMin(T v) {
    T cur = load();
    while (v < cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  T load() const { return v_.load(std::memory_order_relaxed); }
  void store(T v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<T> v_{T{}};
};

using RelaxedU64 = RelaxedCell<uint64_t>;
using RelaxedI64 = RelaxedCell<int64_t>;

}  // namespace desis::obs

#endif  // DESIS_OBS_RELAXED_CELL_H_
