#ifndef DESIS_OBS_FLIGHT_RECORDER_H_
#define DESIS_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/event.h"
#include "obs/metrics.h"  // DESIS_OBS_ENABLED + JsonEscape
#include "obs/relaxed_cell.h"

namespace desis::obs {

/// Control-plane event classes captured by the per-node flight recorder.
/// Unlike SlicePhase (data-plane slice lifecycle), these are the decisions
/// and protocol transitions an operator needs when reconstructing *why* a
/// node stalled: watermark motion, state movement, recovery actions, and
/// watchdog anomalies.
enum class FlightEventKind : uint8_t {
  /// Node advanced its outbound watermark. a = new watermark (µs).
  kWatermarkAdvance = 0,
  /// Slicer sealed a slice. a = slice id, b = group id; virtual_ts = end.
  kSliceSeal,
  /// Local shipped a partial upstream. a = slice id, b = group id.
  kPartialShip,
  /// Cumulative stable-ack frontier moved. a = stable watermark (µs).
  kAckFrontier,
  /// Memory governor shed a lane to disk. a = slice id, b = group id.
  kSpill,
  /// A spilled lane was merged back for window assembly. a/b as kSpill.
  kRestore,
  /// Transport retransmitted a partial. a = slice id.
  kRetransmit,
  /// Crash recovery: this node re-attached to a new parent. a = new
  /// parent id, b = dead parent id.
  kReattach,
  /// Crash recovery: a buffered slice was replayed. a = slice id,
  /// b = group id.
  kReplay,
  /// Query registered at runtime. a = query id.
  kQueryAdd,
  /// Query removed at runtime. a = query id.
  kQueryRemove,
  /// Watchdog anomaly raised against this node. a = AnomalyKind,
  /// b = detecting sample index.
  kAnomaly,
};

const char* KindName(FlightEventKind kind);
/// Inverse of KindName; returns false on an unknown name. Used by
/// desis-inspect postmortem when reconstructing events from dump files.
bool FlightKindFromName(const std::string& name, FlightEventKind* out);

/// Typed anomaly classes the health watchdog can raise (health.anomalies
/// counter labels and kAnomaly payloads).
enum class AnomalyKind : uint8_t {
  /// Node watermark frozen while the rest of the topology advanced past
  /// the grace window.
  kWatermarkStall = 0,
  /// Mailbox depth strictly increased over N consecutive samples.
  kMailboxGrowth,
  /// Spill restores observed in each of N consecutive samples (state
  /// bouncing between disk and memory).
  kSpillThrash,
  /// Heartbeats frozen for N samples *and* watermark lagging: the node is
  /// not merely idle, it stopped participating. Triggers auto-recovery.
  kSilentNode,
};

const char* AnomalyName(AnomalyKind kind);
bool AnomalyFromName(const std::string& name, AnomalyKind* out);

/// One recorded control-plane event. `a`/`b` are kind-specific payloads
/// (see FlightEventKind); `virtual_ts` is event time (µs) where the event
/// has one, kNoTimestamp otherwise; `real_ns` is the steady-clock instant.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kWatermarkAdvance;
  uint32_t node_id = 0;
  uint8_t role = 255;  // kSpanRoleEngine when not owned by a cluster node
  uint64_t a = 0;
  uint64_t b = 0;
  Timestamp virtual_ts = kNoTimestamp;
  int64_t real_ns = 0;
};

/// Process-wide failure hook: chaos-harness violations, RootAssembler
/// invariant breaks, and SUSPECT-grade watchdog anomalies call
/// NotifyFlightFailure(reason); whoever owns the recorders (Cluster)
/// registers a hook that dumps every ring to disk. Compiled in both OBS
/// flavors (the OFF build just dumps empty rings); pass nullptr to clear.
/// The hook is copied out under a mutex and invoked outside it, so a hook
/// may itself log or take cluster locks.
void SetFlightFailureHook(std::function<void(const std::string&)> hook);
void NotifyFlightFailure(const std::string& reason);

#if DESIS_OBS_ENABLED

/// Per-node black-box ring of FlightEvents: same lock-free ticket ring as
/// SliceTracer (relaxed fetch_add ticket + per-field relaxed cells + seq
/// publish; Snapshot drops torn slots), sized small enough to stay hot in
/// cache but deep enough to hold the minutes leading up to a fault. The
/// node identity is fixed once at wiring time so Record() stays a
/// three-word call on the ingest path. Aggregate counters are always safe
/// to read; payload snapshots want quiescence, but a torn slot degrades to
/// a skipped event, never UB — good enough for a post-crash dump.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Fixes the owning node's identity stamped on every event. Call once
  /// at wiring time, before any Record().
  void set_identity(uint32_t node_id, uint8_t role) {
    node_id_ = node_id;
    role_ = role;
  }
  uint32_t node_id() const { return node_id_; }
  uint8_t role() const { return role_; }

  /// Mirrors Record()s / ring overwrites into registry counters
  /// (recorder.events / recorder.dropped). Null detaches either.
  void set_counters(Counter* events, Counter* dropped) {
    event_counter_ = events;
    drop_counter_ = dropped;
  }

  void Record(FlightEventKind kind, uint64_t a, uint64_t b,
              Timestamp virtual_ts);

  size_t capacity() const { return capacity_; }
  uint64_t recorded() const { return head_.load(); }
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// The retained events, oldest first (see class comment on tearing).
  std::vector<FlightEvent> Snapshot() const;

  /// JSON array of event objects, oldest first (schema: docs/METRICS.md).
  std::string ToJson() const;

  /// Full dump document for one node:
  /// {"node":N,"role":"...","reason":"...","recorder":{...},"events":[...]}.
  /// `reason` is why the dump happened ("on_demand", "chaos_violation",
  /// "silent_node", ...). desis-inspect postmortem merges these.
  std::string DumpJson(const std::string& reason) const;

 private:
  struct Slot;

  const size_t capacity_;
  Slot* slots_;
  RelaxedU64 head_;
  uint32_t node_id_ = 0;
  uint8_t role_ = 255;
  Counter* event_counter_ = nullptr;
  Counter* drop_counter_ = nullptr;
};

#else  // !DESIS_OBS_ENABLED ------------------------------------------------

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 0;
  explicit FlightRecorder(size_t = 0) {}
  void set_identity(uint32_t node_id, uint8_t role) {
    node_id_ = node_id;
    role_ = role;
  }
  uint32_t node_id() const { return node_id_; }
  uint8_t role() const { return role_; }
  void set_counters(Counter*, Counter*) {}
  void Record(FlightEventKind, uint64_t, uint64_t, Timestamp) {}
  size_t capacity() const { return 0; }
  uint64_t recorded() const { return 0; }
  uint64_t dropped() const { return 0; }
  std::vector<FlightEvent> Snapshot() const { return {}; }
  std::string ToJson() const { return "[]"; }
  std::string DumpJson(const std::string& reason) const;

 private:
  uint32_t node_id_ = 0;
  uint8_t role_ = 255;
};

#endif  // DESIS_OBS_ENABLED

}  // namespace desis::obs

#endif  // DESIS_OBS_FLIGHT_RECORDER_H_
