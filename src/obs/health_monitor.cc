#include "obs/health_monitor.h"

#if DESIS_OBS_ENABLED

#include <chrono>
#include <utility>

namespace desis::obs {

HealthMonitor::HealthMonitor(const WatchdogOptions& options,
                             WatchdogHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_relaxed)) return;
  stop_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread(&HealthMonitor::ThreadMain, this);
}

void HealthMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void HealthMonitor::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                     [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

HealthMonitor::Track& HealthMonitor::TrackFor(uint32_t node_id) {
  for (Track& t : tracks_) {
    if (t.node_id == node_id) return t;
  }
  tracks_.emplace_back();
  tracks_.back().node_id = node_id;
  return tracks_.back();
}

void HealthMonitor::SampleOnce() {
  // Publish gauges and read the lock-free probe cells before taking mu_:
  // both hooks reach into the cluster (shared membership lock) and must
  // never nest inside the detector mutex held by a concurrent ticker.
  if (hooks_.sample_health) hooks_.sample_health();
  std::vector<NodeProbe> probes;
  if (hooks_.probe) probes = hooks_.probe();
  samples_ += 1;

  std::lock_guard<std::mutex> lock(mu_);

  // The live frontier: the healthiest watermark in the topology this
  // sample. Lag is always judged against it, so a fully idle (finished)
  // topology raises nothing.
  Timestamp frontier = kNoTimestamp;
  for (const NodeProbe& p : probes) {
    if (p.alive && p.watermark != kNoTimestamp && p.watermark > frontier) {
      frontier = p.watermark;
    }
  }

  const int threshold =
      options_.silence_threshold < 1 ? 1 : options_.silence_threshold;
  auto raise = [&](AnomalyKind kind, uint32_t node) {
    anomalies_ += 1;
    if (hooks_.on_anomaly) hooks_.on_anomaly(kind, node);
  };

  for (const NodeProbe& p : probes) {
    Track& t = TrackFor(p.node_id);
    if (!t.initialized) {
      t.initialized = true;
      t.heartbeats = p.heartbeats;
      t.watermark = p.watermark;
      t.mailbox_depth = p.mailbox_depth;
      t.spill_restores = p.spill_restores;
      continue;
    }
    if (!p.alive) {
      // Declared dead (crash-recovered): nothing left to detect.
      t.silent_streak = t.stall_streak = t.growth_streak = t.thrash_streak =
          0;
      t.suspect = false;
      continue;
    }

    const bool hb_moved = p.heartbeats != t.heartbeats;
    const bool wm_moved = p.watermark != t.watermark;
    const bool lagging =
        frontier != kNoTimestamp &&
        (p.watermark == kNoTimestamp ||
         p.watermark + options_.grace_us < frontier);

    // silent_node: no liveness signal at all, while provably behind.
    if (hb_moved) {
      t.silent_streak = 0;
      t.silent_raised = false;
      t.suspect = false;
    } else {
      ++t.silent_streak;
      if (t.silent_streak >= threshold && lagging && !t.silent_raised) {
        t.silent_raised = true;
        t.suspect = true;
        raise(AnomalyKind::kSilentNode, p.node_id);
      }
    }

    // watermark_stall: still receiving (heartbeats move) but its outbound
    // watermark is pinned behind the frontier — distinct from silence.
    if (hb_moved && !wm_moved && lagging) {
      ++t.stall_streak;
      if (t.stall_streak >= threshold && !t.stall_raised) {
        t.stall_raised = true;
        raise(AnomalyKind::kWatermarkStall, p.node_id);
      }
    } else {
      t.stall_streak = 0;
      if (wm_moved || !lagging) t.stall_raised = false;
    }

    // mailbox_growth: depth strictly increasing sample over sample.
    if (p.mailbox_depth > t.mailbox_depth) {
      ++t.growth_streak;
      if (t.growth_streak >= threshold && !t.growth_raised) {
        t.growth_raised = true;
        raise(AnomalyKind::kMailboxGrowth, p.node_id);
      }
    } else {
      t.growth_streak = 0;
      if (p.mailbox_depth < t.mailbox_depth) t.growth_raised = false;
    }

    // spill_thrash: restores landing in every consecutive sample.
    if (p.spill_restores > t.spill_restores) {
      ++t.thrash_streak;
      if (t.thrash_streak >= threshold && !t.thrash_raised) {
        t.thrash_raised = true;
        raise(AnomalyKind::kSpillThrash, p.node_id);
      }
    } else {
      t.thrash_streak = 0;
      t.thrash_raised = false;
    }

    t.heartbeats = p.heartbeats;
    t.watermark = p.watermark;
    t.mailbox_depth = p.mailbox_depth;
    t.spill_restores = p.spill_restores;
  }

  if (!options_.auto_recover || !hooks_.recover) return;

  // Auto-recovery: find the minimum watermark across healthy recoverable
  // nodes and only fire when *every* suspect provably lags it — the
  // recovery op (RecoverSilentIntermediates) crashes exactly the nodes
  // below min_watermark, so this guard guarantees it targets the suspects
  // and never a merely-slow healthy peer.
  bool have_suspect = false;
  bool healthy_unknown = false;
  Timestamp healthy_min = kNoTimestamp;
  for (const NodeProbe& p : probes) {
    if (!p.alive || !p.recoverable) continue;
    const Track& t = TrackFor(p.node_id);
    if (t.suspect) {
      have_suspect = true;
      continue;
    }
    if (p.watermark == kNoTimestamp) {
      healthy_unknown = true;  // a healthy peer hasn't started; wait
    } else if (healthy_min == kNoTimestamp || p.watermark < healthy_min) {
      healthy_min = p.watermark;
    }
  }
  if (!have_suspect || healthy_unknown || healthy_min == kNoTimestamp) {
    return;
  }
  for (const NodeProbe& p : probes) {
    if (!p.alive || !p.recoverable) continue;
    const Track& t = TrackFor(p.node_id);
    if (t.suspect && p.watermark != kNoTimestamp &&
        p.watermark >= healthy_min) {
      return;  // suspect not yet strictly behind; recovering would miss it
    }
  }
  if (hooks_.recover(healthy_min)) {
    auto_recoveries_ += 1;
    for (Track& t : tracks_) {
      // Keep silent_raised latched so the episode doesn't re-raise; the
      // node is dead now and future probes skip it.
      if (t.suspect) t.suspect = false;
    }
  }
}

}  // namespace desis::obs

#endif  // DESIS_OBS_ENABLED
