#ifndef DESIS_OBS_TRACE_H_
#define DESIS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/event.h"
#include "obs/metrics.h"  // DESIS_OBS_ENABLED + JsonEscape
#include "obs/relaxed_cell.h"

namespace desis::obs {

/// Lifecycle phase of a slice as it moves through the decentralized
/// pipeline (§5.1): sealed on a local node, shipped upstream as a partial,
/// merged on an intermediate node, and finally consumed by a window
/// emission at the root.
enum class SlicePhase : uint8_t {
  kSliceCreated = 0,
  kPartialShipped,
  kMerged,
  kWindowEmitted,
  /// A transport retransmitted the partial after a loss/timeout
  /// (SimLinkTransport); same slice identity, so the merged trace shows the
  /// extra hop on the slice's own track.
  kRetransmit,
  /// Crash recovery: an orphaned node re-attached to a new parent
  /// (docs/FAULT_TOLERANCE.md); one span per orphan, on the orphan's lane.
  kReattach,
  /// Crash recovery: a buffered message was re-sent to the (new) parent
  /// after a reattach; same slice identity as the original shipment.
  kReplay,
  /// Memory governance: a slice's sort buffer was shed to a spill run file
  /// (src/mem/); the slice stays live, only its residency changes.
  kSpill,
  /// Memory governance: a spilled slice was read back from its run file
  /// because a window assembly needed it.
  kRestore,
};

const char* ToString(SlicePhase phase);
/// Inverse of ToString; returns false on an unknown name. Used by tools
/// that reconstruct spans from exported JSON.
bool PhaseFromString(const std::string& name, SlicePhase* out);

/// Role byte carried in spans; mirrors net/NodeRole without depending on
/// src/net (obs sits below core). kEngine marks single-node engines that
/// run outside any cluster topology.
inline constexpr uint8_t kSpanRoleLocal = 0;
inline constexpr uint8_t kSpanRoleIntermediate = 1;
inline constexpr uint8_t kSpanRoleRoot = 2;
inline constexpr uint8_t kSpanRoleEngine = 255;

const char* SpanRoleName(uint8_t role);
/// Inverse of SpanRoleName; returns false on an unknown name.
bool SpanRoleFromName(const std::string& name, uint8_t* out);

/// One recorded span event. `virtual_ts` is event time (µs, the slice/
/// window end); `real_ns` is the steady-clock instant the phase happened.
/// Slice phases fill slice_id/group_id; kWindowEmitted fills query_id and
/// uses virtual_ts = window end (see docs/METRICS.md for the contract).
struct SliceSpan {
  uint64_t slice_id = 0;
  uint32_t group_id = 0;
  uint64_t query_id = 0;
  uint32_t node_id = 0;
  uint8_t role = kSpanRoleEngine;
  SlicePhase phase = SlicePhase::kSliceCreated;
  Timestamp virtual_ts = 0;
  int64_t real_ns = 0;
};

/// Chrome trace_event JSON over an explicit span set — the cross-node
/// correlation view. Unlike SliceTracer::ToChromeTrace (one tracer, plain
/// per-pid async ids), this emits process_name metadata per node and keys
/// every slice phase with a *global* async id ("g<group>.s<slice>") so one
/// slice's life lines up across local -> intermediate -> root processes,
/// retransmits included. Available with DESIS_OBS=OFF too (pure data
/// transform; desis-inspect uses it on parsed sidecar spans).
std::string ChromeTraceFromSpans(std::vector<SliceSpan> spans);

#if DESIS_OBS_ENABLED

/// Bounded lock-free ring buffer of slice-lifecycle spans. Record() is a
/// relaxed ticket fetch_add plus a slot write — no allocation, no lock —
/// and safe from any thread; once full, the oldest spans are overwritten
/// (`dropped()` counts them). Snapshot()/exporters must only run when no
/// Record() is in flight (after `Cluster::Drain()` / engine quiescence):
/// the aggregate counters (`recorded()`, `dropped()`) are always safe to
/// read, the span payloads are not synchronized against in-flight writers.
class SliceTracer {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  explicit SliceTracer(size_t capacity = kDefaultCapacity);
  SliceTracer(const SliceTracer&) = delete;
  SliceTracer& operator=(const SliceTracer&) = delete;
  ~SliceTracer();

  void Record(SlicePhase phase, uint64_t slice_id, uint32_t group_id,
              uint64_t query_id, uint32_t node_id, uint8_t role,
              Timestamp virtual_ts);

  /// Mirrors ring overwrites into a registry counter (trace.dropped_spans)
  /// so monitors see span loss without polling the tracer. Null detaches.
  /// One extra null-check + relaxed Add per overflowing Record().
  void set_drop_counter(Counter* counter) { drop_counter_ = counter; }

  size_t capacity() const { return capacity_; }
  /// Spans ever recorded / overwritten by ring wrap-around.
  uint64_t recorded() const { return head_.load(); }
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// The retained spans, oldest first. Quiescence required (see above).
  std::vector<SliceSpan> Snapshot() const;

  /// JSON array of span objects, oldest first (schema: docs/METRICS.md).
  std::string ToJson() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}): loadable in
  /// chrome://tracing / Perfetto. Spans map to async events keyed by slice
  /// id ("b" at slice_created, "e" at window_emitted, "n" in between);
  /// pid = node id, ts = virtual (event-time) µs.
  std::string ToChromeTrace() const;

 private:
  struct Slot;

  const size_t capacity_;
  Slot* slots_;
  RelaxedU64 head_;
  Counter* drop_counter_ = nullptr;
};

/// Concatenates the retained spans of several tracers (e.g. one per bench
/// run, or per sub-cluster) into one correlated Chrome trace; null entries
/// are skipped. Quiescence required, as for Snapshot().
std::string MergeTraces(const std::vector<const SliceTracer*>& tracers);

#else  // !DESIS_OBS_ENABLED ------------------------------------------------

class SliceTracer {
 public:
  static constexpr size_t kDefaultCapacity = 0;
  explicit SliceTracer(size_t = 0) {}
  void Record(SlicePhase, uint64_t, uint32_t, uint64_t, uint32_t, uint8_t,
              Timestamp) {}
  void set_drop_counter(Counter*) {}
  size_t capacity() const { return 0; }
  uint64_t recorded() const { return 0; }
  uint64_t dropped() const { return 0; }
  std::vector<SliceSpan> Snapshot() const { return {}; }
  std::string ToJson() const { return "[]"; }
  std::string ToChromeTrace() const { return "{\"traceEvents\":[]}"; }
};

inline std::string MergeTraces(const std::vector<const SliceTracer*>&) {
  return "{\"traceEvents\":[]}";
}

#endif  // DESIS_OBS_ENABLED

}  // namespace desis::obs

#endif  // DESIS_OBS_TRACE_H_
