#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

namespace desis::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

#if DESIS_OBS_ENABLED

// ------------------------------------------------------------- histogram --

uint32_t Histogram::BucketFor(uint64_t v) {
  if (v < (1u << kSubBits)) return static_cast<uint32_t>(v);
  const uint32_t exp = 63 - static_cast<uint32_t>(std::countl_zero(v));
  const uint32_t sub =
      static_cast<uint32_t>((v >> (exp - kSubBits)) & ((1u << kSubBits) - 1));
  return ((exp - kSubBits + 1) << kSubBits) + sub;
}

uint64_t Histogram::BucketLowerBound(uint32_t idx) {
  if (idx < (1u << kSubBits)) return idx;
  const uint32_t octave = idx >> kSubBits;  // 1-based beyond the exact region
  const uint32_t exp = octave + kSubBits - 1;
  const uint64_t sub = idx & ((1u << kSubBits) - 1);
  return (uint64_t{1} << exp) + (sub << (exp - kSubBits));
}

void Histogram::Record(int64_t sample) {
  const uint64_t v = sample < 0 ? 0 : static_cast<uint64_t>(sample);
  ++count_;
  sum_ += v;
  min_.StoreMin(v);
  max_.StoreMax(v);
  ++buckets_[BucketFor(v)];
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load();
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count_.load();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target sample (1-based, nearest-rank with interpolation
  // inside the bucket the rank lands in).
  const double rank = q * static_cast<double>(n - 1) + 1.0;
  uint64_t cum = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load();
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : lo;
      const double within =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      const double estimate =
          static_cast<double>(lo) +
          within * static_cast<double>(hi > lo ? hi - lo : 0);
      // Interpolation can overshoot the edge buckets; the true value never
      // lies outside the observed range.
      return std::clamp(estimate, static_cast<double>(min()),
                        static_cast<double>(max_.load()));
    }
    cum += in_bucket;
  }
  return static_cast<double>(max_.load());
}

// -------------------------------------------------------------- registry --

namespace {

enum SeriesType { kCounter = 0, kGauge, kHistogram };

const char* TypeName(int type) {
  switch (type) {
    case kCounter: return "counter";
    case kGauge: return "gauge";
    default: return "histogram";
  }
}

std::string SeriesKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

/// Prints a double with enough precision for quantiles without trailing
/// noise: integers print as integers.
std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

struct MetricsRegistry::Impl {
  struct Series {
    std::string name;
    Labels labels;
    std::string unit;
    int type;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;  // large; allocated on demand
  };

  mutable std::mutex mu;
  std::deque<Series> series;                // stable addresses
  std::map<std::string, Series*> by_key;

  Series* FindOrCreate(const std::string& name, Labels&& labels,
                       const std::string& unit, int type) {
    const std::string key = SeriesKey(name, labels);
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_key.find(key);
    if (it != by_key.end()) return it->second;
    series.push_back({name, std::move(labels), unit, type, {}, {}, {}});
    Series* s = &series.back();
    if (type == kHistogram) s->histogram = std::make_unique<Histogram>();
    by_key.emplace(key, s);
    return s;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry::Impl* MetricsRegistry::impl() const { return impl_; }

MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels,
                                     const std::string& unit) {
  return &impl()->FindOrCreate(name, std::move(labels), unit, kCounter)
              ->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels,
                                 const std::string& unit) {
  return &impl()->FindOrCreate(name, std::move(labels), unit, kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels,
                                         const std::string& unit) {
  return impl()
      ->FindOrCreate(name, std::move(labels), unit, kHistogram)
      ->histogram.get();
}

size_t MetricsRegistry::size() const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->series.size();
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"metrics\":[";
  if (impl_ != nullptr) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    bool first = true;
    for (const Impl::Series& s : impl_->series) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"type\":\"";
      out += TypeName(s.type);
      out += "\",\"unit\":\"" + JsonEscape(s.unit) + "\",\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : s.labels) {
        if (!first_label) out += ',';
        first_label = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out += "}";
      char buf[256];
      switch (s.type) {
        case kCounter:
          std::snprintf(buf, sizeof(buf), ",\"value\":%" PRIu64 "}",
                        s.counter.value());
          out += buf;
          break;
        case kGauge:
          std::snprintf(buf, sizeof(buf), ",\"value\":%" PRId64 "}",
                        s.gauge.value());
          out += buf;
          break;
        default: {
          const Histogram& h = *s.histogram;
          std::snprintf(buf, sizeof(buf),
                        ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                        ",\"min\":%" PRIu64 ",\"max\":%" PRIu64,
                        h.count(), h.sum(), h.min(), h.max());
          out += buf;
          out += ",\"p50\":" + FormatDouble(h.Quantile(0.50));
          out += ",\"p95\":" + FormatDouble(h.Quantile(0.95));
          out += ",\"p99\":" + FormatDouble(h.Quantile(0.99));
          out += "}";
        }
      }
    }
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  std::string out = "name,labels,type,unit,value,count,sum,min,max,p50,p95,p99\n";
  if (impl_ == nullptr) return out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const Impl::Series& s : impl_->series) {
    out += s.name;
    out += ',';
    // Labels cell: k=v joined by ';' (never contains a comma by contract).
    bool first = true;
    for (const auto& [k, v] : s.labels) {
      if (!first) out += ';';
      first = false;
      out += k + "=" + v;
    }
    out += ',';
    out += TypeName(s.type);
    out += ',';
    out += s.unit;
    char buf[256];
    switch (s.type) {
      case kCounter:
        std::snprintf(buf, sizeof(buf), ",%" PRIu64 ",,,,,,,\n",
                      s.counter.value());
        out += buf;
        break;
      case kGauge:
        std::snprintf(buf, sizeof(buf), ",%" PRId64 ",,,,,,,\n",
                      s.gauge.value());
        out += buf;
        break;
      default: {
        const Histogram& h = *s.histogram;
        std::snprintf(buf, sizeof(buf),
                      ",,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64,
                      h.count(), h.sum(), h.min(), h.max());
        out += buf;
        out += "," + FormatDouble(h.Quantile(0.50));
        out += "," + FormatDouble(h.Quantile(0.95));
        out += "," + FormatDouble(h.Quantile(0.99)) + "\n";
      }
    }
  }
  return out;
}

#endif  // DESIS_OBS_ENABLED

}  // namespace desis::obs
