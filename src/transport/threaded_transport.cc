#include "transport/threaded_transport.h"

#include <future>
#include <utility>

namespace desis {

ThreadedTransport::ThreadedTransport(size_t mailbox_capacity)
    : capacity_(mailbox_capacity == 0 ? 1 : mailbox_capacity) {}

ThreadedTransport::~ThreadedTransport() { Shutdown(); }

void ThreadedTransport::Mailbox::Push(Item item) {
  uint64_t depth;
  {
    std::unique_lock<std::mutex> lock(mu);
    not_full.wait(lock, [&] { return stop || queue.size() < capacity; });
    if (stop) return;  // teardown already drained; late traffic is void
    queue.push_back(std::move(item));
    if (queue.size() > hwm) hwm = queue.size();
    depth = queue.size();
    not_empty.notify_one();
  }
  // Mirror the live occupancy into the receiver's gauges on every enqueue
  // (outside the lock — the gauges are relaxed atomics), so monitors see
  // mailbox pressure mid-run instead of only the high-water mark at Flush.
  node->NoteQueueDepth(depth);
}

void ThreadedTransport::Mailbox::Run() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu);
      not_empty.wait(lock, [&] { return stop || !queue.empty(); });
      if (queue.empty()) break;  // stop requested and fully drained
      item = std::move(queue.front());
      queue.pop_front();
      processing = true;
      not_full.notify_one();
    }
    if (item.control) {
      item.control();
    } else {
      node->Receive(item.message, item.child_index);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      processing = false;
      if (queue.empty()) became_idle.notify_all();
    }
  }
}

void ThreadedTransport::Mailbox::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu);
  became_idle.wait(lock, [&] { return (queue.empty() && !processing) || stop; });
}

bool ThreadedTransport::Mailbox::IsIdle() {
  std::lock_guard<std::mutex> lock(mu);
  return queue.empty() && !processing;
}

void ThreadedTransport::AddNode(Node* node) {
  if (node->role() == NodeRole::kLocal) return;  // leaves never receive
  std::lock_guard<std::mutex> lock(boxes_mu_);
  if (by_node_.count(node) != 0) return;
  auto box = std::make_unique<Mailbox>(node, capacity_);
  box->worker = std::thread([b = box.get()] { b->Run(); });
  by_node_.emplace(node, box.get());
  boxes_.push_back(std::move(box));
}

ThreadedTransport::Mailbox* ThreadedTransport::BoxFor(Node* node) {
  std::lock_guard<std::mutex> lock(boxes_mu_);
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

std::vector<ThreadedTransport::Mailbox*> ThreadedTransport::SnapshotBoxes() {
  std::lock_guard<std::mutex> lock(boxes_mu_);
  std::vector<Mailbox*> out;
  out.reserve(boxes_.size());
  for (const auto& box : boxes_) out.push_back(box.get());
  return out;
}

void ThreadedTransport::Send(Node* /*from*/, Node* to, int child_index,
                             const Message& message) {
  Mailbox* box = BoxFor(to);
  if (box == nullptr) {  // unregistered receiver: degrade to inline
    to->Receive(message, child_index);
    return;
  }
  Item item;
  item.message = message;
  item.child_index = child_index;
  box->Push(std::move(item));
}

void ThreadedTransport::Execute(Node* target, std::function<void()> fn) {
  Mailbox* box = BoxFor(target);
  if (box == nullptr) {
    fn();
    return;
  }
  Item item;
  item.control = std::move(fn);
  box->Push(std::move(item));
}

void ThreadedTransport::ExecuteSync(Node* target, std::function<void()> fn) {
  Mailbox* box = BoxFor(target);
  if (box == nullptr) {
    fn();
    return;
  }
  std::promise<void> done;
  std::future<void> ready = done.get_future();
  Item item;
  item.control = [&fn, &done] {
    fn();
    done.set_value();
  };
  box->Push(std::move(item));
  ready.wait();
}

void ThreadedTransport::Flush() {
  // Quiesce to a fixpoint: draining one mailbox can enqueue into another
  // (messages only flow parent-ward, so this terminates once drivers stop
  // sending). A pass waits for every worker, then verifies nothing was
  // re-enqueued behind its back; any refill restarts the pass.
  for (;;) {
    std::vector<Mailbox*> boxes = SnapshotBoxes();
    for (Mailbox* box : boxes) box->WaitIdle();
    bool all_idle = true;
    for (Mailbox* box : boxes) all_idle = all_idle && box->IsIdle();
    if (all_idle && boxes.size() == SnapshotBoxes().size()) break;
  }
  for (Mailbox* box : SnapshotBoxes()) {
    uint64_t hwm;
    {
      std::lock_guard<std::mutex> lock(box->mu);
      hwm = box->hwm;
    }
    box->node->NoteQueueDepth(hwm);
    box->node->NoteQueueDrained();  // occupancy is zero after quiescence
  }
}

void ThreadedTransport::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(boxes_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  Flush();
  for (Mailbox* box : SnapshotBoxes()) {
    {
      std::lock_guard<std::mutex> lock(box->mu);
      box->stop = true;
      box->not_empty.notify_all();
      box->not_full.notify_all();
      box->became_idle.notify_all();
    }
    if (box->worker.joinable()) box->worker.join();
  }
}

}  // namespace desis
