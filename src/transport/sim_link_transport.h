#ifndef DESIS_TRANSPORT_SIM_LINK_TRANSPORT_H_
#define DESIS_TRANSPORT_SIM_LINK_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "transport/transport.h"

namespace desis {

/// Per-link channel model for SimLinkTransport. All times are virtual
/// microseconds; nothing sleeps.
struct SimLinkConfig {
  /// One-way propagation delay applied to every transmission.
  int64_t latency_us = 50;
  /// Uniform extra delay in [0, jitter_us] sampled per transmission (and
  /// per ack) from the seeded RNG.
  int64_t jitter_us = 0;
  /// Link bandwidth; a frame of B bytes occupies the link B/bytes_per_us.
  /// 0 means unlimited.
  double bytes_per_us = 0;
  /// Probability that a data transmission is lost in flight (clamped to
  /// [0, 0.9] so retransmission always converges). Acks share the fate.
  double drop_probability = 0;
  /// Sender retransmit timeout; 0 derives one round trip + margin from
  /// latency/jitter.
  int64_t retransmit_timeout_us = 0;
  /// RNG seed; identical seeds reproduce identical loss/jitter schedules.
  uint64_t seed = 42;
};

/// Deterministic virtual-time channel: every SendToParent becomes a
/// sequence-numbered transmission subject to latency, bandwidth queueing,
/// jitter, and seeded random loss. Receivers deliver strictly in sequence
/// order (out-of-order arrivals wait in a reassembly buffer), ack each
/// arrival, and senders retransmit unacked sequences on timeout — so every
/// slice partial and watermark survives a lossy link, in FIFO order.
///
/// The event loop runs inside Pump()/Flush() on the caller's thread and
/// drains to quiescence, advancing the virtual clock; Send() outside a
/// pump only schedules. Logical byte/message counters on nodes are
/// unchanged by loss; retransmissions and drops land in the sender's
/// `retransmits`/`messages_dropped`, and reassembly-buffer high-water
/// marks in the receiver's `queue_hwm`.
class SimLinkTransport final : public Transport {
 public:
  explicit SimLinkTransport(SimLinkConfig config = {});

  const char* name() const override { return "simlink"; }
  void Send(Node* from, Node* to, int child_index,
            const Message& message) override;
  void Pump() override;
  void Flush() override { Pump(); }

  /// Virtual time reached by the event loop so far.
  int64_t now_us() const { return now_us_; }
  int64_t VirtualNowUs() const override { return now_us_; }
  uint64_t total_retransmits() const { return retransmits_; }
  uint64_t total_drops() const { return drops_; }

  // --- Fault injection (chaos harness, docs/FAULT_TOLERANCE.md) ----------

  /// Crashes `node`: in-flight traffic to/from it is discarded (without
  /// counting link drops — this is node death, not loss), its link state is
  /// cleared, and future sends involving it are ignored. Irreversible.
  void KillNode(Node* node);
  void Disconnect(Node* node) override { KillNode(node); }

  /// Partitions (or heals) the link between `a` and `b`, both directions.
  /// While down, data transmissions are dropped (counted in the sender's
  /// messages_dropped) and unacked frames park instead of spinning the RTO
  /// loop; healing retransmits everything parked, in sequence order.
  bool SetLinkDown(Node* a, Node* b, bool down) override;

  /// Reattach support: heals the pair and clears unacked/parked/reassembly
  /// state on its links without retransmitting — the node-level replay
  /// re-sends anything that matters. Sequence counters are kept so a
  /// reattach to the same parent continues the existing FIFO stream.
  void ResetLink(Node* a, Node* b) override;

 private:
  struct Link {
    Node* from = nullptr;
    Node* to = nullptr;
    int child_index = -1;
    // Sender side: next sequence to assign, transmissions awaiting ack.
    uint64_t next_seq = 0;
    std::map<uint64_t, Message> unacked;
    // Receiver side: in-order delivery cursor and reassembly buffer.
    uint64_t next_deliver = 0;
    std::map<uint64_t, Message> reassembly;
    uint64_t reassembly_hwm = 0;
    // Bandwidth queueing: when the link is free to start the next frame.
    int64_t free_at = 0;
    // Sequences whose RTO fired while the link was partitioned; healing
    // retransmits them instead of spinning the timer against a dead link.
    std::set<uint64_t> parked;
  };

  enum class EventKind : uint8_t { kDataArrives, kAckArrives, kRtoFires };

  struct SimEvent {
    int64_t at = 0;
    uint64_t order = 0;  // tie-break: schedule order
    EventKind kind = EventKind::kDataArrives;
    Link* link = nullptr;
    uint64_t seq = 0;
  };
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      return a.at != b.at ? a.at > b.at : a.order > b.order;
    }
  };

  void Transmit(Link& link, uint64_t seq);
  void Schedule(int64_t at, EventKind kind, Link* link, uint64_t seq);
  int64_t JitterSample();
  bool IsDead(const Link& link) const {
    return dead_.count(link.from) != 0 || dead_.count(link.to) != 0;
  }
  bool IsDown(const Link& link) const {
    return down_.count(NormalizedPair(link.from, link.to)) != 0;
  }
  static std::pair<Node*, Node*> NormalizedPair(Node* a, Node* b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  SimLinkConfig config_;
  Rng rng_;
  // Keyed by (sender, receiver): a node's data uplink and the downstream
  // ack channel from its parent are distinct links, and a reattach simply
  // starts a fresh link to the new parent (stale deliveries on the old one
  // land at the old parent's detached slot and are dropped there).
  std::map<std::pair<Node*, Node*>, Link> links_;
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> events_;
  std::set<Node*> dead_;
  std::set<std::pair<Node*, Node*>> down_;
  int64_t now_us_ = 0;
  uint64_t next_order_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t drops_ = 0;
};

}  // namespace desis

#endif  // DESIS_TRANSPORT_SIM_LINK_TRANSPORT_H_
