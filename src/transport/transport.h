#ifndef DESIS_TRANSPORT_TRANSPORT_H_
#define DESIS_TRANSPORT_TRANSPORT_H_

#include <functional>

#include "net/message.h"
#include "net/node.h"

namespace desis {

/// A pluggable message channel between nodes. `Node::SendToParent` routes
/// every message through the node's transport, so the same topology can run
///  * inline (synchronous, deterministic — the default),
///  * threaded (one worker per receiving node, bounded mailboxes), or
///  * on a simulated lossy link (virtual-time latency/bandwidth/drop model).
///
/// The transport owns *delivery*; nodes keep owning semantics and byte
/// accounting: `bytes_sent`/`messages_sent` are counted once per logical
/// send at the sender, `bytes_received`/`messages_received` once per
/// delivered message at the receiver, regardless of transport-level
/// retransmissions (those land in `NodeStats::retransmits`).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Short channel name ("inline", "threaded", "simlink") for reports.
  virtual const char* name() const = 0;

  /// Ships `message` from `from` to its parent `to`, which registered the
  /// sender under `child_index`. Per-link FIFO order must be preserved.
  virtual void Send(Node* from, Node* to, int child_index,
                    const Message& message) = 0;

  /// Registers a node with the transport (called once per node when it is
  /// wired into a cluster; may happen at runtime for joining nodes).
  virtual void AddNode(Node* /*node*/) {}

  /// Runs `fn` on `target`'s delivery thread, FIFO-ordered with pending
  /// messages — the hook for membership changes (detach/attach/add-query)
  /// that must not race the node's message handler. The default (and any
  /// single-threaded transport) runs it immediately.
  virtual void Execute(Node* /*target*/, std::function<void()> fn) { fn(); }

  /// Like Execute, but blocks until `fn` has run.
  virtual void ExecuteSync(Node* /*target*/, std::function<void()> fn) {
    fn();
  }

  /// Opportunistic progress hook, called by drivers between ingest rounds
  /// (e.g. after watermark advances). Virtual-time transports run their
  /// event loop here; queue-based transports need no pumping.
  virtual void Pump() {}

  /// Blocks until every in-flight message (including cascades triggered by
  /// deliveries) has been handled. No-op when delivery is synchronous.
  virtual void Flush() {}

  /// Flushes, then stops any delivery workers. Idempotent; called by the
  /// cluster destructor before nodes are torn down.
  virtual void Shutdown() {}

  // --- Fault-injection hooks (crash recovery, docs/FAULT_TOLERANCE.md) ---

  /// Severs every link touching `node`: in-flight traffic to/from it is
  /// discarded and future sends from it are ignored. Default: no-op (an
  /// inline "crashed" node simply stops being driven).
  virtual void Disconnect(Node* /*node*/) {}

  /// Takes the link between `a` and `b` down (`down=true`: transmissions
  /// are dropped until healed) or back up. Returns false when this
  /// transport cannot model partitions.
  virtual bool SetLinkDown(Node* /*a*/, Node* /*b*/, bool /*down*/) {
    return false;
  }

  /// Abandons the link between `a` and `b`: heals any partition and drops
  /// unacked/parked link state instead of retransmitting it. Called on
  /// reattach, where the node-level resend buffer owns recovery — link-level
  /// retransmission of the same data would double-merge it upstream.
  /// Default: no-op (no link state to abandon).
  virtual void ResetLink(Node* /*a*/, Node* /*b*/) {}

  /// Current virtual time in microseconds for deterministic recovery
  /// latency measurement; -1 when the transport has no virtual clock.
  virtual int64_t VirtualNowUs() const { return -1; }
};

/// The seed behaviour, kept as the deterministic default: delivery invokes
/// the parent's handler synchronously on the caller's stack, so every
/// existing test and figure benchmark is bit-identical.
class InlineTransport final : public Transport {
 public:
  const char* name() const override { return "inline"; }
  void Send(Node* /*from*/, Node* to, int child_index,
            const Message& message) override {
    to->Receive(message, child_index);
  }
};

/// Process-wide inline transport used by nodes that were never handed a
/// transport (standalone nodes outside a Cluster). Stateless.
inline Transport& DefaultInlineTransport() {
  static InlineTransport transport;
  return transport;
}

}  // namespace desis

#endif  // DESIS_TRANSPORT_TRANSPORT_H_
