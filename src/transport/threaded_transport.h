#ifndef DESIS_TRANSPORT_THREADED_TRANSPORT_H_
#define DESIS_TRANSPORT_THREADED_TRANSPORT_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "transport/transport.h"

namespace desis {

/// Concurrent delivery: every receiving node (intermediates and the root —
/// leaves never receive) gets one worker thread draining a bounded MPSC
/// mailbox. Senders enqueue; a full mailbox blocks the sender until the
/// worker frees a slot (backpressure), which propagates down the tree
/// because a blocked intermediate stops draining its own mailbox. Per-link
/// FIFO holds: each child's sends are serialized by the cluster (ingest
/// runs under a per-local lock; intermediates send from their single
/// worker), and the mailbox preserves enqueue order.
///
/// Membership changes route through Execute/ExecuteSync so they run on the
/// target's worker, FIFO-ordered with in-flight messages — a detach never
/// races the handler and never outruns the detached child's last watermark.
///
/// Flush() waits for cluster-wide quiescence (all mailboxes empty, all
/// workers idle, re-checked until cascaded sends settle); Shutdown()
/// flushes, then joins the workers. Node stats must only be read after a
/// Flush(); mailbox high-water marks are folded into the receiving node's
/// `NodeStats::queue_hwm` at that point.
class ThreadedTransport final : public Transport {
 public:
  explicit ThreadedTransport(size_t mailbox_capacity = 1024);
  ~ThreadedTransport() override;

  ThreadedTransport(const ThreadedTransport&) = delete;
  ThreadedTransport& operator=(const ThreadedTransport&) = delete;

  const char* name() const override { return "threaded"; }
  void AddNode(Node* node) override;
  void Send(Node* from, Node* to, int child_index,
            const Message& message) override;
  void Execute(Node* target, std::function<void()> fn) override;
  void ExecuteSync(Node* target, std::function<void()> fn) override;
  void Flush() override;
  void Shutdown() override;

  size_t mailbox_capacity() const { return capacity_; }

 private:
  struct Item {
    Message message;
    int child_index = -1;
    std::function<void()> control;  // non-null = run instead of delivering
  };

  struct Mailbox {
    Mailbox(Node* n, size_t cap) : node(n), capacity(cap) {}

    Node* node;
    size_t capacity;
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::condition_variable became_idle;
    std::deque<Item> queue;
    bool processing = false;
    bool stop = false;
    uint64_t hwm = 0;
    std::thread worker;

    void Push(Item item);
    void WaitIdle();
    bool IsIdle();
    void Run();
  };

  Mailbox* BoxFor(Node* node);
  std::vector<Mailbox*> SnapshotBoxes();

  size_t capacity_;
  std::mutex boxes_mu_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::unordered_map<Node*, Mailbox*> by_node_;
  bool stopped_ = false;
};

}  // namespace desis

#endif  // DESIS_TRANSPORT_THREADED_TRANSPORT_H_
