#include "transport/sim_link_transport.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace desis {

SimLinkTransport::SimLinkTransport(SimLinkConfig config)
    : config_(config), rng_(config.seed) {
  config_.drop_probability = std::clamp(config_.drop_probability, 0.0, 0.9);
  if (config_.latency_us < 0) config_.latency_us = 0;
  if (config_.jitter_us < 0) config_.jitter_us = 0;
}

int64_t SimLinkTransport::JitterSample() {
  return config_.jitter_us == 0 ? 0 : rng_.NextInRange(0, config_.jitter_us);
}

void SimLinkTransport::Schedule(int64_t at, EventKind kind, Link* link,
                                uint64_t seq) {
  events_.push({at, next_order_++, kind, link, seq});
}

void SimLinkTransport::Transmit(Link& link, uint64_t seq) {
  const Message& message = link.unacked.at(seq);
  int64_t transmit_us = 0;
  if (config_.bytes_per_us > 0) {
    transmit_us = static_cast<int64_t>(std::ceil(
        static_cast<double>(message.WireBytes()) / config_.bytes_per_us));
  }
  const int64_t start = std::max(now_us_, link.free_at);
  link.free_at = start + transmit_us;
  const int64_t arrives = link.free_at + config_.latency_us + JitterSample();
  Schedule(arrives, EventKind::kDataArrives, &link, seq);
  // The ack for an undropped round trip lands no later than
  // arrives + latency + jitter; time out strictly after that.
  int64_t rto = config_.retransmit_timeout_us;
  if (rto <= 0) rto = config_.latency_us + config_.jitter_us + 1;
  Schedule(arrives + rto, EventKind::kRtoFires, &link, seq);
}

void SimLinkTransport::Send(Node* from, Node* to, int child_index,
                            const Message& message) {
  Link& link = links_[from];
  if (link.from == nullptr) {
    link.from = from;
    link.to = to;
    link.child_index = child_index;
  }
  const uint64_t seq = link.next_seq++;
  link.unacked.emplace(seq, message);
  Transmit(link, seq);
}

void SimLinkTransport::Pump() {
  while (!events_.empty()) {
    const SimEvent ev = events_.top();
    events_.pop();
    now_us_ = std::max(now_us_, ev.at);
    Link& link = *ev.link;
    switch (ev.kind) {
      case EventKind::kDataArrives: {
        if (rng_.NextBool(config_.drop_probability)) {
          ++drops_;
          link.from->NoteDrop();
          break;  // the pending RTO covers this loss
        }
        const bool duplicate = ev.seq < link.next_deliver ||
                               link.reassembly.count(ev.seq) != 0;
        if (!duplicate) {
          // Still unacked at the sender (acks trail delivery), so the
          // payload is available for the reassembly buffer.
          link.reassembly.emplace(ev.seq, link.unacked.at(ev.seq));
          link.reassembly_hwm =
              std::max(link.reassembly_hwm,
                       static_cast<uint64_t>(link.reassembly.size()));
          // Deliver the in-order prefix; handlers may Send() more traffic,
          // which lands in this same event loop at the current time.
          auto it = link.reassembly.find(link.next_deliver);
          while (it != link.reassembly.end()) {
            Message message = std::move(it->second);
            link.reassembly.erase(it);
            ++link.next_deliver;
            link.to->Receive(message, link.child_index);
            it = link.reassembly.find(link.next_deliver);
          }
        }
        Schedule(now_us_ + config_.latency_us + JitterSample(),
                 EventKind::kAckArrives, &link, ev.seq);
        break;
      }
      case EventKind::kAckArrives:
        if (!rng_.NextBool(config_.drop_probability)) {
          link.unacked.erase(ev.seq);  // lost acks resolve via retransmit
        }
        break;
      case EventKind::kRtoFires:
        if (link.unacked.count(ev.seq) != 0) {
          ++retransmits_;
          // Handing over the message lets slice partials record a
          // kRetransmit span on the slice's own trace track.
          link.from->NoteRetransmit(&link.unacked.at(ev.seq));
          Transmit(link, ev.seq);
        }
        break;
    }
  }
  for (auto& [from, link] : links_) {
    if (link.to != nullptr) link.to->NoteQueueDepth(link.reassembly_hwm);
  }
}

}  // namespace desis
