#include "transport/sim_link_transport.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace desis {

SimLinkTransport::SimLinkTransport(SimLinkConfig config)
    : config_(config), rng_(config.seed) {
  config_.drop_probability = std::clamp(config_.drop_probability, 0.0, 0.9);
  if (config_.latency_us < 0) config_.latency_us = 0;
  if (config_.jitter_us < 0) config_.jitter_us = 0;
}

int64_t SimLinkTransport::JitterSample() {
  return config_.jitter_us == 0 ? 0 : rng_.NextInRange(0, config_.jitter_us);
}

void SimLinkTransport::Schedule(int64_t at, EventKind kind, Link* link,
                                uint64_t seq) {
  events_.push({at, next_order_++, kind, link, seq});
}

void SimLinkTransport::Transmit(Link& link, uint64_t seq) {
  const Message& message = link.unacked.at(seq);
  int64_t transmit_us = 0;
  if (config_.bytes_per_us > 0) {
    transmit_us = static_cast<int64_t>(std::ceil(
        static_cast<double>(message.WireBytes()) / config_.bytes_per_us));
  }
  const int64_t start = std::max(now_us_, link.free_at);
  link.free_at = start + transmit_us;
  const int64_t arrives = link.free_at + config_.latency_us + JitterSample();
  Schedule(arrives, EventKind::kDataArrives, &link, seq);
  // The ack for an undropped round trip lands no later than
  // arrives + latency + jitter; time out strictly after that.
  int64_t rto = config_.retransmit_timeout_us;
  if (rto <= 0) rto = config_.latency_us + config_.jitter_us + 1;
  Schedule(arrives + rto, EventKind::kRtoFires, &link, seq);
}

void SimLinkTransport::Send(Node* from, Node* to, int child_index,
                            const Message& message) {
  if (dead_.count(from) != 0 || dead_.count(to) != 0) return;  // crashed
  Link& link = links_[{from, to}];
  if (link.from == nullptr) {
    link.from = from;
    link.to = to;
  }
  // Refreshed every send: a reattached child keeps its link endpoints but
  // registers under a new child index at the (new) parent.
  link.child_index = child_index;
  const uint64_t seq = link.next_seq++;
  link.unacked.emplace(seq, message);
  Transmit(link, seq);
}

void SimLinkTransport::KillNode(Node* node) {
  dead_.insert(node);
  for (auto& [key, link] : links_) {
    if (link.from != node && link.to != node) continue;
    link.unacked.clear();
    link.reassembly.clear();
    link.parked.clear();
  }
}

bool SimLinkTransport::SetLinkDown(Node* a, Node* b, bool down) {
  const auto key = NormalizedPair(a, b);
  if (down) {
    down_.insert(key);
    return true;
  }
  down_.erase(key);
  // Heal: everything parked while the link was dark goes back on the wire,
  // in sequence order, as ordinary retransmissions.
  for (auto& [lk, link] : links_) {
    if (NormalizedPair(link.from, link.to) != key) continue;
    for (uint64_t seq : link.parked) {
      if (link.unacked.count(seq) == 0) continue;
      ++retransmits_;
      link.from->NoteRetransmit(&link.unacked.at(seq));
      Transmit(link, seq);
    }
    link.parked.clear();
  }
  return true;
}

void SimLinkTransport::ResetLink(Node* a, Node* b) {
  const auto key = NormalizedPair(a, b);
  down_.erase(key);
  for (auto& [lk, link] : links_) {
    if (NormalizedPair(link.from, link.to) != key) continue;
    link.unacked.clear();
    link.reassembly.clear();
    link.parked.clear();
    // Abandon the undelivered sequence window: the gap would otherwise
    // stall in-order delivery of everything sent after the reset.
    link.next_deliver = link.next_seq;
  }
}

void SimLinkTransport::Pump() {
  while (!events_.empty()) {
    const SimEvent ev = events_.top();
    events_.pop();
    now_us_ = std::max(now_us_, ev.at);
    Link& link = *ev.link;
    switch (ev.kind) {
      case EventKind::kDataArrives: {
        if (IsDead(link)) break;  // crashed endpoint: discard silently
        // Payload gone from the sender window (link reset on a reattach):
        // nothing to deliver, and no ack wanted.
        if (link.unacked.count(ev.seq) == 0 && ev.seq >= link.next_deliver) {
          break;
        }
        if (IsDown(link)) {
          ++drops_;
          link.from->NoteDrop();
          break;  // the pending RTO parks this seq until the link heals
        }
        if (rng_.NextBool(config_.drop_probability)) {
          ++drops_;
          link.from->NoteDrop();
          break;  // the pending RTO covers this loss
        }
        const bool duplicate = ev.seq < link.next_deliver ||
                               link.reassembly.count(ev.seq) != 0;
        if (!duplicate) {
          // Still unacked at the sender (acks trail delivery), so the
          // payload is available for the reassembly buffer.
          link.reassembly.emplace(ev.seq, link.unacked.at(ev.seq));
          link.reassembly_hwm =
              std::max(link.reassembly_hwm,
                       static_cast<uint64_t>(link.reassembly.size()));
          // Deliver the in-order prefix; handlers may Send() more traffic,
          // which lands in this same event loop at the current time.
          auto it = link.reassembly.find(link.next_deliver);
          while (it != link.reassembly.end()) {
            Message message = std::move(it->second);
            link.reassembly.erase(it);
            ++link.next_deliver;
            link.to->Receive(message, link.child_index);
            it = link.reassembly.find(link.next_deliver);
          }
        }
        Schedule(now_us_ + config_.latency_us + JitterSample(),
                 EventKind::kAckArrives, &link, ev.seq);
        break;
      }
      case EventKind::kAckArrives:
        if (IsDead(link) || IsDown(link)) break;  // resolve via retransmit
        if (!rng_.NextBool(config_.drop_probability)) {
          link.unacked.erase(ev.seq);  // lost acks resolve via retransmit
        }
        break;
      case EventKind::kRtoFires:
        if (IsDead(link)) break;
        if (link.unacked.count(ev.seq) != 0) {
          if (IsDown(link)) {
            // Partitioned: park instead of spinning the timer — the heal
            // retransmits everything parked.
            link.parked.insert(ev.seq);
            break;
          }
          ++retransmits_;
          // Handing over the message lets slice partials record a
          // kRetransmit span on the slice's own trace track.
          link.from->NoteRetransmit(&link.unacked.at(ev.seq));
          Transmit(link, ev.seq);
        }
        break;
    }
  }
  for (auto& [key, link] : links_) {
    if (link.to != nullptr && !IsDead(link)) {
      link.to->NoteQueueDepth(link.reassembly_hwm);
    }
  }
}

}  // namespace desis
