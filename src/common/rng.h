#ifndef DESIS_COMMON_RNG_H_
#define DESIS_COMMON_RNG_H_

#include <cstdint>

namespace desis {

/// Deterministic 64-bit RNG (splitmix64). Workload generators must be
/// reproducible across runs and platforms, so we avoid std::mt19937's
/// distribution-implementation variance and seed everything explicitly.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    state_ += 0x9E3779B97f4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace desis

#endif  // DESIS_COMMON_RNG_H_
