#ifndef DESIS_COMMON_EVENT_H_
#define DESIS_COMMON_EVENT_H_

#include <cstdint>

namespace desis {

/// Event timestamps are event time in microseconds since an arbitrary epoch.
using Timestamp = int64_t;

/// Commonly used time literals (microsecond-based).
constexpr Timestamp kMicrosecond = 1;
constexpr Timestamp kMillisecond = 1000 * kMicrosecond;
constexpr Timestamp kSecond = 1000 * kMillisecond;
constexpr Timestamp kMinute = 60 * kSecond;

/// Sentinel for "no timestamp" / uninitialized.
constexpr Timestamp kNoTimestamp = INT64_MIN;
/// Largest representable timestamp; used as "+infinity" for open slices.
constexpr Timestamp kMaxTimestamp = INT64_MAX;

/// Flags carried in Event::marker to delimit user-defined windows.
/// A marker event both belongs to the stream and controls windowing:
/// kWindowEnd closes the current user-defined window, kWindowStart opens the
/// next one (both may be set, e.g. "new trip starts now").
enum EventMarker : uint32_t {
  kNoMarker = 0,
  kWindowStart = 1u << 0,
  kWindowEnd = 1u << 1,
};

/// A single stream event. The schema follows the paper's generator (§6.1.2):
/// time, key, value, and a user-defined-window marker ("event" field).
struct Event {
  Timestamp ts = 0;
  uint32_t key = 0;
  double value = 0.0;
  uint32_t marker = kNoMarker;

  friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace desis

#endif  // DESIS_COMMON_EVENT_H_
