#ifndef DESIS_COMMON_SERDE_H_
#define DESIS_COMMON_SERDE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace desis {

/// Append-only binary writer. All network messages are serialized through
/// this so channels can account the exact number of bytes "on the wire".
class ByteWriter {
 public:
  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &value, sizeof(T));
  }

  void WriteU8(uint8_t v) { WritePod(v); }
  void WriteU16(uint16_t v) { WritePod(v); }
  void WriteU32(uint32_t v) { WritePod(v); }
  void WriteU64(uint64_t v) { WritePod(v); }
  void WriteI64(int64_t v) { WritePod(v); }
  void WriteDouble(double v) { WritePod(v); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    const size_t offset = buffer_.size();
    buffer_.resize(offset + s.size());
    std::memcpy(buffer_.data() + offset, s.data(), s.size());
  }

  template <typename T>
  void WritePodVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU32(static_cast<uint32_t>(values.size()));
    const size_t offset = buffer_.size();
    buffer_.resize(offset + values.size() * sizeof(T));
    std::memcpy(buffer_.data() + offset, values.data(),
                values.size() * sizeof(T));
  }

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Sequential binary reader over a byte span produced by ByteWriter.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  template <typename T>
  T ReadPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(pos_ + sizeof(T) <= size_);
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  uint8_t ReadU8() { return ReadPod<uint8_t>(); }
  uint16_t ReadU16() { return ReadPod<uint16_t>(); }
  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }
  double ReadDouble() { return ReadPod<double>(); }

  std::string ReadString() {
    const uint32_t n = ReadU32();
    assert(pos_ + n <= size_);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> ReadPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint32_t n = ReadU32();
    assert(pos_ + n * sizeof(T) <= size_);
    std::vector<T> values(n);
    std::memcpy(values.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return values;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace desis

#endif  // DESIS_COMMON_SERDE_H_
