#ifndef DESIS_COMMON_STATUS_H_
#define DESIS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace desis {

/// Minimal RocksDB-style status object. Desis does not use exceptions across
/// its public API; fallible operations return Status (or Result<T>).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kUnsupported,
    kInternal,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kUnsupported: return "Unsupported";
      case Code::kInternal: return "Internal";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value-or-Status pair, for APIs that produce a value on success.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intended implicit, mirrors
  // absl::StatusOr so call sites can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }

  T& operator*() & { return value_; }
  const T& operator*() const& { return value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace desis

#endif  // DESIS_COMMON_STATUS_H_
