#include "gen/data_generator.h"

namespace desis {

Event DataGenerator::Next() {
  Event e;
  // Event time advances by U[1, 2*mean) so multiple streams with different
  // seeds stay loosely aligned without being identical.
  ts_ += rng_.NextInRange(1, 2 * config_.mean_interval - 1);
  e.ts = ts_;
  e.key = static_cast<uint32_t>(rng_.NextBounded(config_.num_keys));
  // DEBS-2013-like speed values: 85% moderate (triangular around ~50 km/h),
  // 15% sprints (uniform up to 200 km/h).
  if (rng_.NextBool(0.85)) {
    e.value = 0.5 * (rng_.NextDouble() + rng_.NextDouble()) * 100.0;
  } else {
    e.value = rng_.NextDouble() * 200.0;
  }
  e.marker = kNoMarker;
  if (config_.marker_probability > 0 &&
      rng_.NextBool(config_.marker_probability)) {
    e.marker = kWindowEnd | kWindowStart;
  }
  if (config_.gap_probability > 0 && rng_.NextBool(config_.gap_probability)) {
    ts_ += config_.gap_length;
  }
  return e;
}

void DataGenerator::Fill(Event* events, size_t count) {
  for (size_t i = 0; i < count; ++i) events[i] = Next();
}

std::vector<Event> DataGenerator::Take(size_t count) {
  std::vector<Event> events(count);
  Fill(events.data(), count);
  return events;
}

}  // namespace desis
