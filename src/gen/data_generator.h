#ifndef DESIS_GEN_DATA_GENERATOR_H_
#define DESIS_GEN_DATA_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/event.h"
#include "common/rng.h"

namespace desis {

/// Configuration of the synthetic stream generator (§6.1.2). Values follow
/// the shape of the DEBS 2013 grand-challenge data (player speed readings):
/// mostly moderate values with occasional sprints.
struct DataGeneratorConfig {
  /// Number of distinct event keys (sensors).
  uint32_t num_keys = 10;
  /// Mean event-time spacing between events, in microseconds.
  Timestamp mean_interval = 10;
  /// Probability that an event carries a user-defined end+start marker
  /// ("trip done"); 0 disables markers.
  double marker_probability = 0.0;
  /// Probability of a burst pause (session gap) after an event, and its
  /// length; 0 disables gaps.
  double gap_probability = 0.0;
  Timestamp gap_length = 0;
  uint64_t seed = 1;
};

/// Deterministic synthetic data stream with non-decreasing timestamps.
class DataGenerator {
 public:
  explicit DataGenerator(DataGeneratorConfig config)
      : config_(config), rng_(config.seed) {}

  /// Produces the next event (event time advances by ~mean_interval).
  Event Next();

  /// Fills `events[0, count)` with consecutive events — batch-friendly
  /// output for feeding IngestBatch() from a reusable buffer.
  void Fill(Event* events, size_t count);

  /// Produces `count` consecutive events.
  std::vector<Event> Take(size_t count);

  Timestamp now() const { return ts_; }

 private:
  DataGeneratorConfig config_;
  Rng rng_;
  Timestamp ts_ = 0;
};

}  // namespace desis

#endif  // DESIS_GEN_DATA_GENERATOR_H_
