#include "gen/query_generator.h"

namespace desis {

Query QueryGenerator::Next() {
  Query q;
  q.id = next_id_++;

  const WindowType type = config_.window_types[static_cast<size_t>(
      rng_.NextBounded(config_.window_types.size()))];
  switch (type) {
    case WindowType::kTumbling:
    case WindowType::kSliding: {
      if (config_.count_measure_probability > 0 &&
          rng_.NextBool(config_.count_measure_probability)) {
        const int64_t count =
            rng_.NextInRange(config_.min_count, config_.max_count);
        q.window = type == WindowType::kTumbling
                       ? WindowSpec::CountTumbling(count)
                       : WindowSpec::CountSliding(
                             count, std::max<int64_t>(
                                        1, count / config_.slide_divisor));
      } else {
        const Timestamp length =
            rng_.NextInRange(config_.min_length, config_.max_length);
        q.window = type == WindowType::kTumbling
                       ? WindowSpec::Tumbling(length)
                       : WindowSpec::Sliding(
                             length, std::max<Timestamp>(
                                         1, length / config_.slide_divisor));
      }
      break;
    }
    case WindowType::kSession:
      q.window = WindowSpec::Session(
          rng_.NextInRange(config_.min_gap, config_.max_gap));
      break;
    case WindowType::kUserDefined:
      q.window = WindowSpec::UserDefined();
      break;
  }

  const AggregationFunction fn = config_.functions[static_cast<size_t>(
      rng_.NextBounded(config_.functions.size()))];
  q.agg.fn = fn;
  if (fn == AggregationFunction::kQuantile) {
    // Quantile parameters distributed over (0, 1) — the paper draws
    // "quantile values from 1 to 1000" (Fig 9c), i.e. permille points.
    q.agg.quantile =
        static_cast<double>(rng_.NextInRange(1, 1000)) / 1001.0;
  }

  if (config_.num_keys > 0) {
    q.predicate = Predicate::KeyEquals(
        static_cast<uint32_t>(rng_.NextBounded(config_.num_keys)));
  }
  return q;
}

std::vector<Query> QueryGenerator::Take(size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) queries.push_back(Next());
  return queries;
}

}  // namespace desis
