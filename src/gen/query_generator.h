#ifndef DESIS_GEN_QUERY_GENERATOR_H_
#define DESIS_GEN_QUERY_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/query.h"

namespace desis {

/// Configuration of the random query generator (§6.1.2): mixes of window
/// types, measures, aggregation functions, keys, and window lengths.
struct QueryGeneratorConfig {
  /// Keys queries may select on; 0 = all queries use Predicate::All().
  uint32_t num_keys = 0;
  /// Window length range [min, max], microseconds (uniform).
  Timestamp min_length = 1 * kSecond;
  Timestamp max_length = 10 * kSecond;
  /// Candidate window types; queries draw uniformly.
  std::vector<WindowType> window_types = {WindowType::kTumbling};
  /// Probability of a count-based measure (fixed windows only).
  double count_measure_probability = 0.0;
  /// Count window length range (events) when count measure is drawn.
  int64_t min_count = 1000;
  int64_t max_count = 100000;
  /// Candidate aggregation functions; queries draw uniformly.
  std::vector<AggregationFunction> functions = {AggregationFunction::kAverage};
  /// Session gap range when kSession is drawn.
  Timestamp min_gap = 100 * kMillisecond;
  Timestamp max_gap = 1 * kSecond;
  /// Sliding windows use slide = length / slide_divisor.
  int64_t slide_divisor = 5;
  uint64_t seed = 1;
};

/// Generates arbitrary query mixes deterministically.
class QueryGenerator {
 public:
  explicit QueryGenerator(QueryGeneratorConfig config)
      : config_(config), rng_(config.seed) {}

  /// Produces the next query with a fresh id.
  Query Next();

  /// Produces `count` queries.
  std::vector<Query> Take(size_t count);

 private:
  QueryGeneratorConfig config_;
  Rng rng_;
  QueryId next_id_ = 1;
};

}  // namespace desis

#endif  // DESIS_GEN_QUERY_GENERATOR_H_
