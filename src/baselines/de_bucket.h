#ifndef DESIS_BASELINES_DE_BUCKET_H_
#define DESIS_BASELINES_DE_BUCKET_H_

#include <deque>
#include <string>
#include <vector>

#include "core/engine_iface.h"
#include "core/operators.h"
#include "core/query.h"

namespace desis {

/// DeBucket baseline (§6.1.1, after Li et al.'s window buckets): one
/// incremental aggregate bucket per concurrent window. Events are folded
/// into every open bucket they belong to — incremental, but nothing is
/// shared between overlapping windows or queries.
class DeBucketEngine : public StreamEngine {
 public:
  DeBucketEngine() = default;

  Status Configure(const std::vector<Query>& queries) override;
  void Ingest(const Event& event) override;
  void AdvanceTo(Timestamp watermark) override;
  std::string name() const override { return "DeBucket"; }

  void Finish();

 private:
  struct Bucket {
    Timestamp start;
    Timestamp end;
    PartialAggregate agg;
    uint64_t events = 0;
  };
  struct QueryState {
    Query query;
    OperatorMask mask = 0;
    std::deque<Bucket> open;
    Timestamp next_start = kNoTimestamp;
    uint64_t matched_events = 0;
    bool active = false;
    Timestamp last_event_ts = kNoTimestamp;
    bool initialized = false;
  };

  void InitializeQuery(QueryState& qs, Timestamp first_ts);
  void CloseBucketsUpTo(QueryState& qs, Timestamp limit);
  void FireBucket(QueryState& qs, Bucket& bucket, Timestamp end_ts);

  std::vector<QueryState> queries_;
  Timestamp last_ts_ = kNoTimestamp;
};

}  // namespace desis

#endif  // DESIS_BASELINES_DE_BUCKET_H_
