#include "baselines/de_bucket.h"

#include <algorithm>

namespace desis {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

Status DeBucketEngine::Configure(const std::vector<Query>& queries) {
  queries_.clear();
  for (const Query& q : queries) {
    if (auto s = q.Validate(); !s.ok()) return s;
    QueryState qs;
    qs.query = q;
    qs.mask = OperatorsFor(q.agg.fn);
    queries_.push_back(std::move(qs));
  }
  return Status::OK();
}

void DeBucketEngine::InitializeQuery(QueryState& qs, Timestamp first_ts) {
  const WindowSpec& w = qs.query.window;
  if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
    const Timestamp ws_min = (FloorDiv(first_ts - w.length, w.slide) + 1) * w.slide;
    for (Timestamp ws = ws_min; ws <= first_ts; ws += w.slide) {
      qs.open.push_back({ws, ws + w.length, PartialAggregate(qs.mask), 0});
      ++stats_.slices_created;
    }
    qs.next_start = (FloorDiv(first_ts, w.slide) + 1) * w.slide;
  } else if (w.measure == WindowMeasure::kCount) {
    qs.open.push_back({first_ts, kMaxTimestamp, PartialAggregate(qs.mask), 0});
    ++stats_.slices_created;
  }
  qs.initialized = true;
}

void DeBucketEngine::FireBucket(QueryState& qs, Bucket& bucket,
                                Timestamp end_ts) {
  if (bucket.events == 0) return;
  bucket.agg.Seal();
  Emit({qs.query.id, bucket.start, end_ts, bucket.agg.Finalize(qs.query.agg),
        bucket.events});
}

void DeBucketEngine::CloseBucketsUpTo(QueryState& qs, Timestamp limit) {
  const WindowSpec& w = qs.query.window;
  if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
    while (!qs.open.empty() && qs.open.front().end <= limit) {
      FireBucket(qs, qs.open.front(), qs.open.front().end);
      qs.open.pop_front();
    }
  } else if (w.type == WindowType::kSession && qs.active &&
             qs.last_event_ts + w.gap <= limit) {
    if (!qs.open.empty()) {
      FireBucket(qs, qs.open.front(), qs.last_event_ts + w.gap);
      qs.open.pop_front();
    }
    qs.active = false;
  }
}

void DeBucketEngine::Ingest(const Event& event) {
  ++stats_.events;
  last_ts_ = event.ts;
  for (QueryState& qs : queries_) {
    const WindowSpec& w = qs.query.window;
    if (!qs.initialized) InitializeQuery(qs, event.ts);

    CloseBucketsUpTo(qs, event.ts);

    if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
      while (qs.next_start <= event.ts) {
        qs.open.push_back(
            {qs.next_start, qs.next_start + w.length, PartialAggregate(qs.mask), 0});
        ++stats_.slices_created;
        qs.next_start += w.slide;
      }
    }

    ++stats_.selection_evals;
    if (!qs.query.predicate.Matches(event)) continue;

    if (w.type == WindowType::kSession || w.type == WindowType::kUserDefined) {
      if (!qs.active) {
        qs.open.push_back({event.ts, kMaxTimestamp, PartialAggregate(qs.mask), 0});
        ++stats_.slices_created;
        qs.active = true;
      }
      qs.last_event_ts = event.ts;
    }

    // Incrementally fold the event into *every* open bucket — the cost that
    // grows with the number of concurrent windows (Fig 8a).
    for (Bucket& bucket : qs.open) {
      if (event.ts >= bucket.start) {
        stats_.operator_executions +=
            static_cast<uint64_t>(bucket.agg.Add(event.value));
        ++bucket.events;
      }
    }

    if (w.measure == WindowMeasure::kCount) {
      ++qs.matched_events;
      if (qs.matched_events % static_cast<uint64_t>(w.slide) == 0) {
        qs.open.push_back({event.ts, kMaxTimestamp, PartialAggregate(qs.mask), 0});
        ++stats_.slices_created;
      }
      while (!qs.open.empty() &&
             qs.open.front().events >= static_cast<uint64_t>(w.length)) {
        FireBucket(qs, qs.open.front(), event.ts);
        qs.open.pop_front();
      }
    } else if (w.type == WindowType::kUserDefined &&
               (event.marker & kWindowEnd) != 0 && qs.active) {
      FireBucket(qs, qs.open.front(), event.ts);
      qs.open.pop_front();
      qs.active = false;
    }
  }
}

void DeBucketEngine::AdvanceTo(Timestamp watermark) {
  for (QueryState& qs : queries_) {
    if (qs.initialized) CloseBucketsUpTo(qs, watermark);
  }
}

void DeBucketEngine::Finish() {
  if (last_ts_ == kNoTimestamp) return;
  Timestamp extent = 0;
  for (const QueryState& qs : queries_) {
    const WindowSpec& w = qs.query.window;
    if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
      extent = std::max(extent, w.length);
    } else if (w.type == WindowType::kSession) {
      extent = std::max(extent, w.gap);
    }
  }
  AdvanceTo(last_ts_ + extent + 1);
}

}  // namespace desis
