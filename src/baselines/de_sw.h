#ifndef DESIS_BASELINES_DE_SW_H_
#define DESIS_BASELINES_DE_SW_H_

#include "core/engine.h"

namespace desis {

/// DeSW baseline (§6.1.1): Desis' architecture, but partial results are
/// shared only between windows with the *same* aggregation function and
/// window measure (like Scotty). Each (function, measure) class forms its
/// own query-group, and window ends are re-checked per event instead of
/// being scheduled in advance.
class DeSWEngine : public SlicingEngine {
 public:
  explicit DeSWEngine(DeploymentMode mode = DeploymentMode::kCentralized)
      : SlicingEngine("DeSW", SharingPolicy::kPerFunction,
                      PunctuationStrategy::kPerEventScan, mode) {}
};

/// Scotty baseline (§6.1.1): general stream slicing with same-function
/// sharing, deployed centralized — in decentralized topologies all raw
/// events are forwarded to the root, where this engine runs.
class ScottyEngine : public SlicingEngine {
 public:
  ScottyEngine()
      : SlicingEngine("Scotty", SharingPolicy::kPerFunction,
                      PunctuationStrategy::kPerEventScan) {}
};

}  // namespace desis

#endif  // DESIS_BASELINES_DE_SW_H_
