#include "baselines/ce_buffer.h"

#include <algorithm>

#include "core/operators.h"

namespace desis {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

Status CeBufferEngine::Configure(const std::vector<Query>& queries) {
  queries_.clear();
  for (const Query& q : queries) {
    if (auto s = q.Validate(); !s.ok()) return s;
    QueryState qs;
    qs.query = q;
    queries_.push_back(std::move(qs));
  }
  return Status::OK();
}

void CeBufferEngine::InitializeQuery(QueryState& qs, Timestamp first_ts) {
  const WindowSpec& w = qs.query.window;
  if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
    const Timestamp ws_min = (FloorDiv(first_ts - w.length, w.slide) + 1) * w.slide;
    for (Timestamp ws = ws_min; ws <= first_ts; ws += w.slide) {
      qs.open.push_back({ws, ws + w.length, {}});
      ++stats_.slices_created;
    }
    qs.next_start = (FloorDiv(first_ts, w.slide) + 1) * w.slide;
  } else if (w.measure == WindowMeasure::kCount) {
    qs.open.push_back({first_ts, kMaxTimestamp, {}});
    ++stats_.slices_created;
    qs.events_in_current = 0;
  }
  qs.initialized = true;
}

void CeBufferEngine::FireWindow(QueryState& qs, OpenWindow& window,
                                Timestamp end_ts) {
  if (window.buffer.empty()) return;
  // No incremental aggregation: iterate the whole buffer at window end.
  PartialAggregate agg(OperatorsFor(qs.query.agg.fn));
  for (double v : window.buffer) {
    stats_.operator_executions += static_cast<uint64_t>(agg.Add(v));
  }
  agg.Seal();
  Emit({qs.query.id, window.start, end_ts, agg.Finalize(qs.query.agg),
        window.buffer.size()});
}

void CeBufferEngine::CloseWindowsUpTo(QueryState& qs, Timestamp limit) {
  const WindowSpec& w = qs.query.window;
  if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
    while (!qs.open.empty() && qs.open.front().end <= limit) {
      FireWindow(qs, qs.open.front(), qs.open.front().end);
      qs.open.pop_front();
    }
  } else if (w.type == WindowType::kSession && qs.active &&
             qs.last_event_ts + w.gap <= limit) {
    if (!qs.open.empty()) {
      FireWindow(qs, qs.open.front(), qs.last_event_ts + w.gap);
      qs.open.pop_front();
    }
    qs.active = false;
  }
}

void CeBufferEngine::Ingest(const Event& event) {
  ++stats_.events;
  last_ts_ = event.ts;
  for (QueryState& qs : queries_) {
    const WindowSpec& w = qs.query.window;
    if (!qs.initialized) InitializeQuery(qs, event.ts);

    CloseWindowsUpTo(qs, event.ts);

    // Open fixed windows whose start has been reached.
    if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
      while (qs.next_start <= event.ts) {
        qs.open.push_back({qs.next_start, qs.next_start + w.length, {}});
        ++stats_.slices_created;
        qs.next_start += w.slide;
      }
    }

    ++stats_.selection_evals;
    if (!qs.query.predicate.Matches(event)) continue;

    if (w.type == WindowType::kSession || w.type == WindowType::kUserDefined) {
      if (!qs.active) {
        qs.open.push_back({event.ts, kMaxTimestamp, {}});
        ++stats_.slices_created;
        qs.active = true;
      }
      qs.last_event_ts = event.ts;
    }

    // Buffer the event in every open window that contains it.
    for (OpenWindow& window : qs.open) {
      if (event.ts >= window.start) window.buffer.push_back(event.value);
    }

    if (w.measure == WindowMeasure::kCount) {
      ++qs.events_in_current;
      if (qs.events_in_current % static_cast<uint64_t>(w.slide) == 0) {
        qs.open.push_back({event.ts, kMaxTimestamp, {}});
        ++stats_.slices_created;
      }
      while (!qs.open.empty() &&
             qs.open.front().buffer.size() >=
                 static_cast<size_t>(w.length)) {
        FireWindow(qs, qs.open.front(), event.ts);
        qs.open.pop_front();
      }
    } else if (w.type == WindowType::kUserDefined &&
               (event.marker & kWindowEnd) != 0 && qs.active) {
      FireWindow(qs, qs.open.front(), event.ts);
      qs.open.pop_front();
      qs.active = false;
    }
  }
}

void CeBufferEngine::AdvanceTo(Timestamp watermark) {
  for (QueryState& qs : queries_) {
    if (qs.initialized) CloseWindowsUpTo(qs, watermark);
  }
}

void CeBufferEngine::Finish() {
  if (last_ts_ == kNoTimestamp) return;
  Timestamp extent = 0;
  for (const QueryState& qs : queries_) {
    const WindowSpec& w = qs.query.window;
    if (w.measure == WindowMeasure::kTime && w.IsFixedSize()) {
      extent = std::max(extent, w.length);
    } else if (w.type == WindowType::kSession) {
      extent = std::max(extent, w.gap);
    }
  }
  AdvanceTo(last_ts_ + extent + 1);
}

size_t CeBufferEngine::buffered_events() const {
  size_t total = 0;
  for (const QueryState& qs : queries_) {
    for (const OpenWindow& w : qs.open) total += w.buffer.size();
  }
  return total;
}

}  // namespace desis
