#ifndef DESIS_BASELINES_CE_BUFFER_H_
#define DESIS_BASELINES_CE_BUFFER_H_

#include <deque>
#include <string>
#include <vector>

#include "core/engine_iface.h"
#include "core/query.h"

namespace desis {

/// CeBuffer baseline (§6.1.1): one event buffer per concurrent window, no
/// incremental aggregation and no sharing. Every arriving event is appended
/// to the buffer of every open window it belongs to; when a window ends its
/// whole buffer is iterated to compute the aggregate from scratch.
class CeBufferEngine : public StreamEngine {
 public:
  CeBufferEngine() = default;

  Status Configure(const std::vector<Query>& queries) override;
  void Ingest(const Event& event) override;
  void AdvanceTo(Timestamp watermark) override;
  std::string name() const override { return "CeBuffer"; }

  /// Fires remaining fixed-size windows past the last event.
  void Finish();

  /// Total events currently buffered across all open windows (a window's
  /// events are dropped only when that window closed — big windows pin
  /// memory, §2.3).
  size_t buffered_events() const;

 private:
  struct OpenWindow {
    Timestamp start;
    Timestamp end;  // kMaxTimestamp while unknown (session/user-defined)
    std::vector<double> buffer;
  };
  struct QueryState {
    Query query;
    std::deque<OpenWindow> open;
    Timestamp next_start = kNoTimestamp;  // fixed windows
    uint64_t events_in_current = 0;       // count windows
    bool active = false;                  // session/user-defined
    Timestamp last_event_ts = kNoTimestamp;
    bool initialized = false;
  };

  void InitializeQuery(QueryState& qs, Timestamp first_ts);
  void CloseWindowsUpTo(QueryState& qs, Timestamp limit);
  void FireWindow(QueryState& qs, OpenWindow& window, Timestamp end_ts);

  std::vector<QueryState> queries_;
  Timestamp last_ts_ = kNoTimestamp;
};

}  // namespace desis

#endif  // DESIS_BASELINES_CE_BUFFER_H_
