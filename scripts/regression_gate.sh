#!/usr/bin/env bash
# CI perf-regression gate (docs/EXPERIMENTS.md): run the Fig 6 smoke bench
# (which includes a 2-shard decentralized variant) and the sharded-ingest
# shard sweep, diff each metrics sidecar against its committed baseline
# with `desis-inspect diff --stable-only`, and append both runs to
# BENCH_history.jsonl. Exit status is desis-inspect's: 0 clean, 1 a stable
# counter drifted beyond the band, 2 on tooling errors.
#
# Usage: scripts/regression_gate.sh <build-dir> [threshold]
#
# The comparison is restricted to deterministic counters (events, operator
# evaluations, bytes on the wire, slice/result counts) so it is meaningful
# on noisy shared CI machines; wall-clock throughput — and the shard
# speedup/efficiency ratios derived from it — is recorded in the history
# file but never gated on. The optimizer suites (bench_correlated,
# bench_query_churn) run after: both self-check their acceptance contracts
# (byte-identical optimized results, >= 2x operator-eval reduction, full
# churn histograms) and exit non-zero on violation, then their stable
# series (group events/evals, results, group counts) are diffed like the
# rest — the opt.group_churn_ns timings are `_ns` series and auto-skipped.
# Regenerate the baselines after an intentional behaviour change with:
#   DESIS_BENCH_SCALE=0.01 \
#   DESIS_METRICS_OUT=bench/baselines/fig6_smoke_baseline.json \
#     <build-dir>/bench/bench_fig6
#   DESIS_METRICS_OUT=bench/baselines/micro_sharded_baseline.json \
#     <build-dir>/bench/bench_micro \
#       --benchmark_filter='BM_IngestSharded' --benchmark_min_time=0.05
#   DESIS_BENCH_SCALE=0.01 \
#   DESIS_METRICS_OUT=bench/baselines/correlated_baseline.json \
#     <build-dir>/bench/bench_correlated
#   DESIS_BENCH_SCALE=0.01 \
#   DESIS_METRICS_OUT=bench/baselines/query_churn_baseline.json \
#     <build-dir>/bench/bench_query_churn
#   DESIS_BENCH_SCALE=0.01 \
#   DESIS_METRICS_OUT=bench/baselines/memory_cap_baseline.json \
#     <build-dir>/bench/bench_memory_cap
set -euo pipefail

BUILD_DIR=${1:?usage: regression_gate.sh <build-dir> [threshold]}
THRESHOLD=${2:-0.15}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BASELINE="$REPO_ROOT/bench/baselines/fig6_smoke_baseline.json"
SHARDED_BASELINE="$REPO_ROOT/bench/baselines/micro_sharded_baseline.json"
OUT=$(mktemp -t fig6_smoke_XXXXXX.json)
SHARDED_OUT=$(mktemp -t micro_sharded_XXXXXX.json)
trap 'rm -f "$OUT" "$SHARDED_OUT"' EXIT

# Same pinned scale the baseline was generated with.
DESIS_BENCH_SCALE=0.01 DESIS_METRICS_OUT="$OUT" \
  "$BUILD_DIR/bench/bench_fig6" >/dev/null

"$BUILD_DIR/tools/desis_inspect" summary "$OUT"
"$BUILD_DIR/tools/desis_inspect" history "$OUT" \
  --append="$REPO_ROOT/BENCH_history.jsonl"
"$BUILD_DIR/tools/desis_inspect" diff "$BASELINE" "$OUT" \
  --threshold="$THRESHOLD" --stable-only

# Sharded-ingest shard sweep: events/sec and scaling efficiency land in
# the history file; only the deterministic engine counters are gated.
DESIS_METRICS_OUT="$SHARDED_OUT" "$BUILD_DIR/bench/bench_micro" \
  --benchmark_filter='BM_IngestSharded' --benchmark_min_time=0.05 >/dev/null

"$BUILD_DIR/tools/desis_inspect" summary "$SHARDED_OUT"
"$BUILD_DIR/tools/desis_inspect" history "$SHARDED_OUT" \
  --append="$REPO_ROOT/BENCH_history.jsonl"
"$BUILD_DIR/tools/desis_inspect" diff "$SHARDED_BASELINE" "$SHARDED_OUT" \
  --threshold="$THRESHOLD" --stable-only

# Optimizer and bounded-memory suites: the binaries fail on any
# acceptance-contract violation (set -e propagates) — bench_memory_cap
# checks governed runs stay byte-identical with peak residency at or under
# budget — then the deterministic series are diffed as usual.
for suite in correlated query_churn memory_cap; do
  SUITE_BASELINE="$REPO_ROOT/bench/baselines/${suite}_baseline.json"
  SUITE_OUT=$(mktemp -t "${suite}_XXXXXX.json")
  trap 'rm -f "$OUT" "$SHARDED_OUT" "$SUITE_OUT"' EXIT
  DESIS_BENCH_SCALE=0.01 DESIS_METRICS_OUT="$SUITE_OUT" \
    "$BUILD_DIR/bench/bench_${suite}" >/dev/null

  "$BUILD_DIR/tools/desis_inspect" summary "$SUITE_OUT"
  "$BUILD_DIR/tools/desis_inspect" history "$SUITE_OUT" \
    --append="$REPO_ROOT/BENCH_history.jsonl"
  "$BUILD_DIR/tools/desis_inspect" diff "$SUITE_BASELINE" "$SUITE_OUT" \
    --threshold="$THRESHOLD" --stable-only
  rm -f "$SUITE_OUT"
done
