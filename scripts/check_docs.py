#!/usr/bin/env python3
"""Documentation checks: relative links resolve, code fences balance.

Scans every tracked *.md file for
  1. relative markdown links ([text](path) / [text](path#anchor)) whose
     target file does not exist,
  2. unbalanced ``` code fences,
  3. trailing whitespace (lint; reported but non-fatal unless --strict).

Repo-level checks:
  4. every docs/*.md file is linked from the README documentation index,
  5. every `recovery.*` / `engine.*` / `health.*` / `recorder.*` metric
     name registered in src/ has a schema row in docs/METRICS.md.

Exit code 0 when clean, 1 when any fatal finding exists. No external
dependencies — stdlib only.
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def tracked_markdown(root: Path) -> list[Path]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others", "--exclude-standard",
             "*.md", "**/*.md"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        files = [root / line for line in out.splitlines() if line]
    except (subprocess.CalledProcessError, FileNotFoundError):
        files = list(root.rglob("*.md"))
    return sorted(set(f for f in files if f.is_file()))


def strip_fenced_code(text: str) -> str:
    """Blanks out fenced code blocks so example links are not checked."""
    lines = text.splitlines()
    out = []
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def check_file(path: Path, root: Path, strict: bool) -> tuple[int, int]:
    fatal = warnings = 0
    text = path.read_text(encoding="utf-8")

    fences = sum(1 for line in text.splitlines() if FENCE_RE.match(line))
    if fences % 2 != 0:
        print(f"{path.relative_to(root)}: unbalanced code fences "
              f"({fences} markers)")
        fatal += 1

    for m in LINK_RE.finditer(strip_fenced_code(text)):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            print(f"{path.relative_to(root)}: broken link -> {target}")
            fatal += 1

    for i, line in enumerate(text.splitlines(), 1):
        if line != line.rstrip():
            if strict:
                print(f"{path.relative_to(root)}:{i}: trailing whitespace")
                fatal += 1
            else:
                warnings += 1

    return fatal, warnings


METRIC_RE = re.compile(r"\"((?:recovery|engine|health|recorder)\.[a-z_.]+)\"")


def check_readme_index(root: Path, files: list[Path]) -> int:
    """Every docs/*.md must be reachable from the README (the docs index)."""
    readme = root / "README.md"
    if not readme.exists():
        print("README.md missing — cannot check the docs index")
        return 1
    text = strip_fenced_code(readme.read_text(encoding="utf-8"))
    linked = {m.group(1).split("#", 1)[0] for m in LINK_RE.finditer(text)}
    fatal = 0
    for f in files:
        rel = f.relative_to(root)
        if rel.parts[0] != "docs":
            continue
        if str(rel) not in linked:
            print(f"README.md: docs index is missing a link to {rel}")
            fatal += 1
    return fatal


def check_metric_schema(root: Path) -> int:
    """Every recovery./engine./health./recorder. series in src/ needs a
    METRICS.md row."""
    metrics_md = root / "docs" / "METRICS.md"
    if not metrics_md.exists():
        print("docs/METRICS.md missing — cannot check the metric schema")
        return 1
    documented = metrics_md.read_text(encoding="utf-8")
    registered = set()
    for src in sorted((root / "src").rglob("*.cc")) + sorted(
            (root / "src").rglob("*.h")):
        registered.update(METRIC_RE.findall(src.read_text(encoding="utf-8")))
    fatal = 0
    for name in sorted(registered):
        if f"`{name}`" not in documented:
            print(f"docs/METRICS.md: no schema row for registered metric "
                  f"{name}")
            fatal += 1
    return fatal


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--strict", action="store_true",
                        help="treat lint findings as fatal")
    args = parser.parse_args()

    root = args.root.resolve()
    files = tracked_markdown(root)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1

    fatal = warnings = 0
    for f in files:
        ff, ww = check_file(f, root, args.strict)
        fatal += ff
        warnings += ww
    fatal += check_readme_index(root, files)
    fatal += check_metric_schema(root)

    print(f"checked {len(files)} markdown files: "
          f"{fatal} errors, {warnings} lint warnings")
    return 1 if fatal else 0


if __name__ == "__main__":
    sys.exit(main())
