#include "core/operators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/serde.h"
#include "core/aggregation.h"

namespace desis {
namespace {

TEST(AggregationTable, OperatorsForMatchesPaperTable1) {
  EXPECT_EQ(OperatorsFor(AggregationFunction::kSum),
            MaskOf(OperatorKind::kSum));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kCount),
            MaskOf(OperatorKind::kCount));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kAverage),
            MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kProduct),
            MaskOf(OperatorKind::kMultiply));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kGeometricMean),
            MaskOf(OperatorKind::kMultiply) | MaskOf(OperatorKind::kCount));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kMax),
            MaskOf(OperatorKind::kDecomposableSort));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kMin),
            MaskOf(OperatorKind::kDecomposableSort));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kMedian),
            MaskOf(OperatorKind::kNonDecomposableSort));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kQuantile),
            MaskOf(OperatorKind::kNonDecomposableSort));
}

TEST(AggregationTable, Decomposability) {
  EXPECT_TRUE(IsDecomposable(AggregationFunction::kSum));
  EXPECT_TRUE(IsDecomposable(AggregationFunction::kAverage));
  EXPECT_TRUE(IsDecomposable(AggregationFunction::kMin));
  EXPECT_TRUE(IsDecomposable(AggregationFunction::kGeometricMean));
  EXPECT_FALSE(IsDecomposable(AggregationFunction::kMedian));
  EXPECT_FALSE(IsDecomposable(AggregationFunction::kQuantile));
}

TEST(AggregationTable, SharedOperatorsReduceWork) {
  // avg + sum need only {sum, count}: 2 operator executions per event, not 3.
  OperatorMask mask = OperatorsFor(AggregationFunction::kAverage) |
                      OperatorsFor(AggregationFunction::kSum);
  EXPECT_EQ(OperatorCount(mask), 2);
  // quantile + max share nothing extra over quantile alone... they need
  // non-decomposable sort + decomposable sort = 2.
  mask = OperatorsFor(AggregationFunction::kQuantile) |
         OperatorsFor(AggregationFunction::kMax);
  EXPECT_EQ(OperatorCount(mask), 2);
  // median + quantile share a single non-decomposable sort.
  mask = OperatorsFor(AggregationFunction::kMedian) |
         OperatorsFor(AggregationFunction::kQuantile);
  EXPECT_EQ(OperatorCount(mask), 1);
}

TEST(Operators, SumCountMultiply) {
  SumState sum;
  CountState count;
  MultiplyState mult;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    sum.Add(v);
    count.Add(v);
    mult.Add(v);
  }
  EXPECT_DOUBLE_EQ(sum.sum, 10.0);
  EXPECT_EQ(count.count, 4u);
  EXPECT_DOUBLE_EQ(mult.product, 24.0);

  SumState sum2;
  sum2.Add(5.0);
  sum.Merge(sum2);
  EXPECT_DOUBLE_EQ(sum.sum, 15.0);
}

TEST(Operators, MinMaxSharedState) {
  MinMaxState mm;
  for (double v : {3.0, -1.0, 7.0, 2.0}) mm.Add(v);
  EXPECT_DOUBLE_EQ(mm.min, -1.0);
  EXPECT_DOUBLE_EQ(mm.max, 7.0);

  MinMaxState other;
  other.Add(-5.0);
  other.Add(100.0);
  mm.Merge(other);
  EXPECT_DOUBLE_EQ(mm.min, -5.0);
  EXPECT_DOUBLE_EQ(mm.max, 100.0);
}

TEST(Operators, SortedStateMedianOdd) {
  SortedState s;
  for (double v : {5.0, 1.0, 3.0}) s.Add(v);
  s.Seal();
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
}

TEST(Operators, SortedStateMedianEven) {
  SortedState s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.Add(v);
  s.Seal();
  EXPECT_DOUBLE_EQ(s.Median(), 2.5);
}

TEST(Operators, SortedStateQuantiles) {
  SortedState s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  s.Seal();
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 50.5);
  EXPECT_NEAR(s.Quantile(0.9), 90.1, 1e-9);
}

TEST(Operators, SortedStateMergeKeepsOrder) {
  SortedState a;
  SortedState b;
  for (double v : {9.0, 1.0, 5.0}) a.Add(v);
  for (double v : {2.0, 8.0}) b.Add(v);
  a.Seal();
  b.Seal();
  a.Merge(b);
  ASSERT_EQ(a.size(), 5u);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a.NthValue(i - 1), a.NthValue(i));
  }
}

TEST(PartialAggregate, AddReturnsExecutedOperatorCount) {
  PartialAggregate agg(OperatorsFor(AggregationFunction::kAverage) |
                       OperatorsFor(AggregationFunction::kSum));
  // avg+sum collapse to {sum, count}: exactly 2 executions per event.
  EXPECT_EQ(agg.Add(1.0), 2);

  PartialAggregate all(
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
      MaskOf(OperatorKind::kMultiply) |
      MaskOf(OperatorKind::kDecomposableSort) |
      MaskOf(OperatorKind::kNonDecomposableSort));
  EXPECT_EQ(all.Add(2.0), 5);
}

TEST(PartialAggregate, FinalizeEveryFunctionFromSharedState) {
  PartialAggregate agg(
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
      MaskOf(OperatorKind::kMultiply) |
      MaskOf(OperatorKind::kDecomposableSort) |
      MaskOf(OperatorKind::kNonDecomposableSort));
  for (double v : {2.0, 8.0, 4.0}) agg.Add(v);
  agg.Seal();

  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kSum, 0}), 14.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kCount, 0}), 3.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kAverage, 0}),
                   14.0 / 3.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kProduct, 0}), 64.0);
  EXPECT_NEAR(agg.Finalize({AggregationFunction::kGeometricMean, 0}),
              std::cbrt(64.0), 1e-9);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kMin, 0}), 2.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kMax, 0}), 8.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kMedian, 0}), 4.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kQuantile, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kQuantile, 1.0}), 8.0);
}

TEST(PartialAggregate, MergeEqualsSingleShot) {
  // Property: F(X0..n) == G(F(X0..i), F(Xi..n)) for decomposable operators.
  const OperatorMask mask =
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
      MaskOf(OperatorKind::kDecomposableSort) |
      MaskOf(OperatorKind::kNonDecomposableSort);
  PartialAggregate whole(mask);
  PartialAggregate left(mask);
  PartialAggregate right(mask);
  const double values[] = {5, 3, 9, 1, 7, 2, 8, 6};
  for (int i = 0; i < 8; ++i) {
    whole.Add(values[i]);
    (i < 4 ? left : right).Add(values[i]);
  }
  whole.Seal();
  left.Seal();
  right.Seal();
  left.Merge(right);

  for (AggregationFunction fn :
       {AggregationFunction::kSum, AggregationFunction::kCount,
        AggregationFunction::kAverage, AggregationFunction::kMin,
        AggregationFunction::kMax, AggregationFunction::kMedian}) {
    EXPECT_DOUBLE_EQ(whole.Finalize({fn, 0.5}), left.Finalize({fn, 0.5}))
        << ToString(fn);
  }
}

TEST(PartialAggregate, MergeSubsetMaskReadsOnlyNeededOperators) {
  // A slice partial carries the group's union mask; assembling a sum-only
  // window must not touch the (expensive) sorted state.
  const OperatorMask group_mask =
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kNonDecomposableSort);
  PartialAggregate slice(group_mask);
  for (double v : {1.0, 2.0, 3.0}) slice.Add(v);
  slice.Seal();

  PartialAggregate acc(MaskOf(OperatorKind::kSum));
  acc.Seal();
  acc.Merge(slice);
  EXPECT_DOUBLE_EQ(acc.Finalize({AggregationFunction::kSum, 0}), 6.0);
  EXPECT_EQ(acc.sorted_state().size(), 0u);
}

TEST(PartialAggregate, SerializeRoundTrip) {
  const OperatorMask mask =
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
      MaskOf(OperatorKind::kMultiply) |
      MaskOf(OperatorKind::kDecomposableSort) |
      MaskOf(OperatorKind::kNonDecomposableSort);
  PartialAggregate agg(mask);
  for (double v : {3.0, 1.0, 4.0, 1.5}) agg.Add(v);
  agg.Seal();

  ByteWriter out;
  agg.SerializeTo(out);
  ByteReader in(out.bytes());
  PartialAggregate back = PartialAggregate::DeserializeFrom(in);
  EXPECT_TRUE(in.AtEnd());

  EXPECT_EQ(back.mask(), mask);
  EXPECT_DOUBLE_EQ(back.Finalize({AggregationFunction::kSum, 0}), 9.5);
  EXPECT_DOUBLE_EQ(back.Finalize({AggregationFunction::kCount, 0}), 4.0);
  EXPECT_DOUBLE_EQ(back.Finalize({AggregationFunction::kMin, 0}), 1.0);
  EXPECT_DOUBLE_EQ(back.Finalize({AggregationFunction::kMax, 0}), 4.0);
  EXPECT_DOUBLE_EQ(back.Finalize({AggregationFunction::kMedian, 0}), 2.25);
}

TEST(PartialAggregate, EmptyPartialSerializeRoundTrip) {
  PartialAggregate agg(MaskOf(OperatorKind::kSum));
  ByteWriter out;
  agg.SerializeTo(out);
  ByteReader in(out.bytes());
  PartialAggregate back = PartialAggregate::DeserializeFrom(in);
  EXPECT_DOUBLE_EQ(back.Finalize({AggregationFunction::kSum, 0}), 0.0);
}

// Property sweep: merged quantiles equal whole-set quantiles for any split.
class QuantileMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMergeProperty, SplitInvariant) {
  const int split = GetParam();
  const int n = 64;
  PartialAggregate whole(MaskOf(OperatorKind::kNonDecomposableSort));
  PartialAggregate left(MaskOf(OperatorKind::kNonDecomposableSort));
  PartialAggregate right(MaskOf(OperatorKind::kNonDecomposableSort));
  uint64_t state = 42;
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double v = static_cast<double>(state % 1000);
    whole.Add(v);
    (i < split ? left : right).Add(v);
  }
  whole.Seal();
  left.Seal();
  right.Seal();
  left.Merge(right);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(whole.Finalize({AggregationFunction::kQuantile, q}),
                     left.Finalize({AggregationFunction::kQuantile, q}))
        << "q=" << q << " split=" << split;
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, QuantileMergeProperty,
                         ::testing::Values(0, 1, 7, 16, 32, 48, 63, 64));

}  // namespace
}  // namespace desis
