// Engine-interface conformance suite: every StreamEngine implementation,
// for every window type × aggregation function combination, must match the
// brute-force oracle. Parameterized across (engine, window type, function).

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "baselines/ce_buffer.h"
#include "baselines/de_bucket.h"
#include "baselines/de_sw.h"
#include "common/rng.h"
#include "core/engine.h"

namespace desis {
namespace {

std::unique_ptr<StreamEngine> MakeEngine(const std::string& name) {
  if (name == "Desis") return std::make_unique<DesisEngine>();
  if (name == "DeSW") return std::make_unique<DeSWEngine>();
  if (name == "Scotty") return std::make_unique<ScottyEngine>();
  if (name == "DeBucket") return std::make_unique<DeBucketEngine>();
  return std::make_unique<CeBufferEngine>();
}

WindowSpec MakeWindow(WindowType type) {
  switch (type) {
    case WindowType::kTumbling: return WindowSpec::Tumbling(97);
    case WindowType::kSliding: return WindowSpec::Sliding(120, 37);
    case WindowType::kSession: return WindowSpec::Session(23);
    case WindowType::kUserDefined: return WindowSpec::UserDefined();
  }
  return WindowSpec::Tumbling(97);
}

double Oracle(const std::vector<Event>& events, Timestamp start, Timestamp end,
              const AggregationSpec& spec, bool end_inclusive) {
  // User-defined windows close *on* their delimiting marker event: the
  // event at ts == window_end belongs to the window (end-inclusive).
  PartialAggregate agg(OperatorsFor(spec.fn));
  for (const Event& e : events) {
    if (e.ts >= start && (e.ts < end || (end_inclusive && e.ts == end))) {
      agg.Add(e.value);
    }
  }
  agg.Seal();
  return agg.Finalize(spec);
}

using Param = std::tuple<std::string, WindowType, AggregationFunction>;

class EngineConformance : public ::testing::TestWithParam<Param> {};

TEST_P(EngineConformance, MatchesOracle) {
  const auto& [name, type, fn] = GetParam();
  Query q;
  q.id = 1;
  q.window = MakeWindow(type);
  q.agg = {fn, 0.75};

  auto engine = MakeEngine(name);
  ASSERT_TRUE(engine->Configure({q}).ok());

  std::vector<std::pair<std::pair<Timestamp, Timestamp>, double>> results;
  engine->set_sink([&](const WindowResult& r) {
    results.push_back({{r.window_start, r.window_end}, r.value});
  });

  Rng rng(static_cast<uint64_t>(type) * 100 + static_cast<uint64_t>(fn));
  std::vector<Event> events;
  Timestamp ts = 0;
  for (int i = 0; i < 600; ++i) {
    // Occasional longer pauses close sessions; sparse markers end trips.
    ts += rng.NextBool(0.03) ? rng.NextInRange(30, 60) : rng.NextInRange(1, 5);
    const uint32_t marker = rng.NextBool(0.02) ? kWindowEnd : kNoMarker;
    // Positive values so product/geomean stay finite.
    events.push_back({ts, 0, 1.0 + static_cast<double>(rng.NextBounded(99)),
                      marker});
  }
  for (const Event& e : events) engine->Ingest(e);
  engine->AdvanceTo(ts + 10'000);

  ASSERT_FALSE(results.empty())
      << name << " " << q.window.ToString() << " " << ToString(fn);
  for (const auto& [window, value] : results) {
    const double want = Oracle(events, window.first, window.second, q.agg,
                               type == WindowType::kUserDefined);
    // Product can overflow double for long windows; compare with relative
    // tolerance.
    const double tol = std::max(1e-9, std::abs(want) * 1e-12);
    EXPECT_NEAR(value, want, tol)
        << name << " " << q.window.ToString() << " " << ToString(fn)
        << " window [" << window.first << "," << window.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineConformance,
    ::testing::Combine(
        ::testing::Values("Desis", "DeSW", "Scotty", "DeBucket", "CeBuffer"),
        ::testing::Values(WindowType::kTumbling, WindowType::kSliding,
                          WindowType::kSession, WindowType::kUserDefined),
        ::testing::Values(AggregationFunction::kSum,
                          AggregationFunction::kCount,
                          AggregationFunction::kAverage,
                          AggregationFunction::kGeometricMean,
                          AggregationFunction::kMin,
                          AggregationFunction::kMax,
                          AggregationFunction::kMedian,
                          AggregationFunction::kQuantile,
                          AggregationFunction::kVariance)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_" +
             ToString(std::get<1>(info.param)) + "_" +
             ToString(std::get<2>(info.param));
    });

}  // namespace
}  // namespace desis
