// Key-sharded engine: SPSC ring unit tests plus shard/single-thread
// equivalence — the ShardedEngine must produce the same window results as
// the seed DesisEngine for every shardable workload, and the cluster's
// engine_shards knob must not change what crosses the wire.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "core/spsc_ring.h"
#include "net/cluster.h"

namespace desis {
namespace {

// ------------------------------------------------------------ SPSC ring --

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> exact(16);
  EXPECT_EQ(exact.capacity(), 16u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));  // empty again
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRing, BatchPushPopArePartialOnBoundaries) {
  SpscRing<int> ring(8);
  int items[12];
  for (int i = 0; i < 12; ++i) items[i] = i;
  // Only 8 fit.
  EXPECT_EQ(ring.TryPushN(items, 12), 8u);
  int out[12] = {};
  // Pop fewer than available, then drain.
  EXPECT_EQ(ring.TryPopN(out, 3), 3u);
  EXPECT_EQ(ring.TryPopN(out + 3, 12), 5u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.TryPopN(out, 12), 0u);
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  SpscRing<uint64_t> ring(8);
  uint64_t next_push = 0, next_pop = 0;
  uint64_t buf[5];
  // Interleaved partial batches force head/tail to wrap many times.
  for (int round = 0; round < 1000; ++round) {
    uint64_t vals[5];
    for (int i = 0; i < 5; ++i) vals[i] = next_push + static_cast<uint64_t>(i);
    next_push += ring.TryPushN(vals, 5);
    const size_t got = ring.TryPopN(buf, (round % 4) + 1);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(buf[i], next_pop);
      ++next_pop;
    }
  }
  while (true) {
    const size_t got = ring.TryPopN(buf, 5);
    if (got == 0) break;
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(buf[i], next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
}

// The cross-thread handoff test the CI TSan job exists for: a producer
// pushing batched sequence numbers, a consumer asserting global order.
TEST(SpscRing, ThreadedProducerConsumerKeepsOrder) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kTotal = 200'000;
  std::thread producer([&] {
    uint64_t next = 0;
    uint64_t batch[17];
    while (next < kTotal) {
      size_t n = 0;
      while (n < 17 && next + n < kTotal) {
        batch[n] = next + n;
        ++n;
      }
      size_t pushed = 0;
      while (pushed < n) {
        pushed += ring.TryPushN(batch + pushed, n - pushed);
      }
      next += n;
    }
  });
  uint64_t expect = 0;
  uint64_t buf[32];
  while (expect < kTotal) {
    const size_t got = ring.TryPopN(buf, 32);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(buf[i], expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
}

// -------------------------------------------------- equivalence harness --

struct ResultRow {
  QueryId query_id;
  Timestamp start;
  Timestamp end;
  double value;
  uint64_t events;

  friend bool operator==(const ResultRow&, const ResultRow&) = default;
  friend bool operator<(const ResultRow& a, const ResultRow& b) {
    return std::tie(a.query_id, a.start, a.end, a.value, a.events) <
           std::tie(b.query_id, b.start, b.end, b.value, b.events);
  }
};

/// Drives `engine` with `events` in batches of `batch`, advancing the
/// watermark every `advance_every` batches, and returns the sorted results.
std::vector<ResultRow> RunEngine(StreamEngine* engine,
                                 const std::vector<Event>& events,
                                 size_t batch, int advance_every,
                                 Timestamp advance_slack) {
  std::vector<ResultRow> rows;
  engine->set_sink([&rows](const WindowResult& r) {
    rows.push_back(
        {r.query_id, r.window_start, r.window_end, r.value, r.event_count});
  });
  int batches = 0;
  for (size_t i = 0; i < events.size(); i += batch) {
    const size_t n = std::min(batch, events.size() - i);
    engine->IngestBatch(events.data() + i, n);
    if (advance_every > 0 && ++batches % advance_every == 0) {
      engine->AdvanceTo(events[i + n - 1].ts - advance_slack);
    }
  }
  if (!events.empty()) {
    engine->AdvanceTo(events.back().ts + 1'000'000);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Integer event values keep every sum/count/avg/min/max exactly
/// representable, so cross-shard re-association cannot perturb results and
/// the equivalence check can demand bit-identical values.
std::vector<Event> MakeWorkload(uint64_t seed, int count, int num_keys,
                                bool skewed, double marker_p = 0.0) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(count));
  Timestamp ts = 0;
  for (int i = 0; i < count; ++i) {
    ts += rng.NextBool(0.01) ? rng.NextInRange(200, 400)  // session gaps
                             : rng.NextInRange(0, 4);
    uint32_t key;
    if (skewed) {
      // 90% of the stream on one hot key, the rest uniform.
      key = rng.NextBool(0.9)
                ? 0u
                : static_cast<uint32_t>(1 + rng.NextBounded(
                      static_cast<uint64_t>(num_keys - 1)));
    } else {
      key = static_cast<uint32_t>(
          rng.NextBounded(static_cast<uint64_t>(num_keys)));
    }
    const uint32_t marker =
        marker_p > 0 && rng.NextBool(marker_p) ? kWindowEnd : kNoMarker;
    events.push_back(
        {ts, key, static_cast<double>(rng.NextBounded(1000)), marker});
  }
  return events;
}

std::vector<Query> MixedQueries() {
  std::vector<Query> queries;
  Query q;
  q.id = 1;
  q.window = WindowSpec::Tumbling(500);
  q.agg = {AggregationFunction::kSum, 0};
  queries.push_back(q);
  q.id = 2;
  q.window = WindowSpec::Sliding(900, 300);
  q.agg = {AggregationFunction::kAverage, 0};
  queries.push_back(q);
  q.id = 3;
  q.window = WindowSpec::Session(150);
  q.agg = {AggregationFunction::kMax, 0};
  queries.push_back(q);
  q.id = 4;
  q.window = WindowSpec::Tumbling(700);
  q.agg = {AggregationFunction::kCount, 0};
  q.predicate = Predicate::KeyEquals(3);
  queries.push_back(q);
  q.id = 5;
  q.window = WindowSpec::Sliding(1200, 400);
  q.agg = {AggregationFunction::kMin, 0};
  q.predicate = Predicate::ValueRange(100, 800);
  queries.push_back(q);
  return queries;
}

void ExpectSameResults(const std::vector<ResultRow>& seed,
                       const std::vector<ResultRow>& sharded,
                       const std::string& label) {
  ASSERT_FALSE(seed.empty()) << label;
  ASSERT_EQ(seed.size(), sharded.size()) << label;
  for (size_t i = 0; i < seed.size(); ++i) {
    EXPECT_EQ(seed[i], sharded[i])
        << label << " row " << i << ": want q" << seed[i].query_id << " ["
        << seed[i].start << "," << seed[i].end << ") = " << seed[i].value
        << " (" << seed[i].events << " events), got q"
        << sharded[i].query_id << " [" << sharded[i].start << ","
        << sharded[i].end << ") = " << sharded[i].value << " ("
        << sharded[i].events << " events)";
  }
}

class ShardedEngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ShardedEngineEquivalence, MatchesSeedEngineOnMixedWindows) {
  const int shards = GetParam();
  const auto queries = MixedQueries();
  const auto events = MakeWorkload(/*seed=*/7, /*count=*/20'000,
                                   /*num_keys=*/64, /*skewed=*/false);

  DesisEngine seed;
  ASSERT_TRUE(seed.Configure(queries).ok());
  const auto want = RunEngine(&seed, events, 256, 8, 2'000);
  seed.Finish();

  ShardedEngineOptions opts;
  opts.shards = shards;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.Configure(queries).ok());
  const auto got = RunEngine(&engine, events, 256, 8, 2'000);

  ExpectSameResults(want, got, "uniform/" + std::to_string(shards));
}

TEST_P(ShardedEngineEquivalence, MatchesSeedEngineOnSkewedKeys) {
  const int shards = GetParam();
  const auto queries = MixedQueries();
  const auto events = MakeWorkload(/*seed=*/11, /*count=*/20'000,
                                   /*num_keys=*/16, /*skewed=*/true);

  DesisEngine seed;
  ASSERT_TRUE(seed.Configure(queries).ok());
  const auto want = RunEngine(&seed, events, 256, 16, 1'000);

  ShardedEngineOptions opts;
  opts.shards = shards;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.Configure(queries).ok());
  const auto got = RunEngine(&engine, events, 256, 16, 1'000);

  ExpectSameResults(want, got, "skewed/" + std::to_string(shards));
}

TEST_P(ShardedEngineEquivalence, MatchesSeedEngineOnOutOfOrderInput) {
  const int shards = GetParam();
  const auto queries = MixedQueries();
  auto events = MakeWorkload(/*seed=*/13, /*count=*/20'000,
                             /*num_keys=*/32, /*skewed=*/false);
  // Perturb timestamps within a bounded window, then add a few events so
  // late they must be dropped by both engines.
  Rng rng(99);
  for (Event& e : events) {
    if (rng.NextBool(0.3)) e.ts += rng.NextInRange(-40, 40);
    if (e.ts < 0) e.ts = 0;
  }
  const Timestamp lateness = 60;

  DesisEngine seed;
  ASSERT_TRUE(seed.Configure(queries).ok());
  seed.EnableOutOfOrderIngest(lateness);
  const auto want = RunEngine(&seed, events, 256, 8, 2'000);

  ShardedEngineOptions opts;
  opts.shards = shards;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.Configure(queries).ok());
  engine.EnableOutOfOrderIngest(lateness);
  const auto got = RunEngine(&engine, events, 256, 8, 2'000);

  ExpectSameResults(want, got, "ooo/" + std::to_string(shards));
  // The partitioner's shadow reorder buffer must replicate the seed
  // engine's drop rule exactly.
  EXPECT_EQ(engine.dropped_events(), seed.dropped_events());
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedEngineEquivalence,
                         ::testing::Values(1, 2, 3, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// Unshardable queries (count measures, dedup, user-defined windows) must
// transparently fall back to the serial path — same results as the seed.
TEST(ShardedEngineSerialFallback, UnshardableQueriesMatchSeed) {
  std::vector<Query> queries;
  Query q;
  q.id = 1;
  q.window = WindowSpec::CountTumbling(100);
  q.agg = {AggregationFunction::kSum, 0};
  queries.push_back(q);
  q.id = 2;
  q.window = WindowSpec::UserDefined();
  q.agg = {AggregationFunction::kCount, 0};
  queries.push_back(q);
  q.id = 3;  // shardable, rides the shard pool next to the serial groups
  q.window = WindowSpec::Tumbling(500);
  q.agg = {AggregationFunction::kSum, 0};
  queries.push_back(q);
  q = Query{};
  q.id = 4;
  q.window = WindowSpec::Tumbling(500);
  q.agg = {AggregationFunction::kCount, 0};
  q.deduplicate = true;
  queries.push_back(q);

  const auto events = MakeWorkload(/*seed=*/21, /*count=*/10'000,
                                   /*num_keys=*/8, /*skewed=*/false,
                                   /*marker_p=*/0.01);

  DesisEngine seed;
  ASSERT_TRUE(seed.Configure(queries).ok());
  const auto want = RunEngine(&seed, events, 256, 8, 2'000);

  ShardedEngineOptions opts;
  opts.shards = 4;
  ShardedEngine engine(opts);
  ASSERT_TRUE(engine.Configure(queries).ok());
  const auto got = RunEngine(&engine, events, 256, 8, 2'000);

  ExpectSameResults(want, got, "serial-fallback");
}

TEST(ShardedEngineSerialFallback, GroupShardablePredicate) {
  Query count_measure;
  count_measure.window = WindowSpec::CountTumbling(10);
  count_measure.agg = {AggregationFunction::kSum, 0};
  QueryAnalyzer analyzer(DeploymentMode::kDecentralized,
                         SharingPolicy::kCrossFunction);
  auto groups = analyzer.Analyze({count_measure});
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups.value().size(), 1u);
  EXPECT_FALSE(GroupShardable(groups.value()[0]));  // root-only

  Query plain;
  plain.window = WindowSpec::Tumbling(100);
  plain.agg = {AggregationFunction::kSum, 0};
  groups = analyzer.Analyze({plain});
  ASSERT_TRUE(groups.ok());
  EXPECT_TRUE(GroupShardable(groups.value()[0]));

  Query dedup = plain;
  dedup.deduplicate = true;
  groups = analyzer.Analyze({dedup});
  ASSERT_TRUE(groups.ok());
  EXPECT_FALSE(GroupShardable(groups.value()[0]));
}

TEST(ShardedEngineObs, ExportsShardSeries) {
  obs::MetricsRegistry registry;
  ShardedEngineOptions opts;
  opts.shards = 2;
  ShardedEngine engine(opts);
  engine.set_metrics_registry(&registry);
  Query q;
  q.id = 1;
  q.window = WindowSpec::Tumbling(100);
  q.agg = {AggregationFunction::kSum, 0};
  ASSERT_TRUE(engine.Configure({q}).ok());

  const auto events = MakeWorkload(/*seed=*/5, /*count=*/5'000,
                                   /*num_keys=*/32, /*skewed=*/false);
  engine.IngestBatch(events.data(), events.size());
  engine.Finish();

#if DESIS_OBS_ENABLED
  uint64_t shard_events = 0;
  for (int s = 0; s < 2; ++s) {
    shard_events += registry
                        .GetCounter("engine.shard_events",
                                    {{"shard", std::to_string(s)}})
                        ->value();
  }
  EXPECT_EQ(shard_events, events.size());
  EXPECT_GT(registry.GetHistogram("engine.merge_ns")->count(), 0u);
#endif
}

// ------------------------------------------------------- cluster wiring --

std::vector<ResultRow> RunCluster(int engine_shards, uint64_t* results_seen) {
  ClusterTopology topo;
  topo.num_locals = 3;
  topo.num_intermediates = 1;
  ClusterOptions options;
  options.engine_shards = engine_shards;
  Cluster cluster(ClusterSystem::kDesis, topo, options);

  std::vector<ResultRow> rows;
  cluster.set_sink([&rows](const WindowResult& r) {
    rows.push_back(
        {r.query_id, r.window_start, r.window_end, r.value, r.event_count});
  });
  EXPECT_TRUE(cluster.Configure(MixedQueries()).ok());

  // Per-local substreams (each non-decreasing).
  std::vector<std::vector<Event>> streams;
  for (int l = 0; l < topo.num_locals; ++l) {
    streams.push_back(MakeWorkload(/*seed=*/100 + static_cast<uint64_t>(l),
                                   /*count=*/6'000, /*num_keys=*/32,
                                   /*skewed=*/l == 1));
  }
  size_t pos = 0;
  bool any = true;
  Timestamp max_ts = 0;
  std::vector<Timestamp> last_ts(static_cast<size_t>(topo.num_locals), 0);
  while (any) {
    any = false;
    for (int l = 0; l < topo.num_locals; ++l) {
      const auto& s = streams[static_cast<size_t>(l)];
      if (pos >= s.size()) continue;
      const size_t n = std::min<size_t>(256, s.size() - pos);
      cluster.IngestAt(l, s.data() + pos, n);
      last_ts[static_cast<size_t>(l)] = s[pos + n - 1].ts;
      max_ts = std::max(max_ts, s[pos + n - 1].ts);
      any = true;
    }
    pos += 256;
    // A local's ingest must stay non-decreasing relative to its own
    // watermark, so advance only to the slowest unfinished local's
    // position: every local's next event is at or past that point.
    Timestamp min_pending = kMaxTimestamp;
    for (int l = 0; l < topo.num_locals; ++l) {
      if (pos < streams[static_cast<size_t>(l)].size()) {
        min_pending = std::min(min_pending, last_ts[static_cast<size_t>(l)]);
      }
    }
    if (any && min_pending != kMaxTimestamp) {
      cluster.Advance(min_pending - 1'000);
    }
  }
  cluster.Advance(max_ts + 1'000'000);
  cluster.Drain();
  if (results_seen != nullptr) *results_seen = cluster.results();
  // The sharded path must be visible in the report; the seed path must
  // advertise 0.
  EXPECT_NE(cluster.StatsReport().find(
                "\"engine_shards\":" + std::to_string(engine_shards)),
            std::string::npos);
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ShardedCluster, EngineShardsKnobDoesNotChangeResults) {
  uint64_t seed_count = 0, sharded_count = 0;
  const auto want = RunCluster(/*engine_shards=*/0, &seed_count);
  const auto got = RunCluster(/*engine_shards=*/2, &sharded_count);
  ExpectSameResults(want, got, "cluster shards=2");
  EXPECT_EQ(seed_count, sharded_count);

  const auto got4 = RunCluster(/*engine_shards=*/4, nullptr);
  ExpectSameResults(want, got4, "cluster shards=4");
}

}  // namespace
}  // namespace desis
