#include "net/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"

namespace desis {
namespace {

Query MakeQuery(QueryId id, WindowSpec window, AggregationFunction fn,
                Predicate pred = Predicate::All(), double quantile = 0.5) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, quantile};
  q.predicate = pred;
  return q;
}

using ResultMap = std::map<QueryId, std::map<Timestamp, WindowResult>>;

// Feeds per-local streams through the cluster in lock-stepped time rounds
// of `step` µs, advancing watermarks after each round.
ResultMap RunCluster(Cluster& cluster,
                     const std::vector<std::vector<Event>>& per_local,
                     Timestamp step, Timestamp end_ts) {
  ResultMap results;
  cluster.set_sink([&](const WindowResult& r) {
    results[r.query_id][r.window_start] = r;
  });
  std::vector<size_t> cursor(per_local.size(), 0);
  for (Timestamp t = 0; t <= end_ts; t += step) {
    for (size_t i = 0; i < per_local.size(); ++i) {
      const size_t begin = cursor[i];
      while (cursor[i] < per_local[i].size() &&
             per_local[i][cursor[i]].ts < t + step) {
        ++cursor[i];
      }
      if (cursor[i] > begin) {
        cluster.IngestAt(static_cast<int>(i), per_local[i].data() + begin,
                         cursor[i] - begin);
      }
    }
    cluster.Advance(t + step);
  }
  cluster.Advance(end_ts + 10 * step);
  return results;
}

// Single-node reference: merge all streams in ts order through DesisEngine.
ResultMap RunReference(const std::vector<Query>& queries,
                       const std::vector<std::vector<Event>>& per_local,
                       Timestamp end_ts) {
  std::vector<Event> merged;
  for (const auto& stream : per_local) {
    merged.insert(merged.end(), stream.begin(), stream.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  DesisEngine engine;
  EXPECT_TRUE(engine.Configure(queries).ok());
  ResultMap results;
  engine.set_sink([&](const WindowResult& r) {
    results[r.query_id][r.window_start] = r;
  });
  for (const Event& e : merged) engine.Ingest(e);
  engine.AdvanceTo(end_ts * 20 + 1000);
  return results;
}

std::vector<std::vector<Event>> RandomStreams(int locals, int per_local,
                                              Timestamp max_ts, uint64_t seed,
                                              int keys = 1) {
  std::vector<std::vector<Event>> streams(static_cast<size_t>(locals));
  Rng rng(seed);
  for (auto& stream : streams) {
    Timestamp ts = 0;
    for (int i = 0; i < per_local; ++i) {
      ts += rng.NextInRange(1, std::max<int64_t>(1, max_ts / per_local));
      stream.push_back({ts, static_cast<uint32_t>(rng.NextBounded(keys)),
                        static_cast<double>(rng.NextBounded(1000)), kNoMarker});
    }
  }
  return streams;
}

void ExpectSameResults(const ResultMap& got, const ResultMap& want,
                       double tol = 1e-9) {
  for (const auto& [qid, windows] : want) {
    auto it = got.find(qid);
    ASSERT_NE(it, got.end()) << "no results for query " << qid;
    for (const auto& [ws, result] : windows) {
      auto wit = it->second.find(ws);
      ASSERT_NE(wit, it->second.end())
          << "query " << qid << " missing window @" << ws;
      EXPECT_NEAR(wit->second.value, result.value, tol)
          << "query " << qid << " window @" << ws;
      EXPECT_EQ(wit->second.event_count, result.event_count)
          << "query " << qid << " window @" << ws;
    }
  }
}

TEST(DesisCluster, TumblingSumMatchesSingleNode) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)};
  auto streams = RandomStreams(3, 200, 1000, 42);
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 50, 1200);
  auto want = RunReference(queries, streams, 1200);
  ASSERT_FALSE(want.empty());
  ExpectSameResults(got, want);
}

TEST(DesisCluster, MultiQueryCrossFunctionMatchesSingleNode) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage),
      MakeQuery(2, WindowSpec::Sliding(200, 50), AggregationFunction::kSum),
      MakeQuery(3, WindowSpec::Tumbling(100), AggregationFunction::kMax),
      MakeQuery(4, WindowSpec::Tumbling(250), AggregationFunction::kCount),
  };
  auto streams = RandomStreams(4, 300, 2000, 7);
  Cluster cluster(ClusterSystem::kDesis, {4, 2});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 50, 2500);
  auto want = RunReference(queries, streams, 2500);
  ExpectSameResults(got, want);
}

TEST(DesisCluster, NonDecomposableMedianMatchesSingleNode) {
  // Median partials travel as sorted slice batches; the root merges runs.
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kMedian),
      MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kQuantile,
                Predicate::All(), 0.9),
  };
  auto streams = RandomStreams(3, 200, 1000, 13);
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 50, 1200);
  auto want = RunReference(queries, streams, 1200);
  ExpectSameResults(got, want);
}

TEST(DesisCluster, SessionWindowsAcrossNodes) {
  // Sessions are global: node 0 active at [0..40], node 1 at [30..80]
  // with per-node gaps that a single node would close — the union stream
  // has one session [0, 80+gap).
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Session(25), AggregationFunction::kCount)};
  std::vector<std::vector<Event>> streams(2);
  for (Timestamp t = 0; t <= 40; t += 20) streams[0].push_back({t, 0, 1.0, 0});
  for (Timestamp t = 30; t <= 80; t += 20) streams[1].push_back({t, 0, 1.0, 0});
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 10, 300);
  ASSERT_TRUE(got.contains(1));
  ASSERT_EQ(got[1].size(), 1u);
  const WindowResult& r = got[1].begin()->second;
  EXPECT_EQ(r.window_start, 0);
  EXPECT_EQ(r.window_end, 95);  // last event 70 + gap 25
  EXPECT_DOUBLE_EQ(r.value, 6.0);
}

TEST(DesisCluster, TwoSessionsAcrossNodes) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Session(25), AggregationFunction::kSum)};
  std::vector<std::vector<Event>> streams(2);
  streams[0] = {{0, 0, 1.0, 0}, {10, 0, 2.0, 0}, {200, 0, 5.0, 0}};
  streams[1] = {{15, 0, 3.0, 0}, {210, 0, 7.0, 0}};
  Cluster cluster(ClusterSystem::kDesis, {2, 0});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 10, 400);
  ASSERT_EQ(got[1].size(), 2u);
  EXPECT_DOUBLE_EQ(got[1][0].value, 6.0);     // session [0, 40)
  EXPECT_DOUBLE_EQ(got[1][200].value, 12.0);  // session [200, 235)
}

TEST(DesisCluster, UserDefinedWindowsWithBroadcastMarkers) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::UserDefined(), AggregationFunction::kMax)};
  // Markers occur at the same ts on every stream (stream-global trips).
  std::vector<std::vector<Event>> streams(2);
  streams[0] = {{5, 0, 10.0, 0}, {20, 0, 50.0, kWindowEnd}, {30, 0, 7.0, 0},
                {45, 0, 9.0, kWindowEnd}};
  streams[1] = {{8, 0, 30.0, 0}, {20, 0, 40.0, kWindowEnd}, {35, 0, 80.0, 0},
                {45, 0, 6.0, kWindowEnd}};
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 5, 100);
  ASSERT_EQ(got[1].size(), 2u);
  EXPECT_DOUBLE_EQ(got[1][5].value, 50.0);   // trip 1: max(10,30,50,40)
  EXPECT_DOUBLE_EQ(got[1][30].value, 80.0);  // trip 2: max(7,80,9,6)
}

TEST(DesisCluster, CountWindowsEvaluateAtRoot) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::CountTumbling(10), AggregationFunction::kSum)};
  auto streams = RandomStreams(3, 100, 1000, 5);
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 50, 1200);
  auto want = RunReference(queries, streams, 1200);
  // Count windows depend on the global arrival order; ties across nodes at
  // equal ts make window boundaries ambiguous, so compare totals instead of
  // per-window values.
  ASSERT_TRUE(got.contains(1));
  EXPECT_EQ(got[1].size(), want[1].size());
  double got_sum = 0;
  double want_sum = 0;
  for (auto& [ws, r] : got[1]) got_sum += r.value;
  for (auto& [ws, r] : want[1]) want_sum += r.value;
  EXPECT_NEAR(got_sum, want_sum, 1e-6);
}

TEST(DesisCluster, SelectionLanesAcrossNodes) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum,
                Predicate::KeyEquals(0)),
      MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kSum,
                Predicate::KeyEquals(1)),
  };
  auto streams = RandomStreams(2, 200, 1000, 21, /*keys=*/3);
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 50, 1200);
  auto want = RunReference(queries, streams, 1200);
  ExpectSameResults(got, want);
}

TEST(DesisCluster, DeeperTopologyGivesSameResults) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage)};
  auto streams = RandomStreams(6, 150, 1000, 33);
  ResultMap per_topology[3];
  int idx = 0;
  for (int intermediates : {0, 1, 3}) {
    Cluster cluster(ClusterSystem::kDesis, {6, intermediates});
    ASSERT_TRUE(cluster.Configure(queries).ok());
    per_topology[idx++] = RunCluster(cluster, streams, 50, 1200);
  }
  ExpectSameResults(per_topology[1], per_topology[0]);
  ExpectSameResults(per_topology[2], per_topology[0]);
}

TEST(CentralizedCluster, ScottyMatchesReference) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage),
      MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kMedian),
  };
  auto streams = RandomStreams(3, 200, 1000, 9);
  Cluster cluster(ClusterSystem::kScotty, {3, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 50, 1200);
  auto want = RunReference(queries, streams, 1200);
  ExpectSameResults(got, want);
}

TEST(CentralizedCluster, CeBufferMatchesReference) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)};
  auto streams = RandomStreams(2, 150, 800, 17);
  Cluster cluster(ClusterSystem::kCeBuffer, {2, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 40, 1000);
  auto want = RunReference(queries, streams, 1000);
  ExpectSameResults(got, want);
}

TEST(DiscoCluster, TumblingAverageMatchesReference) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage)};
  auto streams = RandomStreams(3, 200, 1000, 23);
  Cluster cluster(ClusterSystem::kDisco, {3, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 50, 1200);
  auto want = RunReference(queries, streams, 1200);
  ExpectSameResults(got, want, 1e-6);  // text round-trip keeps 17 digits
}

TEST(DiscoCluster, MedianForwardsEventsAndMatches) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kMedian)};
  auto streams = RandomStreams(2, 150, 800, 29);
  Cluster cluster(ClusterSystem::kDisco, {2, 1});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  auto got = RunCluster(cluster, streams, 40, 1000);
  auto want = RunReference(queries, streams, 1000);
  ExpectSameResults(got, want, 1e-6);
}

TEST(NetworkOverhead, DesisSavesBytesForDecomposable) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage)};
  auto streams = RandomStreams(3, 2000, 5000, 3);
  Cluster desis(ClusterSystem::kDesis, {3, 1});
  Cluster scotty(ClusterSystem::kScotty, {3, 1});
  ASSERT_TRUE(desis.Configure(queries).ok());
  ASSERT_TRUE(scotty.Configure(queries).ok());
  RunCluster(desis, streams, 100, 6000);
  RunCluster(scotty, streams, 100, 6000);

  const uint64_t desis_bytes = desis.BytesSentByRole(NodeRole::kLocal) +
                               desis.BytesSentByRole(NodeRole::kIntermediate);
  const uint64_t scotty_bytes =
      scotty.BytesSentByRole(NodeRole::kLocal) +
      scotty.BytesSentByRole(NodeRole::kIntermediate);
  // Decomposable functions: partial results instead of raw events — the
  // paper reports ~99% savings (Fig 11a).
  EXPECT_LT(desis_bytes * 10, scotty_bytes);
}

TEST(NetworkOverhead, MedianForcesEventsToRootEverywhere) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kMedian)};
  auto streams = RandomStreams(3, 2000, 5000, 4);
  Cluster desis(ClusterSystem::kDesis, {3, 1});
  Cluster scotty(ClusterSystem::kScotty, {3, 1});
  ASSERT_TRUE(desis.Configure(queries).ok());
  ASSERT_TRUE(scotty.Configure(queries).ok());
  RunCluster(desis, streams, 100, 6000);
  RunCluster(scotty, streams, 100, 6000);

  const uint64_t desis_bytes = desis.BytesSentByRole(NodeRole::kLocal);
  const uint64_t scotty_bytes = scotty.BytesSentByRole(NodeRole::kLocal);
  // All event values cross the wire either way (Fig 11b): same magnitude.
  EXPECT_LT(desis_bytes, scotty_bytes * 3);
  EXPECT_GT(desis_bytes * 3, scotty_bytes);
}

TEST(NetworkOverhead, DiscoStringsCostMoreThanDesisBinary) {
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kMedian)};
  auto streams = RandomStreams(2, 1000, 3000, 6);
  Cluster desis(ClusterSystem::kDesis, {2, 1});
  Cluster disco(ClusterSystem::kDisco, {2, 1});
  ASSERT_TRUE(desis.Configure(queries).ok());
  ASSERT_TRUE(disco.Configure(queries).ok());
  RunCluster(desis, streams, 100, 4000);
  RunCluster(disco, streams, 100, 4000);
  EXPECT_GT(disco.BytesSentByRole(NodeRole::kLocal),
            desis.BytesSentByRole(NodeRole::kLocal));
}

}  // namespace
}  // namespace desis
