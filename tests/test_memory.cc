// Bounded-memory engine: governor accounting, spill-file integrity, the
// t-digest sketch lane, and the core acceptance property — a governed
// median/quantile workload at >= 100k keys completes byte-identical to the
// ungoverned run while peak resident bytes stay at or under the budget.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "mem/memory_governor.h"
#include "mem/spill_file.h"
#include "mem/tdigest.h"
#include "net/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace desis {
namespace {

namespace fs = std::filesystem;

// Per-test scratch spill directory under the test working directory;
// removed (with any stray run files) when the guard leaves scope.
struct ScratchDir {
  explicit ScratchDir(const char* name)
      : path(std::string("mem_test_") + name) {}
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

size_t CountSpillFiles(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return 0;
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".spill") ++n;
  }
  return n;
}

// ------------------------------------------------------------ SpillFile --

std::vector<double> SortedValues(Rng& rng, size_t n) {
  std::vector<double> v;
  v.reserve(n);
  // Coarse quantization produces plenty of duplicates, exercising the
  // merge's deterministic tie-break.
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<double>(rng.NextBounded(1000)) / 8.0);
  }
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SpillFile, RunRoundTripIsExact) {
  ScratchDir dir("roundtrip");
  auto file_or = mem::SpillFile::Create(dir.path);
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();

  Rng rng(7);
  std::vector<std::vector<double>> runs;
  for (size_t n : {size_t{1}, size_t{100}, size_t{10000}}) {
    runs.push_back(SortedValues(rng, n));
    auto run_or = file->AppendRun(runs.back().data(), runs.back().size());
    ASSERT_TRUE(run_or.ok());
    EXPECT_EQ(run_or.value(), runs.size() - 1);
  }
  EXPECT_EQ(file->num_runs(), 3u);

  for (uint32_t r = 0; r < runs.size(); ++r) {
    std::vector<double> back;
    ASSERT_TRUE(file->ReadRun(r, &back).ok());
    EXPECT_EQ(back, runs[r]);  // element-wise; doubles round-trip exactly
  }
}

TEST(SpillFile, MergeRunsMatchesInMemorySortGolden) {
  ScratchDir dir("merge");
  auto file = std::move(mem::SpillFile::Create(dir.path)).value();

  Rng rng(11);
  std::vector<double> golden;
  std::vector<uint32_t> run_ids;
  for (size_t n : {size_t{5000}, size_t{1}, size_t{9000}, size_t{4096}}) {
    const std::vector<double> run = SortedValues(rng, n);
    golden.insert(golden.end(), run.begin(), run.end());
    run_ids.push_back(file->AppendRun(run.data(), run.size()).value());
  }
  std::vector<double> resident = SortedValues(rng, 777);
  golden.insert(golden.end(), resident.begin(), resident.end());
  std::sort(golden.begin(), golden.end());

  std::vector<double> merged;
  ASSERT_TRUE(file->MergeRuns(run_ids, resident, &merged).ok());
  EXPECT_EQ(merged, golden);

  // Empty-resident merge of a single run degenerates to a read.
  std::vector<double> single;
  ASSERT_TRUE(file->MergeRuns({run_ids[1]}, {}, &single).ok());
  EXPECT_EQ(single.size(), 1u);
}

TEST(SpillFile, TruncatedRunFileReturnsStatusError) {
  ScratchDir dir("truncate");
  auto file = std::move(mem::SpillFile::Create(dir.path)).value();

  Rng rng(3);
  const std::vector<double> run = SortedValues(rng, 256);
  const uint32_t id = file->AppendRun(run.data(), run.size()).value();

  // Chop the file behind the writer's back; reads must surface a Status
  // error (never UB, never a short silent result).
  std::error_code ec;
  fs::resize_file(file->path(), 64, ec);
  ASSERT_FALSE(ec);

  std::vector<double> back;
  const Status read = file->ReadRun(id, &back);
  EXPECT_FALSE(read.ok());
  EXPECT_NE(read.message().find("truncated"), std::string::npos)
      << read.message();
  std::vector<double> merged;
  EXPECT_FALSE(file->MergeRuns({id}, {}, &merged).ok());
}

TEST(SpillFile, CorruptedRunFileFailsChecksum) {
  ScratchDir dir("corrupt");
  auto file = std::move(mem::SpillFile::Create(dir.path)).value();

  Rng rng(5);
  const std::vector<double> run = SortedValues(rng, 512);
  const uint32_t id = file->AppendRun(run.data(), run.size()).value();

  // Flip one byte in the middle of the run.
  {
    std::fstream f(file->path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(1024);
    char c = 0;
    f.read(&c, 1);
    f.seekp(1024);
    c = static_cast<char>(~c);
    f.write(&c, 1);
  }

  std::vector<double> back;
  const Status read = file->ReadRun(id, &back);
  EXPECT_FALSE(read.ok());
  EXPECT_NE(read.message().find("checksum"), std::string::npos)
      << read.message();
}

TEST(SpillFile, ResetRecyclesSpaceAndKeepsFileUsable) {
  ScratchDir dir("reset");
  auto file = std::move(mem::SpillFile::Create(dir.path)).value();

  Rng rng(9);
  const std::vector<double> run = SortedValues(rng, 4096);
  ASSERT_TRUE(file->AppendRun(run.data(), run.size()).ok());
  ASSERT_TRUE(file->Reset().ok());
  EXPECT_EQ(file->num_runs(), 0u);
  EXPECT_EQ(file->bytes_written(), 0u);
  EXPECT_EQ(fs::file_size(file->path()), 0u);

  const std::vector<double> again = SortedValues(rng, 128);
  const uint32_t id = file->AppendRun(again.data(), again.size()).value();
  std::vector<double> back;
  ASSERT_TRUE(file->ReadRun(id, &back).ok());
  EXPECT_EQ(back, again);
}

TEST(SpillFile, UnlinkedOnDestruction) {
  ScratchDir dir("hygiene");
  std::string path;
  {
    auto file = std::move(mem::SpillFile::Create(dir.path)).value();
    path = file->path();
    const std::vector<double> run = {1.0, 2.0, 3.0};
    ASSERT_TRUE(file->AppendRun(run.data(), run.size()).ok());
    EXPECT_TRUE(fs::exists(path));
  }
  EXPECT_FALSE(fs::exists(path));
}

// -------------------------------------------------------------- TDigest --

TEST(TDigest, QuantileRankErrorBoundedAndExtremaExact) {
  mem::TDigest digest;
  Rng rng(17);
  double lo = 2.0, hi = -1.0;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.NextDouble();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    digest.Add(v);
  }
  digest.Compress();
  ASSERT_TRUE(digest.compressed());
  EXPECT_EQ(digest.count(), 200000u);
  EXPECT_EQ(digest.min(), lo);
  EXPECT_EQ(digest.max(), hi);

  // Uniform [0,1): value == rank, so the documented rank-error bound
  // (~1.6% at the median for compression 200, tighter at the tails)
  // translates directly to value error.
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(digest.Quantile(q), q, 0.02) << "q=" << q;
  }
  // O(compression) state regardless of the 200k values folded.
  EXPECT_LT(digest.bytes(), size_t{32} * 1024);
}

TEST(TDigest, MergeAndSerializeRoundTrip) {
  mem::TDigest a, b;
  Rng rng(23);
  for (int i = 0; i < 50000; ++i) a.Add(rng.NextDouble() * 0.5);
  for (int i = 0; i < 50000; ++i) b.Add(0.5 + rng.NextDouble() * 0.5);
  a.Merge(b);
  a.Compress();
  EXPECT_EQ(a.count(), 100000u);
  EXPECT_NEAR(a.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(a.Quantile(0.25), 0.25, 0.02);

  ByteWriter out;
  a.SerializeTo(out);
  ByteReader in(out.bytes());
  const mem::TDigest restored = mem::TDigest::DeserializeFrom(in);
  EXPECT_EQ(restored.count(), a.count());
  EXPECT_EQ(restored.min(), a.min());
  EXPECT_EQ(restored.max(), a.max());
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(restored.Quantile(q), a.Quantile(q));
  }
}

// ------------------------------------------------------ MemoryGovernor --

struct FakeSpillClient : mem::SpillClient {
  mem::MemoryGovernor* gov = nullptr;
  uint64_t shed_per_call = 0;
  int calls = 0;
  uint64_t ShedBytes(uint64_t /*target*/) override {
    ++calls;
    if (shed_per_call == 0) return 0;
    gov->Discharge(shed_per_call);  // sheds re-enter the governor
    return shed_per_call;
  }
};

mem::MemoryOptions SmallBudget(uint64_t budget) {
  mem::MemoryOptions options;
  options.budget_bytes = budget;
  return options;
}

TEST(MemoryGovernor, AccountingTracksResidentAndPeak) {
  mem::MemoryGovernor gov(SmallBudget(1000));
  EXPECT_EQ(gov.soft_limit(), 750u);
  EXPECT_FALSE(gov.OverBudget());
  gov.Charge(600);
  gov.Charge(600);
  EXPECT_EQ(gov.resident(), 1200u);
  EXPECT_TRUE(gov.OverBudget());
  gov.Discharge(700);
  EXPECT_EQ(gov.resident(), 500u);
  EXPECT_EQ(gov.peak_resident(), 1200u);
  EXPECT_FALSE(gov.OverBudget());
  gov.Discharge(9999);  // clamps at zero
  EXPECT_EQ(gov.resident(), 0u);

  gov.NoteSpill(100);
  gov.NoteSpill(50);
  gov.NoteRestore(100);
  EXPECT_EQ(gov.spills(), 2u);
  EXPECT_EQ(gov.spill_bytes(), 150u);
  EXPECT_EQ(gov.restores(), 1u);
}

TEST(MemoryGovernor, RelieveShedsRoundRobinDownToSoftLimit) {
  mem::MemoryGovernor gov(SmallBudget(1000));
  FakeSpillClient c1, c2;
  c1.gov = c2.gov = &gov;
  c1.shed_per_call = c2.shed_per_call = 100;
  gov.Register(&c1);
  gov.Register(&c2);

  gov.Charge(1000);
  gov.Relieve();
  // 1000 -> 900 -> 800 -> 700: three sheds, alternating clients.
  EXPECT_EQ(gov.resident(), 700u);
  EXPECT_EQ(c1.calls + c2.calls, 3);
  EXPECT_EQ(gov.peak_resident(), 1000u);

  // Dry clients: one full pass, then stop rather than spin.
  c1.shed_per_call = c2.shed_per_call = 0;
  const int before = c1.calls + c2.calls;
  gov.Charge(300);
  gov.Relieve();
  EXPECT_EQ(gov.resident(), 1000u);
  EXPECT_EQ(c1.calls + c2.calls, before + 2);

  // Below the mark: no client is bothered.
  gov.Discharge(400);
  const int at_mark = c1.calls + c2.calls;
  gov.Relieve();
  EXPECT_EQ(c1.calls + c2.calls, at_mark);

  gov.Unregister(&c1);
  gov.Unregister(&c2);
}

TEST(MemoryGovernor, ZeroBudgetNeverRelieves) {
  mem::MemoryGovernor gov(mem::MemoryOptions{});
  FakeSpillClient c;
  c.gov = &gov;
  c.shed_per_call = 1;
  gov.Register(&c);
  gov.Charge(1 << 30);
  gov.Relieve();
  EXPECT_EQ(c.calls, 0);
  EXPECT_FALSE(gov.OverBudget());
  gov.Unregister(&c);
}

// --------------------------------------------- governed engine workload --

// Median/quantile workload over two disjoint value lanes; 120k distinct
// keys (the acceptance floor is 100k). ts advances one tick per 4 events,
// so slices cut every 2000 ticks hold ~8k buffered values across lanes.
constexpr size_t kEvents = 256 * 1024;
constexpr uint32_t kKeys = 120000;

Event MakeWorkloadEvent(size_t i) {
  Event e;
  e.ts = static_cast<Timestamp>(i / 4);
  e.key = static_cast<uint32_t>(i % kKeys);
  e.value = static_cast<double>((i * 7919) % 10000) / 100.0;  // [0, 100)
  return e;
}

std::vector<Query> HolisticQueries() {
  std::vector<Query> queries(4);
  queries[0].id = 1;
  queries[0].window = WindowSpec::Tumbling(2000);
  queries[0].agg = {AggregationFunction::kQuantile, 0.9};
  queries[0].predicate = Predicate::ValueRange(0.0, 50.0);
  queries[1].id = 2;
  queries[1].window = WindowSpec::Tumbling(32000);
  queries[1].agg = {AggregationFunction::kMedian, 0.5};
  queries[1].predicate = Predicate::ValueRange(0.0, 50.0);
  queries[2].id = 3;
  queries[2].window = WindowSpec::Tumbling(2000);
  queries[2].agg = {AggregationFunction::kQuantile, 0.25};
  queries[2].predicate = Predicate::ValueRange(50.0, 100.0);
  queries[3].id = 4;
  queries[3].window = WindowSpec::Tumbling(32000);
  queries[3].agg = {AggregationFunction::kMedian, 0.5};
  queries[3].predicate = Predicate::ValueRange(50.0, 100.0);
  return queries;
}

template <typename Engine>
std::vector<WindowResult> RunWorkload(Engine& engine,
                                      size_t num_events = kEvents) {
  std::vector<WindowResult> results;
  engine.set_sink([&](const WindowResult& r) { results.push_back(r); });
  std::vector<Event> batch;
  batch.reserve(1024);
  for (size_t i = 0; i < num_events; ++i) {
    batch.push_back(MakeWorkloadEvent(i));
    if (batch.size() == 1024) {
      engine.IngestBatch(batch.data(), batch.size());
      if ((i + 1) % (32 * 1024) == 0) engine.AdvanceTo(batch.back().ts);
      batch.clear();
    }
  }
  if (!batch.empty()) engine.IngestBatch(batch.data(), batch.size());
  engine.Finish();
  return results;
}

void ExpectIdenticalResults(const std::vector<WindowResult>& golden,
                            const std::vector<WindowResult>& governed) {
  ASSERT_EQ(golden.size(), governed.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(golden[i].query_id, governed[i].query_id) << "result " << i;
    EXPECT_EQ(golden[i].window_start, governed[i].window_start) << i;
    EXPECT_EQ(golden[i].window_end, governed[i].window_end) << i;
    EXPECT_EQ(golden[i].event_count, governed[i].event_count) << i;
    // Byte-identical, not merely approximately equal: spilled runs
    // round-trip raw doubles and the k-way merge is deterministic.
    EXPECT_EQ(std::memcmp(&golden[i].value, &governed[i].value,
                          sizeof(double)),
              0)
        << "result " << i << ": " << golden[i].value << " vs "
        << governed[i].value;
  }
}

TEST(MemoryEngine, CappedRunIsByteIdenticalWithPeakUnderBudget) {
  ScratchDir dir("equiv");
  const std::vector<Query> queries = HolisticQueries();

  DesisEngine uncapped;
  ASSERT_TRUE(uncapped.Configure(queries).ok());
  EXPECT_EQ(uncapped.memory_governor(), nullptr);  // seed default: off
  const std::vector<WindowResult> golden = RunWorkload(uncapped);
  ASSERT_FALSE(golden.empty());

  mem::MemoryOptions options;
  options.budget_bytes = 512 * 1024;
  options.min_spill_bytes = 4096;
  options.spill_dir = dir.path;
  DesisEngine capped;
  capped.EnableMemoryBudget(options);
  ASSERT_TRUE(capped.Configure(queries).ok());
  const std::vector<WindowResult> governed = RunWorkload(capped);

  ExpectIdenticalResults(golden, governed);

  const mem::MemoryGovernor* gov = capped.memory_governor();
  ASSERT_NE(gov, nullptr);
  EXPECT_GT(gov->spills(), 0u) << "workload never exceeded the budget";
  EXPECT_GT(gov->restores(), 0u) << "no window assembled from cold runs";
  EXPECT_LE(gov->peak_resident(), options.budget_bytes);
}

TEST(MemoryEngine, SpillFilesRemovedOnEngineDestruction) {
  ScratchDir dir("engine_hygiene");
  mem::MemoryOptions options;
  options.budget_bytes = 256 * 1024;
  options.min_spill_bytes = 4096;
  options.spill_dir = dir.path;
  {
    DesisEngine capped;
    capped.EnableMemoryBudget(options);
    ASSERT_TRUE(capped.Configure(HolisticQueries()).ok());
    RunWorkload(capped, 128 * 1024);
    ASSERT_GT(capped.memory_governor()->spills(), 0u);
    EXPECT_GT(CountSpillFiles(dir.path), 0u);
  }
  EXPECT_EQ(CountSpillFiles(dir.path), 0u);
}

TEST(MemoryEngine, SketchLaneApproximatesQuantilesWithTinyState) {
  ScratchDir dir("sketch");
  std::vector<Query> exact(1);
  exact[0].id = 1;
  exact[0].window = WindowSpec::Tumbling(4000);
  exact[0].agg = {AggregationFunction::kMedian, 0.5};
  exact[0].predicate = Predicate::All();
  std::vector<Query> approx = exact;
  approx[0].agg.approx_quantile = true;

  DesisEngine exact_engine;
  ASSERT_TRUE(exact_engine.Configure(exact).ok());
  const std::vector<WindowResult> truth =
      RunWorkload(exact_engine, 128 * 1024);
  ASSERT_FALSE(truth.empty());

  // The sketch lane needs no spilling under a budget the exact sort
  // buffers (16k values per slice) would blow through.
  mem::MemoryOptions options;
  options.budget_bytes = 128 * 1024;
  options.min_spill_bytes = 4096;
  options.spill_dir = dir.path;
  DesisEngine sketch_engine;
  sketch_engine.EnableMemoryBudget(options);
  ASSERT_TRUE(sketch_engine.Configure(approx).ok());
  const std::vector<WindowResult> sketched =
      RunWorkload(sketch_engine, 128 * 1024);

  ASSERT_EQ(truth.size(), sketched.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(truth[i].window_start, sketched[i].window_start);
    EXPECT_EQ(truth[i].window_end, sketched[i].window_end);
    EXPECT_EQ(truth[i].event_count, sketched[i].event_count);
    // Values are near-uniform on [0,100): the documented <1.6% rank error
    // at the median maps to <~1.6 in value; 3.0 leaves slack for the
    // sliced merge of several digests.
    EXPECT_NEAR(truth[i].value, sketched[i].value, 3.0) << "window " << i;
  }
  const mem::MemoryGovernor* gov = sketch_engine.memory_governor();
  ASSERT_NE(gov, nullptr);
  EXPECT_EQ(gov->spills(), 0u) << "sketch lanes should never need to spill";
  EXPECT_LE(gov->peak_resident(), options.budget_bytes);
}

#if DESIS_OBS_ENABLED
TEST(MemoryEngine, GovernedRunExportsMetricsAndSpans) {
  ScratchDir dir("obs");
  mem::MemoryOptions options;
  options.budget_bytes = 256 * 1024;
  options.min_spill_bytes = 4096;
  options.spill_dir = dir.path;

  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(1 << 16);
  DesisEngine capped;
  capped.EnableMemoryBudget(options);
  ASSERT_TRUE(capped.Configure(HolisticQueries()).ok());
  capped.set_metrics_registry(&registry);
  capped.set_tracer(&tracer);
  RunWorkload(capped, 128 * 1024);
  ASSERT_GT(capped.memory_governor()->spills(), 0u);

  const std::string json = registry.ToJson();
  for (const char* series :
       {"engine.bytes_resident", "engine.spills", "engine.spill_bytes",
        "engine.spill_restores"}) {
    EXPECT_NE(json.find(series), std::string::npos) << series;
  }

  bool saw_spill = false, saw_restore = false;
  for (const obs::SliceSpan& span : tracer.Snapshot()) {
    saw_spill = saw_spill || span.phase == obs::SlicePhase::kSpill;
    saw_restore = saw_restore || span.phase == obs::SlicePhase::kRestore;
  }
  EXPECT_TRUE(saw_spill);
  EXPECT_TRUE(saw_restore);
}
#endif  // DESIS_OBS_ENABLED

// ------------------------------------------------------ sharded engine --

TEST(MemorySharded, BudgetSplitsAcrossShardsAndResultsMatchUngoverned) {
  ScratchDir dir("sharded");
  const std::vector<Query> queries = HolisticQueries();
  ShardedEngineOptions shard_options;
  shard_options.shards = 2;

  ShardedEngine uncapped(shard_options);
  ASSERT_TRUE(uncapped.Configure(queries).ok());
  EXPECT_EQ(uncapped.shard_governor(0), nullptr);
  const std::vector<WindowResult> golden = RunWorkload(uncapped, 128 * 1024);
  ASSERT_FALSE(golden.empty());

  // Shard slicers ship sealed slices to the caller immediately, so the
  // governed state is the open-slice buffers — a small budget forces
  // open-lane spills that the seal-time k-way merge must fold back in.
  mem::MemoryOptions options;
  options.budget_bytes = 64 * 1024;
  options.min_spill_bytes = 4096;
  options.spill_dir = dir.path;
  ShardedEngine capped(shard_options);
  capped.EnableMemoryBudget(options);
  ASSERT_TRUE(capped.Configure(queries).ok());
  ASSERT_EQ(capped.num_shards(), 2);
  for (size_t s = 0; s < 2; ++s) {
    ASSERT_NE(capped.shard_governor(s), nullptr);
    EXPECT_EQ(capped.shard_governor(s)->budget(), options.budget_bytes / 2);
  }
  EXPECT_EQ(capped.serial_governor(), nullptr);  // all groups shardable

  const std::vector<WindowResult> governed = RunWorkload(capped, 128 * 1024);
  ExpectIdenticalResults(golden, governed);

  uint64_t spills = 0;
  for (size_t s = 0; s < 2; ++s) spills += capped.shard_governor(s)->spills();
  EXPECT_GT(spills, 0u);
}

// -------------------------------------------------------------- cluster --

std::vector<WindowResult> RunCluster(Cluster& cluster, size_t num_events) {
  std::vector<WindowResult> results;
  cluster.set_sink([&](const WindowResult& r) { results.push_back(r); });
  std::vector<Event> batch;
  for (size_t i = 0; i < num_events; ++i) {
    batch.push_back(MakeWorkloadEvent(i));
    if (batch.size() == 512) {
      cluster.IngestAt(static_cast<int>(i / 512) % 2, batch.data(),
                       batch.size());
      cluster.Advance(batch.back().ts);
      batch.clear();
    }
  }
  if (!batch.empty()) cluster.IngestAt(0, batch.data(), batch.size());
  cluster.Advance(MakeWorkloadEvent(num_events - 1).ts + 64000);
  cluster.Drain();
  return results;
}

TEST(MemoryCluster, BaselinesRejectMemoryBudget) {
  ClusterOptions options;
  options.memory.budget_bytes = 1 << 20;
  for (const ClusterSystem system :
       {ClusterSystem::kScotty, ClusterSystem::kCeBuffer,
        ClusterSystem::kDisco}) {
    Cluster cluster(system, {2, 1}, options);
    const Status status = cluster.Configure(HolisticQueries());
    EXPECT_FALSE(status.ok()) << ToString(system);
  }
}

TEST(MemoryCluster, GovernedDesisClusterMatchesUngoverned) {
  ScratchDir dir("cluster");
  const std::vector<Query> queries = HolisticQueries();
  constexpr size_t kClusterEvents = 64 * 1024;

  Cluster plain(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(plain.Configure(queries).ok());
  const std::vector<WindowResult> golden = RunCluster(plain, kClusterEvents);
  ASSERT_FALSE(golden.empty());

  ClusterOptions options;
  options.memory.budget_bytes = 48 * 1024;  // per local node
  options.memory.min_spill_bytes = 4096;
  options.memory.spill_dir = dir.path;
  Cluster governed(ClusterSystem::kDesis, {2, 1}, options);
#if DESIS_OBS_ENABLED
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(1 << 16);
  governed.AttachObs(&registry, &tracer);
#endif
  ASSERT_TRUE(governed.Configure(queries).ok());
  const std::vector<WindowResult> results =
      RunCluster(governed, kClusterEvents);
  ExpectIdenticalResults(golden, results);
#if DESIS_OBS_ENABLED
  EXPECT_NE(registry.ToJson().find("engine.bytes_resident"),
            std::string::npos);
#endif
}

}  // namespace
}  // namespace desis
