#include "core/window.h"

#include <gtest/gtest.h>

#include "core/query.h"

namespace desis {
namespace {

TEST(WindowSpec, FactoriesProduceValidSpecs) {
  EXPECT_TRUE(WindowSpec::Tumbling(kSecond).Validate().ok());
  EXPECT_TRUE(WindowSpec::Sliding(10 * kSecond, kSecond).Validate().ok());
  EXPECT_TRUE(WindowSpec::Session(500 * kMillisecond).Validate().ok());
  EXPECT_TRUE(WindowSpec::UserDefined().Validate().ok());
  EXPECT_TRUE(WindowSpec::CountTumbling(1000).Validate().ok());
  EXPECT_TRUE(WindowSpec::CountSliding(1000, 100).Validate().ok());
}

TEST(WindowSpec, InvalidSpecsRejected) {
  EXPECT_FALSE(WindowSpec::Tumbling(0).Validate().ok());
  EXPECT_FALSE(WindowSpec::Tumbling(-5).Validate().ok());
  EXPECT_FALSE(WindowSpec::Sliding(10, 0).Validate().ok());
  // slide > length leaves gaps in coverage.
  EXPECT_FALSE(WindowSpec::Sliding(10, 20).Validate().ok());
  EXPECT_FALSE(WindowSpec::Session(0).Validate().ok());
  EXPECT_FALSE(WindowSpec::CountTumbling(0).Validate().ok());

  WindowSpec weird = WindowSpec::Tumbling(10);
  weird.slide = 5;  // tumbling windows must have slide == length
  EXPECT_FALSE(weird.Validate().ok());

  WindowSpec count_session = WindowSpec::Session(10);
  count_session.measure = WindowMeasure::kCount;
  EXPECT_FALSE(count_session.Validate().ok());
}

TEST(WindowSpec, FixedSizePredicate) {
  EXPECT_TRUE(WindowSpec::Tumbling(10).IsFixedSize());
  EXPECT_TRUE(WindowSpec::Sliding(10, 5).IsFixedSize());
  EXPECT_FALSE(WindowSpec::Session(10).IsFixedSize());
  EXPECT_FALSE(WindowSpec::UserDefined().IsFixedSize());
}

TEST(WindowSpec, ToStringIsInformative) {
  EXPECT_EQ(WindowSpec::Tumbling(10).ToString(), "tumbling(time, length=10)");
  EXPECT_EQ(WindowSpec::Sliding(10, 5).ToString(),
            "sliding(time, length=10, slide=5)");
  EXPECT_EQ(WindowSpec::Session(7).ToString(), "session(time, gap=7)");
  EXPECT_EQ(WindowSpec::UserDefined().ToString(), "user_defined(time)");
  EXPECT_EQ(WindowSpec::CountTumbling(3).ToString(),
            "tumbling(count, length=3)");
}

TEST(Predicate, RelationMatrix) {
  const Predicate all = Predicate::All();
  const Predicate k1 = Predicate::KeyEquals(1);
  const Predicate k2 = Predicate::KeyEquals(2);
  const Predicate lo = Predicate::ValueRange(0, 10);
  const Predicate hi = Predicate::ValueRange(10, 20);
  const Predicate mid = Predicate::ValueRange(5, 15);
  const Predicate k1lo = Predicate::KeyAndRange(1, 0, 10);
  const Predicate k2lo = Predicate::KeyAndRange(2, 0, 10);

  EXPECT_EQ(all.RelationTo(all), PredicateRelation::kIdentical);
  EXPECT_EQ(k1.RelationTo(k1), PredicateRelation::kIdentical);
  EXPECT_EQ(k1.RelationTo(k2), PredicateRelation::kDisjoint);
  EXPECT_EQ(lo.RelationTo(hi), PredicateRelation::kDisjoint);
  EXPECT_EQ(hi.RelationTo(lo), PredicateRelation::kDisjoint);
  EXPECT_EQ(lo.RelationTo(mid), PredicateRelation::kOverlapping);
  EXPECT_EQ(all.RelationTo(k1), PredicateRelation::kOverlapping);
  EXPECT_EQ(k1lo.RelationTo(k2lo), PredicateRelation::kDisjoint);
  EXPECT_EQ(k1lo.RelationTo(k1), PredicateRelation::kOverlapping);
  // Same key, disjoint ranges -> disjoint.
  EXPECT_EQ(Predicate::KeyAndRange(1, 0, 10).RelationTo(
                Predicate::KeyAndRange(1, 10, 20)),
            PredicateRelation::kDisjoint);
}

TEST(Predicate, MatchSemantics) {
  const Predicate p = Predicate::KeyAndRange(2, 10, 20);
  EXPECT_TRUE(p.Matches({0, 2, 10.0, 0}));   // lo inclusive
  EXPECT_FALSE(p.Matches({0, 2, 20.0, 0}));  // hi exclusive
  EXPECT_FALSE(p.Matches({0, 3, 15.0, 0}));  // wrong key
}

TEST(Query, ValidationCatchesBadQuantiles) {
  Query q;
  q.id = 1;
  q.window = WindowSpec::Tumbling(10);
  q.agg = {AggregationFunction::kQuantile, 1.5};
  EXPECT_FALSE(q.Validate().ok());
  q.agg.quantile = 0.99;
  EXPECT_TRUE(q.Validate().ok());
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  const Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");

  Result<int> r = 42;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  Result<int> bad = Status::NotFound("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace desis
