// Cost attribution and cluster health: the per-query-group series
// (group.events_in / group.operator_evals) must encode the paper's sharing
// win — every event pays each *distinct* operator once, not once per query
// — and the per-node health gauges (watermark lag, backlog) must be
// published for every role. Also pins the cross-node trace correlation:
// one slice's spans line up across local -> intermediate -> root with a
// consistent (node, slice) identity under both the inline and the threaded
// transport, and retransmits under the lossy link keep that identity.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "net/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transport/sim_link_transport.h"
#include "transport/threaded_transport.h"

namespace desis {
namespace {

Query MakeQuery(QueryId id, WindowSpec window, AggregationFunction fn) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, 0.5};
  return q;
}

std::vector<Event> OrderedEvents(size_t n, Timestamp step = 1) {
  std::vector<Event> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    events.push_back({static_cast<Timestamp>(i + 1) * step,
                      static_cast<uint32_t>(i % 4), 1.0, kNoMarker});
  }
  return events;
}

#if DESIS_OBS_ENABLED

uint64_t CounterValue(obs::MetricsRegistry& registry, const std::string& name,
                      obs::Labels labels, const std::string& unit) {
  obs::Counter* c = registry.GetCounter(name, std::move(labels), unit);
  return c != nullptr ? c->value() : 0;
}

// ------------------------------------------------------- cost attribution --

TEST(ClusterCostAttribution, SharedSumAvgGroupPaysDistinctOperatorsOnce) {
  // sum + average share one cross-function group with operator mask
  // {sum, count}. N events must cost 2N operator evaluations (each distinct
  // operator once per event), NOT the 3N a per-query engine would pay
  // (1N for the sum query + 2N for the average's sum+count).
  DesisEngine engine;
  obs::MetricsRegistry registry;
  engine.set_metrics_registry(&registry);
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum),
                              MakeQuery(2, WindowSpec::Tumbling(100),
                                        AggregationFunction::kAverage)})
                  .ok());
  ASSERT_EQ(engine.num_groups(), 1u);
  const std::string gid = std::to_string(engine.group(0).id);

  constexpr size_t kEvents = 1000;
  auto events = OrderedEvents(kEvents);
  engine.IngestBatch(events.data(), events.size());
  engine.AdvanceTo(2000);  // seals every slice covering the events

  EXPECT_EQ(CounterValue(registry, "group.events_in", {{"group", gid}},
                         "events"),
            kEvents);
  const uint64_t sum_evals = CounterValue(
      registry, "group.operator_evals", {{"group", gid}, {"op", "sum"}},
      "evals");
  const uint64_t count_evals = CounterValue(
      registry, "group.operator_evals", {{"group", gid}, {"op", "count"}},
      "evals");
  EXPECT_EQ(sum_evals, kEvents);
  EXPECT_EQ(count_evals, kEvents);
  EXPECT_EQ(sum_evals + count_evals, 2 * kEvents);
  EXPECT_NE(sum_evals + count_evals, 3 * kEvents);  // the unshared cost

  obs::Gauge* queries =
      registry.GetGauge("group.queries", {{"group", gid}}, "queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->value(), 2);
}

TEST(ClusterCostAttribution, ManySharedAveragesReportRatioAboveOne) {
  // n identical average queries: n*N query-events over 2N shared operator
  // evaluations -> sharing ratio n/2 (the Fig 6b win).
  DesisEngine engine;
  obs::MetricsRegistry registry;
  engine.set_metrics_registry(&registry);
  std::vector<Query> queries;
  constexpr int kQueries = 10;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back(MakeQuery(static_cast<QueryId>(i + 1),
                                WindowSpec::Tumbling(100),
                                AggregationFunction::kAverage));
  }
  ASSERT_TRUE(engine.Configure(queries).ok());
  ASSERT_EQ(engine.num_groups(), 1u);
  const std::string gid = std::to_string(engine.group(0).id);

  constexpr size_t kEvents = 500;
  auto events = OrderedEvents(kEvents);
  engine.IngestBatch(events.data(), events.size());
  engine.AdvanceTo(1000);

  const double events_in = static_cast<double>(CounterValue(
      registry, "group.events_in", {{"group", gid}}, "events"));
  const double evals =
      static_cast<double>(
          CounterValue(registry, "group.operator_evals",
                       {{"group", gid}, {"op", "sum"}}, "evals")) +
      static_cast<double>(
          CounterValue(registry, "group.operator_evals",
                       {{"group", gid}, {"op", "count"}}, "evals"));
  ASSERT_GT(evals, 0);
  const double ratio = kQueries * events_in / evals;
  EXPECT_DOUBLE_EQ(ratio, kQueries / 2.0);
  EXPECT_GT(ratio, 1.0);
}

TEST(ClusterCostAttribution, PerQueryPolicyReportsUnitSharingRatio) {
  // No sharing: each query gets its own group, every group's ratio is
  // exactly queries * events / evals = 1 * N / N = 1.0.
  SlicingEngine engine("NoShare", SharingPolicy::kPerQuery,
                       PunctuationStrategy::kPrecomputed);
  obs::MetricsRegistry registry;
  engine.set_metrics_registry(&registry);
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum),
                              MakeQuery(2, WindowSpec::Tumbling(200),
                                        AggregationFunction::kSum)})
                  .ok());
  ASSERT_EQ(engine.num_groups(), 2u);

  constexpr size_t kEvents = 600;
  auto events = OrderedEvents(kEvents);
  engine.IngestBatch(events.data(), events.size());
  engine.AdvanceTo(1200);

  for (size_t g = 0; g < engine.num_groups(); ++g) {
    const std::string gid = std::to_string(engine.group(g).id);
    const uint64_t events_in = CounterValue(registry, "group.events_in",
                                            {{"group", gid}}, "events");
    const uint64_t evals = CounterValue(
        registry, "group.operator_evals", {{"group", gid}, {"op", "sum"}},
        "evals");
    EXPECT_EQ(events_in, kEvents) << "group " << gid;
    EXPECT_EQ(evals, kEvents) << "group " << gid;
    obs::Gauge* queries =
        registry.GetGauge("group.queries", {{"group", gid}}, "queries");
    ASSERT_NE(queries, nullptr);
    EXPECT_EQ(queries->value(), 1) << "group " << gid;
    EXPECT_DOUBLE_EQ(static_cast<double>(queries->value()) * events_in /
                         evals,
                     1.0);
  }
}

// --------------------------------------------------------- cluster health --

// Node ids are assigned root-first: root=0, intermediates next, locals last
// (Cluster::Configure), so a {2 locals, 1 intermediate} topology is
// root=0, intermediate=1, locals=2,3.
TEST(ClusterHealthGauges, PublishedForEveryRoleAfterSampling) {
  // Obs objects are declared before the cluster: the registry must outlive
  // it (the destructor's transport shutdown flushes queue-depth gauges).
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(1 << 14);
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  cluster.AttachObs(&registry, &tracer);
  ASSERT_TRUE(cluster
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum)})
                  .ok());

  auto events = OrderedEvents(1000);
  cluster.IngestAt(0, events.data(), events.size());
  cluster.IngestAt(1, events.data(), events.size());
  // Advance only half-way: the locals have seen ts=1000 but may only
  // advertise <=500, so their watermark lag is at least 500 µs.
  cluster.Advance(500);
  cluster.SampleHealth();

  const size_t series_before = registry.size();
  struct Expect {
    const char* node;
    const char* role;
  };
  for (const Expect& e : {Expect{"0", "root"}, Expect{"1", "intermediate"},
                          Expect{"2", "local"}, Expect{"3", "local"}}) {
    obs::Gauge* lag = registry.GetGauge("health.watermark_lag_us",
                                        {{"node", e.node}, {"role", e.role}},
                                        "us");
    obs::Gauge* backlog = registry.GetGauge(
        "health.backlog", {{"node", e.node}, {"role", e.role}}, "slices");
    ASSERT_NE(lag, nullptr);
    ASSERT_NE(backlog, nullptr);
    EXPECT_GE(lag->value(), 0) << e.role << " " << e.node;
    EXPECT_GE(backlog->value(), 0) << e.role << " " << e.node;
    if (std::string(e.role) == "local") {
      EXPECT_GE(lag->value(), 500) << "local " << e.node;
      EXPECT_LE(lag->value(), 1000) << "local " << e.node;
    }
  }
  // The gauges above were registered by AttachObs, not created by the
  // lookups in this test.
  EXPECT_EQ(registry.size(), series_before);

  // After advancing past every event and draining, the pipeline is caught
  // up: locals report zero lag and the root has no parked slices.
  cluster.Advance(2000);
  cluster.Drain();
  cluster.SampleHealth();
  for (const char* node : {"2", "3"}) {
    obs::Gauge* lag = registry.GetGauge(
        "health.watermark_lag_us", {{"node", node}, {"role", "local"}}, "us");
    ASSERT_NE(lag, nullptr);
    EXPECT_EQ(lag->value(), 0) << "local " << node;
  }
  obs::Gauge* root_backlog = registry.GetGauge(
      "health.backlog", {{"node", "0"}, {"role", "root"}}, "slices");
  ASSERT_NE(root_backlog, nullptr);
  EXPECT_EQ(root_backlog->value(), 0);
}

// ------------------------------------------------- cross-node correlation --

using RoleSet = std::set<uint8_t>;

// Spans grouped by (group, slice): which roles touched each slice, and
// which node recorded each phase.
std::map<std::pair<uint32_t, uint64_t>, std::vector<obs::SliceSpan>>
SpansBySlice(const std::vector<obs::SliceSpan>& spans) {
  std::map<std::pair<uint32_t, uint64_t>, std::vector<obs::SliceSpan>> out;
  for (const obs::SliceSpan& s : spans) {
    if (s.phase == obs::SlicePhase::kWindowEmitted) continue;
    out[{s.group_id, s.slice_id}].push_back(s);
  }
  return out;
}

void ExpectCrossNodeCorrelation(std::unique_ptr<Transport> transport) {
  // Registry/tracer before the cluster: ~Cluster shuts the transport down
  // and that flush still publishes queue-depth gauges.
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(1 << 15);
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  if (transport != nullptr) cluster.set_transport(std::move(transport));
  cluster.AttachObs(&registry, &tracer);
  ASSERT_TRUE(cluster
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum)})
                  .ok());

  auto events = OrderedEvents(2000);
  cluster.IngestAt(0, events.data(), events.size());
  cluster.IngestAt(1, events.data(), events.size());
  cluster.Advance(3000);
  cluster.Drain();

  // At least one slice must show the full local -> intermediate -> root
  // life with node ids consistent with the topology (root=0, inter=1,
  // locals=2,3).
  bool full_life = false;
  for (const auto& [key, spans] : SpansBySlice(tracer.Snapshot())) {
    bool created_local = false, shipped_local = false;
    bool merged_inter = false, merged_root = false;
    for (const obs::SliceSpan& s : spans) {
      if (s.role == obs::kSpanRoleLocal) {
        EXPECT_TRUE(s.node_id == 2 || s.node_id == 3) << s.node_id;
        if (s.phase == obs::SlicePhase::kSliceCreated) created_local = true;
        if (s.phase == obs::SlicePhase::kPartialShipped) shipped_local = true;
      } else if (s.role == obs::kSpanRoleIntermediate) {
        EXPECT_EQ(s.node_id, 1u);
        if (s.phase == obs::SlicePhase::kMerged) merged_inter = true;
      } else if (s.role == obs::kSpanRoleRoot) {
        EXPECT_EQ(s.node_id, 0u);
        if (s.phase == obs::SlicePhase::kMerged) merged_root = true;
      }
    }
    if (created_local && shipped_local && merged_inter && merged_root) {
      full_life = true;
    }
  }
  EXPECT_TRUE(full_life)
      << "no slice recorded spans across all three roles";
}

TEST(ClusterTraceCorrelation, SliceSpansCrossNodesInlineTransport) {
  ExpectCrossNodeCorrelation(nullptr);  // default inline transport
}

TEST(ClusterTraceCorrelation, SliceSpansCrossNodesThreadedTransport) {
  ExpectCrossNodeCorrelation(std::make_unique<ThreadedTransport>());
}

TEST(ClusterTraceCorrelation, RetransmitsKeepSliceIdentityUnderLossyLink) {
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(1 << 15);
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  SimLinkConfig config;
  config.drop_probability = 0.3;
  config.seed = 7;
  cluster.set_transport(std::make_unique<SimLinkTransport>(config));
  cluster.AttachObs(&registry, &tracer);
  ASSERT_TRUE(cluster
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum)})
                  .ok());

  auto events = OrderedEvents(2000);
  for (Timestamp t = 200; t <= 2200; t += 200) {
    for (int local = 0; local < 2; ++local) {
      size_t begin = static_cast<size_t>(t - 200);
      size_t end = std::min<size_t>(static_cast<size_t>(t), events.size());
      if (end > begin) {
        cluster.IngestAt(local, events.data() + begin, end - begin);
      }
    }
    cluster.Advance(t);
  }
  cluster.Drain();

  // 30% loss over ~40 slice partials: statistically certain to retransmit
  // at least one (the seed pins the schedule, so this is deterministic).
  uint64_t retransmits = 0;
  for (int i = 0; i < cluster.num_locals(); ++i) {
    retransmits += cluster.local_stats(i).retransmits;
  }
  retransmits += cluster.intermediate_stats(0).retransmits;
  ASSERT_GT(retransmits, 0u);

  // Every kRetransmit span must reference a slice some local also shipped:
  // same (group, slice) identity, so the merged trace shows the extra hop
  // on the slice's own track.
  std::set<std::pair<uint32_t, uint64_t>> shipped;
  std::vector<obs::SliceSpan> retransmit_spans;
  for (const obs::SliceSpan& s : tracer.Snapshot()) {
    if (s.phase == obs::SlicePhase::kPartialShipped) {
      shipped.insert({s.group_id, s.slice_id});
    }
    if (s.phase == obs::SlicePhase::kRetransmit) retransmit_spans.push_back(s);
  }
  EXPECT_FALSE(retransmit_spans.empty());
  for (const obs::SliceSpan& s : retransmit_spans) {
    EXPECT_TRUE(shipped.count({s.group_id, s.slice_id}))
        << "retransmit of unknown slice " << s.slice_id;
  }

  // Satellite: the retransmit counter series mirrors the node stats.
  uint64_t counted = 0;
  for (const char* node : {"1", "2", "3"}) {
    const char* role = std::string(node) == "1" ? "intermediate" : "local";
    counted += CounterValue(registry, "node.retransmits",
                            {{"node", node}, {"role", role}}, "messages");
  }
  EXPECT_EQ(counted, retransmits);
}

#else  // !DESIS_OBS_ENABLED

TEST(ClusterCostAttribution, StubRegistryKeepsEngineWorking) {
  // With DESIS_OBS=OFF the registry hands out null handles; attaching one
  // must not disturb processing.
  DesisEngine engine;
  obs::MetricsRegistry registry;
  engine.set_metrics_registry(&registry);
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum),
                              MakeQuery(2, WindowSpec::Tumbling(100),
                                        AggregationFunction::kAverage)})
                  .ok());
  size_t results = 0;
  engine.set_sink([&](const WindowResult&) { ++results; });
  auto events = OrderedEvents(1000);
  engine.IngestBatch(events.data(), events.size());
  engine.AdvanceTo(2000);
  EXPECT_GT(results, 0u);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ClusterHealthGauges, StubClusterSamplingIsInert) {
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer;
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  cluster.AttachObs(&registry, &tracer);
  ASSERT_TRUE(cluster
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum)})
                  .ok());
  auto events = OrderedEvents(500);
  cluster.IngestAt(0, events.data(), events.size());
  cluster.Advance(1000);
  cluster.Drain();
  cluster.SampleHealth();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

#endif  // DESIS_OBS_ENABLED

}  // namespace
}  // namespace desis
