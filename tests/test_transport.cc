// The transport runtime: inline (deterministic default), threaded (bounded
// mailboxes, one worker per receiving node), and a simulated lossy link
// (virtual-time latency/bandwidth/jitter/drop with ack/retransmit).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/cluster.h"
#include "transport/sim_link_transport.h"
#include "transport/threaded_transport.h"
#include "transport/transport.h"

namespace desis {
namespace {

Query MakeQuery(QueryId id, WindowSpec window, AggregationFunction fn,
                double quantile = 0.5) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, quantile};
  return q;
}

// A query mix covering slice partials (decomposable), forwarded raw events
// (median/quantile), and watermark-driven session termination. Count-based
// measures are excluded: their window boundaries depend on the global
// arrival order, which concurrent delivery legitimately permutes.
std::vector<Query> ConformanceMix() {
  return {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage),
      MakeQuery(2, WindowSpec::Sliding(200, 50), AggregationFunction::kSum),
      MakeQuery(3, WindowSpec::Tumbling(100), AggregationFunction::kMax),
      MakeQuery(4, WindowSpec::Tumbling(100), AggregationFunction::kMedian),
      MakeQuery(5, WindowSpec::Tumbling(250), AggregationFunction::kQuantile,
                0.9),
      MakeQuery(6, WindowSpec::Session(25), AggregationFunction::kCount),
  };
}

std::vector<std::vector<Event>> RandomStreams(int locals, int per_local,
                                              Timestamp max_ts,
                                              uint64_t seed) {
  std::vector<std::vector<Event>> streams(static_cast<size_t>(locals));
  Rng rng(seed);
  for (auto& stream : streams) {
    Timestamp ts = 0;
    for (int i = 0; i < per_local; ++i) {
      ts += rng.NextInRange(1, std::max<int64_t>(1, max_ts / per_local));
      stream.push_back({ts, static_cast<uint32_t>(rng.NextBounded(3)),
                        static_cast<double>(rng.NextBounded(1000)),
                        kNoMarker});
    }
  }
  return streams;
}

using ResultMap = std::map<QueryId, std::map<Timestamp, WindowResult>>;

/// Thread-safe sink collecting results keyed by (query, window start).
struct ResultCollector {
  std::mutex mu;
  ResultMap results;

  WindowSink Sink() {
    return [this](const WindowResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      results[r.query_id][r.window_start] = r;
    };
  }
};

/// Single driver thread, lock-stepped rounds (the seed harness pattern).
void DriveSingleThreaded(Cluster& cluster,
                         const std::vector<std::vector<Event>>& per_local,
                         Timestamp step, Timestamp end_ts) {
  std::vector<size_t> cursor(per_local.size(), 0);
  for (Timestamp t = 0; t <= end_ts; t += step) {
    for (size_t i = 0; i < per_local.size(); ++i) {
      const size_t begin = cursor[i];
      while (cursor[i] < per_local[i].size() &&
             per_local[i][cursor[i]].ts < t + step) {
        ++cursor[i];
      }
      if (cursor[i] > begin) {
        cluster.IngestAt(static_cast<int>(i), per_local[i].data() + begin,
                         cursor[i] - begin);
      }
    }
    cluster.Advance(t + step);
  }
  cluster.Advance(end_ts + 10 * step);
  cluster.Drain();
}

/// One driver thread per local node — the deployment the threaded
/// transport models (each edge device pushes its own stream).
void DrivePerLocalThreads(Cluster& cluster,
                          const std::vector<std::vector<Event>>& per_local,
                          Timestamp step, Timestamp end_ts) {
  std::vector<std::thread> drivers;
  for (size_t i = 0; i < per_local.size(); ++i) {
    drivers.emplace_back([&, i] {
      const std::vector<Event>& stream = per_local[i];
      size_t cursor = 0;
      for (Timestamp t = 0; t <= end_ts; t += step) {
        const size_t begin = cursor;
        while (cursor < stream.size() && stream[cursor].ts < t + step) {
          ++cursor;
        }
        if (cursor > begin) {
          cluster.IngestAt(static_cast<int>(i), stream.data() + begin,
                           cursor - begin);
        }
        cluster.AdvanceAt(static_cast<int>(i), t + step);
      }
      cluster.AdvanceAt(static_cast<int>(i), end_ts + 10 * step);
    });
  }
  for (std::thread& t : drivers) t.join();
  cluster.Drain();
}

/// Order-insensitive comparison: same window set, values equal up to the
/// floating-point reassociation concurrent merge order may introduce.
void ExpectSameResults(const ResultMap& got, const ResultMap& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [qid, windows] : want) {
    auto it = got.find(qid);
    ASSERT_NE(it, got.end()) << "no results for query " << qid;
    ASSERT_EQ(it->second.size(), windows.size()) << "query " << qid;
    for (const auto& [ws, result] : windows) {
      auto wit = it->second.find(ws);
      ASSERT_NE(wit, it->second.end())
          << "query " << qid << " missing window @" << ws;
      EXPECT_NEAR(wit->second.value, result.value,
                  1e-6 * (1.0 + std::abs(result.value)))
          << "query " << qid << " window @" << ws;
      EXPECT_EQ(wit->second.event_count, result.event_count)
          << "query " << qid << " window @" << ws;
    }
  }
}

ResultMap RunInlineReference(const std::vector<Query>& queries,
                             const std::vector<std::vector<Event>>& streams,
                             ClusterTopology topology, Timestamp step,
                             Timestamp end_ts) {
  Cluster cluster(ClusterSystem::kDesis, topology);
  ResultCollector collector;
  cluster.set_sink(collector.Sink());
  EXPECT_TRUE(cluster.Configure(queries).ok());
  DriveSingleThreaded(cluster, streams, step, end_ts);
  return collector.results;
}

// ------------------------------------------------------------- inline ----

TEST(InlineTransport, ExplicitInstanceIsByteIdenticalToDefault) {
  const auto queries = ConformanceMix();
  const auto streams = RandomStreams(3, 200, 1500, 11);

  Cluster by_default(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(by_default.Configure(queries).ok());
  DriveSingleThreaded(by_default, streams, 50, 2000);

  Cluster explicit_inline(ClusterSystem::kDesis, {3, 1});
  explicit_inline.set_transport(std::make_unique<InlineTransport>());
  ASSERT_TRUE(explicit_inline.Configure(queries).ok());
  DriveSingleThreaded(explicit_inline, streams, 50, 2000);

  EXPECT_STREQ(by_default.transport()->name(), "inline");
  for (int i = 0; i < 3; ++i) {
    const NodeStats& a = by_default.local_stats(i);
    const NodeStats& b = explicit_inline.local_stats(i);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.queue_hwm, 0u);
    EXPECT_EQ(a.retransmits, 0u);
    EXPECT_EQ(a.messages_dropped, 0u);
  }
  EXPECT_EQ(by_default.root_stats().bytes_received,
            explicit_inline.root_stats().bytes_received);
  EXPECT_EQ(by_default.results(), explicit_inline.results());
}

// ------------------------------------------------------------ threaded ----

TEST(ThreadedTransport, ConformanceMixMatchesInline) {
  const auto queries = ConformanceMix();
  const auto streams = RandomStreams(4, 300, 2000, 77);
  const ClusterTopology topology{4, 2};

  ResultMap want = RunInlineReference(queries, streams, topology, 50, 2500);
  ASSERT_FALSE(want.empty());

  Cluster cluster(ClusterSystem::kDesis, topology);
  cluster.set_transport(std::make_unique<ThreadedTransport>());
  ResultCollector collector;
  cluster.set_sink(collector.Sink());
  ASSERT_TRUE(cluster.Configure(queries).ok());
  DrivePerLocalThreads(cluster, streams, 50, 2500);

  ExpectSameResults(collector.results, want);
}

TEST(ThreadedTransport, DeepTopologyMatchesInline) {
  const std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage),
      MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kMedian)};
  const auto streams = RandomStreams(6, 200, 1500, 5);
  const ClusterTopology topology{6, 2, 3};  // multi-hop chain (§6.4.1)

  ResultMap want = RunInlineReference(queries, streams, topology, 50, 2000);
  ASSERT_FALSE(want.empty());

  Cluster cluster(ClusterSystem::kDesis, topology);
  cluster.set_transport(std::make_unique<ThreadedTransport>());
  ResultCollector collector;
  cluster.set_sink(collector.Sink());
  ASSERT_TRUE(cluster.Configure(queries).ok());
  DrivePerLocalThreads(cluster, streams, 50, 2000);

  ExpectSameResults(collector.results, want);
}

TEST(ThreadedTransport, TinyMailboxBackpressureStaysCorrect) {
  const std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)};
  const auto streams = RandomStreams(3, 300, 1000, 23);
  const ClusterTopology topology{3, 1};

  ResultMap want = RunInlineReference(queries, streams, topology, 20, 1500);

  // Capacity 2 forces senders to block on nearly every enqueue.
  Cluster cluster(ClusterSystem::kDesis, topology);
  cluster.set_transport(std::make_unique<ThreadedTransport>(2));
  ResultCollector collector;
  cluster.set_sink(collector.Sink());
  ASSERT_TRUE(cluster.Configure(queries).ok());
  DrivePerLocalThreads(cluster, streams, 20, 1500);

  ExpectSameResults(collector.results, want);
  // The mailbox high-water mark is bounded by the capacity and must have
  // been observed on at least one receiving node.
  const uint64_t im_hwm = cluster.intermediate_stats(0).queue_hwm;
  const uint64_t root_hwm = cluster.root_stats().queue_hwm;
  EXPECT_LE(im_hwm, 2u);
  EXPECT_LE(root_hwm, 2u);
  EXPECT_GT(im_hwm + root_hwm, 0u);
}

TEST(ThreadedTransport, MembershipAndQueryOpsDuringLiveIngestion) {
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  cluster.set_transport(std::make_unique<ThreadedTransport>(64));
  ResultCollector collector;
  cluster.set_sink(collector.Sink());
  ASSERT_TRUE(cluster.Configure({MakeQuery(
                  1, WindowSpec::Tumbling(100), AggregationFunction::kAverage)})
                  .ok());

  // Locals 0 and 1 ingest [0, 1000) but pause once they advanced to 500;
  // local 2 goes silent after 300.
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    int paused = 0;
    bool open = false;
  } gate;

  auto driver = [&](int idx, Timestamp stop_ts, bool pauses) {
    for (Timestamp t = 0; t < stop_ts; t += 50) {
      std::vector<Event> events;
      for (Timestamp ts = t; ts < t + 50; ts += 10) {
        events.push_back({ts, 0, 1.0, kNoMarker});
      }
      cluster.IngestAt(idx, events.data(), events.size());
      cluster.AdvanceAt(idx, t + 50);
      if (pauses && t + 50 == 500) {
        std::unique_lock<std::mutex> lock(gate.mu);
        ++gate.paused;
        gate.cv.notify_all();
        gate.cv.wait(lock, [&] { return gate.open; });
      }
    }
    // The silent local just stops; survivors flush their final windows.
    if (pauses) cluster.AdvanceAt(idx, stop_ts + 200);
  };

  std::thread t0(driver, 0, 1000, true);
  std::thread t1(driver, 1, 1000, true);
  std::thread t2(driver, 2, 300, false);

  // Deploy a second query while all three ingestion threads are running.
  ASSERT_TRUE(cluster
                  .AddQuery(MakeQuery(2, WindowSpec::Tumbling(50),
                                      AggregationFunction::kSum))
                  .ok());

  t2.join();
  {
    std::unique_lock<std::mutex> lock(gate.mu);
    gate.cv.wait(lock, [&] { return gate.paused == 2; });
  }

  // Locals 0/1 advanced to 500, local 2 stalled at 300: the timeout sweep
  // must remove exactly the silent one, unblocking upstream watermarks.
  const std::vector<int> removed = cluster.RemoveSilentLocals(400);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 2);
  EXPECT_FALSE(cluster.local_active(2));

  // A new edge device joins mid-run and feeds [500, 1000).
  auto added = cluster.AddLocalNode();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const int joined = added.value();
  EXPECT_EQ(joined, 3);
  std::thread t3([&] {
    for (Timestamp t = 500; t < 1000; t += 50) {
      std::vector<Event> events;
      for (Timestamp ts = t; ts < t + 50; ts += 10) {
        events.push_back({ts, 0, 1.0, kNoMarker});
      }
      cluster.IngestAt(joined, events.data(), events.size());
      cluster.AdvanceAt(joined, t + 50);
    }
    cluster.AdvanceAt(joined, 1200);
  });

  {
    std::lock_guard<std::mutex> lock(gate.mu);
    gate.open = true;
    gate.cv.notify_all();
  }
  t0.join();
  t1.join();
  t3.join();
  cluster.Drain();

  std::lock_guard<std::mutex> lock(collector.mu);
  const auto& q1 = collector.results[1];
  // No lost watermarks: every tumbling window up to [900, 1000) fired,
  // across the removal at 300 and the join at 500.
  for (Timestamp ws = 0; ws <= 900; ws += 100) {
    ASSERT_TRUE(q1.contains(ws)) << "query 1 window @" << ws;
    EXPECT_DOUBLE_EQ(q1.at(ws).value, 1.0);
  }
  // The runtime-added query produced results after its deployment.
  EXPECT_FALSE(collector.results[2].empty());
}

// ------------------------------------------------------------- simlink ----

TEST(SimLinkTransport, ZeroLossMatchesInline) {
  const auto queries = ConformanceMix();
  const auto streams = RandomStreams(3, 250, 1500, 31);
  const ClusterTopology topology{3, 1};

  ResultMap want = RunInlineReference(queries, streams, topology, 50, 2000);
  ASSERT_FALSE(want.empty());

  SimLinkConfig link;
  link.latency_us = 200;
  link.jitter_us = 40;
  link.bytes_per_us = 2.0;
  link.drop_probability = 0;
  Cluster cluster(ClusterSystem::kDesis, topology);
  cluster.set_transport(std::make_unique<SimLinkTransport>(link));
  ResultCollector collector;
  cluster.set_sink(collector.Sink());
  ASSERT_TRUE(cluster.Configure(queries).ok());
  DriveSingleThreaded(cluster, streams, 50, 2000);

  ExpectSameResults(collector.results, want);
  uint64_t retransmits = 0;
  for (int i = 0; i < 3; ++i) {
    retransmits += cluster.local_stats(i).retransmits;
  }
  EXPECT_EQ(retransmits, 0u);
}

TEST(SimLinkTransport, LossyLinkDeliversEverySlicePartial) {
  const auto queries = ConformanceMix();
  const auto streams = RandomStreams(3, 250, 1500, 31);
  const ClusterTopology topology{3, 1};

  ResultMap want = RunInlineReference(queries, streams, topology, 50, 2000);
  ASSERT_FALSE(want.empty());

  SimLinkConfig link;
  link.latency_us = 100;
  link.jitter_us = 50;
  link.bytes_per_us = 1.0;
  link.drop_probability = 0.25;
  link.seed = 7;
  Cluster cluster(ClusterSystem::kDesis, topology);
  auto transport = std::make_unique<SimLinkTransport>(link);
  SimLinkTransport* sim = transport.get();
  cluster.set_transport(std::move(transport));
  ResultCollector collector;
  cluster.set_sink(collector.Sink());
  ASSERT_TRUE(cluster.Configure(queries).ok());
  DriveSingleThreaded(cluster, streams, 50, 2000);

  // Zero lost windows: the retransmit layer recovered every drop.
  ExpectSameResults(collector.results, want);
  EXPECT_GT(sim->total_drops(), 0u);
  EXPECT_GT(sim->total_retransmits(), 0u);
  EXPECT_GT(sim->now_us(), 0);
  uint64_t drops = 0;
  uint64_t retransmits = 0;
  for (int i = 0; i < 3; ++i) {
    drops += cluster.local_stats(i).messages_dropped;
    retransmits += cluster.local_stats(i).retransmits;
  }
  drops += cluster.intermediate_stats(0).messages_dropped;
  retransmits += cluster.intermediate_stats(0).retransmits;
  EXPECT_EQ(drops, sim->total_drops());
  EXPECT_EQ(retransmits, sim->total_retransmits());
  // Logical message counters stay loss-independent: the root received
  // exactly what the intermediate sent, despite dropped transmissions.
  EXPECT_EQ(cluster.root_stats().messages_received,
            cluster.intermediate_stats(0).messages_sent);
}

TEST(SimLinkTransport, IdenticalSeedsAreDeterministic) {
  const std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)};
  const auto streams = RandomStreams(2, 150, 800, 3);

  auto run = [&] {
    SimLinkConfig link;
    link.latency_us = 80;
    link.jitter_us = 20;
    link.drop_probability = 0.3;
    link.seed = 99;
    Cluster cluster(ClusterSystem::kDesis, {2, 1});
    auto transport = std::make_unique<SimLinkTransport>(link);
    SimLinkTransport* sim = transport.get();
    cluster.set_transport(std::move(transport));
    EXPECT_TRUE(cluster.Configure(queries).ok());
    DriveSingleThreaded(cluster, streams, 40, 1000);
    return std::make_tuple(sim->total_drops(), sim->total_retransmits(),
                           sim->now_us(), cluster.results());
  };
  EXPECT_EQ(run(), run());
}

// --------------------------------------------------------- stats report ----

TEST(StatsReport, EmitsOneJsonObjectWithPerRoleCounters) {
  const std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage)};
  const auto streams = RandomStreams(2, 200, 1000, 13);

  SimLinkConfig link;
  link.drop_probability = 0.2;
  link.seed = 5;
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  cluster.set_transport(std::make_unique<SimLinkTransport>(link));
  ASSERT_TRUE(cluster.Configure(queries).ok());
  DriveSingleThreaded(cluster, streams, 50, 1500);

  const std::string report = cluster.StatsReport();
  EXPECT_EQ(report.front(), '{');
  EXPECT_EQ(report.back(), '}');
  for (const char* key :
       {"\"system\":\"Desis\"", "\"transport\":\"simlink\"",
        "\"topology\":{\"locals\":2,\"intermediates\":1,\"layers\":1}",
        "\"results\":", "\"roles\":{\"local\":{\"nodes\":2",
        "\"intermediate\":{\"nodes\":1", "\"root\":{\"nodes\":1",
        "\"bytes_sent\":", "\"busy_ns\":", "\"queue_hwm\":",
        "\"retransmits\":", "\"messages_dropped\":", "\"totals\":{"}) {
    EXPECT_NE(report.find(key), std::string::npos)
        << "missing " << key << " in " << report;
  }
  // Balanced braces — cheap well-formedness check without a JSON parser.
  int depth = 0;
  for (char c : report) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// EngineStats/NodeStats are relaxed-atomic cells so a monitor may poll them
// while transport workers mutate them. This runs per-local driver threads
// plus a polling thread against the threaded transport and must stay clean
// under TSan (the CI thread-sanitizer job runs StatsReport*).
TEST(StatsReport, ConcurrentPollingWhileIngestingIsRaceFree) {
  const std::vector<Query> queries = ConformanceMix();
  const auto streams = RandomStreams(4, 300, 1500, 21);

  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(4096);
  Cluster cluster(ClusterSystem::kDesis, {4, 2});
  cluster.set_transport(std::make_unique<ThreadedTransport>());
  ASSERT_TRUE(cluster.Configure(queries).ok());
  cluster.AttachObs(&registry, &tracer);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    uint64_t polls = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Everything read here races with delivery workers by design: the
      // report (mid-run registry snapshot + span counters), raw per-node
      // counters, and the results counter.
      const std::string report = cluster.StatsReport();
      EXPECT_FALSE(report.empty());
      uint64_t received = 0;
      for (int i = 0; i < cluster.num_locals(); ++i) {
        received += cluster.local_stats(i).messages_received;
      }
      received += cluster.root_stats().messages_received;
      (void)received;
      (void)cluster.results();
      (void)tracer.recorded();
      ++polls;
    }
    EXPECT_GT(polls, 0u);
  });

  DrivePerLocalThreads(cluster, streams, 40, 1500);
  stop.store(true, std::memory_order_release);
  poller.join();

  // Post-Drain the counters are exact: every sent message was received.
  uint64_t sent = 0, received = 0;
  for (int i = 0; i < cluster.num_locals(); ++i) {
    sent += cluster.local_stats(i).messages_sent;
  }
  EXPECT_GT(sent, 0u);
  received = cluster.root_stats().messages_received;
  for (int i = 0; i < cluster.num_intermediates(); ++i) {
    received += cluster.intermediate_stats(i).messages_received;
  }
  EXPECT_GE(received, sent);
  EXPECT_GT(cluster.results(), 0u);
  const std::string report = cluster.StatsReport();
  EXPECT_NE(report.find("\"obs\":"), std::string::npos);
  EXPECT_NE(report.find("\"spans_recorded\":"), std::string::npos);
}

}  // namespace
}  // namespace desis
