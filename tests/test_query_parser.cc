#include "core/query_parser.h"

#include <gtest/gtest.h>

#include "core/query_analyzer.h"

namespace desis {
namespace {

Query MustParse(std::string_view text) {
  auto q = QueryParser::Parse(text, 1);
  EXPECT_TRUE(q.ok()) << q.status().ToString() << " for: " << text;
  return q.value();
}

TEST(QueryParser, TumblingAverage) {
  Query q = MustParse("SELECT AVG(value) FROM stream WINDOW TUMBLING(SIZE 5s)");
  EXPECT_EQ(q.agg.fn, AggregationFunction::kAverage);
  EXPECT_EQ(q.window.type, WindowType::kTumbling);
  EXPECT_EQ(q.window.measure, WindowMeasure::kTime);
  EXPECT_EQ(q.window.length, 5 * kSecond);
  EXPECT_EQ(q.window.slide, 5 * kSecond);
  EXPECT_EQ(q.predicate, Predicate::All());
  EXPECT_FALSE(q.deduplicate);
}

TEST(QueryParser, SlidingQuantileWithKey) {
  Query q = MustParse(
      "SELECT QUANTILE(value, 0.95) FROM stream WHERE key = 3 "
      "WINDOW SLIDING(SIZE 10s, SLIDE 1s)");
  EXPECT_EQ(q.agg.fn, AggregationFunction::kQuantile);
  EXPECT_DOUBLE_EQ(q.agg.quantile, 0.95);
  EXPECT_TRUE(q.predicate.has_key);
  EXPECT_EQ(q.predicate.key, 3u);
  EXPECT_EQ(q.window.type, WindowType::kSliding);
  EXPECT_EQ(q.window.length, 10 * kSecond);
  EXPECT_EQ(q.window.slide, 1 * kSecond);
}

TEST(QueryParser, SessionWithValueRange) {
  Query q = MustParse(
      "SELECT SUM(value) FROM stream WHERE value >= 80 AND value < 120 "
      "WINDOW SESSION(GAP 500ms)");
  EXPECT_EQ(q.window.type, WindowType::kSession);
  EXPECT_EQ(q.window.gap, 500 * kMillisecond);
  ASSERT_TRUE(q.predicate.has_range);
  EXPECT_TRUE(q.predicate.Matches({0, 0, 80.0, 0}));
  EXPECT_TRUE(q.predicate.Matches({0, 0, 119.0, 0}));
  EXPECT_FALSE(q.predicate.Matches({0, 0, 120.0, 0}));
  EXPECT_FALSE(q.predicate.Matches({0, 0, 79.9, 0}));
}

TEST(QueryParser, StrictGreaterExcludesBound) {
  Query q = MustParse(
      "SELECT COUNT(value) FROM stream WHERE value > 80 "
      "WINDOW TUMBLING(SIZE 1s)");
  EXPECT_FALSE(q.predicate.Matches({0, 0, 80.0, 0}));
  EXPECT_TRUE(q.predicate.Matches({0, 0, 80.0001, 0}));
}

TEST(QueryParser, CountMeasureWindows) {
  Query q = MustParse(
      "SELECT MAX(value) FROM stream WINDOW TUMBLING(SIZE 1000 EVENTS)");
  EXPECT_EQ(q.window.measure, WindowMeasure::kCount);
  EXPECT_EQ(q.window.length, 1000);

  Query q2 = MustParse(
      "SELECT MIN(value) FROM stream "
      "WINDOW SLIDING(SIZE 1000 EVENTS, SLIDE 100 EVENTS)");
  EXPECT_EQ(q2.window.measure, WindowMeasure::kCount);
  EXPECT_EQ(q2.window.slide, 100);
}

TEST(QueryParser, UserDefinedAndDeduplicate) {
  Query q = MustParse(
      "SELECT MEDIAN(value) FROM stream WINDOW USER_DEFINED DEDUPLICATE");
  EXPECT_EQ(q.window.type, WindowType::kUserDefined);
  EXPECT_TRUE(q.deduplicate);
}

TEST(QueryParser, AllFunctionsParse) {
  for (const char* fn : {"SUM", "COUNT", "AVG", "AVERAGE", "MIN", "MAX",
                         "PRODUCT", "GEOMEAN", "MEDIAN"}) {
    const std::string text = std::string("SELECT ") + fn +
                             "(value) FROM stream WINDOW TUMBLING(SIZE 1s)";
    auto q = QueryParser::Parse(text, 1);
    EXPECT_TRUE(q.ok()) << fn << ": " << q.status().ToString();
  }
}

TEST(QueryParser, CaseInsensitiveKeywords) {
  Query q = MustParse(
      "select avg(VALUE) from STREAM where KEY = 2 window tumbling(size 2s)");
  EXPECT_EQ(q.agg.fn, AggregationFunction::kAverage);
  EXPECT_EQ(q.predicate.key, 2u);
}

TEST(QueryParser, DurationUnits) {
  EXPECT_EQ(MustParse("SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE 250us)")
                .window.length,
            250);
  EXPECT_EQ(MustParse("SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE 3ms)")
                .window.length,
            3 * kMillisecond);
  EXPECT_EQ(MustParse("SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE 2m)")
                .window.length,
            2 * kMinute);
  EXPECT_EQ(MustParse("SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE 1.5s)")
                .window.length,
            1'500'000);
}

TEST(QueryParser, ParseAllSplitsOnSemicolons) {
  auto queries = QueryParser::ParseAll(
      "SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE 1s);\n"
      "SELECT MAX(value) FROM stream WINDOW SESSION(GAP 2s);\n");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries.value().size(), 2u);
  EXPECT_EQ(queries.value()[0].id, 1u);
  EXPECT_EQ(queries.value()[1].id, 2u);
  EXPECT_EQ(queries.value()[1].window.type, WindowType::kSession);
}

TEST(QueryParser, Errors) {
  const char* bad[] = {
      "",                                                        // empty
      "SELECT FROM stream WINDOW TUMBLING(SIZE 1s)",             // no fn
      "SELECT NOPE(value) FROM stream WINDOW TUMBLING(SIZE 1s)", // bad fn
      "SELECT SUM(value) FROM stream",                           // no window
      "SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE 1)",   // no unit
      "SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE -1s)", // negative
      "SELECT SUM(value) FROM stream WINDOW SESSION(GAP 5 EVENTS)",
      "SELECT QUANTILE(value) FROM stream WINDOW TUMBLING(SIZE 1s)",
      "SELECT QUANTILE(value, 1.5) FROM stream WINDOW TUMBLING(SIZE 1s)",
      "SELECT SUM(value) FROM stream WINDOW TUMBLING(SIZE 1s) garbage",
      "SELECT SUM(value) FROM stream WHERE speed = 3 WINDOW TUMBLING(SIZE 1s)",
      "SELECT SUM(value) FROM stream "
      "WINDOW SLIDING(SIZE 1s, SLIDE 100 EVENTS)",  // mixed measures
  };
  for (const char* text : bad) {
    auto q = QueryParser::Parse(text, 1);
    EXPECT_FALSE(q.ok()) << "should not parse: " << text;
  }
}

TEST(QueryParser, ParsedQueriesRunEndToEnd) {
  auto queries = QueryParser::ParseAll(
      "SELECT AVG(value) FROM stream WINDOW TUMBLING(SIZE 10us);"
      "SELECT MAX(value) FROM stream WHERE key = 1 WINDOW TUMBLING(SIZE 10us)");
  ASSERT_TRUE(queries.ok());
  // (Compiled against the engine in test_slicer.cc-style harnesses; here we
  // only check that the analyzer accepts the parsed set.)
  QueryAnalyzer analyzer;
  auto groups = analyzer.Analyze(queries.value());
  ASSERT_TRUE(groups.ok());
  EXPECT_GE(groups.value().size(), 1u);
}

}  // namespace
}  // namespace desis
