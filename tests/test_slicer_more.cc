#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "baselines/ce_buffer.h"
#include "common/rng.h"
#include "core/engine.h"
#include "net/cluster.h"
#include "core/root_assembler.h"

namespace desis {
namespace {

Event Ev(Timestamp ts, double value, uint32_t key = 0,
         uint32_t marker = kNoMarker) {
  return Event{ts, key, value, marker};
}

Query MakeQuery(QueryId id, WindowSpec window, AggregationFunction fn,
                Predicate pred = Predicate::All(), double quantile = 0.5) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, quantile};
  q.predicate = pred;
  return q;
}

TEST(SlicerFunctions, ProductAndGeometricMean) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(10),
                                        AggregationFunction::kProduct),
                              MakeQuery(2, WindowSpec::Tumbling(10),
                                        AggregationFunction::kGeometricMean)})
                  .ok());
  EXPECT_EQ(engine.num_groups(), 1u);
  std::map<QueryId, double> results;
  engine.set_sink([&](const WindowResult& r) { results[r.query_id] = r.value; });
  engine.Ingest(Ev(0, 2));
  engine.Ingest(Ev(3, 8));
  engine.AdvanceTo(100);
  EXPECT_DOUBLE_EQ(results[1], 16.0);
  EXPECT_DOUBLE_EQ(results[2], 4.0);  // sqrt(2*8)
  // Shared operators: {multiply, count} = 2 per event.
  EXPECT_EQ(engine.stats().operator_executions, 4u);
}

TEST(SlicerWatermark, AdvanceWithoutEventsFiresScheduledWindows) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum)})
          .ok());
  uint64_t fired = 0;
  engine.set_sink([&](const WindowResult&) { ++fired; });
  engine.Ingest(Ev(5, 1));
  EXPECT_EQ(fired, 0u);
  engine.AdvanceTo(9);  // window [0,10) not yet closed
  EXPECT_EQ(fired, 0u);
  engine.AdvanceTo(10);  // closes exactly at the boundary
  EXPECT_EQ(fired, 1u);
  engine.AdvanceTo(10'000);  // empty windows do not fire
  EXPECT_EQ(fired, 1u);
}

TEST(SlicerWatermark, SafeWatermarkLagsUnsealedSlices) {
  QueryAnalyzer analyzer;
  auto groups =
      analyzer
          .Analyze({MakeQuery(1, WindowSpec::Session(100), AggregationFunction::kSum)})
          .value();
  EngineStats stats;
  StreamSlicer slicer(groups[0], {}, &stats);
  // Session data sits in the open slice: safe watermark stays at the slice
  // start even as processing time advances.
  slicer.Ingest(Ev(50, 1));
  slicer.AdvanceTo(120);
  EXPECT_EQ(slicer.SafeWatermark(), 50);
  // The gap closes the session at 150; everything is sealed again.
  slicer.AdvanceTo(200);
  EXPECT_EQ(slicer.SafeWatermark(), 200);
}

TEST(SlicerMemory, CeBufferPinsEventsDesisDoesNot) {
  // §2.3: buffering engines keep events until the largest window closes.
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum),
      MakeQuery(2, WindowSpec::Tumbling(100'000), AggregationFunction::kSum)};
  CeBufferEngine cebuffer;
  ASSERT_TRUE(cebuffer.Configure(queries).ok());
  for (Timestamp t = 0; t < 50'000; ++t) cebuffer.Ingest(Ev(t, 1));
  // The big window still buffers every one of the 50k events (plus the
  // small window's current buffer).
  EXPECT_GE(cebuffer.buffered_events(), 50'000u);

  // Desis keeps only slice aggregates: the same stream leaves behind a
  // bounded number of slice records, not 50k buffered events.
  DesisEngine desis;
  ASSERT_TRUE(desis.Configure(queries).ok());
  for (Timestamp t = 0; t < 50'000; ++t) desis.Ingest(Ev(t, 1));
  // 10-unit slices over 50k time units = ~5k slices; each holds O(1)
  // state for sum (no raw events).
  EXPECT_LE(desis.stats().slices_created, 5'001u);
}

TEST(SlicerSuppression, SuppressedQueryStopsButGroupContinues) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(10),
                                        AggregationFunction::kSum),
                              MakeQuery(2, WindowSpec::Tumbling(10),
                                        AggregationFunction::kMax)})
                  .ok());
  std::map<QueryId, int> fired;
  engine.set_sink([&](const WindowResult& r) { ++fired[r.query_id]; });
  engine.Ingest(Ev(5, 1));
  ASSERT_TRUE(engine.RemoveQuery(1).ok());
  engine.Ingest(Ev(15, 2));
  engine.Ingest(Ev(25, 3));
  engine.AdvanceTo(100);
  EXPECT_EQ(fired[1], 0);
  EXPECT_EQ(fired[2], 3);
}

TEST(SlicerAlignment, LargeTimestampsStayExact) {
  // Event times near year-2200 in microseconds still align windows exactly.
  const Timestamp base = 7'000'000'000'000'000;  // ~222 years in us
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Tumbling(kSecond),
                                        AggregationFunction::kCount)})
                  .ok());
  std::map<Timestamp, uint64_t> got;
  engine.set_sink(
      [&](const WindowResult& r) { got[r.window_start] = r.event_count; });
  for (int i = 0; i < 10; ++i) {
    engine.Ingest(Ev(base + i * 100 * kMillisecond, 1));
  }
  engine.AdvanceTo(base + 10 * kSecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.begin()->first % kSecond, 0);
  EXPECT_EQ(got.begin()->second, 10u);
}

// --------------------------------------------------------------- root ----

class RootAssemblerTest : public ::testing::Test {
 protected:
  void Configure(std::vector<Query> queries) {
    QueryAnalyzer analyzer(DeploymentMode::kDecentralized,
                           SharingPolicy::kCrossFunction);
    groups_ = analyzer.Analyze(queries).value();
    assembler_ = std::make_unique<RootAssembler>(
        groups_[0], &stats_,
        [this](const WindowResult& r) { results_.push_back(r); });
  }

  SliceRecord Partial(Timestamp start, Timestamp end, double sum,
                      uint64_t events) {
    SliceRecord msg;
    msg.start = start;
    msg.end = end;
    msg.last_event_ts = events > 0 ? end - 1 : kNoTimestamp;
    PartialAggregate agg(groups_[0].mask);
    // Approximate `events` additions summing to `sum`.
    for (uint64_t i = 0; i < events; ++i) {
      agg.Add(sum / static_cast<double>(events));
    }
    agg.Seal();
    msg.lanes = {agg};
    msg.lane_events = {events};
    msg.lane_last_ts = {msg.last_event_ts};
    return msg;
  }

  EngineStats stats_;
  std::vector<QueryGroup> groups_;
  std::unique_ptr<RootAssembler> assembler_;
  std::vector<WindowResult> results_;
};

TEST_F(RootAssemblerTest, MergesAlignedPartialsFromTwoChildren) {
  Configure({MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)});
  assembler_->AddPartial(Partial(0, 100, 10.0, 2));
  assembler_->AddPartial(Partial(0, 100, 30.0, 3));
  assembler_->AdvanceTo(50);
  EXPECT_TRUE(results_.empty());  // window not complete yet
  assembler_->AdvanceTo(100);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 40.0);
  EXPECT_EQ(results_[0].event_count, 5u);
}

TEST_F(RootAssemblerTest, MisalignedChildSlicesStillCovered) {
  // One child punctuated mid-window (e.g. a dynamic window in the group):
  // coverage-based assembly still sums everything exactly once.
  Configure({MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)});
  assembler_->AddPartial(Partial(0, 100, 10.0, 1));
  assembler_->AddPartial(Partial(0, 40, 5.0, 1));
  assembler_->AddPartial(Partial(40, 100, 7.0, 1));
  assembler_->AdvanceTo(100);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_DOUBLE_EQ(results_[0].value, 22.0);
}

TEST_F(RootAssemblerTest, GarbageCollectsClosedEntries) {
  Configure({MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)});
  for (int w = 0; w < 50; ++w) {
    assembler_->AddPartial(Partial(w * 100, (w + 1) * 100, 1.0, 1));
    assembler_->AdvanceTo((w + 1) * 100);
  }
  EXPECT_EQ(results_.size(), 50u);
  EXPECT_LE(assembler_->pending_entries(), 2u);
}

TEST_F(RootAssemblerTest, SlidingWindowsAssembleAcrossEntries) {
  Configure(
      {MakeQuery(1, WindowSpec::Sliding(100, 50), AggregationFunction::kSum)});
  for (int i = 0; i < 6; ++i) {
    assembler_->AddPartial(Partial(i * 50, (i + 1) * 50, 10.0, 1));
  }
  assembler_->AdvanceTo(300);
  // Full windows: [0,100), [50,150), [100,200), [150,250), [200,300).
  ASSERT_GE(results_.size(), 5u);
  for (const WindowResult& r : results_) {
    if (r.window_start >= 0 && r.window_end <= 300) {
      EXPECT_DOUBLE_EQ(r.value, 20.0) << "window @" << r.window_start;
    }
  }
}

// ------------------------------------------------- randomized sweeps -----

class ClusterEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterEquivalenceSweep, DecentralizedMatchesCentralizedOnMixedWork) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  std::vector<Query> queries;
  QueryId next_id = 1;
  const int num_queries = 2 + static_cast<int>(rng.NextBounded(6));
  for (int i = 0; i < num_queries; ++i) {
    const int kind = static_cast<int>(rng.NextBounded(4));
    WindowSpec spec;
    switch (kind) {
      case 0:
        spec = WindowSpec::Tumbling(rng.NextInRange(40, 200));
        break;
      case 1: {
        const Timestamp l = rng.NextInRange(60, 300);
        spec = WindowSpec::Sliding(l, std::max<Timestamp>(10, l / 4));
        break;
      }
      case 2:
        spec = WindowSpec::Session(rng.NextInRange(30, 90));
        break;
      default:
        spec = WindowSpec::CountTumbling(rng.NextInRange(20, 60));
        break;
    }
    const AggregationFunction fns[] = {
        AggregationFunction::kSum, AggregationFunction::kAverage,
        AggregationFunction::kMax, AggregationFunction::kMedian};
    // Draw into locals: argument evaluation order is unspecified and the
    // sweep must be reproducible across compilers.
    const AggregationFunction fn = fns[rng.NextBounded(4)];
    const Predicate pred =
        rng.NextBool(0.5)
            ? Predicate::All()
            : Predicate::KeyEquals(static_cast<uint32_t>(rng.NextBounded(2)));
    queries.push_back(MakeQuery(next_id++, spec, fn, pred));
  }

  const int locals = 2 + static_cast<int>(rng.NextBounded(3));
  std::vector<std::vector<Event>> streams(static_cast<size_t>(locals));
  Timestamp max_ts = 0;
  for (auto& stream : streams) {
    Timestamp ts = 0;
    const int n = 150 + static_cast<int>(rng.NextBounded(150));
    for (int i = 0; i < n; ++i) {
      ts += rng.NextInRange(1, 6);
      stream.push_back(
          Ev(ts, static_cast<double>(rng.NextBounded(100)),
             static_cast<uint32_t>(rng.NextBounded(3))));
    }
    max_ts = std::max(max_ts, ts);
  }

  // Decentralized run.
  Cluster cluster(ClusterSystem::kDesis,
                  {locals, static_cast<int>(rng.NextBounded(3))});
  ASSERT_TRUE(cluster.Configure(queries).ok());
  std::map<QueryId, std::map<Timestamp, double>> got;
  std::map<QueryId, std::map<Timestamp, double>> want;
  cluster.set_sink([&](const WindowResult& r) {
    got[r.query_id][r.window_start] = r.value;
  });
  std::vector<size_t> cursor(streams.size(), 0);
  for (Timestamp t = 0; t <= max_ts + 20; t += 20) {
    for (size_t i = 0; i < streams.size(); ++i) {
      const size_t begin = cursor[i];
      while (cursor[i] < streams[i].size() &&
             streams[i][cursor[i]].ts < t + 20) {
        ++cursor[i];
      }
      if (cursor[i] > begin) {
        cluster.IngestAt(static_cast<int>(i), streams[i].data() + begin,
                         cursor[i] - begin);
      }
    }
    cluster.Advance(t + 20);
  }
  cluster.Advance(max_ts + 5000);

  // Centralized reference over the merged stream.
  std::vector<Event> merged;
  for (const auto& stream : streams) {
    merged.insert(merged.end(), stream.begin(), stream.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  DesisEngine ref;
  ASSERT_TRUE(ref.Configure(queries).ok());
  ref.set_sink([&](const WindowResult& r) {
    want[r.query_id][r.window_start] = r.value;
  });
  for (const Event& e : merged) ref.Ingest(e);
  ref.AdvanceTo(max_ts + 5000);

  for (const auto& [qid, windows] : want) {
    if (queries[qid - 1].window.measure == WindowMeasure::kCount) {
      // Count-window boundaries depend on cross-node tie order; checked in
      // DesisCluster.CountWindowsEvaluateAtRoot instead.
      continue;
    }
    auto it = got.find(qid);
    ASSERT_NE(it, got.end()) << "seed " << seed << " query " << qid;
    for (const auto& [ws, value] : windows) {
      auto wit = it->second.find(ws);
      ASSERT_NE(wit, it->second.end())
          << "seed " << seed << " query " << qid << " window @" << ws;
      EXPECT_NEAR(wit->second, value, 1e-9)
          << "seed " << seed << " query " << qid << " window @" << ws;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterEquivalenceSweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace desis
