// Tests for the operator-framework extensions: the user-defined
// sum-of-squares operator (variance / stddev, §4.2.1) and the approximate
// quantile sampling mode.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "core/engine.h"
#include "core/query_parser.h"

namespace desis {
namespace {

TEST(VarianceExtension, Table1Mapping) {
  EXPECT_EQ(OperatorsFor(AggregationFunction::kVariance),
            MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
                MaskOf(OperatorKind::kSumSquares));
  EXPECT_EQ(OperatorsFor(AggregationFunction::kStdDev),
            OperatorsFor(AggregationFunction::kVariance));
  EXPECT_TRUE(IsDecomposable(AggregationFunction::kVariance));
  EXPECT_TRUE(IsDecomposable(AggregationFunction::kStdDev));
}

TEST(VarianceExtension, FinalizeMatchesDefinition) {
  PartialAggregate agg(OperatorsFor(AggregationFunction::kVariance));
  const double values[] = {2, 4, 4, 4, 5, 5, 7, 9};  // classic example
  for (double v : values) agg.Add(v);
  agg.Seal();
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kVariance, 0}), 4.0);
  EXPECT_DOUBLE_EQ(agg.Finalize({AggregationFunction::kStdDev, 0}), 2.0);
}

TEST(VarianceExtension, MergeEqualsSingleShot) {
  const OperatorMask mask = OperatorsFor(AggregationFunction::kVariance);
  PartialAggregate whole(mask);
  PartialAggregate left(mask);
  PartialAggregate right(mask);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(rng.NextBounded(50));
    whole.Add(v);
    (i % 3 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_NEAR(whole.Finalize({AggregationFunction::kVariance, 0}),
              left.Finalize({AggregationFunction::kVariance, 0}), 1e-9);
}

TEST(VarianceExtension, SharesSumAndCountWithAverage) {
  // avg + variance + stddev share {sum, count, sum_sq}: 3 ops per event.
  DesisEngine engine;
  std::vector<Query> queries;
  for (QueryId id = 1; id <= 3; ++id) {
    Query q;
    q.id = id;
    q.window = WindowSpec::Tumbling(10);
    q.agg = {id == 1 ? AggregationFunction::kAverage
             : id == 2 ? AggregationFunction::kVariance
                       : AggregationFunction::kStdDev,
             0};
    queries.push_back(q);
  }
  ASSERT_TRUE(engine.Configure(queries).ok());
  EXPECT_EQ(engine.num_groups(), 1u);
  std::map<QueryId, double> results;
  engine.set_sink([&](const WindowResult& r) { results[r.query_id] = r.value; });
  engine.Ingest({0, 0, 1.0, 0});
  engine.Ingest({2, 0, 3.0, 0});
  engine.AdvanceTo(100);
  EXPECT_DOUBLE_EQ(results[1], 2.0);
  EXPECT_DOUBLE_EQ(results[2], 1.0);
  EXPECT_DOUBLE_EQ(results[3], 1.0);
  EXPECT_EQ(engine.stats().operator_executions, 2u * 3u);
}

TEST(VarianceExtension, ParserAccepts) {
  auto q = QueryParser::Parse(
      "SELECT VARIANCE(value) FROM stream WINDOW TUMBLING(SIZE 1s)", 1);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().agg.fn, AggregationFunction::kVariance);
  auto q2 = QueryParser::Parse(
      "SELECT STDDEV(value) FROM stream WINDOW SESSION(GAP 1s)", 2);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2.value().agg.fn, AggregationFunction::kStdDev);
}

TEST(ApproximateQuantiles, CapBoundsStateSize) {
  SortedState s;
  s.set_sample_cap(64);
  Rng rng(9);
  for (int i = 0; i < 100'000; ++i) {
    s.Add(static_cast<double>(rng.NextBounded(1'000'000)));
  }
  s.Seal();
  EXPECT_LE(s.size(), 64u);
}

TEST(ApproximateQuantiles, QuantilesStayAccurate) {
  SortedState exact;
  SortedState approx;
  approx.set_sample_cap(256);
  Rng rng(10);
  for (int i = 0; i < 50'000; ++i) {
    const double v = static_cast<double>(rng.NextBounded(1'000'000));
    exact.Add(v);
    approx.Add(v);
  }
  exact.Seal();
  approx.Seal();
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    // Rank error O(1/cap) translates to value error ~ range/cap for a
    // uniform distribution; allow 3x slack.
    EXPECT_NEAR(approx.Quantile(q), exact.Quantile(q), 3e6 / 256.0)
        << "q=" << q;
  }
}

TEST(ApproximateQuantiles, MergedSketchesStayBoundedAndAccurate) {
  SortedState exact;
  SortedState a;
  SortedState b;
  a.set_sample_cap(256);
  b.set_sample_cap(256);
  Rng rng(11);
  for (int i = 0; i < 20'000; ++i) {
    const double v = static_cast<double>(rng.NextBounded(100'000));
    exact.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  exact.Seal();
  a.Seal();
  b.Seal();
  a.Merge(b);
  EXPECT_LE(a.size(), 256u);
  EXPECT_NEAR(a.Median(), exact.Median(), 3e5 / 256.0);
}

TEST(ApproximateQuantiles, SerializationPreservesCap) {
  SortedState s;
  s.set_sample_cap(16);
  for (int i = 0; i < 1000; ++i) s.Add(static_cast<double>(i));
  s.Seal();
  ByteWriter out;
  s.SerializeTo(out);
  ByteReader in(out.bytes());
  SortedState back = SortedState::DeserializeFrom(in);
  EXPECT_LE(back.size(), 16u);
  // Merging after deserialization keeps respecting the cap.
  SortedState other;
  other.set_sample_cap(16);
  for (int i = 0; i < 1000; ++i) other.Add(static_cast<double>(i) + 0.5);
  other.Seal();
  back.Merge(other);
  EXPECT_LE(back.size(), 16u);
}

}  // namespace
}  // namespace desis
