#include "core/query_analyzer.h"

#include <gtest/gtest.h>

namespace desis {
namespace {

Query Q(QueryId id, AggregationFunction fn,
        Predicate pred = Predicate::All(),
        WindowSpec window = WindowSpec::Tumbling(100)) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, 0.5};
  q.predicate = pred;
  return q;
}

TEST(QueryAnalyzer, CrossFunctionPolicyMergesEverything) {
  QueryAnalyzer analyzer;
  auto groups = analyzer.Analyze({
      Q(1, AggregationFunction::kSum),
      Q(2, AggregationFunction::kMedian),
      Q(3, AggregationFunction::kMax, Predicate::All(), WindowSpec::Session(10)),
      Q(4, AggregationFunction::kAverage, Predicate::All(),
        WindowSpec::CountTumbling(50)),
  });
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups.value().size(), 1u);
  const QueryGroup& g = groups.value()[0];
  EXPECT_EQ(g.queries.size(), 4u);
  EXPECT_EQ(g.lanes.size(), 1u);
  // Union mask: sum+count (avg, sum) + non-decomp sort (median) — max's
  // decomposable sort is subsumed by the non-decomposable sort.
  EXPECT_TRUE(MaskHas(g.mask, OperatorKind::kSum));
  EXPECT_TRUE(MaskHas(g.mask, OperatorKind::kCount));
  EXPECT_TRUE(MaskHas(g.mask, OperatorKind::kNonDecomposableSort));
  EXPECT_FALSE(MaskHas(g.mask, OperatorKind::kDecomposableSort));
}

TEST(QueryAnalyzer, PerFunctionPolicySplitsByFunctionAndMeasure) {
  QueryAnalyzer analyzer(DeploymentMode::kCentralized,
                         SharingPolicy::kPerFunction);
  auto groups = analyzer.Analyze({
      Q(1, AggregationFunction::kSum),
      Q(2, AggregationFunction::kSum),          // same fn: shares
      Q(3, AggregationFunction::kAverage),      // different fn: splits
      Q(4, AggregationFunction::kSum, Predicate::All(),
        WindowSpec::CountTumbling(50)),         // different measure: splits
  });
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value().size(), 3u);
}

TEST(QueryAnalyzer, DistinctQuantileParamsAreDistinctFunctions) {
  QueryAnalyzer analyzer(DeploymentMode::kCentralized,
                         SharingPolicy::kPerFunction);
  std::vector<Query> queries = {Q(1, AggregationFunction::kQuantile),
                                Q(2, AggregationFunction::kQuantile)};
  queries[0].agg.quantile = 0.5;
  queries[1].agg.quantile = 0.9;
  auto groups = analyzer.Analyze(queries);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value().size(), 2u);  // DeSW cannot share across these

  // ...whereas Desis' cross-function policy shares the sort operator.
  QueryAnalyzer desis;
  EXPECT_EQ(desis.Analyze(queries).value().size(), 1u);
}

TEST(QueryAnalyzer, OverlappingPredicatesSplitIdenticalAndDisjointShare) {
  QueryAnalyzer analyzer;
  auto groups = analyzer.Analyze({
      Q(1, AggregationFunction::kSum, Predicate::KeyEquals(1)),
      Q(2, AggregationFunction::kSum, Predicate::KeyEquals(2)),   // disjoint
      Q(3, AggregationFunction::kMax, Predicate::KeyEquals(1)),   // identical
      Q(4, AggregationFunction::kSum, Predicate::All()),          // overlaps
  });
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups.value().size(), 2u);
  EXPECT_EQ(groups.value()[0].queries.size(), 3u);
  EXPECT_EQ(groups.value()[0].lanes.size(), 2u);  // key=1 and key=2 lanes
  EXPECT_EQ(groups.value()[1].queries.size(), 1u);
}

TEST(QueryAnalyzer, DedupFlagMakesSeparateLane) {
  Query plain = Q(1, AggregationFunction::kCount, Predicate::KeyEquals(1));
  Query dedup = Q(2, AggregationFunction::kCount, Predicate::KeyEquals(1));
  dedup.deduplicate = true;
  QueryAnalyzer analyzer;
  auto groups = analyzer.Analyze({plain, dedup});
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups.value().size(), 1u);
  EXPECT_EQ(groups.value()[0].lanes.size(), 2u);
  EXPECT_NE(groups.value()[0].lanes[0].deduplicate,
            groups.value()[0].lanes[1].deduplicate);
}

TEST(QueryAnalyzer, DecentralizedModeSendsCountWindowsToRoot) {
  QueryAnalyzer analyzer(DeploymentMode::kDecentralized,
                         SharingPolicy::kCrossFunction);
  auto groups = analyzer.Analyze({
      Q(1, AggregationFunction::kSum),
      Q(2, AggregationFunction::kSum, Predicate::All(),
        WindowSpec::CountTumbling(100)),
      Q(3, AggregationFunction::kMedian),  // non-decomposable still pushes
                                           // down (sorted slice batches)
  });
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups.value().size(), 2u);
  int root_only = 0;
  for (const QueryGroup& g : groups.value()) {
    root_only += g.root_only ? 1 : 0;
    if (g.root_only) {
      ASSERT_EQ(g.queries.size(), 1u);
      EXPECT_EQ(g.queries[0].query.id, 2u);
    }
  }
  EXPECT_EQ(root_only, 1);
}

TEST(QueryAnalyzer, RejectsInvalidAndDuplicateQueries) {
  QueryAnalyzer analyzer;
  Query bad = Q(1, AggregationFunction::kSum);
  bad.window.length = -5;
  EXPECT_FALSE(analyzer.Analyze({bad}).ok());

  EXPECT_FALSE(analyzer
                   .Analyze({Q(1, AggregationFunction::kSum),
                             Q(1, AggregationFunction::kMax)})
                   .ok());
}

TEST(QueryAnalyzer, PerQueryPolicyIsolatesEveryQuery) {
  QueryAnalyzer analyzer(DeploymentMode::kCentralized,
                         SharingPolicy::kPerQuery);
  auto groups = analyzer.Analyze({Q(1, AggregationFunction::kSum),
                                  Q(2, AggregationFunction::kSum),
                                  Q(3, AggregationFunction::kSum)});
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value().size(), 3u);
}

TEST(QueryAnalyzer, GroupIdsAreDense) {
  QueryAnalyzer analyzer;
  auto groups = analyzer.Analyze({
      Q(1, AggregationFunction::kSum, Predicate::All()),
      Q(2, AggregationFunction::kSum, Predicate::KeyEquals(1)),  // overlaps 1
      Q(3, AggregationFunction::kSum, Predicate::KeyEquals(1)),  // joins 2
  });
  ASSERT_TRUE(groups.ok());
  for (size_t i = 0; i < groups.value().size(); ++i) {
    EXPECT_EQ(groups.value()[i].id, i);
  }
}

}  // namespace
}  // namespace desis
