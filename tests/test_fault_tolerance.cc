#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "net/cluster.h"

namespace desis {
namespace {

Query AvgQuery(QueryId id, Timestamp length) {
  Query q;
  q.id = id;
  q.window = WindowSpec::Tumbling(length);
  q.agg = {AggregationFunction::kAverage, 0};
  return q;
}

Event Ev(Timestamp ts, double v) { return {ts, 0, v, kNoMarker}; }

TEST(FaultTolerance, RemovedLocalStopsBlockingWatermarks) {
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  std::map<Timestamp, WindowResult> results;
  cluster.set_sink([&](const WindowResult& r) { results[r.window_start] = r; });

  // All three locals feed the first 200 time units.
  for (int i = 0; i < 3; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 200; t += 10) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(200);
  EXPECT_TRUE(results.contains(0));
  EXPECT_TRUE(results.contains(100));

  // Local 2 dies. Without removal, windows would stall forever because its
  // watermark never advances; after removal the rest make progress.
  ASSERT_TRUE(cluster.RemoveLocalNode(2).ok());
  EXPECT_FALSE(cluster.RemoveLocalNode(2).ok());  // idempotence check
  EXPECT_FALSE(cluster.local_active(2));

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 200 + i; t < 400; t += 10) events.push_back(Ev(t, 2.0));
    cluster.IngestAt(i, events.data(), events.size());
    cluster.AdvanceAt(i, 400);
  }
  ASSERT_TRUE(results.contains(300));
  EXPECT_DOUBLE_EQ(results[300].value, 2.0);
  // The dead node's events are gone: only 2 locals * 10 events per window.
  EXPECT_EQ(results[300].event_count, 20u);
}

TEST(FaultTolerance, SilentNodeSweepRemovesLaggards) {
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  uint64_t fired = 0;
  cluster.set_sink([&](const WindowResult&) { ++fired; });

  for (int i = 0; i < 3; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 150; t += 10) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  // Only locals 0 and 1 keep advancing; local 2 goes silent at 150.
  cluster.AdvanceAt(0, 150);
  cluster.AdvanceAt(1, 150);
  cluster.AdvanceAt(2, 150);
  cluster.AdvanceAt(0, 600);
  cluster.AdvanceAt(1, 600);

  auto removed = cluster.RemoveSilentLocals(/*min_watermark=*/300);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 2);

  // Watermarks recompute after the sweep; the pending window [100,200)
  // (the only remaining one with events) fires.
  cluster.AdvanceAt(0, 700);
  cluster.AdvanceAt(1, 700);
  EXPECT_EQ(fired, 2u);
}

TEST(FaultTolerance, NodeJoinsAtRuntime) {
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  std::map<Timestamp, WindowResult> results;
  cluster.set_sink([&](const WindowResult& r) { results[r.window_start] = r; });

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 100; t += 10) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(100);

  auto added = cluster.AddLocalNode();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const int new_local = added.value();
  EXPECT_EQ(new_local, 2);

  for (int i = 0; i < 3; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 100 + i; t < 300; t += 10) events.push_back(Ev(t, 3.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(400);

  ASSERT_TRUE(results.contains(100));
  // Window [100,200): 3 locals * 10 events each.
  EXPECT_EQ(results[100].event_count, 30u);
  EXPECT_DOUBLE_EQ(results[100].value, 3.0);
}

TEST(FaultTolerance, RuntimeQueryAddAndRemove) {
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  std::map<QueryId, int> fired;
  cluster.set_sink([&](const WindowResult& r) { ++fired[r.query_id]; });

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 200; t += 5) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(200);

  // Add a sum query at runtime; reject duplicate ids.
  Query added = AvgQuery(2, 50);
  added.agg.fn = AggregationFunction::kSum;
  ASSERT_TRUE(cluster.AddQuery(added).ok());
  EXPECT_FALSE(cluster.AddQuery(added).ok());

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 200 + i; t < 400; t += 5) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(400);
  EXPECT_GT(fired[1], 0);
  EXPECT_GT(fired[2], 0);

  // Remove query 1; its results stop, query 2 continues.
  ASSERT_TRUE(cluster.RemoveQuery(1).ok());
  EXPECT_FALSE(cluster.RemoveQuery(99).ok());
  const int q1_before = fired[1];
  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 400 + i; t < 600; t += 5) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(700);
  EXPECT_EQ(fired[1], q1_before);
  EXPECT_GT(fired[2], 4);
}

TEST(FaultTolerance, MembershipOpsRejectedOnCentralizedSystems) {
  Cluster cluster(ClusterSystem::kScotty, {2, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  EXPECT_FALSE(cluster.AddLocalNode().ok());
  EXPECT_FALSE(cluster.RemoveLocalNode(0).ok());
  EXPECT_FALSE(cluster.AddQuery(AvgQuery(2, 100)).ok());
  EXPECT_FALSE(cluster.RemoveQuery(1).ok());
}

}  // namespace
}  // namespace desis
