#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "net/chaos.h"
#include "net/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transport/sim_link_transport.h"
#include "transport/threaded_transport.h"

namespace desis {
namespace {

Query AvgQuery(QueryId id, Timestamp length) {
  Query q;
  q.id = id;
  q.window = WindowSpec::Tumbling(length);
  q.agg = {AggregationFunction::kAverage, 0};
  return q;
}

Event Ev(Timestamp ts, double v) { return {ts, 0, v, kNoMarker}; }

TEST(FaultTolerance, RemovedLocalStopsBlockingWatermarks) {
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  std::map<Timestamp, WindowResult> results;
  cluster.set_sink([&](const WindowResult& r) { results[r.window_start] = r; });

  // All three locals feed the first 200 time units.
  for (int i = 0; i < 3; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 200; t += 10) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(200);
  EXPECT_TRUE(results.contains(0));
  EXPECT_TRUE(results.contains(100));

  // Local 2 dies. Without removal, windows would stall forever because its
  // watermark never advances; after removal the rest make progress.
  ASSERT_TRUE(cluster.RemoveLocalNode(2).ok());
  EXPECT_FALSE(cluster.RemoveLocalNode(2).ok());  // idempotence check
  EXPECT_FALSE(cluster.local_active(2));

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 200 + i; t < 400; t += 10) events.push_back(Ev(t, 2.0));
    cluster.IngestAt(i, events.data(), events.size());
    cluster.AdvanceAt(i, 400);
  }
  ASSERT_TRUE(results.contains(300));
  EXPECT_DOUBLE_EQ(results[300].value, 2.0);
  // The dead node's events are gone: only 2 locals * 10 events per window.
  EXPECT_EQ(results[300].event_count, 20u);
}

TEST(FaultTolerance, SilentNodeSweepRemovesLaggards) {
  Cluster cluster(ClusterSystem::kDesis, {3, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  uint64_t fired = 0;
  cluster.set_sink([&](const WindowResult&) { ++fired; });

  for (int i = 0; i < 3; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 150; t += 10) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  // Only locals 0 and 1 keep advancing; local 2 goes silent at 150.
  cluster.AdvanceAt(0, 150);
  cluster.AdvanceAt(1, 150);
  cluster.AdvanceAt(2, 150);
  cluster.AdvanceAt(0, 600);
  cluster.AdvanceAt(1, 600);

  auto removed = cluster.RemoveSilentLocals(/*min_watermark=*/300);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 2);

  // Watermarks recompute after the sweep; the pending window [100,200)
  // (the only remaining one with events) fires.
  cluster.AdvanceAt(0, 700);
  cluster.AdvanceAt(1, 700);
  EXPECT_EQ(fired, 2u);
}

TEST(FaultTolerance, NodeJoinsAtRuntime) {
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  std::map<Timestamp, WindowResult> results;
  cluster.set_sink([&](const WindowResult& r) { results[r.window_start] = r; });

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 100; t += 10) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(100);

  auto added = cluster.AddLocalNode();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const int new_local = added.value();
  EXPECT_EQ(new_local, 2);

  for (int i = 0; i < 3; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 100 + i; t < 300; t += 10) events.push_back(Ev(t, 3.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(400);

  ASSERT_TRUE(results.contains(100));
  // Window [100,200): 3 locals * 10 events each.
  EXPECT_EQ(results[100].event_count, 30u);
  EXPECT_DOUBLE_EQ(results[100].value, 3.0);
}

TEST(FaultTolerance, RuntimeQueryAddAndRemove) {
  Cluster cluster(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  std::map<QueryId, int> fired;
  cluster.set_sink([&](const WindowResult& r) { ++fired[r.query_id]; });

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = i; t < 200; t += 5) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(200);

  // Add a sum query at runtime; reject duplicate ids.
  Query added = AvgQuery(2, 50);
  added.agg.fn = AggregationFunction::kSum;
  ASSERT_TRUE(cluster.AddQuery(added).ok());
  EXPECT_FALSE(cluster.AddQuery(added).ok());

  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 200 + i; t < 400; t += 5) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(400);
  EXPECT_GT(fired[1], 0);
  EXPECT_GT(fired[2], 0);

  // Remove query 1; its results stop, query 2 continues.
  ASSERT_TRUE(cluster.RemoveQuery(1).ok());
  EXPECT_FALSE(cluster.RemoveQuery(99).ok());
  const int q1_before = fired[1];
  for (int i = 0; i < 2; ++i) {
    std::vector<Event> events;
    for (Timestamp t = 400 + i; t < 600; t += 5) events.push_back(Ev(t, 1.0));
    cluster.IngestAt(i, events.data(), events.size());
  }
  cluster.Advance(700);
  EXPECT_EQ(fired[1], q1_before);
  EXPECT_GT(fired[2], 4);
}

TEST(FaultTolerance, MembershipOpsRejectedOnCentralizedSystems) {
  Cluster cluster(ClusterSystem::kScotty, {2, 1});
  ASSERT_TRUE(cluster.Configure({AvgQuery(1, 100)}).ok());
  EXPECT_FALSE(cluster.AddLocalNode().ok());
  EXPECT_FALSE(cluster.RemoveLocalNode(0).ok());
  EXPECT_FALSE(cluster.AddQuery(AvgQuery(2, 100)).ok());
  EXPECT_FALSE(cluster.RemoveQuery(1).ok());
}

// --- Chaos harness: crash recovery with slice-id replay --------------------
//
// Each schedule runs twice over byte-identical seeded input: once
// undisturbed, once with faults injected in virtual stream time. The
// canonical final-window sets must match exactly — zero lost windows, zero
// duplicates (docs/FAULT_TOLERANCE.md). Aggregates use integer values so
// replay-induced merge reordering cannot perturb doubles.

ClusterOptions RecoveryOn() {
  ClusterOptions options;
  options.recovery.enabled = true;
  return options;
}

std::vector<Query> ChaosQueries() {
  Query sum = AvgQuery(1, 1000);
  sum.agg.fn = AggregationFunction::kSum;
  Query avg = AvgQuery(2, 2000);
  return {sum, avg};
}

/// Runs `schedule` on a fresh SimLink-backed Desis cluster and returns
/// (canonical windows, StatsReport).
struct ChaosRun {
  std::string canonical;
  std::string stats;
};

ChaosRun RunChaos(const ChaosSchedule& schedule, const ChaosStreamConfig& cfg,
                  ClusterTopology topology, double drop_probability = 0.0) {
  Cluster cluster(ClusterSystem::kDesis, topology, RecoveryOn());
  SimLinkConfig link;
  link.latency_us = 20;
  link.drop_probability = drop_probability;
  link.seed = 99;
  cluster.set_transport(std::make_unique<SimLinkTransport>(link));
  ChaosResultLog log;
  cluster.set_sink(log.Sink());
  EXPECT_TRUE(cluster.Configure(ChaosQueries()).ok());
  ChaosRunner runner(&cluster, cfg);
  runner.Run(schedule);
  return {log.Canonical(), cluster.StatsReport()};
}

TEST(ChaosHarness, IntermediateCrashLosesAndDuplicatesNothing) {
  ChaosStreamConfig cfg;
  cfg.end = 20'000;
  const ClusterTopology topology{4, 2, 1};
  const ChaosRun baseline = RunChaos({}, cfg, topology);
  ASSERT_FALSE(baseline.canonical.empty());

  ChaosSchedule schedule;
  schedule.actions.push_back(
      {ChaosAction::Kind::kCrashIntermediate, /*at_watermark=*/9'500, 0});
  const ChaosRun chaos = RunChaos(schedule, cfg, topology);

  EXPECT_EQ(chaos.canonical, baseline.canonical);
  // The crash actually exercised recovery: a reattach happened and slices
  // were replayed from the orphans' resend buffers.
  EXPECT_NE(chaos.stats.find("\"reattaches\":"), std::string::npos);
  EXPECT_EQ(chaos.stats.find("\"reattaches\":0,"), std::string::npos)
      << chaos.stats;
  EXPECT_EQ(chaos.stats.find("\"replayed_slices\":0,"), std::string::npos)
      << chaos.stats;
}

// Regression: units can reach the root out of order after a reattach.
// The crash here lands right after the surviving intermediate already
// forwarded the current range for its own children, so the orphans'
// replayed partials form a held (never-completing) entry at the new
// parent and flush *behind* the next range's complete entry. A monotone
// frontier would judge the late merge stale and silently halve one
// window; the root's exact applied-tracking (OriginProgress) must not.
TEST(ChaosHarness, ReplayedRangeFlushedBehindNewerSlicesIsNotStale) {
  using Key = std::tuple<uint32_t, int64_t, int64_t>;
  std::map<Key, double> out[2];
  for (int variant = 0; variant < 2; ++variant) {
    Cluster cluster(ClusterSystem::kDesis, {4, 2, 1}, RecoveryOn());
    SimLinkConfig link;
    link.latency_us = 15;
    link.seed = 7;
    cluster.set_transport(std::make_unique<SimLinkTransport>(link));
    cluster.set_sink([&, variant](const WindowResult& r) {
      out[variant][{r.query_id, r.window_start, r.window_end}] = r.value;
    });
    ASSERT_TRUE(cluster.Configure(ChaosQueries()).ok());
    for (int64_t ts = 0; ts < 12'000; ts += 10) {
      for (int l = 0; l < 4; ++l) {
        Event e{ts, /*key=*/0, static_cast<double>((ts + l) % 97), 0};
        cluster.IngestAt(l, &e, 1);
      }
      // Crash after every local ingested ts=6000: the [5000,6000) slices
      // are sealed and shipped, the survivor's side already merged.
      if (variant == 1 && ts == 6'000) {
        ASSERT_TRUE(cluster.CrashIntermediate(1).ok());
      }
      if (ts % 500 == 0) {
        for (int l = 0; l < 4; ++l) cluster.AdvanceAt(l, ts - 1'500);
      }
    }
    for (int l = 0; l < 4; ++l) cluster.AdvanceAt(l, 13'000);
    cluster.Drain();
    if (variant == 1) {
      EXPECT_GT(cluster.recovery_reattaches(), 0u);
      EXPECT_GT(cluster.recovery_replayed(), 0u);
    }
  }
  ASSERT_FALSE(out[0].empty());
  EXPECT_EQ(out[0], out[1]);
}

TEST(ChaosHarness, LocalCrashAndReattachLosesNothing) {
  ChaosStreamConfig cfg;
  cfg.end = 20'000;
  const ClusterTopology topology{4, 2, 1};
  const ChaosRun baseline = RunChaos({}, cfg, topology);

  // The local goes dark for four rounds but keeps ingesting: every event
  // from the dark period must surface after the reattach replay.
  ChaosSchedule schedule;
  schedule.actions.push_back(
      {ChaosAction::Kind::kDeclareLocalDead, /*at_watermark=*/8'000, 2});
  schedule.actions.push_back(
      {ChaosAction::Kind::kReattachLocal, /*at_watermark=*/10'000, 2});
  const ChaosRun chaos = RunChaos(schedule, cfg, topology);

  EXPECT_EQ(chaos.canonical, baseline.canonical);
  EXPECT_EQ(chaos.stats.find("\"replayed_slices\":0,"), std::string::npos)
      << chaos.stats;
}

TEST(ChaosHarness, TransientPartitionHealsWithoutAppLevelRecovery) {
  ChaosStreamConfig cfg;
  cfg.end = 20'000;
  const ClusterTopology topology{4, 2, 1};
  const ChaosRun baseline = RunChaos({}, cfg, topology);

  // Link down for one round, healed without declaring anything dead: the
  // SimLink parked-RTO retransmission absorbs the outage below the
  // recovery protocol (zero reattaches), and nothing is lost.
  ChaosSchedule schedule;
  schedule.actions.push_back(
      {ChaosAction::Kind::kPartitionLocal, /*at_watermark=*/9'000, 1});
  schedule.actions.push_back(
      {ChaosAction::Kind::kHealLocal, /*at_watermark=*/10'000, 1});
  const ChaosRun chaos = RunChaos(schedule, cfg, topology);

  EXPECT_EQ(chaos.canonical, baseline.canonical);
  EXPECT_NE(chaos.stats.find("\"reattaches\":0,"), std::string::npos)
      << chaos.stats;
}

TEST(ChaosHarness, SilentKillIsCaughtByTheSweep) {
  ChaosStreamConfig cfg;
  cfg.end = 20'000;
  const ClusterTopology topology{4, 2, 1};
  const ChaosRun baseline = RunChaos({}, cfg, topology);

  // The transport severs the intermediate silently; two rounds later the
  // watermark sweep notices the frozen advertisement and runs the full
  // crash-recovery path.
  ChaosSchedule schedule;
  schedule.actions.push_back(
      {ChaosAction::Kind::kSilentKillIntermediate, /*at_watermark=*/8'000, 1});
  schedule.actions.push_back(
      {ChaosAction::Kind::kSweepRecover, /*at_watermark=*/11'000, 0});
  const ChaosRun chaos = RunChaos(schedule, cfg, topology);

  EXPECT_EQ(chaos.canonical, baseline.canonical);
  EXPECT_EQ(chaos.stats.find("\"reattaches\":0,"), std::string::npos)
      << chaos.stats;
}

TEST(ChaosHarness, SameSeedYieldsByteIdenticalRuns) {
  ChaosStreamConfig cfg;
  cfg.end = 16'000;
  const ClusterTopology topology{4, 2, 1};
  const ChaosSchedule schedule = MakeSeededSchedule(
      /*seed=*/1234, topology.num_intermediates, topology.num_locals, cfg);
  ASSERT_FALSE(schedule.actions.empty());

  // Virtual time + seeded everything: two runs of the same schedule match
  // byte-for-byte, including the recovery counters in StatsReport.
  const ChaosRun a = RunChaos(schedule, cfg, topology, /*drop=*/0.05);
  const ChaosRun b = RunChaos(schedule, cfg, topology, /*drop=*/0.05);
  EXPECT_EQ(a.canonical, b.canonical);
  const auto recovery_section = [](const std::string& stats) {
    const size_t from = stats.find("\"recovery\":");
    const size_t to = stats.find('}', from);
    return stats.substr(from, to - from + 1);
  };
  ASSERT_NE(a.stats.find("\"recovery\":"), std::string::npos);
  EXPECT_EQ(recovery_section(a.stats), recovery_section(b.stats));
}

TEST(ChaosHarness, SessionWindowSurvivesLocalCrashWithZeroEventLoss) {
  // Session windows are the consume-once path at the root (PR 5 watermark
  // pinning): a crash mid-session must neither lose nor double-count any
  // event in the assembled session.
  Query session;
  session.id = 1;
  session.window = WindowSpec::Session(/*gap=*/600);
  session.agg = {AggregationFunction::kSum, 0};

  auto run = [&](bool crash) {
    Cluster cluster(ClusterSystem::kDesis, {4, 2, 1}, RecoveryOn());
    cluster.set_transport(std::make_unique<SimLinkTransport>());
    ChaosResultLog log;
    cluster.set_sink(log.Sink());
    EXPECT_TRUE(cluster.Configure({session}).ok());
    ChaosStreamConfig cfg;
    cfg.end = 12'000;  // one long session: gaps never exceed 600
    ChaosSchedule schedule;
    if (crash) {
      schedule.actions.push_back(
          {ChaosAction::Kind::kDeclareLocalDead, /*at_watermark=*/4'000, 0});
      schedule.actions.push_back(
          {ChaosAction::Kind::kReattachLocal, /*at_watermark=*/7'000, 0});
    }
    ChaosRunner(&cluster, cfg).Run(schedule);
    return log.Canonical();
  };

  const std::string baseline = run(/*crash=*/false);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run(/*crash=*/true), baseline);
}

TEST(ChaosHarness, ReattachAndReplaySpansLandInTheChromeTrace) {
  Cluster cluster(ClusterSystem::kDesis, {4, 2, 1}, RecoveryOn());
  cluster.set_transport(std::make_unique<SimLinkTransport>());
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(4096);
  cluster.AttachObs(&registry, &tracer);
  ChaosResultLog log;
  cluster.set_sink(log.Sink());
  ASSERT_TRUE(cluster.Configure(ChaosQueries()).ok());

  // A dark-period local guarantees replay: while its uplink is dead it keeps
  // ingesting and buffering, and no ack can reach it — so at reattach its
  // unacked slices are unknown to the root and must be re-sent. (An
  // intermediate crash may legitimately replay nothing when every held
  // entry had already been forwarded upstream.)
  ChaosStreamConfig cfg;
  cfg.end = 12'000;
  ChaosSchedule schedule;
  schedule.actions.push_back(
      {ChaosAction::Kind::kDeclareLocalDead, /*at_watermark=*/6'000, 1});
  schedule.actions.push_back(
      {ChaosAction::Kind::kReattachLocal, /*at_watermark=*/9'000, 1});
  ChaosRunner(&cluster, cfg).Run(schedule);

  // Recovery happened regardless of the build flavor...
  EXPECT_EQ(cluster.recovery_reattaches(), 1u);
  EXPECT_GT(cluster.recovery_replayed(), 0u);
#if DESIS_OBS_ENABLED
  // ...and with observability compiled in, its latency is visible per
  // orphan: a reattach span for the re-elected child, replay spans for each
  // re-sent slice, and the recovery.* metrics carry the aggregate counters.
  const std::string trace = tracer.ToChromeTrace();
  EXPECT_NE(trace.find("reattach"), std::string::npos);
  EXPECT_NE(trace.find("replay"), std::string::npos);
  const std::string metrics = registry.ToJson();
  EXPECT_NE(metrics.find("recovery.reattaches"), std::string::npos);
  EXPECT_NE(metrics.find("recovery.replayed_slices"), std::string::npos);
  EXPECT_NE(metrics.find("recovery.reattach_latency_us"), std::string::npos);
  EXPECT_NE(metrics.find("recovery.resend_buffer_bytes"), std::string::npos);
#endif  // DESIS_OBS_ENABLED
}

TEST(ChaosHarness, RecoveryWorksOnInlineAndThreadedTransports) {
  // Without link-level fault support the crash degrades gracefully (the
  // "dead" node keeps relaying until detached; replay is frontier-trimmed
  // to nothing at the root) — still zero lost, zero duplicated windows.
  ChaosStreamConfig cfg;
  cfg.end = 12'000;
  ChaosSchedule schedule;
  schedule.actions.push_back(
      {ChaosAction::Kind::kCrashIntermediate, /*at_watermark=*/6'000, 0});
  for (int threaded = 0; threaded < 2; ++threaded) {
    auto run = [&](const ChaosSchedule& s) {
      Cluster cluster(ClusterSystem::kDesis, {4, 2, 1}, RecoveryOn());
      if (threaded) {
        cluster.set_transport(std::make_unique<ThreadedTransport>());
      }
      ChaosResultLog log;
      cluster.set_sink(log.Sink());
      EXPECT_TRUE(cluster.Configure(ChaosQueries()).ok());
      ChaosRunner(&cluster, cfg).Run(s);
      return log.Canonical();
    };
    const std::string baseline = run({});
    ASSERT_FALSE(baseline.empty());
    EXPECT_EQ(run(schedule), baseline) << "threaded=" << threaded;
  }
}

TEST(ChaosHarness, RecoveryOpsRequireOptIn) {
  Cluster plain(ClusterSystem::kDesis, {2, 1});
  ASSERT_TRUE(plain.Configure({AvgQuery(1, 100)}).ok());
  EXPECT_FALSE(plain.CrashIntermediate(0).ok());
  EXPECT_FALSE(plain.DeclareLocalDead(0).ok());
  EXPECT_FALSE(plain.ReattachLocal(0).ok());
  EXPECT_TRUE(plain.RecoverSilentIntermediates(100).empty());

  ClusterOptions options;
  options.recovery.enabled = true;
  Cluster baseline(ClusterSystem::kScotty, {2, 1}, options);
  EXPECT_FALSE(baseline.Configure({AvgQuery(1, 100)}).ok());

  Cluster enabled(ClusterSystem::kDesis, {2, 1}, RecoveryOn());
  ASSERT_TRUE(enabled.Configure({AvgQuery(1, 100)}).ok());
  EXPECT_FALSE(enabled.CrashIntermediate(7).ok());   // out of range
  EXPECT_FALSE(enabled.ReattachLocal(0).ok());       // not declared dead
  ASSERT_TRUE(enabled.DeclareLocalDead(0).ok());
  EXPECT_FALSE(enabled.DeclareLocalDead(0).ok());    // already dead
  EXPECT_TRUE(enabled.ReattachLocal(0).ok());
}

}  // namespace
}  // namespace desis
