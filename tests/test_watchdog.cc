// Flight recorder + health watchdog (src/obs/flight_recorder.h,
// src/obs/health_monitor.h, docs/FAULT_TOLERANCE.md "Automatic failure
// detection"). Three layers:
//
//  - HealthMonitor detector semantics on synthetic probes, driven
//    deterministically with TickForTest (no thread, no clocks): each typed
//    anomaly, the grace-window false-positive guards, the once-per-episode
//    latches, and the auto-recovery targeting guard.
//  - The cluster integration: a silently severed intermediate detected and
//    crash-recovered by watchdog ticks alone — zero driver recovery calls —
//    with the byte-identical window set of an undisturbed run; plus a
//    live-thread smoke against concurrent drivers (run under TSan in CI).
//  - The recorder ring under concurrent writers (TSan) and the dump ->
//    desis-inspect postmortem round trip.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "inspect_lib.h"
#include "net/cluster.h"
#include "obs/flight_recorder.h"
#include "obs/health_monitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transport/sim_link_transport.h"

namespace desis {
namespace {

#if DESIS_OBS_ENABLED

// ------------------------------------------------- detector semantics --

/// A hand-driven topology: the test mutates `probes` between ticks and the
/// monitor sees exactly that state. Anomalies and recover calls are
/// captured verbatim.
struct MonitorFixture {
  std::vector<obs::NodeProbe> probes;
  std::vector<std::pair<obs::AnomalyKind, uint32_t>> anomalies;
  std::vector<Timestamp> recover_watermarks;
  bool recover_result = true;
  std::unique_ptr<obs::HealthMonitor> monitor;

  explicit MonitorFixture(const obs::WatchdogOptions& options) {
    probes.reserve(16);  // node() hands out references across inserts
    obs::WatchdogHooks hooks;
    hooks.probe = [this] { return probes; };
    hooks.on_anomaly = [this](obs::AnomalyKind kind, uint32_t node) {
      anomalies.emplace_back(kind, node);
    };
    hooks.recover = [this](Timestamp wm) {
      recover_watermarks.push_back(wm);
      return recover_result;
    };
    monitor = std::make_unique<obs::HealthMonitor>(options, std::move(hooks));
  }

  obs::NodeProbe& node(uint32_t id) {
    for (obs::NodeProbe& p : probes) {
      if (p.node_id == id) return p;
    }
    probes.emplace_back();
    probes.back().node_id = id;
    return probes.back();
  }

  void Tick() { monitor->TickForTest(); }
};

obs::WatchdogOptions FastOptions() {
  obs::WatchdogOptions options;
  options.enabled = true;
  options.period_ms = 0;  // no thread; ticks only
  options.silence_threshold = 2;
  options.grace_us = 1000;
  return options;
}

TEST(Watchdog, SilentNodeRaisesOnceAndAutoRecovers) {
  MonitorFixture fix(FastOptions());
  obs::NodeProbe& healthy = fix.node(1);
  healthy.recoverable = true;
  healthy.heartbeats = 10;
  healthy.watermark = 1000;
  obs::NodeProbe& silent = fix.node(2);
  silent.recoverable = true;
  silent.heartbeats = 10;
  silent.watermark = 1000;

  fix.Tick();  // baseline sample: tracks initialize, nothing can fire
  for (int round = 0; round < 6; ++round) {
    healthy.heartbeats += 5;
    healthy.watermark += 500;  // silent node lags past grace_us quickly
    fix.Tick();
  }

  ASSERT_EQ(fix.anomalies.size(), 1u);  // latched: one raise per episode
  EXPECT_EQ(fix.anomalies[0].first, obs::AnomalyKind::kSilentNode);
  EXPECT_EQ(fix.anomalies[0].second, 2u);
  EXPECT_EQ(fix.monitor->anomalies(), 1u);
  // Auto-recovery fired exactly once (the suspect flag clears after a
  // successful recover), targeting the healthy floor as of the detecting
  // sample: past the suspect's frozen watermark, at or below the healthy
  // node's final one.
  ASSERT_EQ(fix.recover_watermarks.size(), 1u);
  EXPECT_GT(fix.recover_watermarks[0], 1000);
  EXPECT_LE(fix.recover_watermarks[0], fix.node(1).watermark);
  EXPECT_EQ(fix.monitor->auto_recoveries(), 1u);

  // The recovered node is declared dead: probes skip it, nothing re-fires.
  silent.alive = false;
  for (int round = 0; round < 4; ++round) {
    healthy.heartbeats += 5;
    healthy.watermark += 500;
    fix.Tick();
  }
  EXPECT_EQ(fix.anomalies.size(), 1u);
  EXPECT_EQ(fix.recover_watermarks.size(), 1u);
}

TEST(Watchdog, IdleTopologyRaisesNothing) {
  // Stream end: every node freezes at the same watermark. Heartbeats stop
  // everywhere, but nobody lags the frontier, so the silence detector must
  // stay quiet no matter how long the idle lasts.
  MonitorFixture fix(FastOptions());
  for (uint32_t id = 1; id <= 3; ++id) {
    obs::NodeProbe& p = fix.node(id);
    p.heartbeats = 100;
    p.watermark = 5000;
  }
  for (int round = 0; round < 20; ++round) fix.Tick();
  EXPECT_TRUE(fix.anomalies.empty());
  EXPECT_EQ(fix.monitor->samples(), 20u);
}

TEST(Watchdog, NodeBehindByLessThanGraceIsHealthy) {
  MonitorFixture fix(FastOptions());
  obs::NodeProbe& ahead = fix.node(1);
  ahead.heartbeats = 1;
  ahead.watermark = 0;
  obs::NodeProbe& behind = fix.node(2);
  behind.heartbeats = 1;
  behind.watermark = 0;
  fix.Tick();
  for (int round = 0; round < 10; ++round) {
    ahead.heartbeats += 1;
    ahead.watermark += 100;
    behind.watermark = ahead.watermark - 900;  // inside grace_us = 1000
    fix.Tick();
  }
  EXPECT_TRUE(fix.anomalies.empty());
}

TEST(Watchdog, WatermarkStallNeedsMovingHeartbeats) {
  MonitorFixture fix(FastOptions());
  obs::NodeProbe& ahead = fix.node(1);
  ahead.heartbeats = 1;
  ahead.watermark = 1000;
  obs::NodeProbe& stalled = fix.node(2);
  stalled.heartbeats = 1;
  stalled.watermark = 1000;
  fix.Tick();
  for (int round = 0; round < 6; ++round) {
    ahead.heartbeats += 1;
    ahead.watermark += 600;
    stalled.heartbeats += 1;  // alive and receiving — just not advancing
    fix.Tick();
  }
  ASSERT_EQ(fix.anomalies.size(), 1u);
  EXPECT_EQ(fix.anomalies[0].first, obs::AnomalyKind::kWatermarkStall);
  EXPECT_EQ(fix.anomalies[0].second, 2u);

  // The stall heals: watermark catches up, the latch clears, and a second
  // episode raises again.
  stalled.watermark = ahead.watermark;
  fix.Tick();
  for (int round = 0; round < 6; ++round) {
    ahead.heartbeats += 1;
    ahead.watermark += 600;
    stalled.heartbeats += 1;
    fix.Tick();
  }
  EXPECT_EQ(fix.anomalies.size(), 2u);
}

TEST(Watchdog, MailboxGrowthNeedsStrictGrowth) {
  MonitorFixture fix(FastOptions());
  obs::NodeProbe& p = fix.node(1);
  p.heartbeats = 1;
  fix.Tick();
  for (int round = 0; round < 4; ++round) {
    p.heartbeats += 1;
    p.mailbox_depth += 10;  // strictly increasing
    fix.Tick();
  }
  ASSERT_EQ(fix.anomalies.size(), 1u);
  EXPECT_EQ(fix.anomalies[0].first, obs::AnomalyKind::kMailboxGrowth);

  // Plateau: the streak resets and nothing new fires while the latch
  // holds at this depth.
  for (int round = 0; round < 4; ++round) {
    p.heartbeats += 1;
    fix.Tick();
  }
  EXPECT_EQ(fix.anomalies.size(), 1u);

  // Backlog drains, then grows again: a fresh episode.
  p.mailbox_depth = 0;
  fix.Tick();
  for (int round = 0; round < 4; ++round) {
    p.heartbeats += 1;
    p.mailbox_depth += 10;
    fix.Tick();
  }
  EXPECT_EQ(fix.anomalies.size(), 2u);
}

TEST(Watchdog, SpillThrashNeedsRestoresEverySample) {
  MonitorFixture fix(FastOptions());
  obs::NodeProbe& p = fix.node(1);
  p.heartbeats = 1;
  fix.Tick();
  // Restores every other sample: never `threshold` consecutive, no raise.
  for (int round = 0; round < 8; ++round) {
    p.heartbeats += 1;
    if (round % 2 == 0) p.spill_restores += 3;
    fix.Tick();
  }
  EXPECT_TRUE(fix.anomalies.empty());
  // Restores in every sample: thrash.
  for (int round = 0; round < 3; ++round) {
    p.heartbeats += 1;
    p.spill_restores += 3;
    fix.Tick();
  }
  ASSERT_EQ(fix.anomalies.size(), 1u);
  EXPECT_EQ(fix.anomalies[0].first, obs::AnomalyKind::kSpillThrash);
}

TEST(Watchdog, AutoRecoveryWaitsUntilEverySuspectLagsTheHealthyFloor) {
  // The suspect froze, but a healthy recoverable peer sits at the same
  // watermark (merely slow). RecoverSilentIntermediates(min) would crash
  // both — so the monitor must hold fire until the suspect is strictly
  // behind every healthy peer.
  MonitorFixture fix(FastOptions());
  obs::NodeProbe& frontier_node = fix.node(1);  // not recoverable (a local)
  frontier_node.heartbeats = 1;
  frontier_node.watermark = 1000;
  obs::NodeProbe& slow = fix.node(2);
  slow.recoverable = true;
  slow.heartbeats = 1;
  slow.watermark = 1000;
  obs::NodeProbe& suspect = fix.node(3);
  suspect.recoverable = true;
  suspect.heartbeats = 1;
  suspect.watermark = 1000;

  fix.Tick();
  for (int round = 0; round < 6; ++round) {
    frontier_node.heartbeats += 1;
    frontier_node.watermark += 600;  // frontier runs ahead of both
    slow.heartbeats += 1;            // alive, pinned with the suspect
    fix.Tick();
  }
  // The suspect was raised (it is silent and lagging) but recovery never
  // fired: the healthy floor equals the suspect's watermark.
  ASSERT_FALSE(fix.anomalies.empty());
  EXPECT_TRUE(fix.recover_watermarks.empty());
  EXPECT_EQ(fix.monitor->auto_recoveries(), 0u);

  // The slow peer advances past the suspect: now recovery targets exactly
  // the suspect.
  slow.heartbeats += 1;
  slow.watermark = frontier_node.watermark;
  fix.Tick();
  ASSERT_EQ(fix.recover_watermarks.size(), 1u);
  EXPECT_EQ(fix.recover_watermarks[0], slow.watermark);
}

TEST(Watchdog, AutoRecoverOffNeverCallsRecover) {
  obs::WatchdogOptions options = FastOptions();
  options.auto_recover = false;
  MonitorFixture fix(options);
  obs::NodeProbe& healthy = fix.node(1);
  healthy.recoverable = true;
  healthy.heartbeats = 1;
  healthy.watermark = 0;
  obs::NodeProbe& silent = fix.node(2);
  silent.recoverable = true;
  silent.heartbeats = 1;
  silent.watermark = 0;
  fix.Tick();
  for (int round = 0; round < 6; ++round) {
    healthy.heartbeats += 1;
    healthy.watermark += 600;
    fix.Tick();
  }
  EXPECT_FALSE(fix.anomalies.empty());
  EXPECT_TRUE(fix.recover_watermarks.empty());
}

// --------------------------------------------------- cluster watchdog --

Query SumQuery(QueryId id, Timestamp length) {
  Query q;
  q.id = id;
  q.window = WindowSpec::Tumbling(length);
  q.agg = {AggregationFunction::kSum, 0};
  return q;
}

using WindowKey = std::tuple<uint32_t, int64_t, int64_t>;

/// Drives an identical 4-local stream through a SimLink Desis cluster.
/// `silent_kill_at` severs intermediate 1's links at that event time (or
/// never, for kNoTimestamp); `tick_watchdog` runs one deterministic
/// watchdog pass per advance round.
std::map<WindowKey, double> DriveCluster(Cluster& cluster,
                                         Timestamp silent_kill_at,
                                         bool tick_watchdog) {
  std::map<WindowKey, double> out;
  cluster.set_sink([&](const WindowResult& r) {
    out[{r.query_id, r.window_start, r.window_end}] = r.value;
  });
  EXPECT_TRUE(
      cluster
          .Configure({SumQuery(1, 1000), SumQuery(2, 2000)})
          .ok());
  for (int64_t ts = 0; ts < 12'000; ts += 10) {
    for (int l = 0; l < 4; ++l) {
      Event e{ts, /*key=*/0, static_cast<double>((ts + l) % 97), 0};
      cluster.IngestAt(l, &e, 1);
    }
    if (silent_kill_at != kNoTimestamp && ts == silent_kill_at) {
      EXPECT_TRUE(cluster.InjectIntermediateFailure(1).ok());
    }
    if (ts % 500 == 0) {
      for (int l = 0; l < 4; ++l) cluster.AdvanceAt(l, ts - 1'500);
      if (tick_watchdog) cluster.TickWatchdogForTest();
    }
  }
  for (int l = 0; l < 4; ++l) cluster.AdvanceAt(l, 13'000);
  if (tick_watchdog) cluster.TickWatchdogForTest();
  cluster.Drain();
  return out;
}

ClusterOptions WatchdogClusterOptions() {
  ClusterOptions options;
  options.recovery.enabled = true;
  options.watchdog.enabled = true;
  options.watchdog.period_ms = 0;  // deterministic: ticks only
  options.watchdog.silence_threshold = 2;
  options.watchdog.grace_us = 1'500;
  return options;
}

std::unique_ptr<SimLinkTransport> MakeSimLink() {
  SimLinkConfig link;
  link.latency_us = 20;
  link.seed = 99;
  return std::make_unique<SimLinkTransport>(link);
}

TEST(WatchdogCluster, SilentKillRecoveredByTicksAloneByteIdentically) {
  // Baseline: no fault, no watchdog.
  Cluster baseline(ClusterSystem::kDesis, {4, 2, 1});
  baseline.set_transport(MakeSimLink());
  const std::map<WindowKey, double> golden =
      DriveCluster(baseline, kNoTimestamp, /*tick_watchdog=*/false);
  ASSERT_FALSE(golden.empty());

  // Disturbed: intermediate 1 silently severed mid-stream. The driver
  // never calls RecoverSilentIntermediates — detection and recovery belong
  // to the watchdog ticks entirely.
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(1 << 14);
  Cluster governed(ClusterSystem::kDesis, {4, 2, 1},
                   WatchdogClusterOptions());
  governed.set_transport(MakeSimLink());
  governed.AttachObs(&registry, &tracer);
  const std::map<WindowKey, double> recovered =
      DriveCluster(governed, /*silent_kill_at=*/6'000,
                   /*tick_watchdog=*/true);

  EXPECT_EQ(recovered, golden);
  EXPECT_GT(governed.watchdog_samples(), 0u);
  EXPECT_GT(governed.watchdog_anomalies(), 0u);
  EXPECT_GT(governed.watchdog_auto_recoveries(), 0u);
  EXPECT_GT(governed.recovery_reattaches(), 0u);
  EXPECT_TRUE(governed.intermediate_dead(1));

  // The anomaly surfaced as a typed counter and in the stats report.
  const std::string metrics = registry.ToJson();
  EXPECT_NE(metrics.find("health.anomalies"), std::string::npos);
  EXPECT_NE(metrics.find("silent_node"), std::string::npos);
  const std::string stats = governed.StatsReport();
  EXPECT_NE(stats.find("\"watchdog\":{"), std::string::npos);
  EXPECT_EQ(stats.find("\"auto_recoveries\":0}"), std::string::npos)
      << stats;
}

TEST(WatchdogCluster, LiveThreadSamplesConcurrentlyWithDrivers) {
  // Real sampler thread against live ingest/advance traffic — the TSan
  // lane for the watchdog/driver lock protocol. Threshold is pushed high
  // so scheduler stalls cannot fire anomalies; the assertion is simply
  // that sampling happened and nothing raced.
  ClusterOptions options;
  options.recovery.enabled = true;
  options.watchdog.enabled = true;
  options.watchdog.period_ms = 1;
  options.watchdog.silence_threshold = 1'000'000;
  // Declared before the cluster: the sampler thread publishes into the
  // registry until the cluster's destructor joins it.
  obs::MetricsRegistry registry;
  Cluster cluster(ClusterSystem::kDesis, {2, 1}, options);
  cluster.AttachObs(&registry, nullptr);
  ASSERT_TRUE(cluster.Configure({SumQuery(1, 1000)}).ok());
  EXPECT_TRUE(cluster.watchdog_running());

  std::map<WindowKey, double> out;
  cluster.set_sink([&](const WindowResult& r) {
    out[{r.query_id, r.window_start, r.window_end}] = r.value;
  });
  for (int64_t ts = 0; ts < 6'000; ts += 10) {
    for (int l = 0; l < 2; ++l) {
      Event e{ts, /*key=*/0, 1.0, 0};
      cluster.IngestAt(l, &e, 1);
    }
    if (ts % 500 == 0) {
      cluster.Advance(ts - 1'000);
      if (ts == 3'000) {
        // Give the sampler a visible window mid-traffic.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
  cluster.Advance(7'000);
  cluster.Drain();
  EXPECT_GT(cluster.watchdog_samples(), 0u);
  EXPECT_EQ(cluster.watchdog_anomalies(), 0u);
  ASSERT_FALSE(out.empty());
}

// ----------------------------------------------------- recorder ring --

TEST(FlightRecorder, ConcurrentWritersKeepExactCountsAndMirrorCounters) {
  constexpr size_t kCapacity = 256;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  obs::MetricsRegistry registry;
  obs::Counter* events =
      registry.GetCounter("recorder.events", {}, "events");
  obs::Counter* dropped =
      registry.GetCounter("recorder.dropped", {}, "events");
  obs::FlightRecorder recorder(kCapacity);
  recorder.set_identity(7, obs::kSpanRoleLocal);
  recorder.set_counters(events, dropped);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Record(obs::FlightEventKind::kWatermarkAdvance,
                        /*a=*/i, /*b=*/static_cast<uint64_t>(t),
                        static_cast<Timestamp>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(recorder.recorded(), kTotal);
  EXPECT_EQ(recorder.dropped(), kTotal - kCapacity);
  EXPECT_EQ(events->value(), kTotal);
  EXPECT_EQ(dropped->value(), kTotal - kCapacity);
  // Torn slots (writers aliasing a wrapped ticket) are skipped, never
  // duplicated or fabricated.
  EXPECT_LE(recorder.Snapshot().size(), kCapacity);
}

TEST(FlightRecorder, FailureHookReceivesTheReason) {
  std::vector<std::string> reasons;
  obs::SetFlightFailureHook(
      [&](const std::string& reason) { reasons.push_back(reason); });
  obs::NotifyFlightFailure("unit_test_failure");
  obs::SetFlightFailureHook(nullptr);
  obs::NotifyFlightFailure("after_clear");  // must be a silent no-op
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "unit_test_failure");
}

// --------------------------------------- dump -> postmortem round trip --

TEST(FlightRecorder, DumpRoundTripsThroughInspectPostmortem) {
  obs::FlightRecorder recorder(64);
  recorder.set_identity(3, obs::kSpanRoleIntermediate);
  recorder.Record(obs::FlightEventKind::kWatermarkAdvance, 500, 0, 500);
  recorder.Record(obs::FlightEventKind::kSpill, /*slice=*/9, /*group=*/1,
                  700);
  recorder.Record(obs::FlightEventKind::kAnomaly,
                  static_cast<uint64_t>(obs::AnomalyKind::kSilentNode),
                  /*sample=*/42, kNoTimestamp);
  recorder.Record(obs::FlightEventKind::kReattach, /*new_parent=*/5,
                  /*old_parent=*/2, 900);

  tools::JsonValue doc;
  std::string error;
  ASSERT_TRUE(
      tools::JsonParser::Parse(recorder.DumpJson("unit_test"), &doc, &error))
      << error;
  tools::FlightDump dump;
  ASSERT_TRUE(tools::FlightDumpFromJson(doc, &dump));
  EXPECT_EQ(dump.node, 3u);
  EXPECT_EQ(dump.role, "intermediate");
  EXPECT_EQ(dump.reason, "unit_test");
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.events[1].kind, obs::FlightEventKind::kSpill);
  EXPECT_EQ(dump.events[1].a, 9u);
  EXPECT_EQ(dump.events[2].virtual_ts, kNoTimestamp);

  const std::string report = tools::Postmortem({dump});
  EXPECT_NE(report.find("first anomaly: silent_node against node 3"),
            std::string::npos)
      << report;
  // Everything from the anomaly on is in the anomaly window — the
  // recovery-side reattach must be visible after the pivot.
  const size_t window = report.find("anomaly window");
  ASSERT_NE(window, std::string::npos);
  EXPECT_NE(report.find("reattach", window), std::string::npos);
  EXPECT_EQ(tools::PostmortemEventCount({dump}), 4u);
}

TEST(FlightRecorder, PostmortemRejectsNonDumpDocuments) {
  tools::JsonValue doc;
  std::string error;
  ASSERT_TRUE(tools::JsonParser::Parse("{\"foo\":1}", &doc, &error));
  tools::FlightDump dump;
  EXPECT_FALSE(tools::FlightDumpFromJson(doc, &dump));
}

#else  // !DESIS_OBS_ENABLED ------------------------------------------------

// The OFF flavor keeps the full class surface: a watchdog-enabled cluster
// must configure, run, and report zeros — and the recorder stub must stay
// trivially thread-safe.

TEST(Watchdog, OffBuildKeepsWatchdogInert) {
  ClusterOptions options;
  options.recovery.enabled = true;
  options.watchdog.enabled = true;
  Cluster cluster(ClusterSystem::kDesis, {2, 1}, options);
  Query q;
  q.id = 1;
  q.window = WindowSpec::Tumbling(1000);
  q.agg = {AggregationFunction::kSum, 0};
  ASSERT_TRUE(cluster.Configure({q}).ok());
  EXPECT_FALSE(cluster.watchdog_running());
  cluster.TickWatchdogForTest();  // no-op, must not crash
  std::vector<Event> events;
  for (Timestamp ts = 0; ts < 3000; ts += 10) events.push_back({ts, 0, 1, 0});
  cluster.IngestAt(0, events.data(), events.size());
  cluster.Advance(4000);
  cluster.Drain();
  EXPECT_EQ(cluster.watchdog_samples(), 0u);
  EXPECT_EQ(cluster.watchdog_anomalies(), 0u);
}

TEST(FlightRecorder, StubIsSafeFromManyThreads) {
  obs::FlightRecorder recorder;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder] {
      for (uint64_t i = 0; i < 1000; ++i) {
        recorder.Record(obs::FlightEventKind::kWatermarkAdvance, i, 0,
                        static_cast<Timestamp>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  // The stub still emits a valid (empty) dump document for postmortems.
  tools::JsonValue doc;
  std::string error;
  ASSERT_TRUE(
      tools::JsonParser::Parse(recorder.DumpJson("off_dump"), &doc, &error))
      << error;
  tools::FlightDump dump;
  EXPECT_TRUE(tools::FlightDumpFromJson(doc, &dump));
  EXPECT_TRUE(dump.events.empty());
}

#endif  // DESIS_OBS_ENABLED

}  // namespace
}  // namespace desis
