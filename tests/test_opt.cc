// The cost-based query optimizer (src/opt/): cost model, factor-window
// planner, incremental group maintenance, and the cluster runtime paths
// that execute them. Pins the contract the 10k-query experiments rely on:
//  - factor-rewritten plans produce byte-identical results on exactly
//    representable aggregates while doing strictly less merge work;
//  - per-lane mask narrowing changes the operator_evals accounting to the
//    lane-accurate form without touching results;
//  - a query added at runtime joins the exact group a cold start would
//    have chosen (opt::GroupIndex replays the analyzer's probe order), and
//    churn storms under sharded engines and concurrent transports never
//    lose or duplicate a stable query's windows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/query_analyzer.h"
#include "core/spec_layout.h"
#include "net/cluster.h"
#include "obs/metrics.h"
#include "opt/cost_model.h"
#include "opt/factor_planner.h"
#include "opt/group_index.h"
#include "transport/sim_link_transport.h"
#include "transport/threaded_transport.h"

namespace desis {
namespace {

Query MakeQuery(QueryId id, WindowSpec window, AggregationFunction fn,
                Predicate predicate = Predicate::All()) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, 0.5};
  q.predicate = predicate;
  return q;
}

std::vector<QueryGroup> Analyze(
    const std::vector<Query>& queries,
    DeploymentMode mode = DeploymentMode::kCentralized) {
  QueryAnalyzer analyzer(mode, SharingPolicy::kCrossFunction);
  auto groups = analyzer.Analyze(queries);
  EXPECT_TRUE(groups.ok());
  return groups.ok() ? groups.value() : std::vector<QueryGroup>{};
}

/// Index of the spec with the given window length in the group's canonical
/// spec layout (the numbering GroupPlan::feeder uses).
int SpecIndexOf(const std::vector<SpecLayoutEntry>& layout, int64_t length) {
  for (size_t i = 0; i < layout.size(); ++i) {
    if (layout[i].spec.length == length) return static_cast<int>(i);
  }
  return -1;
}

// -------------------------------------------------------------- cost model --

TEST(OptCostModel, SlicePeriodIsGcdOverSpecEdges) {
  const auto groups =
      Analyze({MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum),
               MakeQuery(2, WindowSpec::Sliding(150, 50),
                         AggregationFunction::kMax)});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(opt::SlicePeriod(groups[0]), 50);
}

TEST(OptCostModel, FactorGainRequiresFeederCoarserThanSlicePeriod) {
  // A feeder no coarser than the base slice period saves nothing: windows
  // already assemble from slices of that size.
  EXPECT_DOUBLE_EQ(opt::FactorGain(1000, 1000, 100, 100), 0.0);
  // A genuinely coarser feeder replaces many base-slice merges with a few
  // composite merges; a larger feeder saves more.
  const double coarse = opt::FactorGain(10000, 10000, 1000, 100);
  const double fine = opt::FactorGain(10000, 10000, 500, 100);
  EXPECT_GT(coarse, 0.0);
  EXPECT_GT(fine, 0.0);
  EXPECT_GT(coarse, fine);
}

// ----------------------------------------------------------------- planner --

TEST(OptPlanner, FactorsCoarseSpecOntoLargestUsefulFeeder) {
  const auto groups = Analyze(
      {MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum),
       MakeQuery(2, WindowSpec::Tumbling(1000), AggregationFunction::kSum),
       MakeQuery(3, WindowSpec::Tumbling(10000), AggregationFunction::kSum)});
  ASSERT_EQ(groups.size(), 1u);
  const GroupPlan plan = opt::BuildGroupPlan(groups[0]);
  const auto layout = DeriveSpecLayout(groups[0]);
  const int s100 = SpecIndexOf(layout, 100);
  const int s1000 = SpecIndexOf(layout, 1000);
  const int s10000 = SpecIndexOf(layout, 10000);
  ASSERT_GE(s100, 0);
  ASSERT_GE(s1000, 0);
  ASSERT_GE(s10000, 0);
  // The slice period is 100, so the 100-length spec cannot usefully feed
  // anything; the 10000 spec factors onto the largest feeder, 1000.
  EXPECT_TRUE(plan.optimized);
  EXPECT_EQ(plan.rewrites, 1u);
  EXPECT_EQ(plan.FeederOf(static_cast<uint32_t>(s1000)), -1);
  EXPECT_EQ(plan.FeederOf(static_cast<uint32_t>(s10000)), s1000);
  EXPECT_EQ(plan.dag_depth, 2u);
}

TEST(OptPlanner, ChainedFeedersDeepenTheDag) {
  // A sliding window drops the slice period to 25, making the 100-length
  // tumbling spec a useful feeder too: 100 feeds 500 feeds 10000.
  const auto groups = Analyze(
      {MakeQuery(1, WindowSpec::Sliding(50, 25), AggregationFunction::kSum),
       MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kSum),
       MakeQuery(3, WindowSpec::Tumbling(500), AggregationFunction::kSum),
       MakeQuery(4, WindowSpec::Tumbling(10000), AggregationFunction::kSum)});
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(opt::SlicePeriod(groups[0]), 25);
  const GroupPlan plan = opt::BuildGroupPlan(groups[0]);
  const auto layout = DeriveSpecLayout(groups[0]);
  const int s100 = SpecIndexOf(layout, 100);
  const int s500 = SpecIndexOf(layout, 500);
  const int s10000 = SpecIndexOf(layout, 10000);
  EXPECT_EQ(plan.rewrites, 2u);
  EXPECT_EQ(plan.FeederOf(static_cast<uint32_t>(s500)), s100);
  EXPECT_EQ(plan.FeederOf(static_cast<uint32_t>(s10000)), s500);
  EXPECT_EQ(plan.DepthOf(static_cast<uint32_t>(s10000)), 2u);
  EXPECT_EQ(plan.dag_depth, 3u);
}

TEST(OptPlanner, LaneMasksNarrowToEachLanesOperators) {
  const auto groups = Analyze(
      {MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum,
                 Predicate::KeyEquals(1)),
       MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kAverage,
                 Predicate::KeyEquals(2))});
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].lanes.size(), 2u);
  const GroupPlan plan = opt::BuildGroupPlan(groups[0]);
  EXPECT_TRUE(plan.optimized);
  EXPECT_EQ(plan.rewrites, 0u);  // one spec, nothing to factor
  ASSERT_EQ(plan.lane_masks.size(), 2u);
  uint32_t sum_lane = groups[0].queries[0].lane;
  uint32_t avg_lane = groups[0].queries[1].lane;
  // The sum lane stops paying for the average's count operator.
  EXPECT_EQ(plan.lane_masks[sum_lane],
            ReduceMask(OperatorsFor(AggregationFunction::kSum)));
  EXPECT_EQ(plan.lane_masks[avg_lane], groups[0].mask);
  EXPECT_NE(plan.lane_masks[sum_lane], groups[0].mask);
}

TEST(OptPlanner, NonDecomposableSortGroupsStayUnfactored) {
  const auto groups = Analyze(
      {MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kMedian),
       MakeQuery(2, WindowSpec::Tumbling(10000),
                 AggregationFunction::kMedian)});
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_TRUE(MaskHas(groups[0].mask, OperatorKind::kNonDecomposableSort));
  const GroupPlan plan = opt::BuildGroupPlan(groups[0]);
  // Sealed composites would re-merge sorted runs the dependent windows
  // cannot decompose; the planner must leave such groups on base slices.
  EXPECT_EQ(plan.rewrites, 0u);
  EXPECT_FALSE(plan.optimized);  // single lane: mask narrowing is a no-op too
}

TEST(OptPlanner, SingleSpecSingleLaneGroupIsStatic) {
  const auto groups = Analyze(
      {MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)});
  ASSERT_EQ(groups.size(), 1u);
  const GroupPlan plan = opt::BuildGroupPlan(groups[0]);
  EXPECT_FALSE(plan.optimized);
  EXPECT_EQ(plan.rewrites, 0u);
  EXPECT_EQ(plan.dag_depth, 1u);
}

// ---------------------------------------------------------- plan execution --

using ResultKey = std::tuple<QueryId, Timestamp, Timestamp>;
using ResultMap = std::map<ResultKey, std::pair<double, uint64_t>>;

TEST(OptExecution, FactoredPlanIsByteIdenticalAndMergesLess) {
  const std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum),
      MakeQuery(2, WindowSpec::Tumbling(6000), AggregationFunction::kSum),
      MakeQuery(3, WindowSpec::Sliding(12000, 6000),
                AggregationFunction::kAverage)};

  auto run = [&](bool optimized, ResultMap* results) -> uint64_t {
    DesisEngine engine;
    engine.set_sink([&](const WindowResult& r) {
      (*results)[{r.query_id, r.window_start, r.window_end}] = {r.value,
                                                                r.event_count};
    });
    if (optimized) {
      auto groups = Analyze(queries);
      EXPECT_GE(opt::PlanGroups(groups), 1u);
      EXPECT_GT(groups[0].plan.rewrites, 0u);
      EXPECT_TRUE(engine.ConfigureGroups(std::move(groups)).ok());
    } else {
      EXPECT_TRUE(engine.Configure(queries).ok());
    }
    std::vector<Event> events;
    events.reserve(30000);
    for (int64_t i = 1; i <= 30000; ++i) {
      events.push_back({i, static_cast<uint32_t>(i % 4),
                        static_cast<double>(i % 7), kNoMarker});
    }
    engine.IngestBatch(events.data(), events.size());
    engine.Finish();
    return engine.stats().merges.load();
  };

  ResultMap base, opt;
  const uint64_t base_merges = run(false, &base);
  const uint64_t opt_merges = run(true, &opt);
  ASSERT_FALSE(base.empty());
  // Sum and count are exactly representable over integer values, so the
  // factored plan must reproduce every window bit for bit.
  EXPECT_EQ(base, opt);
  // The 12000-length windows merged two sealed 6000-composites each
  // instead of 120 base slices.
  EXPECT_LT(opt_merges, base_merges);
}

#if DESIS_OBS_ENABLED
TEST(OptExecution, LaneNarrowingMakesOperatorEvalsLaneAccurate) {
  // key=1 carries a sum query, key=2 a sum+count (average) query; 1000
  // events cycle keys 0..3 so each lane folds 250 events. The static
  // accounting charges every active operator the slice's whole fold count;
  // the planned group charges each operator only the folds on lanes whose
  // narrowed mask carries it.
  const std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum,
                Predicate::KeyEquals(1)),
      MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kAverage,
                Predicate::KeyEquals(2))};
  DesisEngine engine;
  obs::MetricsRegistry registry;
  engine.set_metrics_registry(&registry);
  auto groups = Analyze(queries);
  ASSERT_EQ(opt::PlanGroups(groups), 1u);
  ASSERT_TRUE(engine.ConfigureGroups(std::move(groups)).ok());
  std::vector<Event> events;
  for (int64_t i = 1; i <= 1000; ++i) {
    events.push_back({i, static_cast<uint32_t>(i % 4), 1.0, kNoMarker});
  }
  engine.IngestBatch(events.data(), events.size());
  engine.Finish();

  const std::string gid = std::to_string(engine.group(0).id);
  obs::Counter* sum_evals = registry.GetCounter(
      "group.operator_evals", {{"group", gid}, {"op", "sum"}}, "evals");
  obs::Counter* count_evals = registry.GetCounter(
      "group.operator_evals", {{"group", gid}, {"op", "count"}}, "evals");
  ASSERT_NE(sum_evals, nullptr);
  ASSERT_NE(count_evals, nullptr);
  EXPECT_EQ(sum_evals->value(), 500u);    // both lanes carry sum
  EXPECT_EQ(count_evals->value(), 250u);  // only the average lane
}
#endif  // DESIS_OBS_ENABLED

// ------------------------------------------------------------- group index --

/// A grouping's shape, independent of group ids: for each group the sorted
/// (query id, lane predicate, dedup) tuples, sorted across groups.
std::vector<std::vector<std::string>> GroupingSignature(
    const std::vector<QueryGroup>& groups) {
  std::vector<std::vector<std::string>> sig;
  for (const QueryGroup& g : groups) {
    std::vector<std::string> members;
    for (const GroupedQuery& gq : g.queries) {
      const SelectionLane& lane = g.lanes[gq.lane];
      members.push_back(std::to_string(gq.query.id) + "|" +
                        lane.predicate.ToString() + "|" +
                        (lane.deduplicate ? "dedup" : "plain") + "|" +
                        (g.root_only ? "root" : "dist"));
    }
    std::sort(members.begin(), members.end());
    sig.push_back(std::move(members));
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

std::vector<Query> MixedQuerySet(size_t n) {
  std::vector<Query> queries;
  for (size_t i = 0; i < n; ++i) {
    const QueryId id = static_cast<QueryId>(i + 1);
    WindowSpec window;
    switch (i % 4) {
      case 0: window = WindowSpec::Tumbling(100 * (1 + i % 3)); break;
      case 1: window = WindowSpec::Sliding(400, 100); break;
      case 2: window = WindowSpec::CountTumbling(50); break;  // root-only
      default: window = WindowSpec::Tumbling(600); break;
    }
    const AggregationFunction fn =
        std::vector<AggregationFunction>{
            AggregationFunction::kSum, AggregationFunction::kAverage,
            AggregationFunction::kMax, AggregationFunction::kMedian}[i % 4];
    const Predicate pred = (i % 5 == 0)
                               ? Predicate::All()
                               : Predicate::KeyEquals(1 + i % 4);
    queries.push_back(MakeQuery(id, window, fn, pred));
  }
  return queries;
}

TEST(OptGroupIndex, RuntimeAddsReplayColdStartGrouping) {
  const std::vector<Query> queries = MixedQuerySet(24);
  const auto cold = Analyze(queries, DeploymentMode::kDecentralized);

  opt::GroupIndex index(DeploymentMode::kDecentralized,
                        SharingPolicy::kCrossFunction);
  const std::vector<Query> seed(queries.begin(), queries.begin() + 8);
  index.Seed(Analyze(seed, DeploymentMode::kDecentralized));
  for (size_t i = 8; i < queries.size(); ++i) index.AddQuery(queries[i]);

  EXPECT_EQ(index.num_queries(), queries.size());
  EXPECT_EQ(index.num_groups(), cold.size());
  EXPECT_EQ(GroupingSignature(index.Snapshot()), GroupingSignature(cold));
}

TEST(OptGroupIndex, PlacementFlagsTrackLanesAndGroups) {
  opt::GroupIndex index;
  index.Seed(Analyze({MakeQuery(1, WindowSpec::Tumbling(100),
                                AggregationFunction::kSum,
                                Predicate::KeyEquals(1))}));
  // Identical predicate: same group, same lane.
  const auto same_lane = index.AddQuery(
      MakeQuery(2, WindowSpec::Tumbling(200), AggregationFunction::kAverage,
                Predicate::KeyEquals(1)));
  EXPECT_FALSE(same_lane.new_group);
  EXPECT_FALSE(same_lane.new_lane);
  // Disjoint key: same group, new lane (the O(1) fast path).
  const auto new_lane = index.AddQuery(
      MakeQuery(3, WindowSpec::Tumbling(100), AggregationFunction::kMax,
                Predicate::KeyEquals(2)));
  EXPECT_FALSE(new_lane.new_group);
  EXPECT_TRUE(new_lane.new_lane);
  EXPECT_EQ(new_lane.gid, same_lane.gid);
  // Overlapping predicate (a value range intersecting the key lanes):
  // cannot share, opens a new group.
  const auto overlap = index.AddQuery(
      MakeQuery(4, WindowSpec::Tumbling(100), AggregationFunction::kSum,
                Predicate::ValueRange(0, 10)));
  EXPECT_TRUE(overlap.new_group);
  EXPECT_EQ(index.num_groups(), 2u);
}

TEST(OptGroupIndex, RemoveRetiresOnlyEmptyGroups) {
  opt::GroupIndex index;
  index.Seed(Analyze(
      {MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum),
       MakeQuery(2, WindowSpec::Tumbling(200), AggregationFunction::kMax)}));
  ASSERT_EQ(index.num_groups(), 1u);

  auto first = index.RemoveQuery(1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().group_empty);
  EXPECT_EQ(index.num_groups(), 1u);
  EXPECT_EQ(index.num_queries(), 1u);

  auto second = index.RemoveQuery(2);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().group_empty);
  EXPECT_EQ(index.num_groups(), 0u);

  EXPECT_FALSE(index.RemoveQuery(99).ok());
}

TEST(OptGroupIndex, IsolatedGroupsStayOutOfProbeOrder) {
  opt::GroupIndex index;
  index.Seed(Analyze(
      {MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)}));
  const auto isolated = index.AddQueryIsolated(
      MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kAverage));
  EXPECT_TRUE(isolated.new_group);
  EXPECT_EQ(index.num_groups(), 2u);
  // A compatible later query joins the bucketed group, never the carve-out.
  const auto later = index.AddQuery(
      MakeQuery(3, WindowSpec::Tumbling(300), AggregationFunction::kMax));
  EXPECT_FALSE(later.new_group);
  EXPECT_NE(later.gid, isolated.gid);
}

// -------------------------------------------------------- cluster equivalence

Event Ev(Timestamp ts, uint32_t key, double v) { return {ts, key, v, kNoMarker}; }

/// Thread-safe result recorder; counts duplicate emissions of one window.
struct Recorder {
  std::mutex mu;
  ResultMap results;
  int duplicates = 0;

  WindowSink Sink() {
    return [this](const WindowResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      auto [it, inserted] = results.emplace(
          ResultKey{r.query_id, r.window_start, r.window_end},
          std::pair<double, uint64_t>{r.value, r.event_count});
      if (!inserted) ++duplicates;
    };
  }

  /// The recorded windows of one query, optionally from a start cutoff.
  ResultMap Of(QueryId id, Timestamp from = 0) {
    std::lock_guard<std::mutex> lock(mu);
    ResultMap out;
    for (const auto& [key, value] : results) {
      if (std::get<0>(key) == id && std::get<1>(key) >= from) out[key] = value;
    }
    return out;
  }
};

TEST(OptCluster, RuntimeAddMatchesColdStartGroupingAndResults) {
  const Query q1 =
      MakeQuery(1, WindowSpec::Tumbling(100), AggregationFunction::kAverage);
  const Query q2 =
      MakeQuery(2, WindowSpec::Tumbling(100), AggregationFunction::kSum);
  auto feed = [](Cluster& cluster, Timestamp lo, Timestamp hi) {
    for (int local = 0; local < 2; ++local) {
      std::vector<Event> events;
      for (Timestamp t = lo + local; t < hi; t += 5) {
        events.push_back(Ev(t, static_cast<uint32_t>(t % 3),
                            static_cast<double>(1 + t % 4)));
      }
      cluster.IngestAt(local, events.data(), events.size());
    }
  };

  // Cold start: both queries from the beginning.
  Cluster cold(ClusterSystem::kDesis, {2, 1});
  Recorder cold_rec;
  ASSERT_TRUE(cold.Configure({q1, q2}).ok());
  cold.set_sink(cold_rec.Sink());
  feed(cold, 0, 300);
  cold.Advance(300);
  feed(cold, 300, 600);
  cold.Advance(700);

  // Runtime add: q2 arrives after 300 time units of traffic.
  Cluster live(ClusterSystem::kDesis, {2, 1});
  Recorder live_rec;
  ASSERT_TRUE(live.Configure({q1}).ok());
  live.set_sink(live_rec.Sink());
  feed(live, 0, 300);
  live.Advance(300);
  ASSERT_TRUE(live.AddQuery(q2).ok());
  feed(live, 300, 600);
  live.Advance(700);

  // Identical grouping: q2 joined q1's group, exactly as the cold start
  // grouped them.
  EXPECT_EQ(live.num_query_groups(), 1u);
  EXPECT_EQ(GroupingSignature(live.QueryGroupsSnapshot()),
            GroupingSignature(cold.QueryGroupsSnapshot()));

  // Identical results: q1 everywhere, q2 from its activation on.
  EXPECT_EQ(live_rec.Of(1), cold_rec.Of(1));
  const ResultMap live_q2 = live_rec.Of(2, 300);
  EXPECT_EQ(live_q2.size(), 3u);  // [300,400) [400,500) [500,600)
  EXPECT_EQ(live_q2, cold_rec.Of(2, 300));
  // And no window that straddles the activation leaked out partially.
  EXPECT_TRUE(live_rec.Of(2, 0).size() == live_q2.size());
  EXPECT_EQ(live_rec.duplicates, 0);
}

// ------------------------------------------------------------ churn storms --

enum class TransportKind { kInline, kThreaded, kSimLink };

std::unique_ptr<Transport> MakeTransport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInline:
      return nullptr;  // cluster default
    case TransportKind::kThreaded:
      return std::make_unique<ThreadedTransport>(64);
    case TransportKind::kSimLink: {
      SimLinkConfig config;
      config.latency_us = 20;
      config.jitter_us = 5;
      return std::make_unique<SimLinkTransport>(config);
    }
  }
  return nullptr;
}

/// Drives one cluster over three ingestion phases with (or without) a
/// query churn storm between them, and returns the recorder. The stable
/// queries (ids 1..4, one avg per key lane 0..3) must be byte-identical
/// with and without churn: every added/removed query lands in their group
/// (disjoint key lanes), widening masks and lanes mid-flight.
void DriveChurnRun(TransportKind kind, bool churn, Recorder* rec) {
  ClusterOptions options;
  options.engine_shards = 2;
  Cluster cluster(ClusterSystem::kDesis, {4, 1}, options);
  if (auto transport = MakeTransport(kind)) {
    cluster.set_transport(std::move(transport));
  }
  std::vector<Query> stable;
  for (QueryId id = 1; id <= 4; ++id) {
    stable.push_back(MakeQuery(id, WindowSpec::Tumbling(100),
                               AggregationFunction::kAverage,
                               Predicate::KeyEquals(static_cast<uint32_t>(id - 1))));
  }
  ASSERT_TRUE(cluster.Configure(stable).ok());
  cluster.set_sink(rec->Sink());

  auto feed = [&](Timestamp lo, Timestamp hi) {
    for (int local = 0; local < 4; ++local) {
      std::vector<Event> events;
      for (Timestamp t = lo + local; t < hi; t += 3) {
        events.push_back(Ev(t, static_cast<uint32_t>((t + local) % 8),
                            static_cast<double>((t * 7 + local) % 10)));
      }
      cluster.IngestAt(local, events.data(), events.size());
    }
  };

  feed(0, 300);
  cluster.Advance(300);
  cluster.Drain();  // settle watermarks before the churn wave fires
  if (churn) {
    // Wave 1: two joins into the stable group (new key lanes, one widening
    // the mask with max's sort operator) plus a root-only newcomer.
    ASSERT_TRUE(cluster
                    .AddQuery(MakeQuery(101, WindowSpec::Tumbling(100),
                                        AggregationFunction::kSum,
                                        Predicate::KeyEquals(4)))
                    .ok());
    ASSERT_TRUE(cluster
                    .AddQuery(MakeQuery(102, WindowSpec::Sliding(200, 100),
                                        AggregationFunction::kMax,
                                        Predicate::KeyEquals(5)))
                    .ok());
    ASSERT_TRUE(cluster
                    .AddQuery(MakeQuery(103, WindowSpec::CountTumbling(64),
                                        AggregationFunction::kSum,
                                        Predicate::KeyEquals(6)))
                    .ok());
  }
  feed(300, 600);
  cluster.Advance(600);
  cluster.Drain();  // settle watermarks before the churn wave fires
  if (churn) {
    // Wave 2: joins and splits interleave; 103's exit retires the
    // root-only group it created.
    ASSERT_TRUE(cluster.RemoveQuery(101).ok());
    ASSERT_TRUE(cluster
                    .AddQuery(MakeQuery(104, WindowSpec::Tumbling(50),
                                        AggregationFunction::kMax,
                                        Predicate::KeyEquals(7)))
                    .ok());
    ASSERT_TRUE(cluster.RemoveQuery(103).ok());
  }
  feed(600, 900);
  cluster.Advance(900);
  cluster.Drain();  // settle watermarks before the churn wave fires
  if (churn) {
    ASSERT_TRUE(cluster.RemoveQuery(102).ok());
    ASSERT_TRUE(cluster.RemoveQuery(104).ok());
    // Every churn query is gone; only the stable group (and no retired
    // root-only group) remains.
    EXPECT_EQ(cluster.num_query_groups(), 1u);
  }
  feed(900, 1200);
  cluster.Advance(1300);
  cluster.Drain();
}

class OptChurnStorm : public ::testing::TestWithParam<TransportKind> {};

TEST_P(OptChurnStorm, StableQueriesLoseAndDuplicateNothing) {
  Recorder quiet, stormy;
  DriveChurnRun(GetParam(), /*churn=*/false, &quiet);
  DriveChurnRun(GetParam(), /*churn=*/true, &stormy);
  ASSERT_EQ(quiet.duplicates, 0);
  ASSERT_EQ(stormy.duplicates, 0);
  for (QueryId id = 1; id <= 4; ++id) {
    const ResultMap expect = quiet.Of(id);
    ASSERT_FALSE(expect.empty());
    EXPECT_EQ(stormy.Of(id), expect) << "stable query " << id;
  }
  // The churn queries really ran while resident.
  EXPECT_FALSE(stormy.Of(101).empty());
  EXPECT_FALSE(stormy.Of(102).empty());
}

INSTANTIATE_TEST_SUITE_P(Transports, OptChurnStorm,
                         ::testing::Values(TransportKind::kInline,
                                           TransportKind::kThreaded,
                                           TransportKind::kSimLink),
                         [](const auto& info) {
                           switch (info.param) {
                             case TransportKind::kInline: return "Inline";
                             case TransportKind::kThreaded: return "Threaded";
                             case TransportKind::kSimLink: return "SimLink";
                           }
                           return "Unknown";
                         });

// A cluster configured with optimize_plans must stay byte-identical to the
// static deployment on exactly representable aggregates.
TEST(OptCluster, OptimizedDeploymentMatchesStaticByteForByte) {
  auto run = [](bool optimize, Recorder* rec) {
    ClusterOptions options;
    options.optimize_plans = optimize;
    Cluster cluster(ClusterSystem::kDesis, {3, 1}, options);
    ASSERT_TRUE(cluster
                    .Configure({MakeQuery(1, WindowSpec::Tumbling(100),
                                          AggregationFunction::kSum),
                                MakeQuery(2, WindowSpec::Tumbling(2000),
                                          AggregationFunction::kSum),
                                MakeQuery(3, WindowSpec::Sliding(4000, 2000),
                                          AggregationFunction::kAverage),
                                MakeQuery(4, WindowSpec::Tumbling(100),
                                          AggregationFunction::kMax,
                                          Predicate::KeyEquals(2))})
                    .ok());
    cluster.set_sink(rec->Sink());
    for (int local = 0; local < 3; ++local) {
      std::vector<Event> events;
      for (Timestamp t = local; t < 12000; t += 4) {
        events.push_back(Ev(t, static_cast<uint32_t>(t % 5),
                            static_cast<double>(t % 9)));
      }
      cluster.IngestAt(local, events.data(), events.size());
    }
    cluster.Advance(20000);
    cluster.Drain();
  };
  Recorder baseline, optimized;
  run(false, &baseline);
  run(true, &optimized);
  ASSERT_FALSE(baseline.results.empty());
  EXPECT_EQ(baseline.results, optimized.results);
}

}  // namespace
}  // namespace desis
