// SliceTracer under concurrent writers (run under TSan in CI): Record() is
// a relaxed ticket grab plus per-field relaxed slot stores, so any number
// of threads may record at once — including when tickets wrap the ring and
// alias slots. The aggregate counters stay exact and overflow is mirrored
// into the trace.dropped_spans registry counter.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace desis::obs {
namespace {

void RecordMany(SliceTracer& tracer, uint32_t node, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    tracer.Record(SlicePhase::kSliceCreated, /*slice_id=*/i, /*group_id=*/0,
                  /*query_id=*/0, node, kSpanRoleLocal,
                  static_cast<Timestamp>(i));
  }
}

#if DESIS_OBS_ENABLED

TEST(TracerConcurrency, OverflowCountsExactAndMirroredToRegistry) {
  constexpr size_t kCapacity = 1024;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;  // 80k records into 1k slots
  MetricsRegistry registry;
  Counter* dropped =
      registry.GetCounter("trace.dropped_spans", {}, "spans");
  ASSERT_NE(dropped, nullptr);
  SliceTracer tracer(kCapacity);
  tracer.set_drop_counter(dropped);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&tracer, t] { RecordMany(tracer, static_cast<uint32_t>(t),
                                  kPerThread); });
  }
  for (std::thread& th : threads) th.join();

  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(tracer.recorded(), kTotal);
  EXPECT_EQ(tracer.dropped(), kTotal - kCapacity);
  // Every overwriting Record() bumped the registry counter exactly once.
  EXPECT_EQ(dropped->value(), kTotal - kCapacity);
  // The ring retains at most `capacity` spans; torn slots (two writers
  // aliased mid-flight) are discarded by the seq check, never duplicated.
  EXPECT_LE(tracer.Snapshot().size(), kCapacity);
}

TEST(TracerConcurrency, NoDropsBelowCapacity) {
  MetricsRegistry registry;
  Counter* dropped =
      registry.GetCounter("trace.dropped_spans", {}, "spans");
  SliceTracer tracer(1 << 16);
  tracer.set_drop_counter(dropped);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&tracer, t] { RecordMany(tracer, static_cast<uint32_t>(t), 1000); });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(tracer.recorded(), 4000u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(dropped->value(), 0u);
  // Below capacity nothing is overwritten or torn: all spans retained.
  EXPECT_EQ(tracer.Snapshot().size(), 4000u);
}

#else  // !DESIS_OBS_ENABLED

TEST(TracerConcurrency, StubIsSafeFromManyThreads) {
  SliceTracer tracer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&tracer, t] { RecordMany(tracer, static_cast<uint32_t>(t), 1000); });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

#endif  // DESIS_OBS_ENABLED

}  // namespace
}  // namespace desis::obs
