// Stress and edge-case tests: memory discipline over long streams, query
// churn, degenerate configurations, and engine lifecycle.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "baselines/de_sw.h"
#include "common/rng.h"
#include "core/engine.h"
#include "net/cluster.h"

namespace desis {
namespace {

Query Q(QueryId id, WindowSpec window, AggregationFunction fn) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, 0.5};
  return q;
}

TEST(Stress, LongStreamWithChurningQueries) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({Q(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)})
          .ok());
  uint64_t fired = 0;
  engine.set_sink([&](const WindowResult&) { ++fired; });

  Rng rng(77);
  QueryId next_id = 2;
  std::vector<QueryId> active = {1};
  Timestamp ts = 0;
  for (int step = 0; step < 200; ++step) {
    for (int i = 0; i < 100; ++i) {
      ts += rng.NextInRange(1, 3);
      engine.Ingest({ts, 0, static_cast<double>(rng.NextBounded(10)), 0});
    }
    if (rng.NextBool(0.3)) {
      const QueryId id = next_id++;
      ASSERT_TRUE(engine
                      .AddQuery(Q(id,
                                  WindowSpec::Tumbling(
                                      rng.NextInRange(50, 500)),
                                  AggregationFunction::kAverage))
                      .ok());
      active.push_back(id);
    }
    if (active.size() > 3 && rng.NextBool(0.3)) {
      const QueryId id = active[rng.NextBounded(active.size())];
      if (engine.RemoveQuery(id).ok()) {
        active.erase(std::find(active.begin(), active.end(), id));
      }
    }
  }
  engine.Finish();
  EXPECT_GT(fired, 100u);
}

TEST(Stress, SlidingWindowMemoryIsBoundedByWindowExtent) {
  // A 100-unit sliding window over a long stream must not accumulate
  // unbounded slice history: retained slices are GC'd behind the oldest
  // open window. We can't see the deque directly, but a long run staying
  // fast and correct is the practical check; slice count meanwhile grows
  // linearly (they are created AND collected).
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({Q(1, WindowSpec::Sliding(100, 10),
                                AggregationFunction::kSum)})
                  .ok());
  uint64_t fired = 0;
  double last_value = 0;
  engine.set_sink([&](const WindowResult& r) {
    ++fired;
    last_value = r.value;
  });
  for (Timestamp t = 0; t < 500'000; t += 2) engine.Ingest({t, 0, 1.0, 0});
  EXPECT_GT(fired, 49'000u);
  EXPECT_DOUBLE_EQ(last_value, 50.0);  // 100 units / 2 per event
}

TEST(Stress, ManyDisjointGroups) {
  // 50 overlapping predicates force 50 separate query-groups.
  std::vector<Query> queries;
  for (QueryId id = 1; id <= 50; ++id) {
    Query q = Q(id, WindowSpec::Tumbling(100), AggregationFunction::kSum);
    q.predicate = Predicate::ValueRange(0, static_cast<double>(id));
    queries.push_back(q);
  }
  DesisEngine engine;
  ASSERT_TRUE(engine.Configure(queries).ok());
  EXPECT_EQ(engine.num_groups(), 50u);
  uint64_t fired = 0;
  engine.set_sink([&](const WindowResult&) { ++fired; });
  Rng rng(5);
  for (Timestamp t = 0; t < 2000; ++t) {
    engine.Ingest({t, 0, static_cast<double>(rng.NextBounded(60)), 0});
  }
  engine.Finish();
  EXPECT_GT(fired, 500u);
}

TEST(EdgeCases, SingleEventStream) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({Q(1, WindowSpec::Tumbling(10), AggregationFunction::kAverage),
                        Q(2, WindowSpec::Session(5), AggregationFunction::kMax)})
          .ok());
  std::map<QueryId, WindowResult> results;
  engine.set_sink([&](const WindowResult& r) { results[r.query_id] = r; });
  engine.Ingest({3, 0, 42.0, 0});
  engine.Finish();
  ASSERT_TRUE(results.contains(1));
  EXPECT_DOUBLE_EQ(results[1].value, 42.0);
  ASSERT_TRUE(results.contains(2));
  EXPECT_DOUBLE_EQ(results[2].value, 42.0);
  EXPECT_EQ(results[2].window_end, 8);
}

TEST(EdgeCases, EmptyStreamFiresNothing) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({Q(1, WindowSpec::Tumbling(10), AggregationFunction::kSum)})
          .ok());
  uint64_t fired = 0;
  engine.set_sink([&](const WindowResult&) { ++fired; });
  engine.AdvanceTo(1'000'000);
  engine.Finish();
  EXPECT_EQ(fired, 0u);
}

TEST(EdgeCases, ConfigureRejectsInvalidQueries) {
  DesisEngine engine;
  Query bad = Q(1, WindowSpec::Tumbling(10), AggregationFunction::kQuantile);
  bad.agg.quantile = 2.0;
  EXPECT_FALSE(engine.Configure({bad}).ok());

  Query gap0 = Q(1, WindowSpec::Session(0), AggregationFunction::kSum);
  EXPECT_FALSE(engine.Configure({gap0}).ok());
}

TEST(EdgeCases, EventsAtIdenticalTimestamps) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({Q(1, WindowSpec::Tumbling(10),
                                AggregationFunction::kCount),
                              Q(2, WindowSpec::CountTumbling(4),
                                AggregationFunction::kSum)})
                  .ok());
  std::map<QueryId, std::vector<WindowResult>> results;
  engine.set_sink(
      [&](const WindowResult& r) { results[r.query_id].push_back(r); });
  for (int i = 0; i < 8; ++i) engine.Ingest({5, 0, 1.0, 0});  // all at ts 5
  engine.Ingest({25, 0, 1.0, 0});
  engine.Finish();
  ASSERT_EQ(results[1].size(), 2u);
  EXPECT_EQ(results[1][0].event_count, 8u);
  ASSERT_EQ(results[2].size(), 2u);
  EXPECT_DOUBLE_EQ(results[2][0].value, 4.0);
  EXPECT_DOUBLE_EQ(results[2][1].value, 4.0);
}

TEST(EdgeCases, BackToBackUserDefinedMarkers) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({Q(1, WindowSpec::UserDefined(),
                                AggregationFunction::kCount)})
                  .ok());
  std::vector<WindowResult> results;
  engine.set_sink([&](const WindowResult& r) { results.push_back(r); });
  engine.Ingest({1, 0, 1.0, kWindowEnd});  // one-event trip
  engine.Ingest({2, 0, 1.0, kWindowEnd});  // another one-event trip
  engine.Ingest({3, 0, 1.0, 0});
  engine.Ingest({4, 0, 1.0, kWindowEnd});
  engine.Finish();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].value, 1.0);
  EXPECT_DOUBLE_EQ(results[1].value, 1.0);
  EXPECT_DOUBLE_EQ(results[2].value, 2.0);
}

TEST(EdgeCases, ClusterSingleLocalNoIntermediates) {
  Cluster cluster(ClusterSystem::kDesis, {1, 0});
  ASSERT_TRUE(
      cluster.Configure({Q(1, WindowSpec::Tumbling(100), AggregationFunction::kSum)})
          .ok());
  std::map<Timestamp, double> results;
  cluster.set_sink(
      [&](const WindowResult& r) { results[r.window_start] = r.value; });
  std::vector<Event> events;
  for (Timestamp t = 0; t < 500; t += 5) events.push_back({t, 0, 1.0, 0});
  cluster.IngestAt(0, events.data(), events.size());
  cluster.Advance(10'000);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_DOUBLE_EQ(results[0], 20.0);
}

TEST(EdgeCases, DeSWOutOfOrderIngestWorksToo) {
  // The reorder stage lives in SlicingEngine, so baselines built on it
  // (DeSW/Scotty) inherit out-of-order tolerance.
  DeSWEngine engine;
  engine.EnableOutOfOrderIngest(20);
  ASSERT_TRUE(
      engine.Configure({Q(1, WindowSpec::Tumbling(50), AggregationFunction::kSum)})
          .ok());
  std::map<Timestamp, double> results;
  engine.set_sink(
      [&](const WindowResult& r) { results[r.window_start] = r.value; });
  // Slightly shuffled stream.
  const Timestamp order[] = {2, 8, 5, 14, 11, 20, 17, 26, 23, 60, 55, 70};
  for (Timestamp t : order) engine.Ingest({t, 0, 1.0, 0});
  engine.AdvanceTo(1000);
  EXPECT_EQ(engine.dropped_events(), 0u);
  EXPECT_DOUBLE_EQ(results[0], 9.0);
  EXPECT_DOUBLE_EQ(results[50], 3.0);
}

}  // namespace
}  // namespace desis
