// The observability subsystem: metrics registry export formats (golden
// files + round-trip), log-scale histogram quantile accuracy, and the
// slice-tracer ring buffer. Everything here must also pass with
// DESIS_OBS=OFF, where the whole subsystem is compiled down to stubs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace desis::obs {
namespace {

// ----------------------------------------------------- mini JSON checker --
// A strict structural validator (no value extraction): enough to guarantee
// any JSON parser accepts our exports, without adding a parser dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

#if DESIS_OBS_ENABLED

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string GoldenPath(const char* name) {
  return std::string(DESIS_TEST_DATA_DIR) + "/golden/" + name;
}

#endif  // DESIS_OBS_ENABLED

// A registry with one series of each type and deterministic contents; the
// golden files pin the exact export bytes of this exact population.
void PopulateGoldenRegistry(MetricsRegistry& registry) {
  Counter* events = registry.GetCounter(
      "engine.events", {{"node", "3"}, {"role", "local"}}, "events");
  Gauge* hwm =
      registry.GetGauge("node.queue_hwm", {{"node", "3"}}, "messages");
  Histogram* latency = registry.GetHistogram("node.handler_latency_ns",
                                             {{"role", "local"}}, "ns");
  if (events == nullptr) return;  // DESIS_OBS=OFF stubs
  events->Add(41);
  events->Add();
  hwm->StoreMax(7);
  hwm->StoreMax(3);  // keeps the max
  for (int64_t v : {1, 2, 3, 10, 100, 1000, 10000, 100000}) {
    latency->Record(v);
  }
}

// --------------------------------------------------------------- metrics --

TEST(ObsMetrics, ExportsAreValidJsonAndCsv) {
  MetricsRegistry registry;
  PopulateGoldenRegistry(registry);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  const std::string csv = registry.ToCsv();
  // Every CSV row has exactly the header's column count.
  const size_t cols =
      static_cast<size_t>(std::count(csv.begin(), csv.end(), '\n')) == 0
          ? 0
          : static_cast<size_t>(
                std::count(csv.begin(), csv.end(), ',') /
                std::count(csv.begin(), csv.end(), '\n'));
  std::istringstream lines(csv);
  std::string line;
  size_t header_commas = 0;
  bool first = true;
  while (std::getline(lines, line)) {
    const size_t commas =
        static_cast<size_t>(std::count(line.begin(), line.end(), ','));
    if (first) {
      header_commas = commas;
      first = false;
    } else {
      EXPECT_EQ(commas, header_commas) << line;
    }
  }
  (void)cols;
}

#if DESIS_OBS_ENABLED

TEST(ObsMetrics, JsonMatchesGoldenFile) {
  MetricsRegistry registry;
  PopulateGoldenRegistry(registry);
  EXPECT_EQ(registry.ToJson() + "\n", ReadFile(GoldenPath("metrics.json")));
}

TEST(ObsMetrics, CsvMatchesGoldenFile) {
  MetricsRegistry registry;
  PopulateGoldenRegistry(registry);
  EXPECT_EQ(registry.ToCsv(), ReadFile(GoldenPath("metrics.csv")));
}

TEST(ObsMetrics, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x", {{"k", "v"}});
  Counter* b = registry.GetCounter("x", {{"k", "v"}});
  Counter* c = registry.GetCounter("x", {{"k", "w"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsHistogram, QuantilesWithinLogBucketErrorBound) {
  // Uniform integers in [1, 100000]: every quantile is known analytically;
  // the log-scale buckets (4 sub-bits) bound relative error at 6.25% plus
  // one in-bucket interpolation step.
  Histogram h;
  Rng rng(42);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    h.Record(1 + static_cast<int64_t>(rng.NextBounded(100000)));
  }
  EXPECT_EQ(h.count(), static_cast<uint64_t>(n));
  EXPECT_GE(h.min(), 1u);
  EXPECT_LE(h.max(), 100000u);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double expected = q * 100000;
    const double got = h.Quantile(q);
    EXPECT_NEAR(got, expected, expected * 0.09)
        << "q=" << q << " got " << got;
  }
}

TEST(ObsHistogram, ExactBelowSubBucketRegion) {
  Histogram h;
  for (int64_t v = 0; v < 16; ++v) h.Record(v);
  // Values below 2^4 land in exact unit buckets, so any quantile is off by
  // at most one in-bucket interpolation step (< 1.0 absolute).
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_NEAR(h.Quantile(0.5), 8.0, 1.0);
  EXPECT_EQ(h.sum(), 120u);
}

TEST(ObsHistogram, BucketMappingIsMonotoneAndContinuous) {
  uint32_t prev = 0;
  for (uint64_t v = 0; v < 100000; ++v) {
    const uint32_t b = Histogram::BucketFor(v);
    EXPECT_GE(b, prev);
    EXPECT_LE(b - prev, 1u) << "gap at " << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v);
    prev = b;
  }
}

#endif  // DESIS_OBS_ENABLED

// ----------------------------------------------------------------- trace --

TEST(ObsTrace, ExportsAreValidJson) {
  SliceTracer tracer(64);
  tracer.Record(SlicePhase::kSliceCreated, 1, 2, 0, 3, kSpanRoleLocal, 1000);
  tracer.Record(SlicePhase::kPartialShipped, 1, 2, 0, 3, kSpanRoleLocal,
                1000);
  tracer.Record(SlicePhase::kMerged, 1, 2, 0, 1, kSpanRoleIntermediate, 1000);
  tracer.Record(SlicePhase::kWindowEmitted, 0, 0, 7, 0, kSpanRoleRoot, 2000);
  EXPECT_TRUE(IsValidJson(tracer.ToJson())) << tracer.ToJson();
  EXPECT_TRUE(IsValidJson(tracer.ToChromeTrace())) << tracer.ToChromeTrace();
}

#if DESIS_OBS_ENABLED

TEST(ObsTrace, RingKeepsNewestSpansOldestFirst) {
  SliceTracer tracer(8);
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.Record(SlicePhase::kSliceCreated, i, 0, 0, 0, kSpanRoleLocal,
                  static_cast<Timestamp>(i));
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<SliceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].slice_id, 12 + i);  // newest 8, oldest first
  }
}

TEST(ObsTrace, ChromeTraceMapsLifecycleToAsyncEvents) {
  SliceTracer tracer(64);
  tracer.Record(SlicePhase::kSliceCreated, 5, 2, 0, 3, kSpanRoleLocal, 1000);
  tracer.Record(SlicePhase::kMerged, 5, 2, 0, 1, kSpanRoleIntermediate, 1000);
  tracer.Record(SlicePhase::kWindowEmitted, 5, 2, 9, 0, kSpanRoleRoot, 2000);
  const std::string trace = tracer.ToChromeTrace();
  EXPECT_NE(trace.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"n\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

#else  // !DESIS_OBS_ENABLED

TEST(ObsStubs, EverythingIsInertWhenCompiledOut) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(IsValidJson(registry.ToJson()));
  SliceTracer tracer;
  tracer.Record(SlicePhase::kSliceCreated, 1, 1, 0, 1, kSpanRoleLocal, 1);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

#endif  // DESIS_OBS_ENABLED

}  // namespace
}  // namespace desis::obs
