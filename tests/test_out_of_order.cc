#include "core/reorder_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"

namespace desis {
namespace {

TEST(ReorderBuffer, ReleasesInOrder) {
  ReorderBuffer buf(10);
  for (Timestamp ts : {5, 3, 8, 1, 12, 7}) {
    EXPECT_TRUE(buf.Push({ts, 0, 0.0, 0}));
  }
  // max seen = 12; releasable: ts + 10 <= 12 -> {1}.
  Event e;
  ASSERT_TRUE(buf.Pop(&e));
  EXPECT_EQ(e.ts, 1);
  EXPECT_FALSE(buf.Pop(&e));

  EXPECT_TRUE(buf.Push({30, 0, 0.0, 0}));
  std::vector<Timestamp> released;
  while (buf.Pop(&e)) released.push_back(e.ts);
  EXPECT_EQ(released, (std::vector<Timestamp>{3, 5, 7, 8, 12}));
}

TEST(ReorderBuffer, DropsEventsBehindFrontier) {
  ReorderBuffer buf(5);
  buf.Push({10, 0, 0.0, 0});
  buf.Push({20, 0, 0.0, 0});
  Event e;
  while (buf.Pop(&e)) {
  }
  EXPECT_EQ(buf.frontier(), 10);
  EXPECT_FALSE(buf.Push({4, 0, 0.0, 0}));  // older than released data
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_TRUE(buf.Push({15, 0, 0.0, 0}));
}

TEST(ReorderBuffer, PopUpToFlushesRegardlessOfSlack) {
  ReorderBuffer buf(1000);
  buf.Push({10, 0, 0.0, 0});
  buf.Push({5, 0, 0.0, 0});
  Event e;
  EXPECT_FALSE(buf.Pop(&e));  // lateness slack not exceeded
  ASSERT_TRUE(buf.PopUpTo(100, &e));
  EXPECT_EQ(e.ts, 5);
  ASSERT_TRUE(buf.PopUpTo(100, &e));
  EXPECT_EQ(e.ts, 10);
}

TEST(OutOfOrderEngine, ShuffledStreamMatchesOrderedRun) {
  Query q;
  q.id = 1;
  q.window = WindowSpec::Tumbling(100);
  q.agg = {AggregationFunction::kSum, 0};

  // Ordered reference.
  Rng rng(5);
  std::vector<Event> ordered;
  Timestamp ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += rng.NextInRange(1, 3);
    ordered.push_back({ts, 0, static_cast<double>(rng.NextBounded(100)), 0});
  }
  DesisEngine ref;
  ASSERT_TRUE(ref.Configure({q}).ok());
  std::map<Timestamp, double> want;
  ref.set_sink([&](const WindowResult& r) { want[r.window_start] = r.value; });
  for (const Event& e : ordered) ref.Ingest(e);
  ref.AdvanceTo(ts + 1000);

  // Shuffle within a bounded disorder window, ingest out of order.
  std::vector<Event> shuffled = ordered;
  for (size_t i = 0; i + 1 < shuffled.size(); i += 7) {
    const size_t j = std::min(shuffled.size() - 1, i + 5);
    std::swap(shuffled[i], shuffled[j]);
  }
  DesisEngine engine;
  engine.EnableOutOfOrderIngest(/*allowed_lateness=*/50);
  ASSERT_TRUE(engine.Configure({q}).ok());
  std::map<Timestamp, double> got;
  engine.set_sink([&](const WindowResult& r) { got[r.window_start] = r.value; });
  for (const Event& e : shuffled) engine.Ingest(e);
  engine.AdvanceTo(ts + 1000);

  EXPECT_EQ(engine.dropped_events(), 0u);
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [ws, value] : want) {
    ASSERT_TRUE(got.contains(ws)) << "window @" << ws;
    EXPECT_DOUBLE_EQ(got[ws], value) << "window @" << ws;
  }
}

TEST(OutOfOrderEngine, TooLateEventsAreDroppedNotMisassigned) {
  Query q;
  q.id = 1;
  q.window = WindowSpec::Tumbling(100);
  q.agg = {AggregationFunction::kCount, 0};
  DesisEngine engine;
  engine.EnableOutOfOrderIngest(10);
  ASSERT_TRUE(engine.Configure({q}).ok());
  std::map<Timestamp, uint64_t> got;
  engine.set_sink(
      [&](const WindowResult& r) { got[r.window_start] = r.event_count; });

  for (Timestamp t = 0; t < 500; t += 5) engine.Ingest({t, 0, 1.0, 0});
  engine.Ingest({50, 0, 1.0, 0});  // hopelessly late: frontier is ~485
  engine.AdvanceTo(1000);

  EXPECT_EQ(engine.dropped_events(), 1u);
  EXPECT_EQ(got[0], 20u);  // unchanged by the dropped event
}

}  // namespace
}  // namespace desis
