// Multi-hop topology tests: the paper discusses complicated networks with
// multiple intermediate layers between locals and the root (§6.4.1).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "net/cluster.h"

namespace desis {
namespace {

Query AvgQuery(QueryId id) {
  Query q;
  q.id = id;
  q.window = WindowSpec::Tumbling(100);
  q.agg = {AggregationFunction::kAverage, 0};
  return q;
}

using ResultMap = std::map<Timestamp, WindowResult>;

ResultMap RunChain(Cluster& cluster, int locals, int events_per_local,
                   uint64_t seed, Timestamp round = 20) {
  ResultMap results;
  cluster.set_sink([&](const WindowResult& r) { results[r.window_start] = r; });
  Rng rng(seed);
  std::vector<std::vector<Event>> streams(static_cast<size_t>(locals));
  Timestamp max_ts = 0;
  for (auto& stream : streams) {
    Timestamp ts = 0;
    for (int i = 0; i < events_per_local; ++i) {
      ts += rng.NextInRange(1, 4);
      stream.push_back({ts, 0, static_cast<double>(rng.NextBounded(100)), 0});
    }
    max_ts = std::max(max_ts, ts);
  }
  std::vector<size_t> cursor(streams.size(), 0);
  for (Timestamp t = 0; t <= max_ts + round; t += round) {
    for (size_t i = 0; i < streams.size(); ++i) {
      const size_t begin = cursor[i];
      while (cursor[i] < streams[i].size() &&
             streams[i][cursor[i]].ts < t + round) {
        ++cursor[i];
      }
      if (cursor[i] > begin) {
        cluster.IngestAt(static_cast<int>(i), streams[i].data() + begin,
                         cursor[i] - begin);
      }
    }
    cluster.Advance(t + round);
  }
  cluster.Advance(max_ts + 10'000);
  return results;
}

TEST(MultiHop, DeepChainsProduceIdenticalResults) {
  ResultMap reference;
  for (int layers : {1, 2, 4}) {
    Cluster cluster(ClusterSystem::kDesis, {4, 2, layers});
    ASSERT_TRUE(cluster.Configure({AvgQuery(1)}).ok());
    ResultMap results = RunChain(cluster, 4, 300, 99);
    ASSERT_FALSE(results.empty());
    if (layers == 1) {
      reference = results;
      continue;
    }
    ASSERT_EQ(results.size(), reference.size()) << layers << " layers";
    for (const auto& [ws, r] : reference) {
      ASSERT_TRUE(results.contains(ws)) << layers << " layers, window " << ws;
      EXPECT_DOUBLE_EQ(results[ws].value, r.value)
          << layers << " layers, window " << ws;
      EXPECT_EQ(results[ws].event_count, r.event_count);
    }
  }
}

TEST(MultiHop, CentralizedBytesGrowPerHopDesisBytesDoNot) {
  // §6.4.1: "the network overhead will linearly increase in a complicated
  // topology with multiple intermediate layers" for centralized systems,
  // while for decentralized systems the increase is negligible.
  // Realistic ratios: thousands of events per window and per watermark
  // round, as in the benches — otherwise heartbeat traffic dominates.
  Query query = AvgQuery(1);
  query.window = WindowSpec::Tumbling(1000);
  auto total_bytes = [&query](ClusterSystem system, int layers) {
    Cluster cluster(system, {2, 1, layers});
    EXPECT_TRUE(cluster.Configure({query}).ok());
    RunChain(cluster, 2, 20'000, 7, /*round=*/500);
    return cluster.BytesSentByRole(NodeRole::kLocal) +
           cluster.BytesSentByRole(NodeRole::kIntermediate);
  };

  const uint64_t scotty_1 = total_bytes(ClusterSystem::kScotty, 1);
  const uint64_t scotty_4 = total_bytes(ClusterSystem::kScotty, 4);
  // 1 local layer + 4 relay layers ~ 5/2 of the 1-layer total.
  EXPECT_GT(scotty_4, scotty_1 * 2);

  const uint64_t desis_1 = total_bytes(ClusterSystem::kDesis, 1);
  const uint64_t desis_4 = total_bytes(ClusterSystem::kDesis, 4);
  EXPECT_LT(desis_4, desis_1 * 4);       // grows with hops but...
  EXPECT_LT(desis_4 * 20, scotty_4);     // ...stays tiny vs centralized.
}

TEST(MultiHop, DiscoChainsMergeAtEveryLayer) {
  Cluster disco(ClusterSystem::kDisco, {4, 2, 3});
  ASSERT_TRUE(disco.Configure({AvgQuery(1)}).ok());
  ResultMap results = RunChain(disco, 4, 300, 21);
  ASSERT_FALSE(results.empty());

  Cluster desis(ClusterSystem::kDesis, {4, 2, 3});
  ASSERT_TRUE(desis.Configure({AvgQuery(1)}).ok());
  ResultMap expected = RunChain(desis, 4, 300, 21);
  ASSERT_EQ(results.size(), expected.size());
  for (const auto& [ws, r] : expected) {
    EXPECT_NEAR(results[ws].value, r.value, 1e-6) << "window " << ws;
  }
}

TEST(MultiHop, InvalidLayerCountRejected) {
  Cluster cluster(ClusterSystem::kDesis, {2, 1, 0});
  EXPECT_FALSE(cluster.Configure({AvgQuery(1)}).ok());
}

}  // namespace
}  // namespace desis
