// The desis-inspect toolchain (tools/inspect_lib.h): JSON reader, group
// cost / sharing-ratio extraction, the noise-aware sidecar diff that gates
// CI perf regressions, run keying, history lines, and the span -> Chrome
// trace round trip. Pure data transforms, so everything here runs
// identically with DESIS_OBS=OFF.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "inspect_lib.h"

namespace desis::tools {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(JsonParser::Parse(text, &v, &error)) << error;
  return v;
}

// --------------------------------------------------------------- json_lite --

TEST(JsonLite, ParsesScalarsContainersAndEscapes) {
  JsonValue v = Parse(
      R"({"s":"a\"b\nA","n":-2.5e2,"t":true,"f":false,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})");
  EXPECT_EQ(v["s"].AsString(), "a\"b\nA");
  EXPECT_DOUBLE_EQ(v["n"].AsNumber(), -250.0);
  EXPECT_TRUE(v["t"].boolean);
  EXPECT_FALSE(v["f"].boolean);
  EXPECT_TRUE(v["z"].is_null());
  ASSERT_EQ(v["arr"].array.size(), 3u);
  EXPECT_DOUBLE_EQ(v["arr"].array[2].AsNumber(), 3.0);
  EXPECT_EQ(v["obj"]["k"].AsString(), "v");
  // Missing keys chain to a shared null, never throw.
  EXPECT_TRUE(v["missing"]["deeper"]["still"].is_null());
}

TEST(JsonLite, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonParser::Parse("{\"a\":1", &v, &error));    // unterminated
  EXPECT_FALSE(JsonParser::Parse("{\"a\" 1}", &v, &error));   // missing ':'
  EXPECT_FALSE(JsonParser::Parse("[1,2] x", &v, &error));     // trailing
  EXPECT_FALSE(JsonParser::Parse("\"abc", &v, &error));       // open string
  EXPECT_FALSE(JsonParser::Parse("", &v, &error));            // empty
}

// --------------------------------------------------------- cost extraction --

const char* kMetricsJson = R"([
  {"name":"group.queries","type":"gauge","unit":"queries",
   "labels":{"group":"0"},"value":10},
  {"name":"group.operators","type":"gauge","unit":"operators",
   "labels":{"group":"0"},"value":2},
  {"name":"group.events_in","type":"counter","unit":"events",
   "labels":{"group":"0"},"value":500},
  {"name":"group.operator_evals","type":"counter","unit":"evals",
   "labels":{"group":"0","op":"sum"},"value":500},
  {"name":"group.operator_evals","type":"counter","unit":"evals",
   "labels":{"group":"0","op":"count"},"value":500},
  {"name":"health.watermark_lag_us","type":"gauge","unit":"us",
   "labels":{"node":"2","role":"local"},"value":40},
  {"name":"health.backlog","type":"gauge","unit":"slices",
   "labels":{"node":"0","role":"root"},"value":3}
])";

TEST(InspectCosts, SharingRatioFromGroupSeries) {
  const std::vector<GroupCost> costs = ExtractGroupCosts(Parse(kMetricsJson));
  ASSERT_EQ(costs.size(), 1u);
  const GroupCost& gc = costs[0];
  EXPECT_EQ(gc.group, "0");
  EXPECT_DOUBLE_EQ(gc.queries, 10);
  EXPECT_DOUBLE_EQ(gc.events_in, 500);
  EXPECT_DOUBLE_EQ(gc.operator_evals, 1000);  // summed across op labels
  // 10 queries x 500 events over 1000 shared evals: ratio 5 (= n/2 for n
  // identical averages, the Fig 6b sharing win).
  EXPECT_DOUBLE_EQ(gc.SharingRatio(), 5.0);
}

TEST(InspectCosts, OptSeriesRideOnGroupRows) {
  const char* json = R"([
    {"name":"group.queries","type":"gauge","unit":"queries",
     "labels":{"group":"0"},"value":4},
    {"name":"group.events_in","type":"counter","unit":"events",
     "labels":{"group":"0"},"value":100},
    {"name":"group.operator_evals","type":"counter","unit":"evals",
     "labels":{"group":"0","op":"sum"},"value":100},
    {"name":"opt.rewrites","type":"gauge","unit":"edges",
     "labels":{"group":"0"},"value":2},
    {"name":"opt.dag_depth","type":"gauge","unit":"levels",
     "labels":{"group":"0"},"value":3},
    {"name":"group.queries","type":"gauge","unit":"queries",
     "labels":{"group":"1"},"value":1},
    {"name":"group.events_in","type":"counter","unit":"events",
     "labels":{"group":"1"},"value":100},
    {"name":"group.operator_evals","type":"counter","unit":"evals",
     "labels":{"group":"1","op":"max"},"value":100}
  ])";
  const std::vector<GroupCost> costs = ExtractGroupCosts(Parse(json));
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_DOUBLE_EQ(costs[0].opt_rewrites, 2);
  EXPECT_DOUBLE_EQ(costs[0].opt_dag_depth, 3);
  EXPECT_DOUBLE_EQ(costs[1].opt_rewrites, 0);  // static plan: no opt.* series
  // Aggregate: (4*100 + 1*100) / (100 + 100) = 2.5.
  EXPECT_DOUBLE_EQ(AggregateSharingRatio(costs), 2.5);
  EXPECT_DOUBLE_EQ(AggregateSharingRatio({}), 0);
}

TEST(InspectCosts, ChurnHistogramsSurfaceCountAndPercentiles) {
  const char* json = R"([
    {"name":"opt.group_churn_ns","type":"histogram","unit":"ns",
     "labels":{"op":"remove"},"count":3,"sum":900,"min":100,"max":500,
     "p50":300,"p95":500,"p99":500},
    {"name":"opt.group_churn_ns","type":"histogram","unit":"ns",
     "labels":{"op":"add"},"count":10,"sum":5000,"min":200,"max":900,
     "p50":450,"p95":880,"p99":900}
  ])";
  const std::vector<ChurnStat> churn = ExtractChurn(Parse(json));
  ASSERT_EQ(churn.size(), 2u);  // sorted by op: add before remove
  EXPECT_EQ(churn[0].op, "add");
  EXPECT_DOUBLE_EQ(churn[0].count, 10);
  EXPECT_DOUBLE_EQ(churn[0].p50_ns, 450);
  EXPECT_DOUBLE_EQ(churn[0].p95_ns, 880);
  EXPECT_EQ(churn[1].op, "remove");
  EXPECT_DOUBLE_EQ(churn[1].p95_ns, 500);
  EXPECT_TRUE(ExtractChurn(Parse(kMetricsJson)).empty());
}

TEST(InspectSummary, ShowsOptPlanShapeAndChurn) {
  const char* sidecar = R"({"bench":"churn","obs_enabled":true,"runs":[
    {"run":"Desis","report":{"obs":{"metrics":{"metrics":[
      {"name":"group.queries","type":"gauge","unit":"queries",
       "labels":{"group":"0"},"value":4},
      {"name":"group.events_in","type":"counter","unit":"events",
       "labels":{"group":"0"},"value":100},
      {"name":"group.operator_evals","type":"counter","unit":"evals",
       "labels":{"group":"0","op":"sum"},"value":100},
      {"name":"opt.rewrites","type":"gauge","unit":"edges",
       "labels":{"group":"0"},"value":1},
      {"name":"opt.dag_depth","type":"gauge","unit":"levels",
       "labels":{"group":"0"},"value":2},
      {"name":"opt.group_churn_ns","type":"histogram","unit":"ns",
       "labels":{"op":"add"},"count":7,"sum":700,"min":50,"max":200,
       "p50":90,"p95":180,"p99":200}
    ]}}}}]})";
  const std::string text = Summarize(Parse(sidecar));
  EXPECT_NE(text.find("rewrites=1"), std::string::npos);
  EXPECT_NE(text.find("dag_depth=2"), std::string::npos);
  EXPECT_NE(text.find("churn add: count=7 p50_ns=90 p95_ns=180"),
            std::string::npos);
  // A single group needs no aggregate line (it equals the group's own).
  EXPECT_EQ(text.find("sharing_ratio (all groups)"), std::string::npos);
}

TEST(InspectHealth, RowsSortedByNodeWithRoles) {
  const std::vector<NodeHealthRow> rows = ExtractHealth(Parse(kMetricsJson));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].node, "0");
  EXPECT_EQ(rows[0].role, "root");
  EXPECT_DOUBLE_EQ(rows[0].backlog, 3);
  EXPECT_EQ(rows[1].node, "2");
  EXPECT_EQ(rows[1].role, "local");
  EXPECT_DOUBLE_EQ(rows[1].watermark_lag_us, 40);
}

// --------------------------------------------------------- crash recovery --

TEST(InspectRecovery, CountersSurfaceInSummary) {
  const char* sidecar = R"({"bench":"chaos","obs_enabled":false,"runs":[
    {"run":"Desis","report":{
      "totals":{"messages_dropped":12},
      "recovery":{"reattaches":2,"replayed_slices":9,"stale_dropped":3,
                  "resend_buffer_bytes":4096,"resend_overflow_drops":0}}}]})";
  const JsonValue v = Parse(sidecar);
  const RecoveryStat rs = ExtractRecovery(v["runs"].array[0]["report"]);
  EXPECT_TRUE(rs.present);
  EXPECT_DOUBLE_EQ(rs.reattaches, 2);
  EXPECT_DOUBLE_EQ(rs.replayed_slices, 9);
  EXPECT_DOUBLE_EQ(rs.stale_dropped, 3);
  EXPECT_DOUBLE_EQ(rs.resend_buffer_bytes, 4096);
  EXPECT_FALSE(rs.Suspect());  // drops covered by replay traffic
  const std::string text = Summarize(v);
  EXPECT_NE(text.find("recovery: reattaches=2 replayed_slices=9 "
                      "stale_dropped=3 resend_buffer_bytes=4096 "
                      "overflow_drops=0"),
            std::string::npos);
  EXPECT_EQ(text.find("SUSPECT"), std::string::npos);
}

TEST(InspectRecovery, DropsWithoutReplayAreFlaggedSuspect) {
  const char* sidecar = R"({"bench":"chaos","obs_enabled":false,"runs":[
    {"run":"Desis","report":{
      "totals":{"messages_dropped":7},
      "recovery":{"reattaches":0,"replayed_slices":0,"stale_dropped":0,
                  "resend_buffer_bytes":0,"resend_overflow_drops":0}}}]})";
  const JsonValue v = Parse(sidecar);
  EXPECT_TRUE(ExtractRecovery(v["runs"].array[0]["report"]).Suspect());
  EXPECT_NE(Summarize(v).find("SUSPECT: 7 messages dropped"),
            std::string::npos);
}

// ------------------------------------------------------- memory governance --

TEST(InspectMemory, GovernorSeriesSumAcrossShardsIntoSummaryLine) {
  // Two shard governors plus a serial one: the memory line aggregates them.
  const char* sidecar = R"({"bench":"memory_cap","obs_enabled":true,"runs":[
    {"run":"capped","report":{"obs":{"metrics":{"metrics":[
      {"name":"engine.bytes_resident","labels":{"shard":"0"},"value":1000},
      {"name":"engine.bytes_resident","labels":{"shard":"1"},"value":500},
      {"name":"engine.spills","labels":{"shard":"0"},"value":4},
      {"name":"engine.spills","labels":{"shard":"1"},"value":2},
      {"name":"engine.spill_bytes","labels":{"shard":"0"},"value":65536},
      {"name":"engine.spill_restores","labels":{"shard":"0"},"value":6},
      {"name":"engine.sketch_lanes","labels":{"group":"0"},"value":1}]}}}}]})";
  const JsonValue v = Parse(sidecar);
  const MemoryStat ms = ExtractMemory(MetricsOf(v["runs"].array[0]));
  EXPECT_TRUE(ms.present);
  EXPECT_DOUBLE_EQ(ms.bytes_resident, 1500);
  EXPECT_DOUBLE_EQ(ms.spills, 6);
  EXPECT_DOUBLE_EQ(ms.spill_bytes, 65536);
  EXPECT_DOUBLE_EQ(ms.restores, 6);
  EXPECT_DOUBLE_EQ(ms.sketch_lanes, 1);
  EXPECT_FALSE(ms.Suspect());  // restores on par with spills: healthy
  const std::string text = Summarize(v);
  EXPECT_NE(text.find("memory: bytes_resident=1500 spills=6 "
                      "spill_bytes=65536 restores=6 sketch_lanes=1"),
            std::string::npos);
  EXPECT_EQ(text.find("SUSPECT"), std::string::npos);
}

TEST(InspectMemory, RestoreStormIsFlaggedAsSpillThrash) {
  const char* sidecar = R"({"bench":"memory_cap","obs_enabled":true,"runs":[
    {"run":"capped","report":{"obs":{"metrics":{"metrics":[
      {"name":"engine.spills","labels":{},"value":3},
      {"name":"engine.spill_restores","labels":{},"value":100}]}}}}]})";
  const JsonValue v = Parse(sidecar);
  EXPECT_TRUE(ExtractMemory(MetricsOf(v["runs"].array[0])).Suspect());
  EXPECT_NE(Summarize(v).find("SUSPECT: 100 restores vs 3 spills"),
            std::string::npos);
}

TEST(InspectMemory, AbsentSeriesMeansUngoverned) {
  // Ungoverned runs export no engine.bytes_resident/spill series: no memory
  // line, and zero restores over zero spills is not thrash.
  const char* sidecar = R"({"bench":"fig6","obs_enabled":true,"runs":[
    {"run":"Desis","report":{"obs":{"metrics":{"metrics":[
      {"name":"engine.shard_events","labels":{"shard":"0"},"value":10}]}}}}]})";
  const JsonValue v = Parse(sidecar);
  EXPECT_FALSE(ExtractMemory(MetricsOf(v["runs"].array[0])).present);
  EXPECT_FALSE(ExtractMemory(MetricsOf(v["runs"].array[0])).Suspect());
  const std::string text = Summarize(v);
  EXPECT_EQ(text.find("memory:"), std::string::npos);
  EXPECT_EQ(text.find("SUSPECT"), std::string::npos);
}

TEST(InspectRecovery, AbsentSectionMeansRecoveryOff) {
  // Runs without recovery enabled have no "recovery" object: nothing to
  // report, and a lossy run is *not* suspect (nothing promised recovery).
  const char* sidecar = R"({"bench":"fig6","obs_enabled":false,"runs":[
    {"run":"Desis","report":{"totals":{"messages_dropped":5}}}]})";
  const JsonValue v = Parse(sidecar);
  EXPECT_FALSE(ExtractRecovery(v["runs"].array[0]["report"]).present);
  EXPECT_FALSE(ExtractRecovery(v["runs"].array[0]["report"]).Suspect());
  const std::string text = Summarize(v);
  EXPECT_EQ(text.find("recovery:"), std::string::npos);
  EXPECT_EQ(text.find("SUSPECT"), std::string::npos);
}

// ------------------------------------------------------------------- diff --

std::string SidecarJson(double events_per_sec, double bytes,
                        double events_in = 500) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      R"({"bench":"fig6","scale":1,"obs_enabled":true,)"
      R"("meta":{"git_sha":"abc1234","written_utc":"2026-01-01T00:00:00Z"},)"
      R"("runs":[{"run":"Desis","report":{"events_per_sec":%f,)"
      R"("roles":{"local":{"bytes_sent":%f}},)"
      R"("obs":{"metrics":{"metrics":[)"
      R"({"name":"group.queries","type":"gauge","unit":"queries",)"
      R"("labels":{"group":"0"},"value":10},)"
      R"({"name":"group.events_in","type":"counter","unit":"events",)"
      R"("labels":{"group":"0"},"value":%f},)"
      R"({"name":"group.operator_evals","type":"counter","unit":"evals",)"
      R"("labels":{"group":"0","op":"sum"},"value":500}]}}}}]})",
      events_per_sec, bytes, events_in);
  return buf;
}

TEST(InspectDiff, IdenticalSidecarsHaveNoRegression) {
  const JsonValue a = Parse(SidecarJson(100000, 4096));
  const DiffResult r = DiffSidecars(a, a, DiffOptions{});
  EXPECT_TRUE(r.comparable);
  EXPECT_GT(r.compared, 0u);
  EXPECT_FALSE(r.HasRegression());
  EXPECT_TRUE(r.findings.empty());
}

TEST(InspectDiff, ThroughputDropBeyondBandIsARegression) {
  const JsonValue before = Parse(SidecarJson(100000, 4096));
  const JsonValue after = Parse(SidecarJson(80000, 4096));  // -20%
  const DiffResult r = DiffSidecars(before, after, DiffOptions{});
  ASSERT_TRUE(r.HasRegression());
  EXPECT_EQ(r.findings[0].metric, "events_per_sec");
  // Throughput is higher-is-better: the same 20% as an *increase* is a
  // change, not a regression.
  const DiffResult up = DiffSidecars(after, before, DiffOptions{});
  EXPECT_FALSE(up.HasRegression());
  ASSERT_EQ(up.findings.size(), 1u);
  EXPECT_FALSE(up.findings[0].regression);
}

TEST(InspectDiff, StableOnlySkipsWallClockMetrics) {
  const JsonValue before = Parse(SidecarJson(100000, 4096));
  const JsonValue after = Parse(SidecarJson(80000, 4096));
  DiffOptions options;
  options.stable_only = true;
  const DiffResult r = DiffSidecars(before, after, options);
  EXPECT_FALSE(r.HasRegression());
  EXPECT_TRUE(r.findings.empty());
}

TEST(InspectDiff, CounterDriftIsFlaggedEvenStableOnly) {
  // Deterministic counters (bytes on the wire, events counted) moving 20%
  // means behaviour changed, not noise — flagged in stable-only mode too.
  const JsonValue before = Parse(SidecarJson(100000, 4096, 500));
  const JsonValue after = Parse(SidecarJson(100000, 4915.2, 600));
  DiffOptions options;
  options.stable_only = true;
  const DiffResult r = DiffSidecars(before, after, options);
  ASSERT_TRUE(r.HasRegression());
  bool saw_bytes = false, saw_events_in = false;
  for (const DiffFinding& f : r.findings) {
    if (f.metric == "roles.local.bytes_sent") saw_bytes = true;
    if (f.metric.find("group.events_in") != std::string::npos) {
      saw_events_in = true;
    }
  }
  EXPECT_TRUE(saw_bytes);
  EXPECT_TRUE(saw_events_in);
}

TEST(InspectDiff, DifferentBenchesAreNotComparable) {
  JsonValue a = Parse(SidecarJson(100000, 4096));
  JsonValue b = Parse(SidecarJson(100000, 4096));
  b.object["bench"].str = "fig11";
  const DiffResult r = DiffSidecars(a, b, DiffOptions{});
  EXPECT_FALSE(r.comparable);
}

TEST(InspectDiff, DifferentEngineShardsAreNotComparable) {
  // A 2-shard run and the serial seed run measure different code paths;
  // the meta.engine_shards lists must match for a diff to be meaningful.
  JsonValue a = Parse(SidecarJson(100000, 4096));
  JsonValue b = Parse(SidecarJson(100000, 4096));
  a.object["meta"] = Parse(R"({"engine_shards":[0],"hw_threads":8})");
  b.object["meta"] = Parse(R"({"engine_shards":[0,2],"hw_threads":8})");
  EXPECT_FALSE(DiffSidecars(a, b, DiffOptions{}).comparable);
  // Identical shard configs stay comparable; hardware thread counts are
  // recorded for provenance but never gate the diff.
  b.object["meta"] = Parse(R"({"engine_shards":[0],"hw_threads":128})");
  EXPECT_TRUE(DiffSidecars(a, b, DiffOptions{}).comparable);
  // Pre-sharding sidecars (no engine_shards list at all) keep diffing.
  const JsonValue legacy = Parse(SidecarJson(100000, 4096));
  EXPECT_TRUE(DiffSidecars(legacy, legacy, DiffOptions{}).comparable);
}

TEST(InspectDiff, DuplicateRunLabelsPairByOccurrence) {
  // Sweeps record the same label repeatedly (Fig 6b: "Desis" at each n);
  // keys must pair first-with-first, second-with-second.
  const char* sweep =
      R"({"bench":"fig6","obs_enabled":true,"runs":[)"
      R"({"run":"Desis","report":{"results":100}},)"
      R"({"run":"Desis","report":{"results":200}}]})";
  const JsonValue v = Parse(sweep);
  const auto keyed = KeyedRuns(v);
  ASSERT_EQ(keyed.size(), 2u);
  EXPECT_EQ(keyed[0].first, "Desis");
  EXPECT_EQ(keyed[1].first, "Desis#1");
  // Identical sweeps diff clean — positional pairing would cross 100/200.
  const DiffResult r = DiffSidecars(v, v, DiffOptions{});
  EXPECT_EQ(r.compared, 2u);
  EXPECT_FALSE(r.HasRegression());
}

// ---------------------------------------------------------------- history --

TEST(InspectHistory, LineCarriesProvenanceAndHeadlines) {
  const JsonValue v = Parse(SidecarJson(123456, 4096));
  const std::string line = HistoryLine(v);
  JsonValue parsed = Parse(line);  // the JSONL line is itself valid JSON
  EXPECT_EQ(parsed["bench"].AsString(), "fig6");
  EXPECT_EQ(parsed["git_sha"].AsString(), "abc1234");
  EXPECT_EQ(parsed["written_utc"].AsString(), "2026-01-01T00:00:00Z");
  EXPECT_NEAR(parsed["runs"]["Desis"].AsNumber(), 123456, 1);
  // Runs carrying group.* series also record the aggregate sharing ratio
  // (here one group: 10 queries x 500 events over 500 evals = 10).
  EXPECT_NEAR(parsed["sharing_ratio"]["Desis"].AsNumber(), 10, 1e-9);
  // Sidecars without group series (baseline-only runs) omit the object.
  const JsonValue bare =
      Parse(R"({"bench":"b","runs":[{"run":"X","report":{"results":7}}]})");
  EXPECT_TRUE(Parse(HistoryLine(bare))["sharing_ratio"].is_null());
}

// ------------------------------------------------------------ trace merge --

TEST(InspectTrace, SpansRoundTripIntoGlobalChromeTrace) {
  const char* sidecar =
      R"({"bench":"fig6","obs_enabled":true,"runs":[{"run":"Desis",)"
      R"("report":{},"spans":[)"
      R"({"phase":"slice_created","slice_id":5,"group":2,"query":0,)"
      R"("node":2,"role":"local","virtual_ts":100,"real_ns":1},)"
      R"({"phase":"merged","slice_id":5,"group":2,"query":0,)"
      R"("node":1,"role":"intermediate","virtual_ts":100,"real_ns":2},)"
      R"({"phase":"merged","slice_id":5,"group":2,"query":0,)"
      R"("node":0,"role":"root","virtual_ts":100,"real_ns":3},)"
      R"({"phase":"bogus_phase","slice_id":9,"group":0,"query":0,)"
      R"("node":0,"role":"root","virtual_ts":1,"real_ns":4}]}]})";
  const JsonValue v = Parse(sidecar);
  const std::vector<obs::SliceSpan> spans =
      SpansFromJson(v["runs"].array[0]["spans"]);
  ASSERT_EQ(spans.size(), 3u);  // the bogus phase is skipped
  EXPECT_EQ(spans[0].phase, obs::SlicePhase::kSliceCreated);
  EXPECT_EQ(spans[1].role, obs::kSpanRoleIntermediate);
  EXPECT_EQ(spans[2].node_id, 0u);

  const std::string trace = MergedChromeTrace(v);
  JsonValue parsed = Parse(trace);
  EXPECT_TRUE(parsed["traceEvents"].is_array());
  // One *global* async id ties the slice's life across the three node
  // processes — that is the cross-node correlation contract.
  EXPECT_NE(trace.find("\"id2\""), std::string::npos);
  EXPECT_NE(trace.find("g2.s5"), std::string::npos);
  EXPECT_NE(trace.find("process_name"), std::string::npos);
}

}  // namespace
}  // namespace desis::tools
