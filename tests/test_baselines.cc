#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "baselines/ce_buffer.h"
#include "baselines/de_bucket.h"
#include "baselines/de_sw.h"
#include "core/engine.h"
#include "gen/data_generator.h"
#include "gen/query_generator.h"

namespace desis {
namespace {

using ResultMap = std::map<QueryId, std::map<Timestamp, WindowResult>>;

ResultMap RunEngine(StreamEngine& engine, const std::vector<Event>& events,
                    Timestamp final_wm) {
  ResultMap results;
  engine.set_sink([&](const WindowResult& r) {
    results[r.query_id][r.window_start] = r;
  });
  for (const Event& e : events) engine.Ingest(e);
  engine.AdvanceTo(final_wm);
  return results;
}

void ExpectSameResults(const ResultMap& got, const ResultMap& want,
                       const std::string& which) {
  ASSERT_EQ(got.size(), want.size()) << which;
  for (const auto& [qid, windows] : want) {
    auto it = got.find(qid);
    ASSERT_NE(it, got.end()) << which << ": query " << qid;
    ASSERT_EQ(it->second.size(), windows.size()) << which << ": query " << qid;
    for (const auto& [ws, result] : windows) {
      auto wit = it->second.find(ws);
      ASSERT_NE(wit, it->second.end())
          << which << ": query " << qid << " window @" << ws;
      EXPECT_NEAR(wit->second.value, result.value, 1e-9)
          << which << ": query " << qid << " window @" << ws;
      EXPECT_EQ(wit->second.event_count, result.event_count)
          << which << ": query " << qid << " window @" << ws;
    }
  }
}

// Every engine must agree on every workload: Desis is the one under test,
// the baselines are simple enough to serve as semantics oracles for it
// (and vice versa).
class EngineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalence, AllEnginesAgreeOnRandomWorkload) {
  const uint64_t seed = GetParam();

  QueryGeneratorConfig qcfg;
  qcfg.seed = seed;
  qcfg.num_keys = 3;
  qcfg.min_length = 50;
  qcfg.max_length = 400;
  qcfg.window_types = {WindowType::kTumbling, WindowType::kSliding,
                       WindowType::kSession};
  qcfg.functions = {AggregationFunction::kSum, AggregationFunction::kAverage,
                    AggregationFunction::kMax, AggregationFunction::kCount,
                    AggregationFunction::kMedian,
                    AggregationFunction::kQuantile};
  qcfg.min_gap = 30;
  qcfg.max_gap = 120;
  auto queries = QueryGenerator(qcfg).Take(12);

  DataGeneratorConfig dcfg;
  dcfg.seed = seed + 1000;
  dcfg.num_keys = 3;
  dcfg.mean_interval = 3;
  auto events = DataGenerator(dcfg).Take(3000);
  const Timestamp final_wm = events.back().ts + 10000;

  DesisEngine desis;
  DeSWEngine desw;
  ScottyEngine scotty;
  DeBucketEngine debucket;
  CeBufferEngine cebuffer;
  ASSERT_TRUE(desis.Configure(queries).ok());
  ASSERT_TRUE(desw.Configure(queries).ok());
  ASSERT_TRUE(scotty.Configure(queries).ok());
  ASSERT_TRUE(debucket.Configure(queries).ok());
  ASSERT_TRUE(cebuffer.Configure(queries).ok());

  auto want = RunEngine(desis, events, final_wm);
  ASSERT_FALSE(want.empty());
  ExpectSameResults(RunEngine(desw, events, final_wm), want, "DeSW");
  ExpectSameResults(RunEngine(scotty, events, final_wm), want, "Scotty");
  ExpectSameResults(RunEngine(debucket, events, final_wm), want, "DeBucket");
  ExpectSameResults(RunEngine(cebuffer, events, final_wm), want, "CeBuffer");
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EngineEquivalence, CountWindowsAgree) {
  std::vector<Query> queries;
  Query q;
  q.id = 1;
  q.window = WindowSpec::CountTumbling(100);
  q.agg = {AggregationFunction::kSum, 0};
  queries.push_back(q);
  q.id = 2;
  q.window = WindowSpec::CountSliding(100, 25);
  q.agg = {AggregationFunction::kMax, 0};
  queries.push_back(q);

  DataGeneratorConfig dcfg;
  dcfg.seed = 99;
  auto events = DataGenerator(dcfg).Take(2000);
  const Timestamp final_wm = events.back().ts + 1000;

  DesisEngine desis;
  DeBucketEngine debucket;
  CeBufferEngine cebuffer;
  ASSERT_TRUE(desis.Configure(queries).ok());
  ASSERT_TRUE(debucket.Configure(queries).ok());
  ASSERT_TRUE(cebuffer.Configure(queries).ok());
  auto want = RunEngine(desis, events, final_wm);
  ASSERT_FALSE(want.empty());
  ExpectSameResults(RunEngine(debucket, events, final_wm), want, "DeBucket");
  ExpectSameResults(RunEngine(cebuffer, events, final_wm), want, "CeBuffer");
}

TEST(EngineWorkCounters, DesisSharesWorkDeSWDoesNot) {
  // 10 queries: 5 average + 5 sum over the same tumbling window. Desis puts
  // them in one group with {sum, count}; DeSW needs two groups.
  std::vector<Query> queries;
  for (QueryId id = 1; id <= 10; ++id) {
    Query q;
    q.id = id;
    q.window = WindowSpec::Tumbling(100);
    q.agg = {id <= 5 ? AggregationFunction::kAverage
                     : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  DataGeneratorConfig dcfg;
  auto events = DataGenerator(dcfg).Take(5000);

  DesisEngine desis;
  DeSWEngine desw;
  DeBucketEngine debucket;
  ASSERT_TRUE(desis.Configure(queries).ok());
  ASSERT_TRUE(desw.Configure(queries).ok());
  ASSERT_TRUE(debucket.Configure(queries).ok());
  EXPECT_EQ(desis.num_groups(), 1u);
  EXPECT_EQ(desw.num_groups(), 2u);

  for (const Event& e : events) {
    desis.Ingest(e);
    desw.Ingest(e);
    debucket.Ingest(e);
  }
  // Desis: 2 operator executions per event ({sum, count} shared by all 10).
  EXPECT_EQ(desis.stats().operator_executions, 2 * events.size());
  // DeSW: avg group does {sum,count}, sum group does {sum}: 3 per event.
  EXPECT_EQ(desw.stats().operator_executions, 3 * events.size());
  // DeBucket: every query's bucket separately: 5*2 + 5*1 = 15 per event.
  EXPECT_EQ(debucket.stats().operator_executions, 15 * events.size());
}

TEST(EngineWorkCounters, SliceCountsMatchPaperFig8) {
  // Tumbling windows, lengths 1..10s: slice boundaries are the union of all
  // window boundaries — with second-granularity lengths that is one slice
  // per second (the paper reports 61/minute including both ends).
  std::vector<Query> queries;
  for (QueryId id = 1; id <= 10; ++id) {
    Query q;
    q.id = id;
    q.window = WindowSpec::Tumbling(static_cast<Timestamp>(id) * kSecond);
    q.agg = {AggregationFunction::kAverage, 0};
    queries.push_back(q);
  }
  DesisEngine desis;
  ASSERT_TRUE(desis.Configure(queries).ok());
  EXPECT_EQ(desis.num_groups(), 1u);

  DataGeneratorConfig dcfg;
  dcfg.mean_interval = 10 * kMillisecond;
  DataGenerator gen(dcfg);
  while (gen.now() < kMinute) desis.Ingest(gen.Next());
  // ~60 slices in the first minute, not 60 * 10 windows.
  EXPECT_GE(desis.stats().slices_created, 58u);
  EXPECT_LE(desis.stats().slices_created, 62u);
}

TEST(Generators, DataGeneratorIsDeterministic) {
  DataGeneratorConfig cfg;
  cfg.seed = 5;
  auto a = DataGenerator(cfg).Take(100);
  auto b = DataGenerator(cfg).Take(100);
  EXPECT_EQ(a, b);
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i].ts, a[i - 1].ts);
  for (const Event& e : a) {
    EXPECT_GE(e.value, 0.0);
    EXPECT_LE(e.value, 200.0);
    EXPECT_LT(e.key, cfg.num_keys);
  }
}

TEST(Generators, MarkersAndGapsAppear) {
  DataGeneratorConfig cfg;
  cfg.marker_probability = 0.1;
  cfg.gap_probability = 0.05;
  cfg.gap_length = 1000;
  cfg.seed = 6;
  auto events = DataGenerator(cfg).Take(1000);
  int markers = 0;
  int gaps = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].marker != kNoMarker) ++markers;
    if (i > 0 && events[i].ts - events[i - 1].ts >= 1000) ++gaps;
  }
  EXPECT_GT(markers, 50);
  EXPECT_GT(gaps, 20);
}

TEST(Generators, QueryGeneratorProducesValidQueries) {
  QueryGeneratorConfig cfg;
  cfg.seed = 7;
  cfg.num_keys = 5;
  cfg.window_types = {WindowType::kTumbling, WindowType::kSliding,
                      WindowType::kSession, WindowType::kUserDefined};
  cfg.functions = {AggregationFunction::kSum, AggregationFunction::kQuantile};
  cfg.count_measure_probability = 0.3;
  auto queries = QueryGenerator(cfg).Take(200);
  std::map<WindowType, int> types;
  for (const Query& q : queries) {
    EXPECT_TRUE(q.Validate().ok()) << q.window.ToString();
    ++types[q.window.type];
  }
  EXPECT_EQ(types.size(), 4u);  // all types appear
}

}  // namespace
}  // namespace desis
