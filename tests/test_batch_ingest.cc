// Batch/per-event equivalence: IngestBatch() must produce window results
// identical to Ingest() called once per event — including on the forced
// per-event fallback paths (session, count-measure, user-defined windows and
// dedup lanes) and in out-of-order mode — across batch sizes and engines.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/ce_buffer.h"
#include "baselines/de_bucket.h"
#include "baselines/de_sw.h"
#include "common/rng.h"
#include "core/engine.h"

namespace desis {
namespace {

std::unique_ptr<StreamEngine> MakeEngine(const std::string& name) {
  if (name == "Desis") return std::make_unique<DesisEngine>();
  if (name == "DeSW") return std::make_unique<DeSWEngine>();
  if (name == "Scotty") return std::make_unique<ScottyEngine>();
  if (name == "DeBucket") return std::make_unique<DeBucketEngine>();
  return std::make_unique<CeBufferEngine>();
}

// A stream exercising every boundary kind: pauses close sessions, markers
// end user-defined windows, occasional exact duplicates feed dedup lanes.
std::vector<Event> MakeStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  Timestamp ts = 0;
  while (events.size() < n) {
    ts += rng.NextBool(0.03) ? rng.NextInRange(30, 60) : rng.NextInRange(1, 5);
    const uint32_t marker = rng.NextBool(0.02) ? kWindowEnd : kNoMarker;
    const Event e{ts, static_cast<uint32_t>(rng.NextBounded(5)),
                  1.0 + static_cast<double>(rng.NextBounded(99)), marker};
    events.push_back(e);
    if (rng.NextBool(0.1) && events.size() < n) events.push_back(e);  // dup
  }
  return events;
}

std::vector<WindowResult> RunStream(const std::string& engine_name,
                              const std::vector<Query>& queries,
                              const std::vector<Event>& events,
                              size_t batch_size) {
  auto engine = MakeEngine(engine_name);
  EXPECT_TRUE(engine->Configure(queries).ok());
  std::vector<WindowResult> results;
  engine->set_sink([&](const WindowResult& r) { results.push_back(r); });
  if (batch_size == 0) {
    for (const Event& e : events) engine->Ingest(e);
  } else {
    for (size_t i = 0; i < events.size(); i += batch_size) {
      engine->IngestBatch(events.data() + i,
                          std::min(batch_size, events.size() - i));
    }
  }
  engine->AdvanceTo(events.back().ts + 100 * kSecond);
  std::sort(results.begin(), results.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return std::tie(a.query_id, a.window_start, a.window_end) <
                     std::tie(b.query_id, b.window_start, b.window_end);
            });
  return results;
}

void ExpectSameResults(const std::vector<WindowResult>& want,
                       const std::vector<WindowResult>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].query_id, got[i].query_id);
    EXPECT_EQ(want[i].window_start, got[i].window_start);
    EXPECT_EQ(want[i].window_end, got[i].window_end);
    EXPECT_EQ(want[i].event_count, got[i].event_count);
    EXPECT_DOUBLE_EQ(want[i].value, got[i].value);
  }
}

const size_t kStreamLen = 1500;
const size_t kBatchSizes[] = {1, 7, 256, kStreamLen};
const char* kEngines[] = {"Desis", "Scotty", "CeBuffer"};

struct NamedSpec {
  const char* name;
  WindowSpec spec;
};

std::vector<NamedSpec> AllWindowSpecs() {
  return {{"tumbling", WindowSpec::Tumbling(97)},
          {"sliding", WindowSpec::Sliding(120, 37)},
          {"session", WindowSpec::Session(23)},
          {"count_tumbling", WindowSpec::CountTumbling(50)},
          {"count_sliding", WindowSpec::CountSliding(64, 16)},
          {"user_defined", WindowSpec::UserDefined()}};
}

TEST(BatchIngestEquivalence, EveryWindowTypeMatchesPerEvent) {
  const auto events = MakeStream(kStreamLen, 7);
  for (const char* engine : kEngines) {
    for (const NamedSpec& ns : AllWindowSpecs()) {
      Query q;
      q.id = 1;
      q.window = ns.spec;
      q.agg = {AggregationFunction::kAverage, 0};
      const auto want = RunStream(engine, {q}, events, 0);
      ASSERT_FALSE(want.empty()) << engine << " " << ns.name;
      for (size_t batch : kBatchSizes) {
        SCOPED_TRACE(std::string(engine) + " " + ns.name + " batch=" +
                     std::to_string(batch));
        ExpectSameResults(want, RunStream(engine, {q}, events, batch));
      }
    }
  }
}

TEST(BatchIngestEquivalence, DedupLaneFallsBackAndMatches) {
  const auto events = MakeStream(kStreamLen, 11);  // ~10% exact duplicates
  for (const char* engine : {"Desis", "Scotty"}) {
    Query q;
    q.id = 1;
    q.window = WindowSpec::Tumbling(97);
    q.agg = {AggregationFunction::kCount, 0};
    q.deduplicate = true;
    const auto want = RunStream(engine, {q}, events, 0);
    ASSERT_FALSE(want.empty());
    for (size_t batch : kBatchSizes) {
      SCOPED_TRACE(std::string(engine) + " batch=" + std::to_string(batch));
      ExpectSameResults(want, RunStream(engine, {q}, events, batch));
    }
  }
}

// A mixed multi-query workload: fast-path groups (tumbling/sliding over
// several lanes and functions) alongside forced-fallback groups (session,
// count, user-defined, dedup), all fed from the same batches.
std::vector<Query> MixedQueries() {
  std::vector<Query> queries;
  QueryId id = 1;
  auto add = [&](WindowSpec w, AggregationFunction fn, Predicate p,
                 bool dedup = false) {
    Query q;
    q.id = id++;
    q.window = w;
    q.agg = {fn, 0.9};
    q.predicate = p;
    q.deduplicate = dedup;
    queries.push_back(q);
  };
  add(WindowSpec::Tumbling(97), AggregationFunction::kSum, Predicate::All());
  add(WindowSpec::Tumbling(200), AggregationFunction::kAverage,
      Predicate::KeyEquals(2));
  add(WindowSpec::Sliding(120, 37), AggregationFunction::kMax,
      Predicate::ValueRange(10.0, 80.0));
  add(WindowSpec::Sliding(300, 50), AggregationFunction::kQuantile,
      Predicate::All());
  add(WindowSpec::Session(23), AggregationFunction::kSum, Predicate::All());
  add(WindowSpec::CountTumbling(50), AggregationFunction::kAverage,
      Predicate::All());
  add(WindowSpec::UserDefined(), AggregationFunction::kCount,
      Predicate::All());
  add(WindowSpec::Tumbling(97), AggregationFunction::kCount,
      Predicate::KeyEquals(1), /*dedup=*/true);
  return queries;
}

TEST(BatchIngestEquivalence, MixedMultiQueryWorkloadMatches) {
  const auto events = MakeStream(kStreamLen, 13);
  const auto queries = MixedQueries();
  for (const char* engine : {"Desis", "DeSW", "Scotty", "CeBuffer"}) {
    const auto want = RunStream(engine, queries, events, 0);
    ASSERT_FALSE(want.empty()) << engine;
    for (size_t batch : kBatchSizes) {
      SCOPED_TRACE(std::string(engine) + " batch=" + std::to_string(batch));
      ExpectSameResults(want, RunStream(engine, queries, events, batch));
    }
  }
}

// Out-of-order mode: the reorder buffer must release — and drop — exactly
// the same events whether fed per event or in batches.
TEST(BatchIngestEquivalence, OutOfOrderModeMatches) {
  const auto ordered = MakeStream(kStreamLen, 17);
  Rng rng(19);
  std::vector<Event> arrival = ordered;
  for (Event& e : arrival) {
    // Jitter beyond the allowed lateness so some events get dropped.
    e.ts += static_cast<Timestamp>(rng.NextBounded(80));
  }
  const Timestamp lateness = 50;

  std::vector<Query> queries;
  Query q;
  q.id = 1;
  q.window = WindowSpec::Tumbling(97);
  q.agg = {AggregationFunction::kSum, 0};
  queries.push_back(q);
  q.id = 2;
  q.window = WindowSpec::Sliding(120, 37);
  q.agg = {AggregationFunction::kAverage, 0};
  queries.push_back(q);

  auto run = [&](size_t batch, uint64_t* dropped) {
    DesisEngine engine;
    engine.EnableOutOfOrderIngest(lateness);
    EXPECT_TRUE(engine.Configure(queries).ok());
    std::vector<WindowResult> results;
    engine.set_sink([&](const WindowResult& r) { results.push_back(r); });
    if (batch == 0) {
      for (const Event& e : arrival) engine.Ingest(e);
    } else {
      for (size_t i = 0; i < arrival.size(); i += batch) {
        engine.IngestBatch(arrival.data() + i,
                           std::min(batch, arrival.size() - i));
      }
    }
    engine.Finish();
    *dropped = engine.dropped_events();
    std::sort(results.begin(), results.end(),
              [](const WindowResult& a, const WindowResult& b) {
                return std::tie(a.query_id, a.window_start) <
                       std::tie(b.query_id, b.window_start);
              });
    return results;
  };

  uint64_t want_dropped = 0;
  const auto want = run(0, &want_dropped);
  ASSERT_FALSE(want.empty());
  for (size_t batch : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    uint64_t got_dropped = 0;
    ExpectSameResults(want, run(batch, &got_dropped));
    EXPECT_EQ(want_dropped, got_dropped);
  }
}

// The engine-level stats must agree too: the fast path performs the same
// logical work (selection evaluations, operator executions, slices) as the
// per-event path, it just amortizes the bookkeeping around it.
TEST(BatchIngestEquivalence, StatsMatchPerEventPath) {
  const auto events = MakeStream(kStreamLen, 23);
  Query q;
  q.id = 1;
  q.window = WindowSpec::Sliding(120, 37);
  q.agg = {AggregationFunction::kAverage, 0};

  DesisEngine per_event;
  ASSERT_TRUE(per_event.Configure({q}).ok());
  for (const Event& e : events) per_event.Ingest(e);
  per_event.Finish();

  DesisEngine batched;
  ASSERT_TRUE(batched.Configure({q}).ok());
  for (size_t i = 0; i < events.size(); i += 256) {
    batched.IngestBatch(events.data() + i, std::min<size_t>(256, events.size() - i));
  }
  batched.Finish();

  EXPECT_EQ(per_event.stats().events, batched.stats().events);
  EXPECT_EQ(per_event.stats().selection_evals, batched.stats().selection_evals);
  EXPECT_EQ(per_event.stats().operator_executions,
            batched.stats().operator_executions);
  EXPECT_EQ(per_event.stats().slices_created, batched.stats().slices_created);
  EXPECT_EQ(per_event.stats().windows_fired, batched.stats().windows_fired);
}

}  // namespace
}  // namespace desis
