#include "core/slicer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"

namespace desis {
namespace {

Event Ev(Timestamp ts, double value, uint32_t key = 0,
         uint32_t marker = kNoMarker) {
  return Event{ts, key, value, marker};
}

Query MakeQuery(QueryId id, WindowSpec window, AggregationFunction fn,
                Predicate pred = Predicate::All(), double quantile = 0.5) {
  Query q;
  q.id = id;
  q.window = window;
  q.agg = {fn, quantile};
  q.predicate = pred;
  return q;
}

// Runs a configured engine over events, returns results keyed by query.
std::map<QueryId, std::vector<WindowResult>> RunEngine(
    StreamEngine& engine, const std::vector<Event>& events,
    Timestamp final_watermark) {
  std::map<QueryId, std::vector<WindowResult>> results;
  engine.set_sink([&](const WindowResult& r) { results[r.query_id].push_back(r); });
  for (const Event& e : events) engine.Ingest(e);
  engine.AdvanceTo(final_watermark);
  return results;
}

// Brute-force oracle: aggregate of `fn` over events in [start, end) matching
// `pred`.
double Oracle(const std::vector<Event>& events, Timestamp start, Timestamp end,
              AggregationFunction fn, double quantile = 0.5,
              Predicate pred = Predicate::All()) {
  std::vector<double> vals;
  for (const Event& e : events) {
    if (e.ts >= start && e.ts < end && pred.Matches(e)) vals.push_back(e.value);
  }
  PartialAggregate agg(OperatorsFor(fn));
  for (double v : vals) agg.Add(v);
  agg.Seal();
  return agg.Finalize({fn, quantile});
}

TEST(SlicerTumbling, SumOverThreeWindows) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum)})
          .ok());
  std::vector<Event> events;
  // Windows [0,10): 1+2, [10,20): 3, [20,30): 4+5.
  events.push_back(Ev(1, 1));
  events.push_back(Ev(5, 2));
  events.push_back(Ev(12, 3));
  events.push_back(Ev(20, 4));
  events.push_back(Ev(29, 5));
  auto results = RunEngine(engine, events, 100);
  ASSERT_EQ(results[1].size(), 3u);
  EXPECT_DOUBLE_EQ(results[1][0].value, 3.0);
  EXPECT_EQ(results[1][0].window_start, 0);
  EXPECT_EQ(results[1][0].window_end, 10);
  EXPECT_DOUBLE_EQ(results[1][1].value, 3.0);
  EXPECT_DOUBLE_EQ(results[1][2].value, 9.0);
  EXPECT_EQ(results[1][2].event_count, 2u);
}

TEST(SlicerTumbling, EmptyWindowsDoNotFire) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum)})
          .ok());
  auto results = RunEngine(engine, {Ev(1, 1), Ev(55, 2)}, 100);
  // Windows [10,50) are empty: only [0,10) and [50,60) fire.
  ASSERT_EQ(results[1].size(), 2u);
  EXPECT_EQ(results[1][0].window_start, 0);
  EXPECT_EQ(results[1][1].window_start, 50);
}

TEST(SlicerTumbling, UnalignedFirstEventStillAlignsWindows) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kCount)})
          .ok());
  auto results = RunEngine(engine, {Ev(17, 1), Ev(19, 1), Ev(23, 1)}, 100);
  ASSERT_EQ(results[1].size(), 2u);
  EXPECT_EQ(results[1][0].window_start, 10);
  EXPECT_DOUBLE_EQ(results[1][0].value, 2.0);
  EXPECT_EQ(results[1][1].window_start, 20);
  EXPECT_DOUBLE_EQ(results[1][1].value, 1.0);
}

TEST(SlicerSliding, OverlappingWindowsShareSlices) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Sliding(10, 5),
                                        AggregationFunction::kSum)})
                  .ok());
  std::vector<Event> events;
  for (Timestamp t = 0; t < 30; ++t) events.push_back(Ev(t, 1));
  auto results = RunEngine(engine, events, 100);
  // Every full window sums 10.
  for (const WindowResult& r : results[1]) {
    if (r.window_start >= 0 && r.window_end <= 30) {
      EXPECT_DOUBLE_EQ(r.value, 10.0) << "window @" << r.window_start;
    }
  }
  // Slices are [0,5) granularity: 1 slice per 5 events, not per window.
  EXPECT_LE(engine.stats().slices_created, 7u);
}

TEST(SlicerSliding, MatchesOracleOnRandomStream) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(7, WindowSpec::Sliding(100, 20),
                                        AggregationFunction::kAverage)})
                  .ok());
  Rng rng(7);
  std::vector<Event> events;
  Timestamp ts = 0;
  for (int i = 0; i < 500; ++i) {
    ts += rng.NextInRange(1, 5);
    events.push_back(Ev(ts, static_cast<double>(rng.NextBounded(1000))));
  }
  auto results = RunEngine(engine, events, ts + 1000);
  ASSERT_FALSE(results[7].empty());
  for (const WindowResult& r : results[7]) {
    EXPECT_NEAR(r.value,
                Oracle(events, r.window_start, r.window_end,
                       AggregationFunction::kAverage),
                1e-9);
  }
}

TEST(SlicerSession, GapsCloseSessions) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Session(10), AggregationFunction::kSum)})
          .ok());
  // Session 1: events at 0..4; gap; session 2: 50..52.
  std::vector<Event> events = {Ev(0, 1), Ev(4, 2), Ev(50, 3), Ev(52, 4)};
  auto results = RunEngine(engine, events, 1000);
  ASSERT_EQ(results[1].size(), 2u);
  EXPECT_EQ(results[1][0].window_start, 0);
  EXPECT_EQ(results[1][0].window_end, 14);  // last event + gap
  EXPECT_DOUBLE_EQ(results[1][0].value, 3.0);
  EXPECT_EQ(results[1][1].window_start, 50);
  EXPECT_EQ(results[1][1].window_end, 62);
  EXPECT_DOUBLE_EQ(results[1][1].value, 7.0);
}

TEST(SlicerSession, BackToBackEventsExtendSession) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Session(10), AggregationFunction::kCount)})
          .ok());
  std::vector<Event> events;
  for (Timestamp t = 0; t < 100; t += 9) events.push_back(Ev(t, 1));
  auto results = RunEngine(engine, events, 1000);
  ASSERT_EQ(results[1].size(), 1u);
  EXPECT_DOUBLE_EQ(results[1][0].value, 12.0);
}

TEST(SlicerUserDefined, MarkerEventsDelimitWindows) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::UserDefined(),
                                        AggregationFunction::kMax)})
                  .ok());
  // "Trips": window opens at first event, closes at kWindowEnd (inclusive).
  std::vector<Event> events = {Ev(0, 10),  Ev(5, 30),
                               Ev(9, 20, 0, kWindowEnd),  // trip 1 ends
                               Ev(15, 5),  Ev(21, 70),
                               Ev(30, 60, 0, kWindowEnd)};
  auto results = RunEngine(engine, events, 1000);
  ASSERT_EQ(results[1].size(), 2u);
  EXPECT_DOUBLE_EQ(results[1][0].value, 30.0);
  EXPECT_EQ(results[1][0].event_count, 3u);  // marker event included
  EXPECT_DOUBLE_EQ(results[1][1].value, 70.0);
}

TEST(SlicerCount, CountTumblingFiresEveryNEvents) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::CountTumbling(3),
                                        AggregationFunction::kSum)})
                  .ok());
  std::vector<Event> events;
  for (int i = 1; i <= 9; ++i) events.push_back(Ev(i, i));
  auto results = RunEngine(engine, events, 1000);
  ASSERT_EQ(results[1].size(), 3u);
  EXPECT_DOUBLE_EQ(results[1][0].value, 6.0);    // 1+2+3
  EXPECT_DOUBLE_EQ(results[1][1].value, 15.0);   // 4+5+6
  EXPECT_DOUBLE_EQ(results[1][2].value, 24.0);   // 7+8+9
}

TEST(SlicerCount, CountSlidingOverlaps) {
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::CountSliding(4, 2),
                                        AggregationFunction::kSum)})
                  .ok());
  std::vector<Event> events;
  for (int i = 1; i <= 8; ++i) events.push_back(Ev(i, i));
  auto results = RunEngine(engine, events, 1000);
  // Windows over events [1..4], [3..6], [5..8].
  ASSERT_EQ(results[1].size(), 3u);
  EXPECT_DOUBLE_EQ(results[1][0].value, 10.0);
  EXPECT_DOUBLE_EQ(results[1][1].value, 18.0);
  EXPECT_DOUBLE_EQ(results[1][2].value, 26.0);
}

TEST(SlicerSharing, CrossFunctionGroupProcessesEventsOnce) {
  // avg + sum + count + max + median over identical tumbling windows:
  // one query-group, shared slices.
  DesisEngine engine;
  ASSERT_TRUE(
      engine
          .Configure({
              MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kAverage),
              MakeQuery(2, WindowSpec::Tumbling(10), AggregationFunction::kSum),
              MakeQuery(3, WindowSpec::Tumbling(10), AggregationFunction::kCount),
              MakeQuery(4, WindowSpec::Tumbling(10), AggregationFunction::kMax),
              MakeQuery(5, WindowSpec::Tumbling(10), AggregationFunction::kMedian),
          })
          .ok());
  EXPECT_EQ(engine.num_groups(), 1u);

  std::vector<Event> events = {Ev(0, 2), Ev(3, 8), Ev(7, 5)};
  auto results = RunEngine(engine, events, 100);
  EXPECT_DOUBLE_EQ(results[1][0].value, 5.0);
  EXPECT_DOUBLE_EQ(results[2][0].value, 15.0);
  EXPECT_DOUBLE_EQ(results[3][0].value, 3.0);
  EXPECT_DOUBLE_EQ(results[4][0].value, 8.0);
  EXPECT_DOUBLE_EQ(results[5][0].value, 5.0);

  // Operators executed per event: {sum, count, sorted} = 3 — max shares the
  // non-decomposable sort required by median (§6.3.2), so the decomposable
  // sort is dropped entirely. Without sharing: 5 functions' worth of work.
  EXPECT_EQ(engine.stats().operator_executions, 3u * 3u);
  // One slice per window, shared across all five queries.
  EXPECT_EQ(engine.stats().slices_created, 1u);
}

TEST(SlicerSharing, MixedWindowTypesShareOneGroup) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine
          .Configure({
              MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum),
              MakeQuery(2, WindowSpec::Sliding(10, 5), AggregationFunction::kAverage),
              MakeQuery(3, WindowSpec::Session(8), AggregationFunction::kCount),
              MakeQuery(4, WindowSpec::UserDefined(), AggregationFunction::kMax),
          })
          .ok());
  EXPECT_EQ(engine.num_groups(), 1u);

  Rng rng(3);
  std::vector<Event> events;
  Timestamp ts = 0;
  for (int i = 0; i < 200; ++i) {
    ts += rng.NextInRange(1, 3);
    uint32_t marker = rng.NextBool(0.05) ? kWindowEnd : kNoMarker;
    events.push_back(Ev(ts, static_cast<double>(rng.NextBounded(100)), 0, marker));
  }
  auto results = RunEngine(engine, events, ts + 100);
  // Check tumbling results against the oracle.
  for (const WindowResult& r : results[1]) {
    EXPECT_DOUBLE_EQ(
        r.value, Oracle(events, r.window_start, r.window_end, AggregationFunction::kSum));
  }
  for (const WindowResult& r : results[2]) {
    EXPECT_NEAR(r.value,
                Oracle(events, r.window_start, r.window_end,
                       AggregationFunction::kAverage),
                1e-9);
  }
  EXPECT_FALSE(results[3].empty());
  EXPECT_FALSE(results[4].empty());
}

TEST(SlicerSelection, DisjointPredicatesShareGroupSeparateLanes) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine
          .Configure({
              MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum,
                        Predicate::KeyEquals(1)),
              MakeQuery(2, WindowSpec::Tumbling(10), AggregationFunction::kSum,
                        Predicate::KeyEquals(2)),
          })
          .ok());
  EXPECT_EQ(engine.num_groups(), 1u);
  ASSERT_EQ(engine.group(0).lanes.size(), 2u);

  std::vector<Event> events = {Ev(0, 5, 1), Ev(1, 7, 2), Ev(2, 3, 1),
                               Ev(3, 100, 9)};  // key 9 matches nobody
  auto results = RunEngine(engine, events, 100);
  EXPECT_DOUBLE_EQ(results[1][0].value, 8.0);
  EXPECT_DOUBLE_EQ(results[2][0].value, 7.0);
}

TEST(SlicerSelection, OverlappingPredicatesSplitGroups) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine
          .Configure({
              MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum,
                        Predicate::All()),
              MakeQuery(2, WindowSpec::Tumbling(10), AggregationFunction::kSum,
                        Predicate::KeyEquals(2)),
          })
          .ok());
  EXPECT_EQ(engine.num_groups(), 2u);
}

TEST(SlicerSelection, ValueRangePredicates) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine
          .Configure({
              MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kCount,
                        Predicate::ValueRange(80, 1e18)),  // speed > 80
              MakeQuery(2, WindowSpec::Tumbling(10), AggregationFunction::kCount,
                        Predicate::ValueRange(-1e18, 25)),  // speed < 25
          })
          .ok());
  EXPECT_EQ(engine.num_groups(), 1u);  // non-overlapping predicates share
  std::vector<Event> events = {Ev(0, 90), Ev(1, 10), Ev(2, 50), Ev(3, 85)};
  auto results = RunEngine(engine, events, 100);
  EXPECT_DOUBLE_EQ(results[1][0].value, 2.0);
  EXPECT_DOUBLE_EQ(results[2][0].value, 1.0);
}

TEST(SlicerDedup, DuplicateEventsDropped) {
  Query q = MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kCount);
  q.deduplicate = true;
  DesisEngine engine;
  ASSERT_TRUE(engine.Configure({q}).ok());
  std::vector<Event> events = {Ev(0, 5), Ev(0, 5), Ev(1, 5), Ev(0, 5)};
  auto results = RunEngine(engine, events, 100);
  EXPECT_DOUBLE_EQ(results[1][0].value, 2.0);  // (0,5) and (1,5)
}

TEST(SlicerRuntime, AddAndRemoveQueries) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum)})
          .ok());
  std::map<QueryId, std::vector<WindowResult>> results;
  engine.set_sink([&](const WindowResult& r) { results[r.query_id].push_back(r); });

  engine.Ingest(Ev(0, 1));
  ASSERT_TRUE(
      engine.AddQuery(MakeQuery(2, WindowSpec::Tumbling(10), AggregationFunction::kCount))
          .ok());
  EXPECT_FALSE(
      engine.AddQuery(MakeQuery(2, WindowSpec::Tumbling(5), AggregationFunction::kSum))
          .ok());  // duplicate id
  engine.Ingest(Ev(12, 2));
  engine.Ingest(Ev(25, 3));
  ASSERT_TRUE(engine.RemoveQuery(1).ok());
  EXPECT_FALSE(engine.RemoveQuery(99).ok());
  engine.Ingest(Ev(38, 4));
  engine.AdvanceTo(1000);

  EXPECT_FALSE(results[1].empty());
  EXPECT_FALSE(results[2].empty());
  // Query 1 was removed at t=25: no results for windows at/after 30.
  for (const WindowResult& r : results[1]) EXPECT_LT(r.window_start, 30);
}

TEST(SlicerGc, SlicesAreCollected) {
  DesisEngine engine;
  ASSERT_TRUE(
      engine.Configure({MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum)})
          .ok());
  uint64_t fired = 0;
  engine.set_sink([&](const WindowResult&) { ++fired; });
  for (Timestamp t = 0; t < 100000; ++t) engine.Ingest(Ev(t, 1));
  EXPECT_GT(fired, 9000u);
  // Tumbling windows never need more than the current slice: the engine's
  // retained slice count must not grow with stream length (smoke check via
  // stats: slices created == windows fired + open ones).
  EXPECT_GE(engine.stats().slices_created, fired);
}

TEST(SlicerScan, PerEventScanMatchesPrecomputed) {
  // DeSW-style scanning punctuation must produce identical results.
  std::vector<Query> queries = {
      MakeQuery(1, WindowSpec::Tumbling(10), AggregationFunction::kSum),
      MakeQuery(2, WindowSpec::Sliding(20, 5), AggregationFunction::kMax),
      MakeQuery(3, WindowSpec::Session(7), AggregationFunction::kAverage),
  };
  SlicingEngine desis("Desis", SharingPolicy::kCrossFunction,
                      PunctuationStrategy::kPrecomputed);
  SlicingEngine scan("Scan", SharingPolicy::kCrossFunction,
                     PunctuationStrategy::kPerEventScan);
  ASSERT_TRUE(desis.Configure(queries).ok());
  ASSERT_TRUE(scan.Configure(queries).ok());

  Rng rng(11);
  std::vector<Event> events;
  Timestamp ts = 0;
  for (int i = 0; i < 400; ++i) {
    ts += rng.NextInRange(1, 4);
    events.push_back(Ev(ts, static_cast<double>(rng.NextBounded(50))));
  }
  auto a = RunEngine(desis, events, ts + 100);
  auto b = RunEngine(scan, events, ts + 100);
  ASSERT_EQ(a.size(), b.size());
  for (auto& [qid, wins] : a) {
    ASSERT_EQ(wins.size(), b[qid].size()) << "query " << qid;
    for (size_t i = 0; i < wins.size(); ++i) {
      EXPECT_EQ(wins[i].window_start, b[qid][i].window_start);
      EXPECT_DOUBLE_EQ(wins[i].value, b[qid][i].value);
    }
  }
}

// Property sweep: for every (length, slide) combination, sliding windows
// must match the brute-force oracle.
class SlidingOracleProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SlidingOracleProperty, MatchesOracle) {
  const auto [length, slide] = GetParam();
  DesisEngine engine;
  ASSERT_TRUE(engine
                  .Configure({MakeQuery(1, WindowSpec::Sliding(length, slide),
                                        AggregationFunction::kSum)})
                  .ok());
  Rng rng(static_cast<uint64_t>(length * 1000 + slide));
  std::vector<Event> events;
  Timestamp ts = 0;
  for (int i = 0; i < 300; ++i) {
    ts += rng.NextInRange(1, 3);
    events.push_back(Ev(ts, static_cast<double>(rng.NextBounded(10))));
  }
  auto results = RunEngine(engine, events, ts + 10 * length);
  ASSERT_FALSE(results[1].empty());
  for (const WindowResult& r : results[1]) {
    EXPECT_DOUBLE_EQ(
        r.value, Oracle(events, r.window_start, r.window_end, AggregationFunction::kSum))
        << "window [" << r.window_start << "," << r.window_end << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthSlide, SlidingOracleProperty,
    ::testing::Values(std::pair{10, 10}, std::pair{10, 5}, std::pair{10, 3},
                      std::pair{10, 1}, std::pair{25, 7}, std::pair{100, 11},
                      std::pair{64, 16}, std::pair{9, 2}));

}  // namespace
}  // namespace desis
