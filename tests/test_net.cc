#include <gtest/gtest.h>

#include "common/serde.h"
#include "net/disco_nodes.h"
#include "net/message.h"

namespace desis {
namespace {

TEST(Serde, PodRoundTrip) {
  ByteWriter out;
  out.WriteU8(7);
  out.WriteU32(123456);
  out.WriteU64(1ull << 40);
  out.WriteI64(-42);
  out.WriteDouble(3.25);
  out.WriteString("hello");
  out.WritePodVector(std::vector<double>{1.0, 2.5});

  ByteReader in(out.bytes());
  EXPECT_EQ(in.ReadU8(), 7);
  EXPECT_EQ(in.ReadU32(), 123456u);
  EXPECT_EQ(in.ReadU64(), 1ull << 40);
  EXPECT_EQ(in.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(in.ReadDouble(), 3.25);
  EXPECT_EQ(in.ReadString(), "hello");
  EXPECT_EQ(in.ReadPodVector<double>(), (std::vector<double>{1.0, 2.5}));
  EXPECT_TRUE(in.AtEnd());
}

TEST(Message, EventBatchIs24BytesPerEvent) {
  // The paper's centralized network overhead (~2.4 GB per 100M events,
  // Fig 11a) implies 24 bytes per event on the wire.
  std::vector<Event> events(1000);
  for (size_t i = 0; i < events.size(); ++i) {
    events[i] = {static_cast<Timestamp>(i), static_cast<uint32_t>(i % 7),
                 static_cast<double>(i) * 0.5, 0};
  }
  auto payload = EncodeEventBatch(events);
  EXPECT_EQ(payload.size(), 4 + 24 * events.size());

  auto back = DecodeEventBatch(payload);
  ASSERT_EQ(back.size(), events.size());
  EXPECT_EQ(back.front(), events.front());
  EXPECT_EQ(back.back(), events.back());
}

TEST(Message, WatermarkRoundTrip) {
  EXPECT_EQ(DecodeWatermark(EncodeWatermark(123456789)), 123456789);
  EXPECT_EQ(DecodeWatermark(EncodeWatermark(kNoTimestamp)), kNoTimestamp);
}

TEST(Message, SlicePartialRoundTrip) {
  SlicePartialMsg msg;
  msg.slice_id = 42;
  msg.start = 1000;
  msg.end = 2000;
  msg.last_event_ts = 1999;
  msg.watermark = 2050;
  PartialAggregate lane0(MaskOf(OperatorKind::kSum) |
                         MaskOf(OperatorKind::kCount));
  lane0.Add(1.5);
  lane0.Add(2.5);
  PartialAggregate lane1(MaskOf(OperatorKind::kSum) |
                         MaskOf(OperatorKind::kCount));
  msg.lanes = {lane0, lane1};
  msg.lane_events = {2, 0};
  msg.lane_last_ts = {1999, kNoTimestamp};
  msg.eps = {{3, 500, 2000}};

  ByteWriter out;
  msg.SerializeTo(out);
  ByteReader in(out.bytes());
  SlicePartialMsg back = SlicePartialMsg::DeserializeFrom(in);
  EXPECT_TRUE(in.AtEnd());

  EXPECT_EQ(back.slice_id, 42u);
  EXPECT_EQ(back.start, 1000);
  EXPECT_EQ(back.end, 2000);
  EXPECT_EQ(back.last_event_ts, 1999);
  EXPECT_EQ(back.watermark, 2050);
  ASSERT_EQ(back.lanes.size(), 2u);
  EXPECT_DOUBLE_EQ(back.lanes[0].Finalize({AggregationFunction::kSum, 0}), 4.0);
  EXPECT_EQ(back.lane_events, (std::vector<uint64_t>{2, 0}));
  ASSERT_EQ(back.eps.size(), 1u);
  EXPECT_EQ(back.eps[0].spec_idx, 3u);
  EXPECT_EQ(back.eps[0].window_end, 2000);
}

TEST(Message, WireBytesAccountsHeader) {
  Message m{MessageType::kEventBatch, 5, std::vector<uint8_t>(100)};
  EXPECT_EQ(m.WireBytes(), kWireHeaderBytes + 100);
  EXPECT_EQ(m.WireBytes(), 109u);
}

TEST(Message, FrameCodecMatchesWireHeaderConstant) {
  static_assert(kWireHeaderBytes == 9, "wire header layout changed");
  Message m{MessageType::kSlicePartial, 7,
            std::vector<uint8_t>{1, 2, 3, 4, 5}};
  const std::vector<uint8_t> frame = EncodeFrame(m);
  // The serialized frame is exactly what the byte meters charge per message.
  EXPECT_EQ(frame.size(), m.WireBytes());
  EXPECT_EQ(frame.size(), kWireHeaderBytes + m.payload.size());
  const Message back = DecodeFrame(frame);
  EXPECT_EQ(back.type, m.type);
  EXPECT_EQ(back.group_id, m.group_id);
  EXPECT_EQ(back.payload, m.payload);
}

TEST(DiscoText, PartialLineRoundTrip) {
  PartialAggregate agg(MaskOf(OperatorKind::kSum) |
                       MaskOf(OperatorKind::kCount));
  agg.Add(10.25);
  agg.Add(20.5);
  const std::string line = disco::EncodePartialLine(7, 1000, 2000, 2, agg);
  EXPECT_EQ(line.front(), 'P');
  EXPECT_EQ(line.back(), '\n');

  std::vector<uint8_t> payload(line.begin(), line.end());
  std::vector<disco::ParsedPartial> parts;
  Timestamp wm = kNoTimestamp;
  disco::ParsePayload(payload, &parts, nullptr, &wm);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].qid, 7u);
  EXPECT_EQ(parts[0].ws, 1000);
  EXPECT_EQ(parts[0].we, 2000);
  EXPECT_EQ(parts[0].events, 2u);
  EXPECT_DOUBLE_EQ(parts[0].agg.Finalize({AggregationFunction::kSum, 0}),
                   30.75);
  EXPECT_DOUBLE_EQ(parts[0].agg.Finalize({AggregationFunction::kAverage, 0}),
                   15.375);
}

TEST(DiscoText, MixedPayloadParses) {
  std::string text;
  text += disco::EncodeEventLine({123, 4, 55.5, kWindowEnd});
  PartialAggregate agg(MaskOf(OperatorKind::kSum));
  agg.Add(1.0);
  text += disco::EncodePartialLine(1, 0, 100, 1, agg);
  text += disco::EncodeWatermarkLine(999);

  std::vector<uint8_t> payload(text.begin(), text.end());
  std::vector<disco::ParsedPartial> parts;
  std::vector<Event> events;
  Timestamp wm = kNoTimestamp;
  disco::ParsePayload(payload, &parts, &events, &wm);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts, 123);
  EXPECT_EQ(events[0].key, 4u);
  EXPECT_DOUBLE_EQ(events[0].value, 55.5);
  EXPECT_EQ(events[0].marker, static_cast<uint32_t>(kWindowEnd));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(wm, 999);
}

TEST(DiscoText, StringsAreBiggerThanBinary) {
  // The reason Disco's network overhead exceeds the others' (Fig 11b).
  std::vector<Event> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({1'000'000'000 + i, 3, 123.456789, 0});
  }
  size_t text_bytes = 0;
  for (const Event& e : events) text_bytes += disco::EncodeEventLine(e).size();
  EXPECT_GT(text_bytes, EncodeEventBatch(events).size());
}

}  // namespace
}  // namespace desis
