// AddQuery / RemoveQuery churn at scale (docs/EXPERIMENTS.md): with R
// resident queries deployed — half sharing one big key-partitioned group,
// half spread over R/100 value-range groups — a churn loop adds and
// removes queries at runtime while traffic flows. Incremental group
// maintenance (opt::GroupIndex) makes each operation O(affected group):
// the bench sweeps R and reports opt.group_churn_ns p50/p95 per resident
// count, which should stay flat as R grows (the acceptance contract of
// the 10k-query churn suite). The histograms land in the sidecar via
// Cluster::StatsReport(); they are `_ns` series, so desis-inspect's
// stable-only diffs skip them automatically and the CI gate only pins the
// structural series (groups, results, events).
//
// Scale: DESIS_BENCH_SCALE scales the resident counts and traffic; the CI
// gate runs at 0.01 against bench/baselines/query_churn_baseline.json.

#include "harness.h"

namespace desis::bench {
namespace {

constexpr QueryId kChurnIdBase = 1'000'000;

std::vector<Query> ResidentQueries(size_t r) {
  const size_t value_groups = std::max<size_t>(1, r / 100);
  std::vector<Query> queries;
  queries.reserve(r);
  for (size_t i = 0; i < r; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling((1 + i % 3) * kSecond);
    q.agg = {i % 4 == 3 ? AggregationFunction::kAverage
                        : AggregationFunction::kSum,
             0.5};
    if (i % 2 == 0) {
      // Key-partitioned half: pairwise identical-or-disjoint predicates,
      // so the analyzer folds all of them into one big shared group.
      q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(i % 100));
    } else {
      // Value-range half: [0, a) vs [0, b) overlap when a != b, forcing
      // exactly `value_groups` groups (identical ranges share).
      q.predicate =
          Predicate::ValueRange(0.0, 1.0 + static_cast<double>(i % value_groups));
    }
    queries.push_back(q);
  }
  return queries;
}

/// One churn operation's query: rotates through (a) bare-key adds that hit
/// the GroupIndex fast path into the big shared group, (b) value-range adds
/// that probe their way into an existing range group, and (c) overlapping
/// ranges that force a fresh group (created on add, torn down on remove).
Query ChurnQuery(size_t w, size_t value_groups) {
  Query q;
  q.id = kChurnIdBase + static_cast<QueryId>(w);
  q.window = WindowSpec::Tumbling((1 + w % 2) * kSecond);
  q.agg = {AggregationFunction::kSum, 0.5};
  switch (w % 4) {
    case 1:
      q.predicate = Predicate::ValueRange(
          0.0, 1.0 + static_cast<double>(w % value_groups));
      break;
    case 3:
      q.predicate =
          Predicate::ValueRange(0.5, 100.0 + static_cast<double>(w));
      break;
    default:
      q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(w % 100));
      break;
  }
  return q;
}

struct ChurnPoint {
  size_t resident = 0;
  size_t groups = 0;
  double add_p50 = 0, add_p95 = 0;
  double remove_p50 = 0, remove_p95 = 0;
  uint64_t adds = 0, removes = 0;
};

ChurnPoint RunChurn(size_t resident, size_t churn_ops, size_t events_per_local) {
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  ClusterOptions options;
  options.optimize_plans = true;
  Cluster cluster(ClusterSystem::kDesis, {2, 1}, options);
  const auto queries = ResidentQueries(resident);
  auto status = cluster.Configure(queries);
  if (!status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  cluster.AttachObs(&registry, &tracer);
  uint64_t results = 0;
  cluster.set_sink([&results](const WindowResult&) { ++results; });

  // Background traffic: deterministic integer-valued events feeding both
  // halves of the resident set, interleaved with the churn waves below so
  // add/remove runs against live slices, not an idle cluster.
  const size_t value_groups = std::max<size_t>(1, resident / 100);
  Timestamp now = 0;
  size_t fed = 0;
  auto feed_round = [&](size_t budget) {
    std::vector<Event> batch;
    batch.reserve(budget);
    for (int local = 0; local < 2; ++local) {
      batch.clear();
      for (size_t j = 0; j < budget; ++j) {
        const Timestamp ts = now + static_cast<Timestamp>(j + 1) * kMillisecond;
        batch.push_back({ts, static_cast<uint32_t>((j * 13 + local) % 100),
                         static_cast<double>(j % 8), kNoMarker});
      }
      cluster.IngestAt(local, batch.data(), batch.size());
    }
    now += static_cast<Timestamp>(budget + 1) * kMillisecond;
    fed += budget;
    cluster.Advance(now);
  };

  const size_t warmup = std::min(events_per_local, size_t{2000});
  feed_round(warmup);
  cluster.Drain();

  const size_t bursts = churn_ops / 32 + 1;
  const size_t burst_budget =
      events_per_local > warmup ? (events_per_local - warmup) / bursts : 0;
  for (size_t w = 0; w < churn_ops; ++w) {
    const Query q = ChurnQuery(w, value_groups);
    auto add = cluster.AddQuery(q);
    if (!add.ok()) {
      std::fprintf(stderr, "AddQuery failed: %s\n", add.ToString().c_str());
      std::abort();
    }
    if (w % 32 == 31 && burst_budget > 0) feed_round(burst_budget);
    auto rm = cluster.RemoveQuery(q.id);
    if (!rm.ok()) {
      std::fprintf(stderr, "RemoveQuery failed: %s\n", rm.ToString().c_str());
      std::abort();
    }
  }
  cluster.Advance(now + 2 * kMinute);
  cluster.Drain();

  ChurnPoint out;
  out.resident = resident;
  out.groups = cluster.num_query_groups();
  obs::Histogram* add_hist =
      registry.GetHistogram("opt.group_churn_ns", {{"op", "add"}}, "ns");
  obs::Histogram* remove_hist =
      registry.GetHistogram("opt.group_churn_ns", {{"op", "remove"}}, "ns");
  if (add_hist != nullptr) {
    out.adds = add_hist->count();
    out.add_p50 = add_hist->Quantile(0.50);
    out.add_p95 = add_hist->Quantile(0.95);
  }
  if (remove_hist != nullptr) {
    out.removes = remove_hist->count();
    out.remove_p50 = remove_hist->Quantile(0.50);
    out.remove_p95 = remove_hist->Quantile(0.95);
  }

  Sidecar::Instance().NoteTransport(cluster.transport()->name());
  Sidecar::Instance().NoteEngineShards(options.engine_shards);
  char label[96];
  std::snprintf(label, sizeof(label), "churn resident=%zu ops=%zu events=%zu",
                resident, churn_ops, fed);
  Sidecar::Instance().RecordRun(label, cluster.StatsReport(), tracer.ToJson());
  return out;
}

int Main() {
  const size_t churn_ops = 200;
  const size_t events_per_local = Scaled(20'000);
  const size_t residents[] = {Scaled(2'500), Scaled(5'000), Scaled(10'000)};

  PrintHeader("Query churn: opt.group_churn_ns vs resident query count",
              {"groups", "add_p50", "add_p95", "rm_p50", "rm_p95"});
  std::vector<ChurnPoint> points;
  for (size_t r : residents) {
    points.push_back(RunChurn(r, churn_ops, events_per_local));
    const ChurnPoint& p = points.back();
    char label[32];
    std::snprintf(label, sizeof(label), "resident=%zu", p.resident);
    PrintRow(label, {static_cast<double>(p.groups), p.add_p50, p.add_p95,
                     p.remove_p50, p.remove_p95});
  }

  int failures = 0;
  for (const ChurnPoint& p : points) {
#if DESIS_OBS_ENABLED
    if (p.adds != churn_ops || p.removes != churn_ops) {
      std::fprintf(stderr,
                   "FAIL: resident=%zu recorded %llu adds / %llu removes, "
                   "expected %zu each\n",
                   p.resident, static_cast<unsigned long long>(p.adds),
                   static_cast<unsigned long long>(p.removes), churn_ops);
      ++failures;
    }
#endif
    if (p.groups == 0) {
      std::fprintf(stderr, "FAIL: resident=%zu ended with no groups\n",
                   p.resident);
      ++failures;
    }
  }
#if DESIS_OBS_ENABLED
  // The headline claim: churn latency tracks the affected group, not the
  // resident count. Print the spread for eyeballing / EXPERIMENTS.md; CI
  // does not gate on wall-clock (timing series are diff-skipped as noisy).
  if (points.size() >= 2 && points.front().add_p95 > 0) {
    std::printf("add p95 spread (largest/smallest resident): %.2fx\n",
                points.back().add_p95 / points.front().add_p95);
  }
#endif
  WriteMetricsSidecar("bench_query_churn");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace desis::bench

int main() { return desis::bench::Main(); }
